// Trading reproduces the paper's Query 5 through the public API: a
// five-attribute self-join of a transaction table ("total value executed
// for a given order"). With five join attributes there are 5! = 120
// possible sort orders; favorable orders cut the search to the handful the
// clustering can supply.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pyro"
)

func main() {
	db := pyro.Open(pyro.Config{SortMemoryBlocks: 64})
	rng := rand.New(rand.NewSource(11))

	var rows [][]any
	for i := 0; i < 20_000; i++ {
		user, basket := int64(rng.Intn(20)), int64(rng.Intn(50))
		wave, child := int64(rng.Intn(4)), int64(rng.Intn(8))
		qty, price := int64(rng.Intn(100)+1), int64(rng.Intn(500)+1)
		rows = append(rows, []any{user, basket, int64(i), wave, child, "New", qty, price})
		for e := 0; e <= rng.Intn(3); e++ {
			rows = append(rows, []any{user, basket, int64(i), wave, child, "Executed",
				int64(rng.Intn(int(qty)) + 1), price})
		}
	}
	if err := db.CreateTable("tran", []pyro.Column{
		{Name: "UserId", Type: pyro.Int64},
		{Name: "BasketId", Type: pyro.Int64},
		{Name: "ParentOrderId", Type: pyro.Int64},
		{Name: "WaveId", Type: pyro.Int64},
		{Name: "ChildOrderId", Type: pyro.Int64},
		{Name: "TranType", Type: pyro.String, Width: 8},
		{Name: "Quantity", Type: pyro.Int64},
		{Name: "Price", Type: pyro.Int64},
	}, pyro.ClusterOn("UserId", "ParentOrderId", "BasketId", "WaveId", "ChildOrderId"), rows); err != nil {
		log.Fatal(err)
	}

	t1 := db.Scan("tran").As("t1_").Filter(pyro.Eq(pyro.Col("t1_TranType"), pyro.Str("New")))
	t2 := db.Scan("tran").As("t2_").Filter(pyro.Eq(pyro.Col("t2_TranType"), pyro.Str("Executed")))
	q := t1.Join(t2, pyro.And(
		pyro.Eq(pyro.Col("t1_UserId"), pyro.Col("t2_UserId")),
		pyro.Eq(pyro.Col("t1_ParentOrderId"), pyro.Col("t2_ParentOrderId")),
		pyro.Eq(pyro.Col("t1_BasketId"), pyro.Col("t2_BasketId")),
		pyro.Eq(pyro.Col("t1_WaveId"), pyro.Col("t2_WaveId")),
		pyro.Eq(pyro.Col("t1_ChildOrderId"), pyro.Col("t2_ChildOrderId")),
	)).Project(
		pyro.Proj{Name: "UserId", Expr: pyro.Col("t1_UserId")},
		pyro.Proj{Name: "ParentOrderId", Expr: pyro.Col("t1_ParentOrderId")},
		pyro.Proj{Name: "OrderValue", Expr: pyro.Mul(pyro.Col("t1_Quantity"), pyro.Col("t1_Price"))},
		pyro.Proj{Name: "ExecValue", Expr: pyro.Mul(pyro.Col("t2_Quantity"), pyro.Col("t2_Price"))},
	).GroupBy([]string{"UserId", "ParentOrderId", "OrderValue"},
		pyro.Agg{Name: "ExecutedValue", Func: pyro.Sum, Arg: pyro.Col("ExecValue")},
	).OrderBy("UserId", "ParentOrderId")

	for _, v := range []struct {
		name string
		h    pyro.Heuristic
	}{
		{"PYRO-P (per-attribute heuristic)", pyro.PYROP},
		{"PYRO-O (favorable orders)", pyro.PYROO},
	} {
		plan, err := db.Optimize(q, pyro.WithHeuristic(v.h), pyro.WithoutHashJoin(), pyro.WithoutHashAgg())
		if err != nil {
			log.Fatal(err)
		}
		stats := plan.OptimizerStats()
		fmt.Printf("--- %s: estimated cost %.0f (%d interesting orders tried)\n",
			v.name, plan.EstimatedCost(), stats.OrdersTried)
	}

	plan, err := db.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	// Stream the result through the cursor, scanning typed columns; the
	// per-query stats replace fishing in the database-wide I/O counters.
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}
	var sample string
	var n int
	for cur.Next() {
		if n == 0 {
			var user, parent, orderValue, executed int64
			if err := cur.Scan(&user, &parent, &orderValue, &executed); err != nil {
				log.Fatal(err)
			}
			sample = fmt.Sprintf("user %d order %d: value %d, executed %d",
				user, parent, orderValue, executed)
		}
		n++
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		log.Fatal(err)
	}
	st := cur.Stats()
	fmt.Printf("\nexecuted-value rows: %d, sample: %s\n", n, sample)
	fmt.Printf("first row after %v, total %v, %d page I/Os for this query\n",
		st.TimeToFirstRow, st.Elapsed, st.IO.Total())
}
