// Stockout reproduces the paper's Query 3 scenario through the public API:
// "parts whose outstanding open-order quantity exceeds the stock at the
// supplier". Covering secondary indices supply (suppkey) prefixes, and the
// optimizer chooses between full sorts, partial sorts and hash operators.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pyro"
)

func main() {
	db := pyro.Open(pyro.Config{SortMemoryBlocks: 64})
	rng := rand.New(rand.NewSource(42))

	const suppliers, partsPer = 60, 50
	var partsupp, lineitem [][]any
	for s := 0; s < suppliers; s++ {
		for k := 0; k < partsPer; k++ {
			part := (s*partsPer + k) % (suppliers * partsPer / 2)
			partsupp = append(partsupp, []any{int64(part), int64(s), int64(rng.Intn(80) + 20)})
			for l := 0; l < 3; l++ {
				status := "O"
				if rng.Intn(3) == 0 {
					status = "F"
				}
				lineitem = append(lineitem, []any{
					int64(rng.Intn(1_000_000)), int64(part), int64(s),
					int64(rng.Intn(40) + 1), status,
				})
			}
		}
	}
	must(db.CreateTable("partsupp", []pyro.Column{
		{Name: "ps_partkey", Type: pyro.Int64},
		{Name: "ps_suppkey", Type: pyro.Int64},
		{Name: "ps_availqty", Type: pyro.Int64},
	}, pyro.ClusterOn("ps_partkey", "ps_suppkey"), partsupp))
	must(db.CreateTable("lineitem", []pyro.Column{
		{Name: "l_orderkey", Type: pyro.Int64},
		{Name: "l_partkey", Type: pyro.Int64},
		{Name: "l_suppkey", Type: pyro.Int64},
		{Name: "l_quantity", Type: pyro.Int64},
		{Name: "l_linestatus", Type: pyro.String, Width: 1},
	}, pyro.ClusterOn("l_orderkey"), lineitem))
	// Covering indices: the efficient sources of (suppkey, ...) orders.
	must(db.CreateIndex("ps_sk", "partsupp", []string{"ps_suppkey"}, []string{"ps_partkey", "ps_availqty"}))
	must(db.CreateIndex("li_sk", "lineitem", []string{"l_suppkey"}, []string{"l_partkey", "l_quantity", "l_linestatus"}))

	q := db.Scan("partsupp").
		Join(
			db.Scan("lineitem").Filter(pyro.Eq(pyro.Col("l_linestatus"), pyro.Str("O"))),
			pyro.And(
				pyro.Eq(pyro.Col("ps_suppkey"), pyro.Col("l_suppkey")),
				pyro.Eq(pyro.Col("ps_partkey"), pyro.Col("l_partkey")),
			)).
		GroupBy([]string{"ps_availqty", "ps_partkey", "ps_suppkey"},
			pyro.Agg{Name: "open_qty", Func: pyro.Sum, Arg: pyro.Col("l_quantity")}).
		Filter(pyro.Gt(pyro.Col("open_qty"), pyro.Col("ps_availqty"))).
		OrderBy("ps_partkey")

	for _, v := range []struct {
		name string
		opts []pyro.OptimizeOption
	}{
		{"PYRO-O (the paper's optimizer)", nil},
		{"full sorts only (no partial sort)", []pyro.OptimizeOption{pyro.WithoutPartialSort(), pyro.WithoutHashJoin(), pyro.WithoutHashAgg()}},
	} {
		plan, err := db.Optimize(q, v.opts...)
		if err != nil {
			log.Fatal(err)
		}
		// Each variant streams through its own cursor; Stats().IO is the
		// query's own I/O delta, so no global counter reset is needed.
		cur, err := db.Query(context.Background(), plan)
		if err != nil {
			log.Fatal(err)
		}
		var n int
		for cur.Next() {
			n++
		}
		if err := cur.Err(); err != nil {
			log.Fatal(err)
		}
		must(cur.Close())
		st := cur.Stats()
		fmt.Printf("--- %s\nestimated cost %.0f, %d result rows, %d page I/Os (%d for sort runs), first row after %v\n%s\n",
			v.name, plan.EstimatedCost(), n, st.IO.Total(), st.IO.RunTotal(), st.TimeToFirstRow, plan.Explain())
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
