// Consolidation reproduces the paper's Experiment B2 shape through the
// public API: merging listings from two sources with FULL OUTER JOINs whose
// predicates share attributes. A coordinated choice of sort orders lets the
// two merge joins share a sorted prefix; phase-2 refinement finds it.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"pyro"
)

func main() {
	db := pyro.Open(pyro.Config{SortMemoryBlocks: 64})
	rng := rand.New(rand.NewSource(7))

	mk := func(name, prefix string, n int) {
		cols := []pyro.Column{
			{Name: prefix + "id", Type: pyro.Int64},
			{Name: prefix + "region", Type: pyro.Int64},
			{Name: prefix + "category", Type: pyro.Int64},
			{Name: prefix + "vendor", Type: pyro.Int64},
			{Name: prefix + "model", Type: pyro.Int64},
		}
		var rows [][]any
		for i := 0; i < n; i++ {
			rows = append(rows, []any{
				int64(rng.Intn(40)), int64(rng.Intn(40)), int64(rng.Intn(25)),
				int64(rng.Intn(25)), int64(rng.Intn(25)),
			})
		}
		if err := db.CreateTable(name, cols, nil, rows); err != nil {
			log.Fatal(err)
		}
	}
	mk("source_a", "a_", 20_000)
	mk("source_b", "b_", 20_000)
	mk("source_c", "c_", 20_000)

	// The two join predicates share (vendor, model): orders that agree on
	// this prefix avoid re-sorting between the joins.
	q := db.Scan("source_a").
		FullOuterJoin(db.Scan("source_b"), pyro.And(
			pyro.Eq(pyro.Col("a_model"), pyro.Col("b_model")),
			pyro.Eq(pyro.Col("a_vendor"), pyro.Col("b_vendor")),
			pyro.Eq(pyro.Col("a_category"), pyro.Col("b_category")),
		)).
		FullOuterJoin(db.Scan("source_c"), pyro.And(
			pyro.Eq(pyro.Col("c_id"), pyro.Col("a_id")),
			pyro.Eq(pyro.Col("c_vendor"), pyro.Col("a_vendor")),
			pyro.Eq(pyro.Col("c_model"), pyro.Col("a_model")),
		))

	withP2, err := db.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	withoutP2, err := db.Optimize(q, pyro.WithHeuristic(pyro.PYRO))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uncoordinated orders (PYRO):   estimated cost %.0f\n", withoutP2.EstimatedCost())
	fmt.Printf("coordinated orders (PYRO-O):   estimated cost %.0f\n\n", withP2.EstimatedCost())
	fmt.Println(withP2.Explain())

	cur, err := db.Query(context.Background(), withP2)
	if err != nil {
		log.Fatal(err)
	}
	var n int
	for cur.Next() {
		n++
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consolidated rows: %d, page I/Os: %d\n", n, cur.Stats().IO.Total())
}
