// Quickstart: load a table, build a query, inspect the optimized plan and
// stream it through the cursor API.
package main

import (
	"context"
	"fmt"
	"log"

	"pyro"
)

func main() {
	db := pyro.Open(pyro.Config{SortMemoryBlocks: 128})

	// A small "events" table, clustered on (day) — the clustering order is
	// a favorable order the optimizer can exploit.
	var rows [][]any
	for day := 0; day < 30; day++ {
		for e := 0; e < 200; e++ {
			rows = append(rows, []any{
				int64(day), int64(e % 12), float64(e%50) + 0.25, "event",
			})
		}
	}
	if err := db.CreateTable("events", []pyro.Column{
		{Name: "day", Type: pyro.Int64},
		{Name: "kind", Type: pyro.Int64},
		{Name: "amount", Type: pyro.Float64},
		{Name: "note", Type: pyro.String, Width: 12},
	}, pyro.ClusterOn("day"), rows); err != nil {
		log.Fatal(err)
	}

	// ORDER BY (day, kind): the input is already sorted on (day), so the
	// optimizer plans a *partial* sort — each day's events are sorted
	// independently, fully pipelined, no run I/O.
	q := db.Scan("events").
		Filter(pyro.Gt(pyro.Col("amount"), pyro.Float(10))).
		OrderBy("day", "kind")

	plan, err := db.Optimize(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Plan:")
	fmt.Println(plan.Explain())

	// Stream the result. The partial sort emits the first day's rows
	// before later days have even been read; Stats reports the per-query
	// picture (no global counters to reset).
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		log.Fatal(err)
	}
	var n int
	var first []any
	for cur.Next() {
		if n == 0 {
			first = cur.Row()
		}
		n++
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		log.Fatal(err)
	}
	st := cur.Stats()
	fmt.Printf("rows: %d, first: %v (after %v)\n", n, first, st.TimeToFirstRow)
	fmt.Printf("I/O: %d page reads, %d run-file transfers (partial sort => expect 0); %d segments sorted\n",
		st.IO.PageReads, st.IO.RunTotal(), st.Sorts[0].Segments)
}
