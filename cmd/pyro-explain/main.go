// Command pyro-explain optimizes one of the paper's workload queries under
// every heuristic and prints the chosen plans side by side, the fastest way
// to see how interesting-order selection changes plan shape.
//
// Usage:
//
//	pyro-explain [-query q3|q4|q5|q6|q1|q2|example1] [-scale f]
package main

import (
	"flag"
	"fmt"
	"os"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/harness"
	"pyro/internal/logical"
	"pyro/internal/storage"
	"pyro/internal/workload"
)

func buildQuery(name string, scale harness.Scale) (logical.Node, error) {
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	rows := func(base int64) int64 {
		n := int64(float64(base) * scale.Factor)
		if n < 1 {
			n = 1
		}
		return n
	}
	switch name {
	case "q1", "q2", "q3":
		cfg := workload.DefaultTPCH()
		cfg.Suppliers = rows(100)
		cfg.PartsPerSupplier = rows(80)
		if err := workload.BuildTPCH(cat, cfg); err != nil {
			return nil, err
		}
		switch name {
		case "q1":
			return workload.Query1(cat)
		case "q2":
			return workload.Query2(cat)
		default:
			return workload.Query3(cat)
		}
	case "q4":
		if err := workload.BuildOuterJoinTables(cat, rows(30_000), 5); err != nil {
			return nil, err
		}
		return workload.Query4(cat)
	case "q5":
		if _, err := workload.BuildTran(cat, rows(40_000), 9); err != nil {
			return nil, err
		}
		return workload.Query5(cat)
	case "q6":
		if err := workload.BuildBasketAnalytics(cat, rows(50_000), rows(40_000), 13); err != nil {
			return nil, err
		}
		return workload.Query6(cat)
	case "example1":
		if err := workload.BuildExample1(cat, rows(40_000), 3); err != nil {
			return nil, err
		}
		return workload.Example1Query(cat)
	default:
		return nil, fmt.Errorf("unknown query %q", name)
	}
}

func main() {
	query := flag.String("query", "q3", "query: q1, q2, q3, q4, q5, q6, example1")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	flag.Parse()

	node, err := buildQuery(*query, harness.Scale{Factor: *scale})
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-explain:", err)
		os.Exit(1)
	}
	fmt.Printf("Logical plan:\n%s\n", logical.Format(node))
	for _, h := range []core.Heuristic{
		core.HeuristicArbitrary, core.HeuristicFavorableExact, core.HeuristicPostgres,
		core.HeuristicFavorable, core.HeuristicExhaustive,
	} {
		res, err := core.Optimize(node, core.DefaultOptions(h))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pyro-explain: %v: %v\n", h, err)
			os.Exit(1)
		}
		fmt.Printf("--- %v (estimated cost %.0f, %d goals, %d orders tried)\n%s\n",
			h, res.Plan.Cost.Total, res.Stats.GoalsExplored, res.Stats.OrdersTried, res.Plan.Format())
	}
}
