// Command pyro-lint runs pyro's custom static-analysis suite — the
// analyzers in internal/lint that prove the engine's cross-cutting
// invariants (arena release discipline, abort polling, error wrapping,
// I/O ledger routing, counter determinism) at compile time.
//
// Usage:
//
//	pyro-lint [-list] [-analyzers name,name] [-max-suppressions n] [packages]
//
// With no packages, ./... is checked. The exit status is non-zero if any
// diagnostic survives, any annotation is malformed or stale, or the
// number of pyro:nolint suppressions exceeds -max-suppressions (the CI
// gate runs with -max-suppressions 0; the repo carries none).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pyro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	maxSuppressions := flag.Int("max-suppressions", -1, "fail if more than this many pyro:nolint suppressions exist (-1: no limit)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*names, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pyro-lint: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-lint:", err)
		os.Exit(2)
	}
	res, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-lint:", err)
		os.Exit(2)
	}

	for _, d := range res.Invalid {
		fmt.Println(d)
	}
	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	for _, d := range res.Suppressed {
		fmt.Printf("%s [suppressed by pyro:nolint]\n", d)
	}

	failed := res.Failed()
	if *maxSuppressions >= 0 && len(res.Nolints) > *maxSuppressions {
		fmt.Fprintf(os.Stderr, "pyro-lint: %d pyro:nolint suppression(s), limit is %d\n", len(res.Nolints), *maxSuppressions)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("pyro-lint: %d package(s) clean under %d analyzer(s), %d suppression(s)\n",
		len(pkgs), len(analyzers), len(res.Nolints))
}
