// Command pyro-datagen generates the paper's workload datasets and prints a
// catalog summary (row counts, block counts, clustering orders, indices) —
// useful for sanity-checking experiment scales before running pyro-bench.
//
// Usage:
//
//	pyro-datagen [-workload tpch|outerjoin|tran|basket|example1|segments] [-scale f]
package main

import (
	"flag"
	"fmt"
	"os"

	"pyro/internal/catalog"
	"pyro/internal/storage"
	"pyro/internal/workload"
)

func main() {
	wl := flag.String("workload", "tpch", "workload: tpch, outerjoin, tran, basket, example1, segments")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	flag.Parse()

	rows := func(base int64) int64 {
		n := int64(float64(base) * *scale)
		if n < 1 {
			n = 1
		}
		return n
	}
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	var err error
	switch *wl {
	case "tpch":
		cfg := workload.DefaultTPCH()
		cfg.Suppliers = rows(100)
		cfg.PartsPerSupplier = rows(80)
		err = workload.BuildTPCH(cat, cfg)
	case "outerjoin":
		err = workload.BuildOuterJoinTables(cat, rows(30_000), 5)
	case "tran":
		_, err = workload.BuildTran(cat, rows(40_000), 9)
	case "basket":
		err = workload.BuildBasketAnalytics(cat, rows(50_000), rows(40_000), 13)
	case "example1":
		err = workload.BuildExample1(cat, rows(40_000), 3)
	case "segments":
		for i := int64(1); i <= rows(100_000); i *= 10 {
			if _, err = workload.BuildSegmentTable(cat, fmt.Sprintf("seg%d", i), rows(100_000), i, 11); err != nil {
				break
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "pyro-datagen: unknown workload %q\n", *wl)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-datagen:", err)
		os.Exit(1)
	}

	fmt.Printf("%-12s %10s %8s  %-28s %s\n", "table", "rows", "blocks", "clustered on", "indices")
	for _, name := range cat.TableNames() {
		tb, err := cat.Table(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyro-datagen:", err)
			os.Exit(1)
		}
		idx := ""
		for i, ix := range tb.Indices {
			if i > 0 {
				idx += ", "
			}
			idx += fmt.Sprintf("%s%v", ix.Name, ix.KeyOrder)
		}
		fmt.Printf("%-12s %10d %8d  %-28s %s\n",
			tb.Name, tb.Stats.NumRows, tb.NumBlocks(), tb.ClusterOrder.String(), idx)
	}
	fmt.Printf("total pages on disk: %d\n", disk.TotalPages())
}
