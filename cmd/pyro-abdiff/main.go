// Command pyro-abdiff turns `go test -bench` output into a benchstat-style
// A/B table: sub-benchmarks of one parent (BenchmarkFoo/compare,
// BenchmarkFoo/radix, ...) are grouped, repeated -count runs are averaged,
// and every arm is reported as a delta against the parent's first arm.
//
//	go test -run '^$' -bench 'RunFormation|SortKeys' -count 3 . | pyro-abdiff
//
// It exists so the Makefile's bench-ab target (and the CI bench-smoke job)
// can surface regressions in either arm of the key-mode and run-formation
// ablations without external tooling.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// sample is one arm's accumulated ns/op measurements.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 { return s.sum / float64(s.n) }

func main() {
	type group struct {
		name string
		arms []string // insertion order
		data map[string]*sample
	}
	var groups []*group
	byName := make(map[string]*group)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		slash := strings.IndexByte(name, '/')
		if slash < 0 {
			continue // not an A/B sub-benchmark
		}
		parent := name[:slash]
		arm := name[slash+1:]
		// Strip the trailing -GOMAXPROCS go test appends.
		if dash := strings.LastIndexByte(arm, '-'); dash > 0 {
			if _, err := strconv.Atoi(arm[dash+1:]); err == nil {
				arm = arm[:dash]
			}
		}
		nsop := -1.0
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err == nil {
					nsop = v
				}
				break
			}
		}
		if nsop < 0 {
			continue
		}
		g := byName[parent]
		if g == nil {
			g = &group{name: parent, data: make(map[string]*sample)}
			byName[parent] = g
			groups = append(groups, g)
		}
		s := g.data[arm]
		if s == nil {
			s = &sample{}
			g.data[arm] = s
			g.arms = append(g.arms, arm)
		}
		s.sum += nsop
		s.n++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "pyro-abdiff:", err)
		os.Exit(1)
	}

	printed := false
	for _, g := range groups {
		if len(g.arms) < 2 {
			continue
		}
		if !printed {
			fmt.Printf("\n=== A/B deltas (vs first arm, mean ns/op) ===\n")
			printed = true
		}
		base := g.data[g.arms[0]]
		fmt.Printf("\n%s\n", g.name)
		for i, arm := range g.arms {
			s := g.data[arm]
			if i == 0 {
				fmt.Printf("  %-12s %14.0f ns/op   (baseline, n=%d)\n", arm, s.mean(), s.n)
				continue
			}
			delta := (s.mean() - base.mean()) / base.mean() * 100
			fmt.Printf("  %-12s %14.0f ns/op   %+.1f%%\n", arm, s.mean(), delta)
		}
	}
	if !printed {
		fmt.Println("\npyro-abdiff: no A/B sub-benchmarks found in input")
	}
}
