// Command pyro-abdiff turns `go test -bench` output into a benchstat-style
// A/B table and, with -baseline, into a CI regression gate.
//
// A/B mode (default): sub-benchmarks of one parent (BenchmarkFoo/compare,
// BenchmarkFoo/radix, ...) are grouped, repeated -count runs are averaged,
// and every arm is reported as a delta against the parent's first arm.
//
//	go test -run '^$' -bench 'RunFormation|SortKeys' -count 3 . | pyro-abdiff
//
// Gate mode: -baseline FILE compares the input against a checked-in
// `go test -bench` output file and exits 1 when a deterministic work
// counter regresses beyond -tolerance percent. Wall-clock (ns/op) is
// never gated — it is noise on shared CI runners — but the engine's
// comparison counts, radix passes and page I/O are exact, machine-
// independent replicas of each arm's work (the golden tests pin their
// parallelism invariance), so a plan-shape or algorithm regression moves
// them reproducibly:
//
//	go test -run '^$' -bench ... . | pyro-abdiff -baseline testdata/bench-baseline.txt -tolerance 2
//
// Counters that *improve* beyond tolerance are reported too (exit 0) as a
// reminder to refresh the baseline with `make bench-baseline`.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// gateMetrics are the units the -baseline gate compares. Everything else
// (ns/op, B/op, latency percentiles) is informational only.
var gateMetrics = map[string]bool{
	"comparisons/op":        true,
	"radix-passes/op":       true,
	"merge-bucket-skips/op": true,
	"flat-run-pages/op":     true,
	"io-pages/op":           true,
	"run-pages/op":          true,
	// Throughput arms report the exact drained row count; row and chunk
	// executor paths must agree on it bit for bit.
	"rows/op": true,
}

// sample is one metric's accumulated measurements across -count runs.
type sample struct {
	sum float64
	n   int
}

func (s *sample) mean() float64 { return s.sum / float64(s.n) }

// bench is one benchmark (full name, -GOMAXPROCS suffix stripped) with all
// its reported metrics.
type bench struct {
	name    string
	metrics map[string]*sample
	units   []string // insertion order
}

func (b *bench) add(unit string, v float64) {
	s := b.metrics[unit]
	if s == nil {
		s = &sample{}
		b.metrics[unit] = s
		b.units = append(b.units, unit)
	}
	s.sum += v
	s.n++
}

// results holds every benchmark of one `go test -bench` output, in
// first-seen order.
type results struct {
	order []string
	by    map[string]*bench
}

func newResults() *results { return &results{by: make(map[string]*bench)} }

func (r *results) get(name string) *bench {
	b := r.by[name]
	if b == nil {
		b = &bench{name: name, metrics: make(map[string]*sample)}
		r.by[name] = b
		r.order = append(r.order, name)
	}
	return b
}

// parseLine folds one output line into r if it is a benchmark result line:
// "BenchmarkName-8  N  v1 unit1  v2 unit2 ...".
func (r *results) parseLine(line string) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return
	}
	name := stripProcs(fields[0])
	var b *bench
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return // not a result line after all
		}
		if b == nil {
			b = r.get(name)
		}
		b.add(fields[i+1], v)
	}
}

// stripProcs removes the trailing -GOMAXPROCS go test appends to benchmark
// names, so runs from machines with different core counts compare.
func stripProcs(name string) string {
	if dash := strings.LastIndexByte(name, '-'); dash > 0 {
		if _, err := strconv.Atoi(name[dash+1:]); err == nil {
			return name[:dash]
		}
	}
	return name
}

func parse(rd io.Reader, echo bool) (*results, error) {
	r := newResults()
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if echo {
			fmt.Println(line)
		}
		r.parseLine(line)
	}
	return r, sc.Err()
}

// printABTable renders the benchstat-style delta table over ns/op for
// every parent benchmark with at least two sub-benchmark arms.
func printABTable(r *results) {
	type group struct {
		name string
		arms []*bench
	}
	var groups []*group
	byName := make(map[string]*group)
	for _, name := range r.order {
		slash := strings.IndexByte(name, '/')
		if slash < 0 {
			continue
		}
		parent := name[:slash]
		g := byName[parent]
		if g == nil {
			g = &group{name: parent}
			byName[parent] = g
			groups = append(groups, g)
		}
		if r.by[name].metrics["ns/op"] != nil {
			g.arms = append(g.arms, r.by[name])
		}
	}
	printed := false
	for _, g := range groups {
		if len(g.arms) < 2 {
			continue
		}
		if !printed {
			fmt.Printf("\n=== A/B deltas (vs first arm, mean ns/op) ===\n")
			printed = true
		}
		base := g.arms[0].metrics["ns/op"]
		fmt.Printf("\n%s\n", g.name)
		for i, arm := range g.arms {
			s := arm.metrics["ns/op"]
			armName := arm.name[strings.IndexByte(arm.name, '/')+1:]
			if i == 0 {
				fmt.Printf("  %-12s %14.0f ns/op   (baseline, n=%d)\n", armName, s.mean(), s.n)
				continue
			}
			delta := (s.mean() - base.mean()) / base.mean() * 100
			fmt.Printf("  %-12s %14.0f ns/op   %+.1f%%\n", armName, s.mean(), delta)
		}
	}
	if !printed {
		fmt.Println("\npyro-abdiff: no A/B sub-benchmarks found in input")
	}
}

// gate compares cur against base on the deterministic counters and returns
// the number of regressions beyond tol percent.
func gate(base, cur *results, tol float64) int {
	fmt.Printf("\n=== bench-gate: deterministic counters vs baseline (tolerance %.1f%%) ===\n", tol)
	regressions, improvements, compared := 0, 0, 0
	for _, name := range cur.order {
		cb := cur.by[name]
		bb := base.by[name]
		if bb == nil {
			fmt.Printf("  new benchmark %s (not in baseline; run make bench-baseline)\n", name)
			continue
		}
		for _, unit := range cb.units {
			if !gateMetrics[unit] {
				continue
			}
			bs := bb.metrics[unit]
			if bs == nil {
				continue
			}
			compared++
			b, c := bs.mean(), cb.metrics[unit].mean()
			var delta float64
			switch {
			case b == c:
				continue
			case b == 0:
				delta = 100 // counter appeared from zero: treat as a full regression
			default:
				delta = (c - b) / b * 100
			}
			switch {
			case delta > tol:
				regressions++
				fmt.Printf("  REGRESSION %s %s: %.0f -> %.0f (%+.1f%%)\n", name, unit, b, c, delta)
			case delta < -tol:
				improvements++
				fmt.Printf("  improved   %s %s: %.0f -> %.0f (%+.1f%%) — refresh with make bench-baseline\n",
					name, unit, b, c, delta)
			}
		}
	}
	switch {
	case compared == 0:
		// A gate that silently compares nothing would pass forever; make
		// the misconfiguration (wrong -bench filter, stale baseline) loud.
		regressions++
		fmt.Println("  REGRESSION: no gated counters found in both input and baseline")
	case regressions == 0:
		fmt.Printf("  OK: %d counters within tolerance (%d improved)\n", compared, improvements)
	default:
		fmt.Printf("  FAIL: %d of %d counters regressed\n", regressions, compared)
	}
	return regressions
}

func main() {
	baseline := flag.String("baseline", "", "baseline `file` (raw go test -bench output) to gate deterministic counters against")
	tolerance := flag.Float64("tolerance", 2.0, "gate tolerance in percent")
	flag.Parse()

	cur, err := parse(os.Stdin, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-abdiff:", err)
		os.Exit(1)
	}
	printABTable(cur)

	if *baseline == "" {
		return
	}
	f, err := os.Open(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-abdiff:", err)
		os.Exit(1)
	}
	base, err := parse(f, false)
	err = errors.Join(err, f.Close())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-abdiff:", err)
		os.Exit(1)
	}
	if gate(base, cur, *tolerance) > 0 {
		os.Exit(1)
	}
}
