package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pyro"
)

// serveConfig parameterizes the many-cursor serving workload.
type serveConfig struct {
	Queries     int   // total Top-K queries to run
	Workers     int   // concurrent client goroutines issuing them
	TopK        int64 // LIMIT per query
	MaxQueries  int   // admission gate width (0 = unlimited)
	GlobalBlks  int   // global sort-memory pool in blocks
	PerSortBlks int   // per-sort ask in blocks
}

// runServe exercises the serving layer end to end: a governed database, a
// bounded admission gate, and Workers concurrent clients draining Queries
// Top-K cursors between them. It prints the tail-latency distribution
// (p50/p95/p99), throughput, and the governor/admission/plan-cache
// counters — the numbers BENCHMARKS.md's serving table records. Unlike the
// paper-figure experiments this is not a reproduction of a published
// table; it is the load shape the PR 6 serving layer exists for.
func runServe(w io.Writer, cfg serveConfig) error {
	db := pyro.Open(pyro.Config{
		SortMemoryBlocks:       cfg.PerSortBlks,
		GlobalSortMemoryBlocks: cfg.GlobalBlks,
		MaxConcurrentQueries:   cfg.MaxQueries,
	})
	const n, segSize = 20_000, 10_000
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		rows[i] = []any{int64(i / segSize), int64(i * 7 % 10_000), int64(i)}
	}
	if err := db.CreateTable("events", []pyro.Column{
		{Name: "g", Type: pyro.Int64},
		{Name: "v", Type: pyro.Int64},
		{Name: "pad", Type: pyro.Int64},
	}, pyro.ClusterOn("g"), rows); err != nil {
		return err
	}

	plan, err := db.Optimize(db.Scan("events").OrderBy("g", "v").Limit(cfg.TopK))
	if err != nil {
		return err
	}
	ctx := context.Background()
	lat := make([]time.Duration, cfg.Queries)
	var next atomic.Int64
	var firstErr atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < cfg.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1) - 1)
				if j >= cfg.Queries {
					return
				}
				qs := time.Now()
				cur, err := db.Query(ctx, plan)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				for cur.Next() {
				}
				err = cur.Err()
				if cerr := cur.Close(); err == nil {
					err = cerr
				}
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				lat[j] = time.Since(qs)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return err
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration { return lat[int(p*float64(len(lat)-1))] }
	fmt.Fprintf(w, "== serving: %d Top-%d queries, %d workers, gate %d, pool %d blocks (%d/sort) ==\n",
		cfg.Queries, cfg.TopK, cfg.Workers, cfg.MaxQueries, cfg.GlobalBlks, cfg.PerSortBlks)
	fmt.Fprintf(w, "elapsed_ms=%.1f qps=%.0f\n",
		float64(elapsed)/float64(time.Millisecond),
		float64(cfg.Queries)/elapsed.Seconds())
	fmt.Fprintf(w, "latency_ms p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
		float64(pct(0.50))/float64(time.Millisecond),
		float64(pct(0.95))/float64(time.Millisecond),
		float64(pct(0.99))/float64(time.Millisecond),
		float64(lat[len(lat)-1])/float64(time.Millisecond))
	s := db.ServingStats()
	fmt.Fprintf(w, "governor grants=%d waits=%d shrinks=%d reclaimed_blocks=%d peak_blocks=%d (pool %d)\n",
		s.Governor.Grants, s.Governor.GrantWaits, s.Governor.Shrinks,
		s.Governor.ReclaimedBlocks, s.Governor.PeakGrantedBlocks, cfg.GlobalBlks)
	fmt.Fprintf(w, "admission admitted=%d waits=%d peak_live=%d\n",
		s.Admission.Admitted, s.Admission.Waits, s.Admission.PeakLive)
	fmt.Fprintf(w, "plan_cache hits=%d misses=%d evictions=%d entries=%d\n",
		s.PlanCache.Hits, s.PlanCache.Misses, s.PlanCache.Evictions, s.PlanCache.Entries)
	if s.Governor.PeakGrantedBlocks > cfg.GlobalBlks {
		return fmt.Errorf("governor peak %d blocks exceeds the %d-block pool",
			s.Governor.PeakGrantedBlocks, cfg.GlobalBlks)
	}
	return nil
}
