// Command pyro-bench reproduces the paper's evaluation tables and figures
// on the simulated engine.
//
// Usage:
//
//	pyro-bench [-exp all|example1|a1|a2|a3|a4|b1|b2|b3|scalability|refine] [-scale f]
//	           [-sort-par n] [-spill-par n] [-run-formation adaptive|compare|radix]
//	           [-limit k]
//
// -scale multiplies dataset sizes (1.0 ≈ seconds per experiment).
// Execution tables report first_row_ms (time to the first output tuple —
// the pipelining benefit a streaming consumer sees) alongside time_ms.
// -sort-par bounds concurrent MRS segment sorts per enforcer (0 =
// GOMAXPROCS, 1 = the paper's serial algorithm); -spill-par bounds
// concurrent spill jobs when a sort exceeds memory (0 = inherit -sort-par,
// 1 = serial spilling). -run-formation selects how enforcers sort
// in-memory buffers: MSD radix partitioning of the normalized keys,
// comparison sorts, or adaptive (the default). Comparison and I/O counts
// are identical at every parallelism setting, and output key order, run
// structure and I/O are identical across run-formation modes (only the
// work accounting moves between comparisons and radix passes) — so the
// paper's tables stay valid while wall-clock times drop. -limit sets the
// Top-K row count the limit-aware experiment plans under (default 10):
// its table shows the two-phase cost model's estimated full-drain and
// startup costs next to measured time_ms/first_row_ms for the pipelined
// and blocking arms.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pyro/internal/harness"
	"pyro/internal/xsort"
)

func main() {
	var names []string
	for n := range harness.Experiments {
		names = append(names, n)
	}
	sort.Strings(names)

	exp := flag.String("exp", "all", "experiment to run: all, serve, or one of "+strings.Join(names, ", "))
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	sortPar := flag.Int("sort-par", 0, "MRS segment-sort parallelism (0 = GOMAXPROCS, 1 = serial)")
	spillPar := flag.Int("spill-par", 0, "spill-path parallelism (0 = inherit -sort-par, 1 = serial)")
	runForm := flag.String("run-formation", "adaptive", "run formation: adaptive, compare or radix")
	limit := flag.Int64("limit", 0, "Top-K row count for the limit-aware experiments (0 = default 10)")
	// serve-mode knobs (ignored by the paper experiments).
	queries := flag.Int("cursors", 2000, "serve: total Top-K queries to run")
	workers := flag.Int("workers", 64, "serve: concurrent client goroutines")
	topK := flag.Int64("topk", 5, "serve: LIMIT per query")
	maxQ := flag.Int("max-queries", 32, "serve: admission gate width (0 = unlimited)")
	globalBlks := flag.Int("global-blocks", 64, "serve: global sort-memory pool in blocks")
	sortBlks := flag.Int("sort-blocks", 16, "serve: per-sort memory ask in blocks")
	// chaos-mode knobs (the serve knobs above shape its workload too).
	faults := flag.Int("faults", 200, "chaos: fault points drawn into the schedule")
	chaosSeed := flag.Int64("chaos-seed", 0, "chaos: schedule seed (0 = derive from the clock; printed for replay)")
	flag.Parse()

	if *exp == "chaos" {
		err := runChaos(os.Stdout, chaosConfig{
			Queries:     *queries,
			Workers:     *workers,
			TopK:        *topK,
			MaxQueries:  *maxQ,
			GlobalBlks:  *globalBlks,
			PerSortBlks: *sortBlks,
			Faults:      *faults,
			Seed:        *chaosSeed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyro-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *exp == "serve" {
		err := runServe(os.Stdout, serveConfig{
			Queries:     *queries,
			Workers:     *workers,
			TopK:        *topK,
			MaxQueries:  *maxQ,
			GlobalBlks:  *globalBlks,
			PerSortBlks: *sortBlks,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "pyro-bench:", err)
			os.Exit(1)
		}
		return
	}

	rf, err := xsort.ParseRunFormation(*runForm)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pyro-bench:", err)
		os.Exit(2)
	}
	if *limit < 0 {
		fmt.Fprintf(os.Stderr, "pyro-bench: negative -limit %d\n", *limit)
		os.Exit(2)
	}
	s := harness.Scale{Factor: *scale, SortParallelism: *sortPar, SpillParallelism: *spillPar, RunFormation: rf, Limit: *limit}
	if *exp == "all" {
		if err := harness.RunAll(os.Stdout, s); err != nil {
			fmt.Fprintln(os.Stderr, "pyro-bench:", err)
			os.Exit(1)
		}
		return
	}
	fn, ok := harness.Experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "pyro-bench: unknown experiment %q (have: %s)\n", *exp, strings.Join(names, ", "))
		os.Exit(2)
	}
	if err := fn(os.Stdout, s); err != nil {
		fmt.Fprintln(os.Stderr, "pyro-bench:", err)
		os.Exit(1)
	}
}
