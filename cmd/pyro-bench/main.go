// Command pyro-bench reproduces the paper's evaluation tables and figures
// on the simulated engine.
//
// Usage:
//
//	pyro-bench [-exp all|example1|a1|a2|a3|a4|b1|b2|b3|scalability|refine] [-scale f]
//	           [-sort-par n] [-spill-par n]
//
// -scale multiplies dataset sizes (1.0 ≈ seconds per experiment).
// -sort-par bounds concurrent MRS segment sorts per enforcer (0 =
// GOMAXPROCS, 1 = the paper's serial algorithm); -spill-par bounds
// concurrent spill jobs when a sort exceeds memory (0 = inherit -sort-par,
// 1 = serial spilling). Comparison and I/O counts are identical at every
// setting — parallelism is a pure scheduling change — so the paper's
// tables stay valid while wall-clock times drop on multi-core hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"pyro/internal/harness"
)

func main() {
	var names []string
	for n := range harness.Experiments {
		names = append(names, n)
	}
	sort.Strings(names)

	exp := flag.String("exp", "all", "experiment to run: all or one of "+strings.Join(names, ", "))
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	sortPar := flag.Int("sort-par", 0, "MRS segment-sort parallelism (0 = GOMAXPROCS, 1 = serial)")
	spillPar := flag.Int("spill-par", 0, "spill-path parallelism (0 = inherit -sort-par, 1 = serial)")
	flag.Parse()

	s := harness.Scale{Factor: *scale, SortParallelism: *sortPar, SpillParallelism: *spillPar}
	if *exp == "all" {
		if err := harness.RunAll(os.Stdout, s); err != nil {
			fmt.Fprintln(os.Stderr, "pyro-bench:", err)
			os.Exit(1)
		}
		return
	}
	fn, ok := harness.Experiments[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "pyro-bench: unknown experiment %q (have: %s)\n", *exp, strings.Join(names, ", "))
		os.Exit(2)
	}
	if err := fn(os.Stdout, s); err != nil {
		fmt.Fprintln(os.Stderr, "pyro-bench:", err)
		os.Exit(1)
	}
}
