package main

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pyro"
	"pyro/internal/storage"
	"pyro/internal/storage/faulttest"
)

// chaosConfig parameterizes the fault-injected serving workload.
type chaosConfig struct {
	Queries     int   // total Top-K queries to run
	Workers     int   // concurrent client goroutines issuing them
	TopK        int64 // LIMIT per query
	MaxQueries  int   // admission gate width (0 = unlimited)
	GlobalBlks  int   // global sort-memory pool in blocks
	PerSortBlks int   // per-sort ask in blocks
	Faults      int   // fault points drawn into the schedule
	Seed        int64 // schedule seed (0 = derive from the clock)
}

// runChaos drives the serve experiment's concurrent Top-K workload with a
// randomized storage fault schedule installed: Faults page transfers drawn
// reproducibly from Seed fail (every eighth one panics at the storage call
// site instead) while Workers clients drain Queries cursors. It prints the
// seed, how many queries survived versus failed cleanly, and the
// end-of-run audit — leaked temp files/arenas, pool and gate restoration,
// and a final no-fault query — and returns an error if any audit fails.
// Failed-clean means the fault came back as a Cursor error; a hang, an
// escaped panic or a leak is a bug this experiment exists to catch.
func runChaos(w io.Writer, cfg chaosConfig) error {
	db := pyro.Open(pyro.Config{
		SortMemoryBlocks:       cfg.PerSortBlks,
		GlobalSortMemoryBlocks: cfg.GlobalBlks,
		MaxConcurrentQueries:   cfg.MaxQueries,
	})
	const n, segSize = 20_000, 10_000
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		rows[i] = []any{int64(i / segSize), int64(i * 7 % 10_000), int64(i)}
	}
	if err := db.CreateTable("events", []pyro.Column{
		{Name: "g", Type: pyro.Int64},
		{Name: "v", Type: pyro.Int64},
		{Name: "pad", Type: pyro.Int64},
	}, pyro.ClusterOn("g"), rows); err != nil {
		return err
	}
	plan, err := db.Optimize(db.Scan("events").OrderBy("g", "v").Limit(cfg.TopK))
	if err != nil {
		return err
	}

	runOne := func() error {
		cur, err := db.Query(context.Background(), plan)
		if err != nil {
			return err
		}
		for cur.Next() {
		}
		err = cur.Err()
		if cerr := cur.Close(); err == nil {
			err = cerr
		}
		return err
	}

	// One observed query calibrates the per-query transfer counts; the
	// schedule is drawn across the whole run's transfer space so faults
	// land throughout, not just in the first queries.
	counts, err := faulttest.Observe(db.Disk(), runOne)
	if err != nil {
		return err
	}
	scaled := make(map[storage.FaultClass]int64, len(counts))
	for c, k := range counts {
		scaled[c] = k * int64(cfg.Queries)
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	points := faulttest.RandomSchedule(seed, scaled, cfg.Faults)
	rules := make([]storage.FaultRule, len(points))
	for i, p := range points {
		rules[i] = storage.FaultRule{Class: p.Class, At: p.At, Panic: i%8 == 7}
	}
	fp := storage.NewFaultPlan(rules...)
	db.Disk().SetFaultPlan(fp)

	var survived, failedClean atomic.Int64
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for wk := 0; wk < cfg.Workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if int(next.Add(1)) > cfg.Queries {
					return
				}
				if err := runOne(); err != nil {
					failedClean.Add(1)
				} else {
					survived.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fired := fp.Triggered()
	db.Disk().SetFaultPlan(nil)

	leakedFiles := db.Disk().LiveTempFiles()
	leakedArenas := db.Disk().LiveArenas()
	s := db.ServingStats()
	poolRestored := s.Governor.GrantedBlocks == 0 && s.Governor.LiveGrants == 0 &&
		s.Admission.Live == 0

	fmt.Fprintf(w, "== chaos: %d Top-%d queries, %d workers, %d faults (seed %d) ==\n",
		cfg.Queries, cfg.TopK, cfg.Workers, len(points), seed)
	fmt.Fprintf(w, "elapsed_ms=%.1f qps=%.0f\n",
		float64(elapsed)/float64(time.Millisecond),
		float64(cfg.Queries)/elapsed.Seconds())
	fmt.Fprintf(w, "queries survived=%d failed_clean=%d faults_fired=%d/%d\n",
		survived.Load(), failedClean.Load(), fired, len(points))
	fmt.Fprintf(w, "audit leaked_files=%d leaked_arenas=%d pool_restored=%v\n",
		len(leakedFiles), leakedArenas, poolRestored)

	if len(leakedFiles) > 0 || leakedArenas > 0 {
		sample := leakedFiles
		if len(sample) > 5 {
			sample = sample[:5]
		}
		return fmt.Errorf("chaos run leaked %d temp files, %d arenas (seed %d): %v...",
			len(leakedFiles), leakedArenas, seed, sample)
	}
	if !poolRestored {
		return fmt.Errorf("serving pool not restored after chaos run (seed %d): %d blocks / %d grants / %d gate slots live",
			seed, s.Governor.GrantedBlocks, s.Governor.LiveGrants, s.Admission.Live)
	}
	if got := survived.Load() + failedClean.Load(); got != int64(cfg.Queries) {
		return fmt.Errorf("lost queries: %d of %d accounted for (seed %d)", got, cfg.Queries, seed)
	}
	// The device is healthy again; the workload must be too.
	if err := runOne(); err != nil {
		return fmt.Errorf("post-chaos query failed (seed %d): %w", seed, err)
	}
	return nil
}
