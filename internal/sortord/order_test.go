package sortord

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEmptyOrder(t *testing.T) {
	if !Empty.IsEmpty() {
		t.Fatal("Empty should be empty")
	}
	if Empty.Len() != 0 {
		t.Fatalf("len(ε) = %d, want 0", Empty.Len())
	}
	if got := Empty.String(); got != "()" {
		t.Fatalf("ε renders as %q, want ()", got)
	}
}

func TestNewCopiesInput(t *testing.T) {
	attrs := []string{"a", "b"}
	o := New(attrs...)
	attrs[0] = "z"
	if o[0] != "a" {
		t.Fatal("New must copy its input slice")
	}
}

func TestPrefixOf(t *testing.T) {
	cases := []struct {
		o, p           Order
		prefix, strict bool
	}{
		{Empty, Empty, true, false},
		{Empty, New("a"), true, true},
		{New("a"), New("a"), true, false},
		{New("a"), New("a", "b"), true, true},
		{New("a", "b"), New("a"), false, false},
		{New("b"), New("a", "b"), false, false},
		{New("a", "b"), New("a", "c"), false, false},
		{New("a", "b"), New("a", "b", "c"), true, true},
	}
	for _, c := range cases {
		if got := c.o.PrefixOf(c.p); got != c.prefix {
			t.Errorf("%v ≤ %v = %v, want %v", c.o, c.p, got, c.prefix)
		}
		if got := c.o.StrictPrefixOf(c.p); got != c.strict {
			t.Errorf("%v < %v = %v, want %v", c.o, c.p, got, c.strict)
		}
	}
}

func TestLCP(t *testing.T) {
	cases := []struct{ o1, o2, want Order }{
		{Empty, Empty, Empty},
		{New("a"), Empty, Empty},
		{New("a", "b"), New("a", "c"), New("a")},
		{New("a", "b", "c"), New("a", "b", "c"), New("a", "b", "c")},
		{New("x"), New("y"), Empty},
		{New("a", "b", "c"), New("a", "b"), New("a", "b")},
	}
	for _, c := range cases {
		if got := LCP(c.o1, c.o2); !got.Equal(c.want) {
			t.Errorf("LCP(%v,%v) = %v, want %v", c.o1, c.o2, got, c.want)
		}
	}
}

func TestConcatMinus(t *testing.T) {
	o1 := New("a", "b", "c")
	o2 := New("a", "b")
	rest, ok := Minus(o1, o2)
	if !ok || !rest.Equal(New("c")) {
		t.Fatalf("Minus(%v,%v) = %v,%v", o1, o2, rest, ok)
	}
	if got := Concat(o2, rest); !got.Equal(o1) {
		t.Fatalf("Concat(o2, o1-o2) = %v, want %v", got, o1)
	}
	if _, ok := Minus(o2, o1); ok {
		t.Fatal("Minus should be undefined when o2 is not a prefix of o1")
	}
	if _, ok := Minus(New("a", "b"), New("b")); ok {
		t.Fatal("Minus defined only for prefixes")
	}
}

func TestLongestPrefixIn(t *testing.T) {
	o := New("a", "b", "c", "d")
	cases := []struct {
		set  []string
		want Order
	}{
		{[]string{"a", "b", "c", "d"}, o},
		{[]string{"a", "b"}, New("a", "b")},
		{[]string{"b", "c"}, Empty},
		{[]string{"a", "c"}, New("a")},
		{nil, Empty},
	}
	for _, c := range cases {
		if got := o.LongestPrefixIn(NewAttrSet(c.set...)); !got.Equal(c.want) {
			t.Errorf("%v ∧ %v = %v, want %v", o, c.set, got, c.want)
		}
	}
}

func TestDedup(t *testing.T) {
	o := Order{"a", "b", "a", "c", "b"}
	if got := o.Dedup(); !got.Equal(New("a", "b", "c")) {
		t.Fatalf("Dedup = %v", got)
	}
	if !o.HasDuplicates() {
		t.Fatal("HasDuplicates should be true")
	}
	if New("a", "b").HasDuplicates() {
		t.Fatal("no duplicates expected")
	}
}

func TestExtendToSet(t *testing.T) {
	o := New("c")
	s := NewAttrSet("a", "b", "c")
	got := o.ExtendToSet(s)
	if got.Len() != 3 || got[0] != "c" {
		t.Fatalf("ExtendToSet = %v", got)
	}
	if !got.Attrs().Equal(s) {
		t.Fatalf("ExtendToSet attrs = %v, want %v", got.Attrs(), s)
	}
	// Extending with a set already covered is a no-op.
	if got2 := got.ExtendToSet(s); !got2.Equal(got) {
		t.Fatalf("idempotent extend failed: %v", got2)
	}
}

func TestPermutations(t *testing.T) {
	s := NewAttrSet("a", "b", "c")
	perms := Permutations(s)
	if len(perms) != 6 {
		t.Fatalf("3! = 6 permutations, got %d", len(perms))
	}
	seen := map[string]bool{}
	for _, p := range perms {
		if p.Len() != 3 || !p.Attrs().Equal(s) {
			t.Fatalf("bad permutation %v", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate permutation %v", p)
		}
		seen[p.Key()] = true
	}
}

func TestPermutationsEmpty(t *testing.T) {
	perms := Permutations(NewAttrSet())
	if len(perms) != 1 || !perms[0].IsEmpty() {
		t.Fatalf("P(∅) should be {ε}, got %v", perms)
	}
}

func TestCompareAndSortOrders(t *testing.T) {
	a, b, c := New("a"), New("a", "b"), New("b")
	if Compare(a, b) >= 0 || Compare(b, a) <= 0 || Compare(a, a) != 0 || Compare(b, c) >= 0 {
		t.Fatal("Compare ordering wrong")
	}
	got := SortOrders([]Order{c, b, a})
	want := []Order{a, b, c}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortOrders = %v, want %v", got, want)
	}
}

func TestKeyUniqueness(t *testing.T) {
	// ("ab") vs ("a","b") must have different keys.
	if New("ab").Key() == New("a", "b").Key() {
		t.Fatal("Key collision between distinct orders")
	}
}

// randomOrder builds a random duplicate-free order over a small alphabet.
func randomOrder(r *rand.Rand) Order {
	alphabet := []string{"a", "b", "c", "d", "e", "f"}
	r.Shuffle(len(alphabet), func(i, j int) { alphabet[i], alphabet[j] = alphabet[j], alphabet[i] })
	n := r.Intn(len(alphabet) + 1)
	return New(alphabet[:n]...)
}

func TestQuickLCPProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomOrder(r))
			vals[1] = reflect.ValueOf(randomOrder(r))
		},
	}
	// LCP is symmetric, is a prefix of both, and is the longest such prefix.
	prop := func(o1, o2 Order) bool {
		l := LCP(o1, o2)
		if !l.Equal(LCP(o2, o1)) {
			return false
		}
		if !l.PrefixOf(o1) || !l.PrefixOf(o2) {
			return false
		}
		// One attribute longer is not a common prefix.
		if len(o1) > l.Len() && len(o2) > l.Len() && o1[l.Len()] == o2[l.Len()] {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickConcatMinusInverse(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			o := randomOrder(r)
			k := 0
			if len(o) > 0 {
				k = r.Intn(len(o) + 1)
			}
			vals[0] = reflect.ValueOf(o)
			vals[1] = reflect.ValueOf(o[:k].Clone())
		},
	}
	prop := func(o, prefix Order) bool {
		rest, ok := Minus(o, prefix)
		return ok && Concat(prefix, rest).Equal(o)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRestrictIsPrefix(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randomOrder(r))
			vals[1] = reflect.ValueOf(randomOrder(r)) // reuse as attr source
		},
	}
	prop := func(o, src Order) bool {
		s := src.Attrs()
		p := o.LongestPrefixIn(s)
		if !p.PrefixOf(o) {
			return false
		}
		for _, a := range p {
			if !s.Contains(a) {
				return false
			}
		}
		// Maximality: the next attribute (if any) is not in s.
		return p.Len() == o.Len() || !s.Contains(o[p.Len()])
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAttrSetOps(t *testing.T) {
	s := NewAttrSet("a", "b")
	u := NewAttrSet("b", "c")
	if got := s.Union(u); !got.Equal(NewAttrSet("a", "b", "c")) {
		t.Fatalf("union = %v", got)
	}
	if got := s.Intersect(u); !got.Equal(NewAttrSet("b")) {
		t.Fatalf("intersect = %v", got)
	}
	if got := s.Difference(u); !got.Equal(NewAttrSet("a")) {
		t.Fatalf("difference = %v", got)
	}
	if s.Equal(u) {
		t.Fatal("sets should differ")
	}
	if got := s.String(); got != "{a, b}" {
		t.Fatalf("String = %q", got)
	}
	if !NewAttrSet().IsEmpty() {
		t.Fatal("empty set")
	}
	c := s.Clone()
	c.Add("z")
	if s.Contains("z") {
		t.Fatal("Clone must not alias")
	}
}

func TestAPermuteDeterministic(t *testing.T) {
	s := NewAttrSet("q", "p", "r")
	if got := APermute(s); !got.Equal(New("p", "q", "r")) {
		t.Fatalf("APermute = %v, want sorted", got)
	}
}
