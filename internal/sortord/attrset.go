package sortord

import (
	"sort"
	"strings"
)

// AttrSet is a set of attribute names. The zero value is NOT usable; create
// with NewAttrSet. Sets are mutable; use Clone before sharing.
type AttrSet map[string]struct{}

// NewAttrSet returns a set containing the given attributes.
func NewAttrSet(attrs ...string) AttrSet {
	s := make(AttrSet, len(attrs))
	for _, a := range attrs {
		s[a] = struct{}{}
	}
	return s
}

// Add inserts a into the set.
func (s AttrSet) Add(a string) { s[a] = struct{}{} }

// AddAll inserts every attribute of t into s.
func (s AttrSet) AddAll(t AttrSet) {
	for a := range t {
		s[a] = struct{}{}
	}
}

// Contains reports membership.
func (s AttrSet) Contains(a string) bool {
	_, ok := s[a]
	return ok
}

// ContainsAll reports whether every element of t is in s.
func (s AttrSet) ContainsAll(t AttrSet) bool {
	for a := range t {
		if !s.Contains(a) {
			return false
		}
	}
	return true
}

// Len returns the cardinality of the set.
func (s AttrSet) Len() int { return len(s) }

// IsEmpty reports whether the set has no elements.
func (s AttrSet) IsEmpty() bool { return len(s) == 0 }

// Clone returns an independent copy.
func (s AttrSet) Clone() AttrSet {
	c := make(AttrSet, len(s))
	for a := range s {
		c[a] = struct{}{}
	}
	return c
}

// Union returns s ∪ t as a new set.
func (s AttrSet) Union(t AttrSet) AttrSet {
	u := s.Clone()
	u.AddAll(t)
	return u
}

// Intersect returns s ∩ t as a new set.
func (s AttrSet) Intersect(t AttrSet) AttrSet {
	u := NewAttrSet()
	for a := range s {
		if t.Contains(a) {
			u.Add(a)
		}
	}
	return u
}

// Difference returns s − t as a new set.
func (s AttrSet) Difference(t AttrSet) AttrSet {
	u := NewAttrSet()
	for a := range s {
		if !t.Contains(a) {
			u.Add(a)
		}
	}
	return u
}

// Equal reports set equality.
func (s AttrSet) Equal(t AttrSet) bool {
	return len(s) == len(t) && s.ContainsAll(t)
}

// Sorted returns the elements in lexicographic order.
func (s AttrSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// String renders the set in the paper's curly-brace notation.
func (s AttrSet) String() string {
	return "{" + strings.Join(s.Sorted(), ", ") + "}"
}
