// Package sortord implements the sort-order algebra used throughout the
// PYRO optimizer: orders as sequences of attribute names, prefix tests,
// longest-common-prefix, concatenation, subtraction and restriction to an
// attribute set. The notation follows Section 3 of the paper
// "Reducing Order Enforcement Cost in Complex Query Plans":
//
//	ε          empty order            -> Order{}
//	attrs(o)   attribute set of o     -> o.Attrs()
//	|o|        length                 -> o.Len()
//	o1 ≤ o2    o1 is a prefix of o2   -> o1.PrefixOf(o2)
//	o1 < o2    strict prefix          -> o1.StrictPrefixOf(o2)
//	o1 ∧ o2    longest common prefix  -> LCP(o1, o2)
//	o1 + o2    concatenation          -> Concat(o1, o2)
//	o1 − o2    suffix after o2        -> Minus(o1, o2)
//	o ∧ s      longest prefix in set  -> o.LongestPrefixIn(s)
//	⟨s⟩        arbitrary permutation  -> APermute(s)
//
// Sort direction (ASC/DESC) is deliberately ignored, as in the paper: all
// techniques apply independent of direction.
package sortord

import (
	"sort"
	"strings"
)

// Order is a sort order: a sequence of attribute names, most significant
// first. The zero value is ε, the empty order. Orders are immutable by
// convention: all operations return fresh slices and never alias or mutate
// their receivers' backing arrays.
type Order []string

// Empty is ε, the empty sort order.
var Empty = Order{}

// New returns an order over the given attributes. It copies its input.
func New(attrs ...string) Order {
	o := make(Order, len(attrs))
	copy(o, attrs)
	return o
}

// Len returns |o|, the number of attributes in the order.
func (o Order) Len() int { return len(o) }

// IsEmpty reports whether o is ε.
func (o Order) IsEmpty() bool { return len(o) == 0 }

// Attrs returns attrs(o), the set of attributes appearing in o.
func (o Order) Attrs() AttrSet {
	s := NewAttrSet()
	for _, a := range o {
		s.Add(a)
	}
	return s
}

// Clone returns a copy of o with its own backing array.
func (o Order) Clone() Order {
	c := make(Order, len(o))
	copy(c, o)
	return c
}

// Equal reports whether o and p are the same sequence.
func (o Order) Equal(p Order) bool {
	if len(o) != len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// PrefixOf reports o ≤ p: whether o is a (non-strict) prefix of p.
func (o Order) PrefixOf(p Order) bool {
	if len(o) > len(p) {
		return false
	}
	for i := range o {
		if o[i] != p[i] {
			return false
		}
	}
	return true
}

// StrictPrefixOf reports o < p: o is a prefix of p and strictly shorter.
func (o Order) StrictPrefixOf(p Order) bool {
	return len(o) < len(p) && o.PrefixOf(p)
}

// LCP returns o1 ∧ o2, the longest common prefix of the two orders.
func LCP(o1, o2 Order) Order {
	n := len(o1)
	if len(o2) < n {
		n = len(o2)
	}
	i := 0
	for i < n && o1[i] == o2[i] {
		i++
	}
	return o1[:i].Clone()
}

// Concat returns o1 + o2.
func Concat(o1, o2 Order) Order {
	c := make(Order, 0, len(o1)+len(o2))
	c = append(c, o1...)
	c = append(c, o2...)
	return c
}

// Minus returns o1 − o2, the order o' such that o2 + o' = o1. It is defined
// only when o2 ≤ o1; the second return value reports definedness.
func Minus(o1, o2 Order) (Order, bool) {
	if !o2.PrefixOf(o1) {
		return nil, false
	}
	return o1[len(o2):].Clone(), true
}

// LongestPrefixIn returns o ∧ s: the longest prefix of o all of whose
// attributes belong to the set s.
func (o Order) LongestPrefixIn(s AttrSet) Order {
	i := 0
	for i < len(o) && s.Contains(o[i]) {
		i++
	}
	return o[:i].Clone()
}

// Restrict is an alias for LongestPrefixIn taking a slice of attributes.
func (o Order) Restrict(attrs []string) Order {
	return o.LongestPrefixIn(NewAttrSet(attrs...))
}

// HasDuplicates reports whether any attribute appears twice in o. Valid sort
// orders never contain duplicates; this is used for input validation.
func (o Order) HasDuplicates() bool {
	seen := make(map[string]struct{}, len(o))
	for _, a := range o {
		if _, dup := seen[a]; dup {
			return true
		}
		seen[a] = struct{}{}
	}
	return false
}

// Dedup returns o with second and later occurrences of each attribute
// removed, preserving first-occurrence positions. Sorting on (a, b, a) is
// equivalent to sorting on (a, b), so deduplication is order-preserving.
func (o Order) Dedup() Order {
	seen := make(map[string]struct{}, len(o))
	out := make(Order, 0, len(o))
	for _, a := range o {
		if _, dup := seen[a]; !dup {
			seen[a] = struct{}{}
			out = append(out, a)
		}
	}
	return out
}

// String renders the order in the paper's notation, e.g. "(ps_suppkey, ps_partkey)".
// ε renders as "()".
func (o Order) String() string {
	return "(" + strings.Join(o, ", ") + ")"
}

// Key returns a canonical map key for the order.
func (o Order) Key() string { return strings.Join(o, "\x00") }

// Compare orders lexicographically by attribute name; used only to obtain
// deterministic iteration over sets of orders, not for plan semantics.
func Compare(o1, o2 Order) int {
	n := len(o1)
	if len(o2) < n {
		n = len(o2)
	}
	for i := 0; i < n; i++ {
		if o1[i] != o2[i] {
			if o1[i] < o2[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(o1) < len(o2):
		return -1
	case len(o1) > len(o2):
		return 1
	}
	return 0
}

// APermute returns ⟨s⟩, an arbitrary but deterministic permutation of the
// attribute set s (sorted by name, so results are reproducible run to run).
func APermute(s AttrSet) Order {
	attrs := s.Sorted()
	return New(attrs...)
}

// Permutations returns P(s): every permutation of the attributes of s, in a
// deterministic sequence. It is exponential and intended for the exhaustive
// PYRO-E heuristic and for tests; callers should bound |s|.
func Permutations(s AttrSet) []Order {
	base := s.Sorted()
	var out []Order
	var rec func(cur Order, remaining []string)
	rec = func(cur Order, remaining []string) {
		if len(remaining) == 0 {
			out = append(out, cur.Clone())
			return
		}
		for i, a := range remaining {
			rest := make([]string, 0, len(remaining)-1)
			rest = append(rest, remaining[:i]...)
			rest = append(rest, remaining[i+1:]...)
			rec(append(cur, a), rest)
		}
	}
	rec(make(Order, 0, len(base)), base)
	return out
}

// ExtendToSet returns o extended with an arbitrary permutation of the
// attributes of s not already in o:  o + ⟨s − attrs(o)⟩. This is the
// "extend each order to the length of |S|" step of Section 5.2.1.
func (o Order) ExtendToSet(s AttrSet) Order {
	missing := s.Difference(o.Attrs())
	return Concat(o, APermute(missing))
}

// SortOrders sorts a slice of orders deterministically (in place) and
// returns it, for stable iteration and test assertions.
func SortOrders(orders []Order) []Order {
	sort.Slice(orders, func(i, j int) bool { return Compare(orders[i], orders[j]) < 0 })
	return orders
}
