package storage

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"pyro/internal/types"
)

func TestDiskCreateOpenRemove(t *testing.T) {
	d := NewDisk(0)
	if d.PageSize() != DefaultPageSize {
		t.Fatalf("default page size = %d", d.PageSize())
	}
	f := d.Create("t1", KindData)
	if f.Name() != "t1" || f.Kind() != KindData {
		t.Fatal("file metadata wrong")
	}
	got, err := d.Open("t1")
	if err != nil || got != f {
		t.Fatalf("Open: %v", err)
	}
	if _, err := d.Open("nope"); err == nil {
		t.Fatal("opening missing file should error")
	}
	d.Remove("t1")
	if _, err := d.Open("t1"); err == nil {
		t.Fatal("file should be removed")
	}
	d.Remove("t1") // idempotent
}

func TestPageIOAccounting(t *testing.T) {
	d := NewDisk(128)
	f := d.Create("f", KindData)
	r := d.Create("r", KindRun)
	if _, err := f.AppendPage([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendPage([]byte{4}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPage(5); err == nil {
		t.Fatal("out-of-range read should error")
	}
	s := d.Stats()
	if s.PageWrites != 2 || s.PageReads != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.RunPageWrites != 1 || s.RunPageReads != 1 {
		t.Fatalf("run attribution wrong: %+v", s)
	}
	if s.Total() != 4 || s.RunTotal() != 2 {
		t.Fatalf("totals wrong: %+v", s)
	}
	d.ResetStats()
	if d.Stats().Total() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestStatsAddSub(t *testing.T) {
	a := IOStats{PageReads: 5, PageWrites: 3, RunPageReads: 1, RunPageWrites: 2, Seeks: 4}
	b := IOStats{PageReads: 1, PageWrites: 1, RunPageReads: 1, RunPageWrites: 1, Seeks: 1}
	diff := a.Sub(b)
	if diff.PageReads != 4 || diff.PageWrites != 2 || diff.Seeks != 3 {
		t.Fatalf("Sub = %+v", diff)
	}
	var acc IOStats
	acc.Add(a)
	acc.Add(b)
	if acc.PageReads != 6 || acc.RunTotal() != 5 {
		t.Fatalf("Add = %+v", acc)
	}
	if acc.String() == "" {
		t.Fatal("String empty")
	}
}

func TestAppendPageCopiesAndBounds(t *testing.T) {
	d := NewDisk(64)
	f := d.Create("f", KindData)
	buf := []byte{9, 9}
	if _, err := f.AppendPage(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 1
	p, _ := f.ReadPage(0)
	if p[0] != 9 {
		t.Fatal("AppendPage must copy")
	}
	if _, err := f.AppendPage(make([]byte, 65)); err == nil {
		t.Fatal("oversized page should error")
	}
	if f.NumPages() != 1 {
		t.Fatal("failed append must not allocate a page")
	}
}

func TestTupleWriterReaderRoundTrip(t *testing.T) {
	d := NewDisk(256)
	f := d.Create("f", KindData)
	w := NewTupleWriter(f)
	var want []types.Tuple
	for i := 0; i < 500; i++ {
		tup := types.NewTuple(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("row-%d", i)))
		want = append(want, tup)
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.TuplesWritten() != 500 {
		t.Fatalf("TuplesWritten = %d", w.TuplesWritten())
	}
	if f.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", f.NumPages())
	}
	got, err := ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0].Int() != want[i][0].Int() || got[i][1].Str() != want[i][1].Str() {
			t.Fatalf("tuple %d mismatch: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestTupleReaderRewind(t *testing.T) {
	d := NewDisk(128)
	f := d.Create("f", KindData)
	if err := WriteAll(f, []types.Tuple{
		types.NewTuple(types.NewInt(1)),
		types.NewTuple(types.NewInt(2)),
	}); err != nil {
		t.Fatal(err)
	}
	r := NewTupleReader(f)
	if tup, ok, _ := r.Next(); !ok || tup[0].Int() != 1 {
		t.Fatal("first read wrong")
	}
	before := d.Stats().Seeks
	r.Rewind()
	if d.Stats().Seeks != before+1 {
		t.Fatal("Rewind should charge a seek")
	}
	if tup, ok, _ := r.Next(); !ok || tup[0].Int() != 1 {
		t.Fatal("post-rewind read wrong")
	}
}

func TestOversizedTupleErrors(t *testing.T) {
	d := NewDisk(32)
	f := d.Create("f", KindData)
	w := NewTupleWriter(f)
	big := types.NewTuple(types.NewString("this string is far too large for a page"))
	if err := w.Write(big); err == nil {
		t.Fatal("oversized tuple should error")
	}
}

func TestEmptyFileRead(t *testing.T) {
	d := NewDisk(0)
	f := d.Create("f", KindData)
	r := NewTupleReader(f)
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("empty file: ok=%v err=%v", ok, err)
	}
	// Close on empty writer writes nothing.
	w := NewTupleWriter(f)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != 0 {
		t.Fatal("empty close should not write a page")
	}
}

func TestCreateTempUnique(t *testing.T) {
	d := NewDisk(0)
	a := d.CreateTemp("sort", KindRun)
	b := d.CreateTemp("sort", KindRun)
	if a.Name() == b.Name() {
		t.Fatal("temp names must be unique")
	}
	names := d.FileNames()
	if len(names) != 2 {
		t.Fatalf("FileNames = %v", names)
	}
}

func TestTruncate(t *testing.T) {
	d := NewDisk(0)
	f := d.Create("f", KindData)
	if _, err := f.AppendPage([]byte{1}); err != nil {
		t.Fatal(err)
	}
	f.Truncate()
	if f.NumPages() != 0 {
		t.Fatal("Truncate failed")
	}
	if d.TotalPages() != 0 {
		t.Fatal("TotalPages after truncate")
	}
}

func TestConcurrentDiskAccess(t *testing.T) {
	d := NewDisk(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := d.Create(fmt.Sprintf("f%d", g), KindData)
			for i := 0; i < 50; i++ {
				if _, err := f.AppendPage([]byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := f.ReadPage(i); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := d.Stats()
	if s.PageReads != 400 || s.PageWrites != 400 {
		t.Fatalf("concurrent stats = %+v", s)
	}
}

func TestQuickWriteReadAnyTuples(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(60)
			tuples := make([]types.Tuple, n)
			for i := range tuples {
				tuples[i] = types.NewTuple(
					types.NewInt(r.Int63n(1000)),
					types.NewFloat(r.Float64()),
					types.NewString(fmt.Sprintf("s%d", r.Intn(100))),
				)
			}
			vals[0] = reflect.ValueOf(tuples)
		},
	}
	seq := 0
	prop := func(tuples []types.Tuple) bool {
		d := NewDisk(256)
		seq++
		f := d.Create(fmt.Sprintf("q%d", seq), KindData)
		if err := WriteAll(f, tuples); err != nil {
			return false
		}
		got, err := ReadAll(f)
		if err != nil || len(got) != len(tuples) {
			return false
		}
		for i := range tuples {
			for j := range tuples[i] {
				if got[i][j].Compare(tuples[i][j]) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- Spill-arena concurrency -----------------------------------------------

func TestArenaNamespaceIsolation(t *testing.T) {
	d := NewDisk(0)
	a := d.NewArena()
	b := d.NewArena()
	fa := a.CreateTemp("run", KindRun)
	fb := b.CreateTemp("run", KindRun)
	if fa.Name() == fb.Name() {
		t.Fatalf("arena temp names collide: %q", fa.Name())
	}
	// Arena files are invisible to the global namespace but visible to the
	// leak check.
	if _, err := d.Open(fa.Name()); err == nil {
		t.Fatal("arena file should not be openable through the global namespace")
	}
	if names := d.FileNames(); len(names) != 2 {
		t.Fatalf("FileNames should include arena files, got %v", names)
	}
	// Removing through the wrong arena is a no-op; through the right one it
	// deletes.
	b.Remove(fa.Name())
	a.Remove(fa.Name())
	if names := d.FileNames(); len(names) != 1 || names[0] != fb.Name() {
		t.Fatalf("after removes: %v", names)
	}
	a.Release()
	b.Release()
	if names := d.FileNames(); len(names) != 0 {
		t.Fatalf("release should drop arena files, got %v", names)
	}
}

func TestArenaStatsMergeOnRelease(t *testing.T) {
	d := NewDisk(128)
	a := d.NewArena()
	f := a.CreateTemp("run", KindRun)
	if _, err := f.AppendPage([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	f.Seek()
	// Live arena I/O is already part of the disk totals.
	want := IOStats{PageReads: 1, PageWrites: 1, RunPageReads: 1, RunPageWrites: 1, Seeks: 1}
	if got := d.Stats(); got != want {
		t.Fatalf("live stats = %+v, want %+v", got, want)
	}
	if got := a.Stats(); got != want {
		t.Fatalf("arena stats = %+v, want %+v", got, want)
	}
	a.Release()
	a.Release() // idempotent: must not double-merge
	if got := d.Stats(); got != want {
		t.Fatalf("post-release stats = %+v, want %+v", got, want)
	}
}

func TestArenaResetStatsCoversLiveArenas(t *testing.T) {
	d := NewDisk(128)
	a := d.NewArena()
	if _, err := a.CreateTemp("run", KindRun).AppendPage([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("t", KindData).AppendPage([]byte{2}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().PageWrites != 2 {
		t.Fatalf("stats = %+v", d.Stats())
	}
	d.ResetStats()
	if got := d.Stats(); got.Total() != 0 {
		t.Fatalf("ResetStats left %+v", got)
	}
	a.Release()
	if got := d.Stats(); got.Total() != 0 {
		t.Fatalf("release after reset re-added I/O: %+v", got)
	}
}

func TestReleasedArenaCreatePanics(t *testing.T) {
	d := NewDisk(0)
	a := d.NewArena()
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("CreateTemp on a released arena should panic")
		}
	}()
	a.CreateTemp("run", KindRun)
}

// TestConcurrentArenaWriters is the race-detector gate for the spill
// subsystem's central claim: N workers spilling into their own arenas share
// no mutable state beyond atomic counters, and the merged ledger equals
// what the same work charges when done serially.
func TestConcurrentArenaWriters(t *testing.T) {
	const workers, pagesEach = 8, 40
	work := func(parallel bool) IOStats {
		d := NewDisk(64)
		run := func(a *SpillArena) {
			f := a.CreateTemp("spill", KindRun)
			for i := 0; i < pagesEach; i++ {
				if _, err := f.AppendPage([]byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 0; i < pagesEach; i++ {
				if _, err := f.ReadPage(i); err != nil {
					t.Error(err)
					return
				}
			}
			f.Seek()
		}
		if parallel {
			var wg sync.WaitGroup
			arenas := make([]*SpillArena, workers)
			for g := 0; g < workers; g++ {
				arenas[g] = d.NewArena()
			}
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(a *SpillArena) {
					defer wg.Done()
					run(a)
				}(arenas[g])
			}
			wg.Wait()
			// Release half before snapshotting: totals must not care
			// whether a ledger has merged yet.
			for g := 0; g < workers/2; g++ {
				arenas[g].Release()
			}
			s := d.Stats()
			for g := workers / 2; g < workers; g++ {
				arenas[g].Release()
			}
			if after := d.Stats(); after != s {
				t.Errorf("release changed totals: %+v -> %+v", s, after)
			}
			return s
		}
		for g := 0; g < workers; g++ {
			a := d.NewArena()
			run(a)
			a.Release()
		}
		return d.Stats()
	}
	serial := work(false)
	parallel := work(true)
	if serial != parallel {
		t.Fatalf("parallel arena totals diverge from serial:\n serial   %+v\n parallel %+v", serial, parallel)
	}
	if serial.RunPageWrites != workers*pagesEach {
		t.Fatalf("run writes = %d, want %d", serial.RunPageWrites, workers*pagesEach)
	}
}

// TestConcurrentArenaSharedByWorkers exercises one arena shared by several
// goroutines (MRS flush jobs of a single spilled segment do this): temp
// creation must stay collision-free and the ledger exact.
func TestConcurrentArenaSharedByWorkers(t *testing.T) {
	d := NewDisk(64)
	a := d.NewArena()
	const workers, files = 6, 20
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < files; i++ {
				f := a.CreateTemp("seg", KindRun)
				if _, err := f.AppendPage([]byte{1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(a.fileNames()); got != workers*files {
		t.Fatalf("arena holds %d files, want %d (name collision?)", got, workers*files)
	}
	if got := d.Stats().RunPageWrites; got != workers*files {
		t.Fatalf("run writes = %d, want %d", got, workers*files)
	}
	a.Release()
	if names := d.FileNames(); len(names) != 0 {
		t.Fatalf("leaked %v", names)
	}
}
