package storage

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// ErrInjectedFault is the default error a FaultRule fires with. Tests match
// it with errors.Is through whatever wrapping the upper layers add.
var ErrInjectedFault = errors.New("storage: injected fault")

// ErrNoTempSpace is the ENOSPC analogue: a run-page write was refused
// because the disk's temp-space quota is exhausted. Unlike injected faults
// it also fires in "real" operation whenever SetTempQuotaPages is in effect.
var ErrNoTempSpace = errors.New("storage: temp space exhausted")

// FaultOp distinguishes the two page-transfer directions a fault can hit.
type FaultOp uint8

const (
	// OpRead is a page read (File.ReadPage).
	OpRead FaultOp = iota
	// OpWrite is a page write (File.AppendPage).
	OpWrite
)

func (o FaultOp) String() string {
	if o == OpRead {
		return "read"
	}
	return "write"
}

// FaultClass identifies one class of page transfers: direction × file kind.
// Together with a 1-based ordinal this addresses a single page transfer of a
// run, which is what makes fault schedules reproducible and sweepable.
type FaultClass struct {
	Op   FaultOp
	Kind FileKind
}

func (c FaultClass) String() string {
	kind := "data"
	if c.Kind == KindRun {
		kind = "run"
	}
	return c.Op.String() + "/" + kind
}

// FaultClasses enumerates every trigger class in canonical sweep order.
var FaultClasses = []FaultClass{
	{OpRead, KindData},
	{OpWrite, KindData},
	{OpRead, KindRun},
	{OpWrite, KindRun},
}

// FaultRule describes one injected failure: the At'th transfer (1-based)
// matching Class — optionally narrowed to files whose name starts with
// NamePrefix, which distinguishes table from index pages — fails. Each rule
// fires at most once, so a query re-run against the same installed plan sees
// a healthy device; At <= 0 means the first match.
//
// Err overrides the returned error (nil uses ErrInjectedFault). Panic makes
// the storage layer panic at the fault point instead of returning an error —
// modelling a library bug at an exact, reproducible location so tests can
// prove panic containment at the worker and cursor boundaries.
type FaultRule struct {
	Class      FaultClass
	NamePrefix string
	At         int64
	Err        error
	Panic      bool
}

// faultRule is the live counterpart of FaultRule with its trigger state.
type faultRule struct {
	FaultRule
	seen  atomic.Int64
	fired atomic.Bool
}

// FaultPlan is a deterministic fault schedule installed on a Disk with
// SetFaultPlan. It observes every page transfer (counted per FaultClass,
// which is how sweeps enumerate fault points) and fails the transfers its
// rules address. A plan with no rules is a pure observer: the page traffic
// it sees is byte-identical to an uninstrumented run.
type FaultPlan struct {
	rules  []*faultRule
	counts [2][2]atomic.Int64 // [FaultOp][FileKind] transfer observations
}

// NewFaultPlan builds a plan from the given rules.
func NewFaultPlan(rules ...FaultRule) *FaultPlan {
	p := &FaultPlan{}
	for _, r := range rules {
		if r.At <= 0 {
			r.At = 1
		}
		p.rules = append(p.rules, &faultRule{FaultRule: r})
	}
	return p
}

// Count returns how many transfers of the class the plan has observed.
func (p *FaultPlan) Count(c FaultClass) int64 {
	return p.counts[c.Op][c.Kind].Load()
}

// Counts snapshots the observation counters for every fault class.
func (p *FaultPlan) Counts() map[FaultClass]int64 {
	out := make(map[FaultClass]int64, len(FaultClasses))
	for _, c := range FaultClasses {
		out[c] = p.Count(c)
	}
	return out
}

// Triggered returns how many rules have fired.
func (p *FaultPlan) Triggered() int {
	n := 0
	for _, r := range p.rules {
		if r.fired.Load() {
			n++
		}
	}
	return n
}

// check observes one transfer and returns the fault to inject, if any.
func (p *FaultPlan) check(op FaultOp, kind FileKind, name string) *FaultError {
	p.counts[op][kind].Add(1)
	for _, r := range p.rules {
		if r.Class.Op != op || r.Class.Kind != kind {
			continue
		}
		if r.NamePrefix != "" && !strings.HasPrefix(name, r.NamePrefix) {
			continue
		}
		n := r.seen.Add(1)
		if n == r.At && r.fired.CompareAndSwap(false, true) {
			return &FaultError{Class: r.Class, Name: name, Seq: n, Panic: r.Panic, err: r.Err}
		}
	}
	return nil
}

// FaultError reports an injected fault with the exact transfer it hit, so a
// failing sweep point names itself in the test log.
type FaultError struct {
	Class FaultClass
	Name  string
	Seq   int64
	Panic bool
	err   error
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("injected fault at %s #%d (%s): %v", e.Class, e.Seq, e.Name, e.Unwrap())
}

func (e *FaultError) Unwrap() error {
	if e.err != nil {
		return e.err
	}
	return ErrInjectedFault
}

// SetFaultPlan installs (or, with nil, removes) the disk's fault plan. The
// plan applies to every file and arena on the disk, including files opened
// before installation. Zero-fault executions with no plan installed pay one
// atomic pointer load per page transfer and behave identically.
func (d *Disk) SetFaultPlan(p *FaultPlan) {
	d.fault.Store(&faultSlot{plan: p})
}

// FaultPlan returns the currently installed plan (nil when none).
func (d *Disk) FaultPlan() *FaultPlan {
	if s := d.fault.Load(); s != nil {
		return s.plan
	}
	return nil
}

// faultSlot wraps the plan pointer so SetFaultPlan(nil) can be stored.
type faultSlot struct {
	plan *FaultPlan
}

// SetTempQuotaPages bounds the live run pages (global temp files plus every
// arena's) the disk will hold; a run-page write that would exceed it fails
// with ErrNoTempSpace. n <= 0 removes the quota. The check walks the file
// registry under the mutex, so it is priced for fault testing, not for the
// (quota-less) production path, which pays one atomic load.
func (d *Disk) SetTempQuotaPages(n int64) {
	d.tempQuota.Store(n)
}

// checkTempQuota admits or refuses one run-page write under the quota.
func (d *Disk) checkTempQuota() error {
	q := d.tempQuota.Load()
	if q <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	live := 0
	for _, f := range d.files {
		if f.kind == KindRun {
			live += f.NumPages()
		}
	}
	for _, a := range d.arenas {
		live += a.totalPages()
	}
	if int64(live) >= q {
		return fmt.Errorf("storage: run page write with %d live temp pages at quota %d: %w", live, q, ErrNoTempSpace)
	}
	return nil
}

// faultCheck consults the disk's fault plan for one transfer on f. Panic
// rules panic here — at the exact storage call site — so containment is
// tested where a real library bug would surface.
func (f *File) faultCheck(op FaultOp) error {
	if f.disk == nil {
		return nil
	}
	s := f.disk.fault.Load()
	if s == nil || s.plan == nil {
		return nil
	}
	fe := s.plan.check(op, f.kind, f.name)
	if fe == nil {
		return nil
	}
	if fe.Panic {
		panic(fe)
	}
	return fe
}
