package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorruptRun reports an entry file and its payload tuple file falling
// out of lockstep — they must hold the same record count by construction.
var ErrCorruptRun = errors.New("storage: entry and payload run files out of lockstep")

// EntryWriter appends fixed-size sort entries to a file, packing as many as
// fit per page. Page layout: u16 entry count, then count back-to-back
// records of exactly entrySize bytes — no per-record framing, so a page is
// one memcpy-able flat array and a reader slices records out arithmetically.
// This is the entry half of xsort's flat spill-run format (the tuple
// payloads ride in a TupleWriter file alongside); transfers charge the
// file's ledger and tap like any other page I/O, and write failures —
// injected faults, temp-quota ENOSPC — are sticky exactly as in
// TupleWriter.
type EntryWriter struct {
	file      *File
	entrySize int
	perPage   int
	buf       []byte
	count     int
	entries   int64
	pages     int64
	err       error // first page-write failure; poisons the writer
}

// NewEntryWriter starts writing entrySize-byte records at the end of f.
// entrySize must leave room for at least one record per page.
func NewEntryWriter(f *File, entrySize int) *EntryWriter {
	perPage := (f.pageSize - 2) / entrySize
	if entrySize <= 0 || perPage < 1 {
		panic(fmt.Sprintf("storage: entry size %d does not fit page size %d", entrySize, f.pageSize))
	}
	return &EntryWriter{file: f, entrySize: entrySize, perPage: perPage, buf: make([]byte, 2, f.pageSize)}
}

// Write appends one record, flushing a full page as needed. The record must
// be exactly entrySize bytes.
func (w *EntryWriter) Write(entry []byte) error {
	if w.err != nil {
		return w.err
	}
	if len(entry) != w.entrySize {
		w.err = fmt.Errorf("storage: entry of %d bytes in a %d-byte entry file", len(entry), w.entrySize)
		return w.err
	}
	if w.count == w.perPage {
		if err := w.flush(); err != nil {
			return err
		}
	}
	w.buf = append(w.buf, entry...)
	w.count++
	w.entries++
	return nil
}

func (w *EntryWriter) flush() error {
	if w.count == 0 {
		return nil
	}
	binary.BigEndian.PutUint16(w.buf[:2], uint16(w.count))
	if _, err := w.file.AppendPage(w.buf); err != nil {
		w.err = err
		return err
	}
	w.pages++
	w.buf = w.buf[:2]
	w.count = 0
	return nil
}

// Close flushes the final partial page. A non-nil error means the file is
// missing pages and must not be used; the caller owns removing it.
func (w *EntryWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.flush()
}

// EntriesWritten returns the number of records written so far.
func (w *EntryWriter) EntriesWritten() int64 { return w.entries }

// PagesWritten returns the number of entry pages flushed so far (complete
// after Close) — the quantity xsort surfaces as SortStats.FlatRunPages.
func (w *EntryWriter) PagesWritten() int64 { return w.pages }

// EntryReader scans an entry file sequentially. Each page read charges one
// block read, mirroring TupleReader's accounting.
type EntryReader struct {
	file      *File
	entrySize int
	page      int
	data      []byte
	pos       int
	left      int
}

// NewEntryReader positions a reader of entrySize-byte records at the start
// of f.
func NewEntryReader(f *File, entrySize int) *EntryReader {
	if entrySize <= 0 {
		panic(fmt.Sprintf("storage: non-positive entry size %d", entrySize))
	}
	return &EntryReader{file: f, entrySize: entrySize}
}

// Next returns the next record, or ok=false at end of file. The returned
// slice aliases the page buffer and is valid until the next Next call that
// crosses a page; callers that hold records across reads must copy.
func (r *EntryReader) Next() ([]byte, bool, error) {
	for r.left == 0 {
		if r.page >= r.file.NumPages() {
			return nil, false, nil
		}
		data, err := r.file.ReadPage(r.page)
		if err != nil {
			return nil, false, err
		}
		r.page++
		if len(data) < 2 {
			return nil, false, fmt.Errorf("storage: malformed entry page in %q", r.file.Name())
		}
		r.data = data
		r.left = int(binary.BigEndian.Uint16(data[:2]))
		r.pos = 2
	}
	if r.pos+r.entrySize > len(r.data) {
		return nil, false, fmt.Errorf("storage: truncated entry in %q page %d", r.file.Name(), r.page-1)
	}
	e := r.data[r.pos : r.pos+r.entrySize : r.pos+r.entrySize]
	r.pos += r.entrySize
	r.left--
	return e, true, nil
}
