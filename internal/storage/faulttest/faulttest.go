// Package faulttest builds deterministic fault schedules for storage-level
// chaos testing. The workflow is observe → enumerate → inject: run a query
// once under a pure-observer FaultPlan to count the page transfers it makes
// per fault class, turn those counts into a sweep of addressable fault
// points, and re-run the query once per point with a one-rule plan that
// fails exactly that transfer. Because the observation counters are
// deterministic (the engine's page traffic is identical run to run), every
// point in the sweep names a transfer the workload really performs.
package faulttest

import (
	"math/rand"

	"pyro/internal/storage"
)

// Observe runs fn with a rule-less (pure observer) FaultPlan installed on d
// and returns the per-class transfer counts it saw. The previous plan is
// restored afterwards. fn's error is returned untouched so callers can
// observe failing workloads too.
func Observe(d *storage.Disk, fn func() error) (map[storage.FaultClass]int64, error) {
	prev := d.FaultPlan()
	plan := storage.NewFaultPlan()
	d.SetFaultPlan(plan)
	defer d.SetFaultPlan(prev)
	err := fn()
	return plan.Counts(), err
}

// Point addresses one page transfer of a workload: the At'th transfer
// (1-based) of the class. Panic makes the storage layer panic there instead
// of returning an error, modelling a library bug at that exact site.
type Point struct {
	Class storage.FaultClass
	At    int64
	Panic bool
}

// Plan builds a single-rule FaultPlan that fails this point.
func (p Point) Plan() *storage.FaultPlan {
	return storage.NewFaultPlan(storage.FaultRule{Class: p.Class, At: p.At, Panic: p.Panic})
}

// String names the point for test logs.
func (p Point) String() string {
	s := p.Class.String()
	if p.Panic {
		s += "/panic"
	}
	return s
}

// Enumerate turns observed transfer counts into a sweep of fault points:
// for each class in canonical order, up to perClass points spread evenly
// across the class's 1..count transfer range (perClass <= 0 means every
// transfer). The first and last transfers of a class are always included —
// faults at the edges (first spill write, final merge read) historically
// hide the best bugs.
func Enumerate(counts map[storage.FaultClass]int64, perClass int) []Point {
	var out []Point
	for _, c := range storage.FaultClasses {
		n := counts[c]
		if n <= 0 {
			continue
		}
		if perClass <= 0 || int64(perClass) >= n {
			for at := int64(1); at <= n; at++ {
				out = append(out, Point{Class: c, At: at})
			}
			continue
		}
		// Evenly strided sample including both endpoints.
		k := int64(perClass)
		seen := make(map[int64]bool, k)
		for i := int64(0); i < k; i++ {
			at := 1 + i*(n-1)/(k-1)
			if k == 1 {
				at = 1
			}
			if !seen[at] {
				seen[at] = true
				out = append(out, Point{Class: c, At: at})
			}
		}
	}
	return out
}

// RandomSchedule draws n fault points uniformly across the observed
// transfer space, reproducibly from seed. Classes with zero observed
// transfers are never drawn.
func RandomSchedule(seed int64, counts map[storage.FaultClass]int64, n int) []Point {
	rng := rand.New(rand.NewSource(seed))
	var classes []storage.FaultClass
	total := int64(0)
	for _, c := range storage.FaultClasses {
		if counts[c] > 0 {
			classes = append(classes, c)
			total += counts[c]
		}
	}
	if len(classes) == 0 || n <= 0 {
		return nil
	}
	out := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		// Weight class choice by its transfer count so the schedule lands
		// where the workload actually does I/O.
		x := rng.Int63n(total)
		var c storage.FaultClass
		for _, cand := range classes {
			if x < counts[cand] {
				c = cand
				break
			}
			x -= counts[cand]
		}
		out = append(out, Point{Class: c, At: 1 + rng.Int63n(counts[c])})
	}
	return out
}
