package storage

import (
	"encoding/binary"
	"testing"

	"pyro/internal/types"
)

// fuzzPage assembles one tuple-file page image: u16 tuple count, then
// back-to-back encoded tuples (valid seeds for the corpus).
func fuzzPage(count uint16, tuples ...types.Tuple) []byte {
	page := make([]byte, 2)
	binary.BigEndian.PutUint16(page, count)
	for _, t := range tuples {
		page = t.Encode(page)
	}
	return page
}

// FuzzReadChunk feeds arbitrary page bytes through both read paths — the
// row-at-a-time TupleReader.Next and the batch ReadChunk — and requires
// corruption to surface as an error: no panic, no over-read, and no ragged
// chunk left behind by a mid-tuple decode failure.
func FuzzReadChunk(f *testing.F) {
	two := []types.Tuple{
		types.NewTuple(types.NewInt(1), types.NewString("a")),
		types.NewTuple(types.NewInt(2), types.NewString("bb")),
	}
	f.Add(fuzzPage(2, two...), 2)
	f.Add(fuzzPage(9, two...), 2)      // count lies: more tuples than present
	f.Add(fuzzPage(2, two[0]), 1)      // arity mismatch against the chunk
	f.Add([]byte{0xff, 0xff, 0, 0}, 3) // absurd count, garbage payload
	f.Add([]byte{0}, 1)                // shorter than the count header
	f.Add(fuzzPage(1, two[0])[:7], 2)  // truncated mid-datum
	f.Fuzz(func(t *testing.T, page []byte, ncols int) {
		ncols = int(uint(ncols)%8) + 1
		d := NewDisk(0)
		file := d.Create("fz", KindData)
		if len(page) > d.PageSize() {
			page = page[:d.PageSize()]
		}
		if _, err := file.AppendPage(page); err != nil {
			t.Fatal(err)
		}

		// Row path: must terminate with EOF or an error.
		r := NewTupleReader(file)
		for {
			_, ok, err := r.Next()
			if err != nil || !ok {
				break
			}
		}

		// Batch path: same page through ReadChunk; the chunk must stay
		// rectangular whatever the bytes were.
		r2 := NewTupleReader(file)
		c := types.GetChunk(ncols, 4)
		defer types.PutChunk(c)
		for {
			c.Reset()
			n, err := r2.ReadChunk(c)
			if n < 0 || n > 4 {
				t.Fatalf("ReadChunk appended %d rows into capacity 4", n)
			}
			if n != c.Rows() {
				t.Fatalf("ReadChunk reported %d rows, chunk holds %d", n, c.Rows())
			}
			for i := 0; i < c.Rows(); i++ {
				for col := 0; col < ncols; col++ {
					_ = c.DatumAt(col, i) // panics if a failed decode left the chunk ragged
				}
			}
			if err != nil || n == 0 {
				break
			}
		}
	})
}
