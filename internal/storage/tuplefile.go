package storage

import (
	"encoding/binary"
	"fmt"

	"pyro/internal/types"
)

// TupleWriter appends encoded tuples to a file, packing as many tuples per
// page as fit. Page layout: u16 tuple count, then back-to-back encoded
// tuples. A tuple larger than a page is an error (the workloads never
// produce one; erroring beats silent corruption). Page-write failures —
// injected faults, temp-space exhaustion — are sticky: the first one is
// returned from the Write or Close that hit it and from every call after.
type TupleWriter struct {
	file   *File
	buf    []byte
	count  int
	tuples int64
	starts []int64 // index of the first tuple on each written page
	err    error   // first page-write failure; poisons the writer
}

// NewTupleWriter starts writing at the end of f.
func NewTupleWriter(f *File) *TupleWriter {
	return &TupleWriter{file: f, buf: make([]byte, 2, f.pageSize)}
}

// PageStarts returns, for each page written so far, the index of its first
// tuple — the directory a clustered lookup needs (valid after Close).
func (w *TupleWriter) PageStarts() []int64 {
	return append([]int64(nil), w.starts...)
}

// Write appends one tuple, flushing a full page as needed.
func (w *TupleWriter) Write(t types.Tuple) error {
	if w.err != nil {
		return w.err
	}
	sz := t.EncodedSize()
	if 2+sz > w.file.pageSize {
		return fmt.Errorf("storage: tuple of %d bytes exceeds page capacity %d", sz, w.file.pageSize-2)
	}
	if len(w.buf)+sz > w.file.pageSize {
		if err := w.flush(); err != nil {
			return err
		}
	}
	w.buf = t.Encode(w.buf)
	w.count++
	w.tuples++
	return nil
}

func (w *TupleWriter) flush() error {
	if w.count == 0 {
		return nil
	}
	binary.BigEndian.PutUint16(w.buf[:2], uint16(w.count))
	if _, err := w.file.AppendPage(w.buf); err != nil {
		w.err = err
		return err
	}
	w.starts = append(w.starts, w.tuples-int64(w.count))
	w.buf = w.buf[:2]
	w.count = 0
	return nil
}

// Close flushes the final partial page. A non-nil error means the file is
// missing pages and must not be used; the caller owns removing it. The
// writer must not be used after Close.
func (w *TupleWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	return w.flush()
}

// TuplesWritten returns the number of tuples written so far.
func (w *TupleWriter) TuplesWritten() int64 { return w.tuples }

// TupleReader scans a tuple file sequentially, page by page. Each page read
// charges one block read to the disk.
type TupleReader struct {
	file    *File
	page    int
	data    []byte
	pos     int
	left    int
	started bool
}

// NewTupleReader positions a reader at the start of f.
func NewTupleReader(f *File) *TupleReader {
	return &TupleReader{file: f}
}

// Next returns the next tuple, or ok=false at end of file.
func (r *TupleReader) Next() (types.Tuple, bool, error) {
	for r.left == 0 {
		if r.page >= r.file.NumPages() {
			return nil, false, nil
		}
		data, err := r.file.ReadPage(r.page)
		if err != nil {
			return nil, false, err
		}
		r.page++
		if len(data) < 2 {
			return nil, false, fmt.Errorf("storage: malformed page in %q", r.file.Name())
		}
		r.data = data
		r.left = int(binary.BigEndian.Uint16(data[:2]))
		r.pos = 2
	}
	t, n, err := types.DecodeTuple(r.data[r.pos:])
	if err != nil {
		return nil, false, fmt.Errorf("storage: decoding %q page %d: %w", r.file.Name(), r.page-1, err)
	}
	r.pos += n
	r.left--
	return t, true, nil
}

// ReadChunk decodes tuples from the current page directly into c's column
// vectors and returns the number of rows appended (0 at end of file).
//
// The fill discipline is the batch executor's I/O-identity invariant: a
// chunk never crosses a page boundary. The reader advances to the next
// page only when no tuple of the current one remains — exactly when the
// row path's Next would — so a consumer that stops after row j has read
// precisely the pages the row path would have read to serve row j.
func (r *TupleReader) ReadChunk(c *types.Chunk) (int, error) {
	for r.left == 0 {
		if r.page >= r.file.NumPages() {
			return 0, nil
		}
		data, err := r.file.ReadPage(r.page)
		if err != nil {
			return 0, err
		}
		r.page++
		if len(data) < 2 {
			return 0, fmt.Errorf("storage: malformed page in %q", r.file.Name())
		}
		r.data = data
		r.left = int(binary.BigEndian.Uint16(data[:2]))
		r.pos = 2
	}
	rows := 0
	for r.left > 0 && !c.Full() {
		n, err := c.AppendEncoded(r.data[r.pos:])
		if err != nil {
			return rows, fmt.Errorf("storage: decoding %q page %d: %w", r.file.Name(), r.page-1, err)
		}
		r.pos += n
		r.left--
		rows++
	}
	return rows, nil
}

// Rewind repositions the reader at the start of the file and charges a seek.
func (r *TupleReader) Rewind() {
	r.page = 0
	r.data = nil
	r.pos = 0
	r.left = 0
	r.file.Seek()
}

// WriteAll writes all tuples to a fresh file and closes the writer.
func WriteAll(f *File, tuples []types.Tuple) error {
	w := NewTupleWriter(f)
	for _, t := range tuples {
		if err := w.Write(t); err != nil {
			return err
		}
	}
	return w.Close()
}

// ReadAll reads every tuple from the file (test/tool helper).
func ReadAll(f *File) ([]types.Tuple, error) {
	r := NewTupleReader(f)
	var out []types.Tuple
	for {
		t, ok, err := r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}
