package storage

import (
	"fmt"
	"sort"
	"sync"
)

// SpillArena is an isolated temp-file namespace handed to one spill
// producer (a sort worker or one spilled segment). Files created in an
// arena charge the arena's own lock-free ledger and are invisible to other
// arenas, so concurrent run formation across workers shares no mutable
// state beyond atomic counters. Releasing the arena merges its ledger into
// the disk's global one and drops its files; because the counters are
// monotone sums, the global totals after release equal what a serial
// execution charging the global ledger directly would have produced — the
// property that keeps the paper's I/O-count assertions valid under
// parallelism.
//
// The holder may share one arena across goroutines (CreateTemp/Remove are
// mutex-guarded, page I/O is lock-free), but Release must not race with
// in-flight I/O on the arena's files: late charges would land in a ledger
// that has already merged and be lost.
type SpillArena struct {
	disk  *Disk
	id    int64
	stats ledger
	tap   *ledger // optional per-query observer inherited by arena files

	mu       sync.Mutex
	files    map[string]*File
	nextTemp int
	released bool
}

// NewArena registers a fresh spill arena on the disk.
func (d *Disk) NewArena() *SpillArena {
	return d.NewArenaTapped(nil)
}

// NewArenaTapped registers a fresh spill arena whose files additionally
// charge the given query Tap (nil taps nothing). Release semantics are
// unchanged: the arena's ledger merges into the disk's global one, while
// the tap has already observed every charge live and is never merged.
func (d *Disk) NewArenaTapped(t *Tap) *SpillArena {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextArena++
	a := &SpillArena{disk: d, id: d.nextArena, tap: t.ledgerOrNil(), files: make(map[string]*File)}
	d.arenas[a.id] = a
	return a
}

// PageSize returns the disk's block size.
func (a *SpillArena) PageSize() int { return a.disk.pageSize }

// Stats returns a snapshot of this arena's ledger (its share of the disk
// totals while live; zeroed into the global ledger on release).
func (a *SpillArena) Stats() IOStats { return a.stats.snapshot() }

// CreateTemp creates a uniquely named temp file inside the arena. Names
// carry the arena id so concurrent arenas can never collide with each other
// or with the disk's global temp namespace.
func (a *SpillArena) CreateTemp(prefix string, kind FileKind) *File {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.released {
		panic("storage: CreateTemp on a released SpillArena")
	}
	a.nextTemp++
	name := fmt.Sprintf("%s.a%d.tmp%d", prefix, a.id, a.nextTemp)
	f := a.disk.newFile(name, kind, &a.stats)
	f.tap = a.tap
	a.files[name] = f
	return f
}

// Remove deletes the named arena file (no-op when absent, like Disk.Remove).
func (a *SpillArena) Remove(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.files, name)
}

// Release merges the arena's ledger into the disk's global one, drops any
// remaining files (spill files are transient by definition) and deregisters
// the arena. Idempotent; a released arena must not be used again.
func (a *SpillArena) Release() {
	a.disk.mu.Lock()
	if _, live := a.disk.arenas[a.id]; !live {
		a.disk.mu.Unlock()
		return
	}
	delete(a.disk.arenas, a.id)
	a.disk.stats.add(a.stats.snapshot())
	a.disk.mu.Unlock()

	a.mu.Lock()
	a.released = true
	a.files = nil
	a.mu.Unlock()
}

// fileNames lists the arena's files (caller holds no lock; used by
// Disk.FileNames for leak checks).
func (a *SpillArena) fileNames() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.files))
	for n := range a.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// totalPages sums the arena files' allocated pages.
func (a *SpillArena) totalPages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, f := range a.files {
		n += f.NumPages()
	}
	return n
}
