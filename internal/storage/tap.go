package storage

// Tap is a per-query I/O observer: a private lock-free ledger that receives
// a copy of every block transfer charged through the files (and spill
// arenas) attached to it, in addition to the normal device accounting. A
// query execution creates one Tap, attaches it to the files its scans read
// (File.Tapped) and the arenas its sorts spill into (Disk.NewArenaTapped),
// and reads exact I/O attribution from Stats — even while other queries
// hammer the same device concurrently. Taps never feed back into the
// device's ledger: Disk.Stats totals are identical with or without them.
//
// A Tap is safe for concurrent use: charges are atomic adds, and Stats
// snapshots are exact whenever the tapped files are quiescent (which is
// when cursors read them).
type Tap struct {
	stats ledger
}

// NewTap returns an empty tap.
func NewTap() *Tap {
	return &Tap{}
}

// Stats returns a snapshot of the I/O charged through this tap.
func (t *Tap) Stats() IOStats {
	if t == nil {
		return IOStats{}
	}
	return t.stats.snapshot()
}

// Reset zeroes the tap's counters (between measured runs).
func (t *Tap) Reset() {
	t.stats.reset()
}

// ledger returns the tap's internal ledger, nil-safe (a nil Tap taps
// nothing, so call sites can pass an optional tap through unconditionally).
func (t *Tap) ledgerOrNil() *ledger {
	if t == nil {
		return nil
	}
	return &t.stats
}
