package storage

import (
	"encoding/binary"
	"errors"
	"testing"
)

func makeEntry(size int, ord uint32) []byte {
	e := make([]byte, size)
	for i := range e {
		e[i] = byte(ord) + byte(i)
	}
	binary.BigEndian.PutUint32(e[size-4:], ord)
	return e
}

func TestEntryWriterReaderRoundTrip(t *testing.T) {
	const entrySize = 24
	d := NewDisk(256) // (256-2)/24 = 10 entries per page
	f := d.Create("ent", KindRun)
	w := NewEntryWriter(f, entrySize)
	const n = 105 // 10 full pages + one partial
	for i := 0; i < n; i++ {
		if err := w.Write(makeEntry(entrySize, uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.EntriesWritten() != n {
		t.Fatalf("EntriesWritten = %d, want %d", w.EntriesWritten(), n)
	}
	if w.PagesWritten() != 11 || f.NumPages() != 11 {
		t.Fatalf("pages = %d/%d, want 11 (10 full + 1 partial)", w.PagesWritten(), f.NumPages())
	}
	r := NewEntryReader(f, entrySize)
	for i := 0; i < n; i++ {
		e, ok, err := r.Next()
		if err != nil || !ok {
			t.Fatalf("entry %d: ok=%v err=%v", i, ok, err)
		}
		if len(e) != entrySize {
			t.Fatalf("entry %d: len %d, want %d", i, len(e), entrySize)
		}
		if got := binary.BigEndian.Uint32(e[entrySize-4:]); got != uint32(i) {
			t.Fatalf("entry %d: ordinal %d", i, got)
		}
		// The returned slice must be capacity-capped: appending to it must
		// not scribble over the following entry in the page buffer.
		_ = append(e, 0xFF)
	}
	if _, ok, err := r.Next(); ok || err != nil {
		t.Fatalf("EOF: ok=%v err=%v", ok, err)
	}
}

func TestEntryWriterSizeContract(t *testing.T) {
	d := NewDisk(256)
	w := NewEntryWriter(d.Create("ent", KindRun), 16)
	if err := w.Write(make([]byte, 15)); err == nil {
		t.Fatal("short entry accepted")
	}
	// The size error is sticky: the writer is poisoned, like TupleWriter.
	if err := w.Write(make([]byte, 16)); err == nil {
		t.Fatal("write after error accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("entry larger than a page must panic at construction")
		}
	}()
	NewEntryWriter(d.Create("big", KindRun), 255)
}

// TestEntryFileFaultInjection: entry pages move through File.AppendPage /
// ReadPage, so the fault plane, quota and I/O ledger see them exactly like
// tuple run pages — no side channel.
func TestEntryFileFaultInjection(t *testing.T) {
	const entrySize = 24
	write := func(d *Disk, n int) (*File, error) {
		f := d.Create("ent", KindRun)
		w := NewEntryWriter(f, entrySize)
		for i := 0; i < n; i++ {
			if err := w.Write(makeEntry(entrySize, uint32(i))); err != nil {
				return nil, err
			}
		}
		return f, w.Close()
	}

	d := NewDisk(256)
	d.SetFaultPlan(NewFaultPlan(FaultRule{Class: FaultClass{OpWrite, KindRun}, At: 3}))
	if _, err := write(d, 105); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("third entry-page write should fault: %v", err)
	}

	d = NewDisk(256)
	f, err := write(d, 105)
	if err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if before.RunPageWrites != 11 {
		t.Fatalf("ledger saw %d run-page writes, want 11", before.RunPageWrites)
	}
	d.SetFaultPlan(NewFaultPlan(FaultRule{Class: FaultClass{OpRead, KindRun}, At: 2}))
	r := NewEntryReader(f, entrySize)
	var rerr error
	for {
		_, ok, err := r.Next()
		if err != nil {
			rerr = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(rerr, ErrInjectedFault) {
		t.Fatalf("second entry-page read should fault: %v", rerr)
	}
}

func TestEntryFileQuota(t *testing.T) {
	d := NewDisk(256)
	d.SetTempQuotaPages(2)
	w := NewEntryWriter(d.Create("ent", KindRun), 24)
	var err error
	for i := 0; i < 105 && err == nil; i++ {
		err = w.Write(makeEntry(24, uint32(i)))
	}
	if err == nil {
		err = w.Close()
	}
	if !errors.Is(err, ErrNoTempSpace) {
		t.Fatalf("quota should refuse the third entry page: %v", err)
	}
}
