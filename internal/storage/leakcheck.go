package storage

// TB is the slice of testing.TB the leak check needs; taking an interface
// keeps the testing package out of the production build.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// AssertNoLeaks fails the test if the disk holds any live temporary file or
// unreleased spill arena. Every query — successful, cancelled, failed by an
// injected fault, or panicked — must leave the device in this state, so
// end-to-end tests call it after draining their cursors.
func AssertNoLeaks(t TB, d *Disk) {
	t.Helper()
	if files := d.LiveTempFiles(); len(files) > 0 {
		t.Errorf("storage: leaked temp files: %v", files)
	}
	if n := d.LiveArenas(); n > 0 {
		t.Errorf("storage: %d unreleased spill arenas", n)
	}
}
