package storage

import (
	"sync"
	"testing"
)

func TestTappedFileChargesBothLedgers(t *testing.T) {
	d := NewDisk(64)
	f := d.Create("data", KindData)
	tap := NewTap()
	view := f.Tapped(tap)

	if _, err := view.AppendPage(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := view.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	view.Seek()

	want := IOStats{PageReads: 1, PageWrites: 1, Seeks: 1}
	if got := tap.Stats(); got != want {
		t.Fatalf("tap stats = %+v, want %+v", got, want)
	}
	if got := d.Stats(); got != want {
		t.Fatalf("disk stats = %+v, want %+v — taps must not divert device accounting", got, want)
	}

	// The view shares pages with the original; the original's I/O does not
	// reach the tap.
	if f.NumPages() != 1 {
		t.Fatalf("original sees %d pages, want the view's append", f.NumPages())
	}
	if _, err := f.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if got := tap.Stats(); got != want {
		t.Fatalf("untapped read leaked into the tap: %+v", got)
	}
	if got := d.Stats(); (got != IOStats{PageReads: 2, PageWrites: 1, Seeks: 1}) {
		t.Fatalf("disk stats = %+v", got)
	}

	// Nil taps are free passthroughs.
	if f.Tapped(nil) != f {
		t.Fatal("Tapped(nil) must return the file itself")
	}

	tap.Reset()
	if got := tap.Stats(); got != (IOStats{}) {
		t.Fatalf("Reset left %+v", got)
	}
}

func TestTappedArenaAttributesSpills(t *testing.T) {
	d := NewDisk(64)
	tap := NewTap()
	a := d.NewArenaTapped(tap)
	f := a.CreateTemp("run", KindRun)
	if _, err := f.AppendPage(make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadPage(0); err != nil {
		t.Fatal(err)
	}

	want := IOStats{PageReads: 1, PageWrites: 1, RunPageReads: 1, RunPageWrites: 1}
	if got := tap.Stats(); got != want {
		t.Fatalf("tap stats = %+v, want %+v", got, want)
	}
	if got := d.Stats(); got != want {
		t.Fatalf("disk stats with live arena = %+v, want %+v", got, want)
	}
	// Release merges the arena ledger into the disk exactly once; the tap
	// observed the charges live and must not change.
	a.Release()
	if got := d.Stats(); got != want {
		t.Fatalf("disk stats after release = %+v, want %+v", got, want)
	}
	if got := tap.Stats(); got != want {
		t.Fatalf("tap stats after release = %+v, want %+v", got, want)
	}
}

// TestConcurrentTapsAreDisjoint drives two tapped workloads on one disk
// concurrently (run under -race by make race) and asserts exact, disjoint
// attribution: each tap sees precisely its own transfers and the device
// ledger sees the sum.
func TestConcurrentTapsAreDisjoint(t *testing.T) {
	d := NewDisk(64)
	shared := d.Create("shared", KindData)
	for i := 0; i < 8; i++ {
		if _, err := shared.AppendPage(make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	base := d.Stats()

	const workers = 4
	const readsPer = 200
	taps := make([]*Tap, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		taps[w] = NewTap()
		wg.Add(1)
		go func(tap *Tap) {
			defer wg.Done()
			view := shared.Tapped(tap)
			arena := d.NewArenaTapped(tap)
			defer arena.Release()
			run := arena.CreateTemp("run", KindRun)
			if _, err := run.AppendPage(make([]byte, 8)); err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < readsPer; i++ {
				if _, err := view.ReadPage(i % 8); err != nil {
					t.Error(err)
					return
				}
				if _, err := run.ReadPage(0); err != nil {
					t.Error(err)
					return
				}
			}
		}(taps[w])
	}
	wg.Wait()

	want := IOStats{
		PageReads:     2 * readsPer,
		PageWrites:    1,
		RunPageReads:  readsPer,
		RunPageWrites: 1,
	}
	var sum IOStats
	for w, tap := range taps {
		if got := tap.Stats(); got != want {
			t.Fatalf("tap %d = %+v, want %+v", w, got, want)
		}
		sum.Add(taps[w].Stats())
	}
	if got := d.Stats().Sub(base); got != sum {
		t.Fatalf("device delta %+v != sum of taps %+v", got, sum)
	}
}
