// Package storage implements the simulated block device under the PYRO
// execution engine. All table, index and sort-run data live in paged
// in-memory "files"; every page read or write is charged to an IOStats
// counter. The experiments in the paper compare plans by I/O behaviour, so
// exact accounting of block transfers — not wall-clock disk latency — is the
// property the substitution must preserve (see DESIGN.md).
//
// The default page size is 4 KiB, matching the paper's setup ("We assume a
// disk block size of 4K bytes").
package storage

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultPageSize is the simulated disk block size in bytes.
const DefaultPageSize = 4096

// IOStats counts simulated block transfers. The engine distinguishes reads
// and writes and, separately, transfers attributable to sort-run generation
// and merging, which is the quantity Section 3 of the paper eliminates via
// partial sorting.
type IOStats struct {
	PageReads     int64 // pages read (all causes)
	PageWrites    int64 // pages written (all causes)
	RunPageReads  int64 // subset of PageReads from sort-run files
	RunPageWrites int64 // subset of PageWrites to sort-run files
	Seeks         int64 // random repositioning events (per run switch / probe)
}

// Total returns total block transfers (reads + writes).
func (s IOStats) Total() int64 { return s.PageReads + s.PageWrites }

// RunTotal returns transfers attributable to sort runs.
func (s IOStats) RunTotal() int64 { return s.RunPageReads + s.RunPageWrites }

// Add accumulates o into s.
func (s *IOStats) Add(o IOStats) {
	s.PageReads += o.PageReads
	s.PageWrites += o.PageWrites
	s.RunPageReads += o.RunPageReads
	s.RunPageWrites += o.RunPageWrites
	s.Seeks += o.Seeks
}

// Sub returns s - o, for interval measurements.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		PageReads:     s.PageReads - o.PageReads,
		PageWrites:    s.PageWrites - o.PageWrites,
		RunPageReads:  s.RunPageReads - o.RunPageReads,
		RunPageWrites: s.RunPageWrites - o.RunPageWrites,
		Seeks:         s.Seeks - o.Seeks,
	}
}

func (s *IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d (run reads=%d writes=%d) seeks=%d",
		s.PageReads, s.PageWrites, s.RunPageReads, s.RunPageWrites, s.Seeks)
}

// FileKind labels a file for I/O attribution.
type FileKind uint8

const (
	// KindData is table or index data.
	KindData FileKind = iota
	// KindRun is an external-sort run file.
	KindRun
)

// Disk is a simulated block device: a set of named paged files plus an
// IOStats ledger. A Disk is safe for concurrent use by multiple goroutines;
// the engine itself is single-threaded per query but tests exercise
// concurrent workloads.
type Disk struct {
	mu       sync.Mutex
	pageSize int
	files    map[string]*File
	stats    IOStats
	nextTemp int
}

// NewDisk returns an empty disk with the given page size (0 => default).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{pageSize: pageSize, files: make(map[string]*File)}
}

// PageSize returns the block size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// Stats returns a snapshot of the I/O counters.
func (d *Disk) Stats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// ResetStats zeroes the I/O counters.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats = IOStats{}
}

// Create creates (or truncates) a named file of the given kind.
func (d *Disk) Create(name string, kind FileKind) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := &File{disk: d, name: name, kind: kind}
	d.files[name] = f
	return f
}

// CreateTemp creates a uniquely named temporary file (used for sort runs).
func (d *Disk) CreateTemp(prefix string, kind FileKind) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextTemp++
	name := fmt.Sprintf("%s.tmp%d", prefix, d.nextTemp)
	f := &File{disk: d, name: name, kind: kind}
	d.files[name] = f
	return f
}

// Open returns the named file, or an error if absent.
func (d *Disk) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("storage: file %q does not exist", name)
	}
	return f, nil
}

// Remove deletes the named file. Removing a missing file is a no-op, like
// closing an already-closed descriptor during cleanup.
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// FileNames lists files in deterministic order (for tests and tools).
func (d *Disk) FileNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for n := range d.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalPages returns the number of allocated pages across all files.
func (d *Disk) TotalPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, f := range d.files {
		n += len(f.pages)
	}
	return n
}

func (d *Disk) charge(kind FileKind, reads, writes int64, seek bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.PageReads += reads
	d.stats.PageWrites += writes
	if kind == KindRun {
		d.stats.RunPageReads += reads
		d.stats.RunPageWrites += writes
	}
	if seek {
		d.stats.Seeks++
	}
}

// File is a paged file on the simulated disk.
type File struct {
	disk  *Disk
	name  string
	kind  FileKind
	mu    sync.Mutex
	pages [][]byte
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Kind returns the file's I/O attribution kind.
func (f *File) Kind() FileKind { return f.kind }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pages)
}

// AppendPage writes a new page at the end of the file and charges one block
// write. The page contents are copied.
func (f *File) AppendPage(data []byte) int {
	if len(data) > f.disk.pageSize {
		panic(fmt.Sprintf("storage: page of %d bytes exceeds page size %d", len(data), f.disk.pageSize))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	f.mu.Lock()
	f.pages = append(f.pages, cp)
	n := len(f.pages)
	f.mu.Unlock()
	f.disk.charge(f.kind, 0, 1, false)
	return n - 1
}

// ReadPage returns page i, charging one block read. The returned slice must
// not be modified by the caller.
func (f *File) ReadPage(i int) ([]byte, error) {
	f.mu.Lock()
	if i < 0 || i >= len(f.pages) {
		n := len(f.pages)
		f.mu.Unlock()
		return nil, fmt.Errorf("storage: page %d out of range [0,%d) in %q", i, n, f.name)
	}
	p := f.pages[i]
	f.mu.Unlock()
	f.disk.charge(f.kind, 1, 0, false)
	return p, nil
}

// Seek records a random repositioning (merge-run switches, index probes).
func (f *File) Seek() { f.disk.charge(f.kind, 0, 0, true) }

// Truncate drops all pages without charging I/O (models deallocation).
func (f *File) Truncate() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.pages = f.pages[:0]
}
