// Package storage implements the simulated block device under the PYRO
// execution engine. All table, index and sort-run data live in paged
// in-memory "files"; every page read or write is charged to an IOStats
// counter. The experiments in the paper compare plans by I/O behaviour, so
// exact accounting of block transfers — not wall-clock disk latency — is the
// property the substitution must preserve (see DESIGN.md).
//
// The device is a thin sharded front-end: page I/O charges a lock-free
// atomic ledger and never takes the device-wide mutex (which guards only
// the file registry). Concurrent spill producers get per-worker SpillArenas
// — isolated temp namespaces with their own atomic ledgers that merge back
// into the global ledger on release — so parallel external sorting contends
// on nothing.
//
// The default page size is 4 KiB, matching the paper's setup ("We assume a
// disk block size of 4K bytes").
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the simulated disk block size in bytes.
const DefaultPageSize = 4096

// IOStats counts simulated block transfers. The engine distinguishes reads
// and writes and, separately, transfers attributable to sort-run generation
// and merging, which is the quantity Section 3 of the paper eliminates via
// partial sorting.
type IOStats struct {
	PageReads     int64 // pages read (all causes)
	PageWrites    int64 // pages written (all causes)
	RunPageReads  int64 // subset of PageReads from sort-run files
	RunPageWrites int64 // subset of PageWrites to sort-run files
	Seeks         int64 // random repositioning events (per run switch / probe)
}

// Total returns total block transfers (reads + writes).
func (s IOStats) Total() int64 { return s.PageReads + s.PageWrites }

// RunTotal returns transfers attributable to sort runs.
func (s IOStats) RunTotal() int64 { return s.RunPageReads + s.RunPageWrites }

// Add accumulates o into s.
func (s *IOStats) Add(o IOStats) {
	s.PageReads += o.PageReads
	s.PageWrites += o.PageWrites
	s.RunPageReads += o.RunPageReads
	s.RunPageWrites += o.RunPageWrites
	s.Seeks += o.Seeks
}

// Sub returns s - o, for interval measurements.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		PageReads:     s.PageReads - o.PageReads,
		PageWrites:    s.PageWrites - o.PageWrites,
		RunPageReads:  s.RunPageReads - o.RunPageReads,
		RunPageWrites: s.RunPageWrites - o.RunPageWrites,
		Seeks:         s.Seeks - o.Seeks,
	}
}

func (s *IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d (run reads=%d writes=%d) seeks=%d",
		s.PageReads, s.PageWrites, s.RunPageReads, s.RunPageWrites, s.Seeks)
}

// ledger is a lock-free IOStats accumulator. Files charge transfers with
// plain atomic adds, so page I/O from concurrent sort workers never
// serializes on a mutex; snapshots sum monotone counters and are exact
// whenever the ledger is quiescent (which is when tests assert on it).
type ledger struct {
	pageReads     atomic.Int64
	pageWrites    atomic.Int64
	runPageReads  atomic.Int64
	runPageWrites atomic.Int64
	seeks         atomic.Int64
}

func (l *ledger) charge(kind FileKind, reads, writes int64, seek bool) {
	if reads != 0 {
		l.pageReads.Add(reads)
		if kind == KindRun {
			l.runPageReads.Add(reads)
		}
	}
	if writes != 0 {
		l.pageWrites.Add(writes)
		if kind == KindRun {
			l.runPageWrites.Add(writes)
		}
	}
	if seek {
		l.seeks.Add(1)
	}
}

func (l *ledger) snapshot() IOStats {
	return IOStats{
		PageReads:     l.pageReads.Load(),
		PageWrites:    l.pageWrites.Load(),
		RunPageReads:  l.runPageReads.Load(),
		RunPageWrites: l.runPageWrites.Load(),
		Seeks:         l.seeks.Load(),
	}
}

func (l *ledger) add(s IOStats) {
	l.pageReads.Add(s.PageReads)
	l.pageWrites.Add(s.PageWrites)
	l.runPageReads.Add(s.RunPageReads)
	l.runPageWrites.Add(s.RunPageWrites)
	l.seeks.Add(s.Seeks)
}

func (l *ledger) reset() {
	l.pageReads.Store(0)
	l.pageWrites.Store(0)
	l.runPageReads.Store(0)
	l.runPageWrites.Store(0)
	l.seeks.Store(0)
}

// FileKind labels a file for I/O attribution.
type FileKind uint8

const (
	// KindData is table or index data.
	KindData FileKind = iota
	// KindRun is an external-sort run file.
	KindRun
)

// TempSpace is the capability to create and remove temporary files — the
// surface external sorting needs from the storage layer. It is satisfied by
// the Disk itself (global namespace) and by SpillArena (an isolated
// per-worker namespace), so run formation and merging code is agnostic to
// which shard its spill files land in.
type TempSpace interface {
	CreateTemp(prefix string, kind FileKind) *File
	Remove(name string)
	PageSize() int
}

// Disk is a simulated block device: a set of named paged files plus an
// IOStats ledger. A Disk is safe for concurrent use by multiple goroutines;
// page transfers charge a lock-free atomic ledger, and the mutex guards only
// the file/arena registry. Stats reports the global ledger plus every live
// arena's, so I/O-count assertions hold no matter which shard did the work.
type Disk struct {
	pageSize  int
	stats     ledger
	fault     atomic.Pointer[faultSlot] // installed FaultPlan; nil slot or plan = no faults
	tempQuota atomic.Int64              // max live run pages; <= 0 = unlimited

	mu        sync.Mutex
	files     map[string]*File
	arenas    map[int64]*SpillArena
	nextTemp  int
	nextArena int64
}

// NewDisk returns an empty disk with the given page size (0 => default).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{
		pageSize: pageSize,
		files:    make(map[string]*File),
		arenas:   make(map[int64]*SpillArena),
	}
}

// PageSize returns the block size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// Stats returns a snapshot of the I/O counters: the global ledger plus the
// ledgers of all live arenas (released arenas have already merged in).
// The whole snapshot happens under the registry mutex so it cannot race an
// arena Release into counting that arena's I/O zero or two times.
func (d *Disk) Stats() IOStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := d.stats.snapshot()
	for _, a := range d.arenas {
		s.Add(a.stats.snapshot())
	}
	return s
}

// ResetStats zeroes the I/O counters, including live arenas'.
func (d *Disk) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stats.reset()
	for _, a := range d.arenas {
		a.stats.reset()
	}
}

// newFile builds a file charging the given ledger.
func (d *Disk) newFile(name string, kind FileKind, l *ledger) *File {
	return &File{disk: d, ledger: l, pageSize: d.pageSize, name: name, kind: kind, data: &pageStore{}}
}

// Create creates (or truncates) a named file of the given kind.
func (d *Disk) Create(name string, kind FileKind) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	f := d.newFile(name, kind, &d.stats)
	d.files[name] = f
	return f
}

// CreateTemp creates a uniquely named temporary file (used for sort runs).
func (d *Disk) CreateTemp(prefix string, kind FileKind) *File {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextTemp++
	name := fmt.Sprintf("%s.tmp%d", prefix, d.nextTemp)
	f := d.newFile(name, kind, &d.stats)
	d.files[name] = f
	return f
}

// Open returns the named file, or an error if absent. Arena files are not
// visible here: an arena's namespace is private to its holder.
func (d *Disk) Open(name string) (*File, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("storage: file %q does not exist", name)
	}
	return f, nil
}

// Remove deletes the named file. Removing a missing file is a no-op, like
// closing an already-closed descriptor during cleanup.
func (d *Disk) Remove(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.files, name)
}

// FileNames lists files in deterministic order (for tests and tools),
// including files inside live arenas — a leaked spill file is still a leak.
func (d *Disk) FileNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.files))
	for n := range d.files {
		out = append(out, n)
	}
	for _, a := range d.arenas {
		out = append(out, a.fileNames()...)
	}
	sort.Strings(out)
	return out
}

// TotalPages returns the number of allocated pages across all files,
// including live arenas'.
func (d *Disk) TotalPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, f := range d.files {
		n += f.NumPages()
	}
	for _, a := range d.arenas {
		n += a.totalPages()
	}
	return n
}

// LiveArenas returns the number of unreleased spill arenas — nonzero after a
// query finishes means a failure path skipped an arena Release.
func (d *Disk) LiveArenas() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.arenas)
}

// LiveTempFiles lists every live temporary file: KindRun files in the global
// namespace plus all files inside live arenas. Table and index data files
// are permanent and excluded; everything returned here should be gone once
// no query is in flight.
func (d *Disk) LiveTempFiles() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for n, f := range d.files {
		if f.kind == KindRun {
			out = append(out, n)
		}
	}
	for _, a := range d.arenas {
		out = append(out, a.fileNames()...)
	}
	sort.Strings(out)
	return out
}

// File is a paged file on the simulated disk. Its transfers charge the
// ledger it was created under — the disk's global one, or a SpillArena's —
// plus, for tapped views (File.Tapped), one query's observation Tap. Views
// share the underlying page store, so a tapped view and the registry's
// original are the same file with different attribution.
type File struct {
	disk     *Disk // owning device, consulted for fault plan and temp quota
	ledger   *ledger
	tap      *ledger // optional per-query observer; nil on untapped files
	pageSize int
	name     string
	kind     FileKind
	data     *pageStore
}

// pageStore is the page state shared between a file and its tapped views.
type pageStore struct {
	mu    sync.Mutex
	pages [][]byte
}

// Tapped returns a view of the file whose transfers additionally charge t.
// The view shares the file's pages (reads, appends and truncates are common
// to all views); only the attribution differs. A nil tap returns f itself.
func (f *File) Tapped(t *Tap) *File {
	if t == nil {
		return f
	}
	cp := *f
	cp.tap = t.ledgerOrNil()
	return &cp
}

// charge records block transfers on the device ledger and, when this is a
// tapped view, mirrors them onto the query's tap.
func (f *File) charge(reads, writes int64, seek bool) {
	f.ledger.charge(f.kind, reads, writes, seek)
	if f.tap != nil {
		f.tap.charge(f.kind, reads, writes, seek)
	}
}

// Name returns the file's name.
func (f *File) Name() string { return f.name }

// Kind returns the file's I/O attribution kind.
func (f *File) Kind() FileKind { return f.kind }

// PageSize returns the block size this file was created with.
func (f *File) PageSize() int { return f.pageSize }

// NumPages returns the number of allocated pages.
func (f *File) NumPages() int {
	f.data.mu.Lock()
	defer f.data.mu.Unlock()
	return len(f.data.pages)
}

// AppendPage writes a new page at the end of the file and charges one block
// write. The page contents are copied. The write can fail: on an injected
// write fault, on a run-page write past the disk's temp-space quota
// (ErrNoTempSpace), or on a page larger than the block size. Nothing is
// appended or charged on failure.
func (f *File) AppendPage(data []byte) (int, error) {
	if len(data) > f.pageSize {
		return 0, fmt.Errorf("storage: page of %d bytes exceeds page size %d in %q", len(data), f.pageSize, f.name)
	}
	if err := f.faultCheck(OpWrite); err != nil {
		return 0, err
	}
	if f.kind == KindRun && f.disk != nil {
		if err := f.disk.checkTempQuota(); err != nil {
			return 0, err
		}
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	f.data.mu.Lock()
	f.data.pages = append(f.data.pages, cp)
	n := len(f.data.pages)
	f.data.mu.Unlock()
	f.charge(0, 1, false)
	return n - 1, nil
}

// ReadPage returns page i, charging one block read. The returned slice must
// not be modified by the caller.
func (f *File) ReadPage(i int) ([]byte, error) {
	if err := f.faultCheck(OpRead); err != nil {
		return nil, err
	}
	f.data.mu.Lock()
	if i < 0 || i >= len(f.data.pages) {
		n := len(f.data.pages)
		f.data.mu.Unlock()
		return nil, fmt.Errorf("storage: page %d out of range [0,%d) in %q", i, n, f.name)
	}
	p := f.data.pages[i]
	f.data.mu.Unlock()
	f.charge(1, 0, false)
	return p, nil
}

// Seek records a random repositioning (merge-run switches, index probes).
func (f *File) Seek() { f.charge(0, 0, true) }

// Truncate drops all pages without charging I/O (models deallocation).
func (f *File) Truncate() {
	f.data.mu.Lock()
	defer f.data.mu.Unlock()
	f.data.pages = f.data.pages[:0]
}
