package exec

import (
	"fmt"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

func fetchFixture(t *testing.T, rows int64, dupsPerKey int64) (*catalog.Catalog, *catalog.Table) {
	t.Helper()
	c := catalog.New(storage.NewDisk(512)) // small pages => many pages
	schema := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
		types.Column{Name: "pad", Kind: types.KindString, Width: 40},
	)
	var data []types.Tuple
	for i := int64(0); i < rows; i++ {
		for d := int64(0); d < dupsPerKey; d++ {
			data = append(data, types.NewTuple(
				types.NewInt(i), types.NewInt(d),
				types.NewString("padding-padding-padding-padding")))
		}
	}
	tb, err := c.CreateTable("t", schema, sortord.New("k"), data)
	if err != nil {
		t.Fatal(err)
	}
	return c, tb
}

func TestFetchLooksUpEveryKey(t *testing.T) {
	_, tb := fetchFixture(t, 500, 1)
	// Child: key tuples in a scrambled order under a different column name.
	childSchema := types.NewSchema(types.Column{Name: "ref", Kind: types.KindInt})
	var childRows []types.Tuple
	for i := int64(0); i < 500; i += 7 {
		childRows = append(childRows, types.NewTuple(types.NewInt((i*13)%500)))
	}
	child, _ := NewValues(childSchema, childRows)
	f, err := NewFetch(child, tb, []string{"ref"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(childRows) {
		t.Fatalf("fetched %d rows, want %d", len(got), len(childRows))
	}
	for i, r := range got {
		if r[0].Int() != childRows[i][0].Int() {
			t.Fatalf("row %d: fetched key %v, want %v (child order must be preserved)",
				i, r[0], childRows[i][0])
		}
		if len(r) != 3 {
			t.Fatalf("fetched row %d incomplete: %v", i, r)
		}
	}
	if f.Fetches() != int64(len(childRows)) {
		t.Fatalf("Fetches = %d", f.Fetches())
	}
}

func TestFetchDuplicateKeys(t *testing.T) {
	// 20 keys x 30 duplicates spanning many 512-byte pages: a fetch by key
	// must return every duplicate, including across page boundaries.
	_, tb := fetchFixture(t, 20, 30)
	childSchema := types.NewSchema(types.Column{Name: "ref", Kind: types.KindInt})
	child, _ := NewValues(childSchema, []types.Tuple{
		types.NewTuple(types.NewInt(0)),
		types.NewTuple(types.NewInt(7)),
		types.NewTuple(types.NewInt(19)),
	})
	f, err := NewFetch(child, tb, []string{"ref"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 90 {
		t.Fatalf("fetched %d rows, want 90", len(got))
	}
	counts := map[int64]int{}
	for _, r := range got {
		counts[r[0].Int()]++
	}
	for _, k := range []int64{0, 7, 19} {
		if counts[k] != 30 {
			t.Fatalf("key %d fetched %d times, want 30", k, counts[k])
		}
	}
}

func TestFetchChargesRandomIO(t *testing.T) {
	c, tb := fetchFixture(t, 500, 1)
	childSchema := types.NewSchema(types.Column{Name: "ref", Kind: types.KindInt})
	child, _ := NewValues(childSchema, []types.Tuple{types.NewTuple(types.NewInt(42))})
	f, _ := NewFetch(child, tb, []string{"ref"})
	c.Disk().ResetStats()
	if _, err := Drain(f); err != nil {
		t.Fatal(err)
	}
	st := c.Disk().Stats()
	if st.PageReads == 0 || st.Seeks == 0 {
		t.Fatalf("fetch must charge a read and a seek: %+v", st)
	}
	if st.PageReads > 3 {
		t.Fatalf("fetch read %d pages for one key; directory lookup broken", st.PageReads)
	}
}

func TestFetchValidation(t *testing.T) {
	c, tb := fetchFixture(t, 10, 1)
	childSchema := types.NewSchema(types.Column{Name: "ref", Kind: types.KindInt})
	child, _ := NewValues(childSchema, nil)
	if _, err := NewFetch(child, tb, []string{"nope"}); err == nil {
		t.Fatal("unknown child key column should error")
	}
	if _, err := NewFetch(child, tb, []string{"ref", "ref"}); err == nil {
		t.Fatal("key arity mismatch should error")
	}
	// Unclustered table: no directory.
	schema := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	heap, err := c.CreateTable("heap", schema, sortord.Empty,
		[]types.Tuple{types.NewTuple(types.NewInt(1))})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFetch(child, heap, []string{"ref"}); err == nil {
		t.Fatal("fetch on unclustered table should error")
	}
}

func TestCatalogLookupPage(t *testing.T) {
	_, tb := fetchFixture(t, 1000, 1)
	if !tb.HasPageDirectory() {
		t.Fatal("clustered table should have a directory")
	}
	// Every key must map to the page that actually holds it.
	file := tb.File()
	for _, probe := range []int64{0, 1, 499, 500, 999} {
		page := tb.LookupPage(types.NewTuple(types.NewInt(probe)))
		if page < 0 || page >= file.NumPages() {
			t.Fatalf("LookupPage(%d) = %d out of range", probe, page)
		}
		data, err := file.ReadPage(page)
		if err != nil {
			t.Fatal(err)
		}
		_ = data
	}
	// Keys beyond the range clamp to first/last page without panicking.
	if p := tb.LookupPage(types.NewTuple(types.NewInt(-5))); p != 0 {
		t.Fatalf("underflow probe = %d", p)
	}
	if p := tb.LookupPage(types.NewTuple(types.NewInt(1 << 40))); p != file.NumPages()-1 {
		t.Fatalf("overflow probe = %d, want last page", p)
	}
}

func TestTupleWriterPageStarts(t *testing.T) {
	d := storage.NewDisk(256)
	f := d.Create("f", storage.KindData)
	w := storage.NewTupleWriter(f)
	for i := 0; i < 100; i++ {
		if err := w.Write(types.NewTuple(types.NewInt(int64(i)), types.NewString(fmt.Sprintf("row%03d", i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	starts := w.PageStarts()
	if len(starts) != f.NumPages() {
		t.Fatalf("%d page starts for %d pages", len(starts), f.NumPages())
	}
	if starts[0] != 0 {
		t.Fatalf("first page starts at %d", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			t.Fatal("page starts must increase")
		}
	}
}
