package exec

import (
	"testing"

	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/xsort"
)

// TestWalkAndCollectSorts pins the tree-walking hooks the streaming cursor
// relies on: pre-order visitation and plan-position sort collection.
func TestWalkAndCollectSorts(t *testing.T) {
	ls := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
	)
	rs := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	rows := []types.Tuple{
		types.NewTuple(types.NewInt(2), types.NewInt(1)),
		types.NewTuple(types.NewInt(1), types.NewInt(2)),
	}
	leafL, err := NewValues(ls, rows)
	if err != nil {
		t.Fatal(err)
	}
	leafR, err := NewValues(rs, rows)
	if err != nil {
		t.Fatal(err)
	}
	cfg := xsort.Config{Disk: storage.NewDisk(0), MemoryBlocks: 16}
	sortL, err := NewSortSRS(leafL, sortord.New("a"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sortR, err := NewSortSRS(leafR, sortord.New("c"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	mj, err := NewMergeJoin(sortL, sortR, sortord.New("a"), sortord.New("c"), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	root, err := NewLimit(mj, 10)
	if err != nil {
		t.Fatal(err)
	}

	var visited []Operator
	Walk(root, func(op Operator) { visited = append(visited, op) })
	want := []Operator{root, mj, sortL, leafL, sortR, leafR}
	if len(visited) != len(want) {
		t.Fatalf("Walk visited %d operators, want %d", len(visited), len(want))
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("Walk position %d = %T, want %T (pre-order)", i, visited[i], want[i])
		}
	}

	sorts := CollectSorts(root)
	if len(sorts) != 2 || sorts[0] != sortL || sorts[1] != sortR {
		t.Fatalf("CollectSorts = %v, want [left sort, right sort]", sorts)
	}

	// Operators from outside the package are leaves, not a panic.
	if cs := Children(fakeLeaf{}); cs != nil {
		t.Fatalf("foreign operator should walk as a leaf, got children %v", cs)
	}
}

type fakeLeaf struct{}

func (fakeLeaf) Open() error                      { return nil }
func (fakeLeaf) Next() (types.Tuple, bool, error) { return nil, false, nil }
func (fakeLeaf) Close() error                     { return nil }
func (fakeLeaf) Schema() *types.Schema            { return types.NewSchema() }
