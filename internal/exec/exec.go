// Package exec implements the Volcano-style iterator execution engine: scans
// over tables and covering indices, filters, projections, sort enforcers
// (standard and partial-order-exploiting), merge and hash joins, merge full
// outer join, nested-loops join, sort- and hash-based aggregation, merge
// union, duplicate elimination and limit.
//
// Every operator implements iter.Iterator and carries the schema of the
// tuples it produces. Physical properties (the sort order an operator
// guarantees) are tracked by the optimizer, not the operators; operators
// that require sorted inputs document the requirement and the optimizer's
// plan builder is responsible for satisfying it.
package exec

import (
	"fmt"

	"pyro/internal/expr"
	"pyro/internal/iter"
	"pyro/internal/types"
)

// Operator is an executable iterator with a known output schema.
type Operator interface {
	iter.Iterator
	Schema() *types.Schema
}

// inferKind derives the result kind of a scalar expression against a schema,
// used to type aggregate and projection output columns.
func inferKind(e expr.Expr, s *types.Schema) types.Kind {
	switch n := e.(type) {
	case expr.ColRef:
		if i, ok := s.Ordinal(n.Name); ok {
			return s.Col(i).Kind
		}
		return types.KindNull
	case expr.Const:
		return n.Value.Kind()
	case expr.Cmp:
		return types.KindBool
	case expr.And, expr.Or, expr.Not:
		return types.KindBool
	case expr.Arith:
		lk, rk := inferKind(n.L, s), inferKind(n.R, s)
		if lk == types.KindInt && rk == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	default:
		return types.KindNull
	}
}

// Drain pulls all tuples from an operator (helper for tests and tools).
func Drain(op Operator) ([]types.Tuple, error) {
	return iter.Drain(op)
}

// Validate walks nothing — it simply checks an operator tree was assembled
// with non-nil children; constructors enforce the rest. Exposed for plan
// builders that assemble trees dynamically.
func Validate(op Operator) error {
	if op == nil {
		return fmt.Errorf("exec: nil operator")
	}
	return nil
}
