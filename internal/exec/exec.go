// Package exec implements the Volcano-style iterator execution engine: scans
// over tables and covering indices, filters, projections, sort enforcers
// (standard and partial-order-exploiting), merge and hash joins, merge full
// outer join, nested-loops join, sort- and hash-based aggregation, merge
// union, duplicate elimination and limit.
//
// Every operator implements iter.Iterator and carries the schema of the
// tuples it produces. Physical properties (the sort order an operator
// guarantees) are tracked by the optimizer, not the operators; operators
// that require sorted inputs document the requirement and the optimizer's
// plan builder is responsible for satisfying it.
package exec

import (
	"fmt"

	"pyro/internal/expr"
	"pyro/internal/iter"
	"pyro/internal/types"
)

// Operator is an executable iterator with a known output schema.
type Operator interface {
	iter.Iterator
	Schema() *types.Schema
}

// inferKind derives the result kind of a scalar expression against a schema,
// used to type aggregate and projection output columns.
func inferKind(e expr.Expr, s *types.Schema) types.Kind {
	switch n := e.(type) {
	case expr.ColRef:
		if i, ok := s.Ordinal(n.Name); ok {
			return s.Col(i).Kind
		}
		return types.KindNull
	case expr.Const:
		return n.Value.Kind()
	case expr.Cmp:
		return types.KindBool
	case expr.And, expr.Or, expr.Not:
		return types.KindBool
	case expr.Arith:
		lk, rk := inferKind(n.L, s), inferKind(n.R, s)
		if lk == types.KindInt && rk == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	default:
		return types.KindNull
	}
}

// Drain pulls all tuples from an operator (helper for tests and tools).
func Drain(op Operator) ([]types.Tuple, error) {
	return iter.Drain(op)
}

// Aborter is implemented by operators whose tuple loops poll an abort
// hook. The cursor checks the context between Next calls, but an operator
// can consume its entire input inside one call — a filter rejecting every
// row, a hash-join build, a nested-loops spool — so those inner loops
// carry their own strided iter.Guard, exactly like the sort and spill
// loops in internal/xsort.
type Aborter interface {
	// SetAbort installs the poll function (ctx.Err from the cursor). Must
	// be called before Open; nil leaves the operator non-aborting.
	SetAbort(poll func() error)
}

// InstallAbort walks the tree and installs poll on every operator that
// polls an abort guard in its tuple loops. Sort enforcers are not wired
// here — they receive the same hook through xsort.Config.Abort.
func InstallAbort(root Operator, poll func() error) {
	if poll == nil {
		return
	}
	Walk(root, func(op Operator) {
		if a, ok := op.(Aborter); ok {
			a.SetAbort(poll)
		}
	})
}

// Children returns the operator's direct inputs, left to right, or nil for
// a leaf. Every operator in this package implements the underlying
// Children() method; operators from outside (test doubles) are treated as
// leaves rather than breaking the walk.
func Children(op Operator) []Operator {
	if p, ok := op.(interface{ Children() []Operator }); ok {
		return p.Children()
	}
	return nil
}

// Walk visits op and all its descendants in pre-order (parent before
// children, left subtree before right) — the same order Plan.Format lists
// operators, so positions line up with an Explain rendering.
func Walk(op Operator, visit func(Operator)) {
	if op == nil {
		return
	}
	visit(op)
	for _, c := range Children(op) {
		Walk(c, visit)
	}
}

// CollectSorts returns every sort enforcer in the tree in pre-order. The
// streaming cursor uses it to expose per-query SortStats without the
// operators having to push counters anywhere.
func CollectSorts(root Operator) []*Sort {
	var sorts []*Sort
	Walk(root, func(op Operator) {
		if s, ok := op.(*Sort); ok {
			sorts = append(sorts, s)
		}
	})
	return sorts
}

// Validate walks nothing — it simply checks an operator tree was assembled
// with non-nil children; constructors enforce the rest. Exposed for plan
// builders that assemble trees dynamically.
func Validate(op Operator) error {
	if op == nil {
		return fmt.Errorf("exec: nil operator")
	}
	return nil
}
