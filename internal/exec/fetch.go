package exec

import (
	"encoding/binary"
	"fmt"

	"pyro/internal/catalog"
	"pyro/internal/iter"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// Fetch completes partial rows with a clustered key lookup: its child
// delivers tuples that contain the table's clustering-key columns (e.g.
// entries of a non-covering secondary index), and Fetch looks up the full
// heap row for each. This implements the deferred tuple fetch the paper's
// §7 names as future work: "Deferring the fetch until a point where the
// extra attributes are actually needed can be very effective when a highly
// selective filter discards many rows before the fetch is needed."
//
// Each fetch charges one heap page read plus one seek (the clustering
// B-tree's inner nodes are assumed cached; the page directory stands in
// for them). Duplicate clustering keys are supported — all matches are
// returned — but the common use is unique keys.
type Fetch struct {
	child    Operator
	table    *catalog.Table
	tap      *storage.Tap
	file     *storage.File // tapped heap view, bound once in Open
	keyOrds  []int         // child ordinals of the clustering-key columns
	queue    []types.Tuple
	queuePos int
	fetches  int64
	ks       types.KeySpec // table-side key spec (for in-page scan)
	guard    iter.Guard    // strided abort poll for the fetch loop
}

// NewFetch builds a deferred-fetch operator. childKeyCols names the child
// columns carrying the table's clustering key, positionally aligned with
// the table's clustering order.
func NewFetch(child Operator, table *catalog.Table, childKeyCols []string) (*Fetch, error) {
	if !table.HasPageDirectory() {
		return nil, fmt.Errorf("exec: table %q has no clustering directory for fetch", table.Name)
	}
	if len(childKeyCols) != table.ClusterOrder.Len() {
		return nil, fmt.Errorf("exec: fetch key arity %d != clustering arity %d",
			len(childKeyCols), table.ClusterOrder.Len())
	}
	ords := make([]int, len(childKeyCols))
	for i, c := range childKeyCols {
		j, ok := child.Schema().Ordinal(c)
		if !ok {
			return nil, fmt.Errorf("exec: fetch key %q not in %v", c, child.Schema().Names())
		}
		ords[i] = j
	}
	ks, err := types.MakeKeySpec(table.Schema, table.ClusterOrder)
	if err != nil {
		return nil, err
	}
	return &Fetch{child: child, table: table, keyOrds: ords, ks: ks}, nil
}

// Schema returns the full table schema (the fetch completes the row).
func (f *Fetch) Schema() *types.Schema { return f.table.Schema }

// Children returns the key-producing input (the fetched table is storage,
// not an operator).
func (f *Fetch) Children() []Operator { return []Operator{f.child} }

// Fetches returns the number of heap lookups performed.
func (f *Fetch) Fetches() int64 { return f.fetches }

// SetIOTap attributes this fetch's heap page reads and seeks to a per-query
// tap (nil taps nothing). Must be called before Open.
func (f *Fetch) SetIOTap(t *storage.Tap) { f.tap = t }

// SetAbort installs the abort hook the fetch loop polls.
func (f *Fetch) SetAbort(poll func() error) { f.guard = iter.NewGuard(poll) }

// Open opens the child and binds the (tapped) heap file.
func (f *Fetch) Open() error {
	f.queue, f.queuePos, f.fetches = nil, 0, 0
	f.file = f.table.File().Tapped(f.tap)
	return f.child.Open()
}

// Next fetches the heap row(s) for the next child tuple.
func (f *Fetch) Next() (types.Tuple, bool, error) {
	for {
		if err := f.guard.Check(); err != nil {
			return nil, false, err
		}
		if f.queuePos < len(f.queue) {
			t := f.queue[f.queuePos]
			f.queuePos++
			return t, true, nil
		}
		f.queue, f.queuePos = f.queue[:0], 0

		ct, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		key := make(types.Tuple, len(f.keyOrds))
		for i, o := range f.keyOrds {
			key[i] = ct[o]
		}
		if err := f.lookup(key); err != nil {
			return nil, false, err
		}
	}
}

// lookup reads the heap page(s) holding key and queues every matching row.
func (f *Fetch) lookup(key types.Tuple) error {
	page := f.table.LookupPage(key)
	if page < 0 {
		return fmt.Errorf("exec: fetch on table %q without directory", f.table.Name)
	}
	f.fetches++
	file := f.file
	file.Seek() // random access positioning
	for ; page < file.NumPages(); page++ {
		data, err := file.ReadPage(page)
		if err != nil {
			return err
		}
		n := int(binary.BigEndian.Uint16(data[:2]))
		pos := 2
		past := false
		for i := 0; i < n; i++ {
			row, sz, err := types.DecodeTuple(data[pos:])
			if err != nil {
				return err
			}
			pos += sz
			c := f.compareRowToKey(row, key)
			if c == 0 {
				f.queue = append(f.queue, row)
			} else if c > 0 {
				past = true
				break
			}
		}
		// The heap is sorted on the key: once any row exceeds it, no later
		// page can match. Otherwise duplicates may continue on the next
		// page.
		if past {
			break
		}
	}
	return nil
}

func (f *Fetch) compareRowToKey(row, key types.Tuple) int {
	for i, ord := range f.ks.Ordinals {
		if c := row[ord].Compare(key[i]); c != 0 {
			return c
		}
	}
	return 0
}

// Close closes the child.
func (f *Fetch) Close() error { return f.child.Close() }
