package exec

import (
	"pyro/internal/types"
)

// ChunkOperator is the batch half of the executor's hybrid protocol.
// Operators that can deliver their output a chunk at a time implement it
// alongside the row Operator interface; everything else stays row-only and
// is reached through newRowAdapter. The row API is never removed — with a
// batch size of 1 the executor uses the legacy row path exclusively, so
// that configuration reproduces pre-vectorization behaviour exactly.
//
// The protocol's I/O-identity contract: a NextChunk call may perform only
// the work the row path's next Next call would perform, plus free work —
// decoding rows co-resident on a page that call already read, or copying
// rows already materialized in memory. Chunks therefore never cross a page
// boundary, and a consumer that stops mid-stream has charged exactly the
// row path's I/O and sort counters.
type ChunkOperator interface {
	Operator

	// CanChunk reports whether the batch path is available for this
	// operator instance. Interior operators cascade: a Filter can chunk
	// iff its child can.
	CanChunk() bool

	// NextChunk overwrites c with the operator's next batch, possibly
	// with a selection vector installed. Rows() == 0 means end of
	// stream. The chunk's contents are valid only until the next call
	// that refills it.
	NextChunk(c *types.Chunk) error
}

// ChunkCapable reports whether op offers the batch path.
func ChunkCapable(op Operator) bool {
	co, ok := op.(ChunkOperator)
	return ok && co.CanChunk()
}

// rowAdapter bridges a chunk-capable subtree to a row-at-a-time consumer:
// it drains chunks from src and serves them one owned tuple per Next.
// Consumers that retain rows (aggregates, join builds) need ownership
// anyway, so the per-row copy here costs what the row path's DecodeTuple
// already paid. The adapter is plumbing, not a plan node — consumers keep
// the real child for Children(), so Walk and CollectSorts see the
// unchanged tree.
type rowAdapter struct {
	src   ChunkOperator
	batch int
	chunk *types.Chunk
	pos   int
	done  bool
}

// newRowAdapter wraps op when batching is on and op supports it; it
// returns nil otherwise, in which case the consumer keeps pulling rows
// from op directly.
func newRowAdapter(op Operator, batch int) *rowAdapter {
	if batch <= 1 || !ChunkCapable(op) {
		return nil
	}
	return &rowAdapter{src: op.(ChunkOperator), batch: batch}
}

// Open opens the underlying operator.
func (a *rowAdapter) Open() error {
	a.pos = 0
	a.done = false
	a.release()
	return a.src.Open()
}

// Next serves the next row of the current chunk, refilling at chunk
// boundaries.
func (a *rowAdapter) Next() (types.Tuple, bool, error) {
	if a.done {
		return nil, false, nil
	}
	for a.chunk == nil || a.pos >= a.chunk.Rows() {
		if a.chunk == nil {
			a.chunk = types.GetChunk(a.src.Schema().Len(), a.batch)
		}
		if err := a.src.NextChunk(a.chunk); err != nil {
			return nil, false, err
		}
		a.pos = 0
		if a.chunk.Rows() == 0 {
			a.done = true
			a.release()
			return nil, false, nil
		}
	}
	t := a.chunk.OwnedRow(a.pos)
	a.pos++
	return t, true, nil
}

// Close returns the buffered chunk to the pool and closes the operator.
func (a *rowAdapter) Close() error {
	a.release()
	return a.src.Close()
}

func (a *rowAdapter) release() {
	if a.chunk != nil {
		types.PutChunk(a.chunk)
		a.chunk = nil
	}
}
