package exec

import (
	"fmt"
	"sort"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/expr"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/xsort"
)

// sliceOp adapts literal rows to the Operator interface.
func sliceOp(t *testing.T, schema *types.Schema, rows []types.Tuple) Operator {
	t.Helper()
	v, err := NewValues(schema, rows)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

var abSchema = types.NewSchema(
	types.Column{Name: "a", Kind: types.KindInt},
	types.Column{Name: "b", Kind: types.KindInt},
)

func ab(a, b int64) types.Tuple { return types.NewTuple(types.NewInt(a), types.NewInt(b)) }

func intsOf(t *testing.T, rows []types.Tuple, col int) []int64 {
	t.Helper()
	out := make([]int64, len(rows))
	for i, r := range rows {
		if r[col].IsNull() {
			out[i] = -999
		} else {
			out[i] = r[col].Int()
		}
	}
	return out
}

func eqInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newTestCatalog(t *testing.T, pageSize int) *catalog.Catalog {
	t.Helper()
	d := storage.NewDisk(pageSize)
	t.Cleanup(func() { storage.AssertNoLeaks(t, d) })
	return catalog.New(d)
}

func TestTableScanAndIndexScan(t *testing.T) {
	c := newTestCatalog(t, 512)
	rows := make([]types.Tuple, 100)
	for i := range rows {
		rows[i] = ab(int64(100-i), int64(i%7))
	}
	tb, err := c.CreateTable("t", abSchema, sortord.New("a"), rows)
	if err != nil {
		t.Fatal(err)
	}
	scan := NewTableScan(tb)
	got, err := Drain(scan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 || scan.Rows() != 100 {
		t.Fatalf("scan rows = %d / %d", len(got), scan.Rows())
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][0].Int() > got[i][0].Int() {
			t.Fatal("table scan should deliver clustering order")
		}
	}
	if c.Disk().Stats().PageReads == 0 {
		t.Fatal("scan must charge reads")
	}

	ix, err := c.CreateIndex("t_b", tb, sortord.New("b"), []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	iscan := NewIndexScan(ix)
	igot, err := Drain(iscan)
	if err != nil {
		t.Fatal(err)
	}
	if len(igot) != 100 || iscan.Rows() != 100 {
		t.Fatal("index scan row count")
	}
	for i := 1; i < len(igot); i++ {
		if igot[i-1][0].Int() > igot[i][0].Int() {
			t.Fatal("index scan should deliver key order")
		}
	}
	if got := iscan.Schema().Names(); len(got) != 2 || got[0] != "b" {
		t.Fatalf("index scan schema = %v", got)
	}
}

func TestValuesValidation(t *testing.T) {
	if _, err := NewValues(abSchema, []types.Tuple{types.NewTuple(types.NewInt(1))}); err == nil {
		t.Fatal("arity mismatch should error")
	}
}

func TestFilter(t *testing.T) {
	rows := []types.Tuple{ab(1, 10), ab(2, 20), ab(3, 30), ab(4, 40)}
	f, err := NewFilter(sliceOp(t, abSchema, rows), expr.Compare(expr.GT, expr.Col("a"), expr.IntLit(2)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(intsOf(t, got, 0), []int64{3, 4}) {
		t.Fatalf("filter output = %v", got)
	}
	if f.Selectivity() != 0.5 {
		t.Fatalf("selectivity = %f", f.Selectivity())
	}
	if f.Predicate() == "" {
		t.Fatal("predicate text missing")
	}
	if _, err := NewFilter(sliceOp(t, abSchema, nil), expr.Col("zz")); err == nil {
		t.Fatal("bad predicate should error")
	}
}

func TestProject(t *testing.T) {
	rows := []types.Tuple{ab(2, 3)}
	p, err := NewProject(sliceOp(t, abSchema, rows), []ProjCol{
		{Name: "sum", Expr: expr.Arith{Op: expr.Add, L: expr.Col("a"), R: expr.Col("b")}},
		{Name: "a", Expr: expr.Col("a")},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(p)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0].Int() != 5 || got[0][1].Int() != 2 {
		t.Fatalf("project = %v", got[0])
	}
	if p.Schema().Col(0).Kind != types.KindInt {
		t.Fatal("inferred kind for int+int should be int")
	}
	p2, err := NewProjectNames(sliceOp(t, abSchema, rows), []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := Drain(p2)
	if got2[0][0].Int() != 3 || p2.Schema().Len() != 1 {
		t.Fatal("NewProjectNames broken")
	}
	if _, err := NewProject(sliceOp(t, abSchema, nil), []ProjCol{{Name: "x", Expr: expr.Col("zz")}}); err == nil {
		t.Fatal("bad projection should error")
	}
}

func TestSortOperators(t *testing.T) {
	d := storage.NewDisk(512)
	cfg := xsort.Config{Disk: d, MemoryBlocks: 16}
	rows := []types.Tuple{ab(2, 9), ab(1, 5), ab(2, 1), ab(1, 7)}
	s, err := NewSortSRS(sliceOp(t, abSchema, rows), sortord.New("a", "b"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(intsOf(t, got, 1), []int64{5, 7, 1, 9}) {
		t.Fatalf("SRS sort output = %v", got)
	}
	if s.IsPartial() {
		t.Fatal("SRS enforcer is not partial")
	}

	// Partial sort: input already ordered on a.
	sortedRows := []types.Tuple{ab(1, 5), ab(1, 2), ab(2, 9), ab(2, 3)}
	m, err := NewSortMRS(sliceOp(t, abSchema, sortedRows), sortord.New("a", "b"), sortord.New("a"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(intsOf(t, got2, 1), []int64{2, 5, 3, 9}) {
		t.Fatalf("MRS sort output = %v", got2)
	}
	if !m.IsPartial() {
		t.Fatal("MRS enforcer with a prefix should report partial")
	}
	if m.SortStats().Segments != 2 {
		t.Fatalf("segments = %d", m.SortStats().Segments)
	}
	if !m.Target().Equal(sortord.New("a", "b")) || !m.Given().Equal(sortord.New("a")) {
		t.Fatal("order accessors broken")
	}
}

func TestMergeJoinInner(t *testing.T) {
	left := []types.Tuple{ab(1, 10), ab(2, 20), ab(2, 21), ab(4, 40)}
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	right := []types.Tuple{ab(2, 200), ab(2, 201), ab(3, 300), ab(4, 400)}
	mj, err := NewMergeJoin(
		sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		sortord.New("a"), sortord.New("c"), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(mj)
	if err != nil {
		t.Fatal(err)
	}
	// a=2 (2 left) x c=2 (2 right) = 4 rows, plus a=4 x c=4 = 1 row.
	if len(got) != 5 {
		t.Fatalf("inner join rows = %d, want 5", len(got))
	}
	if mj.Schema().Len() != 4 {
		t.Fatal("join schema should concat")
	}
	if mj.Comparisons() == 0 {
		t.Fatal("comparisons should be counted")
	}
	if !mj.LeftKey().Equal(sortord.New("a")) {
		t.Fatal("LeftKey accessor")
	}
}

func TestMergeJoinFullOuter(t *testing.T) {
	leftSchema := abSchema
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	left := []types.Tuple{ab(1, 10), ab(3, 30)}
	right := []types.Tuple{ab(2, 200), ab(3, 300)}
	mj, err := NewMergeJoin(
		sliceOp(t, leftSchema, left), sliceOp(t, rightSchema, right),
		sortord.New("a"), sortord.New("c"), FullOuterJoin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(mj)
	if err != nil {
		t.Fatal(err)
	}
	// left {1,3}, right {2,3}: 1 match + 1 unmatched left + 1 unmatched
	// right = 3 rows. Padded rows have coalesced join keys (USING-style):
	// classify by the non-key columns b (index 1) and d (index 3).
	if len(got) != 3 {
		t.Fatalf("full outer rows = %d, want 3: %v", len(got), got)
	}
	var sawLeftPad, sawRightPad, sawMatch bool
	for _, r := range got {
		switch {
		case r[1].IsNull():
			sawRightPad = true // right tuple, left side padded
			if r[0].Int() != 2 || r[2].Int() != 2 {
				t.Fatalf("right-unmatched row should have coalesced keys: %v", r)
			}
		case r[3].IsNull():
			sawLeftPad = true
			if r[0].Int() != 1 || r[2].Int() != 1 {
				t.Fatalf("left-unmatched row should have coalesced keys: %v", r)
			}
		default:
			sawMatch = true
			if r[0].Int() != 3 || r[2].Int() != 3 {
				t.Fatalf("wrong match row: %v", r)
			}
		}
	}
	if !sawLeftPad || !sawRightPad || !sawMatch {
		t.Fatalf("missing row classes: %v", got)
	}
	// The coalesced output is sorted on the key permutation — the property
	// §4 relies on for order propagation.
	for i := 1; i < len(got); i++ {
		if got[i-1][0].Compare(got[i][0]) > 0 {
			t.Fatalf("full outer output not sorted on key: %v", got)
		}
	}
}

func TestMergeJoinLeftOuter(t *testing.T) {
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	left := []types.Tuple{ab(1, 10), ab(2, 20)}
	right := []types.Tuple{ab(2, 200)}
	mj, err := NewMergeJoin(
		sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		sortord.New("a"), sortord.New("c"), LeftOuterJoin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(mj)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("left outer rows = %d, want 2", len(got))
	}
	if !got[0][2].IsNull() {
		t.Fatalf("first row should be padded: %v", got[0])
	}
}

func TestMergeJoinNullKeysNeverMatch(t *testing.T) {
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	left := []types.Tuple{types.NewTuple(types.Null, types.NewInt(1)), ab(2, 20)}
	right := []types.Tuple{types.NewTuple(types.Null, types.NewInt(2)), ab(2, 200)}
	mj, err := NewMergeJoin(
		sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		sortord.New("a"), sortord.New("c"), FullOuterJoin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(mj)
	if err != nil {
		t.Fatal(err)
	}
	// NULLs never match: 1 match (a=2) + 2 padded rows.
	if len(got) != 3 {
		t.Fatalf("rows = %d, want 3: %v", len(got), got)
	}
}

func TestMergeJoinValidation(t *testing.T) {
	if _, err := NewMergeJoin(sliceOp(t, abSchema, nil), sliceOp(t, abSchema, nil),
		sortord.New("a", "b"), sortord.New("a"), InnerJoin); err == nil {
		t.Fatal("key arity mismatch should error")
	}
	if _, err := NewMergeJoin(sliceOp(t, abSchema, nil), sliceOp(t, abSchema, nil),
		sortord.Empty, sortord.Empty, InnerJoin); err == nil {
		t.Fatal("empty key should error")
	}
	// Note: joining a schema with itself duplicates names; engine panics on
	// concat of duplicate schemas, so plans must rename — validated here.
	defer func() { recover() }()
	rightSchema := types.NewSchema(types.Column{Name: "zz", Kind: types.KindInt})
	if _, err := NewMergeJoin(sliceOp(t, abSchema, nil), sliceOp(t, rightSchema, nil),
		sortord.New("a"), sortord.New("nope"), InnerJoin); err == nil {
		t.Fatal("unknown key should error")
	}
}

func TestHashJoin(t *testing.T) {
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	left := []types.Tuple{ab(1, 10), ab(2, 20), ab(3, 30)}
	right := []types.Tuple{ab(2, 200), ab(2, 201), ab(9, 900)}
	hj, err := NewHashJoin(
		sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		[]string{"a"}, []string{"c"}, InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(hj)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || hj.BuildRows() != 3 {
		t.Fatalf("hash join rows = %d build = %d", len(got), hj.BuildRows())
	}
	// Probe order preserved.
	if got[0][1].Int() != 20 || got[0][3].Int() != 200 || got[1][3].Int() != 201 {
		t.Fatalf("hash join output = %v", got)
	}

	// Left outer.
	hj2, _ := NewHashJoin(
		sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		[]string{"a"}, []string{"c"}, LeftOuterJoin)
	got2, err := Drain(hj2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 4 {
		t.Fatalf("left outer hash join rows = %d, want 4", len(got2))
	}
}

func TestHashJoinNullsAndValidation(t *testing.T) {
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	left := []types.Tuple{types.NewTuple(types.Null, types.NewInt(1))}
	right := []types.Tuple{types.NewTuple(types.Null, types.NewInt(2))}
	hj, _ := NewHashJoin(sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		[]string{"a"}, []string{"c"}, InnerJoin)
	got, err := Drain(hj)
	if err != nil || len(got) != 0 {
		t.Fatalf("NULL keys must not match: %v %v", got, err)
	}
	if _, err := NewHashJoin(sliceOp(t, abSchema, nil), sliceOp(t, rightSchema, nil),
		[]string{"a"}, []string{"c"}, FullOuterJoin); err == nil {
		t.Fatal("full outer hash join should error")
	}
	if _, err := NewHashJoin(sliceOp(t, abSchema, nil), sliceOp(t, rightSchema, nil),
		[]string{"a", "b"}, []string{"c"}, InnerJoin); err == nil {
		t.Fatal("key mismatch should error")
	}
}

func TestNLJoin(t *testing.T) {
	d := storage.NewDisk(256)
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	var left, right []types.Tuple
	for i := 0; i < 30; i++ {
		left = append(left, ab(int64(i), int64(i*10)))
	}
	for i := 0; i < 20; i++ {
		right = append(right, ab(int64(i%10), int64(i)))
	}
	nl, err := NewNLJoin(
		sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		expr.Eq(expr.Col("a"), expr.Col("c")), InnerJoin, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(nl)
	if err != nil {
		t.Fatal(err)
	}
	// Every right row (c in 0..9, twice) matches exactly one left row.
	if len(got) != 20 {
		t.Fatalf("NL join rows = %d, want 20", len(got))
	}
	if d.Stats().RunTotal() == 0 {
		t.Fatal("NL join must charge spool I/O")
	}
	// Cross join (nil predicate).
	nl2, _ := NewNLJoin(sliceOp(t, abSchema, left[:3]), sliceOp(t, rightSchema, right[:4]),
		nil, InnerJoin, d, 4)
	got2, err := Drain(nl2)
	if err != nil || len(got2) != 12 {
		t.Fatalf("cross join = %d rows, err %v", len(got2), err)
	}
}

func TestNLJoinLeftOuter(t *testing.T) {
	d := storage.NewDisk(256)
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	left := []types.Tuple{ab(1, 10), ab(5, 50)}
	right := []types.Tuple{ab(1, 100)}
	nl, err := NewNLJoin(sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		expr.Eq(expr.Col("a"), expr.Col("c")), LeftOuterJoin, d, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("left outer NL rows = %d, want 2: %v", len(got), got)
	}
	padded := 0
	for _, r := range got {
		if r[2].IsNull() {
			padded++
			if r[0].Int() != 5 {
				t.Fatalf("wrong padded row: %v", r)
			}
		}
	}
	if padded != 1 {
		t.Fatalf("padded rows = %d, want 1", padded)
	}
	if _, err := NewNLJoin(sliceOp(t, abSchema, nil), sliceOp(t, rightSchema, nil),
		nil, FullOuterJoin, d, 4); err == nil {
		t.Fatal("full outer NL should error")
	}
	if _, err := NewNLJoin(sliceOp(t, abSchema, nil), sliceOp(t, rightSchema, nil),
		nil, InnerJoin, nil, 4); err == nil {
		t.Fatal("nil disk should error")
	}
}

func TestGroupAggregate(t *testing.T) {
	rows := []types.Tuple{ab(1, 10), ab(1, 20), ab(2, 5), ab(3, 1), ab(3, 3)}
	ga, err := NewGroupAggregate(sliceOp(t, abSchema, rows), []string{"a"}, []AggSpec{
		{Name: "cnt", Func: AggCount, Arg: nil},
		{Name: "total", Func: AggSum, Arg: expr.Col("b")},
		{Name: "lo", Func: AggMin, Arg: expr.Col("b")},
		{Name: "hi", Func: AggMax, Arg: expr.Col("b")},
		{Name: "mean", Func: AggAvg, Arg: expr.Col("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(ga)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("groups = %d, want 3", len(got))
	}
	// group a=1: cnt 2, sum 30, min 10, max 20, avg 15
	r := got[0]
	if r[0].Int() != 1 || r[1].Int() != 2 || r[2].Int() != 30 || r[3].Int() != 10 || r[4].Int() != 20 || r[5].Float() != 15 {
		t.Fatalf("group 1 = %v", r)
	}
	if got[2][2].Int() != 4 {
		t.Fatalf("group 3 sum = %v", got[2])
	}
	names := ga.Schema().Names()
	if names[0] != "a" || names[1] != "cnt" {
		t.Fatalf("agg schema = %v", names)
	}
	if len(ga.GroupCols()) != 1 {
		t.Fatal("GroupCols accessor")
	}
}

func TestGroupAggregateEmptyAndNulls(t *testing.T) {
	ga, _ := NewGroupAggregate(sliceOp(t, abSchema, nil), []string{"a"}, []AggSpec{
		{Name: "cnt", Func: AggCount},
	})
	got, err := Drain(ga)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v %v", got, err)
	}
	// NULL arguments are ignored by COUNT(col) and SUM.
	rows := []types.Tuple{
		types.NewTuple(types.NewInt(1), types.Null),
		ab(1, 5),
	}
	ga2, _ := NewGroupAggregate(sliceOp(t, abSchema, rows), []string{"a"}, []AggSpec{
		{Name: "cnt", Func: AggCount, Arg: expr.Col("b")},
		{Name: "s", Func: AggSum, Arg: expr.Col("b")},
	})
	got2, err := Drain(ga2)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0][1].Int() != 1 || got2[0][2].Int() != 5 {
		t.Fatalf("null handling = %v", got2[0])
	}
}

func TestAggValidation(t *testing.T) {
	if _, err := NewGroupAggregate(sliceOp(t, abSchema, nil), []string{"zz"}, nil); err == nil {
		t.Fatal("bad group col should error")
	}
	if _, err := NewGroupAggregate(sliceOp(t, abSchema, nil), []string{"a"},
		[]AggSpec{{Name: "x", Func: AggSum}}); err == nil {
		t.Fatal("sum without arg should error")
	}
	if _, err := NewHashAggregate(sliceOp(t, abSchema, nil), []string{"a"},
		[]AggSpec{{Name: "x", Func: AggMin}}); err == nil {
		t.Fatal("min without arg should error")
	}
}

func TestHashAggregateMatchesGroupAggregate(t *testing.T) {
	var rows []types.Tuple
	for i := 0; i < 200; i++ {
		rows = append(rows, ab(int64(i%13), int64(i)))
	}
	sorted := append([]types.Tuple(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i][0].Int() < sorted[j][0].Int() })
	aggs := []AggSpec{
		{Name: "cnt", Func: AggCount},
		{Name: "s", Func: AggSum, Arg: expr.Col("b")},
	}
	ga, _ := NewGroupAggregate(sliceOp(t, abSchema, sorted), []string{"a"}, aggs)
	ha, _ := NewHashAggregate(sliceOp(t, abSchema, rows), []string{"a"}, aggs)
	g1, err := Drain(ga)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Drain(ha)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != 13 || len(g2) != 13 {
		t.Fatalf("group counts: %d vs %d", len(g1), len(g2))
	}
	m1 := map[int64][2]int64{}
	for _, r := range g1 {
		m1[r[0].Int()] = [2]int64{r[1].Int(), r[2].Int()}
	}
	for _, r := range g2 {
		want := m1[r[0].Int()]
		if r[1].Int() != want[0] || r[2].Int() != want[1] {
			t.Fatalf("hash agg mismatch for %v: %v vs %v", r[0], r, want)
		}
	}
}

func TestMergeUnion(t *testing.T) {
	left := []types.Tuple{ab(1, 1), ab(3, 3), ab(5, 5)}
	right := []types.Tuple{ab(2, 2), ab(3, 3), ab(6, 6)}
	u, err := NewMergeUnion(sliceOp(t, abSchema, left), sliceOp(t, abSchema, right),
		sortord.New("a"), true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(u)
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(intsOf(t, got, 0), []int64{1, 2, 3, 5, 6}) {
		t.Fatalf("union dedup = %v", intsOf(t, got, 0))
	}
	u2, _ := NewMergeUnion(sliceOp(t, abSchema, left), sliceOp(t, abSchema, right),
		sortord.New("a"), false)
	got2, err := Drain(u2)
	if err != nil {
		t.Fatal(err)
	}
	if !eqInts(intsOf(t, got2, 0), []int64{1, 2, 3, 3, 5, 6}) {
		t.Fatalf("union all = %v", intsOf(t, got2, 0))
	}
	if !u.Order().Equal(sortord.New("a")) {
		t.Fatal("Order accessor")
	}
}

func TestMergeUnionValidation(t *testing.T) {
	other := types.NewSchema(types.Column{Name: "x", Kind: types.KindString})
	if _, err := NewMergeUnion(sliceOp(t, abSchema, nil), sliceOp(t, other, nil),
		sortord.New("a"), true); err == nil {
		t.Fatal("arity mismatch should error")
	}
	otherKinds := types.NewSchema(
		types.Column{Name: "x", Kind: types.KindString},
		types.Column{Name: "y", Kind: types.KindString},
	)
	if _, err := NewMergeUnion(sliceOp(t, abSchema, nil), sliceOp(t, otherKinds, nil),
		sortord.New("a"), true); err == nil {
		t.Fatal("kind mismatch should error")
	}
	if _, err := NewMergeUnion(sliceOp(t, abSchema, nil), sliceOp(t, abSchema, nil),
		sortord.New("zz"), true); err == nil {
		t.Fatal("bad order should error")
	}
}

func TestDedupAndLimit(t *testing.T) {
	rows := []types.Tuple{ab(1, 1), ab(1, 1), ab(2, 2), ab(2, 2), ab(2, 3)}
	d := NewDedup(sliceOp(t, abSchema, rows))
	got, err := Drain(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("dedup rows = %d, want 3", len(got))
	}
	l, err := NewLimit(sliceOp(t, abSchema, rows), 2)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Drain(l)
	if err != nil || len(got2) != 2 {
		t.Fatalf("limit rows = %d", len(got2))
	}
	if _, err := NewLimit(sliceOp(t, abSchema, nil), -1); err == nil {
		t.Fatal("negative limit should error")
	}
	l3, _ := NewLimit(sliceOp(t, abSchema, rows), 100)
	got3, _ := Drain(l3)
	if len(got3) != 5 {
		t.Fatal("limit above input size returns all")
	}
}

// closeTracker wraps an operator and records when Close is called and how
// many tuples were pulled.
type closeTracker struct {
	Operator
	closes int
	pulls  int
}

func (c *closeTracker) Next() (types.Tuple, bool, error) {
	t, ok, err := c.Operator.Next()
	if ok {
		c.pulls++
	}
	return t, ok, err
}

func (c *closeTracker) Close() error {
	c.closes++
	return c.Operator.Close()
}

// TestLimitClosesChildEagerly pins the pushed-down Top-K contract: the
// Limit operator closes its input the moment the K-th tuple is produced —
// not when the consumer finally calls Close — so the subtree abandons its
// remaining work even under a consumer that drains to exhaustion.
func TestLimitClosesChildEagerly(t *testing.T) {
	rows := []types.Tuple{ab(1, 1), ab(2, 2), ab(3, 3), ab(4, 4), ab(5, 5)}
	child := &closeTracker{Operator: sliceOp(t, abSchema, rows)}
	l, err := NewLimit(child, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := l.Next(); !ok {
		t.Fatal("first row missing")
	}
	if child.closes != 0 {
		t.Fatal("child closed before the limit was reached")
	}
	// The K-th row closes the child as it is handed out.
	if _, ok, _ := l.Next(); !ok {
		t.Fatal("second row missing")
	}
	if child.closes != 1 {
		t.Fatalf("child closes after K-th row = %d, want 1", child.closes)
	}
	if child.pulls != 2 {
		t.Fatalf("child pulls = %d, want exactly K", child.pulls)
	}
	// Exhaustion and Close stay clean and never double-close.
	if _, ok, err := l.Next(); ok || err != nil {
		t.Fatalf("Next past limit: ok=%v err=%v", ok, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if child.closes != 1 {
		t.Fatalf("child closed %d times, want once", child.closes)
	}

	// A child shorter than K is exhausted, not eagerly closed — the normal
	// consumer-side Close applies.
	short := &closeTracker{Operator: sliceOp(t, abSchema, rows[:1])}
	l2, err := NewLimit(short, 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(l2)
	if err != nil || len(got) != 1 {
		t.Fatalf("short child drain: %d rows, err %v", len(got), err)
	}
	if short.closes != 1 {
		t.Fatalf("short child closes = %d, want 1 (from Drain's Close)", short.closes)
	}
}

func TestPipelineComposition(t *testing.T) {
	// scan -> filter -> sort(MRS) -> group aggregate -> limit, end to end.
	c := newTestCatalog(t, 512)
	var rows []types.Tuple
	for i := 0; i < 500; i++ {
		rows = append(rows, ab(int64(i%20), int64(i)))
	}
	tb, err := c.CreateTable("t", abSchema, sortord.New("a"), rows)
	if err != nil {
		t.Fatal(err)
	}
	scan := NewTableScan(tb)
	flt, err := NewFilter(scan, expr.Compare(expr.LT, expr.Col("b"), expr.IntLit(400)))
	if err != nil {
		t.Fatal(err)
	}
	srt, err := NewSortMRS(flt, sortord.New("a", "b"), sortord.New("a"),
		xsort.Config{Disk: c.Disk(), MemoryBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := NewGroupAggregate(srt, []string{"a"}, []AggSpec{
		{Name: "cnt", Func: AggCount},
		{Name: "minb", Func: AggMin, Arg: expr.Col("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	lim, err := NewLimit(agg, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("pipeline rows = %d", len(got))
	}
	// Group a=0 has b values 0,20,...,380 => 20 rows, min 0.
	if got[0][0].Int() != 0 || got[0][1].Int() != 20 || got[0][2].Int() != 0 {
		t.Fatalf("pipeline group 0 = %v", got[0])
	}
	// MRS below the aggregate must not have spilled: segments are tiny.
	if srt.SortStats().RunsGenerated != 0 {
		t.Fatal("tiny segments should not spill")
	}
}

func TestInferKind(t *testing.T) {
	s := abSchema
	cases := []struct {
		e    expr.Expr
		want types.Kind
	}{
		{expr.Col("a"), types.KindInt},
		{expr.Col("zz"), types.KindNull},
		{expr.IntLit(1), types.KindInt},
		{expr.FloatLit(1), types.KindFloat},
		{expr.StrLit("x"), types.KindString},
		{expr.Eq(expr.Col("a"), expr.Col("b")), types.KindBool},
		{expr.AndOf(expr.Col("a"), expr.Col("b")), types.KindBool},
		{expr.Not{Child: expr.Col("a")}, types.KindBool},
		{expr.Arith{Op: expr.Add, L: expr.Col("a"), R: expr.Col("b")}, types.KindInt},
		{expr.Arith{Op: expr.Add, L: expr.Col("a"), R: expr.FloatLit(1)}, types.KindFloat},
	}
	for _, c := range cases {
		if got := inferKind(c.e, s); got != c.want {
			t.Errorf("inferKind(%v) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestValidateHelper(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Fatal("nil operator should fail validation")
	}
	if err := Validate(sliceOp(t, abSchema, nil)); err != nil {
		t.Fatal(err)
	}
}

func TestMergeJoinPropagatesOrder(t *testing.T) {
	// The join output must be sorted on the left key — the property §4
	// exploits ("merge-join produces the same order on its output").
	var left, right []types.Tuple
	for i := 0; i < 50; i++ {
		left = append(left, ab(int64(i/2), int64(i)))
		right = append(right, ab(int64(i/2), int64(i+1000)))
	}
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	mj, err := NewMergeJoin(sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		sortord.New("a"), sortord.New("c"), InnerJoin)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(mj)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 { // 25 keys x 2x2
		t.Fatalf("rows = %d, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][0].Int() > got[i][0].Int() {
			t.Fatal("merge join output must preserve left key order")
		}
	}
}

func TestLargeMergeJoinAgainstHashJoin(t *testing.T) {
	// Cross-validate the two join algorithms on a bigger input.
	var left, right []types.Tuple
	for i := 0; i < 3000; i++ {
		left = append(left, ab(int64(i%100), int64(i)))
	}
	for i := 0; i < 1000; i++ {
		right = append(right, ab(int64(i%50), int64(i)))
	}
	sort.SliceStable(left, func(i, j int) bool { return left[i][0].Int() < left[j][0].Int() })
	sort.SliceStable(right, func(i, j int) bool { return right[i][0].Int() < right[j][0].Int() })
	rightSchema := types.NewSchema(
		types.Column{Name: "c", Kind: types.KindInt},
		types.Column{Name: "d", Kind: types.KindInt},
	)
	mj, _ := NewMergeJoin(sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		sortord.New("a"), sortord.New("c"), InnerJoin)
	hj, _ := NewHashJoin(sliceOp(t, abSchema, left), sliceOp(t, rightSchema, right),
		[]string{"a"}, []string{"c"}, InnerJoin)
	g1, err := Drain(mj)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Drain(hj)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != len(g2) {
		t.Fatalf("join cardinality disagreement: merge %d vs hash %d", len(g1), len(g2))
	}
	count := func(rows []types.Tuple) map[string]int {
		m := map[string]int{}
		var buf []byte
		for _, r := range rows {
			buf = r.Encode(buf[:0])
			m[string(buf)]++
		}
		return m
	}
	c1, c2 := count(g1), count(g2)
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatal("join outputs differ")
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if InnerJoin.String() != "inner" || FullOuterJoin.String() != "full outer" || LeftOuterJoin.String() != "left outer" {
		t.Fatal("JoinType strings")
	}
	for f, want := range map[AggFunc]string{
		AggCount: "count", AggSum: "sum", AggMin: "min", AggMax: "max", AggAvg: "avg",
	} {
		if f.String() != want {
			t.Fatalf("AggFunc %d string = %q", f, f.String())
		}
	}
	_ = fmt.Sprintf("%v", JoinType(99))
}
