package exec

import (
	"fmt"

	"pyro/internal/iter"
	"pyro/internal/types"
)

// HashJoin is an in-memory hash join: the right (build) input is loaded into
// a hash table on Open, then the left (probe) input streams through. It
// preserves the probe side's order on output and needs no sorted inputs —
// the competitor that sort-based plans must beat in the paper's experiments
// (e.g. SYS1's default plan for Query 3).
type HashJoin struct {
	left, right Operator
	leftKeys    []string
	rightKeys   []string
	leftOrds    []int
	rightOrds   []int
	joinType    JoinType // InnerJoin or LeftOuterJoin
	schema      *types.Schema

	table      map[string][]types.Tuple
	buildRows  int64
	outQueue   []types.Tuple
	outPos     int
	rightWidth int
	keyBuf     []byte

	// buildIn is the build input as pulled: the right child itself, or a
	// rowAdapter over it when batching is on (build tuples are retained in
	// the table, so they must be owned either way).
	buildIn iter.Iterator

	guard iter.Guard // strided abort poll for the build and probe loops
}

// NewHashJoin builds a hash join; keys are positional pairs as in merge
// join. FullOuterJoin is not supported (mirroring SYS2 in the paper, which
// implements full outer join as a union of two left outer joins).
func NewHashJoin(left, right Operator, leftKeys, rightKeys []string, jt JoinType) (*HashJoin, error) {
	if jt == FullOuterJoin {
		return nil, fmt.Errorf("exec: hash join does not support full outer join")
	}
	if len(leftKeys) != len(rightKeys) || len(leftKeys) == 0 {
		return nil, fmt.Errorf("exec: hash join key mismatch: %v vs %v", leftKeys, rightKeys)
	}
	lo := make([]int, len(leftKeys))
	ro := make([]int, len(rightKeys))
	for i := range leftKeys {
		j, ok := left.Schema().Ordinal(leftKeys[i])
		if !ok {
			return nil, fmt.Errorf("exec: left key %q not in %v", leftKeys[i], left.Schema().Names())
		}
		lo[i] = j
		j, ok = right.Schema().Ordinal(rightKeys[i])
		if !ok {
			return nil, fmt.Errorf("exec: right key %q not in %v", rightKeys[i], right.Schema().Names())
		}
		ro[i] = j
	}
	return &HashJoin{
		left: left, right: right,
		leftKeys: append([]string(nil), leftKeys...), rightKeys: append([]string(nil), rightKeys...),
		leftOrds: lo, rightOrds: ro,
		joinType:   jt,
		schema:     left.Schema().Concat(right.Schema()),
		rightWidth: right.Schema().Len(),
		buildIn:    right,
	}, nil
}

// SetExecBatch switches the build-side drain to the batch path (n rows per
// chunk) when the build input supports it. Must be called before Open;
// n <= 1 keeps the legacy row path.
func (h *HashJoin) SetExecBatch(n int) {
	if a := newRowAdapter(h.right, n); a != nil {
		h.buildIn = a
	}
}

// Schema returns the concatenated output schema.
func (h *HashJoin) Schema() *types.Schema { return h.schema }

// Children returns the probe and build inputs.
func (h *HashJoin) Children() []Operator { return []Operator{h.left, h.right} }

// Type returns the join type.
func (h *HashJoin) Type() JoinType { return h.joinType }

// BuildRows returns the number of build-side tuples hashed.
func (h *HashJoin) BuildRows() int64 { return h.buildRows }

// hashKey encodes the key columns; NULL keys return ok=false (never match).
func (h *HashJoin) hashKey(t types.Tuple, ords []int) (string, bool) {
	h.keyBuf = h.keyBuf[:0]
	for _, o := range ords {
		if t[o].IsNull() {
			return "", false
		}
		h.keyBuf = t[o : o+1].Encode(h.keyBuf)
	}
	return string(h.keyBuf), true
}

// SetAbort installs the abort hook the build and probe loops poll: the
// build drains the whole right input inside Open, and a probe phase with
// no matches drains the left inside one Next call.
func (h *HashJoin) SetAbort(poll func() error) { h.guard = iter.NewGuard(poll) }

// Open builds the hash table from the right input.
func (h *HashJoin) Open() error {
	if err := h.left.Open(); err != nil {
		return err
	}
	if err := h.buildIn.Open(); err != nil {
		return err
	}
	h.table = make(map[string][]types.Tuple)
	for {
		if err := h.guard.Check(); err != nil {
			return err
		}
		t, ok, err := h.buildIn.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		h.buildRows++
		k, valid := h.hashKey(t, h.rightOrds)
		if !valid {
			continue // NULL build keys can never match
		}
		h.table[k] = append(h.table[k], t)
	}
	return nil
}

// Next probes the next left tuple.
func (h *HashJoin) Next() (types.Tuple, bool, error) {
	for {
		if err := h.guard.Check(); err != nil {
			return nil, false, err
		}
		if h.outPos < len(h.outQueue) {
			t := h.outQueue[h.outPos]
			h.outPos++
			return t, true, nil
		}
		h.outQueue = h.outQueue[:0]
		h.outPos = 0

		lt, ok, err := h.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		k, valid := h.hashKey(lt, h.leftOrds)
		var matches []types.Tuple
		if valid {
			matches = h.table[k]
		}
		if len(matches) == 0 {
			if h.joinType == LeftOuterJoin {
				return lt.Concat(nullPad(h.rightWidth)), true, nil
			}
			continue
		}
		if len(matches) == 1 {
			return lt.Concat(matches[0]), true, nil
		}
		for _, rt := range matches {
			h.outQueue = append(h.outQueue, lt.Concat(rt))
		}
	}
}

// Close closes both inputs and drops the table. The build side is closed
// through buildIn so the adapter (when batching) can return its buffer.
func (h *HashJoin) Close() error {
	h.table = nil
	errL := h.left.Close()
	errR := h.buildIn.Close()
	if errL != nil {
		return errL
	}
	return errR
}
