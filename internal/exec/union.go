package exec

import (
	"fmt"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/types"
)

// MergeUnion merges two inputs sorted on the same order. With Dedup it
// implements UNION (duplicate-eliminating); without, it is a sorted UNION
// ALL that preserves the shared order. This is the "requirement of same
// sort order from multiple inputs" operator class from §1 of the paper.
type MergeUnion struct {
	left, right Operator
	order       sortord.Order
	ks          types.KeySpec
	dedup       bool
	schema      *types.Schema

	lt, rt       types.Tuple
	lDone, rDone bool
	lastOut      types.Tuple
	guard        iter.Guard // strided abort poll for the merge loop
}

// NewMergeUnion builds a merge union over inputs sorted on order. Schemas
// must have identical arity and kinds; the left schema names the output.
func NewMergeUnion(left, right Operator, order sortord.Order, dedup bool) (*MergeUnion, error) {
	ls, rs := left.Schema(), right.Schema()
	if ls.Len() != rs.Len() {
		return nil, fmt.Errorf("exec: union arity mismatch: %d vs %d", ls.Len(), rs.Len())
	}
	for i := 0; i < ls.Len(); i++ {
		if ls.Col(i).Kind != rs.Col(i).Kind {
			return nil, fmt.Errorf("exec: union column %d kind mismatch: %v vs %v",
				i, ls.Col(i).Kind, rs.Col(i).Kind)
		}
	}
	ks, err := types.MakeKeySpec(ls, order)
	if err != nil {
		return nil, err
	}
	return &MergeUnion{left: left, right: right, order: order.Clone(), ks: ks, dedup: dedup, schema: ls}, nil
}

// Schema returns the output schema (the left input's).
func (u *MergeUnion) Schema() *types.Schema { return u.schema }

// Children returns the two unioned inputs.
func (u *MergeUnion) Children() []Operator { return []Operator{u.left, u.right} }

// Order returns the shared input/output sort order.
func (u *MergeUnion) Order() sortord.Order { return u.order }

// Open opens both inputs and primes lookaheads.
func (u *MergeUnion) Open() error {
	if err := u.left.Open(); err != nil {
		return err
	}
	if err := u.right.Open(); err != nil {
		return err
	}
	var err error
	if u.lt, u.lDone, err = u.pull(u.left); err != nil {
		return err
	}
	u.rt, u.rDone, err = u.pull(u.right)
	return err
}

func (u *MergeUnion) pull(op Operator) (types.Tuple, bool, error) {
	t, ok, err := op.Next()
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, true, nil
	}
	return t, false, nil
}

// SetAbort installs the abort hook the merge loop polls: with dedup on,
// a long run of duplicates is consumed inside one Next call.
func (u *MergeUnion) SetAbort(poll func() error) { u.guard = iter.NewGuard(poll) }

// Next returns the next tuple in the shared order.
func (u *MergeUnion) Next() (types.Tuple, bool, error) {
	for {
		if err := u.guard.Check(); err != nil {
			return nil, false, err
		}
		var t types.Tuple
		switch {
		case u.lDone && u.rDone:
			return nil, false, nil
		case u.lDone:
			t = u.rt
			var err error
			if u.rt, u.rDone, err = u.pull(u.right); err != nil {
				return nil, false, err
			}
		case u.rDone:
			t = u.lt
			var err error
			if u.lt, u.lDone, err = u.pull(u.left); err != nil {
				return nil, false, err
			}
		default:
			if u.ks.Compare(u.lt, u.rt) <= 0 {
				t = u.lt
				var err error
				if u.lt, u.lDone, err = u.pull(u.left); err != nil {
					return nil, false, err
				}
			} else {
				t = u.rt
				var err error
				if u.rt, u.rDone, err = u.pull(u.right); err != nil {
					return nil, false, err
				}
			}
		}
		if u.dedup && u.lastOut != nil && tupleEqual(u.lastOut, t) {
			continue
		}
		u.lastOut = t
		return t, true, nil
	}
}

func tupleEqual(a, b types.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// Close closes both inputs.
func (u *MergeUnion) Close() error {
	errL := u.left.Close()
	errR := u.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// UnionAll concatenates two union-compatible inputs: all left tuples, then
// all right tuples. No order guarantee.
type UnionAll struct {
	left, right Operator
	onRight     bool
}

// NewUnionAll builds a bag union; schemas must be kind-compatible.
func NewUnionAll(left, right Operator) (*UnionAll, error) {
	ls, rs := left.Schema(), right.Schema()
	if ls.Len() != rs.Len() {
		return nil, fmt.Errorf("exec: union-all arity mismatch: %d vs %d", ls.Len(), rs.Len())
	}
	for i := 0; i < ls.Len(); i++ {
		if ls.Col(i).Kind != rs.Col(i).Kind {
			return nil, fmt.Errorf("exec: union-all column %d kind mismatch", i)
		}
	}
	return &UnionAll{left: left, right: right}, nil
}

// Schema returns the left input's schema.
func (u *UnionAll) Schema() *types.Schema { return u.left.Schema() }

// Children returns the two concatenated inputs.
func (u *UnionAll) Children() []Operator { return []Operator{u.left, u.right} }

// Open opens both inputs.
func (u *UnionAll) Open() error {
	u.onRight = false
	if err := u.left.Open(); err != nil {
		return err
	}
	return u.right.Open()
}

// Next drains the left input, then the right.
func (u *UnionAll) Next() (types.Tuple, bool, error) {
	if !u.onRight {
		t, ok, err := u.left.Next()
		if err != nil || ok {
			return t, ok, err
		}
		u.onRight = true
	}
	return u.right.Next()
}

// CanChunk reports whether the batch path is available (both inputs must
// offer it).
func (u *UnionAll) CanChunk() bool {
	return ChunkCapable(u.left) && ChunkCapable(u.right)
}

// NextChunk drains the left input's chunks, then the right's. Detecting
// left EOF and pulling the first right chunk happen in one call, just as
// the row path's Next falls through.
func (u *UnionAll) NextChunk(c *types.Chunk) error {
	if !u.onRight {
		if err := u.left.(ChunkOperator).NextChunk(c); err != nil {
			return err
		}
		if c.Rows() > 0 {
			return nil
		}
		u.onRight = true
	}
	return u.right.(ChunkOperator).NextChunk(c)
}

// Close closes both inputs.
func (u *UnionAll) Close() error {
	errL := u.left.Close()
	errR := u.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// Dedup eliminates adjacent duplicate tuples; over input sorted on all its
// columns this is SQL DISTINCT — the sort-based duplicate elimination the
// paper lists among operators with factorially many interesting orders.
type Dedup struct {
	child   Operator
	last    types.Tuple
	scratch types.Tuple // batch-path row view, reused across rows
	guard   iter.Guard  // strided abort poll for the duplicate-skip loops
}

// NewDedup builds a duplicate eliminator over (assumed) sorted input.
func NewDedup(child Operator) *Dedup { return &Dedup{child: child} }

// Schema returns the child schema.
func (d *Dedup) Schema() *types.Schema { return d.child.Schema() }

// Children returns the deduplicated input.
func (d *Dedup) Children() []Operator { return []Operator{d.child} }

// Open opens the child.
func (d *Dedup) Open() error {
	d.last = nil
	return d.child.Open()
}

// SetAbort installs the abort hook the duplicate-skip loops poll: a long
// run of duplicates is consumed inside one Next call.
func (d *Dedup) SetAbort(poll func() error) { d.guard = iter.NewGuard(poll) }

// Next returns the next distinct tuple.
func (d *Dedup) Next() (types.Tuple, bool, error) {
	for {
		if err := d.guard.Check(); err != nil {
			return nil, false, err
		}
		t, ok, err := d.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if d.last != nil && tupleEqual(d.last, t) {
			continue
		}
		d.last = t
		return t, true, nil
	}
}

// CanChunk reports whether the batch path is available (iff the child's is).
func (d *Dedup) CanChunk() bool { return ChunkCapable(d.child) }

// NextChunk marks the distinct rows of each child chunk in a selection
// vector, pulling further chunks while a batch yields no distinct row —
// the same pages the row path would read before its next distinct tuple.
func (d *Dedup) NextChunk(c *types.Chunk) error {
	child := d.child.(ChunkOperator)
	for {
		if err := d.guard.Check(); err != nil {
			return err
		}
		if err := child.NextChunk(c); err != nil {
			return err
		}
		live := c.Rows()
		if live == 0 {
			return nil
		}
		sel := c.SelScratch()
		for i := 0; i < live; i++ {
			d.scratch = c.CopyRow(d.scratch, i)
			if d.last != nil && tupleEqual(d.last, d.scratch) {
				continue
			}
			sel = append(sel, int32(c.RowIndex(i)))
			// Own the datums: the chunk is refilled underneath us.
			d.last = append(d.last[:0], d.scratch...)
		}
		if len(sel) > 0 {
			c.SetSel(sel)
			return nil
		}
	}
}

// Close closes the child.
func (d *Dedup) Close() error { return d.child.Close() }

// Limit passes through the first K tuples (LIMIT / the paper's Top-K
// discussion: with MRS below it, the first results arrive without sorting
// the whole input).
//
// Limit is an active early-exit operator, not just a counter: the moment
// the K-th tuple leaves (or, for K = 0, as soon as Open has opened the
// child) it closes its child, which propagates down the tree exactly like
// a consumer-side cursor Close — partial-sort enforcers abandon their unsorted segments,
// spilled sorts drop unread runs with their arenas, scans stop reading.
// A planned Top-K query therefore sheds the tail work even when its
// consumer drains the cursor to completion.
type Limit struct {
	child       Operator
	k           int64
	n           int64
	childClosed bool
	closeErr    error
}

// NewLimit caps the stream at k tuples.
func NewLimit(child Operator, k int64) (*Limit, error) {
	if k < 0 {
		return nil, fmt.Errorf("exec: negative limit %d", k)
	}
	return &Limit{child: child, k: k}, nil
}

// Schema returns the child schema.
func (l *Limit) Schema() *types.Schema { return l.child.Schema() }

// Children returns the capped input.
func (l *Limit) Children() []Operator { return []Operator{l.child} }

// Open opens the child and resets the count; with K = 0 the child is
// closed again right away (it serves no rows).
func (l *Limit) Open() error {
	l.n = 0
	l.childClosed = false
	l.closeErr = nil
	if err := l.child.Open(); err != nil {
		return err
	}
	if l.k == 0 {
		return l.closeChild()
	}
	return nil
}

// closeChild closes the child exactly once, remembering the error so the
// later (idempotent) Close still reports it.
func (l *Limit) closeChild() error {
	if l.childClosed {
		return l.closeErr
	}
	l.childClosed = true
	l.closeErr = l.child.Close()
	return l.closeErr
}

// Next returns the next tuple while under the limit. Producing the K-th
// tuple closes the child before the tuple is returned; a close failure
// there surfaces from Close (and from any further Next call), never eating
// the row itself.
func (l *Limit) Next() (types.Tuple, bool, error) {
	if l.n >= l.k {
		if err := l.closeChild(); err != nil {
			return nil, false, err
		}
		return nil, false, nil
	}
	t, ok, err := l.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	l.n++
	if l.n >= l.k {
		l.closeChild()
	}
	return t, true, nil
}

// CanChunk reports whether the batch path is available (iff the child's is).
func (l *Limit) CanChunk() bool { return ChunkCapable(l.child) }

// NextChunk passes the child's chunk through, truncating the batch that
// carries the K-th live row and closing the child at that point — the same
// early-exit the row path performs, at the same page boundary (the
// truncated rows were co-resident on an already-read page).
func (l *Limit) NextChunk(c *types.Chunk) error {
	if l.n >= l.k {
		c.Reset()
		return l.closeChild()
	}
	if err := l.child.(ChunkOperator).NextChunk(c); err != nil {
		return err
	}
	live := int64(c.Rows())
	if live == 0 {
		return nil
	}
	if l.n+live >= l.k {
		c.Truncate(int(l.k - l.n))
		l.n = l.k
		// As in the row path, a close failure here surfaces from Close or
		// a later call, never eating the rows themselves.
		_ = l.closeChild()
		return nil
	}
	l.n += live
	return nil
}

// Close closes the child (already done if the limit was reached; the
// child's close error is reported either way).
func (l *Limit) Close() error { return l.closeChild() }
