package exec

import (
	"fmt"

	"pyro/internal/catalog"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// TableScan reads a table's heap file sequentially. If the table is
// clustered the scan delivers tuples in the clustering order — the paper's
// "clustering index scan" when that order is wanted, a plain table scan
// otherwise; the I/O cost is identical (one sequential pass).
type TableScan struct {
	table  *catalog.Table
	tap    *storage.Tap
	reader *storage.TupleReader
	rows   int64
}

// NewTableScan returns a scan over the table heap.
func NewTableScan(t *catalog.Table) *TableScan {
	return &TableScan{table: t}
}

// SetIOTap attributes this scan's page reads to a per-query tap (nil taps
// nothing). Must be called before Open.
func (s *TableScan) SetIOTap(t *storage.Tap) { s.tap = t }

// Schema returns the table schema.
func (s *TableScan) Schema() *types.Schema { return s.table.Schema }

// Children returns nil: scans are leaves.
func (s *TableScan) Children() []Operator { return nil }

// Table returns the scanned table.
func (s *TableScan) Table() *catalog.Table { return s.table }

// Rows returns the number of tuples produced so far.
func (s *TableScan) Rows() int64 { return s.rows }

// Open positions the scan at the first page.
func (s *TableScan) Open() error {
	s.reader = storage.NewTupleReader(s.table.File().Tapped(s.tap))
	s.rows = 0
	return nil
}

// Next returns the next heap tuple.
func (s *TableScan) Next() (types.Tuple, bool, error) {
	t, ok, err := s.reader.Next()
	if ok {
		s.rows++
	}
	return t, ok, err
}

// CanChunk reports that the scan fills chunks directly from heap pages.
func (s *TableScan) CanChunk() bool { return true }

// NextChunk fills c with the tuples remaining on the current heap page,
// decoding straight into the chunk's column vectors. A chunk never spans
// pages, so batch and row consumers charge identical I/O at any stop point.
func (s *TableScan) NextChunk(c *types.Chunk) error {
	c.Reset()
	n, err := s.reader.ReadChunk(c)
	s.rows += int64(n)
	return err
}

// Close releases the reader.
func (s *TableScan) Close() error {
	s.reader = nil
	return nil
}

// IndexScan reads a covering secondary index sequentially, producing the
// index's stored columns in its key order — the efficient source of sort
// orders that motivates much of the paper ("query covering indices make it
// very efficient to obtain desired sort orders without accessing the data
// pages").
type IndexScan struct {
	index  *catalog.Index
	tap    *storage.Tap
	reader *storage.TupleReader
	rows   int64
}

// NewIndexScan returns a scan over the index file. The caller must have
// verified the index covers the attributes the query needs above this scan.
func NewIndexScan(ix *catalog.Index) *IndexScan {
	return &IndexScan{index: ix}
}

// Schema returns the stored index schema (key columns then includes).
func (s *IndexScan) Schema() *types.Schema { return s.index.Schema() }

// Children returns nil: scans are leaves.
func (s *IndexScan) Children() []Operator { return nil }

// Index returns the scanned index.
func (s *IndexScan) Index() *catalog.Index { return s.index }

// Rows returns the number of tuples produced so far.
func (s *IndexScan) Rows() int64 { return s.rows }

// SetIOTap attributes this scan's page reads to a per-query tap (nil taps
// nothing). Must be called before Open.
func (s *IndexScan) SetIOTap(t *storage.Tap) { s.tap = t }

// Open positions the scan at the first index page.
func (s *IndexScan) Open() error {
	s.reader = storage.NewTupleReader(s.index.File().Tapped(s.tap))
	s.rows = 0
	return nil
}

// Next returns the next index entry.
func (s *IndexScan) Next() (types.Tuple, bool, error) {
	t, ok, err := s.reader.Next()
	if ok {
		s.rows++
	}
	return t, ok, err
}

// CanChunk reports that the scan fills chunks directly from index pages.
func (s *IndexScan) CanChunk() bool { return true }

// NextChunk fills c with the tuples remaining on the current index page.
func (s *IndexScan) NextChunk(c *types.Chunk) error {
	c.Reset()
	n, err := s.reader.ReadChunk(c)
	s.rows += int64(n)
	return err
}

// Close releases the reader.
func (s *IndexScan) Close() error {
	s.reader = nil
	return nil
}

// Values is a leaf operator over literal rows (tests, tools, VALUES lists).
type Values struct {
	schema *types.Schema
	rows   []types.Tuple
	pos    int
}

// NewValues builds a literal-rows operator. Rows must match the schema arity.
func NewValues(schema *types.Schema, rows []types.Tuple) (*Values, error) {
	for i, r := range rows {
		if len(r) != schema.Len() {
			return nil, fmt.Errorf("exec: values row %d has arity %d, schema wants %d", i, len(r), schema.Len())
		}
	}
	return &Values{schema: schema, rows: rows}, nil
}

// Schema returns the declared schema.
func (v *Values) Schema() *types.Schema { return v.schema }

// Children returns nil: literal rows are a leaf.
func (v *Values) Children() []Operator { return nil }

// Open resets the cursor.
func (v *Values) Open() error { v.pos = 0; return nil }

// Next returns the next literal row.
func (v *Values) Next() (types.Tuple, bool, error) {
	if v.pos >= len(v.rows) {
		return nil, false, nil
	}
	t := v.rows[v.pos]
	v.pos++
	return t, true, nil
}

// CanChunk reports that literal rows batch trivially.
func (v *Values) CanChunk() bool { return true }

// NextChunk fills c to capacity from the literal rows (already in memory,
// so batching them costs no extra work at any stop point).
func (v *Values) NextChunk(c *types.Chunk) error {
	c.Reset()
	for v.pos < len(v.rows) && !c.Full() {
		c.AppendRow(v.rows[v.pos])
		v.pos++
	}
	return nil
}

// Close is a no-op.
func (v *Values) Close() error { return nil }
