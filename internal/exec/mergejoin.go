package exec

import (
	"fmt"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/types"
)

// JoinType enumerates the join variants the engine implements.
type JoinType uint8

const (
	// InnerJoin keeps matching pairs only.
	InnerJoin JoinType = iota
	// LeftOuterJoin keeps unmatched left tuples padded with NULLs.
	LeftOuterJoin
	// FullOuterJoin keeps unmatched tuples from both sides padded with
	// NULLs (the paper's Query 4 operator).
	FullOuterJoin
)

func (j JoinType) String() string {
	switch j {
	case InnerJoin:
		return "inner"
	case LeftOuterJoin:
		return "left outer"
	case FullOuterJoin:
		return "full outer"
	}
	return "?"
}

// MergeJoin joins two inputs sorted on equal-length key orders. The chosen
// key permutation is exactly the "interesting order" the optimizer selects;
// the join output inherits it (on the left key columns). Duplicate keys are
// handled by buffering the matching groups in memory.
//
// Full outer joins coalesce the join-key columns of padded rows (a
// right-unmatched row's key values are copied into the left key columns
// and vice versa), the semantics of FULL JOIN ... USING. This is what
// makes the output genuinely sorted on the key permutation — with SQL's
// ON semantics, NULL keys on padded rows would interleave arbitrarily and
// the order the optimizer propagates (§4: "the merge-join produces the
// same order on its output") would not hold. The paper's Experiment B2
// plans, which partial-sort a full outer join's output, are exactly the
// consolidation (USING-style) setting.
type MergeJoin struct {
	left, right Operator
	leftKey     sortord.Order
	rightKey    sortord.Order
	leftOrds    []int
	rightOrds   []int
	joinType    JoinType
	schema      *types.Schema

	lt, rt       types.Tuple
	lDone, rDone bool
	outQueue     []types.Tuple
	outPos       int
	comparisons  int64
	rowsOut      int64
	leftWidth    int
	rightWidth   int
	guard        iter.Guard // strided abort poll for the advance loop
}

// NewMergeJoin builds a merge join. leftKey and rightKey must be the same
// length; position i of each names the i-th join attribute on that side.
// Both inputs must be sorted on their respective key orders.
func NewMergeJoin(left, right Operator, leftKey, rightKey sortord.Order, jt JoinType) (*MergeJoin, error) {
	if leftKey.Len() != rightKey.Len() {
		return nil, fmt.Errorf("exec: merge join key arity mismatch: %v vs %v", leftKey, rightKey)
	}
	if leftKey.Len() == 0 {
		return nil, fmt.Errorf("exec: merge join requires at least one key column")
	}
	lo := make([]int, leftKey.Len())
	ro := make([]int, rightKey.Len())
	for i := range leftKey {
		j, ok := left.Schema().Ordinal(leftKey[i])
		if !ok {
			return nil, fmt.Errorf("exec: left key %q not in %v", leftKey[i], left.Schema().Names())
		}
		lo[i] = j
		j, ok = right.Schema().Ordinal(rightKey[i])
		if !ok {
			return nil, fmt.Errorf("exec: right key %q not in %v", rightKey[i], right.Schema().Names())
		}
		ro[i] = j
	}
	return &MergeJoin{
		left: left, right: right,
		leftKey: leftKey.Clone(), rightKey: rightKey.Clone(),
		leftOrds: lo, rightOrds: ro,
		joinType:   jt,
		schema:     left.Schema().Concat(right.Schema()),
		leftWidth:  left.Schema().Len(),
		rightWidth: right.Schema().Len(),
	}, nil
}

// Schema returns the concatenated output schema.
func (m *MergeJoin) Schema() *types.Schema { return m.schema }

// Children returns the two merged inputs.
func (m *MergeJoin) Children() []Operator { return []Operator{m.left, m.right} }

// Type returns the join type.
func (m *MergeJoin) Type() JoinType { return m.joinType }

// LeftKey returns the left key order (also the output order the join
// propagates, per §4 of the paper).
func (m *MergeJoin) LeftKey() sortord.Order { return m.leftKey }

// Comparisons returns the number of key comparisons made.
func (m *MergeJoin) Comparisons() int64 { return m.comparisons }

// Open opens both inputs and primes the lookaheads.
func (m *MergeJoin) Open() error {
	if err := m.left.Open(); err != nil {
		return err
	}
	if err := m.right.Open(); err != nil {
		return err
	}
	if err := m.advanceLeft(); err != nil {
		return err
	}
	return m.advanceRight()
}

func (m *MergeJoin) advanceLeft() error {
	t, ok, err := m.left.Next()
	if err != nil {
		return err
	}
	if !ok {
		m.lt, m.lDone = nil, true
		return nil
	}
	m.lt = t
	return nil
}

func (m *MergeJoin) advanceRight() error {
	t, ok, err := m.right.Next()
	if err != nil {
		return err
	}
	if !ok {
		m.rt, m.rDone = nil, true
		return nil
	}
	m.rt = t
	return nil
}

// compareKeys compares the current lookaheads on the join key. SQL join
// semantics: NULL keys match nothing, so NULL sorts are handled by the
// caller treating NULL-key tuples as unmatched.
func (m *MergeJoin) compareKeys(l, r types.Tuple) int {
	m.comparisons++
	for i := range m.leftOrds {
		if c := l[m.leftOrds[i]].Compare(r[m.rightOrds[i]]); c != 0 {
			return c
		}
	}
	return 0
}

func (m *MergeJoin) keyHasNull(t types.Tuple, ords []int) bool {
	for _, o := range ords {
		if t[o].IsNull() {
			return true
		}
	}
	return false
}

func nullPad(n int) types.Tuple {
	t := make(types.Tuple, n)
	for i := range t {
		t[i] = types.Null
	}
	return t
}

// padLeft emits a left tuple with a NULL-padded right side; for full outer
// joins the right key columns receive the left key values (coalescing).
func (m *MergeJoin) padLeft(lt types.Tuple) types.Tuple {
	out := lt.Concat(nullPad(m.rightWidth))
	if m.joinType == FullOuterJoin {
		for i := range m.leftOrds {
			out[m.leftWidth+m.rightOrds[i]] = lt[m.leftOrds[i]]
		}
	}
	return out
}

// padRight emits a right tuple with a NULL-padded left side, coalescing the
// key columns (full outer only; callers only invoke it for full outer).
func (m *MergeJoin) padRight(rt types.Tuple) types.Tuple {
	out := nullPad(m.leftWidth).Concat(rt)
	for i := range m.rightOrds {
		out[m.leftOrds[i]] = rt[m.rightOrds[i]]
	}
	return out
}

// SetAbort installs the abort hook the advance loop polls: with disjoint
// key ranges the join can drain both inputs inside one Next call.
func (m *MergeJoin) SetAbort(poll func() error) { m.guard = iter.NewGuard(poll) }

// Next returns the next joined tuple.
func (m *MergeJoin) Next() (types.Tuple, bool, error) {
	for {
		if err := m.guard.Check(); err != nil {
			return nil, false, err
		}
		if m.outPos < len(m.outQueue) {
			t := m.outQueue[m.outPos]
			m.outPos++
			m.rowsOut++
			return t, true, nil
		}
		m.outQueue = m.outQueue[:0]
		m.outPos = 0

		switch {
		case m.lDone && m.rDone:
			return nil, false, nil

		case m.lDone:
			// Remaining right tuples are unmatched.
			if m.joinType == FullOuterJoin {
				m.outQueue = append(m.outQueue, m.padRight(m.rt))
			}
			if err := m.advanceRight(); err != nil {
				return nil, false, err
			}
			if m.joinType != FullOuterJoin && m.rDone {
				return nil, false, nil
			}
			continue

		case m.rDone:
			if m.joinType == FullOuterJoin || m.joinType == LeftOuterJoin {
				m.outQueue = append(m.outQueue, m.padLeft(m.lt))
			}
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
			if m.joinType == InnerJoin && m.lDone {
				return nil, false, nil
			}
			continue
		}

		// NULL join keys never match.
		if m.keyHasNull(m.lt, m.leftOrds) {
			if m.joinType != InnerJoin {
				m.outQueue = append(m.outQueue, m.padLeft(m.lt))
			}
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
			continue
		}
		if m.keyHasNull(m.rt, m.rightOrds) {
			if m.joinType == FullOuterJoin {
				m.outQueue = append(m.outQueue, m.padRight(m.rt))
			}
			if err := m.advanceRight(); err != nil {
				return nil, false, err
			}
			continue
		}

		c := m.compareKeys(m.lt, m.rt)
		switch {
		case c < 0:
			if m.joinType != InnerJoin {
				m.outQueue = append(m.outQueue, m.padLeft(m.lt))
			}
			if err := m.advanceLeft(); err != nil {
				return nil, false, err
			}
		case c > 0:
			if m.joinType == FullOuterJoin {
				m.outQueue = append(m.outQueue, m.padRight(m.rt))
			}
			if err := m.advanceRight(); err != nil {
				return nil, false, err
			}
		default:
			if err := m.emitMatchGroups(); err != nil {
				return nil, false, err
			}
		}
	}
}

// emitMatchGroups gathers the equal-key groups on both sides and enqueues
// their cross product.
func (m *MergeJoin) emitMatchGroups() error {
	key := m.lt
	var leftGroup, rightGroup []types.Tuple
	for !m.lDone && m.sameLeftKey(key, m.lt) {
		leftGroup = append(leftGroup, m.lt)
		if err := m.advanceLeft(); err != nil {
			return err
		}
	}
	for !m.rDone && m.compareKeys(key, m.rt) == 0 {
		rightGroup = append(rightGroup, m.rt)
		if err := m.advanceRight(); err != nil {
			return err
		}
	}
	for _, l := range leftGroup {
		for _, r := range rightGroup {
			m.outQueue = append(m.outQueue, l.Concat(r))
		}
	}
	return nil
}

func (m *MergeJoin) sameLeftKey(a, b types.Tuple) bool {
	m.comparisons++
	for _, o := range m.leftOrds {
		if a[o].Compare(b[o]) != 0 {
			return false
		}
	}
	return true
}

// Close closes both inputs.
func (m *MergeJoin) Close() error {
	errL := m.left.Close()
	errR := m.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
