package exec

import (
	"fmt"

	"pyro/internal/expr"
	"pyro/internal/iter"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// NLJoin is a block nested-loops join: the inner (right) input is spooled
// to a temporary file once, then rescanned for each memory-sized block of
// outer tuples, charging the rescan I/O the classical cost model predicts
// (B(R) + ceil(B(R)/M)·B(S)). It accepts an arbitrary join predicate, which
// is what makes it the fallback for non-equijoins. Output preserves the
// outer input's order within each block — the "nested loops joins propagate
// the sort order of the outer" property §5.1.2 relies on holds only for a
// one-block outer, so the optimizer treats NLJoin as order-propagating only
// when the outer fits in memory.
type NLJoin struct {
	left, right Operator
	pred        func(types.Tuple) bool
	predText    string
	joinType    JoinType // InnerJoin or LeftOuterJoin
	schema      *types.Schema
	disk        *storage.Disk
	tap         *storage.Tap
	memBlocks   int

	spool      *storage.File
	block      []types.Tuple
	blockPos   int
	matchedCur bool
	rreader    *storage.TupleReader
	outQueue   []types.Tuple
	outPos     int
	leftDone   bool
	rightWidth int
	guard      iter.Guard // strided abort poll for spool, join and pad loops
}

// NewNLJoin builds a block nested-loops join with an arbitrary predicate
// (nil means cross join). memBlocks bounds the outer block buffer.
func NewNLJoin(left, right Operator, pred expr.Expr, jt JoinType, disk *storage.Disk, memBlocks int) (*NLJoin, error) {
	if jt == FullOuterJoin {
		return nil, fmt.Errorf("exec: nested-loops join does not support full outer join")
	}
	if disk == nil || memBlocks <= 0 {
		return nil, fmt.Errorf("exec: nested-loops join needs a disk and positive memory")
	}
	schema := left.Schema().Concat(right.Schema())
	var p func(types.Tuple) bool
	text := "true"
	if pred != nil {
		bp, err := expr.BindPredicate(pred, schema)
		if err != nil {
			return nil, err
		}
		p = bp
		text = pred.String()
	}
	return &NLJoin{
		left: left, right: right, pred: p, predText: text, joinType: jt,
		schema: schema, disk: disk, memBlocks: memBlocks,
		rightWidth: right.Schema().Len(),
	}, nil
}

// Schema returns the concatenated output schema.
func (n *NLJoin) Schema() *types.Schema { return n.schema }

// Children returns the outer and inner inputs.
func (n *NLJoin) Children() []Operator { return []Operator{n.left, n.right} }

// SetIOTap attributes the spool's writes, rescans and seeks to a per-query
// tap (nil taps nothing). Must be called before Open.
func (n *NLJoin) SetIOTap(t *storage.Tap) { n.tap = t }

// SetAbort installs the abort hook the spool, join and pad loops poll:
// Open drains the whole inner input into the spool before the first row.
func (n *NLJoin) SetAbort(poll func() error) { n.guard = iter.NewGuard(poll) }

// Open spools the inner input to a temp file.
func (n *NLJoin) Open() error {
	if err := n.left.Open(); err != nil {
		return err
	}
	if err := n.right.Open(); err != nil {
		return err
	}
	n.spool = n.disk.CreateTemp("nljoin", storage.KindRun).Tapped(n.tap)
	w := storage.NewTupleWriter(n.spool)
	for {
		if err := n.guard.Check(); err != nil {
			return err
		}
		t, ok, err := n.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := w.Write(t); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	return n.loadBlock()
}

// loadBlock buffers the next block of outer tuples and rewinds the inner.
func (n *NLJoin) loadBlock() error {
	n.block = n.block[:0]
	budget := int64(n.memBlocks) * int64(n.disk.PageSize())
	var used int64
	for used < budget {
		t, ok, err := n.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			n.leftDone = true
			break
		}
		n.block = append(n.block, t)
		used += int64(t.MemSize())
	}
	if len(n.block) == 0 {
		n.rreader = nil
		return nil
	}
	n.rreader = storage.NewTupleReader(n.spool)
	n.blockPos = 0
	n.matchedCur = false
	return nil
}

// Next returns the next joined tuple. The iteration order is: for each
// inner tuple, scan the current outer block (classical block NL), so the
// inner is read once per outer block.
func (n *NLJoin) Next() (types.Tuple, bool, error) {
	for {
		if err := n.guard.Check(); err != nil {
			return nil, false, err
		}
		if n.outPos < len(n.outQueue) {
			t := n.outQueue[n.outPos]
			n.outPos++
			return t, true, nil
		}
		n.outQueue = n.outQueue[:0]
		n.outPos = 0

		if len(n.block) == 0 {
			return nil, false, nil
		}
		// Advance the inner cursor; join it against every outer tuple in
		// the block.
		rt, ok, err := n.rreader.Next()
		if err != nil {
			return nil, false, err
		}
		if ok {
			for _, lt := range n.block {
				joined := lt.Concat(rt)
				if n.pred == nil || n.pred(joined) {
					n.outQueue = append(n.outQueue, joined)
				}
			}
			continue
		}
		// Inner exhausted for this block. Left-outer padding is handled by
		// tracking matches per block pass; with block-at-a-time matching we
		// must know which outer tuples matched. Recompute via a match set.
		if n.joinType == LeftOuterJoin {
			if err := n.padUnmatched(); err != nil {
				return nil, false, err
			}
		}
		if n.leftDone {
			n.block = n.block[:0]
			if n.outPos < len(n.outQueue) || len(n.outQueue) > 0 {
				continue
			}
			return nil, false, nil
		}
		if err := n.loadBlock(); err != nil {
			return nil, false, err
		}
	}
}

// padUnmatched rescans the spool to find unmatched outer tuples in the
// current block and enqueues them NULL-padded. This extra pass is charged
// honestly — left-outer block NL pays for it.
func (n *NLJoin) padUnmatched() error {
	matched := make([]bool, len(n.block))
	r := storage.NewTupleReader(n.spool)
	for {
		if err := n.guard.Check(); err != nil {
			return err
		}
		rt, ok, err := r.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		for i, lt := range n.block {
			if matched[i] {
				continue
			}
			joined := lt.Concat(rt)
			if n.pred == nil || n.pred(joined) {
				matched[i] = true
			}
		}
	}
	for i, lt := range n.block {
		if !matched[i] {
			n.outQueue = append(n.outQueue, lt.Concat(nullPad(n.rightWidth)))
		}
	}
	return nil
}

// Close removes the spool and closes both inputs.
func (n *NLJoin) Close() error {
	if n.spool != nil {
		n.disk.Remove(n.spool.Name())
		n.spool = nil
	}
	errL := n.left.Close()
	errR := n.right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
