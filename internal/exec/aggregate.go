package exec

import (
	"fmt"
	"sort"

	"pyro/internal/expr"
	"pyro/internal/iter"
	"pyro/internal/types"
)

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	// AggCount counts non-NULL argument values; with a nil argument it
	// counts rows (COUNT(*)).
	AggCount AggFunc = iota
	// AggSum sums numeric arguments.
	AggSum
	// AggMin takes the minimum argument.
	AggMin
	// AggMax takes the maximum argument.
	AggMax
	// AggAvg averages numeric arguments.
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "?"
}

// AggSpec is one aggregate output column.
type AggSpec struct {
	Name string
	Func AggFunc
	Arg  expr.Expr // nil for COUNT(*)
}

// accumulator folds datums for one (group, aggregate) pair.
type accumulator struct {
	fn       AggFunc
	count    int64
	sumInt   int64
	sumFloat float64
	sawFloat bool
	minMax   types.Datum
	seen     bool
}

func (a *accumulator) add(v types.Datum) {
	if v.IsNull() {
		return
	}
	a.count++
	switch a.fn {
	case AggSum, AggAvg:
		if v.Kind() == types.KindFloat {
			a.sawFloat = true
			a.sumFloat += v.Float()
		} else {
			a.sumInt += v.Int()
		}
	case AggMin:
		if !a.seen || v.Compare(a.minMax) < 0 {
			a.minMax = v
		}
	case AggMax:
		if !a.seen || v.Compare(a.minMax) > 0 {
			a.minMax = v
		}
	}
	a.seen = true
}

func (a *accumulator) addRow() { a.count++ } // COUNT(*)

func (a *accumulator) result() types.Datum {
	switch a.fn {
	case AggCount:
		return types.NewInt(a.count)
	case AggSum:
		if !a.seen {
			return types.Null
		}
		if a.sawFloat {
			return types.NewFloat(a.sumFloat + float64(a.sumInt))
		}
		return types.NewInt(a.sumInt)
	case AggAvg:
		if a.count == 0 {
			return types.Null
		}
		return types.NewFloat((a.sumFloat + float64(a.sumInt)) / float64(a.count))
	case AggMin, AggMax:
		if !a.seen {
			return types.Null
		}
		return a.minMax
	}
	return types.Null
}

// aggSchema derives the output schema: group columns then aggregates.
func aggSchema(child *types.Schema, groupCols []string, aggs []AggSpec) (*types.Schema, error) {
	cols := make([]types.Column, 0, len(groupCols)+len(aggs))
	for _, g := range groupCols {
		i, ok := child.Ordinal(g)
		if !ok {
			return nil, fmt.Errorf("exec: group column %q not in %v", g, child.Names())
		}
		cols = append(cols, child.Col(i))
	}
	for _, a := range aggs {
		var kind types.Kind
		switch a.Func {
		case AggCount:
			kind = types.KindInt
		case AggAvg:
			kind = types.KindFloat
		default:
			if a.Arg == nil {
				return nil, fmt.Errorf("exec: aggregate %s requires an argument", a.Func)
			}
			kind = inferKind(a.Arg, child)
		}
		cols = append(cols, types.Column{Name: a.Name, Kind: kind})
	}
	return types.NewSchema(cols...), nil
}

// boundAgg is a compiled aggregate spec.
type boundAgg struct {
	fn AggFunc
	ev expr.Evaluator // nil for COUNT(*)
}

func bindAggs(child *types.Schema, aggs []AggSpec) ([]boundAgg, error) {
	out := make([]boundAgg, len(aggs))
	for i, a := range aggs {
		out[i].fn = a.Func
		if a.Arg != nil {
			ev, err := expr.Bind(a.Arg, child)
			if err != nil {
				return nil, err
			}
			out[i].ev = ev
		} else if a.Func != AggCount {
			return nil, fmt.Errorf("exec: aggregate %s requires an argument", a.Func)
		}
	}
	return out, nil
}

// GroupAggregate is the sort-based aggregate: the input must arrive sorted
// so that each group's tuples are contiguous (i.e. sorted on any permutation
// of the group columns). It is pipelined — one group's result is emitted as
// soon as the next group begins — which is why feeding it a merge join's
// output order is profitable (the paper's Query 3 plan).
type GroupAggregate struct {
	child     Operator
	groupCols []string
	groupOrds []int
	aggs      []AggSpec
	bound     []boundAgg
	schema    *types.Schema

	pending types.Tuple
	done    bool
	opened  bool

	// in is the stream the aggregate actually pulls: the child itself, or
	// a rowAdapter over it when batching is on (the aggregate retains its
	// lookahead, so it needs owned rows either way).
	in iter.Iterator

	guard iter.Guard // strided abort poll for the group-fold loop
}

// NewGroupAggregate builds a sort-based aggregate over contiguous groups.
func NewGroupAggregate(child Operator, groupCols []string, aggs []AggSpec) (*GroupAggregate, error) {
	schema, err := aggSchema(child.Schema(), groupCols, aggs)
	if err != nil {
		return nil, err
	}
	bound, err := bindAggs(child.Schema(), aggs)
	if err != nil {
		return nil, err
	}
	ords := make([]int, len(groupCols))
	for i, g := range groupCols {
		ords[i] = child.Schema().MustOrdinal(g)
	}
	return &GroupAggregate{
		child: child, groupCols: append([]string(nil), groupCols...), groupOrds: ords,
		aggs: aggs, bound: bound, schema: schema, in: child,
	}, nil
}

// SetExecBatch switches the aggregate's input collection to the batch path
// (n rows per chunk) when the child supports it. Must be called before
// Open; n <= 1 keeps the legacy row path.
func (g *GroupAggregate) SetExecBatch(n int) {
	if a := newRowAdapter(g.child, n); a != nil {
		g.in = a
	}
}

// Schema returns group columns followed by aggregate columns.
func (g *GroupAggregate) Schema() *types.Schema { return g.schema }

// Children returns the aggregated input.
func (g *GroupAggregate) Children() []Operator { return []Operator{g.child} }

// GroupCols returns the grouping columns.
func (g *GroupAggregate) GroupCols() []string { return g.groupCols }

// Open opens the input and primes the lookahead.
// SetAbort installs the abort hook the group-fold loop polls: one giant
// group is folded inside a single Next call.
func (g *GroupAggregate) SetAbort(poll func() error) { g.guard = iter.NewGuard(poll) }

func (g *GroupAggregate) Open() error {
	g.opened = true
	if err := g.in.Open(); err != nil {
		return err
	}
	t, ok, err := g.in.Next()
	if err != nil {
		return err
	}
	if !ok {
		g.done = true
		return nil
	}
	g.pending = t
	return nil
}

func (g *GroupAggregate) sameGroup(a, b types.Tuple) bool {
	for _, o := range g.groupOrds {
		if a[o].Compare(b[o]) != 0 {
			return false
		}
	}
	return true
}

// Next aggregates one group and returns its row.
func (g *GroupAggregate) Next() (types.Tuple, bool, error) {
	if g.done && g.pending == nil {
		return nil, false, nil
	}
	first := g.pending
	accs := make([]accumulator, len(g.bound))
	for i := range accs {
		accs[i].fn = g.bound[i].fn
	}
	fold := func(t types.Tuple) {
		for i, b := range g.bound {
			if b.ev == nil {
				accs[i].addRow()
			} else {
				accs[i].add(b.ev(t))
			}
		}
	}
	fold(first)
	for {
		if err := g.guard.Check(); err != nil {
			return nil, false, err
		}
		t, ok, err := g.in.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			g.done = true
			g.pending = nil
			break
		}
		if !g.sameGroup(first, t) {
			g.pending = t
			break
		}
		fold(t)
	}
	out := make(types.Tuple, 0, g.schema.Len())
	for _, o := range g.groupOrds {
		out = append(out, first[o])
	}
	for i := range accs {
		out = append(out, accs[i].result())
	}
	return out, true, nil
}

// Close closes the input (the adapter, when batching, closes the child).
func (g *GroupAggregate) Close() error { return g.in.Close() }

// HashAggregate accumulates all groups in a hash table and emits them after
// the input is exhausted (blocking). Output group order is the groups'
// first-seen order, which carries no guarantee — the reason the paper's
// Query 3 Postgres plan needed an extra sort above its hash aggregate.
type HashAggregate struct {
	child     Operator
	groupCols []string
	groupOrds []int
	aggs      []AggSpec
	bound     []boundAgg
	schema    *types.Schema

	results []types.Tuple
	pos     int
	batch   int
	guard   iter.Guard // strided abort poll for the ingest loops
}

// NewHashAggregate builds a hash aggregate; input order is irrelevant.
func NewHashAggregate(child Operator, groupCols []string, aggs []AggSpec) (*HashAggregate, error) {
	schema, err := aggSchema(child.Schema(), groupCols, aggs)
	if err != nil {
		return nil, err
	}
	bound, err := bindAggs(child.Schema(), aggs)
	if err != nil {
		return nil, err
	}
	ords := make([]int, len(groupCols))
	for i, g := range groupCols {
		ords[i] = child.Schema().MustOrdinal(g)
	}
	return &HashAggregate{
		child: child, groupCols: append([]string(nil), groupCols...), groupOrds: ords,
		aggs: aggs, bound: bound, schema: schema,
	}, nil
}

// Schema returns group columns followed by aggregate columns.
func (h *HashAggregate) Schema() *types.Schema { return h.schema }

// Children returns the aggregated input.
func (h *HashAggregate) Children() []Operator { return []Operator{h.child} }

// SetExecBatch makes Open drain its input through the batch path (n rows
// per chunk) when the child supports it. Must be called before Open; n <= 1
// keeps the legacy row path.
func (h *HashAggregate) SetExecBatch(n int) { h.batch = n }

// Open consumes the entire input, building all groups. With batching on it
// folds chunk row views directly (consuming any selection) and clones a
// tuple only for each group's first-seen representative — one allocation
// per group instead of one per input row.
// SetAbort installs the abort hook the ingest loops poll: the hash
// aggregate drains its whole input inside Open.
func (h *HashAggregate) SetAbort(poll func() error) { h.guard = iter.NewGuard(poll) }

func (h *HashAggregate) Open() error {
	if err := h.child.Open(); err != nil {
		return err
	}
	type groupState struct {
		rep  types.Tuple
		accs []accumulator
		seq  int
	}
	groups := make(map[string]*groupState)
	var keyBuf []byte
	seq := 0
	// ingest folds one row; owned says whether t may be retained as a
	// group representative or must be cloned first (chunk views are
	// overwritten on refill).
	ingest := func(t types.Tuple, owned bool) {
		keyBuf = keyBuf[:0]
		for _, o := range h.groupOrds {
			keyBuf = t[o : o+1].Encode(keyBuf)
		}
		gs, found := groups[string(keyBuf)]
		if !found {
			rep := t
			if !owned {
				rep = t.Clone()
			}
			gs = &groupState{rep: rep, accs: make([]accumulator, len(h.bound)), seq: seq}
			seq++
			for i := range gs.accs {
				gs.accs[i].fn = h.bound[i].fn
			}
			groups[string(keyBuf)] = gs
		}
		for i, b := range h.bound {
			if b.ev == nil {
				gs.accs[i].addRow()
			} else {
				gs.accs[i].add(b.ev(t))
			}
		}
	}
	if h.batch > 1 && ChunkCapable(h.child) {
		child := h.child.(ChunkOperator)
		c := types.GetChunk(h.child.Schema().Len(), h.batch)
		defer types.PutChunk(c)
		var view types.Tuple
		for {
			if err := h.guard.Check(); err != nil {
				return err
			}
			if err := child.NextChunk(c); err != nil {
				return err
			}
			live := c.Rows()
			if live == 0 {
				break
			}
			for i := 0; i < live; i++ {
				view = c.CopyRow(view, i)
				ingest(view, false)
			}
		}
	} else {
		for {
			if err := h.guard.Check(); err != nil {
				return err
			}
			t, ok, err := h.child.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			ingest(t, true)
		}
	}
	ordered := make([]*groupState, 0, len(groups))
	for _, gs := range groups {
		ordered = append(ordered, gs)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	h.results = make([]types.Tuple, len(ordered))
	for i, gs := range ordered {
		out := make(types.Tuple, 0, h.schema.Len())
		for _, o := range h.groupOrds {
			out = append(out, gs.rep[o])
		}
		for j := range gs.accs {
			out = append(out, gs.accs[j].result())
		}
		h.results[i] = out
	}
	h.pos = 0
	return nil
}

// Next emits the next group row.
func (h *HashAggregate) Next() (types.Tuple, bool, error) {
	if h.pos >= len(h.results) {
		return nil, false, nil
	}
	t := h.results[h.pos]
	h.pos++
	return t, true, nil
}

// Close closes the child.
func (h *HashAggregate) Close() error {
	h.results = nil
	return h.child.Close()
}
