package exec

import (
	"errors"
	"fmt"
	"testing"

	"pyro/internal/expr"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/xsort"
)

// faultyOp yields n good tuples and then fails, or fails at Open.
type faultyOp struct {
	schema   *types.Schema
	n        int
	failOpen bool
	emitted  int
}

var errInjected = errors.New("injected failure")

func (f *faultyOp) Schema() *types.Schema { return f.schema }
func (f *faultyOp) Open() error {
	f.emitted = 0
	if f.failOpen {
		return errInjected
	}
	return nil
}
func (f *faultyOp) Next() (types.Tuple, bool, error) {
	if f.emitted >= f.n {
		return nil, false, errInjected
	}
	f.emitted++
	return types.NewTuple(types.NewInt(int64(f.emitted)), types.NewInt(int64(f.emitted%3))), true, nil
}
func (f *faultyOp) Close() error { return nil }

// operatorsUnder builds every unary/binary operator over the given inputs,
// so error-propagation can be asserted uniformly.
func operatorsUnder(t *testing.T, mk func() Operator) []Operator {
	t.Helper()
	d := storage.NewDisk(0)
	xcfg := xsort.Config{Disk: d, MemoryBlocks: 8}
	var ops []Operator

	if f, err := NewFilter(mk(), expr.Compare(expr.GT, expr.Col("a"), expr.IntLit(0))); err == nil {
		ops = append(ops, f)
	} else {
		t.Fatal(err)
	}
	if p, err := NewProjectNames(mk(), []string{"a"}); err == nil {
		ops = append(ops, p)
	} else {
		t.Fatal(err)
	}
	if s, err := NewSortSRS(mk(), sortord.New("a"), xcfg); err == nil {
		ops = append(ops, s)
	} else {
		t.Fatal(err)
	}
	if m, err := NewSortMRS(mk(), sortord.New("a", "b"), sortord.New("a"), xcfg); err == nil {
		ops = append(ops, m)
	} else {
		t.Fatal(err)
	}
	if g, err := NewGroupAggregate(mk(), []string{"b"}, []AggSpec{{Name: "c", Func: AggCount}}); err == nil {
		ops = append(ops, g)
	} else {
		t.Fatal(err)
	}
	if h, err := NewHashAggregate(mk(), []string{"b"}, []AggSpec{{Name: "c", Func: AggCount}}); err == nil {
		ops = append(ops, h)
	} else {
		t.Fatal(err)
	}
	ops = append(ops, NewDedup(mk()))
	if l, err := NewLimit(mk(), 100); err == nil {
		ops = append(ops, l)
	} else {
		t.Fatal(err)
	}
	// Binary operators: faulty on the left, clean on the right.
	clean := func() Operator {
		v, _ := NewValues(types.NewSchema(
			types.Column{Name: "c", Kind: types.KindInt},
			types.Column{Name: "d", Kind: types.KindInt},
		), []types.Tuple{types.NewTuple(types.NewInt(1), types.NewInt(2))})
		return v
	}
	if mj, err := NewMergeJoin(mk(), clean(), sortord.New("a"), sortord.New("c"), InnerJoin); err == nil {
		ops = append(ops, mj)
	} else {
		t.Fatal(err)
	}
	if hj, err := NewHashJoin(mk(), clean(), []string{"a"}, []string{"c"}, InnerJoin); err == nil {
		ops = append(ops, hj)
	} else {
		t.Fatal(err)
	}
	if nl, err := NewNLJoin(mk(), clean(), nil, InnerJoin, d, 4); err == nil {
		ops = append(ops, nl)
	} else {
		t.Fatal(err)
	}
	if u, err := NewMergeUnion(mk(), mk(), sortord.New("a"), false); err == nil {
		ops = append(ops, u)
	} else {
		t.Fatal(err)
	}
	if ua, err := NewUnionAll(mk(), mk()); err == nil {
		ops = append(ops, ua)
	} else {
		t.Fatal(err)
	}
	return ops
}

func drainUntilError(op Operator) error {
	if err := op.Open(); err != nil {
		return err
	}
	for {
		_, ok, err := op.Next()
		if err != nil {
			op.Close()
			return err
		}
		if !ok {
			op.Close()
			return nil
		}
	}
}

func TestMidStreamErrorsPropagate(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
	)
	mk := func() Operator { return &faultyOp{schema: schema, n: 5} }
	for i, op := range operatorsUnder(t, mk) {
		err := drainUntilError(op)
		if !errors.Is(err, errInjected) {
			t.Errorf("operator %d (%T): error not propagated, got %v", i, op, err)
		}
	}
}

func TestOpenErrorsPropagate(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
	)
	mk := func() Operator { return &faultyOp{schema: schema, failOpen: true} }
	for i, op := range operatorsUnder(t, mk) {
		err := drainUntilError(op)
		if !errors.Is(err, errInjected) {
			t.Errorf("operator %d (%T): open error not propagated, got %v", i, op, err)
		}
	}
}

func TestSortCleanupAfterMidStreamError(t *testing.T) {
	// A sort whose input fails mid-run-generation must not leak run files.
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
	)
	d := storage.NewDisk(0)
	big := &bigFaulty{schema: schema, n: 50_000}
	s, err := NewSortSRS(big, sortord.New("a"), xsort.Config{Disk: d, MemoryBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := drainUntilError(s); !errors.Is(err, errInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if files := d.FileNames(); len(files) != 0 {
		t.Fatalf("run files leaked after error: %v", files)
	}
}

// bigFaulty emits enough tuples to force spilling, then fails.
type bigFaulty struct {
	schema  *types.Schema
	n       int
	emitted int
}

func (f *bigFaulty) Schema() *types.Schema { return f.schema }
func (f *bigFaulty) Open() error           { f.emitted = 0; return nil }
func (f *bigFaulty) Next() (types.Tuple, bool, error) {
	if f.emitted >= f.n {
		return nil, false, fmt.Errorf("big: %w", errInjected)
	}
	f.emitted++
	return types.NewTuple(types.NewInt(int64(f.emitted*7%1000)), types.NewInt(int64(f.emitted))), true, nil
}
func (f *bigFaulty) Close() error { return nil }
