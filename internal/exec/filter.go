package exec

import (
	"pyro/internal/expr"
	"pyro/internal/iter"
	"pyro/internal/types"
)

// Filter passes through tuples satisfying a predicate. Order-preserving.
type Filter struct {
	child   Operator
	pred    func(types.Tuple) bool
	text    string
	in      int64
	out     int64
	scratch types.Tuple // batch-path row view, reused across rows
	guard   iter.Guard  // strided abort poll for the reject-all drain
}

// NewFilter compiles pred against the child schema.
func NewFilter(child Operator, pred expr.Expr) (*Filter, error) {
	p, err := expr.BindPredicate(pred, child.Schema())
	if err != nil {
		return nil, err
	}
	return &Filter{child: child, pred: p, text: pred.String()}, nil
}

// Schema returns the child schema (filtering is schema-preserving).
func (f *Filter) Schema() *types.Schema { return f.child.Schema() }

// Children returns the filtered input.
func (f *Filter) Children() []Operator { return []Operator{f.child} }

// Predicate returns the predicate text (for plan display).
func (f *Filter) Predicate() string { return f.text }

// Selectivity returns observed rows out / rows in (valid after execution).
func (f *Filter) Selectivity() float64 {
	if f.in == 0 {
		return 0
	}
	return float64(f.out) / float64(f.in)
}

// SetAbort installs the abort hook the filter loops poll: a filter that
// rejects every row consumes its whole input inside one Next call, so the
// loop must poll rather than rely on the cursor's between-Next check.
func (f *Filter) SetAbort(poll func() error) { f.guard = iter.NewGuard(poll) }

// Open opens the child.
func (f *Filter) Open() error { return f.child.Open() }

// Next returns the next qualifying tuple.
func (f *Filter) Next() (types.Tuple, bool, error) {
	for {
		if err := f.guard.Check(); err != nil {
			return nil, false, err
		}
		t, ok, err := f.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		f.in++
		if f.pred(t) {
			f.out++
			return t, true, nil
		}
	}
}

// CanChunk reports whether the batch path is available (iff the child's is).
func (f *Filter) CanChunk() bool { return ChunkCapable(f.child) }

// NextChunk pulls child chunks into c and marks the survivors in a
// selection vector — rows are never moved. It keeps pulling while a batch
// has zero survivors, exactly the pages the row path would read before
// its next qualifying row, so stopping after any served row charges
// identical I/O.
func (f *Filter) NextChunk(c *types.Chunk) error {
	child := f.child.(ChunkOperator)
	for {
		if err := f.guard.Check(); err != nil {
			return err
		}
		if err := child.NextChunk(c); err != nil {
			return err
		}
		live := c.Rows()
		if live == 0 {
			return nil
		}
		f.in += int64(live)
		// Writing survivor j of the scratch selection while reading live
		// row i is safe even when c's selection already aliases the same
		// scratch: j <= i always (survivors are a subsequence).
		sel := c.SelScratch()
		for i := 0; i < live; i++ {
			f.scratch = c.CopyRow(f.scratch, i)
			if f.pred(f.scratch) {
				sel = append(sel, int32(c.RowIndex(i)))
			}
		}
		f.out += int64(len(sel))
		if len(sel) > 0 {
			c.SetSel(sel)
			return nil
		}
	}
}

// Close closes the child.
func (f *Filter) Close() error { return f.child.Close() }

// Project computes output columns from input tuples. Each output column is
// a named scalar expression; plain column references make it a classical
// projection (which preserves any input order on surviving columns).
type Project struct {
	child  Operator
	schema *types.Schema
	evals  []expr.Evaluator

	// Batch-path buffers: the child's chunk (lazily pooled), an input row
	// view and an output row, all reused so projection allocates nothing
	// per row.
	in         *types.Chunk
	inScratch  types.Tuple
	outScratch types.Tuple
}

// ProjCol is one output column of a projection.
type ProjCol struct {
	Name string
	Expr expr.Expr
}

// NewProject compiles the projection against the child schema.
func NewProject(child Operator, cols []ProjCol) (*Project, error) {
	outCols := make([]types.Column, len(cols))
	evals := make([]expr.Evaluator, len(cols))
	for i, c := range cols {
		ev, err := expr.Bind(c.Expr, child.Schema())
		if err != nil {
			return nil, err
		}
		evals[i] = ev
		kind := inferKind(c.Expr, child.Schema())
		width := 0
		if ref, ok := c.Expr.(expr.ColRef); ok {
			if j, found := child.Schema().Ordinal(ref.Name); found {
				width = child.Schema().Col(j).Width
			}
		}
		outCols[i] = types.Column{Name: c.Name, Kind: kind, Width: width}
	}
	return &Project{child: child, schema: types.NewSchema(outCols...), evals: evals}, nil
}

// NewProjectNames is a convenience for plain column projections keeping the
// original names.
func NewProjectNames(child Operator, names []string) (*Project, error) {
	cols := make([]ProjCol, len(names))
	for i, n := range names {
		cols[i] = ProjCol{Name: n, Expr: expr.Col(n)}
	}
	return NewProject(child, cols)
}

// Schema returns the projection's output schema.
func (p *Project) Schema() *types.Schema { return p.schema }

// Children returns the projected input.
func (p *Project) Children() []Operator { return []Operator{p.child} }

// Open opens the child.
func (p *Project) Open() error { return p.child.Open() }

// Next computes the next projected tuple.
func (p *Project) Next() (types.Tuple, bool, error) {
	t, ok, err := p.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make(types.Tuple, len(p.evals))
	for i, ev := range p.evals {
		out[i] = ev(t)
	}
	return out, true, nil
}

// CanChunk reports whether the batch path is available (iff the child's is).
func (p *Project) CanChunk() bool { return ChunkCapable(p.child) }

// NextChunk pulls one child chunk and evaluates the projection into c's
// column vectors, consuming the child's selection: the output chunk is
// dense.
func (p *Project) NextChunk(c *types.Chunk) error {
	child := p.child.(ChunkOperator)
	if p.in == nil {
		p.in = types.GetChunk(p.child.Schema().Len(), c.Cap())
	}
	if err := child.NextChunk(p.in); err != nil {
		return err
	}
	c.Reset()
	if cap(p.outScratch) < len(p.evals) {
		p.outScratch = make(types.Tuple, len(p.evals))
	}
	out := p.outScratch[:len(p.evals)]
	live := p.in.Rows()
	for i := 0; i < live; i++ {
		p.inScratch = p.in.CopyRow(p.inScratch, i)
		for j, ev := range p.evals {
			out[j] = ev(p.inScratch)
		}
		c.AppendRow(out)
	}
	return nil
}

// Close returns the batch-path input buffer to the pool and closes the
// child.
func (p *Project) Close() error {
	if p.in != nil {
		types.PutChunk(p.in)
		p.in = nil
	}
	return p.child.Close()
}
