package exec

import (
	"pyro/internal/sortord"
	"pyro/internal/types"
	"pyro/internal/xsort"
)

// sorter is the common surface of the xsort operators the enforcer wraps.
// Construction is arena-aware: both implementations spill through private
// storage.SpillArena namespaces (per sort for SRS, per oversized segment
// for MRS) created from the Config's Disk, so multiple enforcers in one
// plan — and multiple spill workers in one enforcer — never contend on
// temp names or a ledger mutex, while the disk's IOStats totals remain
// exactly what the serial algorithm would have charged.
type sorter interface {
	Open() error
	Next() (types.Tuple, bool, error)
	Close() error
	Stats() *xsort.SortStats
}

// Sort is the order-enforcer operator. It wraps either SRS (standard
// replacement selection, used when nothing is known about the input order)
// or MRS (the paper's modified replacement selection, used when the input
// is known to carry a prefix of the target order — the "partial sort
// enforcer" of §3.2). The wrapped sort inherits the Config's key mode,
// run-formation mode (comparison sort vs MSD radix on the encoded keys;
// identical output key order and run structure, different work
// accounting — see the xsort package comment) and parallelism knobs
// unchanged.
type Sort struct {
	child  Operator
	target sortord.Order
	given  sortord.Order
	impl   sorter
}

// NewSortSRS builds a full sort using standard replacement selection,
// ignoring any order the input may already have (what Postgres, SYS1 and
// SYS2 did in the paper's experiments).
func NewSortSRS(child Operator, target sortord.Order, cfg xsort.Config) (*Sort, error) {
	s, err := xsort.NewSRS(child, child.Schema(), target, cfg)
	if err != nil {
		return nil, err
	}
	return &Sort{child: child, target: target.Clone(), given: sortord.Empty, impl: s}, nil
}

// NewSortMRS builds a partial sort: given is the order known to hold on the
// input (must be a prefix of target).
func NewSortMRS(child Operator, target, given sortord.Order, cfg xsort.Config) (*Sort, error) {
	m, err := xsort.NewMRS(child, child.Schema(), target, given, cfg)
	if err != nil {
		return nil, err
	}
	return &Sort{child: child, target: target.Clone(), given: given.Clone(), impl: m}, nil
}

// Schema returns the child schema (sorting is schema-preserving).
func (s *Sort) Schema() *types.Schema { return s.child.Schema() }

// Children returns the sorted input.
func (s *Sort) Children() []Operator { return []Operator{s.child} }

// Target returns the produced sort order.
func (s *Sort) Target() sortord.Order { return s.target }

// Given returns the input order the enforcer exploits (ε for SRS).
func (s *Sort) Given() sortord.Order { return s.given }

// IsPartial reports whether this is a partial-sort enforcer: only
// NewSortMRS records a non-empty given order.
func (s *Sort) IsPartial() bool { return !s.given.IsEmpty() }

// SortStats exposes the underlying sort's work counters.
func (s *Sort) SortStats() *xsort.SortStats { return s.impl.Stats() }

// Spilled reports whether the sort exceeded its memory budget and wrote
// runs (valid once the sort has consumed its input). Harness tables use it
// to annotate which regime — pipelined in-memory or external spill — a
// measurement exercised.
func (s *Sort) Spilled() bool { return s.impl.Stats().RunsGenerated > 0 }

// Open opens the underlying sort (for SRS this consumes the whole input).
func (s *Sort) Open() error { return s.impl.Open() }

// Next returns the next tuple in target order.
func (s *Sort) Next() (types.Tuple, bool, error) { return s.impl.Next() }

// Close releases sort resources and closes the child.
func (s *Sort) Close() error { return s.impl.Close() }
