package expr

import (
	"testing"

	"pyro/internal/sortord"
	"pyro/internal/types"
)

var testSchema = types.NewSchema(
	types.Column{Name: "a", Kind: types.KindInt},
	types.Column{Name: "b", Kind: types.KindInt},
	types.Column{Name: "s", Kind: types.KindString},
	types.Column{Name: "f", Kind: types.KindFloat},
)

func tup(a, b int64, s string, f float64) types.Tuple {
	return types.NewTuple(types.NewInt(a), types.NewInt(b), types.NewString(s), types.NewFloat(f))
}

func mustBind(t *testing.T, e Expr) Evaluator {
	t.Helper()
	ev, err := Bind(e, testSchema)
	if err != nil {
		t.Fatalf("Bind(%v): %v", e, err)
	}
	return ev
}

func TestColRefAndConst(t *testing.T) {
	ev := mustBind(t, Col("b"))
	if got := ev(tup(1, 7, "x", 0)); got.Int() != 7 {
		t.Fatalf("colref = %v", got)
	}
	ev = mustBind(t, IntLit(42))
	if got := ev(tup(0, 0, "", 0)); got.Int() != 42 {
		t.Fatalf("const = %v", got)
	}
	if _, err := Bind(Col("zzz"), testSchema); err == nil {
		t.Fatal("unknown column must error")
	}
}

func TestComparisons(t *testing.T) {
	row := tup(3, 5, "m", 1.5)
	cases := []struct {
		e    Expr
		want bool
	}{
		{Compare(EQ, Col("a"), IntLit(3)), true},
		{Compare(NE, Col("a"), IntLit(3)), false},
		{Compare(LT, Col("a"), Col("b")), true},
		{Compare(LE, Col("a"), IntLit(3)), true},
		{Compare(GT, Col("b"), Col("a")), true},
		{Compare(GE, Col("a"), IntLit(4)), false},
		{Compare(EQ, Col("s"), StrLit("m")), true},
		{Compare(LT, Col("f"), FloatLit(2.0)), true},
		{Compare(GT, Col("f"), Col("a")), false}, // 1.5 > 3 is false
	}
	for _, c := range cases {
		got := mustBind(t, c.e)(row)
		if got.IsNull() || got.Bool() != c.want {
			t.Errorf("%v = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestNullPropagation(t *testing.T) {
	row := types.NewTuple(types.Null, types.NewInt(1), types.NewString(""), types.NewFloat(0))
	if got := mustBind(t, Compare(EQ, Col("a"), IntLit(1)))(row); !got.IsNull() {
		t.Fatalf("NULL = 1 should be NULL, got %v", got)
	}
	if got := mustBind(t, Arith{Op: Add, L: Col("a"), R: IntLit(1)})(row); !got.IsNull() {
		t.Fatalf("NULL + 1 should be NULL, got %v", got)
	}
	pred, err := BindPredicate(Compare(EQ, Col("a"), IntLit(1)), testSchema)
	if err != nil {
		t.Fatal(err)
	}
	if pred(row) {
		t.Fatal("NULL predicate must filter out")
	}
}

func TestArithmetic(t *testing.T) {
	row := tup(10, 4, "", 2.5)
	cases := []struct {
		e    Expr
		want types.Datum
	}{
		{Arith{Op: Add, L: Col("a"), R: Col("b")}, types.NewInt(14)},
		{Arith{Op: Sub, L: Col("a"), R: Col("b")}, types.NewInt(6)},
		{Arith{Op: Mul, L: Col("a"), R: Col("b")}, types.NewInt(40)},
		{Arith{Op: Div, L: Col("a"), R: Col("b")}, types.NewInt(2)},
		{Arith{Op: Mul, L: Col("f"), R: IntLit(2)}, types.NewFloat(5.0)},
		{Arith{Op: Div, L: Col("a"), R: IntLit(0)}, types.Null},
		{Arith{Op: Div, L: Col("f"), R: FloatLit(0)}, types.Null},
	}
	for _, c := range cases {
		got := mustBind(t, c.e)(row)
		if got.Compare(c.want) != 0 {
			t.Errorf("%v = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	row := tup(1, 2, "", 0)
	tr := Compare(EQ, Col("a"), IntLit(1))
	fa := Compare(EQ, Col("a"), IntLit(9))
	cases := []struct {
		e    Expr
		want bool
	}{
		{AndOf(tr, tr), true},
		{AndOf(tr, fa), false},
		{OrOf(fa, tr), true},
		{OrOf(fa, fa), false},
		{Not{Child: fa}, true},
		{Not{Child: tr}, false},
	}
	for _, c := range cases {
		got := mustBind(t, c.e)(row)
		if got.IsNull() || got.Bool() != c.want {
			t.Errorf("%v = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestThreeValuedAndOr(t *testing.T) {
	row := types.NewTuple(types.Null, types.NewInt(1), types.NewString(""), types.NewFloat(0))
	nullCmp := Compare(EQ, Col("a"), IntLit(1))
	tr := Compare(EQ, Col("b"), IntLit(1))
	fa := Compare(EQ, Col("b"), IntLit(9))
	// false AND null = false; true AND null = null
	if got := mustBind(t, AndOf(fa, nullCmp))(row); got.IsNull() || got.Bool() {
		t.Fatalf("false AND null = %v, want false", got)
	}
	if got := mustBind(t, AndOf(tr, nullCmp))(row); !got.IsNull() {
		t.Fatalf("true AND null = %v, want NULL", got)
	}
	// true OR null = true; false OR null = null
	if got := mustBind(t, OrOf(tr, nullCmp))(row); got.IsNull() || !got.Bool() {
		t.Fatalf("true OR null = %v, want true", got)
	}
	if got := mustBind(t, OrOf(fa, nullCmp))(row); !got.IsNull() {
		t.Fatalf("false OR null = %v, want NULL", got)
	}
	if got := mustBind(t, Not{Child: nullCmp})(row); !got.IsNull() {
		t.Fatalf("NOT null = %v, want NULL", got)
	}
}

func TestAndOfFlattens(t *testing.T) {
	e := AndOf(AndOf(Col("a"), Col("b")), Col("s"))
	a, ok := e.(And)
	if !ok || len(a.Children) != 3 {
		t.Fatalf("AndOf should flatten, got %v", e)
	}
	if single := AndOf(Col("a")); single.String() != "a" {
		t.Fatal("single-child AndOf should unwrap")
	}
	if single := OrOf(Col("a")); single.String() != "a" {
		t.Fatal("single-child OrOf should unwrap")
	}
}

func TestConjuncts(t *testing.T) {
	e := AndOf(Eq(Col("a"), Col("b")), Compare(GT, Col("f"), IntLit(0)), Eq(Col("s"), StrLit("x")))
	cs := Conjuncts(e)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	if got := Conjuncts(nil); got != nil {
		t.Fatal("Conjuncts(nil) should be nil")
	}
	if got := Conjuncts(Col("a")); len(got) != 1 {
		t.Fatal("single conjunct")
	}
}

func TestColumns(t *testing.T) {
	e := AndOf(Eq(Col("a"), Col("b")), Compare(GT, Arith{Op: Mul, L: Col("f"), R: IntLit(2)}, FloatLit(1)))
	got := Columns(e)
	if !got.Equal(sortord.NewAttrSet("a", "b", "f")) {
		t.Fatalf("Columns = %v", got)
	}
}

func TestSplitJoinPredicate(t *testing.T) {
	left := types.NewSchema(
		types.Column{Name: "l1", Kind: types.KindInt},
		types.Column{Name: "l2", Kind: types.KindInt},
	)
	right := types.NewSchema(
		types.Column{Name: "r1", Kind: types.KindInt},
		types.Column{Name: "r2", Kind: types.KindInt},
	)
	pred := AndOf(
		Eq(Col("l1"), Col("r1")),
		Eq(Col("r2"), Col("l2")),          // reversed orientation
		Compare(GT, Col("l1"), IntLit(5)), // residual: not cross-input
		Eq(Col("l1"), IntLit(3)),          // residual: not col=col
	)
	pairs, residual := SplitJoinPredicate(pred, left, right)
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
	if pairs[0] != (EquiPair{Left: "l1", Right: "r1"}) {
		t.Fatalf("pair0 = %v", pairs[0])
	}
	if pairs[1] != (EquiPair{Left: "l2", Right: "r2"}) {
		t.Fatalf("pair1 normalisation failed: %v", pairs[1])
	}
	if len(residual) != 2 {
		t.Fatalf("residual = %v", residual)
	}
}

func TestStringRendering(t *testing.T) {
	e := AndOf(Eq(Col("a"), Col("b")), OrOf(Compare(LT, Col("f"), IntLit(1)), Not{Child: Col("s")}))
	want := "a = b AND (f < 1 OR NOT (s))"
	if got := e.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if Compare(NE, Col("a"), IntLit(0)).String() != "a <> 0" {
		t.Fatal("NE rendering")
	}
	if (Arith{Op: Div, L: Col("a"), R: IntLit(2)}).String() != "(a / 2)" {
		t.Fatal("arith rendering")
	}
}

func TestBindErrors(t *testing.T) {
	bad := []Expr{
		Compare(EQ, Col("nope"), IntLit(1)),
		AndOf(Col("a"), Col("nope")),
		Or{Children: []Expr{Col("nope")}},
		Not{Child: Col("nope")},
		Arith{Op: Add, L: Col("nope"), R: IntLit(1)},
		Arith{Op: Add, L: IntLit(1), R: Col("nope")},
		Cmp{Op: EQ, L: IntLit(1), R: Col("nope")},
		nil,
	}
	for _, e := range bad {
		if _, err := Bind(e, testSchema); err == nil {
			t.Errorf("Bind(%v) should error", e)
		}
	}
	if _, err := BindPredicate(Col("nope"), testSchema); err == nil {
		t.Fatal("BindPredicate should propagate errors")
	}
}
