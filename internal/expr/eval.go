package expr

import (
	"fmt"

	"pyro/internal/types"
)

// Evaluator is a compiled expression: tuple in, datum out.
type Evaluator func(types.Tuple) types.Datum

// Bind compiles e against schema s, resolving column references to ordinals.
// It returns an error if a referenced column is absent or an operator is
// applied to a structurally impossible shape.
func Bind(e Expr, s *types.Schema) (Evaluator, error) {
	switch n := e.(type) {
	case ColRef:
		ord, ok := s.Ordinal(n.Name)
		if !ok {
			return nil, fmt.Errorf("expr: column %q not in schema %v", n.Name, s.Names())
		}
		return func(t types.Tuple) types.Datum { return t[ord] }, nil

	case Const:
		v := n.Value
		return func(types.Tuple) types.Datum { return v }, nil

	case Cmp:
		l, err := Bind(n.L, s)
		if err != nil {
			return nil, err
		}
		r, err := Bind(n.R, s)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(t types.Tuple) types.Datum {
			lv, rv := l(t), r(t)
			if lv.IsNull() || rv.IsNull() {
				return types.Null
			}
			c := lv.Compare(rv)
			var res bool
			switch op {
			case EQ:
				res = c == 0
			case NE:
				res = c != 0
			case LT:
				res = c < 0
			case LE:
				res = c <= 0
			case GT:
				res = c > 0
			case GE:
				res = c >= 0
			}
			return types.NewBool(res)
		}, nil

	case Arith:
		l, err := Bind(n.L, s)
		if err != nil {
			return nil, err
		}
		r, err := Bind(n.R, s)
		if err != nil {
			return nil, err
		}
		op := n.Op
		return func(t types.Tuple) types.Datum {
			lv, rv := l(t), r(t)
			if lv.IsNull() || rv.IsNull() {
				return types.Null
			}
			// Integer arithmetic if both sides are integers, else float.
			if lv.Kind() == types.KindInt && rv.Kind() == types.KindInt {
				a, b := lv.Int(), rv.Int()
				switch op {
				case Add:
					return types.NewInt(a + b)
				case Sub:
					return types.NewInt(a - b)
				case Mul:
					return types.NewInt(a * b)
				case Div:
					if b == 0 {
						return types.Null
					}
					return types.NewInt(a / b)
				}
			}
			a, b := lv.Float(), rv.Float()
			switch op {
			case Add:
				return types.NewFloat(a + b)
			case Sub:
				return types.NewFloat(a - b)
			case Mul:
				return types.NewFloat(a * b)
			case Div:
				if b == 0 {
					return types.Null
				}
				return types.NewFloat(a / b)
			}
			return types.Null
		}, nil

	case And:
		children := make([]Evaluator, len(n.Children))
		for i, c := range n.Children {
			ev, err := Bind(c, s)
			if err != nil {
				return nil, err
			}
			children[i] = ev
		}
		return func(t types.Tuple) types.Datum {
			sawNull := false
			for _, ev := range children {
				v := ev(t)
				if v.IsNull() {
					sawNull = true
					continue
				}
				if !v.Bool() {
					return types.NewBool(false)
				}
			}
			if sawNull {
				return types.Null
			}
			return types.NewBool(true)
		}, nil

	case Or:
		children := make([]Evaluator, len(n.Children))
		for i, c := range n.Children {
			ev, err := Bind(c, s)
			if err != nil {
				return nil, err
			}
			children[i] = ev
		}
		return func(t types.Tuple) types.Datum {
			sawNull := false
			for _, ev := range children {
				v := ev(t)
				if v.IsNull() {
					sawNull = true
					continue
				}
				if v.Bool() {
					return types.NewBool(true)
				}
			}
			if sawNull {
				return types.Null
			}
			return types.NewBool(false)
		}, nil

	case Not:
		child, err := Bind(n.Child, s)
		if err != nil {
			return nil, err
		}
		return func(t types.Tuple) types.Datum {
			v := child(t)
			if v.IsNull() {
				return types.Null
			}
			return types.NewBool(!v.Bool())
		}, nil

	case nil:
		return nil, fmt.Errorf("expr: nil expression")

	default:
		return nil, fmt.Errorf("expr: unknown node type %T", e)
	}
}

// BindPredicate compiles e as a filter predicate: NULL results map to false.
func BindPredicate(e Expr, s *types.Schema) (func(types.Tuple) bool, error) {
	ev, err := Bind(e, s)
	if err != nil {
		return nil, err
	}
	return func(t types.Tuple) bool {
		v := ev(t)
		return !v.IsNull() && v.Bool()
	}, nil
}
