// Package expr implements scalar expressions over tuples: column references,
// constants, comparisons, arithmetic and boolean connectives. Expressions
// are built as trees over column names and then compiled ("bound") against a
// schema into closures over column ordinals, so per-tuple evaluation does no
// name lookups.
//
// SQL three-valued logic is simplified to two-valued with NULL propagation:
// any comparison or arithmetic involving NULL yields NULL, and a NULL
// predicate result is treated as false by filters — the behaviour the
// paper's queries require.
package expr

import (
	"fmt"
	"strings"

	"pyro/internal/sortord"
	"pyro/internal/types"
)

// Expr is a scalar expression tree node.
type Expr interface {
	// String renders the expression in SQL-ish syntax.
	String() string
	// CollectColumns adds every referenced column name to set.
	CollectColumns(set sortord.AttrSet)
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	}
	return "?"
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// Col is shorthand for a column reference.
func Col(name string) ColRef { return ColRef{Name: name} }

func (c ColRef) String() string                     { return c.Name }
func (c ColRef) CollectColumns(set sortord.AttrSet) { set.Add(c.Name) }

// Const is a literal datum.
type Const struct{ Value types.Datum }

// IntLit, FloatLit, StrLit and BoolLit build literal expressions.
func IntLit(v int64) Const     { return Const{Value: types.NewInt(v)} }
func FloatLit(v float64) Const { return Const{Value: types.NewFloat(v)} }
func StrLit(v string) Const    { return Const{Value: types.NewString(v)} }
func BoolLit(v bool) Const     { return Const{Value: types.NewBool(v)} }

func (c Const) String() string                     { return c.Value.String() }
func (c Const) CollectColumns(set sortord.AttrSet) {}

// Cmp compares two subexpressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// Compare builds a comparison node.
func Compare(op CmpOp, l, r Expr) Cmp { return Cmp{Op: op, L: l, R: r} }

// Eq builds an equality between two columns (the common join-predicate form).
func Eq(l, r Expr) Cmp { return Cmp{Op: EQ, L: l, R: r} }

func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R)
}
func (c Cmp) CollectColumns(set sortord.AttrSet) {
	c.L.CollectColumns(set)
	c.R.CollectColumns(set)
}

// Arith is an arithmetic node over numerics.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}
func (a Arith) CollectColumns(set sortord.AttrSet) {
	a.L.CollectColumns(set)
	a.R.CollectColumns(set)
}

// And is an n-ary conjunction.
type And struct{ Children []Expr }

// AndOf builds a conjunction, flattening nested Ands.
func AndOf(children ...Expr) Expr {
	flat := make([]Expr, 0, len(children))
	for _, c := range children {
		if a, ok := c.(And); ok {
			flat = append(flat, a.Children...)
			continue
		}
		flat = append(flat, c)
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return And{Children: flat}
}

func (a And) String() string {
	parts := make([]string, len(a.Children))
	for i, c := range a.Children {
		parts[i] = c.String()
	}
	return strings.Join(parts, " AND ")
}
func (a And) CollectColumns(set sortord.AttrSet) {
	for _, c := range a.Children {
		c.CollectColumns(set)
	}
}

// Or is an n-ary disjunction.
type Or struct{ Children []Expr }

// OrOf builds a disjunction.
func OrOf(children ...Expr) Expr {
	if len(children) == 1 {
		return children[0]
	}
	return Or{Children: children}
}

func (o Or) String() string {
	parts := make([]string, len(o.Children))
	for i, c := range o.Children {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, " OR ") + ")"
}
func (o Or) CollectColumns(set sortord.AttrSet) {
	for _, c := range o.Children {
		c.CollectColumns(set)
	}
}

// Not negates a predicate.
type Not struct{ Child Expr }

func (n Not) String() string                     { return "NOT (" + n.Child.String() + ")" }
func (n Not) CollectColumns(set sortord.AttrSet) { n.Child.CollectColumns(set) }

// Columns returns the set of columns referenced by e.
func Columns(e Expr) sortord.AttrSet {
	s := sortord.NewAttrSet()
	e.CollectColumns(s)
	return s
}

// Conjuncts splits a predicate into its top-level AND factors.
func Conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(And); ok {
		var out []Expr
		for _, c := range a.Children {
			out = append(out, Conjuncts(c)...)
		}
		return out
	}
	return []Expr{e}
}

// EquiPair is one column-to-column equality conjunct of a join predicate.
type EquiPair struct {
	Left, Right string // column names on the left/right input
}

// SplitJoinPredicate classifies the conjuncts of a join predicate against
// the two input schemas: column=column equalities spanning the inputs become
// EquiPairs (normalised so .Left names a left column); everything else is
// returned as residual conjuncts to apply after the join.
func SplitJoinPredicate(pred Expr, left, right *types.Schema) (pairs []EquiPair, residual []Expr) {
	for _, c := range Conjuncts(pred) {
		cmp, ok := c.(Cmp)
		if ok && cmp.Op == EQ {
			lc, lok := cmp.L.(ColRef)
			rc, rok := cmp.R.(ColRef)
			if lok && rok {
				switch {
				case left.Has(lc.Name) && right.Has(rc.Name):
					pairs = append(pairs, EquiPair{Left: lc.Name, Right: rc.Name})
					continue
				case left.Has(rc.Name) && right.Has(lc.Name):
					pairs = append(pairs, EquiPair{Left: rc.Name, Right: lc.Name})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return pairs, residual
}
