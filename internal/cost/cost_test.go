package cost

import (
	"math"
	"testing"
)

func TestFullSortInMemory(t *testing.T) {
	m := DefaultModel()
	// Fits in memory: CPU only.
	got := m.FullSort(1000, 100)
	want := m.SortCPU(1000)
	if got != want {
		t.Fatalf("in-memory sort = %f, want cpu %f", got, want)
	}
	if m.FullSort(0, 0) != 0 || m.FullSort(1, 1) != 0 {
		t.Fatal("degenerate sorts are free")
	}
}

func TestFullSortExternalFormula(t *testing.T) {
	m := DefaultModel()
	// B = 50000, M = 10000: one merge pass => B*(2*1+1) = 150000.
	if got := m.FullSort(2_000_000, 50_000); got != 150_000 {
		t.Fatalf("external sort = %f, want 150000", got)
	}
	// B = M+1: still one pass.
	if got := m.FullSort(1_000_000, 10_001); got != 3*10_001 {
		t.Fatalf("barely external = %f", got)
	}
	// Very large: log_{M-1}(B/M) grows. B = M * (M-1)^2 needs 2 passes.
	b := m.MemoryBlocks * (m.MemoryBlocks - 1) * (m.MemoryBlocks - 1)
	if got := m.FullSort(b*10, b); got != float64(b)*5 {
		t.Fatalf("two-pass sort = %f, want %f", got, float64(b)*5)
	}
}

func TestPartialSort(t *testing.T) {
	m := DefaultModel()
	// 2M rows, 50k blocks, 1000 segments: each segment 2000 rows, 50
	// blocks => in-memory per segment. Cost = 1000 * cpu(2000).
	got := m.PartialSort(2_000_000, 50_000, 1000, 2)
	want := 1000 * m.SortCPU(2000)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("partial sort = %f, want %f", got, want)
	}
	// Full-order-satisfied: zero.
	if m.PartialSort(2_000_000, 50_000, 1000, 0) != 0 {
		t.Fatal("satisfied order costs nothing")
	}
	// Partial sort must beat a full external sort here.
	if full := m.FullSort(2_000_000, 50_000); got >= full {
		t.Fatalf("partial (%f) should beat full (%f)", got, full)
	}
}

func TestPartialSortSegmentsExceedMemory(t *testing.T) {
	m := DefaultModel()
	// 2 segments of 25000 blocks each: still external per segment.
	got := m.PartialSort(2_000_000, 50_000, 2, 1)
	perSeg := m.FullSort(1_000_000, 25_000)
	if got != 2*perSeg {
		t.Fatalf("oversized segments = %f, want %f", got, 2*perSeg)
	}
	// Degenerate inputs.
	if m.PartialSort(1, 1, 0, 1) != 0 {
		t.Fatal("single row free")
	}
	if got := m.PartialSort(100, 10, 0, 1); got != m.FullSort(100, 10) {
		t.Fatal("zero segments clamps to 1")
	}
}

func TestMonotonicity(t *testing.T) {
	m := DefaultModel()
	// More segments (finer partial order) never costs more.
	prev := math.Inf(1)
	for _, segs := range []int64{1, 10, 100, 1000, 10000} {
		c := m.PartialSort(10_000_000, 300_000, segs, 3)
		if c > prev {
			t.Fatalf("partial sort not monotone at %d segments: %f > %f", segs, c, prev)
		}
		prev = c
	}
}

func TestFullSortSpillParallelism(t *testing.T) {
	serial := DefaultModel()
	par := DefaultModel()
	par.SpillParallelism = 4

	// In-memory sorts are CPU-bound: spill pricing must not touch them.
	if par.FullSort(1000, 100) != serial.FullSort(1000, 100) {
		t.Fatal("spill parallelism must not reprice in-memory sorts")
	}
	// B = 50000, M = 10000, one pass: serial B·(2+1) = 150000; at S=4 the
	// pass term overlaps 4-way: B·(2/4+1) = 75000.
	if got := serial.FullSort(2_000_000, 50_000); got != 150_000 {
		t.Fatalf("serial external sort = %f, want 150000", got)
	}
	if got := par.FullSort(2_000_000, 50_000); got != 75_000 {
		t.Fatalf("parallel external sort = %f, want 75000", got)
	}
	// The final merge stays whole: cost never drops below one full read.
	huge := DefaultModel()
	huge.SpillParallelism = 1 << 20
	if got := huge.FullSort(2_000_000, 50_000); got < 50_000 {
		t.Fatalf("cost %f fell below the final-merge read", got)
	}
	// PartialSort prices its per-segment sorts through FullSort and must
	// inherit the overlap.
	if s, p := serial.PartialSort(2_000_000, 50_000, 2, 1), par.PartialSort(2_000_000, 50_000, 2, 1); p >= s {
		t.Fatalf("spilling partial sort did not get cheaper: serial %f, parallel %f", s, p)
	}
	// A zero (unset) parallelism prices serially, like 1.
	unset := DefaultModel()
	unset.SpillParallelism = 0
	if unset.FullSort(2_000_000, 50_000) != 150_000 {
		t.Fatal("unset spill parallelism must price serially")
	}
}

// TestSpillPricingFlipsPlanChoice is the satellite's acceptance case: the
// same two physical alternatives — a merge join fed by an external full
// sort versus a hash join — flip winners when the model prices the spill
// path as overlapped. Serially the sort's merge passes make the sort-based
// plan lose; at SpillParallelism 4 the sort halves and wins.
func TestSpillPricingFlipsPlanChoice(t *testing.T) {
	rows, blocks := int64(2_000_000), int64(50_000)
	sortPlan := func(m Model) float64 {
		return m.FullSort(rows, blocks) + m.MergeJoinCPU(rows, rows)
	}
	hashPlan := func(m Model) float64 {
		return m.HashJoinCost(rows, rows, 20_000, 20_000)
	}

	serial := DefaultModel()
	if sortPlan(serial) <= hashPlan(serial) {
		t.Fatalf("serial pricing: sort plan %f should lose to hash plan %f",
			sortPlan(serial), hashPlan(serial))
	}
	par := DefaultModel()
	par.SpillParallelism = 4
	if sortPlan(par) >= hashPlan(par) {
		t.Fatalf("parallel pricing: sort plan %f should beat hash plan %f — no flip",
			sortPlan(par), hashPlan(par))
	}
	// The unaffected alternative's price must not have moved.
	if hashPlan(par) != hashPlan(serial) {
		t.Fatal("hash join cost must be independent of spill parallelism")
	}
}

func TestJoinAndAggCosts(t *testing.T) {
	m := DefaultModel()
	if m.MergeJoinCPU(100, 200) != 300*m.TupleWeight {
		t.Fatal("merge join cpu")
	}
	// In-memory hash join: CPU only.
	inMem := m.HashJoinCost(1000, 1000, 100, 100)
	if inMem != 2000*m.HashWeight {
		t.Fatalf("in-memory hash join = %f", inMem)
	}
	// Build exceeds memory: partition I/O added.
	spill := m.HashJoinCost(1000, 1000, 20_000, 20_000)
	if spill != 2000*m.HashWeight+2*40_000 {
		t.Fatalf("spilling hash join = %f", spill)
	}
	if m.GroupAggCPU(500) != 500*m.TupleWeight {
		t.Fatal("group agg cpu")
	}
	if m.HashAggCost(500, 10) != 500*m.HashWeight {
		t.Fatal("hash agg in-memory")
	}
	if m.HashAggCost(500, 20_000) != 500*m.HashWeight+2*20_000 {
		t.Fatal("hash agg spill")
	}
	if m.ScanIO(42) != 42 {
		t.Fatal("scan io")
	}
	if m.FilterCPU(10) != 10*m.TupleWeight || m.ProjectCPU(10) != 10*m.TupleWeight {
		t.Fatal("per-tuple cpu")
	}
	if m.MergeUnionCPU(10) != 10*m.TupleWeight {
		t.Fatal("union cpu")
	}
}

func TestNLJoinCost(t *testing.T) {
	m := DefaultModel()
	// Outer fits in memory: inner spooled once + read once.
	if got := m.NLJoinCost(100, 500); got != 1000 {
		t.Fatalf("one-block NL join = %f", got)
	}
	// Outer = 3.5 memory units: 4 rescans + spool.
	if got := m.NLJoinCost(35_000, 500); got != 500+4*500 {
		t.Fatalf("multi-block NL join = %f", got)
	}
}

func TestSortCheaperWithPartialPrefixRealScenario(t *testing.T) {
	// The Query 3 decision (§6.2): sorting 6M lineitem index entries fully
	// on (partkey, suppkey) vs partially from (suppkey) to (suppkey,
	// partkey). D(suppkey) = 10000 segments.
	m := DefaultModel()
	rows, blocks := int64(6_000_000), int64(30_000)
	full := m.FullSort(rows, blocks)
	partial := m.PartialSort(rows, blocks, 10_000, 1)
	if partial >= full/10 {
		t.Fatalf("partial (%f) should be at least 10x cheaper than full (%f)", partial, full)
	}
}
