package cost

import (
	"math"
	"testing"
)

func TestFullSortInMemory(t *testing.T) {
	m := DefaultModel()
	// Fits in memory: CPU only, and fully blocking (Startup == Total).
	got := m.FullSort(1000, 100)
	want := m.SortCPU(1000)
	if got.Total != want {
		t.Fatalf("in-memory sort = %f, want cpu %f", got.Total, want)
	}
	if got.Startup != got.Total {
		t.Fatalf("in-memory sort must block on its whole CPU cost: startup %f, total %f",
			got.Startup, got.Total)
	}
	if m.FullSort(0, 0).Total != 0 || m.FullSort(1, 1).Total != 0 {
		t.Fatal("degenerate sorts are free")
	}
}

// paperModel zeroes the spill-layout refinement knobs so FullSort reduces
// to the paper's bare B·(2p + 1); the layout terms are pinned separately in
// TestSpillLayoutPricing.
func paperModel() Model {
	m := DefaultModel()
	m.SpillEntryFrac = 0
	m.KeyEncodeWeight = 0
	return m
}

func TestFullSortExternalFormula(t *testing.T) {
	m := paperModel()
	// B = 50000, M = 10000: one merge pass => B*(2*1+1) = 150000, of which
	// the final pipelined merge read (B) streams and the passes (2B) block.
	if got := m.FullSort(2_000_000, 50_000); got.Total != 150_000 {
		t.Fatalf("external sort = %f, want 150000", got.Total)
	} else if got.Startup != 100_000 {
		t.Fatalf("external sort startup = %f, want the 2pB pass term 100000", got.Startup)
	}
	// B = M+1: still one pass.
	if got := m.FullSort(1_000_000, 10_001); got.Total != 3*10_001 {
		t.Fatalf("barely external = %f", got.Total)
	}
	// Very large: log_{M-1}(B/M) grows. B = M * (M-1)^2 needs 2 passes.
	b := m.MemoryBlocks * (m.MemoryBlocks - 1) * (m.MemoryBlocks - 1)
	if got := m.FullSort(b*10, b); got.Total != float64(b)*5 {
		t.Fatalf("two-pass sort = %f, want %f", got.Total, float64(b)*5)
	}
}

func TestPartialSort(t *testing.T) {
	m := DefaultModel()
	// 2M rows, 50k blocks, 1000 segments: each segment 2000 rows, 50
	// blocks => in-memory per segment. Cost = 1000 * cpu(2000), and only
	// the first segment's sort blocks the first row.
	got := m.PartialSort(2_000_000, 50_000, 1000, 2)
	want := 1000 * m.SortCPU(2000)
	if math.Abs(got.Total-want) > 1e-9 {
		t.Fatalf("partial sort = %f, want %f", got.Total, want)
	}
	if math.Abs(got.Startup-m.SortCPU(2000)) > 1e-12 {
		t.Fatalf("partial sort startup = %f, want one segment sort %f", got.Startup, m.SortCPU(2000))
	}
	// Full-order-satisfied: zero.
	if m.PartialSort(2_000_000, 50_000, 1000, 0).Total != 0 {
		t.Fatal("satisfied order costs nothing")
	}
	// Partial sort must beat a full external sort here.
	if full := m.FullSort(2_000_000, 50_000); got.Total >= full.Total {
		t.Fatalf("partial (%f) should beat full (%f)", got.Total, full.Total)
	}
}

func TestPartialSortSegmentsExceedMemory(t *testing.T) {
	m := DefaultModel()
	// 2 segments of 25000 blocks each: still external per segment.
	got := m.PartialSort(2_000_000, 50_000, 2, 1)
	perSeg := m.FullSort(1_000_000, 25_000)
	if got.Total != 2*perSeg.Total {
		t.Fatalf("oversized segments = %f, want %f", got.Total, 2*perSeg.Total)
	}
	if got.Startup != perSeg.Total {
		t.Fatalf("oversized segments startup = %f, want one full segment %f", got.Startup, perSeg.Total)
	}
	// Degenerate inputs.
	if m.PartialSort(1, 1, 0, 1).Total != 0 {
		t.Fatal("single row free")
	}
	if got := m.PartialSort(100, 10, 0, 1); got.Total != m.FullSort(100, 10).Total {
		t.Fatal("zero segments clamps to 1")
	}
}

func TestMonotonicity(t *testing.T) {
	m := DefaultModel()
	// More segments (finer partial order) never costs more — in total or
	// in time-to-first-row.
	prevTotal, prevStartup := math.Inf(1), math.Inf(1)
	for _, segs := range []int64{1, 10, 100, 1000, 10000} {
		c := m.PartialSort(10_000_000, 300_000, segs, 3)
		if c.Total > prevTotal {
			t.Fatalf("partial sort not monotone at %d segments: %f > %f", segs, c.Total, prevTotal)
		}
		if c.Startup > prevStartup {
			t.Fatalf("partial sort startup not monotone at %d segments: %f > %f", segs, c.Startup, prevStartup)
		}
		prevTotal, prevStartup = c.Total, c.Startup
	}
}

// TestPrefixInterpolation pins the two-phase contract: Prefix(0) = 0,
// Prefix(N) ≡ Total (so unlimited plan comparisons are unchanged), blocking
// costs charge full Startup from the first row, and the per-row phase
// interpolates linearly.
func TestPrefixInterpolation(t *testing.T) {
	c := Cost{Startup: 100, Total: 300, Rows: 1000}
	if got := c.Prefix(0); got != 0 {
		t.Fatalf("Prefix(0) = %f, want 0", got)
	}
	if got := c.Prefix(-5); got != 0 {
		t.Fatalf("Prefix(-5) = %f, want 0", got)
	}
	if got := c.Prefix(1000); got != c.Total {
		t.Fatalf("Prefix(Rows) = %f, want Total %f", got, c.Total)
	}
	if got := c.Prefix(2000); got != c.Total {
		t.Fatalf("Prefix(>Rows) = %f, want Total %f", got, c.Total)
	}
	if got := c.Prefix(500); math.Abs(got-200) > 1e-12 {
		t.Fatalf("Prefix(500) = %f, want midpoint 200", got)
	}
	// The first row already pays the whole blocking phase.
	if got := c.Prefix(1); got < c.Startup {
		t.Fatalf("Prefix(1) = %f fell below Startup %f", got, c.Startup)
	}
	// Monotone in k.
	prev := 0.0
	for k := int64(0); k <= 1100; k += 100 {
		if p := c.Prefix(k); p < prev {
			t.Fatalf("Prefix not monotone at k=%d: %f < %f", k, p, prev)
		} else {
			prev = p
		}
	}
	// Unknown cardinality degrades to Total (never underestimates).
	u := Cost{Startup: 10, Total: 50, Rows: 0}
	if got := u.Prefix(1); got != u.Total {
		t.Fatalf("Prefix with unknown Rows = %f, want Total", got)
	}
	// A fully blocking cost is flat: every k pays everything.
	b := Blocking(42)
	if b.Prefix(1) != 42 || b.Startup != 42 || b.Total != 42 {
		t.Fatalf("Blocking(42) = %+v", b)
	}
	// A streaming cost starts at ~zero.
	s := Streaming(100, 1000)
	if s.Startup != 0 || s.Prefix(1) >= s.Total {
		t.Fatalf("Streaming cost should pay per row: %+v, Prefix(1)=%f", s, s.Prefix(1))
	}
}

// TestPrefixTopKSortFlip is the model-level version of the tentpole's plan
// flip: at full drain the partial sort and full sort are comparable (or the
// full sort can even win once segments spill), but at small k the partial
// sort's prefix cost is orders of magnitude lower because only ⌈k·D/N⌉
// segment sorts are charged while the full sort blocks on everything.
func TestPrefixTopKSortFlip(t *testing.T) {
	m := DefaultModel()
	rows, blocks := int64(10_000_000), int64(300_000)
	full := m.FullSort(rows, blocks)
	partial := m.PartialSort(rows, blocks, 10_000, 1)
	for _, k := range []int64{1, 100} {
		f, p := full.Prefix(k), partial.Prefix(k)
		if p*100 > f {
			t.Fatalf("k=%d: partial prefix %f not ≪ full prefix %f", k, p, f)
		}
	}
	// And at k = N both degrade to their totals.
	if full.Prefix(rows) != full.Total || partial.Prefix(rows) != partial.Total {
		t.Fatal("Prefix(N) must equal Total")
	}
}

func TestFullSortSpillParallelism(t *testing.T) {
	serial := paperModel()
	par := paperModel()
	par.SpillParallelism = 4

	// In-memory sorts are CPU-bound: spill pricing must not touch them.
	if par.FullSort(1000, 100) != serial.FullSort(1000, 100) {
		t.Fatal("spill parallelism must not reprice in-memory sorts")
	}
	// B = 50000, M = 10000, one pass: serial B·(2+1) = 150000; at S=4 the
	// pass term overlaps 4-way: B·(2/4+1) = 75000.
	if got := serial.FullSort(2_000_000, 50_000); got.Total != 150_000 {
		t.Fatalf("serial external sort = %f, want 150000", got.Total)
	}
	if got := par.FullSort(2_000_000, 50_000); got.Total != 75_000 {
		t.Fatalf("parallel external sort = %f, want 75000", got.Total)
	}
	// The final merge stays whole: cost never drops below one full read.
	huge := paperModel()
	huge.SpillParallelism = 1 << 20
	if got := huge.FullSort(2_000_000, 50_000); got.Total < 50_000 {
		t.Fatalf("cost %f fell below the final-merge read", got.Total)
	}
	// PartialSort prices its per-segment sorts through FullSort and must
	// inherit the overlap.
	if s, p := serial.PartialSort(2_000_000, 50_000, 2, 1), par.PartialSort(2_000_000, 50_000, 2, 1); p.Total >= s.Total {
		t.Fatalf("spilling partial sort did not get cheaper: serial %f, parallel %f", s.Total, p.Total)
	}
	// A zero (unset) parallelism prices serially, like 1.
	unset := paperModel()
	unset.SpillParallelism = 0
	if unset.FullSort(2_000_000, 50_000).Total != 150_000 {
		t.Fatal("unset spill parallelism must price serially")
	}
}

// TestSpillPricingFlipsPlanChoice is a PR 3 satellite's acceptance case: the
// same two physical alternatives — a merge join fed by an external full
// sort versus a hash join — flip winners when the model prices the spill
// path as overlapped. Serially the sort's merge passes make the sort-based
// plan lose; at SpillParallelism 4 the sort halves and wins.
func TestSpillPricingFlipsPlanChoice(t *testing.T) {
	rows, blocks := int64(2_000_000), int64(50_000)
	sortPlan := func(m Model) float64 {
		return m.FullSort(rows, blocks).Total + m.MergeJoinCPU(rows, rows)
	}
	hashPlan := func(m Model) float64 {
		return m.HashJoinCost(rows, rows, 20_000, 20_000).Total
	}

	serial := paperModel()
	if sortPlan(serial) <= hashPlan(serial) {
		t.Fatalf("serial pricing: sort plan %f should lose to hash plan %f",
			sortPlan(serial), hashPlan(serial))
	}
	par := paperModel()
	par.SpillParallelism = 4
	if sortPlan(par) >= hashPlan(par) {
		t.Fatalf("parallel pricing: sort plan %f should beat hash plan %f — no flip",
			sortPlan(par), hashPlan(par))
	}
	// The unaffected alternative's price must not have moved.
	if hashPlan(par) != hashPlan(serial) {
		t.Fatal("hash join cost must be independent of spill parallelism")
	}
}

func TestJoinAndAggCosts(t *testing.T) {
	m := DefaultModel()
	if m.MergeJoinCPU(100, 200) != 300*m.TupleWeight {
		t.Fatal("merge join cpu")
	}
	// In-memory hash join: CPU only; only the build side blocks.
	inMem := m.HashJoinCost(1000, 1000, 100, 100)
	if inMem.Total != 2000*m.HashWeight {
		t.Fatalf("in-memory hash join = %f", inMem.Total)
	}
	if inMem.Startup != 1000*m.HashWeight {
		t.Fatalf("hash join startup = %f, want the build side %f", inMem.Startup, 1000*m.HashWeight)
	}
	// Build exceeds memory: partition I/O added, all of it blocking.
	spill := m.HashJoinCost(1000, 1000, 20_000, 20_000)
	if spill.Total != 2000*m.HashWeight+2*40_000 {
		t.Fatalf("spilling hash join = %f", spill.Total)
	}
	if spill.Startup != 1000*m.HashWeight+2*40_000 {
		t.Fatalf("spilling hash join startup = %f", spill.Startup)
	}
	if m.GroupAggCPU(500) != 500*m.TupleWeight {
		t.Fatal("group agg cpu")
	}
	// Hash aggregation is fully blocking.
	if ha := m.HashAggCost(500, 10); ha.Total != 500*m.HashWeight || ha.Startup != ha.Total {
		t.Fatalf("hash agg in-memory = %+v", ha)
	}
	if ha := m.HashAggCost(500, 20_000); ha.Total != 500*m.HashWeight+2*20_000 || ha.Startup != ha.Total {
		t.Fatalf("hash agg spill = %+v", ha)
	}
	if m.ScanIO(42) != 42 {
		t.Fatal("scan io")
	}
	if m.FilterCPU(10) != 10*m.TupleWeight || m.ProjectCPU(10) != 10*m.TupleWeight {
		t.Fatal("per-tuple cpu")
	}
	if m.MergeUnionCPU(10) != 10*m.TupleWeight {
		t.Fatal("union cpu")
	}
}

func TestNLJoinCost(t *testing.T) {
	m := DefaultModel()
	// Outer fits in memory: inner spooled once + read once; the spool
	// write is the blocking half.
	if got := m.NLJoinCost(100, 500); got.Total != 1000 {
		t.Fatalf("one-block NL join = %f", got.Total)
	} else if got.Startup != 500 {
		t.Fatalf("NL join startup = %f, want the spool write 500", got.Startup)
	}
	// Outer = 3.5 memory units: 4 rescans + spool.
	if got := m.NLJoinCost(35_000, 500); got.Total != 500+4*500 {
		t.Fatalf("multi-block NL join = %f", got.Total)
	}
}

func TestSortCheaperWithPartialPrefixRealScenario(t *testing.T) {
	// The Query 3 decision (§6.2): sorting 6M lineitem index entries fully
	// on (partkey, suppkey) vs partially from (suppkey) to (suppkey,
	// partkey). D(suppkey) = 10000 segments.
	m := DefaultModel()
	rows, blocks := int64(6_000_000), int64(30_000)
	full := m.FullSort(rows, blocks)
	partial := m.PartialSort(rows, blocks, 10_000, 1)
	if partial.Total >= full.Total/10 {
		t.Fatalf("partial (%f) should be at least 10x cheaper than full (%f)", partial.Total, full.Total)
	}
}

// TestSpillLayoutPricing pins the layout-aware spill refinement: the flat
// entry layouts inflate every spill transfer by the entry-file fraction,
// the tuple layout instead pays a per-tuple key re-encode on every merge
// read, and with both knobs zeroed the branches collapse to the same paper
// formula.
func TestSpillLayoutPricing(t *testing.T) {
	rows, blocks := int64(2_000_000), int64(50_000)

	flat := DefaultModel()
	tuple := DefaultModel()
	tuple.TupleSpillLayout = true

	// Flat: one pass, B·(1+f)·(2 + 1) with f = 0.2 ⇒ 60000·3 = 180000.
	if got := flat.FullSort(rows, blocks); got.Total != 180_000 {
		t.Fatalf("flat external sort = %f, want 180000", got.Total)
	}
	// Tuple: bare I/O B·3 = 150000 plus the per-pass key work — rows ·
	// KeyEncodeWeight on the reduction pass and again on the final merge
	// read: 2·2M·2e-5 = 80.
	if got := tuple.FullSort(rows, blocks); got.Total != 150_080 {
		t.Fatalf("tuple external sort = %f, want 150080", got.Total)
	}
	// The tuple surcharge blocks with its pass and streams with the final
	// merge, exactly like the I/O it rides on.
	if got := tuple.FullSort(rows, blocks); got.Startup != 100_040 {
		t.Fatalf("tuple external sort startup = %f, want 100040", got.Startup)
	}
	// In-memory sorts never touch either knob.
	if flat.FullSort(1000, 100) != tuple.FullSort(1000, 100) {
		t.Fatal("entry layout must not reprice in-memory sorts")
	}
	// Zeroed knobs: both layouts price identically at the paper formula.
	pf, pt := paperModel(), paperModel()
	pt.TupleSpillLayout = true
	if pf.FullSort(rows, blocks) != pt.FullSort(rows, blocks) {
		t.Fatal("zeroed refinement knobs must collapse the layouts")
	}
	if pf.FullSort(rows, blocks).Total != 150_000 {
		t.Fatal("zeroed knobs must recover B·(2p+1)")
	}
}
