// Package cost implements the optimizer's cost model in I/O units, following
// §3.2 of the paper:
//
//	coe(e, ε, o)  = cpu-cost(e, o)                    if B(e) ≤ M
//	              = B(e)·(2·⌈log_{M-1}(B(e)/M)⌉ + 1)  otherwise
//
//	coe(e, o1, o2) = D(e, attrs(o2 ∧ o1)) · coe(e', ε, o2 − (o2 ∧ o1))
//	                 where e' = one partial-sort segment of e
//	                 (N(e') = N/D, B(e') = B/D, uniformity assumed)
//
// CPU work is translated into I/O units by per-operation weights, as the
// paper does ("CPU cost is appropriately translated into I/O cost units").
package cost

import "math"

// Model carries the cost parameters. The zero value is not usable; use
// DefaultModel and override fields as needed.
type Model struct {
	// PageSize is the disk block size in bytes.
	PageSize int
	// MemoryBlocks is M: blocks of main memory available to sorts.
	MemoryBlocks int64
	// CmpWeight converts one key comparison into I/O units.
	CmpWeight float64
	// HashWeight converts one hash-table operation into I/O units.
	HashWeight float64
	// TupleWeight converts one per-tuple pipeline step into I/O units.
	TupleWeight float64
	// SpillParallelism is the spill-path concurrency the executor will run
	// enforcers with (xsort.Config.SpillParallelism): above 1, an external
	// sort forms runs on worker flush jobs and merges reduction groups
	// concurrently, so the intermediate write-and-reread passes overlap
	// and their effective cost shrinks by roughly that factor. 0 or 1
	// prices the paper's serial spill path: coe(e, ε, o) = B·(2p + 1).
	// Callers should set this from an explicitly configured parallelism
	// only — never from GOMAXPROCS — or plan choice becomes a property of
	// the optimizing machine.
	SpillParallelism int
}

// DefaultModel mirrors the paper's environment: 4 KiB blocks and M = 10000
// blocks (40 MB) of sort memory.
func DefaultModel() Model {
	return Model{
		PageSize:         4096,
		MemoryBlocks:     10000,
		CmpWeight:        1e-5,
		HashWeight:       5e-5,
		TupleWeight:      1e-5,
		SpillParallelism: 1,
	}
}

// SortCPU is cpu-cost(e, o): the in-memory sort cost for rows tuples.
func (m Model) SortCPU(rows int64) float64 {
	if rows <= 1 {
		return 0
	}
	return float64(rows) * math.Log2(float64(rows)) * m.CmpWeight
}

// FullSort is coe(e, ε, o): the cost of sorting from scratch. The paper's
// external formula B·(2p + 1) charges two block transfers per intermediate
// pass plus the final read; with SpillParallelism S > 1 those passes run as
// S concurrent group merges (and run formation overlaps them), so the pass
// term is divided by S. The final pipelined merge is a single consumer-side
// stream and stays whole.
func (m Model) FullSort(rows, blocks int64) float64 {
	if rows <= 1 || blocks <= 0 {
		return 0
	}
	if blocks <= m.MemoryBlocks {
		return m.SortCPU(rows)
	}
	passes := math.Ceil(logBase(float64(m.MemoryBlocks-1), float64(blocks)/float64(m.MemoryBlocks)))
	if passes < 1 {
		passes = 1
	}
	spill := float64(m.SpillParallelism)
	if spill < 1 {
		spill = 1
	}
	return float64(blocks) * (2*passes/spill + 1)
}

func logBase(base, x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x) / math.Log(base)
}

// PartialSort is coe(e, o1, o2) expressed via the segment count: the caller
// computes D = D(e, attrs(o2 ∧ o1)) and passes it along with N(e) and B(e).
// Each of the D segments sorts independently (N/D rows, B/D blocks); if the
// suffix order is empty (o2 ≤ o1) the cost is zero.
func (m Model) PartialSort(rows, blocks, segments int64, suffixLen int) float64 {
	if suffixLen == 0 || rows <= 1 {
		return 0
	}
	if segments <= 0 {
		segments = 1
	}
	segRows := rows / segments
	if segRows < 1 {
		segRows = 1
	}
	segBlocks := blocks / segments
	if segBlocks < 1 {
		segBlocks = 1
	}
	return float64(segments) * m.FullSort(segRows, segBlocks)
}

// ScanIO is the cost of a sequential scan over blocks pages.
func (m Model) ScanIO(blocks int64) float64 { return float64(blocks) }

// MergeJoinCPU is CM: the per-tuple merging cost of a merge join.
func (m Model) MergeJoinCPU(leftRows, rightRows int64) float64 {
	return float64(leftRows+rightRows) * m.TupleWeight
}

// HashJoinCost covers build + probe CPU plus Grace-style partition I/O when
// the build side exceeds memory.
func (m Model) HashJoinCost(probeRows, buildRows, probeBlocks, buildBlocks int64) float64 {
	c := float64(probeRows+buildRows) * m.HashWeight
	if buildBlocks > m.MemoryBlocks {
		// One partition pass: write and re-read both inputs.
		c += 2 * float64(probeBlocks+buildBlocks)
	}
	return c
}

// GroupAggCPU is the streaming aggregate cost over sorted input.
func (m Model) GroupAggCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// HashAggCost covers hashing every input row, plus spill I/O when the group
// state exceeds memory.
func (m Model) HashAggCost(rows, groupBlocks int64) float64 {
	c := float64(rows) * m.HashWeight
	if groupBlocks > m.MemoryBlocks {
		c += 2 * float64(groupBlocks)
	}
	return c
}

// FilterCPU is the per-tuple predicate cost.
func (m Model) FilterCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// ProjectCPU is the per-tuple projection cost.
func (m Model) ProjectCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// MergeUnionCPU is the per-tuple merge cost of a sorted union.
func (m Model) MergeUnionCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// FetchCost is the deferred-fetch cost (§7): one random heap page read plus
// one seek per fetched row, with the clustering index's inner nodes cached.
func (m Model) FetchCost(rows int64) float64 { return 2 * float64(rows) }

// NLJoinCost is block nested loops: spool the inner once, then rescan it
// per outer block group.
func (m Model) NLJoinCost(outerBlocks, innerBlocks int64) float64 {
	groups := outerBlocks / m.MemoryBlocks
	if outerBlocks%m.MemoryBlocks != 0 || groups == 0 {
		groups++
	}
	return float64(innerBlocks) + float64(groups)*float64(innerBlocks)
}
