// Package cost implements the optimizer's cost model in I/O units, following
// §3.2 of the paper:
//
//	coe(e, ε, o)  = cpu-cost(e, o)                    if B(e) ≤ M
//	              = B(e)·(2·⌈log_{M-1}(B(e)/M)⌉ + 1)  otherwise
//
//	coe(e, o1, o2) = D(e, attrs(o2 ∧ o1)) · coe(e', ε, o2 − (o2 ∧ o1))
//	                 where e' = one partial-sort segment of e
//	                 (N(e') = N/D, B(e') = B/D, uniformity assumed)
//
// CPU work is translated into I/O units by per-operation weights, as the
// paper does ("CPU cost is appropriately translated into I/O cost units").
//
// Costs are two-phase: every operator formula is split into the blocking
// work that must happen before the first output row exists (Startup — an
// external sort's run formation and reduction passes, a hash join's build,
// SRS's phase-1 fill) and the full-drain total (Total). Cost.Prefix(k)
// interpolates the cost of producing only the first k rows, which is what a
// Top-K consumer pays under a pipelined plan: a partial sort's prefix cost
// grows one segment sort at a time, while a blocking operator charges its
// full Startup before the first row no matter how small k is (§3.1
// benefit 2, §7 Top-K).
package cost

import "math"

// Cost is the two-phase cost of producing a tuple stream: Startup is the
// blocking work spent before the first output row, Total the full-drain
// work, and Rows the output cardinality Total corresponds to. The zero
// value is a free, empty stream. Invariant: 0 ≤ Startup ≤ Total.
//
// Plan costs compose Cost values: a streaming operator adds per-row work to
// Total only and inherits its child's Startup; a blocking operator folds
// its child's entire Total into Startup. Prefix interpolates between the
// two phases, so comparing plans by Prefix(k) is exactly the paper's
// full-drain comparison at k ≥ Rows and a time-to-first-row comparison at
// k = 1.
type Cost struct {
	Startup float64
	Total   float64
	Rows    int64
}

// Prefix returns the cost of producing the first k output rows: 0 for
// k ≤ 0 (a LIMIT 0 consumer needs nothing), Total for k ≥ Rows (so
// Prefix(N) ≡ Total and unlimited comparisons are unchanged), and the
// linear interpolation Startup + (Total−Startup)·k/Rows in between — the
// per-row phase is assumed uniform, which for a partial sort of D uniform
// segments makes Prefix(k) track the ⌈k·D/N⌉ segment sorts the paper's
// operator actually performs.
func (c Cost) Prefix(k int64) float64 {
	if k <= 0 {
		return 0
	}
	if c.Rows <= 0 || k >= c.Rows {
		return c.Total
	}
	return c.Startup + (c.Total-c.Startup)*float64(k)/float64(c.Rows)
}

// Streaming builds the cost of a fully pipelined operator phase: no
// blocking startup, work spread uniformly over rows output rows.
func Streaming(work float64, rows int64) Cost {
	return Cost{Startup: 0, Total: work, Rows: rows}
}

// Blocking builds the cost of a phase that completes entirely before the
// first output row (hash build, SRS input consumption).
func Blocking(work float64) Cost {
	return Cost{Startup: work, Total: work}
}

// Model carries the cost parameters. The zero value is not usable; use
// DefaultModel and override fields as needed.
type Model struct {
	// PageSize is the disk block size in bytes.
	PageSize int
	// MemoryBlocks is M: blocks of main memory available to sorts.
	MemoryBlocks int64
	// CmpWeight converts one key comparison into I/O units.
	CmpWeight float64
	// HashWeight converts one hash-table operation into I/O units.
	HashWeight float64
	// TupleWeight converts one per-tuple pipeline step into I/O units.
	TupleWeight float64
	// SpillParallelism is the spill-path concurrency the executor will run
	// enforcers with (xsort.Config.SpillParallelism): above 1, an external
	// sort forms runs on worker flush jobs and merges reduction groups
	// concurrently, so the intermediate write-and-reread passes overlap
	// and their effective cost shrinks by roughly that factor. 0 or 1
	// prices the paper's serial spill path: coe(e, ε, o) = B·(2p + 1).
	// Callers should set this from an explicitly configured parallelism
	// only — never from GOMAXPROCS — or plan choice becomes a property of
	// the optimizing machine.
	SpillParallelism int
	// SpillEntryFrac is the I/O surcharge of the flat spill layouts: the
	// fixed-width entry file each run carries alongside its payload pages,
	// as a fraction of the payload blocks. Every reduction pass writes and
	// re-reads it, and the final merge reads it once.
	SpillEntryFrac float64
	// KeyEncodeWeight converts one sort-key normalization into I/O units.
	// Only the tuple spill layout pays it on merge reads: re-reading a
	// tuple run re-encodes every tuple's key per pass, while flat runs
	// carry their keys in the entry file — a key is encoded once per sort
	// at input collection no matter how many passes rewrite its run. This
	// is the "cheaper flat-run I/O": each flat page read costs just the
	// transfer, with no per-tuple key work riding on it.
	KeyEncodeWeight float64
	// TupleSpillLayout prices external sorts for the legacy tuple-only
	// spill format (xsort.LayoutTuple): no entry-file I/O, but every merge
	// read pays KeyEncodeWeight per tuple. The zero value prices the
	// default flat layouts — entry-file I/O, encode-free merge reads.
	// Callers set it from the configured sort entry layout.
	TupleSpillLayout bool
}

// DefaultModel mirrors the paper's environment: 4 KiB blocks and M = 10000
// blocks (40 MB) of sort memory.
func DefaultModel() Model {
	return Model{
		PageSize:         4096,
		MemoryBlocks:     10000,
		CmpWeight:        1e-5,
		HashWeight:       5e-5,
		TupleWeight:      1e-5,
		SpillParallelism: 1,
		SpillEntryFrac:   0.2,
		KeyEncodeWeight:  2e-5,
	}
}

// SortCPU is cpu-cost(e, o): the in-memory sort cost for rows tuples.
func (m Model) SortCPU(rows int64) float64 {
	if rows <= 1 {
		return 0
	}
	return float64(rows) * math.Log2(float64(rows)) * m.CmpWeight
}

// FullSort is coe(e, ε, o): the cost of sorting from scratch. The paper's
// external formula B·(2p + 1) charges two block transfers per intermediate
// pass plus the final read; with SpillParallelism S > 1 those passes run as
// S concurrent group merges (and run formation overlaps them), so the pass
// term is divided by S. The final pipelined merge is a single consumer-side
// stream and stays whole.
//
// The split: an in-memory sort blocks on its entire CPU cost (the buffer
// must be full and sorted before the smallest key is known). An external
// sort blocks on run formation and the intermediate passes (B·2p/S) but
// streams the final merge read (B) one block at a time.
//
// The spill term is layout-aware: the flat entry layouts inflate every
// spill transfer by SpillEntryFrac (the entry file travels with the
// payload), while the tuple layout instead pays KeyEncodeWeight per tuple
// per merge read — a pass over a tuple run re-normalizes every key. With
// both refinement knobs zeroed either branch reduces to the paper's
// B·(2p + 1).
func (m Model) FullSort(rows, blocks int64) Cost {
	if rows <= 1 || blocks <= 0 {
		return Cost{Rows: rows}
	}
	if blocks <= m.MemoryBlocks {
		return Cost{Startup: m.SortCPU(rows), Total: m.SortCPU(rows), Rows: rows}
	}
	passes := math.Ceil(logBase(float64(m.MemoryBlocks-1), float64(blocks)/float64(m.MemoryBlocks)))
	if passes < 1 {
		passes = 1
	}
	spill := float64(m.SpillParallelism)
	if spill < 1 {
		spill = 1
	}
	spillBlocks := float64(blocks)
	var passCPU float64 // per-pass key work riding on the merge reads
	if m.TupleSpillLayout {
		passCPU = float64(rows) * m.KeyEncodeWeight
	} else {
		spillBlocks *= 1 + m.SpillEntryFrac
	}
	startup := passes * (spillBlocks*2/spill + passCPU)
	return Cost{
		Startup: startup,
		Total:   startup + spillBlocks + passCPU, // final merge read
		Rows:    rows,
	}
}

func logBase(base, x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log(x) / math.Log(base)
}

// PartialSort is coe(e, o1, o2) expressed via the segment count: the caller
// computes D = D(e, attrs(o2 ∧ o1)) and passes it along with N(e) and B(e).
// Each of the D segments sorts independently (N/D rows, B/D blocks); if the
// suffix order is empty (o2 ≤ o1) the cost is zero.
//
// The split: only the first segment must be collected and sorted before the
// first row exists (Startup = one segment's full sort), and each further
// block of N/D rows costs one more segment sort — the property that makes
// Prefix(k) charge ≈ ⌈k·D/N⌉ segment sorts and a Top-K plan comparison
// favor the pipelined enforcer.
func (m Model) PartialSort(rows, blocks, segments int64, suffixLen int) Cost {
	if suffixLen == 0 || rows <= 1 {
		return Cost{Rows: rows}
	}
	if segments <= 0 {
		segments = 1
	}
	segRows := rows / segments
	if segRows < 1 {
		segRows = 1
	}
	segBlocks := blocks / segments
	if segBlocks < 1 {
		segBlocks = 1
	}
	seg := m.FullSort(segRows, segBlocks)
	return Cost{
		Startup: seg.Total,
		Total:   float64(segments) * seg.Total,
		Rows:    rows,
	}
}

// ScanIO is the cost of a sequential scan over blocks pages (streaming:
// pages are read as the consumer pulls).
func (m Model) ScanIO(blocks int64) float64 { return float64(blocks) }

// MergeJoinCPU is CM: the per-tuple merging cost of a merge join
// (streaming: both inputs are consumed in step with output production).
func (m Model) MergeJoinCPU(leftRows, rightRows int64) float64 {
	return float64(leftRows+rightRows) * m.TupleWeight
}

// HashJoinCost covers build + probe CPU plus Grace-style partition I/O when
// the build side exceeds memory. The build phase (hashing every build row,
// and the full partition pass when spilling) blocks before the first output
// row; probing streams.
func (m Model) HashJoinCost(probeRows, buildRows, probeBlocks, buildBlocks int64) Cost {
	total := float64(probeRows+buildRows) * m.HashWeight
	startup := float64(buildRows) * m.HashWeight
	if buildBlocks > m.MemoryBlocks {
		// One partition pass: write and re-read both inputs — all of it
		// before the first match can be emitted.
		io := 2 * float64(probeBlocks+buildBlocks)
		total += io
		startup += io
	}
	return Cost{Startup: startup, Total: total, Rows: probeRows}
}

// GroupAggCPU is the streaming aggregate cost over sorted input.
func (m Model) GroupAggCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// HashAggCost covers hashing every input row, plus spill I/O when the group
// state exceeds memory. Hash aggregation is fully blocking: no group is
// final until the last input row has been consumed.
func (m Model) HashAggCost(rows, groupBlocks int64) Cost {
	c := float64(rows) * m.HashWeight
	if groupBlocks > m.MemoryBlocks {
		c += 2 * float64(groupBlocks)
	}
	return Blocking(c)
}

// FilterCPU is the per-tuple predicate cost (streaming).
func (m Model) FilterCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// ProjectCPU is the per-tuple projection cost (streaming).
func (m Model) ProjectCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// MergeUnionCPU is the per-tuple merge cost of a sorted union (streaming).
func (m Model) MergeUnionCPU(rows int64) float64 { return float64(rows) * m.TupleWeight }

// FetchCost is the deferred-fetch cost (§7): one random heap page read plus
// one seek per fetched row, with the clustering index's inner nodes cached
// (streaming: one lookup per consumed row).
func (m Model) FetchCost(rows int64) float64 { return 2 * float64(rows) }

// NLJoinCost is block nested loops: spool the inner once, then rescan it
// per outer block group. The spool write blocks before the first row; the
// rescans stream with output production.
func (m Model) NLJoinCost(outerBlocks, innerBlocks int64) Cost {
	groups := outerBlocks / m.MemoryBlocks
	if outerBlocks%m.MemoryBlocks != 0 || groups == 0 {
		groups++
	}
	return Cost{
		Startup: float64(innerBlocks),
		Total:   float64(innerBlocks) + float64(groups)*float64(innerBlocks),
	}
}
