package keys

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pyro/internal/sortord"
	"pyro/internal/types"
)

// refCompare is the comparator-semantics reference the encoding must agree
// with: per column, NULL placement by flag, then types.Datum.Compare,
// inverted for descending columns.
func refCompare(cols []Col, a, b types.Tuple) int {
	for _, col := range cols {
		da, db := a[col.Ordinal], b[col.Ordinal]
		an, bn := da.IsNull(), db.IsNull()
		if an || bn {
			switch {
			case an && bn:
				continue
			case an:
				if col.NullsLast {
					return 1
				}
				return -1
			default:
				if col.NullsLast {
					return -1
				}
				return 1
			}
		}
		c := da.Compare(db)
		if col.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// randDatum returns a random datum of kind k, NULL with probability ~1/5.
// Values are drawn from small domains so collisions (the equality case)
// actually occur.
func randDatum(r *rand.Rand, k types.Kind) types.Datum {
	if r.Intn(5) == 0 {
		return types.Null
	}
	switch k {
	case types.KindInt:
		switch r.Intn(4) {
		case 0:
			return types.NewInt(int64(r.Intn(5)) - 2)
		case 1:
			return types.NewInt(math.MaxInt64 - int64(r.Intn(3)))
		case 2:
			return types.NewInt(math.MinInt64 + int64(r.Intn(3)))
		default:
			return types.NewInt(r.Int63() - r.Int63())
		}
	case types.KindFloat:
		switch r.Intn(5) {
		case 0:
			return types.NewFloat(0)
		case 1:
			return types.NewFloat(math.Copysign(0, -1)) // -0.0: must equal +0.0
		case 2:
			return types.NewFloat(math.Inf(1 - 2*r.Intn(2)))
		case 3:
			return types.NewFloat(float64(r.Intn(7)-3) / 2)
		default:
			return types.NewFloat(r.NormFloat64() * math.Pow(10, float64(r.Intn(40)-20)))
		}
	case types.KindBool:
		return types.NewBool(r.Intn(2) == 0)
	case types.KindString:
		// Adversarial alphabet: NULs (escaping), 0xFF (escape byte),
		// shared prefixes (terminator ordering).
		alphabet := []byte{0x00, 0x01, 'a', 'b', 0xFE, 0xFF}
		n := r.Intn(6)
		s := make([]byte, n)
		for i := range s {
			s[i] = alphabet[r.Intn(len(alphabet))]
		}
		return types.NewString(string(s))
	}
	return types.Null
}

var allKinds = []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool}

// TestEncodingAgreesWithComparator is the core property: for randomized
// multi-column specs across all supported types, directions and null
// placements, bytes.Compare over encoded keys equals the reference
// comparator.
func TestEncodingAgreesWithComparator(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		ncols := 1 + r.Intn(4)
		cols := make([]Col, ncols)
		for i := range cols {
			cols[i] = Col{
				Ordinal:   i,
				Kind:      allKinds[r.Intn(len(allKinds))],
				Desc:      r.Intn(2) == 0,
				NullsLast: r.Intn(2) == 0,
			}
		}
		c, err := New(cols)
		if err != nil {
			t.Fatal(err)
		}
		a := make(types.Tuple, ncols)
		b := make(types.Tuple, ncols)
		for i, col := range cols {
			a[i] = randDatum(r, col.Kind)
			b[i] = randDatum(r, col.Kind)
			if r.Intn(3) == 0 {
				b[i] = a[i] // force ties on a prefix of the key
			}
		}
		ka := c.Append(nil, a)
		kb := c.Append(nil, b)
		got := sign(bytes.Compare(ka, kb))
		want := sign(refCompare(cols, a, b))
		if got != want {
			t.Fatalf("spec %+v:\n a=%v key=%x\n b=%v key=%x\n bytes.Compare=%d, comparator=%d",
				cols, a, ka, b, kb, got, want)
		}
	}
}

// TestDefaultCodecMatchesKeySpec checks the engine wiring: a codec built
// from a schema+order (or from the resolved KeySpec) reproduces
// types.KeySpec.Compare exactly — that is the contract the sort operators
// rely on when swapping comparator calls for byte compares.
func TestDefaultCodecMatchesKeySpec(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "i", Kind: types.KindInt},
		types.Column{Name: "f", Kind: types.KindFloat},
		types.Column{Name: "s", Kind: types.KindString},
		types.Column{Name: "b", Kind: types.KindBool},
	)
	order := sortord.New("s", "i", "b", "f")
	ks := types.MustKeySpec(schema, order)

	fromOrder, err := NewCodec(schema, order)
	if err != nil {
		t.Fatal(err)
	}
	fromSpec, err := FromKeySpec(ks)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(7))
	gen := func() types.Tuple {
		return types.NewTuple(
			randDatum(r, types.KindInt),
			randDatum(r, types.KindFloat),
			randDatum(r, types.KindString),
			randDatum(r, types.KindBool),
		)
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := gen(), gen()
		want := sign(ks.Compare(a, b))
		for _, c := range []*Codec{fromOrder, fromSpec} {
			got := sign(bytes.Compare(c.Append(nil, a), c.Append(nil, b)))
			if got != want {
				t.Fatalf("a=%v b=%v: key compare %d, KeySpec.Compare %d", a, b, got, want)
			}
		}
	}
}

// TestSuffixCodec checks that Suffix(k) encodes exactly the trailing
// columns: the key of the suffix codec equals the tail of the full key
// region-wise (by comparing order, not layout).
func TestSuffixCodec(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindString},
		types.Column{Name: "c", Kind: types.KindFloat},
	)
	full, err := NewCodec(schema, sortord.New("a", "b", "c"))
	if err != nil {
		t.Fatal(err)
	}
	suffix := full.Suffix(1)
	if suffix.Len() != 2 {
		t.Fatalf("suffix len = %d, want 2", suffix.Len())
	}
	ks := types.MustKeySpec(schema, sortord.New("a", "b", "c"))
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		a := types.NewTuple(types.NewInt(1), randDatum(r, types.KindString), randDatum(r, types.KindFloat))
		b := types.NewTuple(types.NewInt(1), randDatum(r, types.KindString), randDatum(r, types.KindFloat))
		got := sign(bytes.Compare(suffix.Append(nil, a), suffix.Append(nil, b)))
		want := sign(ks.CompareSuffix(a, b, 1))
		if got != want {
			t.Fatalf("a=%v b=%v: suffix key compare %d, CompareSuffix %d", a, b, got, want)
		}
	}
}

// TestPrefixLen: the arithmetic prefix length must equal the bytes Append
// actually writes for the prefix columns — i.e. the full key is exactly
// the k-column prefix encoding followed by the Suffix(k) encoding, and
// PrefixLen is the split point. This is the contract MRS relies on when it
// slices full keys past a segment's shared `given` prefix.
func TestPrefixLen(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		ncols := 1 + r.Intn(4)
		cols := make([]Col, ncols)
		for i := range cols {
			cols[i] = Col{
				Ordinal:   i,
				Kind:      allKinds[r.Intn(len(allKinds))],
				Desc:      r.Intn(2) == 0,
				NullsLast: r.Intn(2) == 0,
			}
		}
		c, err := New(cols)
		if err != nil {
			t.Fatal(err)
		}
		tup := make(types.Tuple, ncols)
		for i, col := range cols {
			tup[i] = randDatum(r, col.Kind)
		}
		full := c.Append(nil, tup)
		for k := 0; k <= ncols; k++ {
			n := c.PrefixLen(tup, k)
			suffix := c.Suffix(k).Append(nil, tup)
			if n+len(suffix) != len(full) || !bytes.Equal(full[n:], suffix) {
				t.Fatalf("spec %+v tuple %v: PrefixLen(%d) = %d, but full key %x splits into suffix %x",
					cols, tup, k, n, full, suffix)
			}
		}
	}
	c, _ := New([]Col{{Ordinal: 0, Kind: types.KindInt}})
	for _, bad := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PrefixLen(%d) out of range should panic", bad)
				}
			}()
			c.PrefixLen(types.NewTuple(types.NewInt(1)), bad)
		}()
	}
}

// TestPrefixFreedom: a key is never a strict prefix of another key under
// the same codec when the keys differ — otherwise sort order would depend
// on what follows the key in a longer buffer.
func TestPrefixFreedom(t *testing.T) {
	cols := []Col{{Ordinal: 0, Kind: types.KindString}}
	c, err := New(cols)
	if err != nil {
		t.Fatal(err)
	}
	vals := []string{"", "a", "ab", "a\x00", "a\x00b", "a\xff", "\x00", "\xff"}
	for _, va := range vals {
		for _, vb := range vals {
			ka := c.Append(nil, types.NewTuple(types.NewString(va)))
			kb := c.Append(nil, types.NewTuple(types.NewString(vb)))
			if va != vb && (bytes.HasPrefix(ka, kb) || bytes.HasPrefix(kb, ka)) {
				t.Fatalf("keys of %q and %q are prefix-related: %x / %x", va, vb, ka, kb)
			}
		}
	}
}

func TestCodecValidation(t *testing.T) {
	if _, err := New([]Col{{Ordinal: 0, Kind: types.KindNull}}); err == nil {
		t.Fatal("KindNull key column should be rejected")
	}
	if _, err := New([]Col{{Ordinal: -1, Kind: types.KindInt}}); err == nil {
		t.Fatal("negative ordinal should be rejected")
	}
	if _, err := FromKeySpec(types.KeySpec{Ordinals: []int{0}}); err == nil {
		t.Fatal("KeySpec without kinds should be rejected")
	}
	schema := types.NewSchema(types.Column{Name: "a", Kind: types.KindInt})
	if _, err := NewCodec(schema, sortord.New("zz")); err == nil {
		t.Fatal("unknown attribute should be rejected")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	c, err := New([]Col{{Ordinal: 0, Kind: types.KindInt}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("encoding a string datum into an int key column should panic")
		}
	}()
	c.Append(nil, types.NewTuple(types.NewString("oops")))
}

// fixedCompare is the entry-comparison rule under test: compare the fixed
// prefixes, consult the full keys (the blob) only when both were truncated.
func fixedCompare(fa, fb []byte, ta, tb bool, ka, kb []byte) int {
	if c := bytes.Compare(fa, fb); c != 0 {
		return sign(c)
	}
	if ta && tb {
		return sign(bytes.Compare(ka, kb))
	}
	return 0
}

// TestAppendFixedAdversarial pins the fixed-width prefix + blob tie-break
// against full bytes.Compare on the hand-picked adversarial shapes: long
// shared string prefixes, keys landing exactly on the cutoff width, NULL
// markers in both placements, and descending (payload-inverted) columns.
func TestAppendFixedAdversarial(t *testing.T) {
	asc := []Col{{Ordinal: 0, Kind: types.KindString}}
	desc := []Col{{Ordinal: 0, Kind: types.KindString, Desc: true}}
	intCols := []Col{{Ordinal: 0, Kind: types.KindInt}, {Ordinal: 1, Kind: types.KindInt}}
	nullsLast := []Col{{Ordinal: 0, Kind: types.KindInt, NullsLast: true}}
	cases := []struct {
		name  string
		cols  []Col
		a, b  types.Tuple
		width int
	}{
		{"shared-prefix-diverge-past-cutoff", asc,
			types.NewTuple(types.NewString("prefixprefixAAA")),
			types.NewTuple(types.NewString("prefixprefixAAB")), 8},
		{"one-extends-the-other", asc,
			types.NewTuple(types.NewString("prefixprefix")),
			types.NewTuple(types.NewString("prefixprefixA")), 8},
		{"exact-cutoff-length", asc,
			// marker + 5 content + 2 terminator = 8 = width exactly.
			types.NewTuple(types.NewString("abcde")),
			types.NewTuple(types.NewString("abcde")), 8},
		{"complete-vs-truncated-at-width", asc,
			types.NewTuple(types.NewString("abcde")),
			types.NewTuple(types.NewString("abcdef")), 8},
		{"nul-escape-straddles-cutoff", asc,
			types.NewTuple(types.NewString("abc\x00def")),
			types.NewTuple(types.NewString("abc\x00dex")), 5},
		{"null-vs-value", nullsLast,
			types.NewTuple(types.Null),
			types.NewTuple(types.NewInt(42)), 4},
		{"desc-shared-prefix", desc,
			types.NewTuple(types.NewString("zzzzzzzzzz1")),
			types.NewTuple(types.NewString("zzzzzzzzzz2")), 6},
		{"second-int-truncated", intCols,
			types.NewTuple(types.NewInt(7), types.NewInt(100)),
			types.NewTuple(types.NewInt(7), types.NewInt(200)), 12},
		{"equal-truncated", intCols,
			types.NewTuple(types.NewInt(7), types.NewInt(100)),
			types.NewTuple(types.NewInt(7), types.NewInt(100)), 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(tc.cols)
			if err != nil {
				t.Fatal(err)
			}
			ka, kb := c.Append(nil, tc.a), c.Append(nil, tc.b)
			fa, ta := c.AppendFixed(nil, tc.a, tc.width)
			fb, tb := c.AppendFixed(nil, tc.b, tc.width)
			if len(fa) != tc.width || len(fb) != tc.width {
				t.Fatalf("widths %d/%d, want %d", len(fa), len(fb), tc.width)
			}
			got := fixedCompare(fa, fb, ta, tb, ka, kb)
			if want := sign(bytes.Compare(ka, kb)); got != want {
				t.Fatalf("fixed compare = %d, full compare = %d\n a key=%x fixed=%x trunc=%v\n b key=%x fixed=%x trunc=%v",
					got, want, ka, fa, ta, kb, fb, tb)
			}
		})
	}
}

// TestFixedWidthHint pins the width heuristic: fixed-size columns are never
// truncated, strings get a bounded prefix, and the cap bounds the total.
func TestFixedWidthHint(t *testing.T) {
	c, err := New([]Col{
		{Ordinal: 0, Kind: types.KindInt},
		{Ordinal: 1, Kind: types.KindInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := c.FixedWidthHint(0); w != 18 {
		t.Errorf("two ints: hint = %d, want 18", w)
	}
	if w := c.FixedWidthHint(1); w != 9 {
		t.Errorf("int suffix: hint = %d, want 9", w)
	}
	// A full two-int key never truncates at its hint width.
	tup := types.NewTuple(types.NewInt(-5), types.NewInt(9))
	if _, trunc := c.AppendFixed(nil, tup, c.FixedWidthHint(0)); trunc {
		t.Error("fixed-size key truncated at its own hint width")
	}
	long, err := New([]Col{
		{Ordinal: 0, Kind: types.KindString},
		{Ordinal: 1, Kind: types.KindString},
		{Ordinal: 2, Kind: types.KindString},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w := long.FixedWidthHint(0); w != fixedWidthCap {
		t.Errorf("three strings: hint = %d, want cap %d", w, fixedWidthCap)
	}
}
