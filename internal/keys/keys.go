// Package keys implements normalized ("memcmp-able") sort keys: each
// tuple's sort key is encoded once into a byte string whose bytewise
// order equals the tuple order under the sort specification, so every
// subsequent key comparison is a single bytes.Compare instead of a
// field-by-field walk through typed datums. This is the standard trick
// of production sorters (DuckDB, MonetDB-style normalized keys): run
// formation and multiway merging become branch-light byte comparisons.
//
// Keys are decode-free by design: a key never needs to be turned back
// into datums. Sorters carry the originating tuple (or its index)
// alongside the key and emit the tuple, never the key.
//
// Encoding, per key column:
//
//   - a marker byte places NULLs: 0x00 (nulls first) or 0xFF (nulls
//     last) for NULL, 0x01 for any non-null value;
//   - Int64 is encoded big-endian with the sign bit flipped;
//   - Float64 is encoded with the usual IEEE-754 total-order flip
//     (negative values bit-inverted, positives get the sign bit set);
//     -0.0 is normalized to +0.0 so it compares equal, matching
//     types.Datum.Compare;
//   - Bool is one byte, 0 or 1;
//   - String escapes 0x00 as {0x00, 0xFF} and terminates with
//     {0x00, 0x01}, keeping the encoding prefix-free so a short string
//     sorts before its extensions and later columns cannot bleed in;
//   - descending columns invert the payload bytes (the marker is left
//     alone: NULL placement is independent of direction).
//
// The guarantee, verified by the property tests in this package:
//
//	bytes.Compare(c.Append(nil, a), c.Append(nil, b))
//	  == the comparator order of a, b under the same spec
//
// for all tuples whose key columns hold NULL or a datum of the
// column's declared kind. NaN floats are excluded from the guarantee
// (types.Datum.Compare itself has no coherent NaN order).
package keys

import (
	"fmt"
	"math"
	"strings"

	"pyro/internal/sortord"
	"pyro/internal/types"
)

// Col describes one column of a sort key.
type Col struct {
	// Ordinal is the column's position in the tuple.
	Ordinal int
	// Kind is the column's declared type. Every non-null datum at
	// Ordinal must have this kind; NULLs are always allowed.
	Kind types.Kind
	// Desc inverts the column's order (descending).
	Desc bool
	// NullsLast places NULLs after all values instead of before.
	NullsLast bool
}

// Codec encodes tuple sort keys for a fixed column specification.
// A Codec is immutable and safe for concurrent use.
type Codec struct {
	cols []Col
}

// Marker bytes. markerValue must sort strictly between the two null
// markers so NULL placement works for both settings.
const (
	markerNullFirst = 0x00
	markerValue     = 0x01
	markerNullLast  = 0xFF
)

// String escape/terminator bytes (after the leading 0x00).
const (
	strEscape     = 0xFF // 0x00 inside a string -> {0x00, 0xFF}
	strTerminator = 0x01 // end of string        -> {0x00, 0x01}
)

// New builds a codec from an explicit column spec.
func New(cols []Col) (*Codec, error) {
	for _, c := range cols {
		switch c.Kind {
		case types.KindInt, types.KindFloat, types.KindString, types.KindBool:
		default:
			return nil, fmt.Errorf("keys: unsupported key column kind %v", c.Kind)
		}
		if c.Ordinal < 0 {
			return nil, fmt.Errorf("keys: negative column ordinal %d", c.Ordinal)
		}
	}
	return &Codec{cols: append([]Col(nil), cols...)}, nil
}

// NewCodec resolves a sort order against a schema with the comparator
// defaults of this engine: ascending, NULLs first — the order produced
// by types.KeySpec.Compare. Resolution is delegated to types.MakeKeySpec
// so the codec and the comparator can never disagree about ordinals.
func NewCodec(schema *types.Schema, o sortord.Order) (*Codec, error) {
	ks, err := types.MakeKeySpec(schema, o)
	if err != nil {
		return nil, err
	}
	return FromKeySpec(ks)
}

// FromKeySpec builds a codec from a resolved KeySpec (which carries the
// column kinds), with comparator defaults (ascending, NULLs first).
func FromKeySpec(ks types.KeySpec) (*Codec, error) {
	if len(ks.Kinds) != len(ks.Ordinals) {
		return nil, fmt.Errorf("keys: KeySpec has no kinds (built before MakeKeySpec recorded them?)")
	}
	cols := make([]Col, len(ks.Ordinals))
	for i, ord := range ks.Ordinals {
		cols[i] = Col{Ordinal: ord, Kind: ks.Kinds[i]}
	}
	return New(cols)
}

// Len returns the number of key columns.
func (c *Codec) Len() int { return len(c.cols) }

// Suffix returns a codec over the key columns from position k on — the
// suffix order of a full-key codec. Sorters that keep full-key encodings
// and need suffix-only comparisons should prefer PrefixLen: slicing the
// full key past the shared prefix compares the same bytes this codec
// would produce, without a second encode.
func (c *Codec) Suffix(k int) *Codec {
	if k < 0 || k > len(c.cols) {
		panic(fmt.Sprintf("keys: suffix %d out of range [0,%d]", k, len(c.cols)))
	}
	return &Codec{cols: c.cols[k:]}
}

// PrefixLen returns the number of bytes Append writes for the first k key
// columns of t — the byte offset in t's full key at which the remaining
// columns' encoding starts. Inside one MRS partial-sort segment every
// tuple agrees on the first k (= |given|) column values, so every segment
// key shares its first PrefixLen bytes: suffix comparisons may slice past
// them and radix partitioning may seed at that depth. The length is
// computed arithmetically, without encoding.
func (c *Codec) PrefixLen(t types.Tuple, k int) int {
	if k < 0 || k > len(c.cols) {
		panic(fmt.Sprintf("keys: prefix %d out of range [0,%d]", k, len(c.cols)))
	}
	n := 0
	for _, col := range c.cols[:k] {
		d := t[col.Ordinal]
		n++ // marker byte, NULL or value
		if d.IsNull() {
			continue
		}
		switch col.Kind {
		case types.KindInt, types.KindFloat:
			n += 8
		case types.KindBool:
			n++
		case types.KindString:
			s := d.Str()
			// Each NUL escapes to two bytes; the terminator adds two.
			n += len(s) + strings.Count(s, "\x00") + 2
		}
	}
	return n
}

// Append encodes t's sort key and appends it to dst, returning the
// extended slice. It panics if a non-null key datum's kind differs from
// the column's declared kind: schemas are engine-constructed, so a
// mismatch is a bug, and encoding it anyway would silently mis-sort.
func (c *Codec) Append(dst []byte, t types.Tuple) []byte {
	for _, col := range c.cols {
		d := t[col.Ordinal]
		if d.IsNull() {
			if col.NullsLast {
				dst = append(dst, markerNullLast)
			} else {
				dst = append(dst, markerNullFirst)
			}
			continue
		}
		if d.Kind() != col.Kind {
			panic(fmt.Sprintf("keys: datum kind %v at ordinal %d, column declared %v",
				d.Kind(), col.Ordinal, col.Kind))
		}
		dst = append(dst, markerValue)
		start := len(dst)
		switch col.Kind {
		case types.KindInt:
			dst = appendUint64(dst, uint64(d.Int())^(1<<63))
		case types.KindFloat:
			f := d.Float()
			if f == 0 {
				f = 0 // normalize -0.0 to +0.0: Datum.Compare treats them as equal
			}
			bits := math.Float64bits(f)
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits |= 1 << 63
			}
			dst = appendUint64(dst, bits)
		case types.KindBool:
			b := byte(0)
			if d.Bool() {
				b = 1
			}
			dst = append(dst, b)
		case types.KindString:
			s := d.Str()
			// Fast path: no NUL bytes (the overwhelmingly common case) —
			// one bulk append instead of a byte-at-a-time escape loop.
			for {
				i := strings.IndexByte(s, 0x00)
				if i < 0 {
					dst = append(dst, s...)
					break
				}
				dst = append(dst, s[:i]...)
				dst = append(dst, 0x00, strEscape)
				s = s[i+1:]
			}
			dst = append(dst, 0x00, strTerminator)
		}
		if col.Desc {
			for i := start; i < len(dst); i++ {
				dst[i] = ^dst[i]
			}
		}
	}
	return dst
}

// AppendFixed encodes a fixed-width prefix of t's sort key: exactly width
// bytes are appended — the first width bytes of the full Append encoding,
// zero-padded when the full key is shorter — and the returned flag reports
// whether the key was truncated (the full encoding is longer than width).
//
// The fixed prefix is the comparison half of a fixed-width sort entry
// (DuckDB's SortLayout shape): two entries whose prefixes differ are
// ordered by a plain bytes.Compare of those width bytes, and a tie needs
// the full key — the overflow "blob" — if and only if BOTH entries report
// truncated. The mixed case cannot tie: full key encodings are prefix-free
// (every column terminates itself — see the package comment), so a
// complete zero-padded key and a longer key can never agree on all width
// bytes. The fuzz and property tests in this package pin that
// prefix-compare-then-blob equals bytes.Compare of the full encodings.
func (c *Codec) AppendFixed(dst []byte, t types.Tuple, width int) ([]byte, bool) {
	start := len(dst)
	dst = c.Append(dst, t)
	n := len(dst) - start
	if n > width {
		return dst[:start+width], true
	}
	for ; n < width; n++ {
		dst = append(dst, 0)
	}
	return dst, false
}

// FixedWidthHint recommends a fixed-prefix width for the key columns from
// position k on (k is the shared-prefix column count a sorter will skip;
// pass 0 for the whole key). Fixed-size columns contribute their exact
// encoded size, so keys over ints, floats and bools are never truncated;
// strings contribute marker + 8 content bytes — enough to separate
// realistic key strings while keeping entries compact — and the total is
// capped at fixedWidthCap so one long VARCHAR does not inflate every
// entry of the sort.
func (c *Codec) FixedWidthHint(k int) int {
	if k < 0 || k > len(c.cols) {
		panic(fmt.Sprintf("keys: prefix %d out of range [0,%d]", k, len(c.cols)))
	}
	w := 0
	for _, col := range c.cols[k:] {
		switch col.Kind {
		case types.KindInt, types.KindFloat:
			w += 9 // marker + 8 payload bytes
		case types.KindBool:
			w += 2 // marker + payload byte
		case types.KindString:
			w += 9 // marker + 8 content bytes (terminator spills to the blob)
		}
		if w >= fixedWidthCap {
			return fixedWidthCap
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// fixedWidthCap bounds FixedWidthHint: past this many prefix bytes, wider
// entries cost more in entry-page I/O and cache footprint than the rare
// blob tie-break they would avoid.
const fixedWidthCap = 24

// EncodeBatch appends the sort keys of rows back-to-back to dst and
// appends each key's end offset — relative to the start of this batch —
// to ends, returning both extended slices. Key i of the batch occupies
// [ends[i-1], ends[i]) (with ends[-1] = 0) of the appended bytes. One
// EncodeBatch call amortizes dst's growth checks over a whole chunk of
// tuples; xsort's keyer then copies the block into its arena with a
// single capacity check instead of one per tuple.
func (c *Codec) EncodeBatch(dst []byte, rows []types.Tuple, ends []int) ([]byte, []int) {
	base := len(dst)
	for _, t := range rows {
		dst = c.Append(dst, t)
		ends = append(ends, len(dst)-base)
	}
	return dst, ends
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
