package keys

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"pyro/internal/types"
)

// fuzzTuple decodes one tuple for the fuzz schema from the byte stream:
// each column consumes a control byte (null / kind-specific value shape)
// and, for values, payload bytes. The decoder is total — any input yields
// a valid tuple — so the fuzzer explores the full encoding space.
func fuzzTuple(data []byte, cols []Col) (types.Tuple, []byte) {
	tup := make(types.Tuple, len(cols))
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		out := data[:n]
		data = data[n:]
		return out
	}
	for i, col := range cols {
		if next()%5 == 0 {
			tup[i] = types.Null
			continue
		}
		switch col.Kind {
		case types.KindInt:
			var raw [8]byte
			copy(raw[:], take(8))
			tup[i] = types.NewInt(int64(binary.BigEndian.Uint64(raw[:])))
		case types.KindFloat:
			var raw [8]byte
			copy(raw[:], take(8))
			f := math.Float64frombits(binary.BigEndian.Uint64(raw[:]))
			if math.IsNaN(f) {
				// Datum.Compare has no coherent NaN order; the codec's
				// guarantee explicitly excludes it.
				f = 0
			}
			tup[i] = types.NewFloat(f)
		case types.KindBool:
			tup[i] = types.NewBool(next()%2 == 0)
		case types.KindString:
			tup[i] = types.NewString(string(take(int(next()) % 9)))
		}
	}
	return tup, data
}

// FuzzCodecAgreesWithComparator is the package guarantee under fuzzing:
// for any pair of tuples and any column spec drawn from the input bytes,
// bytes.Compare over the encoded keys equals the reference comparator
// (NULL placement, typed compare, direction) — and PrefixLen splits the
// full key exactly where the suffix codec's encoding begins.
func FuzzCodecAgreesWithComparator(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xFF, 0x00, 0x42, 0x03, 'a', 0x00, 'b'})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Add(bytes.Repeat([]byte{0xFF, 0x80, 0x00}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		ctl := byte(0)
		if len(data) > 0 {
			ctl, data = data[0], data[1:]
		}
		ncols := 1 + int(ctl&0x03)
		cols := make([]Col, ncols)
		for i := range cols {
			var b byte
			if len(data) > 0 {
				b, data = data[0], data[1:]
			}
			cols[i] = Col{
				Ordinal:   i,
				Kind:      allKinds[int(b)%len(allKinds)],
				Desc:      b&0x10 != 0,
				NullsLast: b&0x20 != 0,
			}
		}
		c, err := New(cols)
		if err != nil {
			t.Fatal(err)
		}
		var a, b types.Tuple
		a, data = fuzzTuple(data, cols)
		b, data = fuzzTuple(data, cols)
		// Force column-level ties on a prefix so deeper columns decide.
		for i := range cols {
			if len(data) > 0 && data[0]%3 == 0 {
				b[i] = a[i]
			}
			if len(data) > 0 {
				data = data[1:]
			}
		}

		ka := c.Append(nil, a)
		kb := c.Append(nil, b)
		got := sign(bytes.Compare(ka, kb))
		want := sign(refCompare(cols, a, b))
		if got != want {
			t.Fatalf("spec %+v:\n a=%v key=%x\n b=%v key=%x\n bytes.Compare=%d, comparator=%d",
				cols, a, ka, b, kb, got, want)
		}
		for k := 0; k <= ncols; k++ {
			n := c.PrefixLen(a, k)
			suffix := c.Suffix(k).Append(nil, a)
			if n+len(suffix) != len(ka) || !bytes.Equal(ka[n:], suffix) {
				t.Fatalf("PrefixLen(%d) = %d does not split key %x before suffix %x", k, n, ka, suffix)
			}
		}
	})
}
