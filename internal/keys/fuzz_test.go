package keys

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"pyro/internal/types"
)

// fuzzTuple decodes one tuple for the fuzz schema from the byte stream:
// each column consumes a control byte (null / kind-specific value shape)
// and, for values, payload bytes. The decoder is total — any input yields
// a valid tuple — so the fuzzer explores the full encoding space.
func fuzzTuple(data []byte, cols []Col) (types.Tuple, []byte) {
	tup := make(types.Tuple, len(cols))
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		out := data[:n]
		data = data[n:]
		return out
	}
	for i, col := range cols {
		if next()%5 == 0 {
			tup[i] = types.Null
			continue
		}
		switch col.Kind {
		case types.KindInt:
			var raw [8]byte
			copy(raw[:], take(8))
			tup[i] = types.NewInt(int64(binary.BigEndian.Uint64(raw[:])))
		case types.KindFloat:
			var raw [8]byte
			copy(raw[:], take(8))
			f := math.Float64frombits(binary.BigEndian.Uint64(raw[:]))
			if math.IsNaN(f) {
				// Datum.Compare has no coherent NaN order; the codec's
				// guarantee explicitly excludes it.
				f = 0
			}
			tup[i] = types.NewFloat(f)
		case types.KindBool:
			tup[i] = types.NewBool(next()%2 == 0)
		case types.KindString:
			tup[i] = types.NewString(string(take(int(next()) % 9)))
		}
	}
	return tup, data
}

// FuzzFixedPrefixAgreesWithFullCompare pins the fixed-width entry
// contract under fuzzing: for any column spec, any pair of tuples and any
// prefix width, comparing the AppendFixed prefixes and falling back to the
// full keys only when BOTH are truncated yields exactly bytes.Compare of
// the full encodings. The seeds steer the fuzzer at the adversarial
// shapes: strings sharing long prefixes, keys whose full encoding lands
// exactly on the cutoff width, NULL markers, and descending (inverted)
// payloads.
func FuzzFixedPrefixAgreesWithFullCompare(f *testing.F) {
	f.Add(7, []byte{})
	// Shared-prefix strings that diverge past the cutoff.
	f.Add(5, append([]byte{0x03, 0x01, 0x08}, []byte("aaaaaaaa\x01\x08aaaaaaab")...))
	// Exact-cutoff lengths: a one-int key is 9 encoded bytes.
	f.Add(9, []byte{0x00, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add(8, []byte{0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x01})
	// NULLs (control byte 0 => NULL) and desc columns (0x10 bit).
	f.Add(3, []byte{0x01, 0x13, 0x00, 0x00, 0x05})
	f.Add(1, bytes.Repeat([]byte{0x00}, 32))

	f.Fuzz(func(t *testing.T, width int, data []byte) {
		if width < 1 {
			width = 1
		}
		if width > 64 {
			width = 64
		}
		ctl := byte(0)
		if len(data) > 0 {
			ctl, data = data[0], data[1:]
		}
		ncols := 1 + int(ctl&0x03)
		cols := make([]Col, ncols)
		for i := range cols {
			var b byte
			if len(data) > 0 {
				b, data = data[0], data[1:]
			}
			cols[i] = Col{
				Ordinal:   i,
				Kind:      allKinds[int(b)%len(allKinds)],
				Desc:      b&0x10 != 0,
				NullsLast: b&0x20 != 0,
			}
		}
		c, err := New(cols)
		if err != nil {
			t.Fatal(err)
		}
		var a, b types.Tuple
		a, data = fuzzTuple(data, cols)
		b, data = fuzzTuple(data, cols)
		// Tie leading columns so the interesting divergence sits near (and
		// past) the cutoff.
		for i := range cols {
			if len(data) > 0 && data[0]%3 != 0 {
				b[i] = a[i]
			}
			if len(data) > 0 {
				data = data[1:]
			}
		}

		ka := c.Append(nil, a)
		kb := c.Append(nil, b)
		fa, ta := c.AppendFixed(nil, a, width)
		fb, tb := c.AppendFixed(nil, b, width)
		if len(fa) != width || len(fb) != width {
			t.Fatalf("AppendFixed width %d produced %d/%d bytes", width, len(fa), len(fb))
		}
		if ta != (len(ka) > width) || tb != (len(kb) > width) {
			t.Fatalf("truncation flags %v/%v disagree with key lengths %d/%d at width %d",
				ta, tb, len(ka), len(kb), width)
		}
		got := bytes.Compare(fa, fb)
		if got == 0 {
			if ta != tb {
				// Prefix-freeness of the full encoding makes a complete
				// (zero-padded) key and a truncated key impossible to tie.
				t.Fatalf("mixed-truncation prefix tie at width %d:\n a=%v key=%x\n b=%v key=%x",
					width, a, ka, b, kb)
			}
			if ta && tb {
				got = sign(bytes.Compare(ka, kb)) // the blob tie-break
			}
		} else {
			got = sign(got)
		}
		if want := sign(bytes.Compare(ka, kb)); got != want {
			t.Fatalf("width %d spec %+v:\n a=%v key=%x fixed=%x trunc=%v\n b=%v key=%x fixed=%x trunc=%v\n prefix+blob=%d, full=%d",
				width, cols, a, ka, fa, ta, b, kb, fb, tb, got, want)
		}
	})
}

// FuzzCodecAgreesWithComparator is the package guarantee under fuzzing:
// for any pair of tuples and any column spec drawn from the input bytes,
// bytes.Compare over the encoded keys equals the reference comparator
// (NULL placement, typed compare, direction) — and PrefixLen splits the
// full key exactly where the suffix codec's encoding begins.
func FuzzCodecAgreesWithComparator(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0xFF, 0x00, 0x42, 0x03, 'a', 0x00, 'b'})
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Add(bytes.Repeat([]byte{0xFF, 0x80, 0x00}, 24))

	f.Fuzz(func(t *testing.T, data []byte) {
		ctl := byte(0)
		if len(data) > 0 {
			ctl, data = data[0], data[1:]
		}
		ncols := 1 + int(ctl&0x03)
		cols := make([]Col, ncols)
		for i := range cols {
			var b byte
			if len(data) > 0 {
				b, data = data[0], data[1:]
			}
			cols[i] = Col{
				Ordinal:   i,
				Kind:      allKinds[int(b)%len(allKinds)],
				Desc:      b&0x10 != 0,
				NullsLast: b&0x20 != 0,
			}
		}
		c, err := New(cols)
		if err != nil {
			t.Fatal(err)
		}
		var a, b types.Tuple
		a, data = fuzzTuple(data, cols)
		b, data = fuzzTuple(data, cols)
		// Force column-level ties on a prefix so deeper columns decide.
		for i := range cols {
			if len(data) > 0 && data[0]%3 == 0 {
				b[i] = a[i]
			}
			if len(data) > 0 {
				data = data[1:]
			}
		}

		ka := c.Append(nil, a)
		kb := c.Append(nil, b)
		got := sign(bytes.Compare(ka, kb))
		want := sign(refCompare(cols, a, b))
		if got != want {
			t.Fatalf("spec %+v:\n a=%v key=%x\n b=%v key=%x\n bytes.Compare=%d, comparator=%d",
				cols, a, ka, b, kb, got, want)
		}
		for k := 0; k <= ncols; k++ {
			n := c.PrefixLen(a, k)
			suffix := c.Suffix(k).Append(nil, a)
			if n+len(suffix) != len(ka) || !bytes.Equal(ka[n:], suffix) {
				t.Fatalf("PrefixLen(%d) = %d does not split key %x before suffix %x", k, n, ka, suffix)
			}
		}
	})
}
