package xsort

import (
	"pyro/internal/storage"
	"pyro/internal/types"
)

// mergeCursor is one input of a multiway merge: a run reader plus its
// lookahead tuple, wrapped with its normalized key (re-encoded on read —
// one encode per tuple buys log(fan-in) cheap byte comparisons in the heap).
type mergeCursor struct {
	r    *storage.TupleReader
	head keyed
}

// runMerger merges sorted run files into a single sorted stream. It uses a
// loser-free simple binary heap of cursors; comparisons are counted.
type runMerger struct {
	cursors     []*mergeCursor
	ky          *keyer
	comparisons *int64
}

func newRunMerger(runs []*storage.File, ky *keyer, comparisons *int64) (*runMerger, error) {
	m := &runMerger{ky: ky, comparisons: comparisons}
	for _, f := range runs {
		c := &mergeCursor{r: storage.NewTupleReader(f)}
		t, ok, err := c.r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // empty run
		}
		c.head = ky.wrap(t)
		m.cursors = append(m.cursors, c)
	}
	// Heapify.
	for i := len(m.cursors)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m, nil
}

func (m *runMerger) less(i, j int) bool {
	*m.comparisons++
	return m.ky.compare(m.cursors[i].head, m.cursors[j].head) < 0
}

func (m *runMerger) siftDown(i int) {
	n := len(m.cursors)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.less(l, smallest) {
			smallest = l
		}
		if r < n && m.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.cursors[i], m.cursors[smallest] = m.cursors[smallest], m.cursors[i]
		i = smallest
	}
}

// next returns the smallest head among all cursors, advancing that cursor.
func (m *runMerger) next() (types.Tuple, bool, error) {
	if len(m.cursors) == 0 {
		return nil, false, nil
	}
	top := m.cursors[0]
	out := top.head.t
	t, ok, err := top.r.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		top.head = m.ky.wrap(t)
		m.siftDown(0)
	} else {
		last := len(m.cursors) - 1
		m.cursors[0] = m.cursors[last]
		m.cursors = m.cursors[:last]
		if last > 0 {
			m.siftDown(0)
		}
	}
	return out, true, nil
}

// reduceRuns repeatedly merges groups of up to fanIn runs into larger runs
// until at most fanIn remain, so the final merge can proceed with one input
// buffer per run. Each intermediate pass reads and rewrites the data,
// incrementing stats.MergePasses. Consumed run files are removed from disk.
func reduceRuns(cfg Config, runs []*storage.File, ky *keyer, stats *SortStats) ([]*storage.File, error) {
	fanIn := cfg.fanIn()
	for len(runs) > fanIn {
		stats.MergePasses++
		var next []*storage.File
		for lo := 0; lo < len(runs); lo += fanIn {
			hi := lo + fanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			group := runs[lo:hi]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			merged := cfg.Disk.CreateTemp(cfg.TempPrefix, storage.KindRun)
			w := storage.NewTupleWriter(merged)
			m, err := newRunMerger(group, ky, &stats.Comparisons)
			if err != nil {
				cfg.Disk.Remove(merged.Name())
				return nil, err
			}
			for {
				t, ok, err := m.next()
				if err != nil {
					cfg.Disk.Remove(merged.Name())
					return nil, err
				}
				if !ok {
					break
				}
				if err := w.Write(t); err != nil {
					cfg.Disk.Remove(merged.Name())
					return nil, err
				}
			}
			w.Close()
			for _, g := range group {
				cfg.Disk.Remove(g.Name())
			}
			next = append(next, merged)
		}
		runs = next
	}
	return runs, nil
}
