package xsort

import (
	"sync"

	"pyro/internal/iter"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// mergeCursor is one input of a multiway merge: a run reader plus its
// lookahead tuple, wrapped with its normalized key (re-encoded on read —
// one encode per tuple buys log(fan-in) cheap byte comparisons in the heap).
// The keyer's skip short-circuits those comparisons past any shared key
// prefix: a spilled MRS segment's runs all share the encoded bytes of the
// segment's `given` prefix, so its merges never re-scan them.
type mergeCursor struct {
	r    *storage.TupleReader
	head keyed
}

// runMerger merges sorted run files into a single sorted stream. It uses a
// loser-free simple binary heap of cursors; comparisons are counted.
type runMerger struct {
	cursors     []*mergeCursor
	ky          *keyer
	comparisons *int64
}

func newRunMerger(runs []*storage.File, ky *keyer, comparisons *int64) (*runMerger, error) {
	m := &runMerger{ky: ky, comparisons: comparisons}
	for _, f := range runs {
		c := &mergeCursor{r: storage.NewTupleReader(f)}
		t, ok, err := c.r.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // empty run
		}
		c.head = ky.wrap(t)
		m.cursors = append(m.cursors, c)
	}
	// Heapify.
	for i := len(m.cursors)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
	return m, nil
}

func (m *runMerger) less(i, j int) bool {
	*m.comparisons++
	return m.ky.compare(m.cursors[i].head, m.cursors[j].head) < 0
}

func (m *runMerger) siftDown(i int) {
	n := len(m.cursors)
	//pyro:bounded(heap sift descends one level per iteration: at most log2(fan-in) steps)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.less(l, smallest) {
			smallest = l
		}
		if r < n && m.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.cursors[i], m.cursors[smallest] = m.cursors[smallest], m.cursors[i]
		i = smallest
	}
}

// next returns the smallest head among all cursors, advancing that cursor.
func (m *runMerger) next() (types.Tuple, bool, error) {
	if len(m.cursors) == 0 {
		return nil, false, nil
	}
	top := m.cursors[0]
	out := top.head.t
	t, ok, err := top.r.Next()
	if err != nil {
		return nil, false, err
	}
	if ok {
		top.head = m.ky.wrap(t)
		m.siftDown(0)
	} else {
		last := len(m.cursors) - 1
		m.cursors[0] = m.cursors[last]
		m.cursors = m.cursors[:last]
		if last > 0 {
			m.siftDown(0)
		}
	}
	return out, true, nil
}

// mergeTally is the work done by one group merge, tallied locally so
// concurrent group merges can publish once and the caller can fold counts
// in deterministic group order.
type mergeTally struct {
	comparisons int64
	bucketSkips int64
	pages       int64 // entry pages written by the merged output run
}

func (t mergeTally) addTo(st *SortStats) {
	st.Comparisons += t.comparisons
	st.MergeBucketSkips += t.bucketSkips
	st.FlatRunPages += t.pages
}

// mergeGroup merges a group of runs into one fresh run in ns, removing the
// consumed inputs on success. The work tally is returned rather than
// accumulated so concurrent group merges can tally locally and the caller
// can fold counts in deterministic group order. The keyer is cloned first:
// merging may re-encode keys as tuples come off disk (keyer.wrap mutates
// scratch buffers), and group merges run concurrently. abort (nil = never)
// is polled per merged tuple at the guard stride; it may be shared with
// other concurrent merges, so each call takes its own Guard.
//
// In the flat layouts the output run's entries are copied from the winning
// input entries (prefix and tie flag verbatim, fresh row ordinals): a key
// is encoded once per sort no matter how many passes rewrite its run.
func mergeGroup(ns storage.TempSpace, prefix string, group []spillRun, ky *keyer, lay entryLayout, abort func() error) (spillRun, mergeTally, error) {
	ky = ky.clone()
	guard := iter.NewGuard(abort)
	var tally mergeTally
	w := newRunWriter(ns, prefix, lay, ky.skip)
	fail := func(err error) (spillRun, mergeTally, error) {
		w.abandon()
		return spillRun{}, tally, err
	}
	if lay.flat() {
		m, err := newFlatMerger(group, ky, lay, &tally.comparisons, &tally.bucketSkips)
		if err != nil {
			return fail(err)
		}
		for {
			if err := guard.Check(); err != nil {
				return fail(err)
			}
			p, trunc, t, ok, err := m.nextEntry()
			if err != nil {
				return fail(err)
			}
			if !ok {
				break
			}
			if err := w.writeEntry(p, trunc, t); err != nil {
				return fail(err)
			}
		}
	} else {
		m, err := newRunMerger(payloadFiles(group), ky, &tally.comparisons)
		if err != nil {
			return fail(err)
		}
		for {
			if err := guard.Check(); err != nil {
				return fail(err)
			}
			t, ok, err := m.next()
			if err != nil {
				return fail(err)
			}
			if !ok {
				break
			}
			if err := w.write(keyed{t: t}); err != nil {
				return fail(err)
			}
		}
	}
	merged, pages, err := w.close()
	if err != nil {
		// close already removed the partial output.
		return spillRun{}, tally, err
	}
	tally.pages = pages
	for _, g := range group {
		g.remove(ns)
	}
	return merged, tally, nil
}

// reduceRuns repeatedly merges groups of up to fanIn runs into larger runs
// until at most fanIn remain, so the final merge can proceed with one input
// buffer per run. Each intermediate pass reads and rewrites the data,
// incrementing stats.MergePasses; consumed run files are removed from ns.
//
// With SpillParallelism > 1 the groups of one pass — mutually independent
// by construction — merge concurrently on worker goroutines. Grouping is
// identical to the serial pass (consecutive runs, left to right) and each
// group's comparison count folds into stats in group order, so comparison
// and I/O totals match the serial path exactly.
func reduceRuns(cfg Config, ns storage.TempSpace, runs []spillRun, ky *keyer, lay entryLayout, stats *SortStats) ([]spillRun, error) {
	fanIn := cfg.fanIn()
	par := cfg.spillParallelism()
	for len(runs) > fanIn {
		stats.MergePasses++
		nGroups := numGroups(fanIn, len(runs))
		next := make([]spillRun, nGroups)
		tallies := make([]mergeTally, nGroups)
		errs := make([]error, nGroups)
		if par <= 1 {
			for g := 0; g < nGroups; g++ {
				next[g], tallies[g], errs[g] = reduceOneGroup(cfg, ns, runs, g, ky, lay)
			}
		} else {
			sem := make(chan struct{}, par)
			var wg sync.WaitGroup
			for g := 0; g < nGroups; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					defer recoverWorker(&errs[g])
					next[g], tallies[g], errs[g] = reduceOneGroup(cfg, ns, runs, g, ky, lay)
				}(g)
			}
			wg.Wait()
		}
		for g := 0; g < nGroups; g++ {
			tallies[g].addTo(stats)
			if errs[g] != nil {
				return nil, errs[g]
			}
		}
		runs = next
	}
	return runs, nil
}

// groupBounds returns the half-open run range of the g-th fan-in group of
// one reduction pass over n runs. Every reduction path — serial, parallel,
// and the pipelined harvest in MRS — must group through this function:
// identical grouping is what keeps comparison and I/O totals independent
// of parallelism (the golden tests' invariant).
func groupBounds(g, fanIn, n int) (lo, hi int) {
	lo = g * fanIn
	hi = lo + fanIn
	if hi > n {
		hi = n
	}
	return lo, hi
}

// numGroups returns how many fan-in groups one reduction pass over n runs
// forms.
func numGroups(fanIn, n int) int { return (n + fanIn - 1) / fanIn }

// reduceOneGroup merges the g-th fan-in group of runs (a single-run group
// passes through unmerged, as in the serial algorithm).
func reduceOneGroup(cfg Config, ns storage.TempSpace, runs []spillRun, g int, ky *keyer, lay entryLayout) (spillRun, mergeTally, error) {
	lo, hi := groupBounds(g, cfg.fanIn(), len(runs))
	group := runs[lo:hi]
	if len(group) == 1 {
		return group[0], mergeTally{}, nil
	}
	return mergeGroup(ns, cfg.TempPrefix, group, ky, lay, cfg.Abort)
}
