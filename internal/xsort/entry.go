package xsort

import (
	"encoding/binary"
	"fmt"

	"pyro/internal/storage"
	"pyro/internal/types"
)

// Fixed-width sort entries (the DuckDB SortLayout shape). A spill run is no
// longer just a file of re-encoded tuple pages: in the flat layouts every
// run carries a second file of fixed-size entries, one per tuple, each
//
//	[ width bytes: normalized-key prefix, zero-padded ][ 1 byte: tie flag ][ int32 row id ]
//
// where the prefix is the first `width` bytes of the tuple's encoded sort
// key past the keyer's shared-prefix skip, and the tie flag records whether
// the full key was longer than width (truncated). Two entries whose
// prefixes differ are ordered by one bytes.Compare of width bytes — no
// tuple decode, no key re-encode; a prefix tie needs the overflow "blob"
// (the full key, re-encoded from the payload tuple on demand) if and only
// if BOTH entries are truncated — keys.Codec.AppendFixed documents why the
// mixed case cannot tie. The row id is the tuple's ordinal within its run,
// making every entry self-identifying on disk.
//
// Merges read the entry file and the payload tuple file in lockstep, so
// the merge's hot loop touches only flat entry pages; the payload page of
// the winning cursor is consulted once per emitted tuple (and for the rare
// blob tie-break). Merged output runs copy the winning entry's prefix and
// flag verbatim — a key is encoded exactly once per sort, at input
// collection, no matter how many merge passes rewrite it.

// EntryLayout selects the spill-run representation and the merge algorithm
// over it. Output order is byte-identical across all three layouts for any
// input whose sort keys are duplicate-free, and LayoutFlat/LayoutFlatHeap
// are byte-identical to each other unconditionally (both order full-key
// ties by run ordinal); layouts differ in spill I/O shape (flat runs add
// entry pages but never re-encode keys) and in merge comparison counts.
type EntryLayout uint8

const (
	// LayoutFlat (the default) writes flat fixed-width entry runs and
	// merges them radix-aware: run heads are partitioned by the leading
	// prefix byte and only the lowest live bucket is heap-ordered, so runs
	// whose head buckets differ — the common case for low-overlap runs —
	// cost zero comparisons until their buckets activate
	// (SortStats.MergeBucketSkips counts the parked advances).
	LayoutFlat EntryLayout = iota
	// LayoutFlatHeap writes the same flat entry runs but merges them with
	// the plain comparison heap — the merge-phase ablation: identical
	// output bytes and I/O to LayoutFlat, more comparisons.
	LayoutFlatHeap
	// LayoutTuple is the legacy layout: runs are re-encoded tuple pages
	// only, merged by re-wrapping each tuple's key as it comes off disk.
	// Kept for ablation and as the structural fallback for comparator-mode
	// sorts (no encoded key, nothing to truncate).
	LayoutTuple
)

// String returns the CLI spelling of the layout.
func (l EntryLayout) String() string {
	switch l {
	case LayoutFlat:
		return "flat"
	case LayoutFlatHeap:
		return "flat-heap"
	case LayoutTuple:
		return "tuple"
	}
	return fmt.Sprintf("EntryLayout(%d)", uint8(l))
}

// ParseEntryLayout parses the CLI spelling ("" means the default).
func ParseEntryLayout(s string) (EntryLayout, error) {
	switch s {
	case "", "flat":
		return LayoutFlat, nil
	case "flat-heap":
		return LayoutFlatHeap, nil
	case "tuple":
		return LayoutTuple, nil
	}
	return 0, fmt.Errorf("xsort: unknown entry layout %q (want flat, flat-heap or tuple)", s)
}

// entryOverhead is the per-entry bytes past the key prefix: the tie flag
// and the int32 row id.
const entryOverhead = 5

// entryLayout is one sort's resolved spill-entry geometry. The zero value
// (mode LayoutTuple via resolveLayout) means tuple-page runs with no entry
// files.
type entryLayout struct {
	mode  EntryLayout
	width int // fixed key-prefix bytes per entry
	size  int // width + entryOverhead
}

// flat reports whether runs carry entry files.
func (l entryLayout) flat() bool { return l.mode != LayoutTuple }

// resolveLayout fixes a sort's entry geometry at construction. prefixCols
// is the number of leading key columns every key the sort compares is known
// to share (MRS's `given` prefix; 0 for SRS): the fixed width is sized for
// the suffix columns the entries actually discriminate on. Comparator-mode
// sorts have no encoded keys and degrade to the tuple layout, as does a
// page size too small to hold even one minimal entry per page.
func resolveLayout(cfg Config, ky *keyer, prefixCols int) entryLayout {
	if cfg.EntryLayout == LayoutTuple || !ky.encoded() {
		return entryLayout{mode: LayoutTuple}
	}
	width := ky.codec.FixedWidthHint(prefixCols)
	if max := cfg.Disk.PageSize() - 2 - entryOverhead; width > max {
		width = max
	}
	if width < 1 {
		return entryLayout{mode: LayoutTuple}
	}
	return entryLayout{mode: cfg.EntryLayout, width: width, size: width + entryOverhead}
}

// spillRun is one sorted run on disk: the payload tuple file, plus — in the
// flat layouts — the entry file merged in lockstep with it.
type spillRun struct {
	payload *storage.File
	entries *storage.File // nil in LayoutTuple
}

// remove drops the run's files from its namespace.
func (r spillRun) remove(ns storage.TempSpace) {
	ns.Remove(r.payload.Name())
	if r.entries != nil {
		ns.Remove(r.entries.Name())
	}
}

// payloadFiles projects the tuple files of runs — the inputs of the legacy
// tuple-layout merge.
func payloadFiles(runs []spillRun) []*storage.File {
	files := make([]*storage.File, len(runs))
	for i, r := range runs {
		files[i] = r.payload
	}
	return files
}

// runWriter streams one sorted run to disk: every tuple goes to the payload
// file and, in the flat layouts, its fixed-width entry goes to the entry
// file. Streaming matters: SRS's replacement selection and merge outputs
// don't know a run's length up front, so the run format cannot require it.
// Both files live in the caller's spill arena under the usual fault/tap/
// quota plane; on error the caller either abandons the writer or releases
// the whole arena.
type runWriter struct {
	ns      storage.TempSpace
	lay     entryLayout
	skip    int
	run     spillRun
	payload *storage.TupleWriter
	entries *storage.EntryWriter // nil in LayoutTuple
	buf     []byte               // entry scratch, lay.size bytes
	rowid   uint32
}

// newRunWriter opens a fresh run in ns. skip is the writer's keyer skip:
// entry prefixes are taken from the key past it, matching what the
// segment's merges will compare.
func newRunWriter(ns storage.TempSpace, prefix string, lay entryLayout, skip int) *runWriter {
	w := &runWriter{ns: ns, lay: lay, skip: skip}
	w.run.payload = ns.CreateTemp(prefix, storage.KindRun)
	w.payload = storage.NewTupleWriter(w.run.payload)
	if lay.flat() {
		w.run.entries = ns.CreateTemp(prefix+"-ent", storage.KindRun)
		w.entries = storage.NewEntryWriter(w.run.entries, lay.size)
		w.buf = make([]byte, lay.size)
	}
	return w
}

// write appends one keyed tuple, deriving its entry from the already
// encoded key — run formation never re-encodes.
func (w *runWriter) write(kt keyed) error {
	if err := w.payload.Write(kt.t); err != nil {
		return err
	}
	if w.entries == nil {
		return nil
	}
	suffix := kt.key[w.skip:]
	w.fill(suffix[:min(len(suffix), w.lay.width)], len(suffix) > w.lay.width)
	return w.entries.Write(w.buf)
}

// writeEntry appends one tuple whose entry prefix and tie flag are already
// known — merge outputs pass the winning input entry through verbatim.
func (w *runWriter) writeEntry(prefix []byte, truncated bool, t types.Tuple) error {
	if err := w.payload.Write(t); err != nil {
		return err
	}
	if w.entries == nil {
		return nil
	}
	w.fill(prefix, truncated)
	return w.entries.Write(w.buf)
}

// fill builds the next entry record in w.buf: prefix (zero-padded to
// width), tie flag, row ordinal.
func (w *runWriter) fill(prefix []byte, truncated bool) {
	n := copy(w.buf[:w.lay.width], prefix)
	for i := n; i < w.lay.width; i++ {
		w.buf[i] = 0
	}
	flag := byte(0)
	if truncated {
		flag = 1
	}
	w.buf[w.lay.width] = flag
	binary.BigEndian.PutUint32(w.buf[w.lay.width+1:], w.rowid)
	w.rowid++
}

// close finishes the run, returning it and the entry pages it occupies
// (SortStats.FlatRunPages). On error the run's files are already removed.
func (w *runWriter) close() (spillRun, int64, error) {
	if err := w.payload.Close(); err != nil {
		w.abandon()
		return spillRun{}, 0, err
	}
	if w.entries == nil {
		return w.run, 0, nil
	}
	if err := w.entries.Close(); err != nil {
		w.abandon()
		return spillRun{}, 0, err
	}
	return w.run, w.entries.PagesWritten(), nil
}

// abandon removes the partially written run.
func (w *runWriter) abandon() {
	w.run.remove(w.ns)
}

// writeRun writes the tuples of a keyed buffer, in emission order, as one
// run in ns — the sort's spill arena, so concurrent writers from different
// segments or workers never share a namespace or a ledger mutex. It returns
// the run and its entry-page count.
func writeRun(ns storage.TempSpace, prefix string, buf []keyed, order []int32, lay entryLayout, skip int) (spillRun, int64, error) {
	w := newRunWriter(ns, prefix, lay, skip)
	for _, idx := range order {
		if err := w.write(buf[idx]); err != nil {
			w.abandon()
			return spillRun{}, 0, err
		}
	}
	return w.close()
}
