package xsort

import (
	"bytes"

	"pyro/internal/storage"
	"pyro/internal/types"
)

// merger is the final-merge surface SRS and MRS serve tuples from; the
// layout decides the implementation (runMerger for tuple runs, flatMerger
// for flat entry runs).
type merger interface {
	next() (types.Tuple, bool, error)
}

// openMerger builds the final merge of runs under the sort's layout,
// accumulating work counters directly into st (final merges run on the
// consumer goroutine).
func openMerger(runs []spillRun, ky *keyer, lay entryLayout, st *SortStats) (merger, error) {
	if lay.flat() {
		return newFlatMerger(runs, ky, lay, &st.Comparisons, &st.MergeBucketSkips)
	}
	return newRunMerger(payloadFiles(runs), ky, &st.Comparisons)
}

// flatCursor is one input of a flat-run merge: the run's entry reader and
// payload tuple reader advanced in lockstep, plus the head entry. prefix is
// copied out of the entry page (an EntryReader slice dies when the reader
// crosses a page); key caches the head's re-encoded full key suffix and is
// populated only if a blob tie-break actually consults it.
type flatCursor struct {
	entries *storage.EntryReader
	payload *storage.TupleReader
	ord     int32 // run ordinal — the deterministic full-tie break
	prefix  []byte
	trunc   bool
	t       types.Tuple
	key     []byte
}

// flatMerger merges flat entry runs. In heap mode (LayoutFlatHeap) it is a
// plain binary min-heap over all cursors, ordered by (prefix bytes, blob,
// run ordinal) — the entry-layout twin of runMerger, kept as the ablation
// baseline.
//
// In radix mode (LayoutFlat, the default) the merge is a radix-aware
// cascade: the merger maintains a base — the byte prefix all live heads
// currently share — and partitions cursors into 256 buckets by the first
// byte past it (the first byte that can actually discriminate; a naive
// leading-byte partition would bucket on the key codec's marker byte,
// which is constant). Only the lowest live bucket's cursors sit in the
// heap; the rest are parked comparison-free until the merge frontier
// reaches their bucket. Because key order is byte order, a parked cursor
// can never hold the global minimum — so heap size tracks the number of
// runs overlapping *at the frontier*, not the fan-in, and a cursor whose
// advanced head leaves the active bucket parks with zero comparisons
// (MergeBucketSkips counts those). A head that moves past the base region
// entirely parks in the far bucket; when every in-base bucket has drained,
// the cascade re-bases over the far cursors' heads — a pure byte scan, no
// key comparisons — and partitioning restarts one region deeper. Runs with
// low overlap at the frontier — replacement-selection output, MRS segment
// batches — merge almost comparison-free.
//
// Both modes break full-key ties by run ordinal, a deterministic total
// order, so their outputs are byte-identical unconditionally; the tuple
// layout's runMerger agrees whenever sort keys are duplicate-free.
type flatMerger struct {
	ky          *keyer // cloned; blob consults re-encode through it
	width       int
	comparisons *int64
	bucketSkips *int64

	heap []*flatCursor

	radix     bool
	base      []byte                     // shared head prefix of the current cascade region
	parked    [buckets + 1][]*flatCursor // by first byte past base; last = past the region
	active    int                        // current bucket; in-base parking below it is impossible
	remaining int                        // live cursors, heap + parked

	out []byte // nextEntry's returned prefix (survives the cursor advance)
}

// buckets is the in-base fan-out of the cascade; parked[buckets] is the far
// bucket (heads past the current base region, re-based when reached).
const buckets = 256

// newFlatMerger opens a merge of flat runs; radix-aware iff lay.mode is
// LayoutFlat.
func newFlatMerger(runs []spillRun, ky *keyer, lay entryLayout, comparisons, bucketSkips *int64) (*flatMerger, error) {
	m := &flatMerger{
		ky:          ky.clone(),
		width:       lay.width,
		radix:       lay.mode == LayoutFlat,
		comparisons: comparisons,
		bucketSkips: bucketSkips,
		active:      buckets, // first refill re-bases over all cursors
		out:         make([]byte, lay.width),
	}
	for ord, r := range runs {
		c := &flatCursor{
			entries: storage.NewEntryReader(r.entries, lay.size),
			payload: storage.NewTupleReader(r.payload),
			ord:     int32(ord),
			prefix:  make([]byte, lay.width),
		}
		ok, err := m.advance(c)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // empty run
		}
		m.remaining++
		if m.radix {
			m.parked[buckets] = append(m.parked[buckets], c)
		} else {
			m.heap = append(m.heap, c)
		}
	}
	if !m.radix {
		m.heapify()
	}
	return m, nil
}

// bucketOf classifies a head against the current base: its first byte past
// the base when the head still lies in the region, the far bucket once it
// has moved beyond it. Heads only grow, so a head below the base region is
// impossible. When the base spans the whole prefix, every in-region head is
// prefix-equal and shares bucket 0.
func (m *flatMerger) bucketOf(c *flatCursor) int {
	d := len(m.base)
	if !bytes.Equal(c.prefix[:d], m.base) {
		return buckets
	}
	if d == m.width {
		return 0
	}
	return int(c.prefix[d])
}

// rebase starts the next cascade region: the new base is the longest byte
// prefix shared by every far-parked head, and those cursors redistribute
// into its buckets. This is a linear byte scan — like a radix counting
// pass, it performs no key comparisons — and each rebase strictly advances
// the frontier, so rebases are bounded by the merged entry count.
func (m *flatMerger) rebase() {
	members := m.parked[buckets]
	m.parked[buckets] = nil
	d := m.width
	first := members[0].prefix
	for _, c := range members[1:] {
		j := 0
		for j < d && c.prefix[j] == first[j] {
			j++
		}
		d = j
	}
	m.base = append(m.base[:0], first[:d]...)
	for _, c := range members {
		b := m.bucketOf(c)
		m.parked[b] = append(m.parked[b], c)
	}
	m.active = 0
}

// advance reads the cursor's next entry and payload tuple in lockstep.
func (m *flatMerger) advance(c *flatCursor) (bool, error) {
	e, ok, err := c.entries.Next()
	if err != nil {
		return false, err
	}
	t, tok, err := c.payload.Next()
	if err != nil {
		return false, err
	}
	if ok != tok {
		return false, storage.ErrCorruptRun
	}
	if !ok {
		return false, nil
	}
	copy(c.prefix, e)
	c.trunc = e[len(c.prefix)] != 0
	c.t = t
	c.key = nil
	return true, nil
}

// blobKey returns the cursor head's full key suffix, re-encoding it from
// the payload tuple on first consult. Truncated prefixes that tie are the
// only callers — by construction a rare case when FixedWidthHint covered
// the key columns.
func (m *flatMerger) blobKey(c *flatCursor) []byte {
	if c.key == nil {
		c.key = m.ky.wrap(c.t).key[m.ky.skip:]
	}
	return c.key
}

// less orders two cursor heads: prefix bytes, then the blob if both are
// truncated (a mixed-truncation prefix tie is impossible — see
// keys.Codec.AppendFixed), then run ordinal. One logical comparison is
// counted whether or not the blob is consulted, so comparison totals stay
// deterministic and comparable across layouts.
func (m *flatMerger) less(a, b *flatCursor) bool {
	*m.comparisons++
	if c := bytes.Compare(a.prefix, b.prefix); c != 0 {
		return c < 0
	}
	if a.trunc && b.trunc {
		if c := bytes.Compare(m.blobKey(a), m.blobKey(b)); c != 0 {
			return c < 0
		}
	}
	return a.ord < b.ord
}

func (m *flatMerger) heapify() {
	for i := len(m.heap)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *flatMerger) siftDown(i int) {
	n := len(m.heap)
	//pyro:bounded(heap sift descends one level per iteration: at most log2(fan-in) steps)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && m.less(m.heap[l], m.heap[smallest]) {
			smallest = l
		}
		if r < n && m.less(m.heap[r], m.heap[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.heap[i], m.heap[smallest] = m.heap[smallest], m.heap[i]
		i = smallest
	}
}

// pop removes the heap top.
func (m *flatMerger) pop() {
	last := len(m.heap) - 1
	m.heap[0] = m.heap[last]
	m.heap = m.heap[:last]
	if last > 0 {
		m.siftDown(0)
	}
}

// nextEntry returns the globally smallest head — its entry prefix (valid
// until the following call), tie flag and payload tuple — and advances its
// cursor.
func (m *flatMerger) nextEntry() ([]byte, bool, types.Tuple, bool, error) {
	for len(m.heap) == 0 {
		if !m.radix || m.remaining == 0 {
			return nil, false, nil, false, nil
		}
		// Activate the lowest parked bucket; heads only grow, so parking
		// below the active bucket is impossible and the scan never moves
		// backwards. When only far-parked cursors remain, cascade into the
		// next base region.
		for m.active < buckets && len(m.parked[m.active]) == 0 {
			m.active++
		}
		if m.active == buckets {
			m.rebase()
			continue
		}
		m.heap = append(m.heap, m.parked[m.active]...)
		m.parked[m.active] = nil
		m.heapify()
	}
	top := m.heap[0]
	m.out = append(m.out[:0], top.prefix...)
	trunc, t := top.trunc, top.t
	ok, err := m.advance(top)
	if err != nil {
		return nil, false, nil, false, err
	}
	switch {
	case !ok:
		m.remaining--
		m.pop()
	case m.radix && m.bucketOf(top) != m.active:
		// The advanced head left the merge frontier's bucket: park it
		// comparison-free until the frontier catches up.
		*m.bucketSkips++
		m.parked[m.bucketOf(top)] = append(m.parked[m.bucketOf(top)], top)
		m.pop()
	default:
		m.siftDown(0)
	}
	return m.out, trunc, t, true, nil
}

// next serves the merge as a tuple stream.
func (m *flatMerger) next() (types.Tuple, bool, error) {
	_, _, t, ok, err := m.nextEntry()
	return t, ok, err
}
