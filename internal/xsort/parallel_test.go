package xsort

import (
	"math/rand"
	"reflect"
	"testing"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// TestMRSParallelMatchesSerial: the parallel segment pipeline must be a pure
// scheduling change — same output sequence and same comparison count as the
// serial path, for both in-memory and spilling workloads.
func TestMRSParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		name   string
		rows   []types.Tuple
		blocks int
	}{
		{"inmemory", genRows(8000, 80, rng), 64},
		{"spilling", genRows(8000, 4, rng), 8},
		{"tinysegs", genRows(500, 250, rng), 64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(par int) ([]types.Tuple, *SortStats, storage.IOStats) {
				cfg, d := smallCfg(t, tc.blocks)
				cfg.Parallelism = par
				m, err := NewMRS(iter.FromSlice(tc.rows), sortSchema,
					sortord.New("c1", "c2"), sortord.New("c1"), cfg)
				if err != nil {
					t.Fatal(err)
				}
				out, err := iter.Drain(m)
				if err != nil {
					t.Fatal(err)
				}
				if names := d.FileNames(); len(names) != 0 {
					t.Fatalf("par=%d leaked run files %v", par, names)
				}
				return out, m.Stats(), d.Stats()
			}
			serialOut, serialStats, serialIO := run(1)
			parOut, parStats, parIO := run(8)
			if len(serialOut) != len(parOut) {
				t.Fatalf("parallel lost tuples: %d vs %d", len(parOut), len(serialOut))
			}
			ks := types.MustKeySpec(sortSchema, sortord.New("c1", "c2"))
			for i := range serialOut {
				if ks.Compare(serialOut[i], parOut[i]) != 0 {
					t.Fatalf("order diverges at %d: %v vs %v", i, serialOut[i], parOut[i])
				}
			}
			if serialStats.Comparisons != parStats.Comparisons {
				t.Fatalf("comparison counts diverge: serial %d, parallel %d — parallelism must not change the work counted",
					serialStats.Comparisons, parStats.Comparisons)
			}
			if serialStats.Segments != parStats.Segments || serialStats.SpilledSegs != parStats.SpilledSegs {
				t.Fatalf("segment stats diverge: serial %+v, parallel %+v", serialStats, parStats)
			}
			if serialStats.RunsGenerated != parStats.RunsGenerated || serialStats.MergePasses != parStats.MergePasses {
				t.Fatalf("run structure diverges: serial %+v, parallel %+v", serialStats, parStats)
			}
			// Parallel spilling must charge exactly the serial path's I/O.
			if serialIO != parIO {
				t.Fatalf("IOStats diverge: serial %+v, parallel %+v", serialIO, parIO)
			}
			// Regime counters: every spill run is serial at P=1, parallel at P>1.
			if serialStats.SpillRunsParallel != 0 || serialStats.SpillRunsSerial != serialStats.RunsGenerated {
				t.Fatalf("serial spill regime miscounted: %+v", serialStats)
			}
			if parStats.SpillRunsSerial != 0 || parStats.SpillRunsParallel != parStats.RunsGenerated {
				t.Fatalf("parallel spill regime miscounted: %+v", parStats)
			}
		})
	}
}

// TestMRSParallelPipelining: with Parallelism = P, reading ahead is bounded —
// at every point of the drain the consumer has read at most the emitted
// tuples plus P+2 segments' worth of lookahead (P queued, one emitting, one
// partially collected) plus one pump quantum. In particular the first output
// appears after roughly one segment, not after the whole input: early output
// survives parallelism.
func TestMRSParallelPipelining(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n, segments, par = 20_000, 100, 4
	segSize := n / segments
	rows := genRows(n, segments, rng)
	ci := &countingIter{inner: iter.FromSlice(rows)}
	cfg, d := smallCfg(t, 64)
	cfg.Parallelism = par
	m, err := NewMRS(ci, sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	bound := func(emitted int) int {
		return emitted + (par+2)*segSize + pumpQuantum + 1
	}
	emitted := 0
	for {
		_, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		emitted++
		if emitted == 1 && ci.pulled > bound(0) {
			t.Fatalf("first output after %d tuples read; want <= %d (early output lost)", ci.pulled, bound(0))
		}
		if ci.pulled > bound(emitted) {
			t.Fatalf("lookahead unbounded: emitted %d but read %d (> %d)", emitted, ci.pulled, bound(emitted))
		}
	}
	if emitted != n {
		t.Fatalf("drained %d of %d tuples", emitted, n)
	}
	if d.Stats().RunTotal() != 0 {
		t.Fatalf("in-memory parallel MRS must do no run I/O: %v", d.Stats())
	}
}

// TestMRSParallelCleanup: closing a parallel MRS mid-stream — with spilled
// runs live for the emitting segment, queued segments, and a partially
// collected one — must leave no run files behind.
func TestMRSParallelCleanup(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rows := genRows(6000, 3, rng) // 3 big segments
	cfg, d := smallCfg(t, 8)      // tiny memory: all segments spill
	cfg.Parallelism = 4
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, ok, err := m.Next(); !ok || err != nil {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range d.FileNames() {
		t.Fatalf("run file %q leaked after Close", name)
	}
}

// TestEncodedAndComparatorKeysAgree: the normalized-key path must be
// invisible except for speed — identical output sequence and identical
// SortStats for both SRS and MRS on the same input.
func TestEncodedAndComparatorKeysAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	rows := genRows(5000, 25, rng)
	shuffledRows := shuffled(rows, rand.New(rand.NewSource(25)))

	t.Run("srs", func(t *testing.T) {
		run := func(mode KeyMode) ([]types.Tuple, *SortStats) {
			cfg, _ := smallCfg(t, 8)
			cfg.Keys = mode
			// Pin the comparison sort: this test's contract is that the key
			// REPRESENTATION is invisible, so both arms must spend their
			// work in the same currency. (Adaptive would radix-sort the
			// encoded arm only and the stats would rightly diverge.) The
			// tuple layout is pinned for the same reason: comparator-mode
			// keyers have no fixed-width encoding, so the flat layouts
			// would silently fall back on one arm only.
			cfg.RunFormation = RunFormCompare
			cfg.EntryLayout = LayoutTuple
			s, err := NewSRS(iter.FromSlice(shuffledRows), sortSchema, sortord.New("c1", "c2"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			out, err := iter.Drain(s)
			if err != nil {
				t.Fatal(err)
			}
			return out, s.Stats()
		}
		encOut, encStats := run(KeyEncoded)
		cmpOut, cmpStats := run(KeyComparator)
		if !reflect.DeepEqual(multiset(encOut), multiset(cmpOut)) {
			t.Fatal("encoded and comparator SRS disagree on output multiset")
		}
		isSorted(t, encOut, sortord.New("c1", "c2"))
		if *encStats != *cmpStats {
			t.Fatalf("SRS stats diverge between key modes:\n encoded    %+v\n comparator %+v", encStats, cmpStats)
		}
	})

	t.Run("mrs", func(t *testing.T) {
		run := func(mode KeyMode) ([]types.Tuple, *SortStats) {
			cfg, _ := smallCfg(t, 16)
			cfg.Keys = mode
			cfg.Parallelism = 1
			cfg.RunFormation = RunFormCompare // see the srs arm
			cfg.EntryLayout = LayoutTuple     // ditto
			m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			out, err := iter.Drain(m)
			if err != nil {
				t.Fatal(err)
			}
			return out, m.Stats()
		}
		encOut, encStats := run(KeyEncoded)
		cmpOut, cmpStats := run(KeyComparator)
		if len(encOut) != len(cmpOut) {
			t.Fatalf("output sizes diverge: %d vs %d", len(encOut), len(cmpOut))
		}
		// MRS segment sorts are stable in both modes, so the sequences must
		// match tuple for tuple, not just as multisets.
		for i := range encOut {
			if !reflect.DeepEqual(encOut[i], cmpOut[i]) {
				t.Fatalf("sequences diverge at %d: %v vs %v", i, encOut[i], cmpOut[i])
			}
		}
		if *encStats != *cmpStats {
			t.Fatalf("MRS stats diverge between key modes:\n encoded    %+v\n comparator %+v", encStats, cmpStats)
		}
	})
}

// TestUnencodableKeyFallsBackToComparator: a key column the codec cannot
// encode (a NULL-typed column, e.g. a projected NULL literal) must not fail
// the sort — both operators silently degrade to the field comparator, in
// either key mode.
func TestUnencodableKeyFallsBackToComparator(t *testing.T) {
	schema := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "n", Kind: types.KindNull},
	)
	rows := []types.Tuple{
		types.NewTuple(types.NewInt(3), types.Null),
		types.NewTuple(types.NewInt(1), types.Null),
		types.NewTuple(types.NewInt(2), types.Null),
	}
	for _, mode := range []KeyMode{KeyEncoded, KeyComparator} {
		cfg, _ := smallCfg(t, 16)
		cfg.Keys = mode
		s, err := NewSRS(iter.FromSlice(rows), schema, sortord.New("k", "n"), cfg)
		if err != nil {
			t.Fatalf("mode %d: NewSRS: %v", mode, err)
		}
		out, err := iter.Drain(s)
		if err != nil || len(out) != 3 || out[0][0].Int() != 1 {
			t.Fatalf("mode %d: SRS out=%v err=%v", mode, out, err)
		}
		cfg2, _ := smallCfg(t, 16)
		cfg2.Keys = mode
		m, err := NewMRS(iter.FromSlice(rows), schema, sortord.New("n", "k"), sortord.New("n"), cfg2)
		if err != nil {
			t.Fatalf("mode %d: NewMRS: %v", mode, err)
		}
		out, err = iter.Drain(m)
		if err != nil || len(out) != 3 || out[0][0].Int() != 1 {
			t.Fatalf("mode %d: MRS out=%v err=%v", mode, out, err)
		}
	}
}

// TestMRSParallelismValidation: negative parallelism is rejected; 0 resolves
// to GOMAXPROCS; spill parallelism inherits the resolved segment
// parallelism unless set explicitly.
func TestMRSParallelismValidation(t *testing.T) {
	cfg, _ := smallCfg(t, 4)
	cfg.Parallelism = -1
	if _, err := NewMRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), sortord.Empty, cfg); err == nil {
		t.Fatal("negative parallelism should error")
	}
	cfg.Parallelism = 0
	cfg.SpillParallelism = -1
	if _, err := NewMRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), sortord.Empty, cfg); err == nil {
		t.Fatal("negative spill parallelism should error")
	}
	if _, err := NewSRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), cfg); err == nil {
		t.Fatal("negative spill parallelism should error for SRS too")
	}
	cfg.SpillParallelism = 0
	if cfg.parallelism() < 1 {
		t.Fatalf("default parallelism resolved to %d", cfg.parallelism())
	}
	if cfg.spillParallelism() != cfg.parallelism() {
		t.Fatalf("spill parallelism %d should inherit parallelism %d",
			cfg.spillParallelism(), cfg.parallelism())
	}
	cfg.SpillParallelism = 3
	if cfg.spillParallelism() != 3 {
		t.Fatalf("explicit spill parallelism ignored: %d", cfg.spillParallelism())
	}
}

// TestMRSSpillParallelismOverride: SpillParallelism=1 pins the spill path
// to the consumer goroutine even when segment sorts run on the pool — the
// regime counters must show it, and output/stats must still match.
func TestMRSSpillParallelismOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows := genRows(6000, 3, rng)
	cfg, d := smallCfg(t, 8)
	cfg.Parallelism = 4
	cfg.SpillParallelism = 1
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	st := m.Stats()
	if st.SpilledSegs == 0 {
		t.Fatal("workload must spill for this test to mean anything")
	}
	if st.SpillRunsParallel != 0 || st.SpillRunsSerial != st.RunsGenerated {
		t.Fatalf("SpillParallelism=1 must keep spilling serial: %+v", st)
	}
	if names := d.FileNames(); len(names) != 0 {
		t.Fatalf("leaked run files %v", names)
	}
}
