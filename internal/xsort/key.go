package xsort

import (
	"bytes"
	"sort"

	"pyro/internal/keys"
	"pyro/internal/types"
)

// keyed is a tuple paired with its normalized sort key. In encoded mode the
// key is an order-preserving byte string (see package keys) and comparisons
// are a single bytes.Compare; in comparator mode key is nil and comparisons
// fall back to the field-by-field comparator. Keys are never decoded: the
// tuple rides along and is what gets emitted or spilled.
type keyed struct {
	key []byte
	t   types.Tuple
}

// keyer produces and compares keyed tuples for one sort operator. wrap is
// not safe for concurrent use (it reuses a scratch buffer and an arena);
// compare is pure and may be called from parallel segment sorters.
type keyer struct {
	codec *keys.Codec                // nil => comparator mode
	cmp   func(a, b types.Tuple) int // comparator mode / fallback
	// skip is the number of leading encoded-key bytes every key this keyer
	// compares is known to share. MRS binds one skip-carrying keyer per
	// partial-sort segment (the encoded byte length of the segment's
	// shared `given` prefix, keys.Codec.PrefixLen), so segment sorts and
	// per-segment run merges short-circuit the common prefix instead of
	// re-scanning it on every bytes.Compare — and radix run formation
	// seeds its first partitioning pass at this depth.
	skip    int
	scratch []byte
	arena   []byte // current arena block; keys are copied in to batch allocations
	ends    []int  // wrapBatch scratch: per-key end offsets within scratch
}

const arenaBlockSize = 64 << 10

// newKeyer builds a keyer for the given mode. codec may be nil even in
// encoded mode (unsupported key shape), in which case the comparator is
// used — callers pass the codec they managed to build.
func newKeyer(mode KeyMode, codec *keys.Codec, cmp func(a, b types.Tuple) int) *keyer {
	if mode == KeyComparator {
		codec = nil
	}
	return &keyer{codec: codec, cmp: cmp}
}

// encoded reports whether keys are normalized byte strings.
func (k *keyer) encoded() bool { return k.codec != nil }

// clone returns a keyer with the same codec, comparator and skip but
// private scratch buffers. Workers that need wrap — run merges re-encode
// keys as they read tuples back — must each hold their own clone; sharing
// one keyer across goroutines is only safe for compare.
func (k *keyer) clone() *keyer { return &keyer{codec: k.codec, cmp: k.cmp, skip: k.skip} }

// withSkip returns a clone that compares keys past the first skip encoded
// bytes. The caller guarantees every key the clone will ever see shares
// those bytes (and is at least that long); MRS derives skip per segment
// from the shared `given`-prefix encoding.
func (k *keyer) withSkip(skip int) *keyer {
	c := k.clone()
	c.skip = skip
	return c
}

// wrap attaches t's sort key. Keys are encoded into a reused scratch buffer
// and then copied into a block arena, so per-tuple allocations are batched;
// earlier keys stay valid because a full block is simply abandoned to the
// garbage collector when the next one is carved.
func (k *keyer) wrap(t types.Tuple) keyed {
	if k.codec == nil {
		return keyed{t: t}
	}
	k.scratch = k.codec.Append(k.scratch[:0], t)
	n := len(k.scratch)
	if cap(k.arena)-len(k.arena) < n {
		size := arenaBlockSize
		if n > size {
			size = n
		}
		k.arena = make([]byte, 0, size)
	}
	start := len(k.arena)
	k.arena = append(k.arena, k.scratch...)
	return keyed{key: k.arena[start:len(k.arena):len(k.arena)], t: t}
}

// wrapBatch attaches sort keys to a whole batch of tuples, appending the
// keyed entries to out. It is the batch analogue of wrap: the chunk's keys
// are encoded back-to-back into the scratch buffer (keys.Codec.EncodeBatch)
// and copied into the arena under a single capacity check, so the
// per-tuple cost shrinks to slicing offsets. Byte content and key
// boundaries are identical to per-tuple wrap calls.
func (k *keyer) wrapBatch(rows []types.Tuple, out []keyed) []keyed {
	if k.codec == nil {
		for _, t := range rows {
			out = append(out, keyed{t: t})
		}
		return out
	}
	k.scratch, k.ends = k.codec.EncodeBatch(k.scratch[:0], rows, k.ends[:0])
	total := len(k.scratch)
	if cap(k.arena)-len(k.arena) < total {
		size := arenaBlockSize
		if total > size {
			size = total
		}
		k.arena = make([]byte, 0, size)
	}
	base := len(k.arena)
	k.arena = append(k.arena, k.scratch...)
	prev := 0
	for i, end := range k.ends {
		out = append(out, keyed{key: k.arena[base+prev : base+end : base+end], t: rows[i]})
		prev = end
	}
	return out
}

// compare orders two keyed tuples. Callers count comparisons; compare does
// not touch shared state and is safe to call concurrently.
func (k *keyer) compare(a, b keyed) int {
	if k.codec != nil {
		return bytes.Compare(a.key[k.skip:], b.key[k.skip:])
	}
	return k.cmp(a.t, b.t)
}

// sortKeyed stable-sorts buf under the keyer, returning the emission order
// as a permutation of indices and the number of key comparisons performed.
// Sorting indices instead of the 48-byte keyed entries keeps the sort's
// data movement to 4-byte swaps with no write barriers (the entries hold
// pointers); emission then reads buf through the permutation — the
// decode-free design: a key is only ever compared, never decoded, and the
// index leads back to the tuple. The count is returned rather than
// accumulated so parallel segment sorts can tally locally and publish once,
// keeping SortStats free of atomics and its totals deterministic.
func sortKeyed(buf []keyed, ky *keyer) ([]int32, int64) {
	order := make([]int32, len(buf))
	for i := range order {
		order[i] = int32(i)
	}
	var comparisons int64
	sort.SliceStable(order, func(i, j int) bool {
		comparisons++
		return ky.compare(buf[order[i]], buf[order[j]]) < 0
	})
	return order, comparisons
}
