package xsort

import (
	"fmt"

	"pyro/internal/iter"
	"pyro/internal/keys"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// SRS is the standard replacement-selection external sort. It is blocking:
// Open consumes the entire input, forming runs (averaging twice the memory
// size for random input, one run for sorted input), reduces them to at most
// fan-in runs, and Next serves tuples from the final merge. When the whole
// input fits in memory no run is written and the sort is CPU-only.
//
// Each input tuple's sort key is normalized once on entry (Config.Keys);
// every heap and merge comparison is then a single byte-string compare.
// Run formation is inherently sequential (one replacement-selection heap),
// but the run-reduction passes merge independent groups concurrently when
// SpillParallelism > 1. All spill files live in one SpillArena, whose
// release on Close (or error) both cleans them up and folds their I/O into
// the disk's global ledger.
//
// Config.RunFormation applies to the phase-1 fill: in radix (or adaptive)
// mode the initial memory load is byte-bucket sorted and seeds the heap as
// a sorted array — valid heap order, zero build comparisons — or, when the
// whole input fits, is emitted directly. Replacement selection itself stays
// comparison-based in every mode: its incremental push/pop structure is
// what produces the paper's 2M-sized runs, and a heap has no radix
// equivalent. Run count, run sizes and I/O totals are therefore identical
// across modes (the pop sequence visits the same key multiset in the same
// ascending order).
type SRS struct {
	input  iter.Iterator
	schema *types.Schema
	order  sortord.Order
	cfg    Config
	ks     types.KeySpec
	ky     *keyer
	stats  SortStats

	// In-memory fast path.
	memOut []types.Tuple
	memPos int
	inMem  bool

	merger merger
	runs   []spillRun
	lay    entryLayout
	arena  *storage.SpillArena // lazily created spill namespace; owns all temps
	src    *tupleSource        // keyed input collection (batched when configured)
	opened bool
	closed bool
}

// NewSRS builds a standard replacement-selection sort of input under order
// o. The order must be resolvable against the input schema.
func NewSRS(input iter.Iterator, schema *types.Schema, o sortord.Order, cfg Config) (*SRS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if o.IsEmpty() {
		return nil, fmt.Errorf("xsort: empty sort order")
	}
	ks, err := types.MakeKeySpec(schema, o)
	if err != nil {
		return nil, err
	}
	// A nil codec (key shape the encoder does not support, e.g. a NULL
	// literal column) falls back to the field comparator inside newKeyer;
	// the sort itself must never fail over the key representation.
	codec, _ := keys.FromKeySpec(ks)
	if cfg.TempPrefix == "" {
		cfg.TempPrefix = "srs"
	}
	ky := newKeyer(cfg.Keys, codec, ks.Compare)
	return &SRS{
		input:  input,
		schema: schema,
		order:  o.Clone(),
		cfg:    cfg,
		ks:     ks,
		ky:     ky,
		lay:    resolveLayout(cfg, ky, 0),
	}, nil
}

// Stats returns the operator's work counters (valid after Open).
func (s *SRS) Stats() *SortStats { return &s.stats }

// Order returns the produced sort order.
func (s *SRS) Order() sortord.Order { return s.order }

// Open consumes the input and prepares the merge. This is where standard
// replacement selection breaks the pipeline: nothing is emitted until all
// input has been read. On error, any run files already written are removed.
func (s *SRS) Open() error {
	if err := s.open(); err != nil {
		s.removeTemps()
		return err
	}
	return nil
}

func (s *SRS) open() error {
	if s.opened {
		return fmt.Errorf("xsort: SRS opened twice")
	}
	s.opened = true
	if err := s.input.Open(); err != nil {
		return err
	}
	s.src = newTupleSource(s.input, s.schema, s.ky, s.cfg)
	h := newRunHeap(s.ky, &s.stats.Comparisons)
	// Open is where SRS blocks for its entire input, so it is the loop a
	// cancellation most needs to reach (a canceled query must not sort two
	// million tuples first).
	guard := iter.NewGuard(s.cfg.Abort)

	// Phase 1: read up to the memory budget into a flat fill buffer. The
	// buffer — not the heap — is what radix run formation sorts: a buffer
	// whose keys are byte-bucket sorted IS a valid min-heap (every prefix
	// of an ascending array satisfies the heap property), so replacement
	// selection can be seeded without the O(n log n) comparison cost of
	// building the initial heap.
	inputDone := false
	var fill []keyed
	var fillBytes int64
	// The budget is re-read per iteration: a governed sort's allowance can
	// shrink while the fill is being read, capping the heap (and every
	// later phase's memory) at the new bound.
	for fillBytes < s.cfg.memoryBytes() {
		if err := guard.Check(); err != nil {
			return err
		}
		kt, ok, err := s.src.next()
		if err != nil {
			return err
		}
		if !ok {
			inputDone = true
			break
		}
		s.stats.TuplesIn++
		fill = append(fill, kt)
		fillBytes += int64(kt.t.MemSize())
	}
	s.trackPeak(fillBytes)

	if radixEligible(fill, s.ky, s.cfg.RunFormation) {
		order, tally := radixSortKeyed(fill, s.ky.skip)
		tally.addTo(&s.stats)
		if inputDone {
			// Whole input fits in memory: emit the stable radix order
			// directly, no heap and no disk I/O.
			s.inMem = true
			s.memOut = make([]types.Tuple, len(fill))
			for i, idx := range order {
				s.memOut[i] = fill[idx].t
			}
			return nil
		}
		h.seed(fill, order)
	} else {
		// Comparison path: push the fill in input order — the identical
		// comparison sequence the pre-buffered implementation performed
		// by pushing as it read.
		for _, kt := range fill {
			h.push(runEntry{tag: 0, kt: kt})
		}
		if inputDone {
			// Whole input fits in memory: drain the heap, no disk I/O.
			s.inMem = true
			s.memOut = make([]types.Tuple, 0, h.len())
			for h.len() > 0 {
				s.memOut = append(s.memOut, h.pop().kt.t)
			}
			return nil
		}
	}

	// Phase 2: replacement selection. Pop the minimum of the current run,
	// write it out, replace it with the next input tuple — tagged for the
	// current run if it can still be emitted in order, else for the next.
	// Runs stream through a runWriter: payload tuples plus, in the flat
	// layouts, fixed-width entries derived from the already encoded keys.
	currentRun := 0
	w := s.newRunWriter()
	var lastOut keyed

	finishRun := func() error {
		run, pages, err := w.close()
		if err != nil {
			return err
		}
		s.runs = append(s.runs, run)
		s.stats.FlatRunPages += pages
		s.stats.RunsGenerated++
		return nil
	}

	for {
		if err := guard.Check(); err != nil {
			return err
		}
		if h.len() == 0 {
			break
		}
		e := h.peek()
		if e.tag != currentRun {
			// Current run exhausted: start the next one.
			if err := finishRun(); err != nil {
				return err
			}
			currentRun++
			w = s.newRunWriter()
			lastOut = keyed{}
		}
		e = h.pop()
		if err := w.write(e.kt); err != nil {
			return err
		}
		lastOut = e.kt
		if !inputDone {
			kt, ok, err := s.src.next()
			if err != nil {
				return err
			}
			if !ok {
				inputDone = true
			} else {
				s.stats.TuplesIn++
				tag := currentRun
				s.stats.Comparisons++
				if s.ky.compare(kt, lastOut) < 0 {
					tag = currentRun + 1
				}
				h.push(runEntry{tag: tag, kt: kt})
				s.trackPeak(h.memBytes())
			}
		}
	}
	if err := finishRun(); err != nil {
		return err
	}

	// Phase 3: reduce runs to fan-in and set up the final merge. Groups
	// within a pass merge concurrently under SpillParallelism.
	runs, err := reduceRuns(s.cfg, s.arena, s.runs, s.ky, s.lay, &s.stats)
	if err != nil {
		return err
	}
	s.runs = runs
	s.merger, err = openMerger(runs, s.ky, s.lay, &s.stats)
	return err
}

// newRunWriter opens a streaming run writer in the sort's spill arena
// (created on first spill; an in-memory sort never allocates one).
func (s *SRS) newRunWriter() *runWriter {
	if s.arena == nil {
		s.arena = s.cfg.Disk.NewArenaTapped(s.cfg.Tap)
	}
	return newRunWriter(s.arena, s.cfg.TempPrefix, s.lay, s.ky.skip)
}

// removeTemps releases the spill arena, dropping every run file this sort
// created — formation runs and reduction outputs alike — and merging the
// arena's I/O ledger into the disk's (idempotent).
func (s *SRS) removeTemps() {
	if s.arena != nil {
		s.arena.Release()
		s.arena = nil
	}
	s.runs = nil
}

func (s *SRS) trackPeak(b int64) {
	if b > s.stats.PeakMemBytes {
		s.stats.PeakMemBytes = b
	}
}

// Next returns the next tuple in sorted order.
func (s *SRS) Next() (types.Tuple, bool, error) {
	if s.inMem {
		if s.memPos >= len(s.memOut) {
			return nil, false, nil
		}
		t := s.memOut[s.memPos]
		s.memPos++
		s.stats.TuplesOut++
		return t, true, nil
	}
	t, ok, err := s.merger.next()
	if ok {
		s.stats.TuplesOut++
	}
	return t, ok, err
}

// Close releases run files and closes the input.
func (s *SRS) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.removeTemps()
	if s.src != nil {
		s.src.release()
	}
	return s.input.Close()
}
