// Package xsort implements external sorting as Volcano iterators:
//
//   - SRS — standard replacement selection (Knuth '73): heap-based run
//     formation producing runs averaging twice the memory size, followed by
//     multiway merging. With fully sorted input it still writes one big run
//     to disk and reads it back, breaking the pipeline — the deficiency the
//     paper highlights.
//
//   - MRS — the paper's modified replacement selection (§3.1): when the
//     input is known to carry a partial sort order (a prefix of the target
//     order), tuples are grouped into partial-sort segments and each segment
//     is sorted independently. If a segment fits in memory the sort does no
//     I/O at all and emits tuples as soon as the segment's last tuple has
//     been read, giving pipelined execution, early output, and fewer
//     comparisons (suffix-only within a segment).
//
// Both operators charge every run-file page transfer to the disk's IOStats
// (attributed to KindRun) and count key comparisons in SortStats.
package xsort

import (
	"fmt"
	"sort"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// SortStats records the work done by one sort operator instance.
type SortStats struct {
	Comparisons   int64 // key comparisons performed
	RunsGenerated int   // runs written to disk
	MergePasses   int   // intermediate merge passes (excluding the final pipelined merge)
	Segments      int   // MRS: partial-sort segments processed
	SpilledSegs   int   // MRS: segments that did not fit in memory
	PeakMemBytes  int64 // high-water mark of buffered tuple bytes
	TuplesIn      int64
	TuplesOut     int64
}

// Config carries the resources available to a sort operator.
type Config struct {
	Disk *storage.Disk
	// MemoryBlocks is M, the number of disk blocks worth of main memory
	// available for sorting (the paper uses M = 10000 blocks = 40 MB).
	MemoryBlocks int
	// TempPrefix names the run files for debuggability.
	TempPrefix string
}

func (c Config) memoryBytes() int64 {
	return int64(c.MemoryBlocks) * int64(c.Disk.PageSize())
}

func (c Config) fanIn() int {
	f := c.MemoryBlocks - 1
	if f < 2 {
		f = 2
	}
	return f
}

// validate checks configuration invariants shared by SRS and MRS.
func (c Config) validate() error {
	if c.Disk == nil {
		return fmt.Errorf("xsort: Config.Disk is nil")
	}
	if c.MemoryBlocks <= 0 {
		return fmt.Errorf("xsort: MemoryBlocks must be positive, got %d", c.MemoryBlocks)
	}
	return nil
}

// sortBuffer sorts tuples in place by cmp, counting comparisons into stats.
func sortBuffer(tuples []types.Tuple, cmp func(a, b types.Tuple) int, comparisons *int64) {
	sort.SliceStable(tuples, func(i, j int) bool {
		*comparisons++
		return cmp(tuples[i], tuples[j]) < 0
	})
}

// writeRun writes tuples to a fresh run file and returns it.
func writeRun(cfg Config, tuples []types.Tuple) (*storage.File, error) {
	f := cfg.Disk.CreateTemp(cfg.TempPrefix, storage.KindRun)
	if err := storage.WriteAll(f, tuples); err != nil {
		return nil, err
	}
	return f, nil
}

// NewSorted is a convenience that fully sorts the input under order o and
// returns the result (test/tool helper; not used on query paths).
func NewSorted(input iter.Iterator, schema *types.Schema, o sortord.Order, cfg Config) ([]types.Tuple, *SortStats, error) {
	s, err := NewSRS(input, schema, o, cfg)
	if err != nil {
		return nil, nil, err
	}
	out, err := iter.Drain(s)
	if err != nil {
		return nil, nil, err
	}
	return out, s.Stats(), nil
}
