// Package xsort implements external sorting as Volcano iterators:
//
//   - SRS — standard replacement selection (Knuth '73): heap-based run
//     formation producing runs averaging twice the memory size, followed by
//     multiway merging. With fully sorted input it still writes one big run
//     to disk and reads it back, breaking the pipeline — the deficiency the
//     paper highlights.
//
//   - MRS — the paper's modified replacement selection (§3.1): when the
//     input is known to carry a partial sort order (a prefix of the target
//     order), tuples are grouped into partial-sort segments and each segment
//     is sorted independently. If a segment fits in memory the sort does no
//     I/O at all and emits tuples as soon as the segment's last tuple has
//     been read, giving pipelined execution, early output, and fewer
//     comparisons (suffix-only within a segment).
//
// Key comparisons default to normalized keys: each tuple's sort key is
// encoded once (package keys) into an order-preserving byte string, so a
// comparison is a single bytes.Compare instead of a typed field walk.
// Config.Keys selects the legacy comparator path for ablation. Both paths
// count comparisons at identical call sites, so SortStats totals are the
// same in either mode and the golden/ablation expectations stay meaningful.
//
// Run formation — producing the sorted order of an in-memory buffer, be it
// an MRS segment, a spill batch, or SRS's initial heap fill — additionally
// exploits that byte order IS key order: Config.RunFormation selects MSD
// radix partitioning over the encoded keys (see radix.go) instead of the
// comparison sort. The radix order is bit-identical to the stable
// comparison order, so MRS output bytes, run/pass structure, and I/O
// totals are the same in every mode; SRS agrees on all of those too except
// that tuples tied on the full sort key may emit in a different relative
// order (its compare-mode path drains an unstable replacement-selection
// heap, while radix is stable — the key sequence itself is identical).
// Only the work accounting otherwise changes (RadixPasses and
// RadixBucketScans alongside a smaller Comparisons). The default, adaptive,
// falls back to comparisons for tiny buffers and short keys.
//
// MRS additionally sorts independent in-memory segments on a bounded worker
// pool (Config.Parallelism); see mrs.go for the pipelining contract. The
// spill path is concurrent too (Config.SpillParallelism): an oversized MRS
// segment's memory batches are sorted and written as runs by worker
// goroutines, each into a per-segment storage.SpillArena, and run reduction
// overlaps run formation; SRS parallelizes its run-reduction merge passes
// the same way. With SpillParallelism 1 both operators run the paper's
// serial algorithm bit for bit.
//
// Both operators charge every run-file page transfer to the disk's IOStats
// (attributed to KindRun, accumulated lock-free in per-arena ledgers that
// merge into the global ledger) and count key comparisons in SortStats.
// Comparison and I/O totals are identical at every parallelism level: the
// same batches form the same runs, the same groups merge in the same pass
// structure, and per-job counts fold into SortStats in deterministic order
// on the consumer goroutine.
package xsort

import (
	"fmt"
	"runtime"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// SortStats records the work done by one sort operator instance.
type SortStats struct {
	Comparisons   int64 // key comparisons performed
	RunsGenerated int   // runs written to disk
	MergePasses   int   // intermediate merge passes (excluding the final pipelined merge)
	Segments      int   // MRS: partial-sort segments processed
	SpilledSegs   int   // MRS: segments that did not fit in memory
	PeakMemBytes  int64 // high-water mark of buffered tuple bytes
	TuplesIn      int64
	TuplesOut     int64

	// RadixPasses and RadixBucketScans account radix run formation in the
	// same spirit Comparisons accounts the comparison sorts: one pass is
	// one counting distribution over a bucket's entries on one key byte,
	// and the scan counter totals the tuples those passes classified. In
	// radix mode total sort work reads as Comparisons (heap, merge, and
	// insertion-sort tails) plus these; in compare mode both stay zero.
	RadixPasses      int64
	RadixBucketScans int64

	// MergeBucketSkips counts, in the flat layouts' radix-aware merges,
	// advanced run heads parked comparison-free because they left the merge
	// frontier's leading-byte bucket — each one a run temporarily excluded
	// from heap ordering entirely. FlatRunPages counts entry pages written
	// for flat spill runs (formation and merge outputs; payload tuple pages
	// stay under the I/O ledger as before). Both are deterministic at every
	// parallelism and batch size, like every other counter here.
	MergeBucketSkips int64
	FlatRunPages     int64

	// SpillRunsSerial and SpillRunsParallel split MRS spill-run formation
	// by regime: runs sorted and written inline on the consumer goroutine
	// (SpillParallelism 1, the paper's serial algorithm) versus runs formed
	// by worker-pool flush jobs into per-segment spill arenas. Before the
	// spill subsystem went concurrent, an oversized segment silently
	// serialized the whole pipeline even with Parallelism > 1; benchmarks
	// read these counters to tell the two regimes apart instead of
	// guessing from wall-clock shape.
	SpillRunsSerial   int
	SpillRunsParallel int
}

// KeyMode selects how sort keys are compared.
type KeyMode uint8

const (
	// KeyEncoded (the default) compares normalized byte-string keys with
	// bytes.Compare; each tuple is encoded once on entry.
	KeyEncoded KeyMode = iota
	// KeyComparator compares tuples field by field through the resolved
	// KeySpec — the pre-normalized-key path, kept for ablation.
	KeyComparator
)

// RunFormation selects how the sorted order of an in-memory buffer is
// produced (MRS segment sorts, spill-batch sorts, SRS's phase-1 fill).
// Every mode yields the identical stable buffer order; see radix.go and
// the package comment for the one visible difference (SRS key ties).
type RunFormation uint8

const (
	// RunFormAdaptive (the default) picks MSD radix partitioning for
	// encoded keys on buffers large enough to amortize bucket bookkeeping,
	// and the comparison sort otherwise.
	RunFormAdaptive RunFormation = iota
	// RunFormCompare always sorts by key comparisons — the pre-radix path,
	// kept for ablation and as the comparator-mode fallback.
	RunFormCompare
	// RunFormRadix always radix-partitions encoded keys (comparator-mode
	// keyers still fall back to comparisons: there is no byte string to
	// partition).
	RunFormRadix
)

// String returns the CLI spelling of the mode.
func (rf RunFormation) String() string {
	switch rf {
	case RunFormAdaptive:
		return "adaptive"
	case RunFormCompare:
		return "compare"
	case RunFormRadix:
		return "radix"
	}
	return fmt.Sprintf("RunFormation(%d)", uint8(rf))
}

// ParseRunFormation parses the CLI spelling ("" means the default).
func ParseRunFormation(s string) (RunFormation, error) {
	switch s {
	case "", "adaptive":
		return RunFormAdaptive, nil
	case "compare":
		return RunFormCompare, nil
	case "radix":
		return RunFormRadix, nil
	}
	return 0, fmt.Errorf("xsort: unknown run formation %q (want adaptive, compare or radix)", s)
}

// Budget is a live sort-memory allowance in disk blocks. A sort consults
// it at every buffering decision (per tuple collected, per fill-loop
// iteration), so an external governor can shrink a running sort's memory
// mid-query and the sort starts spilling at the new bound from its next
// tuple on. Implementations must be safe for concurrent use — a sort's
// spill workers and the governor read and write it from different
// goroutines.
type Budget interface {
	// Blocks returns the current allowance in disk blocks.
	Blocks() int
}

// Config carries the resources available to a sort operator.
type Config struct {
	Disk *storage.Disk
	// MemoryBlocks is M, the number of disk blocks worth of main memory
	// available for sorting (the paper uses M = 10000 blocks = 40 MB).
	MemoryBlocks int
	// Budget, when non-nil, overrides MemoryBlocks as the live memory
	// allowance: buffering decisions re-read it, so it may shrink (or grow)
	// while the sort runs. MemoryBlocks still sizes the structural choices
	// fixed at build time — the merge fan-in and the cost model's M — so a
	// governor shrink changes where the sort spills, never the shape of its
	// merge. With Budget nil behaviour is exactly the static budget.
	Budget Budget
	// TempPrefix names the run files for debuggability.
	TempPrefix string
	// Keys selects normalized-key (default) or comparator key comparison.
	Keys KeyMode
	// RunFormation selects radix, comparison, or adaptive (default)
	// production of in-memory sorted orders. Run/pass structure, I/O and
	// output key order are identical in every mode; output bytes are
	// bit-identical for MRS, and for SRS up to the emission order of
	// tuples with duplicate full sort keys (see the package comment).
	RunFormation RunFormation
	// EntryLayout selects the spill-run representation and merge algorithm:
	// flat fixed-width entries with the radix-aware bucket merge (default),
	// flat entries with the plain comparison heap (ablation), or the legacy
	// re-encoded tuple runs (see entry.go). Comparator-mode sorts always
	// use the tuple layout — there is no encoded key to lay out flat.
	EntryLayout EntryLayout
	// Parallelism bounds how many MRS in-memory segments may be sorted
	// concurrently. 0 means runtime.GOMAXPROCS(0); 1 means fully serial,
	// strictly demand-driven reading (the paper's original behaviour).
	// Read-ahead stops once buffered tuples reach the MemoryBlocks budget,
	// so parallelism deepens the pipeline without multiplying M.
	// SRS run formation is unaffected: its replacement-selection heap is
	// inherently sequential.
	Parallelism int
	// Abort, when non-nil, is polled (at a bounded stride, via iter.Guard)
	// by the sort's long-running loops: SRS's input consumption inside
	// Open, MRS's segment collection, and the run-formation and
	// run-reduction merge loops of the spill path. The first non-nil error
	// aborts the sort, which surfaces it from Open or Next and releases
	// its spill state on Close as usual. This is how streaming execution
	// threads context cancellation into a sort that would otherwise block
	// for its whole input; nil means the sort only stops at EOF or error.
	// Must be safe for concurrent use — spill workers poll it too.
	Abort func() error
	// Tap, when non-nil, observes every spill-file block transfer this sort
	// causes (run formation, reduction merges, final merge reads) in
	// addition to the normal device accounting: the sort's spill arenas are
	// created tapped. Streaming execution passes the query's storage.Tap
	// here so ExecStats.IO attributes spill I/O to the right query even
	// under concurrent cursors.
	Tap *storage.Tap
	// BatchSize, when > 1, batches the sort's *input* collection: tuples
	// are pulled from a chunk-capable input (see source.go) a chunk at a
	// time and their sort keys encoded per batch (keys.Codec.EncodeBatch).
	// The sort's tuple-level algorithm — segment boundaries, budget checks,
	// abort polling, emission — is untouched, and a chunk never crosses a
	// storage page, so output bytes, SortStats and I/O are identical at
	// every batch size. 0 or 1 means row-at-a-time collection (the legacy
	// path, exactly).
	BatchSize int
	// SpillParallelism bounds each stage of spill work independently: at
	// most this many run-forming sorts of an oversized segment's memory
	// batches in flight, and at most this many run-reduction group merges
	// at once (during the pipelined harvest the two stages overlap, so up
	// to twice this many spill goroutines can briefly coexist). 0 inherits
	// the resolved Parallelism; 1 keeps the entire spill path on the
	// consumer goroutine (the paper's serial algorithm, and the pre-arena
	// behaviour). Values above 1 let each worker form runs into its own
	// spill arena, multiplying transient sort memory by up to the same
	// factor (each in-flight flush holds one MemoryBlocks-sized batch).
	SpillParallelism int
}

func (c Config) memoryBytes() int64 {
	blocks := c.MemoryBlocks
	if c.Budget != nil {
		if b := c.Budget.Blocks(); b > 0 && b < blocks {
			blocks = b
		}
	}
	return int64(blocks) * int64(c.Disk.PageSize())
}

func (c Config) fanIn() int {
	f := c.MemoryBlocks - 1
	if f < 2 {
		f = 2
	}
	return f
}

func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) spillParallelism() int {
	if c.SpillParallelism > 0 {
		return c.SpillParallelism
	}
	return c.parallelism()
}

// validate checks configuration invariants shared by SRS and MRS.
func (c Config) validate() error {
	if c.Disk == nil {
		return fmt.Errorf("xsort: Config.Disk is nil")
	}
	if c.MemoryBlocks <= 0 {
		return fmt.Errorf("xsort: MemoryBlocks must be positive, got %d", c.MemoryBlocks)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("xsort: Parallelism must be non-negative, got %d", c.Parallelism)
	}
	if c.SpillParallelism < 0 {
		return fmt.Errorf("xsort: SpillParallelism must be non-negative, got %d", c.SpillParallelism)
	}
	if c.RunFormation > RunFormRadix {
		return fmt.Errorf("xsort: unknown RunFormation %d", c.RunFormation)
	}
	if c.EntryLayout > LayoutTuple {
		return fmt.Errorf("xsort: unknown EntryLayout %d", c.EntryLayout)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("xsort: BatchSize must be non-negative, got %d", c.BatchSize)
	}
	return nil
}

// recoverWorker converts a panic on a sort worker goroutine into an error at
// *dst. Worker pools run run formation, segment sorts and group merges off
// the consumer goroutine, where an unrecovered panic — a bug, or an injected
// panic fault — would kill the process before any cursor boundary could
// contain it; with this deferred on every worker it instead propagates as
// the sort's first error through the normal abort plumbing.
func recoverWorker(dst *error) {
	if r := recover(); r != nil {
		// Keep the chain when the panic value is an error, so sentinels
		// (e.g. an injected storage fault in panic mode) stay matchable
		// with errors.Is once the job error reaches the cursor.
		if err, ok := r.(error); ok {
			*dst = fmt.Errorf("xsort: worker panic: %w", err)
		} else {
			*dst = fmt.Errorf("xsort: worker panic: %v", r)
		}
	}
}

// NewSorted is a convenience that fully sorts the input under order o and
// returns the result (test/tool helper; not used on query paths).
func NewSorted(input iter.Iterator, schema *types.Schema, o sortord.Order, cfg Config) ([]types.Tuple, *SortStats, error) {
	s, err := NewSRS(input, schema, o, cfg)
	if err != nil {
		return nil, nil, err
	}
	out, err := iter.Drain(s)
	if err != nil {
		return nil, nil, err
	}
	return out, s.Stats(), nil
}
