package xsort

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// The golden values below were captured from the pre-arena serial spill
// path (PR 1, commit c12f98e) on the fixed workload of goldenRows: 6000
// rows in 3 oversized segments, 512-byte pages. They pin the refactored
// spill subsystem to the paper's serial algorithm byte for byte — output
// sequence (order-sensitive FNV checksum of the encoded tuples), comparison
// counts, run/pass structure and I/O totals. Any change to these numbers is
// a semantic change to the sort, not a scheduling change, and must be
// deliberate.
const (
	goldenChecksum = 0x5cfb849c70b9843d

	goldenMRSComparisons = 88566
	goldenMRSRuns        = 183
	goldenMRSPasses      = 6
	goldenMRSIOTotal     = 2730 // 1365 reads + 1365 writes, all run-attributed

	goldenSRSComparisons = 98977
	goldenSRSRuns        = 179
	goldenSRSPasses      = 4
	goldenSRSIOTotal     = 4178 // 2089 reads + 2089 writes, all run-attributed
)

func goldenRows() []types.Tuple {
	return genRows(6000, 3, rand.New(rand.NewSource(77)))
}

func goldenShuffled() []types.Tuple {
	return shuffled(goldenRows(), rand.New(rand.NewSource(78)))
}

// orderChecksum hashes the encoded tuples in sequence, so two equal
// checksums mean identical output order, not just an equal multiset.
func orderChecksum(rows []types.Tuple) uint64 {
	h := fnv.New64a()
	var buf []byte
	for _, r := range rows {
		buf = r.Encode(buf[:0])
		h.Write(buf)
	}
	return h.Sum64()
}

// TestGoldenSerialSpill pins the Parallelism=1 spill path — for both MRS
// (3 oversized segments) and SRS (shuffled input, tiny memory) — to the
// values the pre-refactor serial implementation produced. Run formation is
// pinned to the comparison sort: the golden comparison counts are
// comparison-path numbers (radix mode spends its work in RadixPasses
// instead; TestGoldenRadixAgrees holds it to the same output and
// structure).
func TestGoldenSerialSpill(t *testing.T) {
	t.Run("mrs", func(t *testing.T) {
		d := storage.NewDisk(512)
		m, err := NewMRS(iter.FromSlice(goldenRows()), sortSchema,
			sortord.New("c1", "c2"), sortord.New("c1"),
			Config{Disk: d, MemoryBlocks: 8, Parallelism: 1, RunFormation: RunFormCompare, EntryLayout: LayoutTuple})
		if err != nil {
			t.Fatal(err)
		}
		out, err := iter.Drain(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := orderChecksum(out); got != goldenChecksum {
			t.Errorf("output checksum = %#x, golden %#x", got, goldenChecksum)
		}
		st := m.Stats()
		if st.Comparisons != goldenMRSComparisons {
			t.Errorf("Comparisons = %d, golden %d", st.Comparisons, goldenMRSComparisons)
		}
		if st.RunsGenerated != goldenMRSRuns || st.MergePasses != goldenMRSPasses {
			t.Errorf("runs/passes = %d/%d, golden %d/%d",
				st.RunsGenerated, st.MergePasses, goldenMRSRuns, goldenMRSPasses)
		}
		if st.SpillRunsSerial != goldenMRSRuns || st.SpillRunsParallel != 0 {
			t.Errorf("spill regime = serial %d / parallel %d, want all %d serial",
				st.SpillRunsSerial, st.SpillRunsParallel, goldenMRSRuns)
		}
		io := d.Stats()
		if io.Total() != goldenMRSIOTotal || io.RunTotal() != goldenMRSIOTotal {
			t.Errorf("IO total/run = %d/%d, golden %d (all run-attributed)",
				io.Total(), io.RunTotal(), goldenMRSIOTotal)
		}
	})

	t.Run("srs", func(t *testing.T) {
		d := storage.NewDisk(512)
		s, err := NewSRS(iter.FromSlice(goldenShuffled()), sortSchema,
			sortord.New("c1", "c2"),
			Config{Disk: d, MemoryBlocks: 4, Parallelism: 1, RunFormation: RunFormCompare, EntryLayout: LayoutTuple})
		if err != nil {
			t.Fatal(err)
		}
		out, err := iter.Drain(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := orderChecksum(out); got != goldenChecksum {
			t.Errorf("output checksum = %#x, golden %#x", got, goldenChecksum)
		}
		st := s.Stats()
		if st.Comparisons != goldenSRSComparisons {
			t.Errorf("Comparisons = %d, golden %d", st.Comparisons, goldenSRSComparisons)
		}
		if st.RunsGenerated != goldenSRSRuns || st.MergePasses != goldenSRSPasses {
			t.Errorf("runs/passes = %d/%d, golden %d/%d",
				st.RunsGenerated, st.MergePasses, goldenSRSRuns, goldenSRSPasses)
		}
		io := d.Stats()
		if io.Total() != goldenSRSIOTotal || io.RunTotal() != goldenSRSIOTotal {
			t.Errorf("IO total/run = %d/%d, golden %d (all run-attributed)",
				io.Total(), io.RunTotal(), goldenSRSIOTotal)
		}
	})
}

// TestGoldenParallelSpillAgrees runs the identical workloads at several
// parallelism levels and demands the exact golden output order, comparison
// counts and I/O totals — parallel spilling must be a pure scheduling
// change (the PR's acceptance criterion).
func TestGoldenParallelSpillAgrees(t *testing.T) {
	for _, par := range []int{2, 4, 8} {
		d := storage.NewDisk(512)
		m, err := NewMRS(iter.FromSlice(goldenRows()), sortSchema,
			sortord.New("c1", "c2"), sortord.New("c1"),
			Config{Disk: d, MemoryBlocks: 8, Parallelism: par, RunFormation: RunFormCompare, EntryLayout: LayoutTuple})
		if err != nil {
			t.Fatal(err)
		}
		out, err := iter.Drain(m)
		if err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		if got := orderChecksum(out); got != goldenChecksum {
			t.Errorf("par=%d: MRS checksum = %#x, golden %#x", par, got, goldenChecksum)
		}
		if st.Comparisons != goldenMRSComparisons {
			t.Errorf("par=%d: MRS Comparisons = %d, golden %d", par, st.Comparisons, goldenMRSComparisons)
		}
		if st.SpillRunsParallel != goldenMRSRuns || st.SpillRunsSerial != 0 {
			t.Errorf("par=%d: spill regime = serial %d / parallel %d, want all %d parallel",
				par, st.SpillRunsSerial, st.SpillRunsParallel, goldenMRSRuns)
		}
		if io := d.Stats(); io.Total() != goldenMRSIOTotal {
			t.Errorf("par=%d: MRS IO total = %d, golden %d", par, io.Total(), goldenMRSIOTotal)
		}
		if names := d.FileNames(); len(names) != 0 {
			t.Errorf("par=%d: leaked files %v", par, names)
		}

		d2 := storage.NewDisk(512)
		s, err := NewSRS(iter.FromSlice(goldenShuffled()), sortSchema,
			sortord.New("c1", "c2"),
			Config{Disk: d2, MemoryBlocks: 4, SpillParallelism: par, RunFormation: RunFormCompare, EntryLayout: LayoutTuple})
		if err != nil {
			t.Fatal(err)
		}
		out, err = iter.Drain(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := orderChecksum(out); got != goldenChecksum {
			t.Errorf("par=%d: SRS checksum = %#x, golden %#x", par, got, goldenChecksum)
		}
		if s.Stats().Comparisons != goldenSRSComparisons {
			t.Errorf("par=%d: SRS Comparisons = %d, golden %d", par, s.Stats().Comparisons, goldenSRSComparisons)
		}
		if io := d2.Stats(); io.Total() != goldenSRSIOTotal {
			t.Errorf("par=%d: SRS IO total = %d, golden %d", par, io.Total(), goldenSRSIOTotal)
		}
	}
}

// TestGoldenRadixAgrees holds radix (and adaptive) run formation to the
// golden output order, run/pass structure and I/O totals at every
// parallelism level: switching the run-formation algorithm is a pure
// work-accounting change, never a semantic one. Comparison counts are the
// one golden deliberately NOT asserted — radix spends that work in
// byte-bucket passes (RadixPasses/RadixBucketScans) instead.
func TestGoldenRadixAgrees(t *testing.T) {
	for _, rf := range []RunFormation{RunFormRadix, RunFormAdaptive} {
		for _, par := range []int{1, 2, 4, 8} {
			d := storage.NewDisk(512)
			m, err := NewMRS(iter.FromSlice(goldenRows()), sortSchema,
				sortord.New("c1", "c2"), sortord.New("c1"),
				Config{Disk: d, MemoryBlocks: 8, Parallelism: par, RunFormation: rf, EntryLayout: LayoutTuple})
			if err != nil {
				t.Fatal(err)
			}
			out, err := iter.Drain(m)
			if err != nil {
				t.Fatal(err)
			}
			st := m.Stats()
			if got := orderChecksum(out); got != goldenChecksum {
				t.Errorf("%v par=%d: MRS checksum = %#x, golden %#x", rf, par, got, goldenChecksum)
			}
			if st.RunsGenerated != goldenMRSRuns || st.MergePasses != goldenMRSPasses {
				t.Errorf("%v par=%d: MRS runs/passes = %d/%d, golden %d/%d",
					rf, par, st.RunsGenerated, st.MergePasses, goldenMRSRuns, goldenMRSPasses)
			}
			if rf == RunFormRadix && st.RadixPasses == 0 {
				t.Errorf("par=%d: forced radix MRS recorded no radix passes: %+v", par, st)
			}
			if io := d.Stats(); io.Total() != goldenMRSIOTotal {
				t.Errorf("%v par=%d: MRS IO total = %d, golden %d", rf, par, io.Total(), goldenMRSIOTotal)
			}
			if names := d.FileNames(); len(names) != 0 {
				t.Errorf("%v par=%d: leaked files %v", rf, par, names)
			}

			d2 := storage.NewDisk(512)
			s, err := NewSRS(iter.FromSlice(goldenShuffled()), sortSchema,
				sortord.New("c1", "c2"),
				Config{Disk: d2, MemoryBlocks: 4, SpillParallelism: par, RunFormation: rf, EntryLayout: LayoutTuple})
			if err != nil {
				t.Fatal(err)
			}
			out, err = iter.Drain(s)
			if err != nil {
				t.Fatal(err)
			}
			st = s.Stats()
			if got := orderChecksum(out); got != goldenChecksum {
				t.Errorf("%v par=%d: SRS checksum = %#x, golden %#x", rf, par, got, goldenChecksum)
			}
			if st.RunsGenerated != goldenSRSRuns || st.MergePasses != goldenSRSPasses {
				t.Errorf("%v par=%d: SRS runs/passes = %d/%d, golden %d/%d",
					rf, par, st.RunsGenerated, st.MergePasses, goldenSRSRuns, goldenSRSPasses)
			}
			if io := d2.Stats(); io.Total() != goldenSRSIOTotal {
				t.Errorf("%v par=%d: SRS IO total = %d, golden %d", rf, par, io.Total(), goldenSRSIOTotal)
			}
		}
	}
}
