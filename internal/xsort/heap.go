package xsort

// runEntry is a heap element during replacement-selection run formation:
// tuples tagged for the current run sort before tuples deferred to the next.
type runEntry struct {
	tag int // run number this tuple belongs to
	kt  keyed
}

// runHeap is a binary min-heap over (tag, key). Key comparisons are counted
// into *comparisons; tag comparisons are not (they are integer checks, not
// the multi-attribute comparisons the paper's analysis counts). Key bytes
// are excluded from memBytes so the M-block budget keeps the paper's
// tuple-size arithmetic regardless of key mode.
type runHeap struct {
	entries     []runEntry
	ky          *keyer
	comparisons *int64
	bytes       int64
}

func newRunHeap(ky *keyer, comparisons *int64) *runHeap {
	return &runHeap{ky: ky, comparisons: comparisons}
}

func (h *runHeap) len() int { return len(h.entries) }

func (h *runHeap) memBytes() int64 { return h.bytes }

func (h *runHeap) less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	*h.comparisons++
	return h.ky.compare(a.kt, b.kt) < 0
}

func (h *runHeap) swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
}

func (h *runHeap) push(e runEntry) {
	h.entries = append(h.entries, e)
	h.bytes += int64(e.kt.t.MemSize())
	h.siftUp(len(h.entries) - 1)
}

// pop removes and returns the minimum entry.
func (h *runHeap) pop() runEntry {
	top := h.entries[0]
	last := len(h.entries) - 1
	h.entries[0] = h.entries[last]
	h.entries = h.entries[:last]
	h.bytes -= int64(top.kt.t.MemSize())
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

// peek returns the minimum entry without removing it.
func (h *runHeap) peek() runEntry { return h.entries[0] }

func (h *runHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *runHeap) siftDown(i int) {
	n := len(h.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
