package xsort

// runEntry is a heap element during replacement-selection run formation:
// tuples tagged for the current run sort before tuples deferred to the next.
type runEntry struct {
	tag int // run number this tuple belongs to
	kt  keyed
}

// runHeap is a binary min-heap over (tag, key). The heap order is an int32
// slot permutation over stable entry storage — the same treatment that
// moved MRS segment sorts to index sorting: every sift swaps one 4-byte
// index instead of a 56-byte entry (whose key and tuple slices also drag
// write barriers through the heap). Freed slots are recycled, so
// replacement selection's push-one-pop-one steady state never grows the
// entry array past the memory budget.
//
// Key comparisons are counted into *comparisons; tag comparisons are not
// (they are integer checks, not the multi-attribute comparisons the paper's
// analysis counts). Key bytes are excluded from memBytes so the M-block
// budget keeps the paper's tuple-size arithmetic regardless of key mode.
type runHeap struct {
	entries     []runEntry // slot-stable storage; holes are reused via free
	heap        []int32    // heap order: slots into entries
	free        []int32    // recycled slots
	ky          *keyer
	comparisons *int64
	bytes       int64
}

func newRunHeap(ky *keyer, comparisons *int64) *runHeap {
	return &runHeap{ky: ky, comparisons: comparisons}
}

func (h *runHeap) len() int { return len(h.heap) }

func (h *runHeap) memBytes() int64 { return h.bytes }

func (h *runHeap) less(i, j int) bool {
	a, b := &h.entries[h.heap[i]], &h.entries[h.heap[j]]
	if a.tag != b.tag {
		return a.tag < b.tag
	}
	*h.comparisons++
	return h.ky.compare(a.kt, b.kt) < 0
}

func (h *runHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
}

func (h *runHeap) push(e runEntry) {
	var slot int32
	if n := len(h.free); n > 0 {
		slot = h.free[n-1]
		h.free = h.free[:n-1]
		h.entries[slot] = e
	} else {
		slot = int32(len(h.entries))
		h.entries = append(h.entries, e)
	}
	h.heap = append(h.heap, slot)
	h.bytes += int64(e.kt.t.MemSize())
	h.siftUp(len(h.heap) - 1)
}

// pop removes and returns the minimum entry.
func (h *runHeap) pop() runEntry {
	slot := h.heap[0]
	top := h.entries[slot]
	h.entries[slot] = runEntry{} // drop tuple/key references for the GC
	h.free = append(h.free, slot)
	last := len(h.heap) - 1
	h.heap[0] = h.heap[last]
	h.heap = h.heap[:last]
	h.bytes -= int64(top.kt.t.MemSize())
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

// peek returns the minimum entry without removing it.
func (h *runHeap) peek() runEntry { return h.entries[h.heap[0]] }

// seed adopts a pre-sorted phase-1 fill without any comparisons: entries
// land in arrival order (tagged for the first run) and the heap order is
// the ascending permutation the run-formation sort produced — a sorted
// array is a valid binary min-heap, so subsequent push/pop traffic works
// unchanged. Must be called on an empty heap.
func (h *runHeap) seed(fill []keyed, order []int32) {
	h.entries = make([]runEntry, len(fill))
	h.heap = append(h.heap[:0], order...)
	for i, kt := range fill {
		h.entries[i] = runEntry{tag: 0, kt: kt}
		h.bytes += int64(kt.t.MemSize())
	}
}

func (h *runHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *runHeap) siftDown(i int) {
	n := len(h.heap)
	//pyro:bounded(heap sift descends one level per iteration: at most log2(len(heap)) steps)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
