package xsort

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"pyro/internal/iter"
	"pyro/internal/sortord"
)

// abortAfter returns a poll that starts failing with errCanceled after n
// invocations — a deterministic stand-in for a context cancelled
// mid-query. The counter is atomic because spill workers share the poll.
var errCanceled = errors.New("query canceled")

func abortAfter(n int) func() error {
	var polls atomic.Int64
	return func() error {
		if polls.Add(1) > int64(n) {
			return errCanceled
		}
		return nil
	}
}

// TestSRSAbortInterruptsOpen: SRS blocks inside Open for its whole input;
// an abort firing partway through must surface from Open, and Close must
// leave no spill files behind.
func TestSRSAbortInterruptsOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows := shuffled(genRows(20_000, 10, rng), rng)
	cfg, d := smallCfg(t, 4) // tiny memory: the abort lands in the spill loop
	cfg.Abort = abortAfter(3)
	s, err := NewSRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(); !errors.Is(err, errCanceled) {
		t.Fatalf("Open returned %v, want the abort error", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if names := d.FileNames(); len(names) != 0 {
		t.Fatalf("aborted SRS leaked files: %v", names)
	}
}

// TestMRSAbortInterruptsCollect: the abort must reach MRS's demand-driven
// segment collection, surfacing from Next, after which Close releases every
// arena of the partially collected state.
func TestMRSAbortInterruptsCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rows := genRows(20_000, 2, rng) // two oversized segments
	cfg, d := smallCfg(t, 4)
	cfg.Parallelism = 1
	cfg.SpillParallelism = 1
	cfg.Abort = abortAfter(3)
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); err != nil {
		t.Fatal(err) // MRS Open reads one lookahead tuple; abort lands later
	}
	var sawErr error
	for i := 0; i < 30_000; i++ {
		_, ok, err := m.Next()
		if err != nil {
			sawErr = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(sawErr, errCanceled) {
		t.Fatalf("Next returned %v, want the abort error", sawErr)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if names := d.FileNames(); len(names) != 0 {
		t.Fatalf("aborted MRS leaked files: %v", names)
	}
}

// TestMRSAbortWithParallelSpill: the abort poll is shared with spill
// workers; an abort firing while flush jobs are in flight must still
// surface and release cleanly (race-gated by `make race`).
func TestMRSAbortWithParallelSpill(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	rows := genRows(20_000, 2, rng)
	cfg, d := smallCfg(t, 4)
	cfg.Parallelism = 2
	cfg.SpillParallelism = 2
	cfg.Abort = abortAfter(10)
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	var sawErr error
	for i := 0; i < 30_000; i++ {
		_, ok, err := m.Next()
		if err != nil {
			sawErr = err
			break
		}
		if !ok {
			break
		}
	}
	if !errors.Is(sawErr, errCanceled) {
		t.Fatalf("Next returned %v, want the abort error", sawErr)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if names := d.FileNames(); len(names) != 0 {
		t.Fatalf("aborted MRS leaked files: %v", names)
	}
}

// TestNilAbortSortsNormally pins that the zero-value Abort changes nothing.
func TestNilAbortSortsNormally(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	rows := shuffled(genRows(500, 10, rng), rng)
	cfg, _ := smallCfg(t, 1000)
	s, err := NewSRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(s)
	if err != nil || len(out) != len(rows) {
		t.Fatalf("drain: %d rows, err %v", len(out), err)
	}
}
