package xsort

import (
	"fmt"
	"testing"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// The flat-layout golden values pin the fixed-width entry path (PR 10) on
// the same workload golden_test.go pins the tuple layout with. The output
// checksum is goldenChecksum — the entry layout must be invisible in the
// output — and runs/passes match the legacy constants, because run
// boundaries are a property of replacement selection / segment batching,
// not of the run file format. What changes is the currency: comparisons
// drop (the radix cascade parks out-of-frontier cursors comparison-free;
// MergeBucketSkips counts the parks), and I/O rises by the entry files
// (FlatRunPages counts their pages — the price of memcpy-able merge keys).
//
// flat-heap is the ablation arm: same entry files, same I/O, same output,
// but a plain comparison heap — its comparison counts isolate what the
// cascade itself saves (34% on MRS, 43% on SRS here). Note SRS flat-heap
// comparisons equal the tuple layout's exactly: the heap does identical
// work on entries as on wrapped tuples. MRS flat-heap is +3 over the tuple
// layout — the flat merge breaks full-key ties by run ordinal, which on
// this workload costs three extra comparisons in segment merges.
const (
	flatMRSComparisons     = 58385
	flatHeapMRSComparisons = 88569
	flatMRSSkips           = 13475
	flatMRSPages           = 534
	flatMRSIOTotal         = 3798

	flatSRSComparisons     = 56141
	flatHeapSRSComparisons = 98977
	flatSRSSkips           = 21278
	flatSRSPages           = 1463
	flatSRSIOTotal         = 7104
)

// TestGoldenFlatLayout pins the flat layouts at every parallelism: output
// byte-identical to the tuple layout's golden checksum, identical run/pass
// structure, and counter totals — comparisons, bucket skips, entry pages,
// I/O — independent of Parallelism and SpillParallelism.
func TestGoldenFlatLayout(t *testing.T) {
	type want struct {
		comparisons int64
		skips       int64
		pages       int64
		io          int64
	}
	check := func(t *testing.T, st *SortStats, d *storage.Disk, out []types.Tuple, w want, runs, passes int) {
		t.Helper()
		if got := orderChecksum(out); got != goldenChecksum {
			t.Errorf("output checksum = %#x, golden %#x", got, goldenChecksum)
		}
		if st.Comparisons != w.comparisons {
			t.Errorf("Comparisons = %d, golden %d", st.Comparisons, w.comparisons)
		}
		if st.MergeBucketSkips != w.skips {
			t.Errorf("MergeBucketSkips = %d, golden %d", st.MergeBucketSkips, w.skips)
		}
		if st.FlatRunPages != w.pages {
			t.Errorf("FlatRunPages = %d, golden %d", st.FlatRunPages, w.pages)
		}
		if st.RunsGenerated != runs || st.MergePasses != passes {
			t.Errorf("runs/passes = %d/%d, golden %d/%d", st.RunsGenerated, st.MergePasses, runs, passes)
		}
		io := d.Stats()
		if io.Total() != w.io || io.RunTotal() != w.io {
			t.Errorf("IO total/run = %d/%d, golden %d (all run-attributed)", io.Total(), io.RunTotal(), w.io)
		}
		for _, name := range d.FileNames() {
			t.Errorf("run file %q leaked after Close", name)
		}
	}

	cases := []struct {
		lay      EntryLayout
		mrs, srs want
	}{
		{LayoutFlat,
			want{flatMRSComparisons, flatMRSSkips, flatMRSPages, flatMRSIOTotal},
			want{flatSRSComparisons, flatSRSSkips, flatSRSPages, flatSRSIOTotal}},
		{LayoutFlatHeap,
			want{flatHeapMRSComparisons, 0, flatMRSPages, flatMRSIOTotal},
			want{flatHeapSRSComparisons, 0, flatSRSPages, flatSRSIOTotal}},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("mrs-%s-par%d", tc.lay, par), func(t *testing.T) {
				d := storage.NewDisk(512)
				m, err := NewMRS(iter.FromSlice(goldenRows()), sortSchema,
					sortord.New("c1", "c2"), sortord.New("c1"),
					Config{Disk: d, MemoryBlocks: 8, Parallelism: par, RunFormation: RunFormCompare, EntryLayout: tc.lay})
				if err != nil {
					t.Fatal(err)
				}
				out, err := iter.Drain(m)
				if err != nil {
					t.Fatal(err)
				}
				check(t, m.Stats(), d, out, tc.mrs, goldenMRSRuns, goldenMRSPasses)
			})
			t.Run(fmt.Sprintf("srs-%s-par%d", tc.lay, par), func(t *testing.T) {
				d := storage.NewDisk(512)
				s, err := NewSRS(iter.FromSlice(goldenShuffled()), sortSchema,
					sortord.New("c1", "c2"),
					Config{Disk: d, MemoryBlocks: 4, SpillParallelism: par, RunFormation: RunFormCompare, EntryLayout: tc.lay})
				if err != nil {
					t.Fatal(err)
				}
				out, err := iter.Drain(s)
				if err != nil {
					t.Fatal(err)
				}
				check(t, s.Stats(), d, out, tc.srs, goldenSRSRuns, goldenSRSPasses)
			})
		}
	}
}
