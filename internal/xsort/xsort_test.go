package xsort

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

var sortSchema = types.NewSchema(
	types.Column{Name: "c1", Kind: types.KindInt},
	types.Column{Name: "c2", Kind: types.KindInt},
	types.Column{Name: "c3", Kind: types.KindString},
)

// genRows returns n rows; c1 cycles over dist1 values in ascending blocks
// (so the stream is sorted on c1), c2 is random, c3 is a small payload.
func genRows(n, dist1 int, rng *rand.Rand) []types.Tuple {
	rows := make([]types.Tuple, n)
	per := n / dist1
	if per == 0 {
		per = 1
	}
	for i := range rows {
		rows[i] = types.NewTuple(
			types.NewInt(int64(i/per)),
			types.NewInt(rng.Int63n(1_000_000)),
			types.NewString("payload"),
		)
	}
	return rows
}

func shuffled(rows []types.Tuple, rng *rand.Rand) []types.Tuple {
	out := append([]types.Tuple(nil), rows...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// countingIter wraps an iterator and counts tuples pulled, to observe
// pipelining behaviour.
type countingIter struct {
	inner  iter.Iterator
	pulled int
}

func (c *countingIter) Open() error { return c.inner.Open() }
func (c *countingIter) Next() (types.Tuple, bool, error) {
	t, ok, err := c.inner.Next()
	if ok {
		c.pulled++
	}
	return t, ok, err
}
func (c *countingIter) Close() error { return c.inner.Close() }

func isSorted(t *testing.T, rows []types.Tuple, o sortord.Order) {
	t.Helper()
	ks := types.MustKeySpec(sortSchema, o)
	for i := 1; i < len(rows); i++ {
		if ks.Compare(rows[i-1], rows[i]) > 0 {
			t.Fatalf("output not sorted at %d: %v > %v", i, rows[i-1], rows[i])
		}
	}
}

// multiset returns an encoded multiset of the rows for permutation checks.
func multiset(rows []types.Tuple) map[string]int {
	m := make(map[string]int, len(rows))
	var buf []byte
	for _, r := range rows {
		buf = r.Encode(buf[:0])
		m[string(buf)]++
	}
	return m
}

// smallCfg builds a sort config over a fresh tiny-paged disk. Every test
// that sorts through it inherits the teardown leak check: whatever the test
// did — drain, early close, abort, induced failure — no temp file or spill
// arena may survive it.
func smallCfg(t testing.TB, blocks int) (Config, *storage.Disk) {
	t.Helper()
	d := storage.NewDisk(512)
	t.Cleanup(func() { storage.AssertNoLeaks(t, d) })
	return Config{Disk: d, MemoryBlocks: blocks}, d
}

func TestSRSInMemoryNoIO(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := shuffled(genRows(100, 10, rng), rng)
	cfg, d := smallCfg(t, 1000) // plenty of memory
	s, err := NewSRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if !reflect.DeepEqual(multiset(out), multiset(rows)) {
		t.Fatal("output not a permutation of input")
	}
	if d.Stats().RunTotal() != 0 {
		t.Fatalf("in-memory sort should do no run I/O: %v", d.Stats())
	}
	if s.Stats().RunsGenerated != 0 {
		t.Fatal("no runs expected")
	}
}

func TestSRSSpillsAndMerges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := shuffled(genRows(3000, 10, rng), rng)
	cfg, d := smallCfg(t, 4) // tiny memory: force many runs and merge passes
	s, err := NewSRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if !reflect.DeepEqual(multiset(out), multiset(rows)) {
		t.Fatal("output not a permutation of input")
	}
	if s.Stats().RunsGenerated < 2 {
		t.Fatalf("expected multiple runs, got %d", s.Stats().RunsGenerated)
	}
	if s.Stats().MergePasses < 1 {
		t.Fatalf("expected merge passes with fan-in %d and %d runs",
			cfg.fanIn(), s.Stats().RunsGenerated)
	}
	if d.Stats().RunTotal() == 0 {
		t.Fatal("spilling sort must do run I/O")
	}
}

func TestSRSSortedInputStillDoesIO(t *testing.T) {
	// The deficiency the paper highlights: SRS on (almost) sorted input
	// writes one giant run and reads it back.
	rng := rand.New(rand.NewSource(3))
	rows := genRows(2000, 20, rng) // sorted on c1 already
	sort.SliceStable(rows, func(i, j int) bool {
		return types.MustKeySpec(sortSchema, sortord.New("c1", "c2")).Compare(rows[i], rows[j]) < 0
	})
	cfg, d := smallCfg(t, 4)
	s, _ := NewSRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), cfg)
	out, err := iter.Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if s.Stats().RunsGenerated != 1 {
		t.Fatalf("replacement selection on sorted input should form exactly 1 run, got %d", s.Stats().RunsGenerated)
	}
	if d.Stats().RunTotal() == 0 {
		t.Fatal("SRS still does run I/O on sorted input — that is its flaw")
	}
}

func TestSRSBlockingBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rows := shuffled(genRows(1000, 10, rng), rng)
	ci := &countingIter{inner: iter.FromSlice(rows)}
	cfg, _ := smallCfg(t, 4)
	s, _ := NewSRS(ci, sortSchema, sortord.New("c1", "c2"), cfg)
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if ci.pulled != len(rows) {
		t.Fatalf("SRS.Open should consume the whole input, pulled %d of %d", ci.pulled, len(rows))
	}
	s.Close()
}

func TestSRSEmptyInputAndErrors(t *testing.T) {
	cfg, _ := smallCfg(t, 4)
	s, err := NewSRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(s)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %d tuples", err, len(out))
	}
	if _, err := NewSRS(iter.FromSlice(nil), sortSchema, sortord.Empty, cfg); err == nil {
		t.Fatal("empty order should error")
	}
	if _, err := NewSRS(iter.FromSlice(nil), sortSchema, sortord.New("zz"), cfg); err == nil {
		t.Fatal("unknown attr should error")
	}
	if _, err := NewSRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), Config{}); err == nil {
		t.Fatal("nil disk should error")
	}
	if _, err := NewSRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), Config{Disk: storage.NewDisk(0)}); err == nil {
		t.Fatal("zero memory should error")
	}
}

func TestMRSPipelinedNoIO(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := genRows(2000, 50, rng) // sorted on c1, 40 tuples per segment
	cfg, d := smallCfg(t, 64)
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if !reflect.DeepEqual(multiset(out), multiset(rows)) {
		t.Fatal("output not a permutation of input")
	}
	if d.Stats().RunTotal() != 0 {
		t.Fatalf("MRS with small segments must do zero run I/O, did %v", d.Stats())
	}
	if m.Stats().Segments != 50 {
		t.Fatalf("Segments = %d, want 50", m.Stats().Segments)
	}
	if m.Stats().SpilledSegs != 0 {
		t.Fatal("no segment should spill")
	}
}

func TestMRSEarlyOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := genRows(10_000, 100, rng)
	ci := &countingIter{inner: iter.FromSlice(rows)}
	cfg, _ := smallCfg(t, 64)
	// Parallelism 1 pins the paper's strictly demand-driven reading; the
	// bounded-lookahead guarantee of the parallel path is covered in
	// parallel_test.go.
	cfg.Parallelism = 1
	m, _ := NewMRS(ci, sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := m.Next(); !ok || err != nil {
		t.Fatalf("Next: ok=%v err=%v", ok, err)
	}
	// After one output tuple, only the first segment (plus one lookahead)
	// should have been consumed — that is the pipelining benefit of Fig 8.
	segSize := len(rows) / 100
	if ci.pulled > segSize+1 {
		t.Fatalf("MRS consumed %d tuples before first output; want <= %d", ci.pulled, segSize+1)
	}
	m.Close()
}

func TestMRSSpilledSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := genRows(4000, 2, rng) // 2 segments of 2000 tuples each
	cfg, d := smallCfg(t, 8)      // tiny memory: segments must spill
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if !reflect.DeepEqual(multiset(out), multiset(rows)) {
		t.Fatal("output not a permutation of input")
	}
	if m.Stats().SpilledSegs != 2 {
		t.Fatalf("SpilledSegs = %d, want 2", m.Stats().SpilledSegs)
	}
	if d.Stats().RunTotal() == 0 {
		t.Fatal("spilled segments must do run I/O")
	}
}

func TestMRSPassthrough(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := genRows(100, 10, rng)
	cfg, d := smallCfg(t, 4)
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(rows) {
		t.Fatalf("passthrough lost tuples: %d of %d", len(out), len(rows))
	}
	if d.Stats().Total() != 0 {
		t.Fatal("passthrough must do no I/O")
	}
	if m.Stats().Comparisons != 0 {
		t.Fatalf("passthrough made %d comparisons", m.Stats().Comparisons)
	}
}

func TestMRSSinglSegmentDegeneratesToFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := shuffled(genRows(2000, 10, rng), rng)
	cfg, _ := smallCfg(t, 4)
	// ε known order: whole input is one segment.
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.Empty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if m.Stats().Segments != 1 {
		t.Fatalf("Segments = %d, want 1", m.Stats().Segments)
	}
	if m.Stats().SpilledSegs != 1 {
		t.Fatal("single oversized segment should spill")
	}
}

func TestMRSValidation(t *testing.T) {
	cfg, _ := smallCfg(t, 4)
	if _, err := NewMRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), sortord.New("c2"), cfg); err == nil {
		t.Fatal("non-prefix given order should error")
	}
	if _, err := NewMRS(iter.FromSlice(nil), sortSchema, sortord.Empty, sortord.Empty, cfg); err == nil {
		t.Fatal("empty target should error")
	}
	if _, err := NewMRS(iter.FromSlice(nil), sortSchema, sortord.New("zz"), sortord.Empty, cfg); err == nil {
		t.Fatal("unknown attr should error")
	}
	m, err := NewMRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), sortord.Empty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(m)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v, %d", err, len(out))
	}
}

func TestMRSFewerComparisonsThanSRS(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows := genRows(5000, 100, rng) // sorted on c1
	cfg1, _ := smallCfg(t, 16)
	srs, _ := NewSRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), cfg1)
	if _, err := iter.Drain(srs); err != nil {
		t.Fatal(err)
	}
	cfg2, _ := smallCfg(t, 16)
	mrs, _ := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg2)
	if _, err := iter.Drain(mrs); err != nil {
		t.Fatal(err)
	}
	if mrs.Stats().Comparisons >= srs.Stats().Comparisons {
		t.Fatalf("MRS comparisons (%d) should be below SRS (%d): O(n log n/k) vs O(n log n)",
			mrs.Stats().Comparisons, srs.Stats().Comparisons)
	}
}

func TestQuickSRSAndMRSAgreeWithReference(t *testing.T) {
	target := sortord.New("c1", "c2", "c3")
	ks := types.MustKeySpec(sortSchema, target)
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(400)
			dist := 1 + r.Intn(10)
			rows := make([]types.Tuple, n)
			for i := range rows {
				rows[i] = types.NewTuple(
					types.NewInt(int64(r.Intn(dist))),
					types.NewInt(r.Int63n(50)),
					types.NewString(string(rune('a'+r.Intn(4)))),
				)
			}
			// Pre-sort on c1 so MRS's precondition (input ordered on the
			// prefix) holds.
			sort.SliceStable(rows, func(i, j int) bool { return rows[i][0].Int() < rows[j][0].Int() })
			vals[0] = reflect.ValueOf(rows)
			vals[1] = reflect.ValueOf(2 + r.Intn(6)) // memory blocks
		},
	}
	prop := func(rows []types.Tuple, blocks int) bool {
		ref := append([]types.Tuple(nil), rows...)
		sort.SliceStable(ref, func(i, j int) bool { return ks.Compare(ref[i], ref[j]) < 0 })

		c1, _ := smallCfg(t, blocks)
		srs, err := NewSRS(iter.FromSlice(rows), sortSchema, target, c1)
		if err != nil {
			return false
		}
		gotS, err := iter.Drain(srs)
		if err != nil {
			return false
		}
		c2, _ := smallCfg(t, blocks)
		mrs, err := NewMRS(iter.FromSlice(rows), sortSchema, target, sortord.New("c1"), c2)
		if err != nil {
			return false
		}
		gotM, err := iter.Drain(mrs)
		if err != nil {
			return false
		}
		if len(gotS) != len(ref) || len(gotM) != len(ref) {
			return false
		}
		for i := range ref {
			if ks.Compare(gotS[i], ref[i]) != 0 || ks.Compare(gotM[i], ref[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMRSRunCleanupOnClose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rows := genRows(4000, 2, rng)
	cfg, d := smallCfg(t, 8)
	m, _ := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err := m.Open(); err != nil {
		t.Fatal(err)
	}
	// Pull a few tuples mid-segment, then abandon.
	for i := 0; i < 5; i++ {
		if _, ok, err := m.Next(); !ok || err != nil {
			t.Fatalf("Next %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Close() != nil {
		t.Fatal("double close should be nil")
	}
	for _, name := range d.FileNames() {
		t.Fatalf("run file %q leaked after Close", name)
	}
}

func TestNewSortedHelper(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rows := shuffled(genRows(300, 5, rng), rng)
	cfg, _ := smallCfg(t, 64)
	out, stats, err := NewSorted(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if stats.TuplesIn != 300 || stats.TuplesOut != 300 {
		t.Fatalf("stats = %+v", stats)
	}
}
