package xsort

import (
	"pyro/internal/iter"
	"pyro/internal/types"
)

// chunkSource is the structural view of the executor's batch protocol
// (exec.ChunkOperator). xsort cannot import exec — exec wraps this package —
// so the sort enforcers duck-type their input instead: any iterator that
// can serve chunks gets its input collection batched.
type chunkSource interface {
	CanChunk() bool
	NextChunk(c *types.Chunk) error
}

// tupleSource feeds a sort operator its input as keyed tuples. In row mode
// it is a thin veneer over input.Next + keyer.wrap. In batch mode
// (Config.BatchSize > 1 and the input serves chunks) it refills a pooled
// chunk, materializes the live rows — the sort retains every tuple, so the
// per-row ownership copy is work the row path's decode already paid — and
// key-encodes the whole batch in one wrapBatch call.
//
// Batching never changes what the sort observes: tuples arrive in the same
// order, and a chunk never spans a storage page, so the demand-driven I/O
// of MRS (read exactly as far as the served segment requires) and every
// SortStats counter are identical to the row path. The caller still counts
// TuplesIn and polls its abort guard per served tuple.
type tupleSource struct {
	it iter.Iterator
	ky *keyer

	// Batch mode state; cs == nil means row mode.
	cs    chunkSource
	ncols int
	batch int
	chunk *types.Chunk
	rows  []types.Tuple
	keys  []keyed
	pos   int
	done  bool
}

// newTupleSource builds the source; it serves rows unless cfg enables
// batching and the input supports it.
func newTupleSource(it iter.Iterator, schema *types.Schema, ky *keyer, cfg Config) *tupleSource {
	s := &tupleSource{it: it, ky: ky}
	if cfg.BatchSize > 1 {
		if cs, ok := it.(chunkSource); ok && cs.CanChunk() {
			s.cs = cs
			s.ncols = schema.Len()
			s.batch = cfg.BatchSize
		}
	}
	return s
}

// next returns the next input tuple, already wrapped with its sort key.
func (s *tupleSource) next() (keyed, bool, error) {
	if s.cs == nil {
		t, ok, err := s.it.Next()
		if err != nil || !ok {
			return keyed{}, false, err
		}
		return s.ky.wrap(t), true, nil
	}
	for s.pos >= len(s.keys) {
		if s.done {
			return keyed{}, false, nil
		}
		if s.chunk == nil {
			s.chunk = types.GetChunk(s.ncols, s.batch)
		}
		if err := s.cs.NextChunk(s.chunk); err != nil {
			return keyed{}, false, err
		}
		live := s.chunk.Rows()
		if live == 0 {
			s.done = true
			s.release()
			return keyed{}, false, nil
		}
		// One datum slab owns the whole batch: the sort retains these
		// tuples past the next refill, so they must not alias the chunk,
		// but carving them from a single allocation replaces the row
		// path's one decode allocation per tuple. The slab is not pooled —
		// retained rows keep it alive for exactly as long as the sort
		// holds any of them.
		slab := make([]types.Datum, live*s.ncols)
		s.rows = s.rows[:0]
		for i := 0; i < live; i++ {
			row := slab[i*s.ncols : (i+1)*s.ncols : (i+1)*s.ncols]
			s.rows = append(s.rows, s.chunk.CopyRow(row, i))
		}
		s.keys = s.ky.wrapBatch(s.rows, s.keys[:0])
		s.pos = 0
	}
	kt := s.keys[s.pos]
	s.pos++
	return kt, true, nil
}

// release returns the refill chunk to the pool (idempotent; called at EOF
// and from the owning sort's Close).
func (s *tupleSource) release() {
	if s.chunk != nil {
		types.PutChunk(s.chunk)
		s.chunk = nil
	}
}
