package xsort

import (
	"fmt"

	"pyro/internal/iter"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// MRS is the paper's modified replacement selection (§3.1): an external
// sort that exploits a known partial sort order of its input. Given target
// order o = (a1..an) and input order o' = (a1..ak), k < n, the input is
// consumed segment by segment (maximal groups equal on a1..ak). Each
// segment is sorted independently on the suffix (ak+1..an):
//
//   - a segment that fits in memory is sorted with zero disk I/O and its
//     tuples are emitted as soon as the segment's end is seen — pipelined,
//     early output;
//   - a segment larger than memory spills per-memory-batch runs and merges
//     just those runs.
//
// With k = 0 (no known prefix) the whole input is a single segment and MRS
// degenerates to a load-sort-merge external sort, matching the paper's
// observation that MRS converges to SRS at the one-segment extreme (Fig 9).
type MRS struct {
	input  iter.Iterator
	schema *types.Schema
	target sortord.Order
	given  sortord.Order // known input order; must be a prefix of target
	cfg    Config
	ks     types.KeySpec // full target key
	prefix int           // |given|
	stats  SortStats

	// Segment state.
	pending     types.Tuple // lookahead: first tuple of the next segment
	inputDone   bool
	passthrough bool // given == target: nothing to do

	// Emission state: either an in-memory buffer or a per-segment merge.
	buf     []types.Tuple
	bufPos  int
	merging *runMerger
	segRuns []*storage.File

	opened bool
	closed bool
}

// NewMRS builds a partial-order-exploiting sort. given must be a prefix of
// target (ε is allowed and yields single-segment behaviour); if given equals
// target the operator is a passthrough.
func NewMRS(input iter.Iterator, schema *types.Schema, target, given sortord.Order, cfg Config) (*MRS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if target.IsEmpty() {
		return nil, fmt.Errorf("xsort: empty target order")
	}
	if !given.PrefixOf(target) {
		return nil, fmt.Errorf("xsort: input order %v is not a prefix of target %v", given, target)
	}
	ks, err := types.MakeKeySpec(schema, target)
	if err != nil {
		return nil, err
	}
	if cfg.TempPrefix == "" {
		cfg.TempPrefix = "mrs"
	}
	return &MRS{
		input:       input,
		schema:      schema,
		target:      target.Clone(),
		given:       given.Clone(),
		cfg:         cfg,
		ks:          ks,
		prefix:      given.Len(),
		passthrough: given.Len() == target.Len(),
	}, nil
}

// Stats returns the operator's work counters.
func (m *MRS) Stats() *SortStats { return &m.stats }

// Order returns the produced sort order.
func (m *MRS) Order() sortord.Order { return m.target }

// Open opens the input. Unlike SRS, no input is consumed here beyond one
// lookahead tuple — MRS is pipelined.
func (m *MRS) Open() error {
	if m.opened {
		return fmt.Errorf("xsort: MRS opened twice")
	}
	m.opened = true
	if err := m.input.Open(); err != nil {
		return err
	}
	t, ok, err := m.input.Next()
	if err != nil {
		return err
	}
	if !ok {
		m.inputDone = true
		return nil
	}
	m.stats.TuplesIn++
	m.pending = t
	return nil
}

// suffixCompare compares tuples on the target suffix only (attributes
// k+1..n): within a segment the prefix attributes are equal by definition,
// which is where MRS saves comparisons.
func (m *MRS) suffixCompare(a, b types.Tuple) int {
	for _, ord := range m.ks.Ordinals[m.prefix:] {
		if c := a[ord].Compare(b[ord]); c != 0 {
			return c
		}
	}
	return 0
}

// samePrefix reports whether t belongs to the segment started by first.
func (m *MRS) samePrefix(a, b types.Tuple) bool {
	m.stats.Comparisons++
	return m.ks.ComparePrefix(a, b, m.prefix) == 0
}

// Next returns the next tuple of the target order.
func (m *MRS) Next() (types.Tuple, bool, error) {
	for {
		// Serve from the current segment's in-memory buffer.
		if m.buf != nil {
			if m.bufPos < len(m.buf) {
				t := m.buf[m.bufPos]
				m.bufPos++
				m.stats.TuplesOut++
				return t, true, nil
			}
			m.buf = nil
			m.bufPos = 0
		}
		// Serve from the current segment's run merge.
		if m.merging != nil {
			t, ok, err := m.merging.next()
			if err != nil {
				return nil, false, err
			}
			if ok {
				m.stats.TuplesOut++
				return t, true, nil
			}
			m.merging = nil
			for _, f := range m.segRuns {
				m.cfg.Disk.Remove(f.Name())
			}
			m.segRuns = nil
		}
		// Load the next segment.
		if m.pending == nil {
			return nil, false, nil
		}
		if m.passthrough {
			t := m.pending
			if err := m.advance(); err != nil {
				return nil, false, err
			}
			m.stats.TuplesOut++
			return t, true, nil
		}
		if err := m.loadSegment(); err != nil {
			return nil, false, err
		}
	}
}

// advance pulls the next input tuple into pending (nil at EOF).
func (m *MRS) advance() error {
	if m.inputDone {
		m.pending = nil
		return nil
	}
	t, ok, err := m.input.Next()
	if err != nil {
		return err
	}
	if !ok {
		m.inputDone = true
		m.pending = nil
		return nil
	}
	m.stats.TuplesIn++
	m.pending = t
	return nil
}

// loadSegment consumes one partial-sort segment from the input and prepares
// it for emission (in-memory buffer or per-segment run merge).
func (m *MRS) loadSegment() error {
	m.stats.Segments++
	first := m.pending
	budget := m.cfg.memoryBytes()
	var memBytes int64
	buf := make([]types.Tuple, 0, 64)
	spilled := false

	flush := func() error {
		sortBuffer(buf, m.suffixCompare, &m.stats.Comparisons)
		f, err := writeRun(m.cfg, buf)
		if err != nil {
			return err
		}
		m.segRuns = append(m.segRuns, f)
		m.stats.RunsGenerated++
		buf = buf[:0]
		memBytes = 0
		return nil
	}

	for {
		t := m.pending
		buf = append(buf, t)
		memBytes += int64(t.MemSize())
		if memBytes > m.stats.PeakMemBytes {
			m.stats.PeakMemBytes = memBytes
		}
		if memBytes >= budget {
			spilled = true
			if err := flush(); err != nil {
				return err
			}
		}
		if err := m.advance(); err != nil {
			return err
		}
		if m.pending == nil || !m.samePrefix(first, m.pending) {
			break
		}
	}

	if !spilled {
		// Common case: the whole segment fits in memory — sort on the
		// suffix only, serve from the buffer, no disk I/O.
		sortBuffer(buf, m.suffixCompare, &m.stats.Comparisons)
		m.buf = buf
		m.bufPos = 0
		return nil
	}

	// Oversized segment: flush the tail and merge this segment's runs.
	m.stats.SpilledSegs++
	if len(buf) > 0 {
		if err := flush(); err != nil {
			return err
		}
	}
	runs, err := reduceRuns(m.cfg, m.segRuns, m.suffixCompare, &m.stats)
	if err != nil {
		return err
	}
	m.segRuns = runs
	m.merging, err = newRunMerger(runs, m.suffixCompare, &m.stats.Comparisons)
	return err
}

// Close releases any remaining run files and closes the input.
func (m *MRS) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	for _, f := range m.segRuns {
		m.cfg.Disk.Remove(f.Name())
	}
	m.segRuns = nil
	return m.input.Close()
}
