package xsort

import (
	"fmt"

	"pyro/internal/iter"
	"pyro/internal/keys"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// MRS is the paper's modified replacement selection (§3.1): an external
// sort that exploits a known partial sort order of its input. Given target
// order o = (a1..an) and input order o' = (a1..ak), k < n, the input is
// consumed segment by segment (maximal groups equal on a1..ak). Each
// segment is sorted independently on the suffix (ak+1..an):
//
//   - a segment that fits in memory is sorted with zero disk I/O and its
//     tuples are emitted as soon as the segment's end is seen — pipelined,
//     early output;
//   - a segment larger than memory spills per-memory-batch runs and merges
//     just those runs.
//
// With k = 0 (no known prefix) the whole input is a single segment and MRS
// degenerates to a load-sort-merge external sort, matching the paper's
// observation that MRS converges to SRS at the one-segment extreme (Fig 9).
//
// Because segments are mutually independent, their sorts are embarrassingly
// parallel. With Config.Parallelism = P > 1, in-memory segment sorts run on
// a bounded pool of worker goroutines while the consumer goroutine keeps
// reading ahead — at most P segments beyond the one being emitted, read in
// small quanta interleaved with emission so all input consumption stays on
// the consumer goroutine (the input iterator is never touched concurrently).
// Emission order is preserved by a FIFO of segment futures. The paper's
// pipelining guarantee survives in the bounded form: segment i begins
// emitting before segment i+P+1 has been read, and the first segment is
// always collected strictly demand-driven, so early output is retained.
// With P = 1 reading is strictly demand-driven exactly as in the serial
// paper algorithm: segment i is fully emitted before segment i+1 is read
// past its first tuple.
//
// Oversized (spilling) segments are concurrent too. Each spilled segment
// owns a storage.SpillArena — an isolated temp namespace with a lock-free
// I/O ledger — and with Config.SpillParallelism = S > 1 its run formation
// moves off the consumer: every time a memory batch fills, the batch is
// handed to a flush job that sorts it and writes the run into the arena
// while the consumer keeps reading the segment (input consumption still
// never leaves the consumer goroutine). At most S flush jobs are in flight,
// bounding transient memory at S batches. When the segment reaches the head
// of the emission queue, its first run-reduction pass overlaps the tail of
// run formation: each fan-in group of runs merges (on worker goroutines,
// grouped exactly as the serial pass would) as soon as its member runs
// land. With S = 1 spilled segments sort, spill and merge inline on the
// consumer goroutine — the paper's serial algorithm, unchanged.
type MRS struct {
	input  iter.Iterator
	schema *types.Schema
	target sortord.Order
	given  sortord.Order // known input order; must be a prefix of target
	cfg    Config
	ks     types.KeySpec // full target key
	ky     *keyer        // full-key keyer; segments bind per-segment skips
	prefix int           // |given|
	par    int           // resolved segment-sort parallelism
	spar   int           // resolved spill parallelism
	rf     RunFormation
	lay    entryLayout
	stats  SortStats

	// Input state.
	pending     types.Tuple // lookahead: first tuple of the next segment
	pendingKT   keyed       // pending with its sort key (wrapped by src)
	src         *tupleSource
	inputDone   bool
	passthrough bool // given == target: nothing to do

	// Segment pipeline: col accumulates the segment currently being read;
	// segq holds collected segments in input order (sorting or sorted);
	// cur is the segment being emitted.
	col  *segCollector
	segq []*segment
	cur  *segment

	liveBytes int64      // buffered tuple bytes across all live segments
	pumpErr   error      // read-ahead failure, surfaced on the next Next call
	guard     iter.Guard // strided Config.Abort poll (consumer goroutine only)

	opened bool
	closed bool
}

// segCollector accumulates one partial-sort segment as it is read. ky is
// the segment's skip-bound keyer: keys are full target-order encodings
// (wrapped by the shared consumer-side keyer), and within this segment
// they all share the encoded bytes of the `given` prefix, so the
// segment's comparisons slice past them and its radix sorts seed there.
type segCollector struct {
	first    types.Tuple // segment representative for prefix comparisons
	ky       *keyer
	buf      []keyed
	memBytes int64
	spilled  bool
	sp       *spillState // non-nil once the segment has spilled
}

// spillState is the spill side of one oversized segment: its private arena
// and the runs formed into it. In serial mode (SpillParallelism 1) runs
// holds files written inline; in parallel mode jobs holds the in-flight and
// completed flush jobs, harvested in dispatch order by the consumer. ky is
// the segment's skip-bound keyer, shared by formation sorts and reduction
// merges.
type spillState struct {
	arena  *storage.SpillArena
	ky     *keyer
	runs   []spillRun  // serial-mode formation runs
	jobs   []*flushJob // parallel-mode formation jobs, dispatch order
	reaped int         // jobs whose buffers the consumer has returned to the budget
}

// flushJob is one parallel run-formation unit: sort one memory batch of an
// oversized segment and write it to the segment's arena. All fields other
// than buf/memBytes are written by the worker before close(done) and read
// by the consumer only after <-done.
type flushJob struct {
	buf      []keyed
	memBytes int64
	done     chan struct{}
	run      spillRun
	pages    int64 // entry pages the run occupies (flat layouts)
	tally    sortTally
	err      error
}

// inflight counts dispatched jobs whose completion the consumer has not yet
// observed.
func (sp *spillState) inflight() int { return len(sp.jobs) - sp.reaped }

// segment is a collected segment queued for emission. In-memory segments
// sorted on a worker publish their work tally through done; the consumer
// folds it into SortStats when the segment reaches the head of the queue,
// keeping the stats single-writer and their totals deterministic.
type segment struct {
	ky       *keyer // segment's skip-bound keyer (compare/merge/radix seed)
	buf      []keyed
	order    []int32 // emission permutation over buf (in-memory segments)
	memBytes int64
	tally    sortTally
	done     chan struct{} // non-nil iff sorted asynchronously
	err      error         // worker panic during the async sort, if any
	spilled  bool
	sp       *spillState

	pos     int
	merging merger
}

// pumpQuantum is how many input tuples one emitted tuple "buys" of
// read-ahead in parallel mode; small enough that lookahead grows gradually
// and the early-output property stays tight.
const pumpQuantum = 64

// NewMRS builds a partial-order-exploiting sort. given must be a prefix of
// target (ε is allowed and yields single-segment behaviour); if given equals
// target the operator is a passthrough.
func NewMRS(input iter.Iterator, schema *types.Schema, target, given sortord.Order, cfg Config) (*MRS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if target.IsEmpty() {
		return nil, fmt.Errorf("xsort: empty target order")
	}
	if !given.PrefixOf(target) {
		return nil, fmt.Errorf("xsort: input order %v is not a prefix of target %v", given, target)
	}
	ks, err := types.MakeKeySpec(schema, target)
	if err != nil {
		return nil, err
	}
	// As in NewSRS: an unencodable key shape degrades to the comparator,
	// it never fails the sort.
	codec, _ := keys.FromKeySpec(ks)
	if cfg.TempPrefix == "" {
		cfg.TempPrefix = "mrs"
	}
	prefix := given.Len()
	// Keys are full target-order encodings; each segment binds a keyer
	// whose skip covers the encoded `given` prefix (constant within the
	// segment by definition), so segment comparisons still touch only the
	// suffix bytes. The comparator fallback compares the suffix directly.
	// Versus the earlier suffix-only codec this spends one prefix encode
	// per tuple (and its key-arena bytes) to keep a single codec across
	// all segments, give radix a known seed depth instead of a prefix
	// rescan, and keep every key a complete target-order encoding — the
	// shape a future radix-aware merge of segment runs needs.
	suffixCmp := func(a, b types.Tuple) int { return ks.CompareSuffix(a, b, prefix) }
	ky := newKeyer(cfg.Keys, codec, suffixCmp)
	return &MRS{
		input:       input,
		schema:      schema,
		target:      target.Clone(),
		given:       given.Clone(),
		cfg:         cfg,
		ks:          ks,
		ky:          ky,
		prefix:      prefix,
		par:         cfg.parallelism(),
		spar:        cfg.spillParallelism(),
		rf:          cfg.RunFormation,
		lay:         resolveLayout(cfg, ky, prefix),
		guard:       iter.NewGuard(cfg.Abort),
		passthrough: prefix == target.Len(),
	}, nil
}

// segmentKeyer binds the shared keyer to one segment: skip is the encoded
// byte length of the segment's `given`-prefix values (keys.Codec.PrefixLen
// on the segment's first tuple — prefix columns of variable width make it
// segment-specific).
func (m *MRS) segmentKeyer(first types.Tuple) *keyer {
	if m.prefix == 0 || !m.ky.encoded() {
		return m.ky.withSkip(0)
	}
	return m.ky.withSkip(m.ky.codec.PrefixLen(first, m.prefix))
}

// Stats returns the operator's work counters.
func (m *MRS) Stats() *SortStats { return &m.stats }

// Order returns the produced sort order.
func (m *MRS) Order() sortord.Order { return m.target }

// Open opens the input. Unlike SRS, no input is consumed here beyond one
// lookahead tuple — MRS is pipelined.
func (m *MRS) Open() error {
	if m.opened {
		return fmt.Errorf("xsort: MRS opened twice")
	}
	m.opened = true
	if err := m.input.Open(); err != nil {
		return err
	}
	// The source wraps each tuple with its sort key as it is pulled. A
	// passthrough (given == target) never compares keys, so it gets a
	// comparator-mode keyer and skips the encodes entirely.
	ky := m.ky
	if m.passthrough {
		ky = &keyer{cmp: m.ky.cmp}
	}
	m.src = newTupleSource(m.input, m.schema, ky, m.cfg)
	kt, ok, err := m.src.next()
	if err != nil {
		return err
	}
	if !ok {
		m.inputDone = true
		return nil
	}
	m.stats.TuplesIn++
	m.pending = kt.t
	m.pendingKT = kt
	return nil
}

// samePrefix reports whether b belongs to the segment started by a.
func (m *MRS) samePrefix(a, b types.Tuple) bool {
	m.stats.Comparisons++
	return m.ks.ComparePrefix(a, b, m.prefix) == 0
}

// Next returns the next tuple of the target order.
func (m *MRS) Next() (types.Tuple, bool, error) {
	if m.pumpErr != nil {
		return nil, false, m.pumpErr
	}
	//pyro:bounded(each iteration emits a tuple or retires/adopts one segment, and emit/pump poll the abort guard internally)
	for {
		// Serve from the segment at the head of the pipeline.
		if m.cur != nil {
			t, ok, err := m.emit()
			if err != nil {
				return nil, false, err
			}
			if ok {
				m.stats.TuplesOut++
				// A read-ahead failure must not swallow the tuple already
				// taken from the current segment: deliver t now, surface
				// the error on the next call.
				m.pumpErr = m.pump()
				return t, true, nil
			}
			m.release(m.cur)
			m.cur = nil
		}
		// Adopt the next collected segment, waiting out its sort.
		if len(m.segq) > 0 {
			seg := m.segq[0]
			m.segq = m.segq[1:]
			if err := m.adopt(seg); err != nil {
				return nil, false, err
			}
			continue
		}
		if m.pending == nil {
			return nil, false, nil
		}
		if m.passthrough {
			t := m.pending
			if err := m.advance(); err != nil {
				return nil, false, err
			}
			m.stats.TuplesOut++
			return t, true, nil
		}
		// Nothing in flight: collect the next segment demand-driven.
		seg, err := m.collect(-1)
		if err != nil {
			return nil, false, err
		}
		if seg != nil {
			m.segq = append(m.segq, seg)
		}
	}
}

// emit serves the next tuple of the current segment, from its sorted buffer
// or its per-segment run merge.
func (m *MRS) emit() (types.Tuple, bool, error) {
	s := m.cur
	if s.merging != nil {
		return s.merging.next()
	}
	if s.pos >= len(s.order) {
		return nil, false, nil
	}
	t := s.buf[s.order[s.pos]].t
	s.pos++
	return t, true, nil
}

// adopt makes seg the current emission head: waits for an asynchronous sort
// to finish (folding its work tally into the stats) or, for a spilled
// segment, reduces and opens its run merge.
func (m *MRS) adopt(seg *segment) error {
	if seg.done != nil {
		<-seg.done
		if seg.err != nil {
			return seg.err
		}
		seg.tally.addTo(&m.stats)
	}
	if seg.spilled {
		// seg is already off the queue and not yet the emission head, so
		// nothing downstream owns its arena: if adoption does not complete —
		// an error, or a panic unwinding toward the cursor's containment —
		// the arena must be released here or its runs outlive Close.
		adopted := false
		defer func() {
			if !adopted {
				m.releaseSpill(seg.sp)
			}
		}()
		runs, err := m.segmentRuns(seg.sp)
		if err == nil {
			runs, err = reduceRuns(m.cfg, seg.sp.arena, runs, seg.ky, m.lay, &m.stats)
		}
		if err == nil {
			seg.sp.runs = runs
			seg.merging, err = openMerger(runs, seg.ky, m.lay, &m.stats)
		}
		if err != nil {
			return err
		}
		adopted = true
	}
	m.cur = seg
	return nil
}

// segmentRuns produces the full ordered run list of a spilled segment. In
// serial mode the runs are already on disk. In parallel mode it performs
// the pipelined harvest: when the segment holds more runs than the merge
// fan-in, the first reduction pass is dispatched group by group as member
// runs land, overlapping reduction with the tail of run formation; the
// remaining passes (rare) fall to reduceRuns afterwards. Comparison counts
// fold in deterministic order — formation jobs first (dispatch order), then
// merge groups (group order) — so totals equal the serial path's.
func (m *MRS) segmentRuns(sp *spillState) ([]spillRun, error) {
	if len(sp.jobs) == 0 {
		return sp.runs, nil
	}
	fanIn := m.cfg.fanIn()
	if len(sp.jobs) <= fanIn {
		// No reduction needed: wait out the jobs in dispatch order.
		if err := m.harvestJobs(sp); err != nil {
			return nil, err
		}
		runs := make([]spillRun, len(sp.jobs))
		for i, j := range sp.jobs {
			runs[i] = j.run
		}
		return runs, nil
	}

	// Pipelined first pass: each fan-in group of formation jobs merges as
	// soon as its members land, while later jobs may still be running.
	// Groups are consecutive in dispatch order — exactly the serial pass.
	m.stats.MergePasses++
	type groupRes struct {
		out   spillRun
		tally mergeTally
		err   error
		done  chan struct{}
	}
	nGroups := numGroups(fanIn, len(sp.jobs))
	groups := make([]*groupRes, nGroups)
	sem := make(chan struct{}, m.spar)
	for g := 0; g < nGroups; g++ {
		lo, hi := groupBounds(g, fanIn, len(sp.jobs))
		res := &groupRes{done: make(chan struct{})}
		groups[g] = res
		go func(jobs []*flushJob, res *groupRes) {
			defer close(res.done)
			defer recoverWorker(&res.err)
			runs := make([]spillRun, 0, len(jobs))
			for _, j := range jobs {
				<-j.done
				if j.err != nil {
					res.err = j.err
					return
				}
				runs = append(runs, j.run)
			}
			if len(runs) == 1 {
				// Single-run group passes through, as in the serial pass.
				res.out = runs[0]
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			res.out, res.tally, res.err = mergeGroup(sp.arena, m.cfg.TempPrefix, runs, sp.ky, m.lay, m.cfg.Abort)
		}(sp.jobs[lo:hi], res)
	}

	// Fold formation tallies in dispatch order, then group merges in
	// group order; wait everything out even on error so the arena can be
	// released without racing in-flight writers.
	err := m.harvestJobs(sp)
	runs := make([]spillRun, 0, nGroups)
	for _, res := range groups {
		<-res.done
		res.tally.addTo(&m.stats)
		if res.err != nil && err == nil {
			err = res.err
		}
		runs = append(runs, res.out)
	}
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// reapJob observes job i's completion (blocking until the worker is done)
// and returns its buffer bytes to the memory budget exactly once — the
// reaped index is the single guard for that invariant; every wait-and-reap
// site goes through here.
func (m *MRS) reapJob(sp *spillState, i int) *flushJob {
	j := sp.jobs[i]
	<-j.done
	if i >= sp.reaped {
		m.liveBytes -= j.memBytes
		sp.reaped = i + 1
	}
	return j
}

// harvestJobs waits out every formation job in dispatch order, folding its
// work tally and returning its buffer bytes to the memory budget.
// The first job error is returned after all jobs have completed.
func (m *MRS) harvestJobs(sp *spillState) error {
	var firstErr error
	for i := range sp.jobs {
		j := m.reapJob(sp, i)
		j.tally.addTo(&m.stats)
		m.stats.FlatRunPages += j.pages
		if j.err != nil && firstErr == nil {
			firstErr = j.err
		}
	}
	return firstErr
}

// reapDone returns the buffers of already-completed jobs (in dispatch
// order, without blocking) to the memory budget, so read-ahead is gated on
// actual buffered bytes rather than on batches a worker has already spilled.
func (m *MRS) reapDone(sp *spillState) {
	if sp == nil {
		return
	}
	for sp.reaped < len(sp.jobs) {
		select {
		case <-sp.jobs[sp.reaped].done:
			m.reapJob(sp, sp.reaped)
		default:
			return
		}
	}
}

// releaseSpill waits out any in-flight spill work and releases the
// segment's arena, dropping its files and merging its I/O ledger into the
// disk's. Waiting first is what makes release safe: an arena must not
// disappear under a worker still writing runs into it.
func (m *MRS) releaseSpill(sp *spillState) {
	if sp == nil {
		return
	}
	for i := range sp.jobs {
		m.reapJob(sp, i)
	}
	if sp.arena != nil {
		sp.arena.Release()
		sp.arena = nil
	}
	sp.runs = nil
}

// release drops an exhausted segment: its buffer memory leaves the
// accounting and its spill arena (if any) is released.
func (m *MRS) release(seg *segment) {
	m.liveBytes -= seg.memBytes
	seg.buf = nil
	seg.order = nil
	m.releaseSpill(seg.sp)
	seg.sp = nil
}

// pump advances read-ahead in parallel mode: after each emitted tuple the
// consumer reads up to pumpQuantum more input tuples, dispatching completed
// segments to the worker pool, as long as fewer than Parallelism segments
// are queued beyond the one being emitted AND the buffered tuples across
// all live segments stay under the memory budget. The budget gate keeps
// total sort memory at roughly M even with a deep pool: lookahead stops
// growing once M is reached, so only the demand-driven path (one emitting
// plus one collecting segment) can exceed it, as in the serial algorithm.
func (m *MRS) pump() error {
	if m.par <= 1 || m.pending == nil || len(m.segq) >= m.par {
		return nil
	}
	// Buffers that spill workers have already written out no longer hold
	// memory; reap them — for the collecting segment and for queued spilled
	// segments awaiting adoption — before consulting the budget gate, or
	// phantom bytes would throttle read-ahead until the next adopt.
	for _, seg := range m.segq {
		m.reapDone(seg.sp)
	}
	if m.col != nil {
		m.reapDone(m.col.sp)
	}
	if m.liveBytes >= m.cfg.memoryBytes() {
		return nil
	}
	seg, err := m.collect(pumpQuantum)
	if err != nil {
		return err
	}
	if seg != nil {
		m.segq = append(m.segq, seg)
	}
	return nil
}

// collect reads input into the current segment collector. With limit < 0 it
// consumes the whole remaining segment; otherwise it reads at most limit
// tuples and may leave the segment partially collected for the next call.
// It returns a non-nil segment exactly when a segment boundary (or EOF) was
// reached; the returned segment is already dispatched for sorting when the
// pool is enabled.
func (m *MRS) collect(limit int) (*segment, error) {
	if m.pending == nil {
		return nil, nil
	}
	if m.col == nil {
		m.stats.Segments++
		m.col = &segCollector{first: m.pending, ky: m.segmentKeyer(m.pending)}
	}
	c := m.col
	read := 0
	for {
		// An oversized segment keeps the consumer in this loop for its whole
		// extent; the abort poll is what lets a cancellation interrupt it.
		if err := m.guard.Check(); err != nil {
			return nil, err
		}
		t := m.pending
		c.buf = append(c.buf, m.pendingKT)
		c.memBytes += int64(t.MemSize())
		m.liveBytes += int64(t.MemSize())
		if m.liveBytes > m.stats.PeakMemBytes {
			m.stats.PeakMemBytes = m.liveBytes
		}
		// The budget is re-read per tuple, not cached across the loop: a
		// governed query's live allowance (xsort.Budget) can shrink
		// mid-segment under spill pressure, and the next buffering decision
		// must see it.
		if c.memBytes >= m.cfg.memoryBytes() {
			c.spilled = true
			if err := m.flush(c); err != nil {
				return nil, err
			}
		}
		if err := m.advance(); err != nil {
			return nil, err
		}
		if m.pending == nil || !m.samePrefix(c.first, m.pending) {
			m.col = nil
			return m.finish(c)
		}
		read++
		if limit >= 0 && read >= limit {
			return nil, nil
		}
	}
}

// flush turns the collector's buffered tuples into one run of the
// (oversized) segment, written into the segment's spill arena. With
// SpillParallelism 1 the batch is sorted and written inline on the consumer
// goroutine (the paper's serial algorithm); otherwise the batch is handed
// to a flush job on the worker pool and the consumer keeps reading, with at
// most SpillParallelism jobs in flight.
func (m *MRS) flush(c *segCollector) error {
	if c.sp == nil {
		c.sp = &spillState{arena: m.cfg.Disk.NewArenaTapped(m.cfg.Tap), ky: c.ky}
	}
	if m.spar <= 1 {
		order, tally := formOrder(c.buf, c.ky, m.rf)
		tally.addTo(&m.stats)
		run, pages, err := writeRun(c.sp.arena, m.cfg.TempPrefix, c.buf, order, m.lay, c.ky.skip)
		if err != nil {
			return err
		}
		c.sp.runs = append(c.sp.runs, run)
		m.stats.FlatRunPages += pages
		m.stats.RunsGenerated++
		m.stats.SpillRunsSerial++
		c.buf = c.buf[:0]
		m.liveBytes -= c.memBytes
		c.memBytes = 0
		return nil
	}

	// Backpressure: with SpillParallelism jobs already in flight, wait for
	// the oldest before dispatching another, bounding transient memory at
	// SpillParallelism batches.
	m.reapDone(c.sp)
	for c.sp.inflight() >= m.spar {
		m.reapJob(c.sp, c.sp.reaped)
	}
	job := &flushJob{buf: c.buf, memBytes: c.memBytes, done: make(chan struct{})}
	c.sp.jobs = append(c.sp.jobs, job)
	m.stats.RunsGenerated++
	m.stats.SpillRunsParallel++
	arena, prefix, ky, rf, lay := c.sp.arena, m.cfg.TempPrefix, c.ky, m.rf, m.lay
	go func() {
		defer close(job.done)
		defer recoverWorker(&job.err)
		var order []int32
		order, job.tally = formOrder(job.buf, ky, rf)
		job.run, job.pages, job.err = writeRun(arena, prefix, job.buf, order, lay, ky.skip)
		job.buf = nil // batch is on disk; release it before the consumer reaps
	}()
	// The batch's bytes stay in liveBytes until the job completes and is
	// reaped; hand the collector a fresh buffer.
	c.buf = nil
	c.memBytes = 0
	return nil
}

// finish turns a fully read collector into a queued segment, dispatching
// the in-memory sort to a worker when the pool is enabled.
func (m *MRS) finish(c *segCollector) (*segment, error) {
	if c.spilled {
		m.stats.SpilledSegs++
		if len(c.buf) > 0 {
			if err := m.flush(c); err != nil {
				m.releaseSpill(c.sp)
				return nil, err
			}
		}
		return &segment{spilled: true, sp: c.sp, ky: c.ky}, nil
	}
	seg := &segment{buf: c.buf, memBytes: c.memBytes, ky: c.ky}
	if m.par > 1 {
		seg.done = make(chan struct{})
		go func() {
			defer close(seg.done)
			defer recoverWorker(&seg.err)
			seg.order, seg.tally = formOrder(seg.buf, seg.ky, m.rf)
		}()
	} else {
		var tally sortTally
		seg.order, tally = formOrder(seg.buf, seg.ky, m.rf)
		tally.addTo(&m.stats)
	}
	return seg, nil
}

// advance pulls the next input tuple into pending (nil at EOF), already
// wrapped with its sort key. TuplesIn counts here, per tuple the sort
// actually takes — source-side chunk buffering is invisible to the stats.
func (m *MRS) advance() error {
	if m.inputDone {
		m.pending = nil
		m.pendingKT = keyed{}
		return nil
	}
	kt, ok, err := m.src.next()
	if err != nil {
		return err
	}
	if !ok {
		m.inputDone = true
		m.pending = nil
		m.pendingKT = keyed{}
		return nil
	}
	m.stats.TuplesIn++
	m.pending = kt.t
	m.pendingKT = kt
	return nil
}

// Close releases any remaining spill arenas — of the emitting segment, of
// queued segments, and of a partially collected spilling segment — waiting
// out their in-flight flush jobs first, and closes the input. In-flight
// in-memory segment sorts finish on their own and are reclaimed by the
// garbage collector.
func (m *MRS) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if m.cur != nil {
		m.release(m.cur)
		m.cur = nil
	}
	for _, seg := range m.segq {
		m.releaseSpill(seg.sp)
		seg.sp = nil
	}
	m.segq = nil
	if m.col != nil {
		m.releaseSpill(m.col.sp)
		m.col = nil
	}
	if m.src != nil {
		m.src.release()
	}
	return m.input.Close()
}
