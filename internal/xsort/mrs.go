package xsort

import (
	"fmt"

	"pyro/internal/iter"
	"pyro/internal/keys"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// MRS is the paper's modified replacement selection (§3.1): an external
// sort that exploits a known partial sort order of its input. Given target
// order o = (a1..an) and input order o' = (a1..ak), k < n, the input is
// consumed segment by segment (maximal groups equal on a1..ak). Each
// segment is sorted independently on the suffix (ak+1..an):
//
//   - a segment that fits in memory is sorted with zero disk I/O and its
//     tuples are emitted as soon as the segment's end is seen — pipelined,
//     early output;
//   - a segment larger than memory spills per-memory-batch runs and merges
//     just those runs.
//
// With k = 0 (no known prefix) the whole input is a single segment and MRS
// degenerates to a load-sort-merge external sort, matching the paper's
// observation that MRS converges to SRS at the one-segment extreme (Fig 9).
//
// Because segments are mutually independent, their sorts are embarrassingly
// parallel. With Config.Parallelism = P > 1, in-memory segment sorts run on
// a bounded pool of worker goroutines while the consumer goroutine keeps
// reading ahead — at most P segments beyond the one being emitted, read in
// small quanta interleaved with emission so all input consumption stays on
// the consumer goroutine (the input iterator is never touched concurrently).
// Emission order is preserved by a FIFO of segment futures. The paper's
// pipelining guarantee survives in the bounded form: segment i begins
// emitting before segment i+P+1 has been read, and the first segment is
// always collected strictly demand-driven, so early output is retained.
// With P = 1 reading is strictly demand-driven exactly as in the serial
// paper algorithm: segment i is fully emitted before segment i+1 is read
// past its first tuple. Spilled (oversized) segments are always sorted and
// merged on the consumer goroutine — the pool accelerates the in-memory
// common case the paper's analysis centres on.
type MRS struct {
	input  iter.Iterator
	schema *types.Schema
	target sortord.Order
	given  sortord.Order // known input order; must be a prefix of target
	cfg    Config
	ks     types.KeySpec // full target key
	ky     *keyer        // suffix keyer: segment sorts compare ak+1..an only
	prefix int           // |given|
	par    int           // resolved segment-sort parallelism
	stats  SortStats

	// Input state.
	pending     types.Tuple // lookahead: first tuple of the next segment
	inputDone   bool
	passthrough bool // given == target: nothing to do

	// Segment pipeline: col accumulates the segment currently being read;
	// segq holds collected segments in input order (sorting or sorted);
	// cur is the segment being emitted.
	col  *segCollector
	segq []*segment
	cur  *segment

	liveBytes int64 // buffered tuple bytes across all live segments
	pumpErr   error // read-ahead failure, surfaced on the next Next call

	opened bool
	closed bool
}

// segCollector accumulates one partial-sort segment as it is read.
type segCollector struct {
	first    types.Tuple // segment representative for prefix comparisons
	buf      []keyed
	memBytes int64
	spilled  bool
	runs     []*storage.File
}

// segment is a collected segment queued for emission. In-memory segments
// sorted on a worker publish their comparison count through done; the
// consumer folds it into SortStats when the segment reaches the head of
// the queue, keeping the stats single-writer and their totals deterministic.
type segment struct {
	buf         []keyed
	order       []int32 // emission permutation over buf (in-memory segments)
	memBytes    int64
	comparisons int64
	done        chan struct{} // non-nil iff sorted asynchronously
	spilled     bool
	runs        []*storage.File

	pos     int
	merging *runMerger
}

// pumpQuantum is how many input tuples one emitted tuple "buys" of
// read-ahead in parallel mode; small enough that lookahead grows gradually
// and the early-output property stays tight.
const pumpQuantum = 64

// NewMRS builds a partial-order-exploiting sort. given must be a prefix of
// target (ε is allowed and yields single-segment behaviour); if given equals
// target the operator is a passthrough.
func NewMRS(input iter.Iterator, schema *types.Schema, target, given sortord.Order, cfg Config) (*MRS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if target.IsEmpty() {
		return nil, fmt.Errorf("xsort: empty target order")
	}
	if !given.PrefixOf(target) {
		return nil, fmt.Errorf("xsort: input order %v is not a prefix of target %v", given, target)
	}
	ks, err := types.MakeKeySpec(schema, target)
	if err != nil {
		return nil, err
	}
	// As in NewSRS: an unencodable key shape degrades to the comparator,
	// it never fails the sort.
	codec, _ := keys.FromKeySpec(ks)
	if cfg.TempPrefix == "" {
		cfg.TempPrefix = "mrs"
	}
	prefix := given.Len()
	suffixCmp := func(a, b types.Tuple) int { return ks.CompareSuffix(a, b, prefix) }
	var suffixCodec *keys.Codec
	if codec != nil {
		suffixCodec = codec.Suffix(prefix)
	}
	return &MRS{
		input:       input,
		schema:      schema,
		target:      target.Clone(),
		given:       given.Clone(),
		cfg:         cfg,
		ks:          ks,
		ky:          newKeyer(cfg.Keys, suffixCodec, suffixCmp),
		prefix:      prefix,
		par:         cfg.parallelism(),
		passthrough: prefix == target.Len(),
	}, nil
}

// Stats returns the operator's work counters.
func (m *MRS) Stats() *SortStats { return &m.stats }

// Order returns the produced sort order.
func (m *MRS) Order() sortord.Order { return m.target }

// Open opens the input. Unlike SRS, no input is consumed here beyond one
// lookahead tuple — MRS is pipelined.
func (m *MRS) Open() error {
	if m.opened {
		return fmt.Errorf("xsort: MRS opened twice")
	}
	m.opened = true
	if err := m.input.Open(); err != nil {
		return err
	}
	t, ok, err := m.input.Next()
	if err != nil {
		return err
	}
	if !ok {
		m.inputDone = true
		return nil
	}
	m.stats.TuplesIn++
	m.pending = t
	return nil
}

// samePrefix reports whether b belongs to the segment started by a.
func (m *MRS) samePrefix(a, b types.Tuple) bool {
	m.stats.Comparisons++
	return m.ks.ComparePrefix(a, b, m.prefix) == 0
}

// Next returns the next tuple of the target order.
func (m *MRS) Next() (types.Tuple, bool, error) {
	if m.pumpErr != nil {
		return nil, false, m.pumpErr
	}
	for {
		// Serve from the segment at the head of the pipeline.
		if m.cur != nil {
			t, ok, err := m.emit()
			if err != nil {
				return nil, false, err
			}
			if ok {
				m.stats.TuplesOut++
				// A read-ahead failure must not swallow the tuple already
				// taken from the current segment: deliver t now, surface
				// the error on the next call.
				m.pumpErr = m.pump()
				return t, true, nil
			}
			m.release(m.cur)
			m.cur = nil
		}
		// Adopt the next collected segment, waiting out its sort.
		if len(m.segq) > 0 {
			seg := m.segq[0]
			m.segq = m.segq[1:]
			if err := m.adopt(seg); err != nil {
				return nil, false, err
			}
			continue
		}
		if m.pending == nil {
			return nil, false, nil
		}
		if m.passthrough {
			t := m.pending
			if err := m.advance(); err != nil {
				return nil, false, err
			}
			m.stats.TuplesOut++
			return t, true, nil
		}
		// Nothing in flight: collect the next segment demand-driven.
		seg, err := m.collect(-1)
		if err != nil {
			return nil, false, err
		}
		if seg != nil {
			m.segq = append(m.segq, seg)
		}
	}
}

// emit serves the next tuple of the current segment, from its sorted buffer
// or its per-segment run merge.
func (m *MRS) emit() (types.Tuple, bool, error) {
	s := m.cur
	if s.merging != nil {
		return s.merging.next()
	}
	if s.pos >= len(s.order) {
		return nil, false, nil
	}
	t := s.buf[s.order[s.pos]].t
	s.pos++
	return t, true, nil
}

// adopt makes seg the current emission head: waits for an asynchronous sort
// to finish (folding its comparison count into the stats) or, for a spilled
// segment, reduces and opens its run merge.
func (m *MRS) adopt(seg *segment) error {
	if seg.done != nil {
		<-seg.done
		m.stats.Comparisons += seg.comparisons
	}
	if seg.spilled {
		runs, err := reduceRuns(m.cfg, seg.runs, m.ky, &m.stats)
		if err == nil {
			seg.runs = runs
			seg.merging, err = newRunMerger(runs, m.ky, &m.stats.Comparisons)
		}
		if err != nil {
			// seg is already off the queue: remove its surviving runs here
			// or they outlive Close (Remove is idempotent for files that a
			// partial reduceRuns pass already consumed).
			for _, f := range seg.runs {
				m.cfg.Disk.Remove(f.Name())
			}
			seg.runs = nil
			return err
		}
	}
	m.cur = seg
	return nil
}

// release drops an exhausted segment: its buffer memory leaves the
// accounting and its run files (if any) are removed.
func (m *MRS) release(seg *segment) {
	m.liveBytes -= seg.memBytes
	seg.buf = nil
	seg.order = nil
	for _, f := range seg.runs {
		m.cfg.Disk.Remove(f.Name())
	}
	seg.runs = nil
}

// pump advances read-ahead in parallel mode: after each emitted tuple the
// consumer reads up to pumpQuantum more input tuples, dispatching completed
// segments to the worker pool, as long as fewer than Parallelism segments
// are queued beyond the one being emitted AND the buffered tuples across
// all live segments stay under the memory budget. The budget gate keeps
// total sort memory at roughly M even with a deep pool: lookahead stops
// growing once M is reached, so only the demand-driven path (one emitting
// plus one collecting segment) can exceed it, as in the serial algorithm.
func (m *MRS) pump() error {
	if m.par <= 1 || m.pending == nil || len(m.segq) >= m.par ||
		m.liveBytes >= m.cfg.memoryBytes() {
		return nil
	}
	seg, err := m.collect(pumpQuantum)
	if err != nil {
		return err
	}
	if seg != nil {
		m.segq = append(m.segq, seg)
	}
	return nil
}

// collect reads input into the current segment collector. With limit < 0 it
// consumes the whole remaining segment; otherwise it reads at most limit
// tuples and may leave the segment partially collected for the next call.
// It returns a non-nil segment exactly when a segment boundary (or EOF) was
// reached; the returned segment is already dispatched for sorting when the
// pool is enabled.
func (m *MRS) collect(limit int) (*segment, error) {
	if m.pending == nil {
		return nil, nil
	}
	if m.col == nil {
		m.stats.Segments++
		m.col = &segCollector{first: m.pending}
	}
	c := m.col
	budget := m.cfg.memoryBytes()
	read := 0
	for {
		t := m.pending
		c.buf = append(c.buf, m.ky.wrap(t))
		c.memBytes += int64(t.MemSize())
		m.liveBytes += int64(t.MemSize())
		if m.liveBytes > m.stats.PeakMemBytes {
			m.stats.PeakMemBytes = m.liveBytes
		}
		if c.memBytes >= budget {
			c.spilled = true
			if err := m.flush(c); err != nil {
				return nil, err
			}
		}
		if err := m.advance(); err != nil {
			return nil, err
		}
		if m.pending == nil || !m.samePrefix(c.first, m.pending) {
			m.col = nil
			return m.finish(c)
		}
		read++
		if limit >= 0 && read >= limit {
			return nil, nil
		}
	}
}

// flush sorts the collector's buffered tuples and writes them out as one
// run of the (oversized) segment. Spill sorting happens on the consumer
// goroutine: the worker pool is reserved for the in-memory fast path.
func (m *MRS) flush(c *segCollector) error {
	order, comparisons := sortKeyed(c.buf, m.ky)
	m.stats.Comparisons += comparisons
	f, err := writeRun(m.cfg, c.buf, order)
	if err != nil {
		return err
	}
	c.runs = append(c.runs, f)
	m.stats.RunsGenerated++
	c.buf = c.buf[:0]
	m.liveBytes -= c.memBytes
	c.memBytes = 0
	return nil
}

// finish turns a fully read collector into a queued segment, dispatching
// the in-memory sort to a worker when the pool is enabled.
func (m *MRS) finish(c *segCollector) (*segment, error) {
	if c.spilled {
		m.stats.SpilledSegs++
		if len(c.buf) > 0 {
			if err := m.flush(c); err != nil {
				for _, f := range c.runs {
					m.cfg.Disk.Remove(f.Name())
				}
				return nil, err
			}
		}
		return &segment{spilled: true, runs: c.runs}, nil
	}
	seg := &segment{buf: c.buf, memBytes: c.memBytes}
	if m.par > 1 {
		seg.done = make(chan struct{})
		go func() {
			seg.order, seg.comparisons = sortKeyed(seg.buf, m.ky)
			close(seg.done)
		}()
	} else {
		var comparisons int64
		seg.order, comparisons = sortKeyed(seg.buf, m.ky)
		m.stats.Comparisons += comparisons
	}
	return seg, nil
}

// advance pulls the next input tuple into pending (nil at EOF).
func (m *MRS) advance() error {
	if m.inputDone {
		m.pending = nil
		return nil
	}
	t, ok, err := m.input.Next()
	if err != nil {
		return err
	}
	if !ok {
		m.inputDone = true
		m.pending = nil
		return nil
	}
	m.stats.TuplesIn++
	m.pending = t
	return nil
}

// Close releases any remaining run files — of the emitting segment, of
// queued segments, and of a partially collected spilling segment — and
// closes the input. In-flight segment sorts finish on their own and are
// reclaimed by the garbage collector.
func (m *MRS) Close() error {
	if m.closed {
		return nil
	}
	m.closed = true
	if m.cur != nil {
		m.release(m.cur)
		m.cur = nil
	}
	for _, seg := range m.segq {
		for _, f := range seg.runs {
			m.cfg.Disk.Remove(f.Name())
		}
		seg.runs = nil
	}
	m.segq = nil
	if m.col != nil {
		for _, f := range m.col.runs {
			m.cfg.Disk.Remove(f.Name())
		}
		m.col = nil
	}
	return m.input.Close()
}
