package xsort

import "bytes"

// MSD radix run formation. Normalized keys (package keys) made every sort
// comparison a bytes.Compare; this file harvests the rest of what the
// encoding pays for: because key order IS byte order, a buffer of keyed
// tuples can be sorted by byte-bucket distribution in O(n·keylen) with no
// comparisons at all. The sorter operates on the same int32 index
// permutations the comparison path uses (sortKeyed), so emission, spilling
// and merging are untouched — only how the permutation is produced changes.
//
// The sort is most-significant-digit-first with three standard refinements:
//
//   - stable counting distribution: each pass classifies the bucket's
//     entries by one key byte and redistributes them through a scratch
//     permutation, preserving arrival order within a bucket. Stability is
//     load-bearing, not cosmetic: it makes radix order bit-identical to the
//     sort.SliceStable order of the comparison path, which is what lets the
//     golden tests pin both modes to the same output bytes.
//
//   - insertion-sort cutoff: buckets at or below radixInsertionCutoff
//     entries are finished with a stable insertion sort on key suffixes.
//     Counting 257 buckets to place a handful of entries is wasted motion;
//     the crossover point is far above the cutoff.
//
//   - common-prefix skipping: before distributing, the bucket's shared key
//     prefix is measured and skipped in one scan. MRS seeds the top-level
//     call past the encoded bytes of the segment's shared `given` prefix
//     (keyer.skip, from keys.Codec.PrefixLen), and the scan extends the
//     skip through any further shared bytes — low-cardinality columns
//     produce long shared prefixes that would otherwise each cost a full
//     257-bucket counting pass.
//
// Work is accounted in SortStats alongside Comparisons: RadixPasses counts
// counting-distribution passes, RadixBucketScans the tuples classified by
// them, and the insertion-sort tail still increments Comparisons — so the
// paper's work accounting stays auditable in radix mode, it just has two
// currencies.

const (
	// radixInsertionCutoff is the bucket size at or below which the sort
	// switches to stable insertion on key suffixes. Tuned by
	// BenchmarkRadixInsertionCutoff over realistic key-length
	// distributions: short numeric keys and composite keys are flat from 8
	// through 32, but long text keys with shared prefixes degrade ~18%
	// past 16 — each insertion comparison re-scans the bucket's shared
	// suffix bytes that one cheap counting pass would have skipped once.
	radixInsertionCutoff = 16
	// adaptiveMinTuples is the buffer size below which RunFormAdaptive
	// keeps the comparison sort: tiny buffers are dominated by the
	// per-level bucket bookkeeping, not by comparisons.
	adaptiveMinTuples = 128
	// adaptiveMinKeyBytes is the minimum encoded key length (past any
	// shared-prefix skip) for RunFormAdaptive to pick radix: one- or
	// two-byte keys (a lone bool or NULL marker) partition in so few
	// passes that bytes.Compare is already effectively radix.
	adaptiveMinKeyBytes = 4
)

// sortTally is the work done by one run-formation sort, tallied locally so
// parallel segment sorts and spill jobs can publish once into SortStats in
// deterministic order (the same single-writer discipline sortKeyed's
// comparison count already followed).
type sortTally struct {
	comparisons      int64
	radixPasses      int64
	radixBucketScans int64
}

func (t sortTally) addTo(st *SortStats) {
	st.Comparisons += t.comparisons
	st.RadixPasses += t.radixPasses
	st.RadixBucketScans += t.radixBucketScans
}

// radixEligible decides whether buf is sorted by byte buckets or by
// comparisons. Comparator-mode keyers carry no encoded keys, so radix is
// structurally impossible and every mode degrades to the comparison sort.
func radixEligible(buf []keyed, ky *keyer, rf RunFormation) bool {
	if !ky.encoded() || rf == RunFormCompare {
		return false
	}
	if rf == RunFormRadix {
		return true
	}
	if len(buf) < adaptiveMinTuples {
		return false
	}
	return len(buf[0].key)-ky.skip >= adaptiveMinKeyBytes
}

// formOrder produces buf's emission permutation under the configured
// run-formation mode. Both branches yield the identical stable order; they
// differ only in how the work is spent (and therefore tallied).
func formOrder(buf []keyed, ky *keyer, rf RunFormation) ([]int32, sortTally) {
	if radixEligible(buf, ky, rf) {
		return radixSortKeyed(buf, ky.skip)
	}
	order, comparisons := sortKeyed(buf, ky)
	return order, sortTally{comparisons: comparisons}
}

// radixSortKeyed stable-sorts buf by key bytes from offset skip (the caller
// guarantees all keys share their first skip bytes and are at least skip
// bytes long), returning the emission permutation and the work tally.
func radixSortKeyed(buf []keyed, skip int) ([]int32, sortTally) {
	return radixSortKeyedCutoff(buf, skip, radixInsertionCutoff)
}

// radixSortKeyedCutoff is radixSortKeyed with an explicit insertion-sort
// cutoff; BenchmarkRadixInsertionCutoff sweeps it to keep the constant
// honest against real key-length distributions.
func radixSortKeyedCutoff(buf []keyed, skip, cutoff int) ([]int32, sortTally) {
	order := make([]int32, len(buf))
	for i := range order {
		order[i] = int32(i)
	}
	var t sortTally
	if len(buf) > 1 {
		scratch := make([]int32, len(buf))
		msdRadix(buf, order, scratch, 0, len(buf), skip, cutoff, &t)
	}
	return order, t
}

// msdRadix sorts order[lo:hi] — whose keys all agree on bytes [0, depth) —
// by distributing on the byte at depth and recursing into each bucket.
func msdRadix(buf []keyed, order, scratch []int32, lo, hi, depth, cutoff int, t *sortTally) {
	n := hi - lo
	if n <= 1 {
		return
	}
	if n <= cutoff {
		insertionByKey(buf, order[lo:hi], depth, t)
		return
	}
	depth += commonPrefixLen(buf, order[lo:hi], depth)

	// Classify into 257 buckets: 0 holds keys exhausted at depth (a short
	// key sorts before every extension, exactly as bytes.Compare orders a
	// prefix), 1..256 hold byte values 0..255.
	var counts [257]int
	t.radixPasses++
	t.radixBucketScans += int64(n)
	for i := lo; i < hi; i++ {
		counts[bucketOf(buf[order[i]].key, depth)]++
	}

	var next [257]int
	sum := 0
	for b := range counts {
		next[b] = sum
		sum += counts[b]
	}
	for i := lo; i < hi; i++ {
		b := bucketOf(buf[order[i]].key, depth)
		scratch[lo+next[b]] = order[i]
		next[b]++
	}
	copy(order[lo:hi], scratch[lo:hi])

	// Bucket 0 (exhausted keys) is a run of fully equal keys left in
	// arrival order — stable by construction. Value buckets recurse.
	start := lo + counts[0]
	for b := 1; b < 257; b++ {
		if counts[b] > 1 {
			msdRadix(buf, order, scratch, start, start+counts[b], depth+1, cutoff, t)
		}
		start += counts[b]
	}
}

func bucketOf(key []byte, depth int) int {
	if depth >= len(key) {
		return 0
	}
	return int(key[depth]) + 1
}

// commonPrefixLen returns how many bytes past depth every key in ord
// shares, in a single scan against the first key.
func commonPrefixLen(buf []keyed, ord []int32, depth int) int {
	first := buf[ord[0]].key
	max := len(first) - depth
	for i := 1; i < len(ord) && max > 0; i++ {
		k := buf[ord[i]].key
		if m := len(k) - depth; m < max {
			max = m
		}
		j := 0
		for j < max && k[depth+j] == first[depth+j] {
			j++
		}
		max = j
	}
	if max < 0 {
		max = 0
	}
	return max
}

// insertionByKey stable-sorts a small bucket by key suffixes, counting its
// comparisons into the tally: the radix mode's residual comparison work is
// real and stays on the books.
func insertionByKey(buf []keyed, ord []int32, depth int, t *sortTally) {
	for i := 1; i < len(ord); i++ {
		for j := i; j > 0; j-- {
			t.comparisons++
			if bytes.Compare(buf[ord[j]].key[depth:], buf[ord[j-1]].key[depth:]) >= 0 {
				break
			}
			ord[j], ord[j-1] = ord[j-1], ord[j]
		}
	}
}
