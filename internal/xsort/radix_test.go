package xsort

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"pyro/internal/iter"
	"pyro/internal/keys"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// randKeyed builds adversarial key buffers straight at the byte level:
// varying lengths, ties, keys that are prefixes of other keys, a shared
// leading region of skip bytes, and bytes from a tiny alphabet so every
// collision case actually occurs.
func randKeyed(r *rand.Rand, n, skip int) []keyed {
	shared := make([]byte, skip)
	r.Read(shared)
	alphabet := []byte{0x00, 0x01, 0x7f, 0xfe, 0xff}
	buf := make([]keyed, n)
	for i := range buf {
		k := append([]byte(nil), shared...)
		for j := r.Intn(6); j > 0; j-- {
			k = append(k, alphabet[r.Intn(len(alphabet))])
		}
		// The tuple doubles as an identity so stability violations are
		// visible even between equal keys.
		buf[i] = keyed{key: k, t: types.NewTuple(types.NewInt(int64(i)))}
	}
	// Inject exact duplicates of earlier keys.
	for i := range buf {
		if i > 0 && r.Intn(4) == 0 {
			buf[i].key = buf[r.Intn(i)].key
		}
	}
	return buf
}

// TestRadixSortKeyedMatchesStableSort: the radix permutation must be
// bit-identical to the stable comparison permutation — including tie order
// (stability) and prefix-of-longer-key ordering — for any skip depth.
func TestRadixSortKeyedMatchesStableSort(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for trial := 0; trial < 500; trial++ {
		skip := r.Intn(4)
		buf := randKeyed(r, r.Intn(300), skip)

		want := make([]int32, len(buf))
		for i := range want {
			want[i] = int32(i)
		}
		sort.SliceStable(want, func(i, j int) bool {
			return bytes.Compare(buf[want[i]].key[skip:], buf[want[j]].key[skip:]) < 0
		})

		got, tally := radixSortKeyed(buf, skip)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (skip %d): radix order %v != stable order %v", trial, skip, got, want)
		}
		if len(buf) > radixInsertionCutoff && tally.radixPasses == 0 {
			t.Fatalf("trial %d: %d keys sorted with zero radix passes", trial, len(buf))
		}
	}
}

func TestRadixEligibility(t *testing.T) {
	enc := &keyer{codec: testCodec(t)}
	cmp := &keyer{cmp: func(a, b types.Tuple) int { return 0 }}
	big := make([]keyed, adaptiveMinTuples)
	for i := range big {
		big[i] = keyed{key: []byte("12345678")}
	}
	small := big[:4]
	shortKeys := make([]keyed, adaptiveMinTuples)
	for i := range shortKeys {
		shortKeys[i] = keyed{key: []byte{0x01, 0x00}}
	}

	cases := []struct {
		name string
		buf  []keyed
		ky   *keyer
		rf   RunFormation
		want bool
	}{
		{"adaptive big encoded", big, enc, RunFormAdaptive, true},
		{"adaptive tiny buffer", small, enc, RunFormAdaptive, false},
		{"adaptive short keys", shortKeys, enc, RunFormAdaptive, false},
		{"compare mode", big, enc, RunFormCompare, false},
		{"radix forced tiny", small, enc, RunFormRadix, true},
		{"comparator keys", big, cmp, RunFormRadix, false},
	}
	for _, tc := range cases {
		if got := radixEligible(tc.buf, tc.ky, tc.rf); got != tc.want {
			t.Errorf("%s: radixEligible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func testCodec(t *testing.T) *keys.Codec {
	t.Helper()
	ks := types.MustKeySpec(sortSchema, sortord.New("c1"))
	c, err := keys.FromKeySpec(ks)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParseRunFormation(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RunFormation
	}{{"", RunFormAdaptive}, {"adaptive", RunFormAdaptive}, {"compare", RunFormCompare}, {"radix", RunFormRadix}} {
		got, err := ParseRunFormation(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRunFormation(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("String() round-trip: %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseRunFormation("bogus"); err == nil {
		t.Error("bogus mode should error")
	}
	cfg, _ := smallCfg(t, 4)
	cfg.RunFormation = RunFormation(9)
	if _, err := NewSRS(iter.FromSlice(nil), sortSchema, sortord.New("c1"), cfg); err == nil {
		t.Error("out-of-range RunFormation should fail validation")
	}
}

// fullKeySchemaRows returns rows where EVERY column is a key column of the
// target order, so byte-equal keys mean byte-equal tuples and output
// sequences are comparable across modes even where sorts are unstable
// (SRS's replacement-selection ties).
func fullKeyRows(r *rand.Rand, n, dist1 int) []types.Tuple {
	per := n / dist1
	if per == 0 {
		per = 1
	}
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.NewTuple(
			types.NewInt(int64(i/per)),
			types.NewInt(int64(r.Intn(40))), // narrow: plenty of ties
			types.NewString(string(rune('a'+r.Intn(3)))),
		)
	}
	return rows
}

// TestRunFormationModesAgree is the property test of the PR: for random
// segment shapes, memory budgets and parallelism levels, radix and adaptive
// run formation must reproduce the compare path's output sequence, run
// structure and I/O totals exactly — for MRS and SRS alike. Only the work
// accounting (Comparisons vs RadixPasses) may differ.
func TestRunFormationModesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	target := sortord.New("c1", "c2", "c3")
	for trial := 0; trial < 60; trial++ {
		n := 20 + r.Intn(3000)
		dist1 := 1 + r.Intn(12)
		blocks := 2 + r.Intn(12)
		par := 1 + r.Intn(4)
		rows := fullKeyRows(r, n, dist1)
		shuffledRows := shuffled(rows, rand.New(rand.NewSource(int64(trial))))

		type result struct {
			out   []types.Tuple
			stats SortStats
			io    storage.IOStats
		}
		runMRS := func(rf RunFormation) result {
			cfg, d := smallCfg(t, blocks)
			cfg.Parallelism = par
			cfg.RunFormation = rf
			m, err := NewMRS(iter.FromSlice(rows), sortSchema, target, sortord.New("c1"), cfg)
			if err != nil {
				t.Fatal(err)
			}
			out, err := iter.Drain(m)
			if err != nil {
				t.Fatal(err)
			}
			return result{out, *m.Stats(), d.Stats()}
		}
		runSRS := func(rf RunFormation) result {
			cfg, d := smallCfg(t, blocks)
			cfg.RunFormation = rf
			s, err := NewSRS(iter.FromSlice(shuffledRows), sortSchema, target, cfg)
			if err != nil {
				t.Fatal(err)
			}
			out, err := iter.Drain(s)
			if err != nil {
				t.Fatal(err)
			}
			return result{out, *s.Stats(), d.Stats()}
		}

		for _, op := range []struct {
			name string
			run  func(RunFormation) result
		}{{"mrs", runMRS}, {"srs", runSRS}} {
			base := op.run(RunFormCompare)
			if base.stats.RadixPasses != 0 || base.stats.RadixBucketScans != 0 {
				t.Fatalf("trial %d %s: compare mode counted radix work: %+v", trial, op.name, base.stats)
			}
			for _, rf := range []RunFormation{RunFormRadix, RunFormAdaptive} {
				got := op.run(rf)
				if len(got.out) != len(base.out) {
					t.Fatalf("trial %d %s %v: %d tuples vs %d", trial, op.name, rf, len(got.out), len(base.out))
				}
				for i := range got.out {
					if !reflect.DeepEqual(got.out[i], base.out[i]) {
						t.Fatalf("trial %d %s %v: output diverges at %d: %v vs %v",
							trial, op.name, rf, i, got.out[i], base.out[i])
					}
				}
				if got.stats.RunsGenerated != base.stats.RunsGenerated ||
					got.stats.MergePasses != base.stats.MergePasses ||
					got.stats.Segments != base.stats.Segments ||
					got.stats.SpilledSegs != base.stats.SpilledSegs {
					t.Fatalf("trial %d %s %v: run structure diverges:\n compare %+v\n %v %+v",
						trial, op.name, rf, base.stats, rf, got.stats)
				}
				if got.io != base.io {
					t.Fatalf("trial %d %s %v: IO diverges: %+v vs %+v", trial, op.name, rf, got.io, base.io)
				}
			}
		}
	}
}

// TestRadixFallsBackOnComparatorKeys: forcing radix with comparator-mode
// keys must degrade to the comparison sort, not fail or miscount.
func TestRadixFallsBackOnComparatorKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rows := genRows(2000, 10, rng)
	cfg, _ := smallCfg(t, 8)
	cfg.Keys = KeyComparator
	cfg.RunFormation = RunFormRadix
	m, err := NewMRS(iter.FromSlice(rows), sortSchema, sortord.New("c1", "c2"), sortord.New("c1"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := iter.Drain(m)
	if err != nil {
		t.Fatal(err)
	}
	isSorted(t, out, sortord.New("c1", "c2"))
	if st := m.Stats(); st.RadixPasses != 0 || st.RadixBucketScans != 0 {
		t.Fatalf("comparator keys cannot radix-partition, yet stats say %+v", st)
	}
}
