package xsort

import (
	"fmt"
	"math/rand"
	"testing"

	"pyro/internal/types"
)

// Realistic key-length distributions for the insertion-cutoff sweep. Each
// builder returns a fresh keyed buffer of n entries; keys are built at the
// byte level in the shapes the normalized-key codec actually produces.
//
//   - int64: a lone numeric ORDER BY column — 9 encoded bytes (tag +
//     big-endian payload), uniform values, so buckets fan out fast and the
//     tail buckets are tiny.
//   - composite: (low-cardinality int64, int64, short string) — the
//     grouped shapes MRS segments see. The leading column leaves ~500-row
//     buckets sharing a 9-byte prefix, so recursion spends most of its
//     time in mid-size buckets where the cutoff choice actually matters.
//   - strings: path-like variable-length text, 12–40 bytes with a handful
//     of long shared prefixes — the distribution that punishes a cutoff
//     set too low, because each extra recursion level re-scans the shared
//     bytes.
var cutoffDistributions = []struct {
	name  string
	build func(r *rand.Rand, n int) []keyed
}{
	{"int64", func(r *rand.Rand, n int) []keyed {
		buf := make([]keyed, n)
		for i := range buf {
			k := make([]byte, 9)
			k[0] = 0x10
			r.Read(k[1:])
			buf[i] = keyed{key: k, t: types.NewTuple(types.NewInt(int64(i)))}
		}
		return buf
	}},
	{"composite", func(r *rand.Rand, n int) []keyed {
		buf := make([]keyed, n)
		for i := range buf {
			k := make([]byte, 0, 32)
			k = append(k, 0x10, 0, 0, 0, 0, 0, 0, 0, byte(r.Intn(100)))
			k = append(k, 0x10)
			var v [8]byte
			r.Read(v[:])
			k = append(k, v[:]...)
			k = append(k, 0x20)
			k = append(k, fmt.Sprintf("tag-%03d", r.Intn(1000))...)
			k = append(k, 0)
			buf[i] = keyed{key: k, t: types.NewTuple(types.NewInt(int64(i)))}
		}
		return buf
	}},
	{"strings", func(r *rand.Rand, n int) []keyed {
		prefixes := []string{"/var/log/pyro/", "/var/lib/pyro/runs/", "/home/u/", "pyro://seg/"}
		buf := make([]keyed, n)
		for i := range buf {
			k := []byte{0x20}
			k = append(k, prefixes[r.Intn(len(prefixes))]...)
			for j := 4 + r.Intn(24); j > 0; j-- {
				k = append(k, byte('a'+r.Intn(26)))
			}
			k = append(k, 0)
			buf[i] = keyed{key: k, t: types.NewTuple(types.NewInt(int64(i)))}
		}
		return buf
	}},
}

// BenchmarkRadixInsertionCutoff sweeps the insertion-sort cutoff across
// the three key-length distributions above. This is the measurement
// behind radixInsertionCutoff = 16: on 50k-key buffers the int64 and
// composite distributions are flat within noise from 8 through 32, but
// the strings distribution degrades steadily above 16 (~18% slower at 24,
// ~25% at 32) — its buckets share long prefixes, so every insertion
// comparison re-walks suffix bytes that a single counting pass classifies
// once, and the quadratic comparison count swamps the saved passes.
// 16 takes the strings win without leaving anything on the flat
// distributions. Re-run the sweep before moving the constant.
func BenchmarkRadixInsertionCutoff(b *testing.B) {
	const n = 50_000
	for _, dist := range cutoffDistributions {
		buf := dist.build(rand.New(rand.NewSource(41)), n)
		for _, cutoff := range []int{8, 16, 24, 32, 48, 64} {
			b.Run(fmt.Sprintf("%s/cutoff%d", dist.name, cutoff), func(b *testing.B) {
				b.ReportAllocs()
				var t sortTally
				for i := 0; i < b.N; i++ {
					_, t = radixSortKeyedCutoff(buf, 0, cutoff)
				}
				b.ReportMetric(float64(t.comparisons), "comparisons/op")
				b.ReportMetric(float64(t.radixPasses), "radix-passes/op")
			})
		}
	}
}
