package lint

import "testing"

// TestArenaRelease drives the analyzer over the fixture package, which
// includes a reconstruction of the PR 8 MRS adopt leak (inline-only
// Release with a fallible call in between) and the flat-run writer shape
// (one arena backing a payload file and an entry file, with a fallible
// entry-writer Close between creation and Release) alongside the accepted
// shapes: plain defer, defer guarded by an ownership flag, and every form
// of ownership transfer.
func TestArenaRelease(t *testing.T) {
	res := runFixture(t, []*Analyzer{ArenaRelease}, "./arena")
	if want := 6; len(res.Diagnostics) != want {
		t.Errorf("got %d diagnostics, want %d", len(res.Diagnostics), want)
	}
}
