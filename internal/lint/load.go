package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// A Package is one loaded, parsed and type-checked package ready for
// analysis. Only non-test files are loaded: the invariants the suite
// encodes govern production paths (tests may discard Close errors, spin
// bounded loops and iterate maps freely).
type Package struct {
	Path  string // import path
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	annotations []*Annotation
	badAnnots   []Diagnostic
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool in dir, parses every matched
// package's non-test files and type-checks them against gc export data, so
// analyzers see full types.Info without any dependency beyond the Go
// toolchain. Matched packages are returned in deterministic (import path)
// order; their transitive dependencies are loaded as export data only.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Standard,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v in %s: %w\n%s", patterns, dir, err, stderr.String())
	}

	exports := make(map[string]string)
	var roots []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			listed := p
			roots = append(roots, &listed)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports)
	var pkgs []*Package
	for _, root := range roots {
		pkg, err := typeCheck(fset, imp, root)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typeCheck parses and type-checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, listed *listedPackage) (*Package, error) {
	pkg := &Package{
		Path: listed.ImportPath,
		Name: listed.Name,
		Dir:  listed.Dir,
		Fset: fset,
	}
	for _, name := range listed.GoFiles {
		file, err := parser.ParseFile(fset, filepath.Join(listed.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, file)
		anns, bad := parseAnnotations(fset, file)
		pkg.annotations = append(pkg.annotations, anns...)
		pkg.badAnnots = append(pkg.badAnnots, bad...)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	typed, err := conf.Check(listed.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", listed.ImportPath, err)
	}
	pkg.Types = typed
	return pkg, nil
}

// exportImporter resolves imports from the gc export data files `go list
// -export` recorded, which the build cache guarantees exist for every
// dependency of a successfully listed package. One underlying gc importer
// is shared across the whole load so every package that imports, say,
// "fmt" sees the identical *types.Package and type identity holds across
// the analyzed packages.
type exportImporter struct {
	gc types.Importer
}

func newExportImporter(fset *token.FileSet, exports map[string]string) exportImporter {
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data recorded for %q", path)
		}
		return os.Open(file)
	})
	return exportImporter{gc: gc}
}

func (e exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}
