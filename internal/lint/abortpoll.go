package lint

import (
	"go/ast"
	"go/types"
)

// AbortPoll checks that unbounded loops in the sort and execution engines
// poll the cancellation guard. The streaming contract (PR 4) promises that
// a context cancellation, a query deadline or an early cursor Close
// reaches the engine within a bounded amount of work; that promise holds
// only if every loop that can run for an input-sized number of iterations
// consults iter.Guard.Check (or invokes Config.Abort directly).
//
// Scope: internal/xsort and internal/exec. Flagged loop shapes are the
// unbounded ones — `for { ... }` with no condition, and ranges over
// channels. A loop that is genuinely bounded (heap sift, fan-in scan) is
// annotated //pyro:bounded(reason); the driver rejects empty reasons and
// flags stale annotations.
var AbortPoll = &Analyzer{
	Name: "abortpoll",
	Doc: "unbounded loops in internal/xsort and internal/exec must poll the abort " +
		"guard (iter.Guard.Check / Config.Abort) or carry //pyro:bounded(reason)",
	Run: runAbortPoll,
}

func runAbortPoll(pass *Pass) error {
	if !pathWithin(pass.Path(), "internal/xsort") && !pathWithin(pass.Path(), "internal/exec") {
		return nil
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				if loop.Init != nil || loop.Cond != nil || loop.Post != nil {
					return true // bounded by its condition clause
				}
				body = loop.Body
			case *ast.RangeStmt:
				tv, ok := info.Types[loop.X]
				if !ok {
					return true
				}
				if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
					return true // ranging over finite data
				}
				body = loop.Body
			default:
				return true
			}
			// Consume the annotation even when the loop also polls, so a
			// stale //pyro:bounded on a polling loop is not reported as
			// unattached (the poll is the stronger property).
			_, annotated := pass.Annotation(n.Pos(), "bounded")
			if annotated || pollsAbort(info, body) {
				return true
			}
			pass.Reportf(n.Pos(), "unbounded loop does not poll the abort guard: call iter.Guard.Check (or Config.Abort) in the loop body, or annotate //pyro:bounded(reason)")
			return true
		})
	}
	return nil
}

// pollsAbort reports whether the loop body contains a guard poll on a path
// that runs every iteration — a call to iter.Guard.Check or to an Abort
// field/method. Nested function literals are excluded: a poll inside a
// closure only helps if the closure runs, which the analyzer cannot
// assume.
func pollsAbort(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, name, ok := methodCall(info, call, "Check", "Abort"); ok {
			switch name {
			case "Check":
				if namedFrom(recv, "internal/iter", "Guard") {
					found = true
				}
			case "Abort":
				// cfg.Abort() — invoking the abort hook is itself a poll.
				found = true
			}
		}
		return true
	})
	return found
}
