package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Determinism keeps the planner and sort engine bit-reproducible. The
// bench gate diffs deterministic work counters (comparisons, radix passes,
// page I/O) against a checked-in baseline, golden tests pin run/pass
// structure across parallelism levels, and plan choice must not depend on
// anything but the query and the catalog. Three nondeterminism sources are
// banned in internal/core, internal/cost and internal/xsort:
//
//   - time.Now / time.Since: wall-clock feeding a decision or a counter
//   - math/rand (and rand/v2): unseeded or globally seeded randomness
//   - ranging over a map: iteration order varies run to run; iterate
//     sorted keys instead, or annotate //pyro:unordered(reason) when the
//     loop provably cannot influence counters or plan choice (for
//     example, it only drains resources)
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "no time.Now, math/rand or map-iteration-order dependence in internal/core, " +
		"internal/cost, internal/xsort: counters and plan choice must be bit-reproducible",
	Run: runDeterminism,
}

// determinismScope lists the packages whose outputs feed the bench-gated
// counters or plan choice.
var determinismScope = []string{"internal/core", "internal/cost", "internal/xsort"}

func runDeterminism(pass *Pass) error {
	scoped := false
	for _, s := range determinismScope {
		if pathWithin(pass.Path(), s) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a determinism-scoped package: randomness would make the gated counters and plan choice irreproducible", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.CallExpr:
				obj := calleeObject(info, stmt)
				if obj != nil && pkgPathOf(obj) == "time" && (obj.Name() == "Now" || obj.Name() == "Since") {
					pass.Reportf(stmt.Pos(), "time.%s in a determinism-scoped package: wall-clock must not feed counters or plan choice (measure in the harness or cursor layer instead)", obj.Name())
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[stmt.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if _, annotated := pass.Annotation(stmt.Pos(), "unordered"); annotated {
					return true
				}
				pass.Reportf(stmt.Pos(), "map iteration order is nondeterministic: iterate key-sorted (collect keys, sort, range the slice) or annotate //pyro:unordered(reason) if the loop cannot influence counters or plan choice")
			}
			return true
		})
	}
	return nil
}
