package lint

import (
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads patterns from the fixture module at testdata/src. The
// module is real, compilable Go (module pyrofix) whose fake
// internal/storage and internal/iter packages satisfy the analyzers'
// name-plus-path-suffix type matching.
func loadFixture(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	pkgs, err := Load("testdata/src", patterns...)
	if err != nil {
		t.Fatalf("loading fixture %v: %v", patterns, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %v matched no packages", patterns)
	}
	return pkgs
}

// runFixture runs the analyzers over the fixture patterns and compares
// every reported diagnostic — surviving and invalid-annotation alike —
// against the fixtures' want comments (analysistest-style: a line
// comment of the form "// want" followed by backquoted regexps): each
// want must be matched by a diagnostic on its line, and each diagnostic
// must be claimed by a want.
func runFixture(t *testing.T, analyzers []*Analyzer, patterns ...string) *Result {
	t.Helper()
	pkgs := loadFixture(t, patterns...)
	res, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %v: %v", patterns, err)
	}
	diags := append(append([]Diagnostic{}, res.Diagnostics...), res.Invalid...)
	checkWant(t, pkgs, diags)
	return res
}

// wantExpectation is one backquoted regexp of one want comment.
type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantPatternRe = regexp.MustCompile("`([^`]+)`")

// collectWants parses the want comments of the loaded root packages.
func collectWants(t *testing.T, pkgs []*Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					matches := wantPatternRe.FindAllStringSubmatch(text, -1)
					if len(matches) == 0 {
						t.Errorf("%s: want comment carries no backquoted regexp", pos)
						continue
					}
					for _, m := range matches {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, m[1], err)
							continue
						}
						wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// checkWant matches diagnostics against want expectations one-to-one.
func checkWant(t *testing.T, pkgs []*Package, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkgs)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Position.Filename || w.line != d.Position.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
