package lint

import "testing"

// TestAbortPoll drives the analyzer over a fixture living at the scoped
// import-path suffix internal/xsort: polling loops and condition-bounded
// loops pass, non-polling unbounded loops and channel ranges are flagged,
// //pyro:bounded(reason) exempts, and a poll inside a nested closure does
// not count.
func TestAbortPoll(t *testing.T) {
	res := runFixture(t, []*Analyzer{AbortPoll}, "./internal/xsort")
	if want := 3; len(res.Diagnostics) != want {
		t.Errorf("got %d diagnostics, want %d", len(res.Diagnostics), want)
	}
}

// TestAbortPollScope checks the analyzer ignores packages outside
// internal/xsort and internal/exec: the arena fixture is silent under it.
func TestAbortPollScope(t *testing.T) {
	pkgs := loadFixture(t, "./arena")
	res, err := Run(pkgs, []*Analyzer{AbortPoll})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("abortpoll fired outside its scope: %s", d)
	}
}
