package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// ErrWrap enforces the error-propagation contract PR 8 threaded through
// the engine: sentinel errors (storage.ErrInjectedFault, ErrNoTempSpace,
// context.Canceled/DeadlineExceeded) must survive from the storage layer
// to the cursor so errors.Is keeps working, and cleanup errors must not
// vanish.
//
// Two rules, repo-wide on non-test files:
//
//  1. fmt.Errorf with an error-typed argument must use %w (or errors.Join)
//     — formatting an error with %v/%s severs the Unwrap chain and breaks
//     every errors.Is test downstream.
//
//  2. The error of a Close or Release call (any method with the canonical
//     `func(...) error` cleanup signature) may not be silently discarded:
//     not as a bare statement, not as `_ =`, and not as a bare `defer` —
//     a Close failure is a leaked resource or a poisoned spill arena and
//     must be handled or joined into the function's error (see
//     iter.Drain).
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "wrap error causes with %w so sentinels survive to the cursor, and never " +
		"silently discard Close/Release errors",
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	for _, file := range pass.Files() {
		walkStack(file, func(n ast.Node, stack []ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.CallExpr:
				checkErrorfWrap(pass, stmt)
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, ok := discardedCleanup(pass, call); ok {
						pass.Reportf(stmt.Pos(), "error from %s is silently discarded: handle it or join it into the function's error", name)
					}
				}
			case *ast.DeferStmt:
				if name, ok := discardedCleanup(pass, stmt.Call); ok {
					pass.Reportf(stmt.Pos(), "deferred %s discards its error: use `defer func() { err = errors.Join(err, x.%s()) }()` or handle it in the closure", name, shortName(name))
				}
			case *ast.GoStmt:
				if name, ok := discardedCleanup(pass, stmt.Call); ok {
					pass.Reportf(stmt.Pos(), "error from %s is discarded by the go statement", name)
				}
			case *ast.AssignStmt:
				checkBlankCleanup(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error-typed
// argument without a %w verb.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo()
	obj := calleeObject(info, call)
	if obj == nil || obj.Name() != "Errorf" || pkgPathOf(obj) != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	if strings.Contains(strings.ReplaceAll(format, "%%", ""), "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		argTV, ok := info.Types[arg]
		if !ok || !isErrorType(argTV.Type) {
			continue
		}
		pass.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w: the cause is severed from the Unwrap chain and sentinel checks (errors.Is) downstream stop working")
		return
	}
}

// discardedCleanup reports whether call is a Close/Release invocation with
// the `func(...) error` cleanup signature whose result the surrounding
// statement drops, returning a display name for the diagnostic.
func discardedCleanup(pass *Pass, call *ast.CallExpr) (string, bool) {
	info := pass.TypesInfo()
	_, name, ok := methodCall(info, call, "Close", "Release")
	if !ok || !returnsOnlyError(info, call) {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			return id.Name + "." + name, true
		}
	}
	return name, true
}

// checkBlankCleanup flags `_ = x.Close()` — an explicit discard is still a
// discard on production paths.
func checkBlankCleanup(pass *Pass, stmt *ast.AssignStmt) {
	if len(stmt.Lhs) != 1 || len(stmt.Rhs) != 1 {
		return
	}
	id, ok := stmt.Lhs[0].(*ast.Ident)
	if !ok || id.Name != "_" {
		return
	}
	call, ok := stmt.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	if name, ok := discardedCleanup(pass, call); ok {
		pass.Reportf(stmt.Pos(), "error from %s is explicitly discarded: handle it or join it into the function's error (see iter.Drain)", name)
	}
}

// shortName returns the method part of a dotted display name.
func shortName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
