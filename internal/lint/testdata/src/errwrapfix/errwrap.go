// Package errwrapfix exercises the errwrap analyzer: %w wrapping and the
// no-silent-discard rule for Close/Release cleanup errors.
package errwrapfix

import (
	"errors"
	"fmt"
)

// Closer has the canonical `func() error` cleanup signature.
type Closer struct{}

// Close reports cleanup failure.
func (*Closer) Close() error { return nil }

// Releaser has a void Release, like storage.SpillArena: not a cleanup
// signature the analyzer tracks, so discarding it is fine.
type Releaser struct{}

// Release frees without an error.
func (*Releaser) Release() {}

// wrapped is clean: the cause stays on the Unwrap chain.
func wrapped(err error) error {
	return fmt.Errorf("open run file: %w", err)
}

// severed formats the cause away: errors.Is stops working downstream.
func severed(err error) error {
	return fmt.Errorf("open run file: %v", err) // want `fmt.Errorf formats an error without %w`
}

// formatted is clean: no error-typed argument (and %% is not a verb).
func formatted(n int) error {
	return fmt.Errorf("bad fan-in %d (over 100%% of budget)", n)
}

// discardedStmt drops the cleanup error on the floor.
func discardedStmt(c *Closer) {
	c.Close() // want `error from c.Close is silently discarded`
}

// discardedBlank discards explicitly: still a discard on production paths.
func discardedBlank(c *Closer) {
	_ = c.Close() // want `error from c.Close is explicitly discarded`
}

// discardedDefer is the classic bare defer.
func discardedDefer(c *Closer) error {
	defer c.Close() // want `deferred c.Close discards its error`
	return nil
}

// discardedGo loses the error with the goroutine.
func discardedGo(c *Closer) {
	go c.Close() // want `error from c.Close is discarded by the go statement`
}

// handled is clean: the error is checked.
func handled(c *Closer) error {
	if err := c.Close(); err != nil {
		return fmt.Errorf("close run file: %w", err)
	}
	return nil
}

// joined is the clean deferred shape: the cleanup error joins the
// function's error.
func joined(c *Closer) (err error) {
	defer func() { err = errors.Join(err, c.Close()) }()
	return nil
}

// voidRelease is clean: Release returns nothing, there is no error to
// discard.
func voidRelease(r *Releaser) {
	defer r.Release()
	r.Release()
}
