// Package exec exercises the tapcharge analyzer. The fixture lives at the
// scoped import-path suffix internal/exec, an engine package where direct
// os file I/O bypasses the IOStats ledger and per-query taps.
package exec

import (
	"os"

	"pyrofix/internal/storage"
)

// spoolToFile bypasses the ledger twice: the open and the write are both
// invisible to IOStats, the taps, the bench gate and the fault plane.
func spoolToFile(path string, page []byte) error {
	f, err := os.Create(path) // want `direct file I/O \(os\.Create\)`
	if err != nil {
		return err
	}
	if _, err := f.Write(page); err != nil { // want `direct os\.File\.Write`
		return err
	}
	return f.Close()
}

// readPages reads a file wholesale without charging anything.
func readPages(path string) ([]byte, error) {
	return os.ReadFile(path) // want `direct file I/O \(os\.ReadFile\)`
}

// spoolToArena is the clean path: pages move through the storage layer,
// which charges the ledger and the query's tap.
func spoolToArena(d *storage.Disk) {
	a := d.NewArena("spool")
	defer a.Release()
}

// envRead is clean: os.Getenv is not file I/O.
func envRead() string {
	return os.Getenv("PYRO_TRACE")
}

// spoolEntriesDirect writes the entry half of a flat spill run straight
// through os: the pages never reach the tap, the FlatRunPages counter or
// the fault plane, so the run looks free to the bench gate and is
// invisible to the chaos sweep.
func spoolEntriesDirect(path string, entries []byte) error {
	return os.WriteFile(path, entries, 0o600) // want `direct file I/O \(os\.WriteFile\)`
}
