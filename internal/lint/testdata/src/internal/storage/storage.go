// Package storage is a fixture double for pyro's storage layer: just
// enough surface (Disk, SpillArena, Tap) for the analyzers' type-based
// matching, which identifies types by name plus import-path suffix. It is
// also the tapcharge clean case: the storage package is the I/O boundary
// and may use the os file API freely.
package storage

import "os"

// Disk stands in for the simulated block device.
type Disk struct{}

// SpillArena stands in for a spill arena. Release returns nothing, like
// the real arena, so discarding it never trips errwrap.
type SpillArena struct{}

// Release frees the arena's pages.
func (*SpillArena) Release() {}

// Tap stands in for a per-query I/O tap.
type Tap struct{}

// NewArena creates an arena charging the device ledger.
func (*Disk) NewArena(name string) *SpillArena {
	_ = name
	return &SpillArena{}
}

// NewArenaTapped creates an arena charging a per-query tap as well.
func (*Disk) NewArenaTapped(name string, tap *Tap) *SpillArena {
	_, _ = name, tap
	return &SpillArena{}
}

// Dump writes a debug snapshot; direct os I/O is legitimate here.
func (*Disk) Dump(path string) error {
	return os.WriteFile(path, []byte("disk"), 0o644)
}
