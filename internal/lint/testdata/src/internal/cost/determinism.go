// Package cost exercises the determinism analyzer. The fixture lives at
// the scoped import-path suffix internal/cost, where wall-clock,
// randomness and map iteration order must not feed the bench-gated
// counters or plan choice.
package cost

import (
	"sort"
	"time"

	_ "math/rand" // want `import of math/rand in a determinism-scoped package`
)

// rankByClock feeds wall-clock into a decision.
func rankByClock() int64 {
	return time.Now().UnixNano() // want `time\.Now in a determinism-scoped package`
}

// elapsed measures inside the scoped package.
func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a determinism-scoped package`
}

// totalUnordered folds a map in iteration order. Summation happens to be
// commutative, but the analyzer cannot know that; the annotated or sorted
// shapes below are the accepted spellings.
func totalUnordered(costs map[string]float64) float64 {
	var total float64
	for _, c := range costs { // want `map iteration order is nondeterministic`
		total += c
	}
	return total
}

// totalSorted is the clean shape: collect keys under an annotation (the
// collection loop is order-insensitive because the keys are sorted before
// any order-sensitive use), then range the sorted slice.
func totalSorted(costs map[string]float64) float64 {
	keys := make([]string, 0, len(costs))
	//pyro:unordered(keys are sorted before any order-sensitive use)
	for k := range costs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += costs[k]
	}
	return total
}
