// Package xsort exercises the abortpoll analyzer. The fixture lives at
// the scoped import-path suffix internal/xsort, where every unbounded
// loop must poll the abort guard or carry //pyro:bounded(reason).
package xsort

import "pyrofix/internal/iter"

// Config mirrors the real sort config's abort hook.
type Config struct {
	Abort func() error
}

// drainPolling is clean: the unbounded loop polls the guard every
// iteration.
func drainPolling(next func() (int, bool), poll func() error) error {
	g := iter.NewGuard(poll)
	for {
		if err := g.Check(); err != nil {
			return err
		}
		if _, ok := next(); !ok {
			return nil
		}
	}
}

// drainNoPoll is the violation: an input-sized loop with no poll, so a
// cancellation cannot reach it until the input is exhausted.
func drainNoPoll(next func() (int, bool)) int {
	n := 0
	for { // want `unbounded loop does not poll the abort guard`
		if _, ok := next(); !ok {
			return n
		}
		n++
	}
}

// drainAbortHook is clean: invoking the abort hook directly is a poll.
func drainAbortHook(cfg Config, next func() (int, bool)) error {
	for {
		if err := cfg.Abort(); err != nil {
			return err
		}
		if _, ok := next(); !ok {
			return nil
		}
	}
}

// siftBounded is clean via annotation: the loop does bounded work.
func siftBounded(heap []int, i int) {
	//pyro:bounded(descends one heap level per iteration)
	for {
		l := 2*i + 1
		if l >= len(heap) {
			return
		}
		i = l
	}
}

// drainChannel ranges over a channel without polling: unbounded, since
// the channel can deliver an input-sized stream.
func drainChannel(ch chan int) int {
	n := 0
	for range ch { // want `unbounded loop does not poll the abort guard`
		n++
	}
	return n
}

// drainSlice is clean: ranging over a slice is bounded by its length.
func drainSlice(items []int) int {
	n := 0
	for range items {
		n++
	}
	return n
}

// countBounded is clean: the condition clause bounds the loop.
func countBounded(items []int) int {
	n := 0
	for i := 0; i < len(items); i++ {
		n++
	}
	return n
}

// closurePoll shows a poll hiding inside a nested function literal: it
// does not satisfy the rule, because nothing guarantees the closure runs.
func closurePoll(g *iter.Guard, next func() (int, bool)) {
	for { // want `unbounded loop does not poll the abort guard`
		check := func() error { return g.Check() }
		_ = check
		if _, ok := next(); !ok {
			return
		}
	}
}
