// Package iter is a fixture double for pyro's iterator package: the Guard
// type the abortpoll analyzer recognizes by name and import-path suffix.
package iter

// Guard is a strided abort-poll guard.
type Guard struct {
	poll func() error
}

// NewGuard returns a guard over poll.
func NewGuard(poll func() error) Guard {
	return Guard{poll: poll}
}

// Check polls the abort hook.
func (g *Guard) Check() error {
	if g.poll == nil {
		return nil
	}
	return g.poll()
}
