// Package freeclock uses wall-clock and map iteration outside the
// determinism scope: the analyzer must not fire here — the harness and
// cursor layers measure time legitimately.
package freeclock

import "time"

// Stamp returns the current time.
func Stamp() time.Time {
	return time.Now()
}

// Sum folds a map in iteration order; fine outside the scoped packages.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
