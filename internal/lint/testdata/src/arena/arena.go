// Package arena exercises the arenarelease analyzer. Each function is one
// self-contained case; `want` comments pin the expected diagnostics.
package arena

import "pyrofix/internal/storage"

// adoptLeak reconstructs the MRS adopt leak the PR 8 fault sweep caught
// dynamically: the only Release is inline, so the early return on pump
// failure (or a panic inside pump) leaks the arena's temp files.
func adoptLeak(d *storage.Disk, pump func() error) error {
	a := d.NewArena("segment") // want `arena Release is not deferred`
	if err := pump(); err != nil {
		return err // the arena is still live here
	}
	a.Release()
	return nil
}

// adoptFixed is the shape the analyzer accepts — the PR 8 fix: release in
// a defer, guarded by an ownership flag because the happy path hands the
// arena off.
func adoptFixed(d *storage.Disk, pump func() error, handoff func(*storage.SpillArena)) error {
	a := d.NewArena("segment")
	owned := true
	defer func() {
		if owned {
			a.Release()
		}
	}()
	if err := pump(); err != nil {
		return err
	}
	owned = false
	handoff(a)
	return nil
}

// inlineOnly releases on the straight-line path only: still flagged,
// because any panic between creation and Release leaks.
func inlineOnly(d *storage.Disk) {
	a := d.NewArena("tmp") // want `arena Release is not deferred`
	a.Release()
}

// discarded throws the arena away at birth.
func discarded(d *storage.Disk) {
	d.NewArena("scratch") // want `result of Disk.NewArena is discarded`
}

// discardedBlank is the same leak spelled with the blank identifier.
func discardedBlank(d *storage.Disk) {
	_ = d.NewArenaTapped("scratch", nil) // want `result of Disk.NewArenaTapped is discarded`
}

// neverReleased binds the arena but neither releases nor hands it off.
func neverReleased(d *storage.Disk) {
	a := d.NewArena("scratch") // want `arena is never released and never escapes`
	if a == nil {
		return
	}
}

// deferredRelease is the canonical clean shape.
func deferredRelease(d *storage.Disk, fill func(*storage.SpillArena) error) error {
	a := d.NewArena("spill")
	defer a.Release()
	return fill(a)
}

// returned transfers ownership to the caller at birth.
func returned(d *storage.Disk) *storage.SpillArena {
	return d.NewArena("handoff")
}

// runSet owns an arena across calls; its lifecycle releases it.
type runSet struct {
	arena *storage.SpillArena
}

// stored transfers ownership into a structure.
func stored(d *storage.Disk, rs *runSet) {
	rs.arena = d.NewArenaTapped("spool", nil)
}

// passed transfers ownership to another function.
func passed(d *storage.Disk, adopt func(*storage.SpillArena)) {
	a := d.NewArena("adopted")
	adopt(a)
}

// flatRunLeak mirrors the flat-run spill writer: one arena backs both the
// payload tuple file and the fixed-width entry file, and both writers'
// Closes are fallible (a final partial page still has to flush).
// Releasing inline after both closes leaks both run files when either
// flush fails.
func flatRunLeak(d *storage.Disk, closePayload, closeEntries func() error) error {
	a := d.NewArenaTapped("flat-run", nil) // want `arena Release is not deferred`
	if err := closePayload(); err != nil {
		return err
	}
	if err := closeEntries(); err != nil {
		return err // payload AND entry files stay on disk
	}
	a.Release()
	return nil
}

// flatRunFixed is the accepted shape of the same writer: the deferred,
// flag-guarded Release covers every early return across both files, and
// ownership moves to the run set only once both closes succeed.
func flatRunFixed(d *storage.Disk, closePayload, closeEntries func() error, adopt func(*storage.SpillArena)) error {
	a := d.NewArenaTapped("flat-run", nil)
	owned := true
	defer func() {
		if owned {
			a.Release()
		}
	}()
	if err := closePayload(); err != nil {
		return err
	}
	if err := closeEntries(); err != nil {
		return err
	}
	owned = false
	adopt(a)
	return nil
}
