// Package nolintfix exercises the pyro:nolint suppression mechanism: a
// justified suppression moves the finding to Result.Suppressed (and still
// counts toward the suppression budget), a nolint on a clean line is
// flagged as stale, and a nolint naming an unknown analyzer is invalid.
package nolintfix

import "fmt"

// suppressed carries a justified suppression.
func suppressed(err error) error {
	//pyro:nolint:errwrap(fixture: demonstrating suppression)
	return fmt.Errorf("sealed: %v", err)
}

// unsuppressed is the same violation without the annotation.
func unsuppressed(err error) error {
	return fmt.Errorf("sealed: %v", err)
}

// stale suppresses a line with no finding: the driver flags the
// annotation itself.
func stale(err error) error {
	//pyro:nolint:errwrap(fixture: nothing to suppress here)
	return fmt.Errorf("sealed: %w", err)
}

// unknownAnalyzer names an analyzer that does not exist.
func unknownAnalyzer(err error) error {
	//pyro:nolint:nosuchcheck(fixture: unknown analyzer)
	return fmt.Errorf("sealed: %w", err)
}
