// Package badannot carries malformed pyro annotations: the loader turns
// each into an "annotation" diagnostic so a typo fails the gate instead
// of leaving the annotation silently inert.
package badannot

// emptyReason omits the mandatory reason.
func emptyReason() {
	//pyro:bounded()
	for i := 0; i < 3; i++ {
		_ = i
	}
}

// unknownKind is not a recognized annotation kind.
func unknownKind() {
	//pyro:fearless(the loop is fine)
	for i := 0; i < 3; i++ {
		_ = i
	}
}

// missingAnalyzer omits the analyzer name from a nolint.
func missingAnalyzer() {
	//pyro:nolint:(some reason)
	for i := 0; i < 3; i++ {
		_ = i
	}
}
