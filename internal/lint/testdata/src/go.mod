module pyrofix

go 1.24
