package lint

import (
	"strings"
	"testing"
)

// TestMalformedAnnotations loads a fixture whose pyro annotations are all
// broken — empty reason, unknown kind, nolint without an analyzer — and
// checks each surfaces as an invalid-annotation diagnostic instead of
// being silently inert.
func TestMalformedAnnotations(t *testing.T) {
	pkgs := loadFixture(t, "./badannot")
	res, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 0 {
		t.Errorf("unexpected analyzer diagnostics: %v", res.Diagnostics)
	}
	wantInvalid := []string{
		"requires a non-empty reason",
		`unknown pyro annotation kind "fearless"`,
		"must name an analyzer",
	}
	if got, want := len(res.Invalid), len(wantInvalid); got != want {
		t.Fatalf("invalid annotations: got %d, want %d: %v", got, want, res.Invalid)
	}
	for _, substr := range wantInvalid {
		found := false
		for _, d := range res.Invalid {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no invalid-annotation diagnostic containing %q in %v", substr, res.Invalid)
		}
	}
	if !res.Failed() {
		t.Error("malformed annotations must fail the gate")
	}
}

// TestParseAnnotationBody pins the annotation grammar.
func TestParseAnnotationBody(t *testing.T) {
	cases := []struct {
		body     string
		kind     string
		analyzer string
		reason   string
		wantErr  string
	}{
		{body: "bounded(heap sift is O(log n))", kind: "bounded", reason: "heap sift is O(log n)"},
		{body: "unordered(drain only)", kind: "unordered", reason: "drain only"},
		{body: "nolint:errwrap(justified)", kind: "nolint", analyzer: "errwrap", reason: "justified"},
		{body: "bounded()", wantErr: "non-empty reason"},
		{body: "bounded( )", wantErr: "non-empty reason"},
		{body: "bounded", wantErr: "malformed"},
		{body: "nolint:(why)", wantErr: "must name an analyzer"},
		{body: "mystery(why)", wantErr: "unknown pyro annotation kind"},
	}
	for _, tc := range cases {
		ann, err := parseAnnotationBody(tc.body)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseAnnotationBody(%q): err %v, want containing %q", tc.body, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseAnnotationBody(%q): %v", tc.body, err)
			continue
		}
		if ann.Kind != tc.kind || ann.Analyzer != tc.analyzer || ann.Reason != tc.reason {
			t.Errorf("parseAnnotationBody(%q) = {%q %q %q}, want {%q %q %q}",
				tc.body, ann.Kind, ann.Analyzer, ann.Reason, tc.kind, tc.analyzer, tc.reason)
		}
	}
}
