package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// A Result is the outcome of running a set of analyzers over a set of
// packages.
type Result struct {
	// Diagnostics are the surviving findings, sorted by position. A clean
	// run has none.
	Diagnostics []Diagnostic
	// Suppressed are findings removed by a matching pyro:nolint
	// annotation. They are kept visible so the suppression count can be
	// audited: the repo-wide meta-test pins it at zero.
	Suppressed []Diagnostic
	// Nolints are all pyro:nolint annotations seen, whether or not they
	// matched a finding. The zero-suppression gate counts these, so a
	// stale nolint cannot hide in a file whose finding was since fixed.
	Nolints []*Annotation
	// Invalid are malformed or stale annotations, reported as
	// diagnostics under the "annotation" analyzer name.
	Invalid []Diagnostic
}

// Failed reports whether the run should fail a gate: any surviving
// diagnostic or invalid annotation.
func (r *Result) Failed() bool {
	return len(r.Diagnostics) > 0 || len(r.Invalid) > 0
}

// Run applies every analyzer to every package, resolves pyro:nolint
// suppressions, and validates annotations: nolint must name a known
// analyzer and match a finding, and bounded/unordered annotations must
// have been consumed by their analyzer (when it ran) or they are stale.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	res := &Result{}
	var raw []Diagnostic
	for _, pkg := range pkgs {
		res.Invalid = append(res.Invalid, pkg.badAnnots...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			name := a.Name
			pass.Reportf = func(pos token.Pos, format string, args ...any) {
				raw = append(raw, Diagnostic{
					Analyzer: name,
					Position: pkg.Fset.Position(pos),
					Message:  fmt.Sprintf(format, args...),
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	// Resolve suppressions: a nolint annotation for the diagnostic's
	// analyzer on the diagnostic's line (or the line above) removes it.
	for _, d := range raw {
		if ann := matchNolint(pkgs, d); ann != nil {
			ann.used = true
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Diagnostics = append(res.Diagnostics, d)
	}

	// Annotation hygiene: count every nolint, flag unknown analyzer names
	// and stale bounded/unordered annotations nothing consumed.
	for _, pkg := range pkgs {
		for _, ann := range pkg.annotations {
			switch ann.Kind {
			case "nolint":
				res.Nolints = append(res.Nolints, ann)
				if !known[ann.Analyzer] {
					res.Invalid = append(res.Invalid, annotationDiag(pkg, ann,
						"pyro:nolint names unknown analyzer %q", ann.Analyzer))
				} else if !ann.used {
					res.Invalid = append(res.Invalid, annotationDiag(pkg, ann,
						"stale pyro:nolint:%s: no %s finding on this line — delete it", ann.Analyzer, ann.Analyzer))
				}
			case "bounded":
				if known["abortpoll"] && !ann.used {
					res.Invalid = append(res.Invalid, annotationDiag(pkg, ann,
						"stale pyro:bounded: not attached to an unbounded loop — delete it"))
				}
			case "unordered":
				if known["determinism"] && !ann.used {
					res.Invalid = append(res.Invalid, annotationDiag(pkg, ann,
						"stale pyro:unordered: not attached to a map range in a determinism-scoped package — delete it"))
				}
			}
		}
	}

	sortDiags(res.Diagnostics)
	sortDiags(res.Suppressed)
	sortDiags(res.Invalid)
	return res, nil
}

func matchNolint(pkgs []*Package, d Diagnostic) *Annotation {
	for _, pkg := range pkgs {
		for _, ann := range pkg.annotations {
			if ann.Kind != "nolint" || ann.Analyzer != d.Analyzer || ann.File != d.Position.Filename {
				continue
			}
			if ann.Line == d.Position.Line || ann.Line == d.Position.Line-1 {
				return ann
			}
		}
	}
	return nil
}

func annotationDiag(pkg *Package, ann *Annotation, format string, args ...any) Diagnostic {
	return Diagnostic{
		Analyzer: "annotation",
		Position: pkg.Fset.Position(ann.Pos),
		Message:  fmt.Sprintf(format, args...),
	}
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
