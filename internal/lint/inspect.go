package lint

import (
	"go/ast"
	"go/types"
)

// walkStack traverses the tree rooted at root, invoking fn with each node
// and the stack of its ancestors (outermost first, not including n). If fn
// returns false the node's children are skipped.
func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if !descend {
			// ast.Inspect still expects balanced push/pop only when we
			// descend; returning false skips both children and the nil
			// pop call for this node.
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeObject resolves the object a call expression invokes: the method
// or function named by a selector, or the function named by a bare
// identifier. Returns nil for indirect calls through non-identifiers.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.Ident:
		return info.Uses[fun]
	}
	return nil
}

// methodCall reports whether call invokes a method (or invocable field)
// with one of the given names via a selector, returning the receiver
// expression's type.
func methodCall(info *types.Info, call *ast.CallExpr, names ...string) (recv types.Type, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	match := false
	for _, n := range names {
		if sel.Sel.Name == n {
			match = true
			break
		}
	}
	if !match {
		return nil, "", false
	}
	tv, found := info.Types[sel.X]
	if !found {
		// Not an expression receiver (package-qualified call).
		return nil, "", false
	}
	return tv.Type, sel.Sel.Name, true
}

// returnsOnlyError reports whether the call's callee has the canonical
// cleanup signature `func(...) error` — exactly one result, of type error.
func returnsOnlyError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	if results.Len() != 1 {
		return false
	}
	return isErrorType(results.At(0).Type())
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is (or implements) the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface)
}

// hasAncestor reports whether any node in stack satisfies pred.
func hasAncestor(stack []ast.Node, pred func(ast.Node) bool) bool {
	for _, n := range stack {
		if pred(n) {
			return true
		}
	}
	return false
}
