package lint

import (
	"go/ast"
	"go/types"
)

// ArenaRelease checks that every spill arena created with Disk.NewArena /
// Disk.NewArenaTapped is either released in a defer or has its ownership
// transferred (returned, stored in a struct, passed to another function).
//
// An arena whose only Release calls are inline is flagged even though some
// path releases it: a panic or early return between creation and the
// inline Release leaks the arena's temp files — exactly the MRS adopt leak
// PR 8's fault sweep caught dynamically. The fix shape the analyzer
// accepts is the one adopt now uses: release in a defer, guarded by an
// ownership flag if the happy path hands the arena off.
var ArenaRelease = &Analyzer{
	Name: "arenarelease",
	Doc: "spill arenas must be released in a defer or have ownership transferred; " +
		"inline-only Release leaks on panic and early-return paths",
	Run: runArenaRelease,
}

// arenaTracked records what the analyzer has learned about one local
// variable holding a freshly created arena.
type arenaTracked struct {
	obj      types.Object
	pos      ast.Node
	deferred bool // a.Release() reachable from a defer
	inline   bool // a.Release() on a non-defer path only
	escaped  bool // ownership transferred
}

func runArenaRelease(pass *Pass) error {
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkArenaUse(pass, info, fn.Body)
		}
	}
	return nil
}

// checkArenaUse analyzes one function body: finds arena creations bound to
// local variables and classifies every use of each such variable.
func checkArenaUse(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Pass 1: find creations. Creations assigned to locals are tracked;
	// creations immediately discarded are flagged; creations whose result
	// feeds directly into a larger expression (composite literal, call
	// argument, return, field assignment) transfer ownership at birth.
	var locals []*arenaTracked
	byObj := make(map[types.Object]*arenaTracked)

	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isArenaNew(info, call) {
			return true
		}
		parent := ast.Node(nil)
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
		}
		switch p := parent.(type) {
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s is discarded: the arena can never be released", arenaNewName(call))
		case *ast.AssignStmt:
			// Find which LHS this call feeds (parallel assignment).
			for i, rhs := range p.Rhs {
				if rhs != call || i >= len(p.Lhs) {
					continue
				}
				switch lhs := p.Lhs[i].(type) {
				case *ast.Ident:
					if lhs.Name == "_" {
						pass.Reportf(call.Pos(), "result of %s is discarded: the arena can never be released", arenaNewName(call))
						break
					}
					obj := info.Defs[lhs]
					if obj == nil {
						obj = info.Uses[lhs]
					}
					if obj == nil || !isLocalVar(obj, body) {
						// Assignment to a package-level variable:
						// ownership lives beyond this function.
						break
					}
					t := &arenaTracked{obj: obj, pos: call}
					locals = append(locals, t)
					byObj[obj] = t
				default:
					// s.arena = d.NewArenaTapped(...) — ownership stored
					// in a structure whose lifecycle owns the release.
				}
			}
		default:
			// Composite literal value, call argument, return value:
			// ownership transfers at birth.
		}
		return true
	})

	if len(locals) == 0 {
		return
	}

	// Pass 2: classify every use of each tracked variable.
	walkStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if t := byObj[info.Uses[id]]; t != nil {
			classifyArenaUse(t, id, stack)
		}
		return true
	})

	for _, t := range locals {
		if t.deferred || t.escaped {
			continue
		}
		if t.inline {
			pass.Reportf(t.pos.Pos(), "arena Release is not deferred: a panic or early return before the inline Release leaks the arena's temp files (use `defer a.Release()`, guarded by an ownership flag if the arena is handed off)")
		} else {
			pass.Reportf(t.pos.Pos(), "arena is never released and never escapes this function")
		}
	}
}

// classifyArenaUse inspects one use of a tracked arena variable given its
// ancestor stack and updates the tracking flags.
func classifyArenaUse(t *arenaTracked, id *ast.Ident, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != ast.Expr(id) {
			return
		}
		// a.Method(...) or a.Method as a value.
		isCall := false
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == ast.Expr(p) {
				isCall = true
			}
		}
		if !isCall {
			// Method value escapes with the receiver inside it.
			t.escaped = true
			return
		}
		if p.Sel.Name != "Release" {
			return // other methods on the arena neither release nor escape
		}
		if hasAncestor(stack, func(n ast.Node) bool { _, ok := n.(*ast.DeferStmt); return ok }) {
			t.deferred = true
		} else {
			t.inline = true
		}
	case *ast.CallExpr:
		// Arena passed as an argument: ownership transferred.
		if p.Fun != ast.Expr(id) {
			t.escaped = true
		}
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.SendStmt, *ast.UnaryExpr:
		t.escaped = true
	case *ast.KeyValueExpr:
		if p.Value == ast.Expr(id) {
			t.escaped = true
		}
	case *ast.AssignStmt:
		for _, rhs := range p.Rhs {
			if rhs == ast.Expr(id) {
				// Aliased or stored somewhere else; assume the new owner
				// releases it.
				t.escaped = true
			}
		}
	}
}

// isArenaNew reports whether call invokes storage.Disk.NewArena or
// NewArenaTapped (matched by method name plus defining package and
// receiver type, so the analyzer works against both the real storage
// package and test fixtures).
func isArenaNew(info *types.Info, call *ast.CallExpr) bool {
	recv, _, ok := methodCall(info, call, "NewArena", "NewArenaTapped")
	if !ok {
		return false
	}
	return namedFrom(recv, "internal/storage", "Disk")
}

func arenaNewName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return "Disk." + sel.Sel.Name
	}
	return "Disk.NewArena"
}

// isLocalVar reports whether obj is a variable declared inside body.
func isLocalVar(obj types.Object, body *ast.BlockStmt) bool {
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}
