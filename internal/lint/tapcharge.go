package lint

import (
	"go/ast"
	"strings"
)

// TapCharge enforces the I/O-accounting boundary: every page transfer in
// the engine must be charged to the storage ledger (and, per query, to its
// storage.Tap), which is only possible if the transfer goes through
// internal/storage. The engine's "disk" is a simulated block device — the
// paper's experiments compare plans by counted block transfers — so any
// direct use of the os file API inside an engine package is I/O the
// ledger, the per-query taps, the bench-gate counters and the fault plane
// all miss.
//
// Scope: every package in the module except the designated boundary and
// tooling packages — internal/storage (and its subpackages) is the I/O
// layer itself; internal/harness, internal/lint, cmd/* and examples/* are
// host-side tooling that legitimately reads and writes real files.
var TapCharge = &Analyzer{
	Name: "tapcharge",
	Doc: "engine packages must not perform direct os file I/O: page transfers " +
		"route through internal/storage so the IOStats ledger and per-query Taps are charged",
	Run: runTapCharge,
}

// osFileFuncs are the os package entry points that open, create or touch
// files directly.
var osFileFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "NewFile": true, "ReadDir": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "Link": true,
	"Symlink": true, "Pipe": true,
}

// osFileMethods are the *os.File methods that move bytes.
var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true,
	"Write": true, "WriteAt": true, "WriteString": true, "WriteTo": true,
	"Seek": true,
}

func runTapCharge(pass *Pass) error {
	if !tapChargeScoped(pass.Path()) {
		return nil
	}
	info := pass.TypesInfo()
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := calleeObject(info, call); obj != nil && pkgPathOf(obj) == "os" && osFileFuncs[obj.Name()] {
				pass.Reportf(call.Pos(), "direct file I/O (os.%s) in an engine package: route page transfers through internal/storage so the IOStats ledger and per-query Taps are charged", obj.Name())
				return true
			}
			if recv, name, ok := methodCall(info, call, keys(osFileMethods)...); ok {
				if namedFrom(recv, "os", "File") {
					pass.Reportf(call.Pos(), "direct os.File.%s in an engine package: route page transfers through internal/storage so the IOStats ledger and per-query Taps are charged", name)
				}
			}
			return true
		})
	}
	return nil
}

// tapChargeScoped reports whether pkgPath is an engine package bound by
// the no-direct-I/O rule.
func tapChargeScoped(pkgPath string) bool {
	for _, exempt := range []string{
		"internal/storage", "internal/harness", "internal/lint",
	} {
		if pathWithin(pkgPath, exempt) || strings.Contains(pkgPath, "/"+exempt+"/") {
			return false
		}
	}
	if strings.Contains(pkgPath, "/cmd/") || strings.HasPrefix(pkgPath, "cmd/") {
		return false
	}
	if strings.Contains(pkgPath, "/examples/") || strings.HasPrefix(pkgPath, "examples/") {
		return false
	}
	return true
}

// keys returns the map's keys in unspecified order (only used to pass a
// name set to methodCall, which treats it as a set).
func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
