package lint

import "testing"

// TestDeterminism drives the analyzer over a fixture at the scoped suffix
// internal/cost: time.Now/time.Since, a math/rand import and a bare map
// range are flagged; the annotated collect-sort-range shape passes.
func TestDeterminism(t *testing.T) {
	res := runFixture(t, []*Analyzer{Determinism}, "./internal/cost")
	if want := 4; len(res.Diagnostics) != want {
		t.Errorf("got %d diagnostics, want %d", len(res.Diagnostics), want)
	}
}

// TestDeterminismScope checks wall-clock and map ranges outside the
// scoped packages stay legal: the harness and cursor layers measure time.
func TestDeterminismScope(t *testing.T) {
	res := runFixture(t, []*Analyzer{Determinism}, "./freeclock")
	for _, d := range res.Diagnostics {
		t.Errorf("determinism fired outside its scope: %s", d)
	}
}
