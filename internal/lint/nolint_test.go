package lint

import (
	"strings"
	"testing"
)

// TestNolintSuppression exercises the suppression mechanism end to end:
// a justified //pyro:nolint:errwrap(reason) moves the finding from
// Diagnostics to Suppressed while still counting in Nolints (the budget
// the zero-suppression gate enforces), a nolint on a clean line is stale,
// and a nolint naming an unknown analyzer is invalid.
func TestNolintSuppression(t *testing.T) {
	pkgs := loadFixture(t, "./nolintfix")
	res, err := Run(pkgs, []*Analyzer{ErrWrap})
	if err != nil {
		t.Fatal(err)
	}

	if got, want := len(res.Suppressed), 1; got != want {
		t.Errorf("suppressed: got %d, want %d: %v", got, want, res.Suppressed)
	}
	if got, want := len(res.Diagnostics), 1; got != want {
		t.Errorf("surviving diagnostics: got %d, want %d: %v", got, want, res.Diagnostics)
	}
	if got, want := len(res.Nolints), 3; got != want {
		t.Errorf("nolint count: got %d, want %d", got, want)
	}
	if !res.Failed() {
		t.Error("run with a surviving diagnostic must fail the gate")
	}

	wantInvalid := []string{
		"stale pyro:nolint:errwrap",
		`unknown analyzer "nosuchcheck"`,
	}
	if got, want := len(res.Invalid), len(wantInvalid); got != want {
		t.Fatalf("invalid annotations: got %d, want %d: %v", got, want, res.Invalid)
	}
	for _, substr := range wantInvalid {
		found := false
		for _, d := range res.Invalid {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no invalid-annotation diagnostic containing %q in %v", substr, res.Invalid)
		}
	}
}
