package lint

import "testing"

// TestTapCharge drives the analyzer over a fixture at the engine suffix
// internal/exec: os.Create/os.ReadFile, os.File.Write and a flat-run
// entry spool via os.WriteFile are flagged; storage-routed spills and
// non-file os calls (os.Getenv) pass.
func TestTapCharge(t *testing.T) {
	res := runFixture(t, []*Analyzer{TapCharge}, "./internal/exec")
	if want := 4; len(res.Diagnostics) != want {
		t.Errorf("got %d diagnostics, want %d", len(res.Diagnostics), want)
	}
}

// TestTapChargeExemptsStorage checks the boundary package itself may use
// the os file API: it is the layer that charges the ledger.
func TestTapChargeExemptsStorage(t *testing.T) {
	res := runFixture(t, []*Analyzer{TapCharge}, "./internal/storage")
	for _, d := range res.Diagnostics {
		t.Errorf("tapcharge fired inside the exempt storage package: %s", d)
	}
}
