package lint

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestRepoClean is the repo-wide gate in test form: the whole module must
// be clean under the full analyzer suite with zero pyro:nolint
// suppressions — the same bar `make lint-pyro` (-max-suppressions 0)
// enforces. Adding a suppression anywhere in the repo fails this test
// until the underlying violation is fixed, which pins the suppression
// count at zero without relying on CI configuration.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load and type-check is not short")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate this file to find the repo root")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(thisFile)))

	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading the repo: %v", err)
	}
	res, err := Run(pkgs, All())
	if err != nil {
		t.Fatalf("running the suite: %v", err)
	}
	for _, d := range res.Invalid {
		t.Errorf("invalid annotation: %s", d)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("violation: %s", d)
	}
	for _, d := range res.Suppressed {
		t.Errorf("suppressed violation (the repo carries zero suppressions): %s", d)
	}
	for _, ann := range res.Nolints {
		t.Errorf("%s:%d: pyro:nolint suppression present (budget is zero): //pyro:nolint:%s(%s)",
			ann.File, ann.Line, ann.Analyzer, ann.Reason)
	}
}
