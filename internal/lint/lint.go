// Package lint is pyro's custom static-analysis suite: a set of analyzers
// that prove the engine's cross-cutting invariants at compile time — every
// spill arena released on every path, every unbounded tuple loop polling
// its abort guard, error wrapping that keeps sentinel errors reachable,
// page I/O routed through the ledger-charging storage layer, and no
// nondeterminism feeding the bench-gated counters or plan choice.
//
// The contracts encoded here are exactly the ones the Go type checker
// cannot see and that previously rested on reviewer vigilance: the PR 8
// fault sweep caught the MRS adopt arena leak only *dynamically*, after
// the code shipped. Each analyzer turns one such contract into a versioned,
// tested check that every future subsystem inherits automatically.
//
// The suite is deliberately dependency-free: instead of
// golang.org/x/tools/go/analysis it carries a small driver of the same
// shape (Analyzer / Pass / Report) built on the standard library — package
// loading shells out to `go list -export` and type-checks from gc export
// data, so `make lint-pyro` needs nothing beyond the Go toolchain.
//
// Three comment annotations are recognized, all requiring a non-empty
// reason:
//
//	//pyro:bounded(reason)          — abortpoll: this loop terminates in
//	                                  bounded work without polling
//	//pyro:unordered(reason)        — determinism: this map iteration does
//	                                  not feed counters or plan choice
//	//pyro:nolint:analyzer(reason)  — suppress one analyzer on one line;
//	                                  the repo-wide meta-test pins the
//	                                  total suppression count at zero
//
// An annotation may sit on the offending line or on the line directly
// above it. Malformed annotations (no reason, unknown analyzer) are
// themselves diagnostics, and bounded/unordered annotations that do not
// attach to a matching statement are reported as stale.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. It mirrors the shape of
// golang.org/x/tools/go/analysis.Analyzer so the checks could migrate to
// the upstream driver without rewriting their Run functions.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pyro:nolint:<name>(reason) annotations. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant and why the
	// engine needs it.
	Doc string
	// Run inspects one package and reports diagnostics via pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Reportf records a diagnostic at pos. Suppression via pyro:nolint is
	// applied by the driver, not here.
	Reportf func(pos token.Pos, format string, args ...any)
}

// Fset returns the file set positions in this pass resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed syntax trees.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypesInfo returns the package's type-checking results.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Path returns the package's import path.
func (p *Pass) Path() string { return p.Pkg.Path }

// Annotation returns the annotation of the given kind attached to pos —
// on the same source line or the line directly above — and marks it
// consumed so the driver can flag stale annotations that attach to
// nothing. The second result reports whether one was found.
func (p *Pass) Annotation(pos token.Pos, kind string) (*Annotation, bool) {
	position := p.Pkg.Fset.Position(pos)
	for _, a := range p.Pkg.annotations {
		if a.Kind != kind || a.File != position.Filename {
			continue
		}
		if a.Line == position.Line || a.Line == position.Line-1 {
			a.used = true
			return a, true
		}
	}
	return nil, false
}

// A Diagnostic is one analyzer finding at one source position.
type Diagnostic struct {
	Analyzer string
	Position token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// An Annotation is one parsed //pyro:... comment.
type Annotation struct {
	Kind     string // "bounded", "unordered" or "nolint"
	Analyzer string // target analyzer, for nolint only
	Reason   string
	File     string
	Line     int
	Pos      token.Pos

	used bool // consumed by an analyzer or matched to a diagnostic
}

// annotationPrefix introduces every recognized annotation comment. Like
// go:build constraints the marker must follow the slashes immediately.
const annotationPrefix = "//pyro:"

// parseAnnotations extracts pyro annotations from a file's comments.
// Malformed annotations are returned as diagnostics so they fail the lint
// run instead of being silently inert.
func parseAnnotations(fset *token.FileSet, file *ast.File) (anns []*Annotation, bad []Diagnostic) {
	for _, group := range file.Comments {
		for _, c := range group.List {
			text := c.Text
			if !strings.HasPrefix(text, annotationPrefix) {
				continue
			}
			body := strings.TrimPrefix(text, annotationPrefix)
			position := fset.Position(c.Pos())
			ann, err := parseAnnotationBody(body)
			if err != nil {
				bad = append(bad, Diagnostic{
					Analyzer: "annotation",
					Position: position,
					Message:  err.Error(),
				})
				continue
			}
			ann.File = position.Filename
			ann.Line = position.Line
			ann.Pos = c.Pos()
			anns = append(anns, ann)
		}
	}
	return anns, bad
}

// parseAnnotationBody parses the text after the //pyro: marker:
// "bounded(reason)", "unordered(reason)" or "nolint:analyzer(reason)".
func parseAnnotationBody(body string) (*Annotation, error) {
	open := strings.IndexByte(body, '(')
	if open < 0 || !strings.HasSuffix(body, ")") {
		return nil, fmt.Errorf("malformed pyro annotation %q: want //pyro:kind(reason)", annotationPrefix+body)
	}
	head, reason := body[:open], body[open+1:len(body)-1]
	if strings.TrimSpace(reason) == "" {
		return nil, fmt.Errorf("pyro annotation %q requires a non-empty reason", annotationPrefix+body)
	}
	ann := &Annotation{Reason: reason}
	switch {
	case head == "bounded", head == "unordered":
		ann.Kind = head
	case strings.HasPrefix(head, "nolint:"):
		ann.Kind = "nolint"
		ann.Analyzer = strings.TrimPrefix(head, "nolint:")
		if ann.Analyzer == "" {
			return nil, fmt.Errorf("pyro:nolint annotation must name an analyzer: //pyro:nolint:<analyzer>(reason)")
		}
	default:
		return nil, fmt.Errorf("unknown pyro annotation kind %q", head)
	}
	return ann, nil
}

// pathWithin reports whether pkgPath denotes the package named by the
// module-relative suffix (for example "internal/xsort"): either the path
// ends in "/"+suffix or — for fixture modules rooted at the package — is
// the suffix itself.
func pathWithin(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// pkgPathOf returns the import path of the package an object belongs to,
// or "" for builtins and objects in the universe scope.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// namedFrom reports whether t (after stripping pointers) is the named type
// name declared in the package identified by the module-relative suffix.
func namedFrom(t types.Type, pkgSuffix, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name {
		return false
	}
	return pathWithin(pkgPathOf(obj), pkgSuffix)
}
