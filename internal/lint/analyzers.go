package lint

// All returns the full pyro analyzer suite in deterministic (name) order.
// cmd/pyro-lint runs exactly this set, and the repo-wide meta-test
// (meta_test.go) asserts the whole module is clean under it with zero
// suppressions.
func All() []*Analyzer {
	return []*Analyzer{
		AbortPoll,
		ArenaRelease,
		Determinism,
		ErrWrap,
		TapCharge,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
