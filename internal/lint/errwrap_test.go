package lint

import "testing"

// TestErrWrap drives the analyzer over its fixture: %w wrapping versus a
// severed %v, and every discard shape for a `func() error` cleanup method
// (bare statement, blank assignment, bare defer, go statement) against
// the accepted handled/joined forms and the void-Release exemption.
func TestErrWrap(t *testing.T) {
	res := runFixture(t, []*Analyzer{ErrWrap}, "./errwrapfix")
	if want := 5; len(res.Diagnostics) != want {
		t.Errorf("got %d diagnostics, want %d", len(res.Diagnostics), want)
	}
}
