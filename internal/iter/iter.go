// Package iter defines the Volcano-style pull iterator contract shared by
// the execution engine and the external sort operators, plus the
// cancellation plumbing streaming execution threads through them: a Guard
// polls an abort function at a bounded stride so per-tuple loops deep
// inside a sort can honor a context cancellation or an early Close without
// paying a function call per tuple.
package iter

import (
	"errors"

	"pyro/internal/types"
)

// Iterator is a demand-driven tuple stream. The contract is:
//
//	Open  — acquire resources; must be called exactly once before Next.
//	Next  — return the next tuple; ok=false signals exhaustion (no error).
//	Close — release resources; safe to call once after Open, even mid-stream.
type Iterator interface {
	Open() error
	Next() (types.Tuple, bool, error)
	Close() error
}

// SliceIterator adapts an in-memory tuple slice to the Iterator contract.
// It is used by tests and by operators that buffer intermediate results.
type SliceIterator struct {
	Tuples []types.Tuple
	pos    int
}

// FromSlice returns an iterator over the given tuples.
func FromSlice(tuples []types.Tuple) *SliceIterator {
	return &SliceIterator{Tuples: tuples}
}

// Open resets the iterator to the first tuple.
func (s *SliceIterator) Open() error {
	s.pos = 0
	return nil
}

// Next returns the next buffered tuple.
func (s *SliceIterator) Next() (types.Tuple, bool, error) {
	if s.pos >= len(s.Tuples) {
		return nil, false, nil
	}
	t := s.Tuples[s.pos]
	s.pos++
	return t, true, nil
}

// Close is a no-op.
func (s *SliceIterator) Close() error { return nil }

// Drain opens it, pulls every tuple, closes it, and returns the tuples.
// Close is called on every path, including failed Opens, so operators can
// rely on it for resource cleanup. When both a pull and the subsequent
// Close fail, the errors are joined — a Close failure (a leaked resource, a
// poisoned spill arena) must not vanish behind the Next error that
// triggered the cleanup; when only one side fails that error is returned
// unwrapped.
func Drain(it Iterator) ([]types.Tuple, error) {
	if err := it.Open(); err != nil {
		return nil, closeAfter(it, err)
	}
	var out []types.Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			return nil, closeAfter(it, err)
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}

// closeAfter closes the iterator after err already failed the drain,
// joining the two errors when Close fails too. The common clean-Close case
// returns err unchanged (not re-wrapped), so callers comparing sentinel
// errors by identity keep working.
func closeAfter(it Iterator, err error) error {
	if cerr := it.Close(); cerr != nil {
		return errors.Join(err, cerr)
	}
	return err
}

// Guard polls an abort function at a bounded stride. Long-running
// per-tuple loops — an SRS consuming its whole input inside Open, an MRS
// segment collection, a run-reduction merge — call Check once per tuple;
// every stride-th call actually polls, so a context cancellation reaches
// the loop within a bounded amount of work at negligible per-tuple cost.
//
// A Guard with a nil poll function never aborts. The zero Guard is ready
// to use. Guards are not safe for concurrent use; concurrent workers each
// take their own Guard over the same (concurrency-safe) poll function.
type Guard struct {
	poll func() error
	n    uint32
}

// guardStride is how many Check calls one poll covers. Small enough that a
// cancellation lands promptly even in tuple-at-a-time loops, large enough
// that polling never shows up in a sort profile.
const guardStride = 256

// NewGuard returns a guard over poll (nil means never abort).
func NewGuard(poll func() error) Guard { return Guard{poll: poll} }

// Check returns poll's error on the first and every stride-th call, nil
// otherwise.
func (g *Guard) Check() error {
	if g.poll == nil {
		return nil
	}
	if g.n != 0 {
		g.n--
		return nil
	}
	g.n = guardStride - 1
	return g.poll()
}
