// Package iter defines the Volcano-style pull iterator contract shared by
// the execution engine and the external sort operators.
package iter

import "pyro/internal/types"

// Iterator is a demand-driven tuple stream. The contract is:
//
//	Open  — acquire resources; must be called exactly once before Next.
//	Next  — return the next tuple; ok=false signals exhaustion (no error).
//	Close — release resources; safe to call once after Open, even mid-stream.
type Iterator interface {
	Open() error
	Next() (types.Tuple, bool, error)
	Close() error
}

// SliceIterator adapts an in-memory tuple slice to the Iterator contract.
// It is used by tests and by operators that buffer intermediate results.
type SliceIterator struct {
	Tuples []types.Tuple
	pos    int
}

// FromSlice returns an iterator over the given tuples.
func FromSlice(tuples []types.Tuple) *SliceIterator {
	return &SliceIterator{Tuples: tuples}
}

// Open resets the iterator to the first tuple.
func (s *SliceIterator) Open() error {
	s.pos = 0
	return nil
}

// Next returns the next buffered tuple.
func (s *SliceIterator) Next() (types.Tuple, bool, error) {
	if s.pos >= len(s.Tuples) {
		return nil, false, nil
	}
	t := s.Tuples[s.pos]
	s.pos++
	return t, true, nil
}

// Close is a no-op.
func (s *SliceIterator) Close() error { return nil }

// Drain opens it, pulls every tuple, closes it, and returns the tuples.
// Close is called on every path, including failed Opens, so operators can
// rely on it for resource cleanup.
func Drain(it Iterator) ([]types.Tuple, error) {
	if err := it.Open(); err != nil {
		it.Close()
		return nil, err
	}
	var out []types.Tuple
	for {
		t, ok, err := it.Next()
		if err != nil {
			it.Close()
			return nil, err
		}
		if !ok {
			break
		}
		out = append(out, t)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	return out, nil
}
