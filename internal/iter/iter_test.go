package iter

import (
	"errors"
	"testing"

	"pyro/internal/types"
)

// faultIterator fails on demand at each contract point.
type faultIterator struct {
	openErr  error
	nextErr  error
	closeErr error
	tuples   []types.Tuple
	pos      int
	closed   int
}

func (f *faultIterator) Open() error { return f.openErr }

func (f *faultIterator) Next() (types.Tuple, bool, error) {
	if f.pos >= len(f.tuples) {
		return nil, false, f.nextErr
	}
	t := f.tuples[f.pos]
	f.pos++
	return t, true, nil
}

func (f *faultIterator) Close() error {
	f.closed++
	return f.closeErr
}

func TestDrainJoinsNextAndCloseErrors(t *testing.T) {
	nextErr := errors.New("next failed")
	closeErr := errors.New("close failed")
	it := &faultIterator{nextErr: nextErr, closeErr: closeErr,
		tuples: []types.Tuple{types.NewTuple(types.NewInt(1))}}
	_, err := Drain(it)
	if !errors.Is(err, nextErr) {
		t.Fatalf("Drain error %v does not wrap the Next error", err)
	}
	if !errors.Is(err, closeErr) {
		t.Fatalf("Drain error %v lost the Close error", err)
	}
	if it.closed != 1 {
		t.Fatalf("Close called %d times, want 1", it.closed)
	}
}

func TestDrainPreservesErrorIdentityOnCleanClose(t *testing.T) {
	nextErr := errors.New("next failed")
	it := &faultIterator{nextErr: nextErr}
	if _, err := Drain(it); err != nextErr {
		t.Fatalf("Drain returned %v, want the untouched Next error", err)
	}
	closeErr := errors.New("close failed")
	it2 := &faultIterator{closeErr: closeErr}
	if _, err := Drain(it2); err != closeErr {
		t.Fatalf("Drain returned %v, want the untouched Close error", err)
	}
}

func TestDrainJoinsOpenAndCloseErrors(t *testing.T) {
	openErr := errors.New("open failed")
	closeErr := errors.New("close failed")
	it := &faultIterator{openErr: openErr, closeErr: closeErr}
	_, err := Drain(it)
	if !errors.Is(err, openErr) || !errors.Is(err, closeErr) {
		t.Fatalf("Drain error %v should wrap both the Open and Close errors", err)
	}
}

func TestDrainHappyPath(t *testing.T) {
	in := []types.Tuple{types.NewTuple(types.NewInt(1)), types.NewTuple(types.NewInt(2))}
	out, err := Drain(FromSlice(in))
	if err != nil || len(out) != 2 {
		t.Fatalf("Drain = %d tuples, err %v", len(out), err)
	}
}

func TestGuardPollsAtStride(t *testing.T) {
	polls := 0
	var poisoned error
	g := NewGuard(func() error { polls++; return poisoned })
	// First call polls, the next stride-1 calls don't.
	for i := 0; i < guardStride; i++ {
		if err := g.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if polls != 1 {
		t.Fatalf("%d polls over one stride, want 1", polls)
	}
	// Poison the poll: the error must surface within one stride of checks.
	poisoned = errors.New("canceled")
	var got error
	for i := 0; i < guardStride; i++ {
		if got = g.Check(); got != nil {
			break
		}
	}
	if got != poisoned {
		t.Fatalf("guard returned %v, want the poll error within one stride", got)
	}
}

func TestGuardNilPollNeverAborts(t *testing.T) {
	var g Guard
	for i := 0; i < 3*guardStride; i++ {
		if err := g.Check(); err != nil {
			t.Fatalf("zero Guard aborted: %v", err)
		}
	}
}
