// Package catalog holds table and index metadata plus the statistics the
// optimizer's cost model consumes: row counts, per-column distinct counts,
// average widths, clustering orders and covering secondary indices.
//
// Tables are bulk-loaded: the loader sorts rows by the clustering order,
// writes the heap file, materialises every secondary index (key columns
// plus included columns, sorted by key), and gathers exact statistics in
// one pass. The workloads are generated, so exact distinct counts are cheap
// and sidestep estimation noise the paper does not study.
package catalog

import (
	"fmt"
	"sort"

	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// Stats carries optimizer statistics for one relation.
type Stats struct {
	NumRows  int64
	Distinct map[string]int64 // exact per-column distinct counts
	// KeyCols is a verified candidate key (the clustering order when the
	// loader found it unique), or nil. Exact, not estimated — the
	// optimizer derives functional dependencies from it, so soundness
	// matters (estimated distinct counts saturate at NumRows and would
	// fabricate false keys).
	KeyCols []string
}

// DistinctOn estimates D(e, s): the number of distinct values of the column
// set s, as the product of per-column distinct counts capped at the row
// count (attribute-independence and uniformity assumptions, as in §3.2 of
// the paper). Unknown columns contribute a conservative factor of NumRows.
func (st Stats) DistinctOn(attrs []string) int64 {
	if st.NumRows == 0 {
		return 0
	}
	d := int64(1)
	for _, a := range attrs {
		da, ok := st.Distinct[a]
		if !ok || da <= 0 {
			return st.NumRows
		}
		if d > st.NumRows/max64(da, 1) {
			return st.NumRows // would overflow past the cap anyway
		}
		d *= da
	}
	return min64(d, st.NumRows)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Index is a secondary index: rows sorted by the key order, storing the key
// columns plus any included columns (a covering index when the stored set
// contains every attribute a query needs, as in the paper's §1 footnote).
type Index struct {
	Name     string
	Table    *Table
	KeyOrder sortord.Order
	Included []string
	file     *storage.File
	schema   *types.Schema
}

// Schema returns the index's stored schema (key columns then includes).
func (ix *Index) Schema() *types.Schema { return ix.schema }

// File returns the materialised index file, sorted by KeyOrder.
func (ix *Index) File() *storage.File { return ix.file }

// StoredAttrs returns the set of attributes stored in the index.
func (ix *Index) StoredAttrs() sortord.AttrSet { return ix.schema.AttrSet() }

// Covers reports whether the index stores every attribute in need.
func (ix *Index) Covers(need sortord.AttrSet) bool {
	return ix.StoredAttrs().ContainsAll(need)
}

// NumBlocks returns the index size in pages.
func (ix *Index) NumBlocks() int64 { return int64(ix.file.NumPages()) }

// Table is a base relation: schema, heap file, clustering order, statistics
// and secondary indices.
type Table struct {
	Name         string
	Schema       *types.Schema
	ClusterOrder sortord.Order // physical sort order of the heap file; may be ε
	Stats        Stats
	Indices      []*Index
	file         *storage.File
	// pageFirstKeys holds, per heap page, the clustering-key values of the
	// page's first tuple (key columns only, in clustering order) — the
	// "inner nodes" of the clustering index, built free of charge at load
	// time (real B-tree inner nodes are tiny and stay cached). Enables
	// clustered key lookups (deferred fetch, §7 of the paper).
	pageFirstKeys []types.Tuple
}

// compareKeyTuples compares two plain key tuples positionally.
func compareKeyTuples(a, b types.Tuple) int {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c
		}
	}
	return 0
}

// LookupPage returns the first heap page that may contain the given
// clustering key: the last page whose first key is strictly below key
// (duplicate keys may begin mid-page and spill onto later pages, so the
// scan must start here and move forward). The key tuple lists the
// clustering columns in clustering order. -1 when no directory exists.
func (t *Table) LookupPage(key types.Tuple) int {
	if len(t.pageFirstKeys) == 0 {
		return -1
	}
	lo, hi := 0, len(t.pageFirstKeys)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if compareKeyTuples(t.pageFirstKeys[mid], key) < 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// HasPageDirectory reports whether clustered lookups are possible.
func (t *Table) HasPageDirectory() bool { return len(t.pageFirstKeys) > 0 }

// File returns the heap file.
func (t *Table) File() *storage.File { return t.file }

// NumBlocks returns the heap size in pages (B(R) in the paper).
func (t *Table) NumBlocks() int64 { return int64(t.file.NumPages()) }

// Index returns the named index, or nil.
func (t *Table) Index(name string) *Index {
	for _, ix := range t.Indices {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}

// Catalog is the set of tables on one simulated disk.
type Catalog struct {
	disk   *storage.Disk
	tables map[string]*Table
}

// New returns an empty catalog over the disk.
func New(disk *storage.Disk) *Catalog {
	return &Catalog{disk: disk, tables: make(map[string]*Table)}
}

// Disk returns the underlying simulated disk.
func (c *Catalog) Disk() *storage.Disk { return c.disk }

// Table returns the named table or an error.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// TableNames lists tables in deterministic order.
func (c *Catalog) TableNames() []string {
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CreateTable bulk-loads a table: rows are sorted by clusterOrder (if any),
// written to a heap file, and exact statistics collected. Loading I/O is
// not charged to the disk ledger — experiments measure query I/O, not load.
func (c *Catalog) CreateTable(name string, schema *types.Schema, clusterOrder sortord.Order, rows []types.Tuple) (*Table, error) {
	if _, exists := c.tables[name]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if !schema.HasAll(clusterOrder.Attrs()) {
		return nil, fmt.Errorf("catalog: cluster order %v not in schema of %q", clusterOrder, name)
	}
	sorted := append([]types.Tuple(nil), rows...)
	if !clusterOrder.IsEmpty() {
		ks, err := types.MakeKeySpec(schema, clusterOrder)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(sorted, func(i, j int) bool { return ks.Compare(sorted[i], sorted[j]) < 0 })
	}
	file := c.disk.Create("table."+name, storage.KindData)
	w := storage.NewTupleWriter(file)
	for _, tup := range sorted {
		if err := w.Write(tup); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	// Build the page directory for clustered tables (key columns only).
	var pageKeys []types.Tuple
	if !clusterOrder.IsEmpty() {
		ords := make([]int, len(clusterOrder))
		for i, a := range clusterOrder {
			ords[i] = schema.MustOrdinal(a)
		}
		for _, start := range w.PageStarts() {
			key := make(types.Tuple, len(ords))
			for i, o := range ords {
				key[i] = sorted[start][o]
			}
			pageKeys = append(pageKeys, key)
		}
	}
	t := &Table{
		Name:          name,
		Schema:        schema,
		ClusterOrder:  clusterOrder.Clone(),
		Stats:         gatherStats(schema, sorted),
		file:          file,
		pageFirstKeys: pageKeys,
	}
	if !clusterOrder.IsEmpty() && isUniqueOn(schema, sorted, clusterOrder) {
		t.Stats.KeyCols = append([]string(nil), clusterOrder...)
	}
	c.tables[name] = t
	// Loading must not pollute query measurements.
	c.disk.ResetStats()
	return t, nil
}

// CreateIndex materialises a secondary index on the table: key columns in
// keyOrder, plus included columns, sorted by key. Rows are read back from
// the table's heap (charges no I/O: see CreateTable).
func (c *Catalog) CreateIndex(name string, table *Table, keyOrder sortord.Order, included []string) (*Index, error) {
	if table.Index(name) != nil {
		return nil, fmt.Errorf("catalog: index %q already exists on %q", name, table.Name)
	}
	if !table.Schema.HasAll(keyOrder.Attrs()) {
		return nil, fmt.Errorf("catalog: index key %v not in schema of %q", keyOrder, table.Name)
	}
	cols := append([]string(nil), keyOrder...)
	seen := keyOrder.Attrs()
	for _, inc := range included {
		if !table.Schema.Has(inc) {
			return nil, fmt.Errorf("catalog: included column %q not in schema of %q", inc, table.Name)
		}
		if !seen.Contains(inc) {
			seen.Add(inc)
			cols = append(cols, inc)
		}
	}
	ixSchema := table.Schema.Project(cols)
	rows, err := storage.ReadAll(table.file)
	if err != nil {
		return nil, err
	}
	ords := make([]int, len(cols))
	for i, col := range cols {
		ords[i] = table.Schema.MustOrdinal(col)
	}
	proj := make([]types.Tuple, len(rows))
	for i, r := range rows {
		p := make(types.Tuple, len(ords))
		for j, o := range ords {
			p[j] = r[o]
		}
		proj[i] = p
	}
	ks := types.MustKeySpec(ixSchema, keyOrder)
	sort.SliceStable(proj, func(i, j int) bool { return ks.Compare(proj[i], proj[j]) < 0 })
	file := c.disk.Create(fmt.Sprintf("index.%s.%s", table.Name, name), storage.KindData)
	if err := storage.WriteAll(file, proj); err != nil {
		return nil, err
	}
	ix := &Index{
		Name:     name,
		Table:    table,
		KeyOrder: keyOrder.Clone(),
		Included: append([]string(nil), included...),
		file:     file,
		schema:   ixSchema,
	}
	table.Indices = append(table.Indices, ix)
	c.disk.ResetStats()
	return ix, nil
}

// isUniqueOn reports whether the column set of order o is duplicate-free in
// rows (rows must already be sorted by o, as after clustering).
func isUniqueOn(schema *types.Schema, rows []types.Tuple, o sortord.Order) bool {
	ks, err := types.MakeKeySpec(schema, o)
	if err != nil {
		return false
	}
	for i := 1; i < len(rows); i++ {
		if ks.Compare(rows[i-1], rows[i]) == 0 {
			return false
		}
	}
	return true
}

func gatherStats(schema *types.Schema, rows []types.Tuple) Stats {
	st := Stats{NumRows: int64(len(rows)), Distinct: make(map[string]int64, schema.Len())}
	for i := 0; i < schema.Len(); i++ {
		seen := make(map[string]struct{})
		var buf []byte
		for _, r := range rows {
			buf = r[i : i+1].Encode(buf[:0])
			seen[string(buf)] = struct{}{}
		}
		st.Distinct[schema.Col(i).Name] = int64(len(seen))
	}
	return st
}
