package catalog

import (
	"fmt"
	"testing"

	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

func testSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindString},
	)
}

func testRows(n int) []types.Tuple {
	rows := make([]types.Tuple, n)
	for i := 0; i < n; i++ {
		rows[i] = types.NewTuple(
			types.NewInt(int64(n-i)),                 // descending so clustering must re-sort
			types.NewInt(int64(i%10)),                // 10 distinct values
			types.NewString(fmt.Sprintf("s%d", i%3)), // 3 distinct values
		)
	}
	return rows
}

func TestCreateTableClustersAndCounts(t *testing.T) {
	c := New(storage.NewDisk(512))
	tb, err := c.CreateTable("t", testSchema(), sortord.New("a"), testRows(100))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Stats.NumRows != 100 {
		t.Fatalf("NumRows = %d", tb.Stats.NumRows)
	}
	if tb.Stats.Distinct["a"] != 100 || tb.Stats.Distinct["b"] != 10 || tb.Stats.Distinct["c"] != 3 {
		t.Fatalf("Distinct = %v", tb.Stats.Distinct)
	}
	// Loading must not charge I/O (checked before our own reads below).
	if c.Disk().Stats().Total() != 0 {
		t.Fatalf("load charged I/O: %v", c.Disk().Stats())
	}
	rows, err := storage.ReadAll(tb.File())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int() > rows[i][0].Int() {
			t.Fatal("heap not clustered on a")
		}
	}
	if tb.NumBlocks() <= 0 {
		t.Fatal("table should occupy blocks")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := New(storage.NewDisk(512))
	if _, err := c.CreateTable("t", testSchema(), sortord.New("zz"), nil); err == nil {
		t.Fatal("bad cluster order should error")
	}
	if _, err := c.CreateTable("t", testSchema(), sortord.Empty, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", testSchema(), sortord.Empty, nil); err == nil {
		t.Fatal("duplicate table should error")
	}
}

func TestTableLookup(t *testing.T) {
	c := New(storage.NewDisk(512))
	c.CreateTable("x", testSchema(), sortord.Empty, testRows(5))
	c.CreateTable("y", testSchema(), sortord.Empty, nil)
	if _, err := c.Table("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("zz"); err == nil {
		t.Fatal("missing table should error")
	}
	names := c.TableNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("TableNames = %v", names)
	}
	tb, err := c.Table("x")
	if err != nil || tb.Name != "x" {
		t.Fatalf("Table(x) = %v, %v", tb, err)
	}
}

func TestCreateIndexSortedAndCovering(t *testing.T) {
	c := New(storage.NewDisk(512))
	tb, _ := c.CreateTable("t", testSchema(), sortord.New("a"), testRows(50))
	ix, err := c.CreateIndex("t_b", tb, sortord.New("b"), []string{"c"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Schema().Names(); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("index schema = %v", got)
	}
	rows, err := storage.ReadAll(ix.File())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 50 {
		t.Fatalf("index rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int() > rows[i][0].Int() {
			t.Fatal("index not sorted on key")
		}
	}
	if !ix.Covers(sortord.NewAttrSet("b", "c")) {
		t.Fatal("index should cover {b,c}")
	}
	if ix.Covers(sortord.NewAttrSet("a", "b")) {
		t.Fatal("index should not cover {a,b}")
	}
	if tb.Index("t_b") != ix || tb.Index("nope") != nil {
		t.Fatal("Index lookup broken")
	}
	if ix.NumBlocks() <= 0 {
		t.Fatal("index should occupy blocks")
	}
}

func TestCreateIndexKeyDedupWithIncluded(t *testing.T) {
	c := New(storage.NewDisk(512))
	tb, _ := c.CreateTable("t", testSchema(), sortord.Empty, testRows(10))
	// Included column repeats a key column: stored once.
	ix, err := c.CreateIndex("i", tb, sortord.New("b"), []string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Schema().Names(); len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("index schema = %v", got)
	}
}

func TestCreateIndexValidation(t *testing.T) {
	c := New(storage.NewDisk(512))
	tb, _ := c.CreateTable("t", testSchema(), sortord.Empty, testRows(10))
	if _, err := c.CreateIndex("i", tb, sortord.New("zz"), nil); err != nil {
		// good
	} else {
		t.Fatal("bad key should error")
	}
	if _, err := c.CreateIndex("i", tb, sortord.New("a"), []string{"zz"}); err == nil {
		t.Fatal("bad include should error")
	}
	if _, err := c.CreateIndex("i", tb, sortord.New("a"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("i", tb, sortord.New("b"), nil); err == nil {
		t.Fatal("duplicate index name should error")
	}
}

func TestDistinctOn(t *testing.T) {
	st := Stats{NumRows: 1000, Distinct: map[string]int64{"a": 10, "b": 20, "c": 1000}}
	cases := []struct {
		attrs []string
		want  int64
	}{
		{[]string{"a"}, 10},
		{[]string{"a", "b"}, 200},
		{[]string{"a", "b", "c"}, 1000}, // capped at NumRows
		{[]string{"c"}, 1000},
		{[]string{"zz"}, 1000}, // unknown column: conservative
		{nil, 1},
	}
	for _, c := range cases {
		if got := st.DistinctOn(c.attrs); got != c.want {
			t.Errorf("DistinctOn(%v) = %d, want %d", c.attrs, got, c.want)
		}
	}
	empty := Stats{NumRows: 0}
	if empty.DistinctOn([]string{"a"}) != 0 {
		t.Fatal("empty relation has 0 distinct values")
	}
}

func TestDistinctOnOverflowSafety(t *testing.T) {
	st := Stats{NumRows: 1 << 40, Distinct: map[string]int64{"a": 1 << 35, "b": 1 << 35, "c": 1 << 35}}
	if got := st.DistinctOn([]string{"a", "b", "c"}); got != 1<<40 {
		t.Fatalf("overflow guard failed: %d", got)
	}
}
