// Package ordersel implements the combinatorial core of Section 4 of the
// paper: choosing sort orders (attribute permutations) for the nodes of a
// join tree so that adjacent nodes share the longest possible common
// prefixes.
//
// Problem 1 (NP-hard, by reduction from SUM-CUT): given a binary tree whose
// vertices carry attribute sets, pick a permutation per vertex maximising
//
//	F = Σ over edges (vi,vj) of |pi ∧ pj|
//
// Provided here:
//
//   - PathOrder — the exact O(n³) dynamic program of Figure 4 for paths
//     (left-deep and right-deep join plans are paths);
//   - TwoApprox — the 2-approximation of §4.2 for arbitrary binary trees,
//     splitting edges into odd- and even-level path sets, solving each with
//     PathOrder and keeping the better;
//   - Exact — brute force over all permutation combinations, exponential,
//     for tests and tiny trees;
//   - SumCutReduction — the Theorem 4.1 construction mapping a SUM-CUT
//     instance to Problem 1, exercised by tests as executable documentation
//     of the hardness proof.
package ordersel

import (
	"fmt"

	"pyro/internal/sortord"
)

// Problem is an instance of Problem 1: a tree with an attribute set per
// vertex. Edges must form a forest over vertices 0..len(Sets)-1 (the
// algorithms accept forests; a tree is the common case).
type Problem struct {
	Sets  []sortord.AttrSet
	Edges [][2]int
}

// Validate checks vertex indices and that the edge set is acyclic.
func (p Problem) Validate() error {
	n := len(p.Sets)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range p.Edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return fmt.Errorf("ordersel: edge (%d,%d) out of range [0,%d)", a, b, n)
		}
		ra, rb := find(a), find(b)
		if ra == rb {
			return fmt.Errorf("ordersel: edges contain a cycle through (%d,%d)", a, b)
		}
		parent[ra] = rb
	}
	return nil
}

// TotalBenefit evaluates F for a given assignment of permutations.
func (p Problem) TotalBenefit(perms []sortord.Order) int {
	total := 0
	for _, e := range p.Edges {
		total += sortord.LCP(perms[e[0]], perms[e[1]]).Len()
	}
	return total
}

// PathOrder solves Problem 1 exactly on a path using the dynamic program of
// Figure 4. sets[i] is the attribute set of the i-th path vertex; the
// returned permutations are complete (every attribute of sets[i] appears in
// perms[i]) and the returned benefit is the optimum Σ|pi ∧ pi+1|.
func PathOrder(sets []sortord.AttrSet) ([]sortord.Order, int) {
	n := len(sets)
	if n == 0 {
		return nil, 0
	}
	if n == 1 {
		return []sortord.Order{sortord.APermute(sets[0])}, 0
	}

	benefit := make([][]int, n)
	split := make([][]int, n)
	commons := make([][]sortord.AttrSet, n)
	for i := 0; i < n; i++ {
		benefit[i] = make([]int, n)
		split[i] = make([]int, n)
		commons[i] = make([]sortord.AttrSet, n)
		commons[i][i] = sets[i].Clone()
		split[i][i] = -1
	}

	// Segments by increasing length, exactly as in the paper's Figure 4.
	for j := 1; j < n; j++ {
		for i := 0; i+j < n; i++ {
			hi := i + j
			bestK, bestVal := i, -1
			for k := i; k < hi; k++ {
				if v := benefit[i][k] + benefit[k+1][hi]; v > bestVal {
					bestVal = v
					bestK = k
				}
			}
			commons[i][hi] = commons[i][bestK].Intersect(commons[bestK+1][hi])
			benefit[i][hi] = bestVal + commons[i][hi].Len()
			split[i][hi] = bestK
		}
	}
	opt := benefit[0][n-1]

	// MakePermutation: walk the split tree top-down, appending each
	// segment's common attributes to every permutation in the segment.
	//
	// Note a deliberate deviation from the paper's Figure 4 pseudocode,
	// which subtracts commons[i][j] from *every* other memo entry. Applied
	// literally that also strips sibling segments — segments disjoint from
	// (i,j) whose permutations never received commons[i][j] as a prefix —
	// and the constructed permutations then realize less than the DP
	// optimum (e.g. sets {a,d},{a,b,d,e},{a},{a,b,c,d},{a,d,e},{b,d} lose
	// benefit 6 → 3). The subtraction is sound only for *nested*
	// subsegments of (i,j), which is what the recursion below visits, so we
	// restrict it there; with that reading the construction provably
	// realizes the DP value (verified exhaustively in tests).
	perms := make([]sortord.Order, n)
	var makePerm func(i, j int)
	makePerm = func(i, j int) {
		if i == j {
			perms[i] = sortord.Concat(perms[i], sortord.APermute(commons[i][i]))
			return
		}
		seg := sortord.APermute(commons[i][j])
		for k := i; k <= j; k++ {
			perms[k] = sortord.Concat(perms[k], seg)
		}
		if commons[i][j].Len() > 0 {
			for a := i; a <= j; a++ {
				for b := a; b <= j; b++ {
					if a == i && b == j {
						continue
					}
					commons[a][b] = commons[a][b].Difference(commons[i][j])
				}
			}
		}
		m := split[i][j]
		makePerm(i, m)
		makePerm(m+1, j)
	}
	makePerm(0, n-1)

	// Completion: global subtraction may have removed attributes from leaf
	// commons that belong to a vertex's set but were never appended (they
	// carry no DP benefit); append them so each perm is a full permutation.
	for i := range perms {
		missing := sets[i].Difference(perms[i].Attrs())
		perms[i] = sortord.Concat(perms[i], sortord.APermute(missing))
	}
	return perms, opt
}

// SegmentBudget returns how many of a partial sort's segments must be
// collected and sorted to deliver the first k of rows output rows:
// ⌈k·segments/rows⌉, clamped to [1, segments] (uniform segments, §3.2's
// N/D assumption). This is the segment-count arithmetic the two-phase cost
// model charges a partial-sort enforcer for a Top-K prefix — with a row
// budget k in scope, plan comparison sees exactly this many segment sorts
// instead of all D of them.
func SegmentBudget(k, rows, segments int64) int64 {
	if segments <= 1 {
		return 1
	}
	if k <= 0 || rows <= 0 || k >= rows {
		if k <= 0 {
			return 1
		}
		return segments
	}
	segs := (k*segments + rows - 1) / rows
	if segs < 1 {
		segs = 1
	}
	if segs > segments {
		segs = segments
	}
	return segs
}

// adjacency builds an adjacency list for the problem's tree.
func (p Problem) adjacency() [][]int {
	adj := make([][]int, len(p.Sets))
	for _, e := range p.Edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

// levels assigns BFS depths from vertex 0 of each component; the level of
// an edge is the depth of its deeper endpoint.
func (p Problem) levels() []int {
	n := len(p.Sets)
	depth := make([]int, n)
	for i := range depth {
		depth[i] = -1
	}
	adj := p.adjacency()
	for root := 0; root < n; root++ {
		if depth[root] != -1 {
			continue
		}
		depth[root] = 0
		queue := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range adj[v] {
				if depth[w] == -1 {
					depth[w] = depth[v] + 1
					queue = append(queue, w)
				}
			}
		}
	}
	return depth
}

// pathsOf decomposes the subgraph keeping edges whose parity matches into
// vertex-disjoint paths, returned as vertex index sequences. In a binary
// tree every component of a single parity class is a path (§4.2, Fig 5).
func (p Problem) pathsOf(parity int) [][]int {
	n := len(p.Sets)
	depth := p.levels()
	sub := make([][]int, n)
	for _, e := range p.Edges {
		d := depth[e[0]]
		if depth[e[1]] > d {
			d = depth[e[1]]
		}
		if d%2 == parity {
			sub[e[0]] = append(sub[e[0]], e[1])
			sub[e[1]] = append(sub[e[1]], e[0])
		}
	}
	seen := make([]bool, n)
	var paths [][]int
	for v := 0; v < n; v++ {
		if seen[v] || len(sub[v]) == 0 || len(sub[v]) > 1 {
			continue
		}
		// v is a path endpoint: walk to the other end.
		path := []int{v}
		seen[v] = true
		prev, cur := -1, v
		for {
			next := -1
			for _, w := range sub[cur] {
				if w != prev {
					next = w
					break
				}
			}
			if next == -1 {
				break
			}
			path = append(path, next)
			seen[next] = true
			prev, cur = cur, next
		}
		paths = append(paths, path)
	}
	return paths
}

// TwoApprox returns permutations whose total benefit is at least half the
// optimum (§4.2): solve the odd-level and even-level path decompositions
// exactly with PathOrder and keep the better assignment. Vertices not on
// any chosen path get arbitrary permutations.
func TwoApprox(p Problem) []sortord.Order {
	best := make([]sortord.Order, len(p.Sets))
	bestVal := -1
	for parity := 0; parity < 2; parity++ {
		perms := make([]sortord.Order, len(p.Sets))
		for i, s := range p.Sets {
			perms[i] = sortord.APermute(s) // default for uncovered vertices
		}
		for _, path := range p.pathsOf(parity) {
			sets := make([]sortord.AttrSet, len(path))
			for i, v := range path {
				sets[i] = p.Sets[v]
			}
			pathPerms, _ := PathOrder(sets)
			for i, v := range path {
				perms[v] = pathPerms[i]
			}
		}
		if val := p.TotalBenefit(perms); val > bestVal {
			bestVal = val
			best = perms
		}
	}
	return best
}

// Exact solves Problem 1 by brute force over every combination of
// permutations. Cost is Π |si|!, so callers must keep instances tiny; it
// exists to validate PathOrder and TwoApprox in tests.
func Exact(p Problem) ([]sortord.Order, int) {
	n := len(p.Sets)
	options := make([][]sortord.Order, n)
	for i, s := range p.Sets {
		options[i] = sortord.Permutations(s)
	}
	assign := make([]sortord.Order, n)
	best := make([]sortord.Order, n)
	bestVal := -1
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			if v := p.TotalBenefit(assign); v > bestVal {
				bestVal = v
				copy(best, assign)
			}
			return
		}
		for _, perm := range options[i] {
			assign[i] = perm
			rec(i + 1)
		}
	}
	rec(0)
	return best, bestVal
}
