package ordersel

import (
	"fmt"

	"pyro/internal/sortord"
)

// Graph is an undirected graph for the SUM-CUT reduction (Theorem 4.1).
type Graph struct {
	N     int
	Edges [][2]int
}

// SumCutReduction builds the Problem 1 instance of Theorem 4.1 from a
// graph G with m vertices u1..um:
//
//   - vertices v1..vm are internal ("spine") vertices; vm+1..v2m are leaves;
//   - edges {vi,vi+1 : 1 ≤ i < m} form the spine and {vi, vm+i} attach one
//     leaf per spine vertex;
//   - each spine vertex carries V(G) ∪ L, where L is a padding set disjoint
//     from V(G) with |L| = padSize;
//   - leaf vm+i carries the neighbourhood of ui in G.
//
// Vertex ui of G is encoded as attribute "u<i>"; padding attributes are
// "L<k>". Indices in the returned Problem are zero-based: spine vertex vi is
// index i-1, leaf vm+i is index m+i-1.
//
// The reduction makes maximising Problem 1's benefit equivalent to the
// NP-hard SUM-CUT numbering problem, which is why the optimizer settles for
// PathOrder on paths and TwoApprox on trees.
func SumCutReduction(g Graph, padSize int) (Problem, error) {
	m := g.N
	if m <= 0 {
		return Problem{}, fmt.Errorf("ordersel: reduction needs at least one graph vertex")
	}
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= m || e[1] < 0 || e[1] >= m {
			return Problem{}, fmt.Errorf("ordersel: graph edge (%d,%d) out of range", e[0], e[1])
		}
	}
	vg := sortord.NewAttrSet()
	for i := 0; i < m; i++ {
		vg.Add(fmt.Sprintf("u%d", i))
	}
	pad := sortord.NewAttrSet()
	for k := 0; k < padSize; k++ {
		pad.Add(fmt.Sprintf("L%d", k))
	}
	spineSet := vg.Union(pad)

	sets := make([]sortord.AttrSet, 2*m)
	for i := 0; i < m; i++ {
		sets[i] = spineSet.Clone()
	}
	for i := 0; i < m; i++ {
		nbrs := sortord.NewAttrSet()
		for _, e := range g.Edges {
			switch {
			case e[0] == i:
				nbrs.Add(fmt.Sprintf("u%d", e[1]))
			case e[1] == i:
				nbrs.Add(fmt.Sprintf("u%d", e[0]))
			}
		}
		sets[m+i] = nbrs
	}

	var edges [][2]int
	for i := 0; i+1 < m; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	for i := 0; i < m; i++ {
		edges = append(edges, [2]int{i, m + i})
	}
	return Problem{Sets: sets, Edges: edges}, nil
}
