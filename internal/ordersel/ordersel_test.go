package ordersel

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pyro/internal/sortord"
)

func set(attrs ...string) sortord.AttrSet { return sortord.NewAttrSet(attrs...) }

func TestPathOrderTwoNodes(t *testing.T) {
	perms, benefit := PathOrder([]sortord.AttrSet{set("a", "b", "c"), set("b", "c", "d")})
	if benefit != 2 {
		t.Fatalf("benefit = %d, want 2 (|{b,c}|)", benefit)
	}
	if got := sortord.LCP(perms[0], perms[1]).Len(); got != 2 {
		t.Fatalf("realized lcp = %d, want 2 (perms %v)", got, perms)
	}
}

func TestPathOrderCompletePermutations(t *testing.T) {
	sets := []sortord.AttrSet{set("a", "x"), set("a", "b"), set("b", "y")}
	perms, _ := PathOrder(sets)
	for i, p := range perms {
		if !p.Attrs().Equal(sets[i]) || p.HasDuplicates() {
			t.Fatalf("perm %d = %v is not a permutation of %v", i, p, sets[i])
		}
	}
}

func TestPathOrderRealizesDPBenefit(t *testing.T) {
	// The permutations constructed by MakePermutation must achieve at least
	// the DP's claimed optimum (they can't exceed it if the DP is optimal).
	sets := []sortord.AttrSet{
		set("a", "b", "c", "d", "e"),
		set("a", "b", "c", "k"),
		set("c", "d"),
		set("c", "e", "i", "j"),
	}
	perms, benefit := PathOrder(sets)
	realized := 0
	for i := 0; i+1 < len(perms); i++ {
		realized += sortord.LCP(perms[i], perms[i+1]).Len()
	}
	if realized < benefit {
		t.Fatalf("realized %d < DP benefit %d (perms %v)", realized, benefit, perms)
	}
}

func TestPathOrderMatchesExactOnSmallPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(3) // 2..4 nodes
		sets := make([]sortord.AttrSet, n)
		for i := range sets {
			s := sortord.NewAttrSet()
			for _, a := range alphabet {
				if rng.Intn(2) == 0 {
					s.Add(a)
				}
			}
			if s.Len() == 0 {
				s.Add(alphabet[rng.Intn(len(alphabet))])
			}
			sets[i] = s
		}
		var edges [][2]int
		for i := 0; i+1 < n; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		prob := Problem{Sets: sets, Edges: edges}
		_, exactVal := Exact(prob)
		perms, dpVal := PathOrder(sets)
		if dpVal != exactVal {
			t.Fatalf("trial %d: DP benefit %d != exact %d for sets %v", trial, dpVal, exactVal, sets)
		}
		if realized := prob.TotalBenefit(perms); realized != exactVal {
			t.Fatalf("trial %d: realized %d != exact %d (perms %v, sets %v)",
				trial, realized, exactVal, perms, sets)
		}
	}
}

func TestPathOrderDegenerate(t *testing.T) {
	if perms, b := PathOrder(nil); perms != nil || b != 0 {
		t.Fatal("empty path")
	}
	perms, b := PathOrder([]sortord.AttrSet{set("x", "y")})
	if b != 0 || len(perms) != 1 || perms[0].Len() != 2 {
		t.Fatalf("single node: %v %d", perms, b)
	}
	// Disjoint sets: zero benefit but valid permutations.
	perms, b = PathOrder([]sortord.AttrSet{set("a"), set("b"), set("c")})
	if b != 0 {
		t.Fatalf("disjoint benefit = %d", b)
	}
	for i, p := range perms {
		if p.Len() != 1 {
			t.Fatalf("perm %d = %v", i, p)
		}
	}
}

func TestPaperFigure3Example(t *testing.T) {
	// Figure 3 of the paper: 8 relations joined pairwise up a tree. The
	// nodes and sets (0-indexed, leaves then internals as drawn):
	//   n0 {a,b,c,d,e} root
	//   n1 {a,b,c,k}  n2 {c,d}
	//   n3 {c,e,i,j}  n4 {c,k,l,m}  n5 {c,d,h,n}  n6 {f,g,p,q}
	// Edges: 0-1, 0-2, 1-3, 1-4, 2-5, 2-6.
	// The paper's optimal solution achieves total benefit 8.
	prob := Problem{
		Sets: []sortord.AttrSet{
			set("a", "b", "c", "d", "e"),
			set("a", "b", "c", "k"),
			set("c", "d"),
			set("c", "e", "i", "j"),
			set("c", "k", "l", "m"),
			set("c", "d", "h", "n"),
			set("f", "g", "p", "q"),
		},
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}},
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper-drawn assignment: verify its claimed benefit of 8 under our
	// benefit evaluator. (The drawn solution: n0=<c,d,a,b,e>, n1=<c,k,a,b>...
	// gives 1(0-1)+2(0-2)+... the figure's edge labels sum to 8; their
	// specific drawn labels: 0-1:1? The figure shows benefit 8 total.)
	drawn := []sortord.Order{
		sortord.New("c", "d", "a", "b", "e"),
		sortord.New("c", "k", "a", "b"),
		sortord.New("c", "d"),
		sortord.New("c", "e", "i", "j"),
		sortord.New("c", "k", "l", "m"),
		sortord.New("c", "d", "h", "n"),
		sortord.New("f", "g", "p", "q"),
	}
	if got := prob.TotalBenefit(drawn); got != 8 {
		t.Fatalf("paper's drawn solution scores %d, want 8", got)
	}
	// TwoApprox must achieve at least half of 8 (and Exact at least the
	// drawn value; on this instance exact = 8).
	approx := TwoApprox(prob)
	if got := prob.TotalBenefit(approx); got < 4 {
		t.Fatalf("2-approx benefit %d < 4", got)
	}
	for i, p := range approx {
		if !p.Attrs().Equal(prob.Sets[i]) {
			t.Fatalf("approx perm %d = %v not a permutation of %v", i, p, prob.Sets[i])
		}
	}
}

func TestTwoApproxGuaranteeOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []string{"a", "b", "c"}
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4) // 2..5 vertices
		sets := make([]sortord.AttrSet, n)
		for i := range sets {
			s := sortord.NewAttrSet()
			for _, a := range alphabet {
				if rng.Intn(2) == 0 {
					s.Add(a)
				}
			}
			if s.Len() == 0 {
				s.Add(alphabet[rng.Intn(len(alphabet))])
			}
			sets[i] = s
		}
		// Random binary tree: attach each vertex i>0 to a random earlier
		// vertex with < 2 children.
		children := make([]int, n)
		var edges [][2]int
		for i := 1; i < n; i++ {
			for {
				p := rng.Intn(i)
				if children[p] < 2 {
					children[p]++
					edges = append(edges, [2]int{p, i})
					break
				}
			}
		}
		prob := Problem{Sets: sets, Edges: edges}
		_, exactVal := Exact(prob)
		approx := TwoApprox(prob)
		got := prob.TotalBenefit(approx)
		// The guarantee is ≥ ceil(half): 2·got ≥ exact.
		if 2*got < exactVal {
			t.Fatalf("trial %d: approx %d < half of exact %d (sets %v edges %v)",
				trial, got, exactVal, sets, edges)
		}
		for i, p := range approx {
			if !p.Attrs().Equal(sets[i]) {
				t.Fatalf("approx perm %d not a permutation", i)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Problem{Sets: []sortord.AttrSet{set("a"), set("a")}, Edges: [][2]int{{0, 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Problem{Sets: []sortord.AttrSet{set("a")}, Edges: [][2]int{{0, 3}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range edge should fail")
	}
	cyc := Problem{
		Sets:  []sortord.AttrSet{set("a"), set("a"), set("a")},
		Edges: [][2]int{{0, 1}, {1, 2}, {2, 0}},
	}
	if err := cyc.Validate(); err == nil {
		t.Fatal("cycle should fail")
	}
}

func TestLevelsAndPathDecomposition(t *testing.T) {
	// Perfect binary tree of 7 nodes: root 0; children 1,2; leaves 3..6.
	prob := Problem{
		Sets:  make([]sortord.AttrSet, 7),
		Edges: [][2]int{{0, 1}, {0, 2}, {1, 3}, {1, 4}, {2, 5}, {2, 6}},
	}
	for i := range prob.Sets {
		prob.Sets[i] = set("a")
	}
	depth := prob.levels()
	want := []int{0, 1, 1, 2, 2, 2, 2}
	if !reflect.DeepEqual(depth, want) {
		t.Fatalf("levels = %v, want %v", depth, want)
	}
	// Odd-level edges: 0-1, 0-2 => one path 1-0-2.
	odd := prob.pathsOf(1)
	if len(odd) != 1 || len(odd[0]) != 3 {
		t.Fatalf("odd paths = %v", odd)
	}
	// Even-level edges: the four leaf edges => two paths 3-1-4 and 5-2-6.
	even := prob.pathsOf(0)
	if len(even) != 2 || len(even[0]) != 3 || len(even[1]) != 3 {
		t.Fatalf("even paths = %v", even)
	}
}

func TestSumCutReduction(t *testing.T) {
	// Triangle graph on 3 vertices.
	g := Graph{N: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	prob, err := SumCutReduction(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Sets) != 6 {
		t.Fatalf("reduction should build 2m vertices, got %d", len(prob.Sets))
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spine vertices carry V(G) ∪ L (3 + 5 attributes).
	for i := 0; i < 3; i++ {
		if prob.Sets[i].Len() != 8 {
			t.Fatalf("spine set %d = %v", i, prob.Sets[i])
		}
	}
	// Leaf i carries the neighbourhood of ui: in a triangle every vertex
	// has 2 neighbours.
	for i := 3; i < 6; i++ {
		if prob.Sets[i].Len() != 2 {
			t.Fatalf("leaf set %d = %v", i, prob.Sets[i])
		}
	}
	// Edge count: m-1 spine + m leaf edges.
	if len(prob.Edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(prob.Edges))
	}
	if _, err := SumCutReduction(Graph{N: 0}, 1); err == nil {
		t.Fatal("empty graph should error")
	}
	if _, err := SumCutReduction(Graph{N: 2, Edges: [][2]int{{0, 5}}}, 1); err == nil {
		t.Fatal("bad edge should error")
	}
}

func TestQuickPathOrderNeverBelowGreedy(t *testing.T) {
	// Property: the DP optimum is at least the benefit of the naive
	// assignment that orders every set identically (sorted), a simple lower
	// bound witness.
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 2 + r.Intn(5)
			sets := make([]sortord.AttrSet, n)
			for i := range sets {
				s := sortord.NewAttrSet()
				for _, a := range []string{"a", "b", "c", "d", "e"} {
					if r.Intn(2) == 0 {
						s.Add(a)
					}
				}
				if s.Len() == 0 {
					s.Add("a")
				}
				sets[i] = s
			}
			vals[0] = reflect.ValueOf(sets)
		},
	}
	prop := func(sets []sortord.AttrSet) bool {
		var edges [][2]int
		for i := 0; i+1 < len(sets); i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		prob := Problem{Sets: sets, Edges: edges}
		naive := make([]sortord.Order, len(sets))
		for i, s := range sets {
			naive[i] = sortord.APermute(s)
		}
		perms, dp := PathOrder(sets)
		if dp < prob.TotalBenefit(naive) {
			return false
		}
		return prob.TotalBenefit(perms) >= dp
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPathOrderLargePathPerformance(t *testing.T) {
	// §6.3: plan refinement on 31 nodes, 10 attributes per node, finished
	// in < 6ms on 2006 hardware; it must be near-instant here.
	sets := make([]sortord.AttrSet, 31)
	for i := range sets {
		s := sortord.NewAttrSet()
		for k := 0; k < 10; k++ {
			s.Add(fmt.Sprintf("x%d", (i+k)%15))
		}
		sets[i] = s
	}
	perms, benefit := PathOrder(sets)
	if len(perms) != 31 || benefit <= 0 {
		t.Fatalf("31-node path: perms=%d benefit=%d", len(perms), benefit)
	}
}

// TestSegmentBudget pins the Top-K segment arithmetic the two-phase cost
// model charges partial sorts with.
func TestSegmentBudget(t *testing.T) {
	cases := []struct {
		k, rows, segments, want int64
	}{
		{1, 50_000, 100, 1},   // first row: one segment
		{500, 50_000, 100, 1}, // exactly one segment's worth
		{501, 50_000, 100, 2}, // one row into the second segment
		{100, 10_000, 100, 1}, // k = rows/segments
		{5_000, 50_000, 100, 10},
		{50_000, 50_000, 100, 100}, // full drain: every segment
		{60_000, 50_000, 100, 100}, // k beyond rows clamps
		{0, 50_000, 100, 1},        // degenerate budgets clamp low
		{-3, 50_000, 100, 1},
		{10, 50_000, 1, 1}, // a single segment is a full sort
		{10, 50_000, 0, 1},
		{10, 0, 100, 100}, // unknown cardinality: assume everything
	}
	for _, c := range cases {
		if got := SegmentBudget(c.k, c.rows, c.segments); got != c.want {
			t.Fatalf("SegmentBudget(%d, %d, %d) = %d, want %d", c.k, c.rows, c.segments, got, c.want)
		}
	}
	// Monotone in k, bounded by D.
	prev := int64(0)
	for k := int64(0); k <= 55_000; k += 1000 {
		got := SegmentBudget(k, 50_000, 100)
		if got < prev || got > 100 {
			t.Fatalf("SegmentBudget not monotone/bounded at k=%d: %d (prev %d)", k, got, prev)
		}
		prev = got
	}
}
