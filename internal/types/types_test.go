package types

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"pyro/internal/sortord"
)

func TestDatumConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("Null datum broken")
	}
	if d := NewInt(42); d.Int() != 42 || d.Kind() != KindInt || d.IsNull() {
		t.Fatal("int datum broken")
	}
	if d := NewFloat(2.5); d.Float() != 2.5 || d.Kind() != KindFloat {
		t.Fatal("float datum broken")
	}
	if d := NewString("hi"); d.Str() != "hi" || d.Kind() != KindString {
		t.Fatal("string datum broken")
	}
	if d := NewBool(true); !d.Bool() || d.Kind() != KindBool {
		t.Fatal("bool datum broken")
	}
	if NewInt(7).Float() != 7.0 {
		t.Fatal("int-to-float accessor broken")
	}
}

func TestDatumCompare(t *testing.T) {
	cases := []struct {
		a, b Datum
		want int
	}{
		{Null, Null, 0},
		{Null, NewInt(0), -1},
		{NewInt(0), Null, 1},
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.5), -1},
		{NewFloat(2.5), NewInt(2), 1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewBool(true), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDatumCompareTotalOrderAcrossKinds(t *testing.T) {
	// Mixed-kind comparisons must stay antisymmetric so sorting never panics.
	vals := []Datum{Null, NewInt(1), NewFloat(1.5), NewString("x"), NewBool(true)}
	for _, a := range vals {
		for _, b := range vals {
			if a.Compare(b) != -b.Compare(a) {
				t.Fatalf("antisymmetry violated for %v vs %v", a, b)
			}
		}
	}
}

func TestDatumString(t *testing.T) {
	cases := map[string]Datum{
		"NULL":  Null,
		"42":    NewInt(42),
		"2.5":   NewFloat(2.5),
		`"hi"`:  NewString("hi"),
		"true":  NewBool(true),
		"false": NewBool(false),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", d.Kind(), got, want)
		}
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema(
		Column{Name: "a", Kind: KindInt},
		Column{Name: "b", Kind: KindString, Width: 20},
		Column{Name: "c", Kind: KindFloat},
	)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Ordinal("b"); !ok || i != 1 {
		t.Fatalf("Ordinal(b) = %d,%v", i, ok)
	}
	if _, ok := s.Ordinal("zz"); ok {
		t.Fatal("missing column should not resolve")
	}
	if !s.Has("c") || s.Has("zz") {
		t.Fatal("Has broken")
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Names = %v", got)
	}
	if w := s.AvgTupleWidth(); w != 8+20+8 {
		t.Fatalf("AvgTupleWidth = %d", w)
	}
	if !s.HasAll(sortord.NewAttrSet("a", "c")) || s.HasAll(sortord.NewAttrSet("a", "zz")) {
		t.Fatal("HasAll broken")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate column")
		}
	}()
	NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "a", Kind: KindInt})
}

func TestSchemaProjectConcat(t *testing.T) {
	s := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindInt})
	u := NewSchema(Column{Name: "c", Kind: KindInt})
	j := s.Concat(u)
	if got := j.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("Concat names = %v", got)
	}
	p := j.Project([]string{"c", "a"})
	if got := p.Names(); !reflect.DeepEqual(got, []string{"c", "a"}) {
		t.Fatalf("Project names = %v", got)
	}
}

func TestKeySpecCompare(t *testing.T) {
	s := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindInt})
	ks := MustKeySpec(s, sortord.New("b", "a"))
	t1 := NewTuple(NewInt(1), NewInt(5))
	t2 := NewTuple(NewInt(2), NewInt(5))
	if ks.Compare(t1, t2) >= 0 {
		t.Fatal("tie on b should fall to a")
	}
	if ks.ComparePrefix(t1, t2, 1) != 0 {
		t.Fatal("prefix compare on b should tie")
	}
	if _, err := MakeKeySpec(s, sortord.New("zz")); err == nil {
		t.Fatal("missing sort attribute should error")
	}
}

func TestTupleEncodeDecodeRoundTrip(t *testing.T) {
	tup := NewTuple(NewInt(-7), NewFloat(math.Pi), NewString("hello"), NewBool(true), Null)
	buf := tup.Encode(nil)
	if len(buf) != tup.EncodedSize() {
		t.Fatalf("EncodedSize = %d, actual %d", tup.EncodedSize(), len(buf))
	}
	got, n, err := DecodeTuple(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: %v, n=%d", err, n)
	}
	if len(got) != len(tup) {
		t.Fatalf("decoded arity %d", len(got))
	}
	for i := range tup {
		if !got[i].Equal(tup[i]) || got[i].Kind() != tup[i].Kind() {
			t.Fatalf("datum %d: got %v want %v", i, got[i], tup[i])
		}
	}
}

func TestDecodeTupleErrors(t *testing.T) {
	if _, _, err := DecodeTuple([]byte{1, 2}); err == nil {
		t.Fatal("short header should error")
	}
	tup := NewTuple(NewString("abcdef"))
	buf := tup.Encode(nil)
	for cut := 5; cut < len(buf); cut++ {
		if _, _, err := DecodeTuple(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d should error", cut)
		}
	}
	// Unknown kind byte.
	bad := []byte{0, 0, 0, 1, 0xFF}
	if _, _, err := DecodeTuple(bad); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func randomDatum(r *rand.Rand) Datum {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewInt(r.Int63() - r.Int63())
	case 2:
		return NewFloat(r.NormFloat64() * 1e6)
	case 3:
		n := r.Intn(24)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return NewString(string(b))
	default:
		return NewBool(r.Intn(2) == 0)
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(8)
			tup := make(Tuple, n)
			for i := range tup {
				tup[i] = randomDatum(r)
			}
			vals[0] = reflect.ValueOf(tup)
		},
	}
	prop := func(tup Tuple) bool {
		buf := tup.Encode(nil)
		if len(buf) != tup.EncodedSize() {
			return false
		}
		got, n, err := DecodeTuple(buf)
		if err != nil || n != len(buf) || len(got) != len(tup) {
			return false
		}
		for i := range tup {
			if got[i].Compare(tup[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareTransitivity(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i := range vals {
				vals[i] = reflect.ValueOf(randomDatum(r))
			}
		},
	}
	prop := func(a, b, c Datum) bool {
		// antisymmetry
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// transitivity: a<=b && b<=c => a<=c
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTupleCloneConcat(t *testing.T) {
	a := NewTuple(NewInt(1))
	b := NewTuple(NewInt(2), NewInt(3))
	c := a.Concat(b)
	if len(c) != 3 || c[2].Int() != 3 {
		t.Fatalf("Concat = %v", c)
	}
	cl := a.Clone()
	cl[0] = NewInt(9)
	if a[0].Int() != 1 {
		t.Fatal("Clone aliases")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindNull: "NULL", KindInt: "BIGINT", KindFloat: "DOUBLE",
		KindString: "VARCHAR", KindBool: "BOOLEAN",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
