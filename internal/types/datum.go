// Package types defines the value, schema and tuple model shared by the
// storage engine, execution engine and optimizer. Values ("datums") are a
// small closed set of SQL-ish types sufficient for the paper's workloads:
// 64-bit integers, 64-bit floats, strings, booleans and NULL.
//
// Tuples are flat datum slices positionally aligned with a Schema. Encoding
// is a simple length-prefixed binary format used when spilling sort runs to
// the simulated disk.
package types

import (
	"fmt"
	"strconv"
)

// Kind enumerates datum types.
type Kind uint8

const (
	// KindNull is the type of the NULL datum.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE-754 float.
	KindFloat
	// KindString is a UTF-8 string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Datum is a single value. The zero value is NULL.
type Datum struct {
	kind Kind
	i    int64   // KindInt, KindBool (0/1)
	f    float64 // KindFloat
	s    string  // KindString
}

// Null is the NULL datum.
var Null = Datum{kind: KindNull}

// NewInt returns an integer datum.
func NewInt(v int64) Datum { return Datum{kind: KindInt, i: v} }

// NewFloat returns a float datum.
func NewFloat(v float64) Datum { return Datum{kind: KindFloat, f: v} }

// NewString returns a string datum.
func NewString(v string) Datum { return Datum{kind: KindString, s: v} }

// NewBool returns a boolean datum.
func NewBool(v bool) Datum {
	var i int64
	if v {
		i = 1
	}
	return Datum{kind: KindBool, i: i}
}

// Kind returns the datum's type.
func (d Datum) Kind() Kind { return d.kind }

// IsNull reports whether d is NULL.
func (d Datum) IsNull() bool { return d.kind == KindNull }

// Int returns the integer value; callers must check Kind first.
func (d Datum) Int() int64 { return d.i }

// Float returns the float value; for KindInt it converts.
func (d Datum) Float() float64 {
	if d.kind == KindInt {
		return float64(d.i)
	}
	return d.f
}

// Str returns the string value; callers must check Kind first.
func (d Datum) Str() string { return d.s }

// Bool returns the boolean value; callers must check Kind first.
func (d Datum) Bool() bool { return d.i != 0 }

// Compare defines a total order over datums: NULL sorts first, then values
// by kind (Int and Float compare numerically with each other), then strings
// byte-wise, then booleans false < true. Comparing numerics against
// non-numerics orders by Kind; the engine's type checking prevents such
// comparisons in well-formed plans, but the total order keeps sorting safe.
func (d Datum) Compare(o Datum) int {
	dn, on := d.IsNull(), o.IsNull()
	switch {
	case dn && on:
		return 0
	case dn:
		return -1
	case on:
		return 1
	}
	dNum := d.kind == KindInt || d.kind == KindFloat
	oNum := o.kind == KindInt || o.kind == KindFloat
	if dNum && oNum {
		if d.kind == KindInt && o.kind == KindInt {
			switch {
			case d.i < o.i:
				return -1
			case d.i > o.i:
				return 1
			}
			return 0
		}
		df, of := d.Float(), o.Float()
		switch {
		case df < of:
			return -1
		case df > of:
			return 1
		}
		return 0
	}
	if d.kind != o.kind {
		if d.kind < o.kind {
			return -1
		}
		return 1
	}
	switch d.kind {
	case KindString:
		switch {
		case d.s < o.s:
			return -1
		case d.s > o.s:
			return 1
		}
		return 0
	case KindBool:
		switch {
		case d.i < o.i:
			return -1
		case d.i > o.i:
			return 1
		}
		return 0
	}
	return 0
}

// Equal reports d == o under Compare semantics (NULL equals NULL here; SQL
// three-valued logic is applied at the expression layer, not in sorting).
func (d Datum) Equal(o Datum) bool { return d.Compare(o) == 0 }

// String renders the datum for plan/debug output.
func (d Datum) String() string {
	switch d.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(d.s)
	case KindBool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	}
	return "?"
}

// EncodedSize returns the number of bytes Encode will append for d.
func (d Datum) EncodedSize() int {
	switch d.kind {
	case KindNull:
		return 1
	case KindInt, KindFloat:
		return 1 + 8
	case KindBool:
		return 1 + 1
	case KindString:
		return 1 + 4 + len(d.s)
	}
	return 1
}

// MemSize returns an approximate in-memory footprint in bytes, used by the
// sort operators to account for their memory budget.
func (d Datum) MemSize() int {
	// struct overhead approximated at 32 bytes (kind+pad, i, f, string header).
	return 32 + len(d.s)
}
