package types

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// DefaultChunkCapacity is the batch size of the vectorized executor when the
// caller does not choose one: large enough to amortize per-batch dispatch
// over a full storage page of tuples, small enough that a chunk of the
// widest workload tuples stays cache-resident.
const DefaultChunkCapacity = 1024

// Chunk is a batch of up to Cap rows in columnar form: one datum vector per
// schema column plus an optional selection vector. Operators pass chunks
// through the executor's batch protocol (exec.ChunkOperator) so that the
// per-row interface dispatch and per-tuple allocation of the Volcano row
// path are paid once per batch instead of once per row.
//
// A filter does not move rows: it marks the surviving physical row indices
// in the selection vector, and downstream consumers iterate live rows
// through it. A nil selection means all physical rows are live.
//
// Chunks are reused aggressively (see GetChunk/PutChunk): the datums a
// chunk holds are only valid until the next NextChunk call that refills it,
// so consumers that retain rows must copy them out (OwnedRow).
type Chunk struct {
	cols     [][]Datum
	n        int     // physical rows appended
	sel      []int32 // live physical row indices, nil = all n rows live
	selBuf   []int32 // scratch selection storage, capacity cap(chunk)
	capacity int
}

// NewChunk returns an empty chunk for ncols columns holding up to capacity
// rows (capacity <= 0 picks DefaultChunkCapacity).
func NewChunk(ncols, capacity int) *Chunk {
	c := &Chunk{}
	c.reshape(ncols, capacity)
	return c
}

func (c *Chunk) reshape(ncols, capacity int) {
	if capacity <= 0 {
		capacity = DefaultChunkCapacity
	}
	c.capacity = capacity
	if cap(c.cols) < ncols {
		c.cols = make([][]Datum, ncols)
	}
	c.cols = c.cols[:ncols]
	for j := range c.cols {
		if cap(c.cols[j]) < capacity {
			c.cols[j] = make([]Datum, 0, capacity)
		}
	}
	if cap(c.selBuf) < capacity {
		c.selBuf = make([]int32, 0, capacity)
	}
	c.Reset()
}

// Cap returns the chunk's row capacity.
func (c *Chunk) Cap() int { return c.capacity }

// NumCols returns the number of column vectors.
func (c *Chunk) NumCols() int { return len(c.cols) }

// Reset empties the chunk (keeping its buffers) and clears the selection.
func (c *Chunk) Reset() {
	for j := range c.cols {
		c.cols[j] = c.cols[j][:0]
	}
	c.n = 0
	c.sel = nil
}

// Full reports whether the chunk has reached its capacity.
func (c *Chunk) Full() bool { return c.n >= c.capacity }

// Rows returns the number of live rows: the selection's length when one is
// set, the physical row count otherwise.
func (c *Chunk) Rows() int {
	if c.sel != nil {
		return len(c.sel)
	}
	return c.n
}

// Sel returns the selection vector (nil = all physical rows live).
func (c *Chunk) Sel() []int32 { return c.sel }

// SetSel installs a selection vector of live physical row indices, in
// ascending order. The slice is retained, not copied.
func (c *Chunk) SetSel(sel []int32) { c.sel = sel }

// SelScratch returns the chunk's scratch selection buffer, empty, with
// capacity Cap. Filters fill it with surviving indices and hand it back via
// SetSel; writing survivor j while reading live row i is safe because
// j <= i always holds (survivors are a subsequence of the rows read).
func (c *Chunk) SelScratch() []int32 { return c.selBuf[:0] }

// RowIndex returns the physical index of live row i.
func (c *Chunk) RowIndex(i int) int {
	if c.sel != nil {
		return int(c.sel[i])
	}
	return i
}

// DatumAt returns the datum of column col at live row i.
func (c *Chunk) DatumAt(col, i int) Datum { return c.cols[col][c.RowIndex(i)] }

// AppendRow appends one physical row. The tuple's arity must match the
// chunk's column count and the chunk must not be full.
func (c *Chunk) AppendRow(t Tuple) {
	for j := range c.cols {
		c.cols[j] = append(c.cols[j], t[j])
	}
	c.n++
}

// CopyRow materializes live row i into dst (reallocating only when dst is
// too small) and returns it. The result aliases dst, not the chunk: it
// stays valid after the chunk is refilled, but a second CopyRow into the
// same dst overwrites it.
func (c *Chunk) CopyRow(dst Tuple, i int) Tuple {
	phys := c.RowIndex(i)
	if cap(dst) < len(c.cols) {
		dst = make(Tuple, len(c.cols))
	}
	dst = dst[:len(c.cols)]
	for j := range c.cols {
		dst[j] = c.cols[j][phys]
	}
	return dst
}

// OwnedRow returns live row i as a freshly allocated tuple the caller may
// retain.
func (c *Chunk) OwnedRow(i int) Tuple {
	return c.CopyRow(nil, i)
}

// Truncate keeps only the first k live rows (no-op when k >= Rows).
func (c *Chunk) Truncate(k int) {
	if k >= c.Rows() {
		return
	}
	if c.sel != nil {
		c.sel = c.sel[:k]
		return
	}
	for j := range c.cols {
		c.cols[j] = c.cols[j][:k]
	}
	c.n = k
}

// AppendEncoded decodes one encoded tuple (the Tuple.Encode layout) from
// buf directly into the chunk's column vectors — the batch path's
// replacement for DecodeTuple, skipping the per-row tuple allocation. It
// returns the number of bytes consumed. The encoded arity must match the
// chunk's column count.
func (c *Chunk) AppendEncoded(buf []byte) (int, error) {
	if len(buf) < 4 {
		return 0, fmt.Errorf("types: short tuple header (%d bytes)", len(buf))
	}
	n := int(binary.BigEndian.Uint32(buf[:4]))
	if n != len(c.cols) {
		return 0, fmt.Errorf("types: encoded tuple has arity %d, chunk wants %d", n, len(c.cols))
	}
	pos := 4
	for i := 0; i < n; i++ {
		d, sz, err := decodeDatum(buf[pos:])
		if err != nil {
			// Roll back the columns already extended so a decode failure
			// cannot leave the chunk ragged (columns of unequal length).
			for j := 0; j < i; j++ {
				c.cols[j] = c.cols[j][:c.n]
			}
			return 0, fmt.Errorf("types: datum %d: %w", i, err)
		}
		c.cols[i] = append(c.cols[i], d)
		pos += sz
	}
	c.n++
	return pos, nil
}

// chunkPool recycles chunks across operators and queries so steady-state
// batch execution allocates nothing per chunk, let alone per row.
var chunkPool sync.Pool

// GetChunk returns an empty pooled chunk shaped for ncols columns and up to
// capacity rows (capacity <= 0 picks DefaultChunkCapacity). Pair with
// PutChunk when the holder is done.
func GetChunk(ncols, capacity int) *Chunk {
	c, _ := chunkPool.Get().(*Chunk)
	if c == nil {
		c = &Chunk{}
	}
	c.reshape(ncols, capacity)
	return c
}

// PutChunk returns a chunk to the pool. The caller must not use it again.
func PutChunk(c *Chunk) {
	if c == nil {
		return
	}
	c.Reset()
	chunkPool.Put(c)
}
