package types

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"
)

// Tuple is a row: one datum per schema column, positionally aligned.
type Tuple []Datum

// NewTuple builds a tuple from datums.
func NewTuple(ds ...Datum) Tuple { return Tuple(ds) }

// Clone returns a deep-enough copy (datums are values; strings share bytes,
// which is safe because datums are immutable).
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns the concatenation of two tuples (join output).
func (t Tuple) Concat(u Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(u))
	out = append(out, t...)
	out = append(out, u...)
	return out
}

// MemSize approximates the in-memory footprint in bytes.
func (t Tuple) MemSize() int {
	n := 24 // slice header
	for _, d := range t {
		n += d.MemSize()
	}
	return n
}

// EncodedSize returns the exact byte length of Encode's output.
func (t Tuple) EncodedSize() int {
	n := 4 // column count
	for _, d := range t {
		n += d.EncodedSize()
	}
	return n
}

// Encode appends a binary encoding of the tuple to buf and returns the
// extended slice. Layout: u32 column count, then per datum a kind byte and
// the payload (i64/f64 big-endian, bool byte, or u32-length-prefixed string).
func (t Tuple) Encode(buf []byte) []byte {
	var scratch [8]byte
	binary.BigEndian.PutUint32(scratch[:4], uint32(len(t)))
	buf = append(buf, scratch[:4]...)
	for _, d := range t {
		buf = append(buf, byte(d.kind))
		switch d.kind {
		case KindNull:
		case KindInt:
			binary.BigEndian.PutUint64(scratch[:], uint64(d.i))
			buf = append(buf, scratch[:]...)
		case KindFloat:
			binary.BigEndian.PutUint64(scratch[:], math.Float64bits(d.f))
			buf = append(buf, scratch[:]...)
		case KindBool:
			b := byte(0)
			if d.i != 0 {
				b = 1
			}
			buf = append(buf, b)
		case KindString:
			binary.BigEndian.PutUint32(scratch[:4], uint32(len(d.s)))
			buf = append(buf, scratch[:4]...)
			buf = append(buf, d.s...)
		}
	}
	return buf
}

// decodeDatum parses one encoded datum (kind byte + payload) from buf,
// returning the datum and the number of bytes consumed. Both the row path
// (DecodeTuple) and the batch path (Chunk.AppendEncoded) decode through
// here, so the two cannot drift apart.
func decodeDatum(buf []byte) (Datum, int, error) {
	if len(buf) == 0 {
		return Null, 0, fmt.Errorf("types: empty datum")
	}
	kind := Kind(buf[0])
	pos := 1
	switch kind {
	case KindNull:
		return Null, pos, nil
	case KindInt:
		if pos+8 > len(buf) {
			return Null, 0, fmt.Errorf("types: truncated int datum")
		}
		return NewInt(int64(binary.BigEndian.Uint64(buf[pos : pos+8]))), pos + 8, nil
	case KindFloat:
		if pos+8 > len(buf) {
			return Null, 0, fmt.Errorf("types: truncated float datum")
		}
		return NewFloat(math.Float64frombits(binary.BigEndian.Uint64(buf[pos : pos+8]))), pos + 8, nil
	case KindBool:
		if pos+1 > len(buf) {
			return Null, 0, fmt.Errorf("types: truncated bool datum")
		}
		return NewBool(buf[pos] != 0), pos + 1, nil
	case KindString:
		if pos+4 > len(buf) {
			return Null, 0, fmt.Errorf("types: truncated string length")
		}
		l := int(binary.BigEndian.Uint32(buf[pos : pos+4]))
		pos += 4
		if l < 0 || l > len(buf)-pos {
			return Null, 0, fmt.Errorf("types: truncated string payload")
		}
		return NewString(string(buf[pos : pos+l])), pos + l, nil
	default:
		return Null, 0, fmt.Errorf("types: unknown datum kind %d", kind)
	}
}

// DecodeTuple parses one tuple from buf, returning the tuple and the number
// of bytes consumed.
func DecodeTuple(buf []byte) (Tuple, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("types: short tuple header (%d bytes)", len(buf))
	}
	n := int(binary.BigEndian.Uint32(buf[:4]))
	// Every datum takes at least its kind byte, so a valid arity is bounded
	// by the remaining bytes — reject corrupt headers before allocating.
	if n < 0 || n > len(buf)-4 {
		return nil, 0, fmt.Errorf("types: tuple arity %d exceeds %d remaining bytes", uint32(n), len(buf)-4)
	}
	pos := 4
	t := make(Tuple, n)
	for i := 0; i < n; i++ {
		if pos >= len(buf) {
			return nil, 0, fmt.Errorf("types: truncated tuple at datum %d", i)
		}
		d, sz, err := decodeDatum(buf[pos:])
		if err != nil {
			return nil, 0, err
		}
		t[i] = d
		pos += sz
	}
	return t, pos, nil
}

// String renders the tuple for debug output.
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, d := range t {
		parts[i] = d.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
