package types

import (
	"testing"
)

// FuzzDecodeTuple drives the tuple decoder with arbitrary bytes: corrupted
// headers and payloads must come back as errors — never a panic, an
// over-read past the buffer, or an absurd allocation from a corrupt arity.
func FuzzDecodeTuple(f *testing.F) {
	f.Add(NewTuple(NewInt(42), NewString("abc"), NewFloat(1.5), NewBool(true), Null).Encode(nil))
	f.Add(NewTuple().Encode(nil))
	f.Add([]byte{0, 0, 0, 1, 4, 0, 0, 0, 3, 'a', 'b', 'c'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		tup, n, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if n < 4 || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		// Whatever decoded must survive a re-encode/re-decode round trip
		// (encodings are not byte-canonical — any nonzero bool byte decodes
		// to true — so compare datums, not bytes).
		re := tup.Encode(nil)
		tup2, n2, err := DecodeTuple(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if n2 != len(re) || len(tup2) != len(tup) {
			t.Fatalf("re-decode consumed %d of %d bytes, arity %d want %d", n2, len(re), len(tup2), len(tup))
		}
		for i := range tup {
			if tup[i].Kind() != tup2[i].Kind() || tup[i].Compare(tup2[i]) != 0 {
				t.Fatalf("datum %d changed across round trip: %v != %v", i, tup[i], tup2[i])
			}
		}
	})
}
