package types

import (
	"fmt"
	"strings"

	"pyro/internal/sortord"
)

// Column describes one attribute of a relation: a name, a type, and a fixed
// average width in bytes used for block-count estimation. Width models the
// paper's "average tuple size" arithmetic; actual string datums may differ.
type Column struct {
	Name  string
	Kind  Kind
	Width int // average width in bytes for size estimation; 0 => default by kind
}

// DefaultWidth returns the estimation width for the column.
func (c Column) DefaultWidth() int {
	if c.Width > 0 {
		return c.Width
	}
	switch c.Kind {
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 16
	default:
		return 8
	}
}

// Schema is an ordered list of columns. Column names within a schema are
// unique; joins of relations with overlapping names must qualify columns
// (the workload generators use qualified names like "l_suppkey").
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. It panics on duplicate names:
// schemas are constructed by code, not user input, so a duplicate is a bug.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...), index: make(map[string]int, len(cols))}
	for i, c := range cols {
		if _, dup := s.index[c.Name]; dup {
			panic(fmt.Sprintf("types: duplicate column %q in schema", c.Name))
		}
		s.index[c.Name] = i
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// Names returns the column names in schema order.
func (s *Schema) Names() []string {
	out := make([]string, len(s.cols))
	for i, c := range s.cols {
		out[i] = c.Name
	}
	return out
}

// Ordinal returns the position of the named column and whether it exists.
func (s *Schema) Ordinal(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// MustOrdinal is Ordinal that panics on a missing column (programming error).
func (s *Schema) MustOrdinal(name string) int {
	i, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("types: column %q not in schema %v", name, s.Names()))
	}
	return i
}

// Has reports whether the named column exists.
func (s *Schema) Has(name string) bool {
	_, ok := s.index[name]
	return ok
}

// HasAll reports whether every attribute in the set exists in the schema.
func (s *Schema) HasAll(attrs sortord.AttrSet) bool {
	for a := range attrs {
		if !s.Has(a) {
			return false
		}
	}
	return true
}

// AttrSet returns the set of column names.
func (s *Schema) AttrSet() sortord.AttrSet {
	return sortord.NewAttrSet(s.Names()...)
}

// Project returns a new schema with just the named columns, in the given
// order. Missing names are a programming error and panic.
func (s *Schema) Project(names []string) *Schema {
	cols := make([]Column, len(names))
	for i, n := range names {
		cols[i] = s.cols[s.MustOrdinal(n)]
	}
	return NewSchema(cols...)
}

// Concat returns the schema of a join output: s's columns followed by t's.
func (s *Schema) Concat(t *Schema) *Schema {
	cols := make([]Column, 0, len(s.cols)+len(t.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, t.cols...)
	return NewSchema(cols...)
}

// AvgTupleWidth returns the total estimation width of one tuple in bytes.
func (s *Schema) AvgTupleWidth() int {
	w := 0
	for _, c := range s.cols {
		w += c.DefaultWidth()
	}
	if w == 0 {
		w = 1
	}
	return w
}

// String renders the schema for debug output.
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// KeySpec is a precomputed comparator for a sort order over a schema: the
// column ordinals to compare, most significant first, with their declared
// kinds (used by the keys package to build normalized-key codecs without
// re-resolving the schema).
type KeySpec struct {
	Ordinals []int
	Kinds    []Kind
	Order    sortord.Order
}

// MakeKeySpec resolves a sort order against a schema. It returns an error if
// any attribute is missing.
func MakeKeySpec(s *Schema, o sortord.Order) (KeySpec, error) {
	ks := KeySpec{Ordinals: make([]int, len(o)), Kinds: make([]Kind, len(o)), Order: o.Clone()}
	for i, a := range o {
		ord, ok := s.Ordinal(a)
		if !ok {
			return KeySpec{}, fmt.Errorf("types: sort attribute %q not in schema %v", a, s.Names())
		}
		ks.Ordinals[i] = ord
		ks.Kinds[i] = s.Col(ord).Kind
	}
	return ks, nil
}

// MustKeySpec is MakeKeySpec that panics on error.
func MustKeySpec(s *Schema, o sortord.Order) KeySpec {
	ks, err := MakeKeySpec(s, o)
	if err != nil {
		panic(err)
	}
	return ks
}

// Compare compares two tuples under the key spec. Comparisons counts are the
// caller's concern (the sort operators count calls).
func (ks KeySpec) Compare(a, b Tuple) int {
	for _, ord := range ks.Ordinals {
		if c := a[ord].Compare(b[ord]); c != 0 {
			return c
		}
	}
	return 0
}

// ComparePrefix compares only the first k key attributes.
func (ks KeySpec) ComparePrefix(a, b Tuple, k int) int {
	for _, ord := range ks.Ordinals[:k] {
		if c := a[ord].Compare(b[ord]); c != 0 {
			return c
		}
	}
	return 0
}

// CompareSuffix compares only the key attributes from position k on. MRS
// uses this within a partial-sort segment, where the first k attributes are
// equal by construction.
func (ks KeySpec) CompareSuffix(a, b Tuple, k int) int {
	for _, ord := range ks.Ordinals[k:] {
		if c := a[ord].Compare(b[ord]); c != 0 {
			return c
		}
	}
	return 0
}
