package core

import (
	"sort"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/sortord"
	"pyro/internal/types"
)

// buildFetchWorld: a wide clustered table with a narrow non-covering
// secondary index on a highly selective column.
func buildFetchWorld(t *testing.T, f *fixture, rows int64) *catalog.Table {
	t.Helper()
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "tag", Kind: types.KindInt},
		types.Column{Name: "payload", Kind: types.KindString, Width: 120},
		types.Column{Name: "extra", Kind: types.KindString, Width: 120},
	)
	data := make([]types.Tuple, rows)
	for i := int64(0); i < rows; i++ {
		data[i] = types.NewTuple(
			types.NewInt(i),
			types.NewInt(i%1000), // selective tag: ~rows/1000 per value
			types.NewString("payload-payload-payload-payload-payload-payload"),
			types.NewString("extra-extra-extra-extra-extra-extra-extra-extra"),
		)
	}
	tb, err := f.cat.CreateTable("wide", schema, sortord.New("id"), data)
	if err != nil {
		t.Fatal(err)
	}
	// Non-covering index: stores tag + the clustering key, not the payloads.
	if _, err := f.cat.CreateIndex("wide_tag", tb, sortord.New("tag"), []string{"id"}); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestDeferredFetchChosenForSelectivePredicate(t *testing.T) {
	f := newFixture(t)
	tb := buildFetchWorld(t, f, 20_000)
	sel := logical.NewSelect(logical.NewScan(tb), expr.Eq(expr.Col("tag"), expr.IntLit(7)))
	root := logical.NewOrderBy(sel, sortord.New("id"))
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	if res.Plan.CountKind(OpFetch) == 0 {
		t.Fatalf("selective predicate should use deferred fetch:\n%s", res.Plan.Format())
	}
	rows := execPlan(t, f, res.Plan)
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
	idOrd := res.Plan.Schema.MustOrdinal("id")
	tagOrd := res.Plan.Schema.MustOrdinal("tag")
	for i, r := range rows {
		if r[tagOrd].Int() != 7 {
			t.Fatalf("row %d has tag %v", i, r[tagOrd])
		}
		if i > 0 && rows[i-1][idOrd].Int() > r[idOrd].Int() {
			t.Fatal("ORDER BY id violated")
		}
		if r.MemSize() < 100 {
			t.Fatal("fetched rows must carry the full payload")
		}
	}
	// The deferred-fetch plan must be cheaper than even the bare heap scan
	// the table-scan alternative would start from.
	if res.Plan.Cost.Total >= float64(tb.NumBlocks()) {
		t.Fatalf("deferred fetch (%f) should beat a full scan (%d blocks)", res.Plan.Cost.Total, tb.NumBlocks())
	}
}

func TestDeferredFetchNotUsedForUnselectivePredicate(t *testing.T) {
	f := newFixture(t)
	tb := buildFetchWorld(t, f, 20_000)
	// tag >= 0 keeps everything: fetching every row one page at a time
	// must lose to a sequential scan.
	sel := logical.NewSelect(logical.NewScan(tb), expr.Compare(expr.GE, expr.Col("tag"), expr.IntLit(0)))
	res := mustOptimize(t, sel, DefaultOptions(HeuristicFavorable))
	if res.Plan.CountKind(OpFetch) != 0 {
		t.Fatalf("unselective predicate must not fetch row by row:\n%s", res.Plan.Format())
	}
}

func TestDeferredFetchSuppliesSortOrder(t *testing.T) {
	// §7's other benefit: the non-covering index supplies the (tag) order
	// cheaply when the query wants it.
	f := newFixture(t)
	tb := buildFetchWorld(t, f, 20_000)
	sel := logical.NewSelect(logical.NewScan(tb), expr.Compare(expr.LT, expr.Col("tag"), expr.IntLit(10)))
	root := logical.NewOrderBy(sel, sortord.New("tag"))
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	rows := execPlan(t, f, res.Plan)
	tagOrd := res.Plan.Schema.MustOrdinal("tag")
	for i := 1; i < len(rows); i++ {
		if rows[i-1][tagOrd].Compare(rows[i][tagOrd]) > 0 {
			t.Fatal("ORDER BY tag violated")
		}
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
}

func TestFetchMatchesTableScanResults(t *testing.T) {
	f := newFixture(t)
	tb := buildFetchWorld(t, f, 5_000)
	for tag := int64(0); tag < 5; tag++ {
		sel := logical.NewSelect(logical.NewScan(tb), expr.Eq(expr.Col("tag"), expr.IntLit(tag)))
		withFetch := mustOptimize(t, sel, DefaultOptions(HeuristicFavorable))
		got := canonicalize(execPlan(t, f, withFetch.Plan))

		// Reference: scan everything, filter in the test.
		scanAll := mustOptimize(t, logical.NewScan(tb), DefaultOptions(HeuristicArbitrary))
		var want []string
		for _, r := range execPlan(t, f, scanAll.Plan) {
			if !r[1].IsNull() && r[1].Int() == tag {
				want = append(want, string(r.Encode(nil)))
			}
		}
		sort.Strings(want)
		if len(got) != len(want) {
			t.Fatalf("tag %d: fetch plan %d rows, reference %d\n%s",
				tag, len(got), len(want), withFetch.Plan.Format())
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("tag %d: row %d differs", tag, i)
			}
		}
	}
}

func TestDeferredFetchRequiresUniqueClusteringKey(t *testing.T) {
	// With a non-unique clustering key, fetching by key would return
	// sibling rows the index-side filter never approved — the optimizer
	// must not generate the fetch plan.
	f := newFixture(t)
	schema := types.NewSchema(
		types.Column{Name: "k", Kind: types.KindInt},
		types.Column{Name: "v", Kind: types.KindInt},
		types.Column{Name: "pad", Kind: types.KindString, Width: 200},
	)
	var data []types.Tuple
	for k := int64(0); k < 20; k++ {
		for d := int64(0); d < 50; d++ {
			data = append(data, types.NewTuple(types.NewInt(k), types.NewInt(d),
				types.NewString("pad-pad-pad-pad-pad-pad-pad-pad-pad-pad-pad-pad")))
		}
	}
	tb, err := f.cat.CreateTable("dups", schema, sortord.New("k"), data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.cat.CreateIndex("dups_v", tb, sortord.New("v"), []string{"k"}); err != nil {
		t.Fatal(err)
	}
	sel := logical.NewSelect(logical.NewScan(tb), expr.Eq(expr.Col("v"), expr.IntLit(3)))
	res := mustOptimize(t, sel, DefaultOptions(HeuristicFavorable))
	if res.Plan.CountKind(OpFetch) != 0 {
		t.Fatalf("non-unique clustering key must disable deferred fetch:\n%s", res.Plan.Format())
	}
	rows := execPlan(t, f, res.Plan)
	vOrd := res.Plan.Schema.MustOrdinal("v")
	for _, r := range rows {
		if r[vOrd].Int() != 3 {
			t.Fatalf("non-matching row: %v", r)
		}
	}
	if len(rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rows))
	}
}
