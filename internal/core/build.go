package core

import (
	"fmt"

	"pyro/internal/exec"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/xsort"
)

// BuildConfig carries the execution resources for compiling a plan.
type BuildConfig struct {
	Disk *storage.Disk
	// SortMemoryBlocks is the per-sort memory budget (M).
	SortMemoryBlocks int
	// SortParallelism bounds concurrent MRS segment sorts per enforcer
	// (0 = GOMAXPROCS, 1 = serial).
	SortParallelism int
	// SortSpillParallelism bounds concurrent spill jobs (run formation and
	// run-reduction merges) per enforcer when a sort exceeds its memory
	// budget (0 = inherit SortParallelism, 1 = the paper's serial spill
	// path). Each enforcer spills into private storage arenas, so
	// enforcers in one plan never contend on spill state.
	SortSpillParallelism int
	// SortKeys selects normalized-key (default) or field-comparator key
	// comparison in the sort enforcers; the comparator path exists for
	// ablation.
	SortKeys xsort.KeyMode
	// SortAbort, when non-nil, is polled by the sort enforcers'
	// long-running loops (input consumption, segment collection, spill
	// merges); its first error aborts the enforcer, which surfaces it from
	// Open or Next. Streaming execution supplies the query context's Err
	// here so a cancellation reaches a sort that would otherwise block for
	// its entire input. Must be safe for concurrent use.
	SortAbort func() error
	// SortRunFormation selects how enforcers sort in-memory buffers:
	// MSD radix partitioning of the encoded keys, the comparison sort, or
	// adaptive (default — radix where it pays). Output key order, run/pass
	// structure and I/O totals are identical in every mode; see the xsort
	// package comment for the one caveat (SRS emission order of tuples
	// with duplicate full sort keys).
	SortRunFormation xsort.RunFormation
	// SortEntryLayout selects the spill-run representation: flat
	// fixed-width entry runs merged radix-aware (default), flat runs under
	// a comparison heap, or the legacy tuple-only format. Invisible in the
	// result rows; changes spill I/O shape and merge comparison counts.
	SortEntryLayout xsort.EntryLayout
	// IOTap, when non-nil, receives a copy of every I/O charge this plan's
	// operators cause — scans, deferred fetches, nested-loops spools, and
	// sort spill arenas all charge it alongside the device ledger. The
	// streaming cursor hands each query its own tap, so concurrent queries
	// on one Database get exact, disjoint I/O attribution instead of
	// overlapping windows over the shared device counters.
	IOTap *storage.Tap
	// SortBudget, when non-nil, is the query's live sort-memory allowance:
	// every sort enforcer re-reads it at its buffering decisions, so a
	// global governor can shrink a running query's memory and its sorts
	// spill at the new bound. SortMemoryBlocks still fixes the structural
	// decisions (merge fan-in) and should be set to the allowance's initial
	// value. Nil means the static SortMemoryBlocks budget.
	SortBudget xsort.Budget
	// ExecBatchSize is the chunk capacity of the vectorized executor:
	// chunk-capable operator subtrees move batches of up to this many rows
	// (exec.ChunkOperator), sort enforcers batch their input collection
	// (xsort.Config.BatchSize), and blocking consumers drain through the
	// row/chunk bridge. 0 picks types.DefaultChunkCapacity; 1 disables
	// batching entirely — every operator runs its legacy row path.
	ExecBatchSize int
}

// Build compiles a physical plan into an executable operator tree.
func Build(p *Plan, cfg BuildConfig) (exec.Operator, error) {
	if cfg.Disk == nil {
		return nil, fmt.Errorf("core: BuildConfig.Disk is nil")
	}
	if cfg.SortMemoryBlocks <= 0 {
		cfg.SortMemoryBlocks = 1000
	}
	if cfg.ExecBatchSize <= 0 {
		cfg.ExecBatchSize = types.DefaultChunkCapacity
	}
	root, err := build(p, cfg)
	if err != nil {
		return nil, err
	}
	// Sort enforcers receive the abort hook through xsort.Config.Abort;
	// every other operator whose tuple loops can outlive a Next call
	// (filters, joins, aggregates, dedup) polls the same hook through its
	// own strided guard.
	exec.InstallAbort(root, cfg.SortAbort)
	return root, nil
}

func build(p *Plan, cfg BuildConfig) (exec.Operator, error) {
	children := make([]exec.Operator, len(p.Children))
	for i, c := range p.Children {
		op, err := build(c, cfg)
		if err != nil {
			return nil, err
		}
		children[i] = op
	}
	xcfg := xsort.Config{
		Disk:             cfg.Disk,
		MemoryBlocks:     cfg.SortMemoryBlocks,
		Budget:           cfg.SortBudget,
		Parallelism:      cfg.SortParallelism,
		SpillParallelism: cfg.SortSpillParallelism,
		Keys:             cfg.SortKeys,
		RunFormation:     cfg.SortRunFormation,
		EntryLayout:      cfg.SortEntryLayout,
		Abort:            cfg.SortAbort,
		Tap:              cfg.IOTap,
		BatchSize:        cfg.ExecBatchSize,
	}

	switch p.Kind {
	case OpTableScan:
		scan := exec.NewTableScan(p.Table)
		scan.SetIOTap(cfg.IOTap)
		return scan, nil
	case OpIndexScan:
		scan := exec.NewIndexScan(p.Index)
		scan.SetIOTap(cfg.IOTap)
		return scan, nil
	case OpFilter:
		return exec.NewFilter(children[0], p.Pred)
	case OpProject:
		cols := make([]exec.ProjCol, len(p.Cols))
		for i, c := range p.Cols {
			cols[i] = exec.ProjCol{Name: c.Name, Expr: c.Expr}
		}
		return exec.NewProject(children[0], cols)
	case OpSort:
		if p.SortGiven.IsEmpty() {
			return exec.NewSortSRS(children[0], p.SortTarget, xcfg)
		}
		return exec.NewSortMRS(children[0], p.SortTarget, p.SortGiven, xcfg)
	case OpMergeJoin:
		return exec.NewMergeJoin(children[0], children[1], p.LeftKey, p.RightKey, p.JoinType)
	case OpHashJoin:
		hj, err := exec.NewHashJoin(children[0], children[1], p.LeftKeys, p.RightKeys, p.JoinType)
		if err != nil {
			return nil, err
		}
		hj.SetExecBatch(cfg.ExecBatchSize)
		return hj, nil
	case OpNLJoin:
		nl, err := exec.NewNLJoin(children[0], children[1], p.Pred, p.JoinType, cfg.Disk, cfg.SortMemoryBlocks)
		if err != nil {
			return nil, err
		}
		nl.SetIOTap(cfg.IOTap)
		return nl, nil
	case OpGroupAgg:
		ga, err := exec.NewGroupAggregate(children[0], p.GroupCols, p.Aggs)
		if err != nil {
			return nil, err
		}
		ga.SetExecBatch(cfg.ExecBatchSize)
		return ga, nil
	case OpHashAgg:
		ha, err := exec.NewHashAggregate(children[0], p.GroupCols, p.Aggs)
		if err != nil {
			return nil, err
		}
		ha.SetExecBatch(cfg.ExecBatchSize)
		return ha, nil
	case OpMergeUnion:
		return exec.NewMergeUnion(children[0], children[1], p.UnionOrder, p.DedupRows)
	case OpUnionAll:
		return exec.NewUnionAll(children[0], children[1])
	case OpDedup:
		return exec.NewDedup(children[0]), nil
	case OpLimit:
		if len(children) == 0 {
			// LIMIT 0: planned without a child (defined semantics — an
			// empty result at zero cost), compiled to an empty leaf so no
			// degenerate sort pipeline is ever built or opened.
			return exec.NewValues(p.Schema, nil)
		}
		return exec.NewLimit(children[0], p.LimitK)
	case OpFetch:
		fetch, err := exec.NewFetch(children[0], p.Table, p.FetchKeys)
		if err != nil {
			return nil, err
		}
		fetch.SetIOTap(cfg.IOTap)
		return fetch, nil
	default:
		return nil, fmt.Errorf("core: cannot build operator for %v", p.Kind)
	}
}
