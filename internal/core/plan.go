// Package core implements PYRO, the Volcano-style cost-based optimizer with
// the paper's extensions: partial-sort enforcers (§3.2), favorable-order
// driven interesting-order selection (§5.2.1, phase 1) and post-optimization
// plan refinement via the 2-approximate tree algorithm (§5.2.2, phase 2).
//
// The optimizer takes a logical tree (join order fixed, as in the paper),
// a heuristic variant (PYRO, PYRO-O⁻, PYRO-P, PYRO-O, PYRO-E) and a cost
// model, and produces a physical Plan annotated with guaranteed sort
// orders and estimated costs. Plans can be rendered for inspection and
// compiled to executable operator trees.
package core

import (
	"fmt"
	"strings"

	"pyro/internal/catalog"
	"pyro/internal/cost"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/ordersel"
	"pyro/internal/sortord"
	"pyro/internal/types"
)

// OpKind enumerates physical operators.
type OpKind uint8

// Physical operator kinds.
const (
	OpTableScan OpKind = iota
	OpIndexScan
	OpFilter
	OpProject
	OpSort
	OpMergeJoin
	OpHashJoin
	OpNLJoin
	OpGroupAgg
	OpHashAgg
	OpMergeUnion
	OpUnionAll
	OpDedup
	OpLimit
	OpFetch
)

func (k OpKind) String() string {
	switch k {
	case OpTableScan:
		return "TableScan"
	case OpIndexScan:
		return "CoveringIndexScan"
	case OpFilter:
		return "Filter"
	case OpProject:
		return "Project"
	case OpSort:
		return "Sort"
	case OpMergeJoin:
		return "MergeJoin"
	case OpHashJoin:
		return "HashJoin"
	case OpNLJoin:
		return "NestedLoopsJoin"
	case OpGroupAgg:
		return "GroupAggregate"
	case OpHashAgg:
		return "HashAggregate"
	case OpMergeUnion:
		return "MergeUnion"
	case OpUnionAll:
		return "UnionAll"
	case OpDedup:
		return "Dedup"
	case OpLimit:
		return "Limit"
	case OpFetch:
		return "Fetch"
	}
	return fmt.Sprintf("Op(%d)", uint8(k))
}

// Plan is a physical plan node. Cost is cumulative (node + inputs) and
// two-phase: Cost.Startup is the blocking work before this node's first
// output row, Cost.Total the full-drain cost (the scalar the pre-prefix
// model reported). OutOrder is the sort order the node guarantees on its
// output.
type Plan struct {
	Kind     OpKind
	Children []*Plan

	// Operator parameters (fields used depend on Kind).
	Table      *catalog.Table
	Index      *catalog.Index
	Pred       expr.Expr
	Cols       []logical.ProjCol
	SortTarget sortord.Order // OpSort: order to produce
	SortGiven  sortord.Order // OpSort: known input prefix (ε => full sort)
	LeftKey    sortord.Order // OpMergeJoin
	RightKey   sortord.Order // OpMergeJoin
	LeftKeys   []string      // OpHashJoin
	RightKeys  []string      // OpHashJoin
	JoinType   exec.JoinType
	GroupCols  []string
	Aggs       []exec.AggSpec
	UnionOrder sortord.Order // OpMergeUnion
	DedupRows  bool          // OpMergeUnion: duplicate-eliminating
	LimitK     int64         // OpLimit
	FetchKeys  []string      // OpFetch: child columns carrying the cluster key
	// SortSegments is the estimated partial-sort segment count D (OpSort
	// with a non-empty SortGiven). PrefixCost uses it to charge a Top-K
	// prefix exactly ⌈k·D/N⌉ segment sorts instead of the generic linear
	// interpolation.
	SortSegments int64

	// Derived annotations.
	Schema   *types.Schema
	OutOrder sortord.Order
	Rows     int64
	Blocks   int64
	Cost     cost.Cost
	// Logical links the plan node back to the logical node it implements
	// (nil for enforcers injected by the optimizer).
	Logical logical.Node
}

// LocalCost returns this node's own full-drain cost (cumulative minus
// children).
func (p *Plan) LocalCost() float64 {
	c := p.Cost.Total
	for _, ch := range p.Children {
		c -= ch.Cost.Total
	}
	return c
}

// PrefixCost estimates the cost of producing this node's first k output
// rows. For a partial-sort enforcer the estimate steps one segment sort at
// a time — ordersel.SegmentBudget(k, N, D) segment sorts plus the child
// prefix feeding them — which is the §3.1 pipelining benefit the two-phase
// model exists to price; every other node interpolates its cumulative
// Cost. PrefixCost(k ≥ Rows) equals Cost.Total, so unlimited plan
// comparisons are exactly the full-drain comparisons of the scalar model.
func (p *Plan) PrefixCost(k int64) float64 {
	if k <= 0 {
		return 0
	}
	if p.Rows > 0 && k >= p.Rows {
		return p.Cost.Total
	}
	if p.IsPartialSort() && p.SortSegments > 1 && len(p.Children) == 1 {
		child := p.Children[0]
		segs := ordersel.SegmentBudget(k, p.Rows, p.SortSegments)
		perSegRows := p.Rows / p.SortSegments
		if perSegRows < 1 {
			perSegRows = 1
		}
		inRows := segs * perSegRows
		if inRows > p.Rows {
			inRows = p.Rows
		}
		perSegCost := p.LocalCost() / float64(p.SortSegments)
		return child.PrefixCost(inRows) + float64(segs)*perSegCost
	}
	return p.Cost.Prefix(k)
}

// IsPartialSort reports whether p is a partial-sort enforcer.
func (p *Plan) IsPartialSort() bool {
	return p.Kind == OpSort && !p.SortGiven.IsEmpty()
}

// Walk visits the plan tree pre-order.
func (p *Plan) Walk(fn func(*Plan)) {
	fn(p)
	for _, c := range p.Children {
		c.Walk(fn)
	}
}

// CountKind returns the number of nodes of the given kind in the tree.
func (p *Plan) CountKind(k OpKind) int {
	n := 0
	p.Walk(func(q *Plan) {
		if q.Kind == k {
			n++
		}
	})
	return n
}

// describe renders the node's single-line summary.
func (p *Plan) describe() string {
	var b strings.Builder
	b.WriteString(p.Kind.String())
	switch p.Kind {
	case OpTableScan:
		fmt.Fprintf(&b, " %s", p.Table.Name)
	case OpIndexScan:
		fmt.Fprintf(&b, " %s.%s %v", p.Index.Table.Name, p.Index.Name, p.Index.KeyOrder)
	case OpFilter:
		fmt.Fprintf(&b, " [%s]", p.Pred)
	case OpProject:
		names := make([]string, len(p.Cols))
		for i, c := range p.Cols {
			names[i] = c.Name
		}
		fmt.Fprintf(&b, " [%s]", strings.Join(names, ", "))
	case OpSort:
		if p.IsPartialSort() {
			fmt.Fprintf(&b, "(partial) %v -> %v", p.SortGiven, p.SortTarget)
		} else {
			fmt.Fprintf(&b, " %v", p.SortTarget)
		}
	case OpMergeJoin:
		fmt.Fprintf(&b, "[%s] %v = %v", p.JoinType, p.LeftKey, p.RightKey)
	case OpHashJoin:
		fmt.Fprintf(&b, "[%s] %v = %v", p.JoinType, p.LeftKeys, p.RightKeys)
	case OpNLJoin:
		fmt.Fprintf(&b, "[%s]", p.JoinType)
		if p.Pred != nil {
			fmt.Fprintf(&b, " [%s]", p.Pred)
		}
	case OpGroupAgg, OpHashAgg:
		fmt.Fprintf(&b, " by (%s)", strings.Join(p.GroupCols, ", "))
	case OpMergeUnion:
		fmt.Fprintf(&b, " on %v dedup=%v", p.UnionOrder, p.DedupRows)
	case OpLimit:
		fmt.Fprintf(&b, " %d", p.LimitK)
	case OpFetch:
		fmt.Fprintf(&b, " %s via %v", p.Table.Name, p.FetchKeys)
	}
	return b.String()
}

// Format renders the plan tree with costs, cardinalities and orders — the
// representation used to reproduce the paper's plan figures (10, 11, 14).
// Both cost phases are printed: cost is the full-drain total, startup the
// blocking work before the node's first output row (a pipelined plan shows
// a startup far below its cost; a blocking plan shows them equal).
func (p *Plan) Format() string {
	var b strings.Builder
	var rec func(n *Plan, depth int)
	rec = func(n *Plan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s  (cost=%.0f startup=%.0f rows=%d", n.describe(), n.Cost.Total, n.Cost.Startup, n.Rows)
		if !n.OutOrder.IsEmpty() {
			fmt.Fprintf(&b, " order=%v", n.OutOrder)
		}
		b.WriteString(")\n")
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(p, 0)
	return b.String()
}

// Signature returns a compact structural fingerprint (operator kinds in
// pre-order), useful for asserting plan shapes in tests.
func (p *Plan) Signature() string {
	var parts []string
	p.Walk(func(q *Plan) {
		s := q.Kind.String()
		if q.IsPartialSort() {
			s = "PartialSort"
		}
		parts = append(parts, s)
	})
	return strings.Join(parts, ">")
}
