package core

import (
	"fmt"

	"pyro/internal/cost"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/ford"
	"pyro/internal/logical"
	"pyro/internal/sortord"
)

// Heuristic selects the interesting-order strategy for operators with
// flexible order requirements (merge join, sort aggregate, merge union,
// duplicate elimination). Names follow the paper's §6.2/§6.3 variants.
type Heuristic uint8

const (
	// HeuristicArbitrary is PYRO: one arbitrary permutation per operator,
	// no partial-sort exploitation — a baseline Volcano optimizer.
	HeuristicArbitrary Heuristic = iota
	// HeuristicFavorableExact is PYRO-O⁻: favorable orders drive the
	// choice but only exact matches count (no partial-sort enforcers).
	HeuristicFavorableExact
	// HeuristicPostgres is PYRO-P: for each of the n attributes, one order
	// beginning with that attribute (rest arbitrary); partial sort enabled.
	HeuristicPostgres
	// HeuristicFavorable is PYRO-O: the paper's proposal — interesting
	// orders from approximate minimal favorable orders, partial sort
	// enabled, phase-2 refinement.
	HeuristicFavorable
	// HeuristicExhaustive is PYRO-E: all n! permutations.
	HeuristicExhaustive
)

func (h Heuristic) String() string {
	switch h {
	case HeuristicArbitrary:
		return "PYRO"
	case HeuristicFavorableExact:
		return "PYRO-O-"
	case HeuristicPostgres:
		return "PYRO-P"
	case HeuristicFavorable:
		return "PYRO-O"
	case HeuristicExhaustive:
		return "PYRO-E"
	}
	return fmt.Sprintf("Heuristic(%d)", uint8(h))
}

// Options configures an optimization run.
type Options struct {
	Heuristic Heuristic
	Model     cost.Model
	// DisablePartialSort turns off partial-sort enforcers (set by default
	// for PYRO and PYRO-O⁻).
	DisablePartialSort bool
	// DisablePhase2 skips the §5.2.2 plan refinement.
	DisablePhase2 bool
	// DisableHashJoin / DisableMergeJoin / DisableHashAgg restrict the
	// physical algebra; used to force specific plan shapes when
	// reproducing the paper's comparison plans.
	DisableHashJoin  bool
	DisableMergeJoin bool
	DisableHashAgg   bool
	// RowTarget, when positive, optimizes for first-k consumption: plans
	// are compared by PrefixCost(RowTarget) — the cost of producing the
	// first RowTarget rows — instead of full-drain Total, and the row
	// budget is pushed down through order-preserving operators so deep
	// enforcer choices (partial sort vs full sort vs hash) see it too. A
	// Limit node in the query imposes its K the same way regardless of
	// this field. 0 (the default) prices full result production; since
	// PrefixCost(N) ≡ Cost.Total, unlimited plan choices are identical to
	// the scalar model's.
	RowTarget int64
}

// DefaultOptions returns the canonical configuration for a heuristic.
func DefaultOptions(h Heuristic) Options {
	o := Options{Heuristic: h, Model: cost.DefaultModel()}
	if h == HeuristicArbitrary || h == HeuristicFavorableExact {
		o.DisablePartialSort = true
	}
	if h != HeuristicFavorable {
		o.DisablePhase2 = true
	}
	return o
}

// Stats reports optimizer work for the scalability experiment (Fig 16).
type Stats struct {
	GoalsExplored   int
	PlansCosted     int
	OrdersTried     int
	Phase2Applied   bool
	Phase2Improved  bool
	Phase2FreeAttrs int
}

// Result is the outcome of an optimization run.
type Result struct {
	Plan  *Plan
	Stats Stats
}

// Optimizer carries the state of one optimization run.
type Optimizer struct {
	opts   Options
	fc     *ford.Computer
	memo   map[logical.Node]map[string]*Plan
	forced map[*logical.Join]sortord.Order
	stats  Stats
}

// Optimize plans the query rooted at root under the given options. A root
// OrderBy node becomes the required output order.
func Optimize(root logical.Node, opts Options) (*Result, error) {
	if opts.Model.PageSize == 0 {
		opts.Model = cost.DefaultModel()
	}
	opt := &Optimizer{
		opts:   opts,
		fc:     ford.NewComputer(root),
		memo:   make(map[logical.Node]map[string]*Plan),
		forced: make(map[*logical.Join]sortord.Order),
	}
	node, required := root, sortord.Empty
	if ob, ok := root.(*logical.OrderBy); ok {
		node, required = ob.Child, ob.Order
	}
	budget := opts.RowTarget
	if budget < 0 {
		budget = 0
	}
	plan, err := opt.bestPlan(node, required, budget)
	if err != nil {
		return nil, err
	}
	if !opts.DisablePhase2 {
		refined, err := opt.refine(node, required, plan, budget)
		if err != nil {
			return nil, err
		}
		opt.stats.Phase2Applied = true
		if refined != nil && opt.cheaper(refined, plan, budget) {
			opt.stats.Phase2Improved = true
			plan = refined
		}
	}
	return &Result{Plan: plan, Stats: opt.stats}, nil
}

// cheaper compares two plans under the active row budget: with a budget the
// first budget rows' cost decides (full-drain total breaks ties); without
// one the comparison is the scalar model's full-drain comparison, so
// unlimited plan choices are bit-identical to the pre-prefix optimizer.
func (opt *Optimizer) cheaper(a, b *Plan, budget int64) bool {
	if budget > 0 {
		pa, pb := a.PrefixCost(budget), b.PrefixCost(budget)
		if pa != pb {
			return pa < pb
		}
	}
	return a.Cost.Total < b.Cost.Total
}

// scaleBudget translates a row budget across an operator boundary: if the
// consumer stops after k of outRows output rows, the operator will have
// pulled about k·inRows/outRows of its child's inRows rows (uniformity, the
// same assumption Prefix interpolation makes). 0 propagates "no budget".
func scaleBudget(k, outRows, inRows int64) int64 {
	if k <= 0 {
		return 0
	}
	if outRows <= 0 || inRows <= 0 || k >= outRows {
		return inRows
	}
	scaled := (k*inRows + outRows - 1) / outRows
	if scaled < 1 {
		scaled = 1
	}
	if scaled > inRows {
		scaled = inRows
	}
	return scaled
}

// mergeSideBudget translates a row budget through one side of a merge join
// at key granularity instead of raw row ratio: a consumer that stops after
// k of the join's outRows rows has advanced past about k·D_out/outRows
// distinct join keys, and the side will have been pulled through that many
// of its own key groups — keys·sideRows/D_side rows. Under uniform per-key
// multiplicities this reduces to scaleBudget's row ratio; when the sides'
// multiplicities differ (one side near-unique, the other heavily
// duplicated — the correlated-key case) the row ratio over-budgets the
// duplicated side and starves the unique one, and the key-granularity
// split prices each side by what the merge actually consumes. Degenerate
// distinct or row estimates fall back to the row-ratio scaling.
func mergeSideBudget(k int64, props logical.Props, joinKey []string, side logical.Props, sideKey []string) int64 {
	if k <= 0 {
		return 0
	}
	dOut := props.DistinctOn(joinKey)
	dSide := side.DistinctOn(sideKey)
	if dOut <= 0 || dSide <= 0 || props.Rows <= 0 || side.Rows <= 0 {
		return scaleBudget(k, props.Rows, side.Rows)
	}
	if k >= props.Rows {
		return side.Rows
	}
	keys := (k*dOut + props.Rows - 1) / props.Rows
	if keys < 1 {
		keys = 1
	}
	rows := (keys*side.Rows + dSide - 1) / dSide
	if rows < 1 {
		rows = 1
	}
	if rows > side.Rows {
		rows = side.Rows
	}
	return rows
}

// blocksFor estimates B(e) for a plan node's actual schema width.
func (opt *Optimizer) blocksFor(rows int64, width int) int64 {
	if rows == 0 {
		return 0
	}
	if width <= 0 {
		width = 8
	}
	per := int64(opt.opts.Model.PageSize) / int64(width)
	if per <= 0 {
		per = 1
	}
	b := rows / per
	if rows%per != 0 || b == 0 {
		b++
	}
	return b
}

// bestPlan returns the cheapest plan for (n, required) under the row
// budget (0 = the consumer drains everything; k > 0 = the consumer stops
// after k rows, so candidates are compared by PrefixCost(k)); memoized on
// all three.
func (opt *Optimizer) bestPlan(n logical.Node, required sortord.Order, budget int64) (*Plan, error) {
	key := required.Key()
	if budget > 0 {
		key = fmt.Sprintf("%s#%d", key, budget)
	}
	if m, ok := opt.memo[n]; ok {
		if p, hit := m[key]; hit {
			return p, nil
		}
	} else {
		opt.memo[n] = make(map[string]*Plan)
	}
	opt.stats.GoalsExplored++

	var candidates []*Plan
	var canon func(sortord.Order) sortord.Order
	var err error
	switch t := n.(type) {
	case *logical.Scan:
		candidates, err = opt.scanCandidates(t)
	case *logical.Select:
		candidates, err = opt.selectCandidates(t, required, budget)
	case *logical.Project:
		candidates, err = opt.projectCandidates(t, required, budget)
	case *logical.Join:
		candidates, err = opt.joinCandidates(t, required, budget)
		canon = t.CanonicalizeOrder
	case *logical.GroupBy:
		candidates, err = opt.groupByCandidates(t, required, budget)
	case *logical.Distinct:
		candidates, err = opt.distinctCandidates(t, required, budget)
	case *logical.Union:
		candidates, err = opt.unionCandidates(t, required, budget)
	case *logical.Limit:
		candidates, err = opt.limitCandidates(t, required, budget)
	case *logical.OrderBy:
		// Nested order-by: optimize the child for the combined order.
		child, cerr := opt.bestPlan(t.Child, t.Order, budget)
		if cerr != nil {
			return nil, cerr
		}
		candidates, err = []*Plan{child}, nil
	default:
		return nil, fmt.Errorf("core: unknown logical node %T", n)
	}
	if err != nil {
		return nil, err
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("core: no physical plan for %T", n)
	}

	var best *Plan
	props := n.Props()
	for _, cand := range candidates {
		opt.stats.PlansCosted++
		final := opt.enforce(cand, required, props, canon)
		if best == nil || opt.cheaper(final, best, budget) {
			best = final
		}
	}
	opt.memo[n][key] = best
	return best, nil
}

// limitCandidates plans a LIMIT K node. Limit preserves order, so the
// requirement passes through; the child is planned under a row budget of K
// (tightened by any enclosing budget) and the node's full-drain cost is the
// child's K-prefix cost — execution stops pulling and closes the child at K
// (exec.Limit), so the child work beyond the first K rows is never
// performed. K = 0 has defined semantics: an empty result at zero cost,
// planned without a child so no degenerate sort is ever built (the executor
// compiles it to an empty Values leaf).
func (opt *Optimizer) limitCandidates(t *logical.Limit, required sortord.Order, budget int64) ([]*Plan, error) {
	rows := t.Props().Rows
	if t.K == 0 {
		return []*Plan{{
			Kind:     OpLimit,
			LimitK:   0,
			Schema:   t.Schema(),
			OutOrder: required.Clone(),
			Rows:     0,
			Blocks:   0,
			Cost:     cost.Cost{},
			Logical:  t,
		}}, nil
	}
	childBudget := t.K
	if budget > 0 && budget < childBudget {
		childBudget = budget
	}
	child, err := opt.bestPlan(t.Child, required, childBudget)
	if err != nil {
		return nil, err
	}
	// The child's Startup field interpolates linearly while PrefixCost
	// steps partial sorts one segment at a time, so at tiny K the stepped
	// total can undercut the interpolated startup; clamp to preserve the
	// Startup ≤ Total invariant ancestors' Prefix interpolation relies on.
	total := child.PrefixCost(t.K)
	startup := child.Cost.Startup
	if startup > total {
		startup = total
	}
	return []*Plan{{
		Kind:     OpLimit,
		Children: []*Plan{child},
		LimitK:   t.K,
		Schema:   child.Schema,
		OutOrder: child.OutOrder,
		Rows:     rows,
		Blocks:   opt.blocksFor(rows, child.Schema.AvgTupleWidth()),
		Cost: cost.Cost{
			Startup: startup,
			Total:   total,
			Rows:    rows,
		},
		Logical: t,
	}}, nil
}

// enforce adds a (partial) sort on top of plan if it does not already
// guarantee required. canon, when non-nil, maps equivalent column names
// (both sides of an equijoin) to a canonical spelling before comparison.
//
// Cost composition is where the two phases diverge: a full sort (SRS)
// blocks on its child's entire drain plus its own startup, while a partial
// sort (MRS) needs only the first segment's worth of input and one segment
// sort before emitting — the child's prefix cost for N/D rows. Totals
// compose exactly as the scalar model did.
func (opt *Optimizer) enforce(plan *Plan, required sortord.Order, props logical.Props, canon func(sortord.Order) sortord.Order) *Plan {
	if required.IsEmpty() {
		return plan
	}
	reqC, provC := required, plan.OutOrder
	if canon != nil {
		reqC, provC = canon(required), canon(plan.OutOrder)
	}
	if reqC.PrefixOf(provC) {
		return plan
	}
	prefix := sortord.LCP(reqC, provC)
	if opt.opts.DisablePartialSort {
		prefix = sortord.Empty
	}
	segments := int64(1)
	if !prefix.IsEmpty() {
		segments = props.DistinctOn(prefix)
		if segments < 1 {
			segments = 1
		}
	}
	sortCost := opt.opts.Model.PartialSort(plan.Rows, plan.Blocks, segments, required.Len()-prefix.Len())
	given := required[:prefix.Len()].Clone()
	var startup float64
	var sortSegments int64
	if !given.IsEmpty() && segments > 1 {
		// Partial sort: pipelined. First row after one segment of input and
		// one segment sort.
		perSegRows := plan.Rows / segments
		if perSegRows < 1 {
			perSegRows = 1
		}
		startup = plan.Cost.Prefix(perSegRows) + sortCost.Startup
		sortSegments = segments
	} else {
		// Full sort (or a single-segment partial sort, which degenerates to
		// one full sort of everything): the whole input is consumed before
		// the first row, then the sort's own blocking phase runs (an
		// external sort still streams its final merge read).
		startup = plan.Cost.Total + opt.opts.Model.FullSort(plan.Rows, plan.Blocks).Startup
	}
	return &Plan{
		Kind:         OpSort,
		Children:     []*Plan{plan},
		SortTarget:   required.Clone(),
		SortGiven:    given,
		SortSegments: sortSegments,
		Schema:       plan.Schema,
		OutOrder:     required.Clone(),
		Rows:         plan.Rows,
		Blocks:       plan.Blocks,
		Cost: cost.Cost{
			Startup: startup,
			Total:   plan.Cost.Total + sortCost.Total,
			Rows:    plan.Rows,
		},
	}
}

func (opt *Optimizer) scanCandidates(s *logical.Scan) ([]*Plan, error) {
	t := s.Table
	plans := []*Plan{{
		Kind:     OpTableScan,
		Table:    t,
		Schema:   t.Schema,
		OutOrder: t.ClusterOrder.Clone(),
		Rows:     t.Stats.NumRows,
		Blocks:   t.NumBlocks(),
		Cost:     cost.Streaming(opt.opts.Model.ScanIO(t.NumBlocks()), t.Stats.NumRows),
		Logical:  s,
	}}
	need := opt.fc.NeededAttrs(t)
	for _, ix := range t.Indices {
		if !ix.Covers(need) {
			continue
		}
		plans = append(plans, &Plan{
			Kind:     OpIndexScan,
			Index:    ix,
			Schema:   ix.Schema(),
			OutOrder: ix.KeyOrder.Clone(),
			Rows:     t.Stats.NumRows,
			Blocks:   ix.NumBlocks(),
			Cost:     cost.Streaming(opt.opts.Model.ScanIO(ix.NumBlocks()), t.Stats.NumRows),
			Logical:  s,
		})
	}
	return plans, nil
}

func (opt *Optimizer) selectCandidates(s *logical.Select, required sortord.Order, budget int64) ([]*Plan, error) {
	props := s.Props()
	// A filter streams: the budget scales up by the inverse selectivity (k
	// output rows require ~k·in/out input rows).
	childBudget := scaleBudget(budget, props.Rows, s.Child.Props().Rows)
	mk := func(child *Plan) *Plan {
		return &Plan{
			Kind:     OpFilter,
			Children: []*Plan{child},
			Pred:     s.Pred,
			Schema:   child.Schema,
			OutOrder: child.OutOrder,
			Rows:     props.Rows,
			Blocks:   opt.blocksFor(props.Rows, child.Schema.AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: child.Cost.Startup,
				Total:   child.Cost.Total + opt.opts.Model.FilterCPU(child.Rows),
				Rows:    props.Rows,
			},
			Logical: s,
		}
	}
	var plans []*Plan
	// Push the requirement below the filter (order-preserving)…
	if !required.IsEmpty() && s.Child.Schema().HasAll(required.Attrs()) {
		child, err := opt.bestPlan(s.Child, required, childBudget)
		if err != nil {
			return nil, err
		}
		plans = append(plans, mk(child))
	}
	// …or filter first and sort the (smaller) result above.
	child, err := opt.bestPlan(s.Child, sortord.Empty, childBudget)
	if err != nil {
		return nil, err
	}
	plans = append(plans, mk(child))

	// Deferred fetch (§7): filter cheap non-covering index entries first,
	// then fetch full heap rows only for survivors. Competitive when the
	// predicate is selective or when the index's key order is wanted.
	plans = append(plans, opt.deferredFetchCandidates(s, props)...)
	return plans, nil
}

// deferredFetchCandidates builds Fetch(Filter(IndexScan)) plans for every
// non-covering secondary index that stores the predicate columns and the
// table's clustering key.
func (opt *Optimizer) deferredFetchCandidates(s *logical.Select, props logical.Props) []*Plan {
	scan, ok := s.Child.(*logical.Scan)
	if !ok {
		return nil
	}
	t := scan.Table
	if t.ClusterOrder.IsEmpty() || !t.HasPageDirectory() {
		return nil
	}
	// The clustering key must be a verified unique key: otherwise a fetch
	// by key would pull back sibling heap rows the index-side filter never
	// approved.
	if len(t.Stats.KeyCols) != t.ClusterOrder.Len() {
		return nil
	}
	needed := opt.fc.NeededAttrs(t)
	predCols := expr.Columns(s.Pred)
	keyCols := t.ClusterOrder.Attrs()
	var plans []*Plan
	for _, ix := range t.Indices {
		stored := ix.StoredAttrs()
		if ix.Covers(needed) {
			continue // covering index: the plain index-scan path handles it
		}
		if !stored.ContainsAll(predCols) || !stored.ContainsAll(keyCols) {
			continue
		}
		iscan := &Plan{
			Kind:     OpIndexScan,
			Index:    ix,
			Schema:   ix.Schema(),
			OutOrder: ix.KeyOrder.Clone(),
			Rows:     t.Stats.NumRows,
			Blocks:   ix.NumBlocks(),
			Cost:     cost.Streaming(opt.opts.Model.ScanIO(ix.NumBlocks()), t.Stats.NumRows),
			Logical:  scan,
		}
		flt := &Plan{
			Kind:     OpFilter,
			Children: []*Plan{iscan},
			Pred:     s.Pred,
			Schema:   ix.Schema(),
			OutOrder: iscan.OutOrder,
			Rows:     props.Rows,
			Blocks:   opt.blocksFor(props.Rows, ix.Schema().AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: iscan.Cost.Startup,
				Total:   iscan.Cost.Total + opt.opts.Model.FilterCPU(iscan.Rows),
				Rows:    props.Rows,
			},
			Logical: s,
		}
		// The fetch preserves the child's order only while the looked-up
		// rows come back in child order — they do, one lookup per tuple.
		plans = append(plans, &Plan{
			Kind:      OpFetch,
			Children:  []*Plan{flt},
			Table:     t,
			FetchKeys: append([]string(nil), t.ClusterOrder...),
			Schema:    t.Schema,
			OutOrder:  flt.OutOrder,
			Rows:      props.Rows,
			Blocks:    opt.blocksFor(props.Rows, t.Schema.AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: flt.Cost.Startup,
				Total:   flt.Cost.Total + opt.opts.Model.FetchCost(props.Rows),
				Rows:    props.Rows,
			},
			Logical: s,
		})
	}
	return plans
}

func (opt *Optimizer) projectCandidates(p *logical.Project, required sortord.Order, budget int64) ([]*Plan, error) {
	props := p.Props()
	// Output name -> source child column for plain references.
	toChild := make(map[string]string)
	fromChild := make(map[string]string)
	for _, c := range p.Cols {
		if ref, ok := c.Expr.(expr.ColRef); ok {
			toChild[c.Name] = ref.Name
			if _, taken := fromChild[ref.Name]; !taken {
				fromChild[ref.Name] = c.Name
			}
		}
	}
	mk := func(child *Plan) *Plan {
		// Output order: child order mapped through the projection until the
		// first dropped or computed column.
		var out sortord.Order
		for _, a := range child.OutOrder {
			name, ok := fromChild[a]
			if !ok {
				break
			}
			out = append(out, name)
		}
		return &Plan{
			Kind:     OpProject,
			Children: []*Plan{child},
			Cols:     p.Cols,
			Schema:   p.Schema(),
			OutOrder: out,
			Rows:     props.Rows,
			Blocks:   opt.blocksFor(props.Rows, p.Schema().AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: child.Cost.Startup,
				Total:   child.Cost.Total + opt.opts.Model.ProjectCPU(child.Rows),
				Rows:    props.Rows,
			},
			Logical: p,
		}
	}
	// Projection preserves cardinality: the budget passes through intact.
	var plans []*Plan
	if !required.IsEmpty() {
		// Translate the requirement through the projection if possible.
		translated := make(sortord.Order, 0, len(required))
		ok := true
		for _, a := range required {
			src, found := toChild[a]
			if !found {
				ok = false
				break
			}
			translated = append(translated, src)
		}
		if ok && p.Child.Schema().HasAll(translated.Attrs()) {
			child, err := opt.bestPlan(p.Child, translated, budget)
			if err != nil {
				return nil, err
			}
			plans = append(plans, mk(child))
		}
	}
	child, err := opt.bestPlan(p.Child, sortord.Empty, budget)
	if err != nil {
		return nil, err
	}
	plans = append(plans, mk(child))
	return plans, nil
}

// interestingOrders generates the candidate permutations of attrs for a
// flexible-order operator under the active heuristic.
func (opt *Optimizer) interestingOrders(attrs sortord.AttrSet, inputAFMs [][]sortord.Order, reqRestricted sortord.Order) []sortord.Order {
	var orders []sortord.Order
	switch opt.opts.Heuristic {
	case HeuristicArbitrary:
		orders = []sortord.Order{sortord.APermute(attrs)}
	case HeuristicPostgres:
		for _, a := range attrs.Sorted() {
			rest := attrs.Clone()
			delete(rest, a)
			orders = append(orders, sortord.Concat(sortord.New(a), sortord.APermute(rest)))
		}
	case HeuristicFavorable, HeuristicFavorableExact:
		orders = ford.InterestingOrders(inputAFMs, attrs, reqRestricted)
	case HeuristicExhaustive:
		orders = sortord.Permutations(attrs)
	}
	if len(orders) == 0 {
		orders = []sortord.Order{sortord.APermute(attrs)}
	}
	opt.stats.OrdersTried += len(orders)
	return orders
}

func (opt *Optimizer) joinCandidates(j *logical.Join, required sortord.Order, budget int64) ([]*Plan, error) {
	props := j.Props()
	var plans []*Plan

	if len(j.EquiPairs) == 0 {
		// Non-equijoin: block nested loops only. The inner is spooled and
		// rescanned regardless of how few rows the consumer takes, so no
		// budget reaches the children.
		lp, err := opt.bestPlan(j.Left, sortord.Empty, 0)
		if err != nil {
			return nil, err
		}
		rp, err := opt.bestPlan(j.Right, sortord.Empty, 0)
		if err != nil {
			return nil, err
		}
		out := sortord.Empty
		if lp.Blocks <= opt.opts.Model.MemoryBlocks {
			out = lp.OutOrder // one outer block: order propagates
		}
		nl := opt.opts.Model.NLJoinCost(lp.Blocks, rp.Blocks)
		return []*Plan{{
			Kind:     OpNLJoin,
			Children: []*Plan{lp, rp},
			Pred:     j.Pred,
			JoinType: j.Type,
			Schema:   lp.Schema.Concat(rp.Schema),
			OutOrder: out,
			Rows:     props.Rows,
			Blocks:   opt.blocksFor(props.Rows, lp.Schema.AvgTupleWidth()+rp.Schema.AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: lp.Cost.Startup + rp.Cost.Total + nl.Startup,
				Total:   lp.Cost.Total + rp.Cost.Total + nl.Total,
				Rows:    props.Rows,
			},
			Logical: j,
		}}, nil
	}

	sLeft := j.JoinAttrSetLeft()
	reqS := j.CanonicalizeOrder(required).LongestPrefixIn(sLeft)

	if !opt.opts.DisableMergeJoin {
		var perms []sortord.Order
		if forced, ok := opt.forced[j]; ok {
			perms = []sortord.Order{forced}
		} else {
			afms := [][]sortord.Order{opt.fc.AFM(j.Left), opt.canonAFM(j, opt.fc.AFM(j.Right))}
			perms = opt.interestingOrders(sLeft, afms, reqS)
		}
		for _, p := range perms {
			mj, err := opt.mergeJoinPlan(j, p, props, budget)
			if err != nil {
				return nil, err
			}
			plans = append(plans, mj)
		}
	}

	if !opt.opts.DisableHashJoin && j.Type != exec.FullOuterJoin {
		// The probe side streams (budget scales through); the build side is
		// drained during startup no matter what the consumer does.
		lp, err := opt.bestPlan(j.Left, sortord.Empty, scaleBudget(budget, props.Rows, j.Left.Props().Rows))
		if err != nil {
			return nil, err
		}
		rp, err := opt.bestPlan(j.Right, sortord.Empty, 0)
		if err != nil {
			return nil, err
		}
		leftKeys := make([]string, len(j.EquiPairs))
		rightKeys := make([]string, len(j.EquiPairs))
		for i, pr := range j.EquiPairs {
			leftKeys[i], rightKeys[i] = pr.Left, pr.Right
		}
		hc := opt.opts.Model.HashJoinCost(lp.Rows, rp.Rows, lp.Blocks, rp.Blocks)
		hj := &Plan{
			Kind:      OpHashJoin,
			Children:  []*Plan{lp, rp},
			LeftKeys:  leftKeys,
			RightKeys: rightKeys,
			JoinType:  j.Type,
			Schema:    lp.Schema.Concat(rp.Schema),
			OutOrder:  sortord.Empty,
			Rows:      props.Rows,
			Blocks:    opt.blocksFor(props.Rows, lp.Schema.AvgTupleWidth()+rp.Schema.AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: lp.Cost.Startup + rp.Cost.Total + hc.Startup,
				Total:   lp.Cost.Total + rp.Cost.Total + hc.Total,
				Rows:    props.Rows,
			},
			Logical: j,
		}
		plans = append(plans, opt.wrapResidual(j, hj, props))
	}
	if len(plans) == 0 {
		return nil, fmt.Errorf("core: join %v has no admissible physical operator", j.Pred)
	}
	return plans, nil
}

// mergeJoinPlan builds one merge-join candidate for permutation p (left
// names), wrapping residual predicates in a Filter. A merge join streams
// both inputs, so the budget scales through to each side — split at join
// key granularity (mergeSideBudget), so sides with asymmetric per-key
// multiplicities are each budgeted by what the merge actually pulls.
func (opt *Optimizer) mergeJoinPlan(j *logical.Join, p sortord.Order, props logical.Props, budget int64) (*Plan, error) {
	rightKey := make(sortord.Order, len(p))
	for i, a := range p {
		r, ok := j.RightName(a)
		if !ok {
			return nil, fmt.Errorf("core: join permutation %v has non-join attribute %q", p, a)
		}
		rightKey[i] = r
	}
	lp, err := opt.bestPlan(j.Left, p, mergeSideBudget(budget, props, p, j.Left.Props(), p))
	if err != nil {
		return nil, err
	}
	rp, err := opt.bestPlan(j.Right, rightKey, mergeSideBudget(budget, props, p, j.Right.Props(), rightKey))
	if err != nil {
		return nil, err
	}
	mj := &Plan{
		Kind:     OpMergeJoin,
		Children: []*Plan{lp, rp},
		LeftKey:  p.Clone(),
		RightKey: rightKey,
		JoinType: j.Type,
		Schema:   lp.Schema.Concat(rp.Schema),
		OutOrder: p.Clone(),
		Rows:     props.Rows,
		Blocks:   opt.blocksFor(props.Rows, lp.Schema.AvgTupleWidth()+rp.Schema.AvgTupleWidth()),
		Cost: cost.Cost{
			Startup: lp.Cost.Startup + rp.Cost.Startup,
			Total:   lp.Cost.Total + rp.Cost.Total + opt.opts.Model.MergeJoinCPU(lp.Rows, rp.Rows),
			Rows:    props.Rows,
		},
		Logical: j,
	}
	return opt.wrapResidual(j, mj, props), nil
}

// wrapResidual applies non-equi conjuncts above a join.
func (opt *Optimizer) wrapResidual(j *logical.Join, plan *Plan, props logical.Props) *Plan {
	if len(j.Residual) == 0 {
		return plan
	}
	pred := expr.AndOf(j.Residual...)
	return &Plan{
		Kind:     OpFilter,
		Children: []*Plan{plan},
		Pred:     pred,
		Schema:   plan.Schema,
		OutOrder: plan.OutOrder,
		Rows:     props.Rows,
		Blocks:   plan.Blocks,
		Cost: cost.Cost{
			Startup: plan.Cost.Startup,
			Total:   plan.Cost.Total + opt.opts.Model.FilterCPU(plan.Rows),
			Rows:    props.Rows,
		},
		Logical: j,
	}
}

// canonAFM maps right-input favorable orders into left-side names through
// the join's equi pairs (non-join attributes pass through).
func (opt *Optimizer) canonAFM(j *logical.Join, orders []sortord.Order) []sortord.Order {
	out := make([]sortord.Order, len(orders))
	for i, o := range orders {
		out[i] = j.CanonicalizeOrder(o)
	}
	return out
}

// determiningSubset shrinks the grouping column set using the exact
// functional dependencies carried in the child's properties: a column is
// redundant if the remaining columns determine it (the paper's Query 3
// relies on {ps_partkey, ps_suppkey} → ps_availqty to aggregate on a
// (suppkey, partkey) stream). Only verified FDs participate — estimated
// distinct counts saturate at the row count and would fabricate false
// dependencies, splitting groups at execution time.
func (opt *Optimizer) determiningSubset(child logical.Node, groupCols []string) []string {
	props := child.Props()
	kept := append([]string(nil), groupCols...)
	for i := 0; i < len(kept); {
		trial := append(append([]string(nil), kept[:i]...), kept[i+1:]...)
		if len(trial) > 0 &&
			logical.Determines(sortord.NewAttrSet(trial...), sortord.NewAttrSet(kept[i]), props.FDs) {
			kept = trial
			continue
		}
		i++
	}
	return kept
}

func (opt *Optimizer) groupByCandidates(g *logical.GroupBy, required sortord.Order, budget int64) ([]*Plan, error) {
	props := g.Props()
	var plans []*Plan

	// A streaming aggregate over sorted input emits a group as soon as its
	// last input row passes: the budget scales through by the group size.
	// Hash aggregation drains its child before the first group exists.
	streamBudget := scaleBudget(budget, props.Rows, g.Child.Props().Rows)
	det := opt.determiningSubset(g.Child, g.GroupCols)
	attrs := sortord.NewAttrSet(det...)
	reqRestricted := required.LongestPrefixIn(attrs)
	afms := [][]sortord.Order{opt.fc.AFM(g.Child)}
	for _, p := range opt.interestingOrders(attrs, afms, reqRestricted) {
		child, err := opt.bestPlan(g.Child, p, streamBudget)
		if err != nil {
			return nil, err
		}
		// Output keeps the group columns, so the input order (over group
		// columns only) survives aggregation.
		plans = append(plans, &Plan{
			Kind:      OpGroupAgg,
			Children:  []*Plan{child},
			GroupCols: g.GroupCols,
			Aggs:      g.Aggs,
			Schema:    g.Schema(),
			OutOrder:  p.Clone(),
			Rows:      props.Rows,
			Blocks:    opt.blocksFor(props.Rows, g.Schema().AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: child.Cost.Startup,
				Total:   child.Cost.Total + opt.opts.Model.GroupAggCPU(child.Rows),
				Rows:    props.Rows,
			},
			Logical: g,
		})
	}

	if !opt.opts.DisableHashAgg {
		child, err := opt.bestPlan(g.Child, sortord.Empty, 0)
		if err != nil {
			return nil, err
		}
		outBlocks := opt.blocksFor(props.Rows, g.Schema().AvgTupleWidth())
		ha := opt.opts.Model.HashAggCost(child.Rows, outBlocks)
		plans = append(plans, &Plan{
			Kind:      OpHashAgg,
			Children:  []*Plan{child},
			GroupCols: g.GroupCols,
			Aggs:      g.Aggs,
			Schema:    g.Schema(),
			OutOrder:  sortord.Empty,
			Rows:      props.Rows,
			Blocks:    outBlocks,
			Cost: cost.Cost{
				Startup: child.Cost.Total + ha.Total,
				Total:   child.Cost.Total + ha.Total,
				Rows:    props.Rows,
			},
			Logical: g,
		})
	}
	return plans, nil
}

func (opt *Optimizer) distinctCandidates(d *logical.Distinct, required sortord.Order, budget int64) ([]*Plan, error) {
	props := d.Props()
	attrs := d.Child.Schema().AttrSet()
	reqRestricted := required.LongestPrefixIn(attrs)
	afms := [][]sortord.Order{opt.fc.AFM(d.Child)}
	streamBudget := scaleBudget(budget, props.Rows, d.Child.Props().Rows)
	var plans []*Plan
	for _, p := range opt.interestingOrders(attrs, afms, reqRestricted) {
		child, err := opt.bestPlan(d.Child, p, streamBudget)
		if err != nil {
			return nil, err
		}
		plans = append(plans, &Plan{
			Kind:     OpDedup,
			Children: []*Plan{child},
			Schema:   d.Schema(),
			OutOrder: p.Clone(),
			Rows:     props.Rows,
			Blocks:   opt.blocksFor(props.Rows, d.Schema().AvgTupleWidth()),
			Cost: cost.Cost{
				Startup: child.Cost.Startup,
				Total:   child.Cost.Total + opt.opts.Model.GroupAggCPU(child.Rows),
				Rows:    props.Rows,
			},
			Logical: d,
		})
	}
	if !opt.opts.DisableHashAgg {
		child, err := opt.bestPlan(d.Child, sortord.Empty, 0)
		if err != nil {
			return nil, err
		}
		outBlocks := opt.blocksFor(props.Rows, d.Schema().AvgTupleWidth())
		ha := opt.opts.Model.HashAggCost(child.Rows, outBlocks)
		plans = append(plans, &Plan{
			Kind:      OpHashAgg,
			Children:  []*Plan{child},
			GroupCols: d.Child.Schema().Names(),
			Schema:    d.Schema(),
			OutOrder:  sortord.Empty,
			Rows:      props.Rows,
			Blocks:    outBlocks,
			Cost: cost.Cost{
				Startup: child.Cost.Total + ha.Total,
				Total:   child.Cost.Total + ha.Total,
				Rows:    props.Rows,
			},
			Logical: d,
		})
	}
	return plans, nil
}

func (opt *Optimizer) unionCandidates(u *logical.Union, required sortord.Order, budget int64) ([]*Plan, error) {
	props := u.Props()
	var plans []*Plan
	attrs := u.Left.Schema().AttrSet()

	// Both union forms stream their inputs; the budget scales through by
	// each side's share of the output.
	lBudget := scaleBudget(budget, props.Rows, u.Left.Props().Rows)
	rBudget := scaleBudget(budget, props.Rows, u.Right.Props().Rows)

	// Merge union: both inputs sorted on the same permutation — the
	// coordinated choice SYS2 lacked in Experiment B2.
	if u.Dedup || !required.IsEmpty() {
		reqRestricted := required.LongestPrefixIn(attrs)
		afms := [][]sortord.Order{opt.fc.AFM(u.Left), opt.translateRightUnion(u, opt.fc.AFM(u.Right))}
		for _, p := range opt.interestingOrders(attrs, afms, reqRestricted) {
			lp, err := opt.bestPlan(u.Left, p, lBudget)
			if err != nil {
				return nil, err
			}
			rightOrder := opt.rightUnionOrder(u, p)
			rp, err := opt.bestPlan(u.Right, rightOrder, rBudget)
			if err != nil {
				return nil, err
			}
			plans = append(plans, &Plan{
				Kind:       OpMergeUnion,
				Children:   []*Plan{lp, rp},
				UnionOrder: p.Clone(),
				DedupRows:  u.Dedup,
				Schema:     u.Schema(),
				OutOrder:   p.Clone(),
				Rows:       props.Rows,
				Blocks:     opt.blocksFor(props.Rows, u.Schema().AvgTupleWidth()),
				Cost: cost.Cost{
					Startup: lp.Cost.Startup + rp.Cost.Startup,
					Total:   lp.Cost.Total + rp.Cost.Total + opt.opts.Model.MergeUnionCPU(lp.Rows+rp.Rows),
					Rows:    props.Rows,
				},
				Logical: u,
			})
		}
	}
	if !u.Dedup {
		// UNION ALL emits the left stream to exhaustion before touching
		// the right, so the first budget rows come entirely from the left;
		// the right serves only whatever remains past the left's rows.
		allLeft := budget
		var allRight int64
		if budget > 0 {
			if lr := u.Left.Props().Rows; budget > lr {
				allRight = budget - lr
			}
		}
		lp, err := opt.bestPlan(u.Left, sortord.Empty, allLeft)
		if err != nil {
			return nil, err
		}
		rp, err := opt.bestPlan(u.Right, sortord.Empty, allRight)
		if err != nil {
			return nil, err
		}
		plans = append(plans, &Plan{
			Kind:     OpUnionAll,
			Children: []*Plan{lp, rp},
			Schema:   u.Schema(),
			OutOrder: sortord.Empty,
			Rows:     props.Rows,
			Blocks:   opt.blocksFor(props.Rows, u.Schema().AvgTupleWidth()),
			Cost: cost.Cost{
				// UNION ALL emits the left stream first: the right side's
				// startup is not on the first row's path.
				Startup: lp.Cost.Startup,
				Total:   lp.Cost.Total + rp.Cost.Total,
				Rows:    props.Rows,
			},
			Logical: u,
		})
	}
	return plans, nil
}

// rightUnionOrder maps an output (left-named) order to the right input's
// column names positionally.
func (opt *Optimizer) rightUnionOrder(u *logical.Union, o sortord.Order) sortord.Order {
	ls, rs := u.Left.Schema(), u.Right.Schema()
	out := make(sortord.Order, len(o))
	for i, a := range o {
		out[i] = rs.Col(ls.MustOrdinal(a)).Name
	}
	return out
}

// translateRightUnion maps right-input orders to output names positionally.
func (opt *Optimizer) translateRightUnion(u *logical.Union, orders []sortord.Order) []sortord.Order {
	ls, rs := u.Left.Schema(), u.Right.Schema()
	var out []sortord.Order
	for _, o := range orders {
		mapped := make(sortord.Order, 0, len(o))
		ok := true
		for _, a := range o {
			i, found := rs.Ordinal(a)
			if !found {
				ok = false
				break
			}
			mapped = append(mapped, ls.Col(i).Name)
		}
		if ok {
			out = append(out, mapped)
		}
	}
	return out
}
