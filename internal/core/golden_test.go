package core

import (
	"strings"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/storage"
	"pyro/internal/workload"
)

// TestFigure10bPlanShape pins the PYRO-O Query 3 plan to the structure of
// the paper's Figure 10(b):
//
//	Sort (partkey)                     <- cheap final sort, few rows
//	  Filter (HAVING)
//	    Group Aggregate                <- pipelined, no hash agg
//	      Merge Join (suppkey, partkey)
//	        Partial Sort (suppkey) -> (suppkey, partkey)
//	          Covering Index Scan partsupp
//	        Partial Sort (suppkey) -> (suppkey, partkey)
//	          Filter (linestatus)
//	            Covering Index Scan lineitem
func TestFigure10bPlanShape(t *testing.T) {
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	cfg := workload.DefaultTPCH()
	if err := workload.BuildTPCH(cat, cfg); err != nil {
		t.Fatal(err)
	}
	q3, err := workload.Query3(cat)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(HeuristicFavorable)
	opts.Model.MemoryBlocks = 32
	res, err := Optimize(q3, opts)
	if err != nil {
		t.Fatal(err)
	}
	sig := res.Plan.Signature()
	want := "Sort>Filter>GroupAggregate>MergeJoin>PartialSort>CoveringIndexScan>PartialSort>Filter>CoveringIndexScan"
	if sig != want {
		t.Fatalf("plan shape diverged from Figure 10(b):\n got: %s\nwant: %s\n\n%s",
			sig, want, res.Plan.Format())
	}
	// The merge join key must lead with suppkey (the partial-sort-friendly
	// choice), not partkey (the clustering/ORDER BY-friendly choice that
	// needs a full lineitem sort).
	res.Plan.Walk(func(p *Plan) {
		if p.Kind == OpMergeJoin && p.LeftKey[0] != "ps_suppkey" {
			t.Fatalf("merge join should lead with suppkey: %v", p.LeftKey)
		}
	})
	// Both partial sorts exploit the single-attribute index prefixes.
	partials := 0
	res.Plan.Walk(func(p *Plan) {
		if p.IsPartialSort() {
			partials++
			if p.SortGiven.Len() != 1 || !strings.HasSuffix(p.SortGiven[0], "suppkey") {
				t.Fatalf("partial sort prefix should be a suppkey: %v -> %v", p.SortGiven, p.SortTarget)
			}
		}
	})
	if partials != 2 {
		t.Fatalf("expected 2 partial sorts, got %d", partials)
	}
}

// TestFigure14PlanShape pins the PYRO-O Query 4 plan: two merge full outer
// joins whose key permutations share the (c4, c5) prefix, with the second
// join fed by a partial sort over the first's output.
func TestFigure14PlanShape(t *testing.T) {
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	if err := workload.BuildOuterJoinTables(cat, 20_000, 5); err != nil {
		t.Fatal(err)
	}
	q4, err := workload.Query4(cat)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions(HeuristicFavorable)
	opts.Model.MemoryBlocks = 32
	res, err := Optimize(q4, opts)
	if err != nil {
		t.Fatal(err)
	}
	var keys [][]string
	res.Plan.Walk(func(p *Plan) {
		if p.Kind == OpMergeJoin {
			keys = append(keys, p.LeftKey)
		}
	})
	if len(keys) != 2 {
		t.Fatalf("want 2 merge joins:\n%s", res.Plan.Format())
	}
	base := func(a string) string { return a[len(a)-2:] }
	for i := 0; i < 2; i++ {
		if base(keys[0][i]) != base(keys[1][i]) {
			t.Fatalf("joins must share a 2-attribute prefix: %v vs %v", keys[0], keys[1])
		}
		if got := base(keys[0][i]); got != "c4" && got != "c5" {
			t.Fatalf("shared prefix should be the common attributes c4/c5, got %v", keys[0])
		}
	}
	// The upper join's input from the lower join needs only a partial sort
	// (prefix shared), never a full re-sort of the join output.
	res.Plan.Walk(func(p *Plan) {
		if p.Kind == OpSort && !p.IsPartialSort() && len(p.Children) == 1 {
			if p.Children[0].Kind == OpMergeJoin {
				t.Fatalf("full re-sort of a join output — phase 2 failed:\n%s", res.Plan.Format())
			}
		}
	})
}
