package core

import (
	"fmt"
	"math/rand"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/iter"
	"pyro/internal/logical"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// randWorld builds a random two-table catalog: table x(x0..x3) and y(y0..y3)
// with random clustering orders and an occasional covering index.
func randWorld(rng *rand.Rand) (*catalog.Catalog, *storage.Disk) {
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	for _, name := range []string{"x", "y"} {
		cols := make([]types.Column, 4)
		for i := range cols {
			cols[i] = types.Column{Name: fmt.Sprintf("%s%d", name, i), Kind: types.KindInt}
		}
		schema := types.NewSchema(cols...)
		n := 50 + rng.Intn(300)
		rows := make([]types.Tuple, n)
		for r := range rows {
			tup := make(types.Tuple, 4)
			for i := range tup {
				tup[i] = types.NewInt(rng.Int63n(int64(3 + rng.Intn(10))))
			}
			// Occasionally inject a NULL into a non-key column.
			if rng.Intn(10) == 0 {
				tup[3] = types.Null
			}
			rows[r] = tup
		}
		var cluster sortord.Order
		if rng.Intn(2) == 0 {
			cluster = sortord.New(fmt.Sprintf("%s%d", name, rng.Intn(4)))
		}
		if _, err := cat.CreateTable(name, schema, cluster, rows); err != nil {
			panic(err)
		}
		if rng.Intn(2) == 0 {
			key := fmt.Sprintf("%s%d", name, rng.Intn(4))
			include := schema.Names()
			if _, err := cat.CreateIndex(name+"_ix", mustTable(cat, name),
				sortord.New(key), include); err != nil {
				panic(err)
			}
		}
	}
	return cat, disk
}

// randQuery assembles a random join + optional filter/group/order query.
func randQuery(cat *catalog.Catalog, rng *rand.Rand) logical.Node {
	x := logical.NewScan(mustTable(cat, "x"))
	y := logical.NewScan(mustTable(cat, "y"))

	var left logical.Node = x
	if rng.Intn(2) == 0 {
		left = logical.NewSelect(x, expr.Compare(expr.LT,
			expr.Col(fmt.Sprintf("x%d", rng.Intn(4))), expr.IntLit(rng.Int63n(8))))
	}
	nKeys := 1 + rng.Intn(3)
	var conj []expr.Expr
	for i := 0; i < nKeys; i++ {
		conj = append(conj, expr.Eq(expr.Col(fmt.Sprintf("x%d", i)), expr.Col(fmt.Sprintf("y%d", i))))
	}
	jt := exec.InnerJoin
	if rng.Intn(4) == 0 {
		jt = exec.FullOuterJoin
	}
	var node logical.Node = logical.NewJoin(left, y, expr.AndOf(conj...), jt)

	switch rng.Intn(3) {
	case 0:
		node = logical.NewGroupBy(node, []string{"x0", "x1"},
			[]logical.AggSpec{
				{Name: "cnt", Func: exec.AggCount},
				{Name: "mx", Func: exec.AggMax, Arg: expr.Col("x2")},
			})
	case 1:
		node = logical.NewDistinct(logical.NewProjectNames(node, []string{"x0", "x1"}))
	default:
		// SELECT with an explicit column list: without it the output
		// column order would legitimately vary with the chosen access
		// path (covering indices store key columns first).
		node = logical.NewProjectNames(node,
			[]string{"x0", "x1", "x2", "x3", "y0", "y1", "y2", "y3"})
	}
	// Random required order over available columns.
	avail := node.Schema().Names()
	k := rng.Intn(3)
	var ord sortord.Order
	for i := 0; i < k && i < len(avail); i++ {
		ord = append(ord, avail[rng.Intn(len(avail))])
	}
	ord = ord.Dedup()
	if len(ord) > 0 {
		node = logical.NewOrderBy(node, ord)
	}
	return node
}

// TestRandomQueriesAgreeAcrossHeuristics is the engine's main correctness
// property: for random catalogs and queries, every heuristic's plan
// produces the same multiset of rows, and any required order holds.
func TestRandomQueriesAgreeAcrossHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	heuristics := []Heuristic{
		HeuristicArbitrary, HeuristicFavorableExact, HeuristicPostgres,
		HeuristicFavorable, HeuristicExhaustive,
	}
	for trial := 0; trial < 25; trial++ {
		cat, disk := randWorld(rng)
		q := randQuery(cat, rng)
		var required sortord.Order
		if ob, ok := q.(*logical.OrderBy); ok {
			required = ob.Order
		}
		var reference map[string]int
		var refH Heuristic
		for _, h := range heuristics {
			res, err := Optimize(q, DefaultOptions(h))
			if err != nil {
				t.Fatalf("trial %d %v: optimize: %v\n%s", trial, h, err, logical.Format(q))
			}
			op, err := Build(res.Plan, BuildConfig{Disk: disk, SortMemoryBlocks: 8})
			if err != nil {
				t.Fatalf("trial %d %v: build: %v\n%s", trial, h, err, res.Plan.Format())
			}
			rows, err := iter.Drain(op)
			if err != nil {
				t.Fatalf("trial %d %v: execute: %v\n%s", trial, h, err, res.Plan.Format())
			}
			// Required order must hold.
			if !required.IsEmpty() {
				ks, err := types.MakeKeySpec(res.Plan.Schema, required)
				if err != nil {
					t.Fatalf("trial %d %v: order not in schema: %v", trial, h, err)
				}
				for i := 1; i < len(rows); i++ {
					if ks.Compare(rows[i-1], rows[i]) > 0 {
						t.Fatalf("trial %d %v: required order %v violated\n%s",
							trial, h, required, res.Plan.Format())
					}
				}
			}
			got := make(map[string]int, len(rows))
			var buf []byte
			for _, r := range rows {
				buf = r.Encode(buf[:0])
				got[string(buf)]++
			}
			if reference == nil {
				reference, refH = got, h
				continue
			}
			if len(got) != len(reference) {
				t.Fatalf("trial %d: %v (%d distinct rows) disagrees with %v (%d)\nquery:\n%s",
					trial, h, len(got), refH, len(reference), logical.Format(q))
			}
			for k, v := range reference {
				if got[k] != v {
					t.Fatalf("trial %d: %v disagrees with %v on a row multiplicity\nquery:\n%s",
						trial, h, refH, logical.Format(q))
				}
			}
		}
		// No run files may leak across a full trial.
		for _, name := range disk.FileNames() {
			if f, err := disk.Open(name); err == nil && f.Kind() == storage.KindRun {
				t.Fatalf("trial %d: leaked run file %q", trial, name)
			}
		}
	}
}
