package core

import (
	"math/rand"
	"testing"

	"pyro/internal/ford"
	"pyro/internal/logical"
	"pyro/internal/sortord"
)

// TestOptimizerDeterministic: optimizing the same query twice produces the
// same cost and plan shape (maps are iterated in sorted order everywhere
// it matters).
func TestOptimizerDeterministic(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 50, 8)
	root := f.q3(t)
	for _, h := range []Heuristic{HeuristicFavorable, HeuristicPostgres, HeuristicExhaustive} {
		a := mustOptimize(t, root, DefaultOptions(h))
		b := mustOptimize(t, root, DefaultOptions(h))
		if a.Plan.Cost != b.Plan.Cost {
			t.Fatalf("%v: cost varies across runs: %+v vs %+v", h, a.Plan.Cost, b.Plan.Cost)
		}
		if a.Plan.Signature() != b.Plan.Signature() {
			t.Fatalf("%v: plan shape varies across runs:\n%s\nvs\n%s",
				h, a.Plan.Format(), b.Plan.Format())
		}
	}
}

// TestMoreOptionsNeverHurt: adding a covering index can only lower (or
// keep) the estimated cost of the best plan — the memo must never be
// poisoned by extra alternatives.
func TestMoreOptionsNeverHurt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		parts := 40 + int64(rng.Intn(40))
		supps := 4 + int64(rng.Intn(6))
		fa := newFixture(t)
		fa.buildQ3WorldNoIndices(t, parts, supps)
		costNoIx := mustOptimize(t, fa.q3(t), DefaultOptions(HeuristicFavorable)).Plan.Cost.Total
		fb := newFixture(t)
		fb.buildQ3World(t, parts, supps)
		costIx := mustOptimize(t, fb.q3(t), DefaultOptions(HeuristicFavorable)).Plan.Cost.Total
		if costIx > costNoIx+1e-9 {
			t.Fatalf("trial %d: adding covering indices raised the best cost: %f -> %f",
				trial, costNoIx, costIx)
		}
	}
}

// buildQ3WorldNoIndices mirrors buildQ3World without secondary indices.
func (f *fixture) buildQ3WorldNoIndices(t *testing.T, parts, supps int64) {
	t.Helper()
	f.buildQ3World(t, parts, supps)
	// Strip the indices from both tables (fixture builds them).
	mustTable(f.cat, "partsupp").Indices = nil
	mustTable(f.cat, "lineitem").Indices = nil
}

// TestRequiredOrderAlwaysInMemoKey: two different requirements on the same
// node must never share a memoized plan.
func TestRequiredOrderAlwaysInMemoKey(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 30, 5)
	ps := logical.NewScan(mustTable(f.cat, "partsupp"))
	opt := &Optimizer{
		opts:   DefaultOptions(HeuristicFavorable),
		fc:     ford.NewComputer(ps),
		memo:   map[logical.Node]map[string]*Plan{},
		forced: map[*logical.Join]sortord.Order{},
	}
	a, err := opt.bestPlan(ps, sortord.New("ps_suppkey"), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.bestPlan(ps, sortord.New("ps_partkey"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.OutOrder.Attrs().Contains("ps_suppkey") {
		t.Fatalf("plan a order = %v", a.OutOrder)
	}
	if !b.OutOrder.Attrs().Contains("ps_partkey") {
		t.Fatalf("plan b order = %v", b.OutOrder)
	}
	if a == b {
		t.Fatal("distinct requirements must not share a memo entry")
	}
}

// TestEnforceIdempotent: a plan that already satisfies the requirement is
// returned unchanged (no gratuitous sorts).
func TestEnforceIdempotent(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 30, 5)
	root := logical.NewOrderBy(
		logical.NewScan(mustTable(f.cat, "partsupp")),
		sortord.New("ps_partkey", "ps_suppkey")) // the clustering order
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	if res.Plan.CountKind(OpSort) != 0 {
		t.Fatalf("clustering order satisfied: no sort expected\n%s", res.Plan.Format())
	}
}
