package core

import (
	"testing"

	"pyro/internal/logical"
	"pyro/internal/sortord"
)

// TestPrefixCostEqualsTotalAtFullDrain pins the acceptance identity
// Prefix(N) ≡ Total for whole optimized plan trees: costing the full
// result through the prefix machinery must agree exactly with the
// full-drain totals, so unlimited plan choices cannot drift.
func TestPrefixCostEqualsTotalAtFullDrain(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 30, 6)
	for _, h := range []Heuristic{HeuristicArbitrary, HeuristicFavorable, HeuristicExhaustive} {
		res := mustOptimize(t, f.q3(t), DefaultOptions(h))
		res.Plan.Walk(func(p *Plan) {
			if p.Rows > 0 {
				if got := p.PrefixCost(p.Rows); got != p.Cost.Total {
					t.Fatalf("%v: %v PrefixCost(Rows=%d) = %f, want Total %f",
						h, p.Kind, p.Rows, got, p.Cost.Total)
				}
			}
			if p.Cost.Startup > p.Cost.Total {
				t.Fatalf("%v: %v Startup %f exceeds Total %f", h, p.Kind, p.Cost.Startup, p.Cost.Total)
			}
		})
	}
}

// TestRowTargetDoesNotChangeUnlimitedChoice: optimizing with RowTarget = N
// (or more) must produce the same plan shape as the plain full-drain
// optimization, because Prefix(N) ≡ Total.
func TestRowTargetDoesNotChangeUnlimitedChoice(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 30, 6)
	base := mustOptimize(t, f.q3(t), DefaultOptions(HeuristicFavorable))
	opts := DefaultOptions(HeuristicFavorable)
	opts.RowTarget = 1 << 40 // beyond any cardinality in the tree
	targeted := mustOptimize(t, f.q3(t), opts)
	if base.Plan.Signature() != targeted.Plan.Signature() {
		t.Fatalf("huge row target changed the plan:\n--- base:\n%s\n--- targeted:\n%s",
			base.Plan.Format(), targeted.Plan.Format())
	}
	if base.Plan.Cost != targeted.Plan.Cost {
		t.Fatalf("huge row target changed the cost: %+v vs %+v", base.Plan.Cost, targeted.Plan.Cost)
	}
}

// TestPartialSortEnforcerTwoPhase pins the enforcer's cost split: a partial
// sort's startup is one segment of input plus one segment sort — far below
// its total — while the forced full sort of the same input blocks on
// everything; and the partial enforcer's PrefixCost steps by SegmentBudget.
func TestPartialSortEnforcerTwoPhase(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 40, 8)
	// partsupp is clustered on (ps_partkey, ps_suppkey); requiring
	// (ps_partkey, ps_availqty) forces a partial sort over the ps_partkey
	// prefix.
	scan := logical.NewScan(mustTable(f.cat, "partsupp"))
	root := logical.NewOrderBy(scan, sortord.New("ps_partkey", "ps_availqty"))

	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	sortNode := res.Plan
	if !sortNode.IsPartialSort() {
		t.Fatalf("expected a partial-sort root:\n%s", res.Plan.Format())
	}
	if sortNode.SortSegments <= 1 {
		t.Fatalf("partial sort recorded %d segments", sortNode.SortSegments)
	}
	if sortNode.Cost.Startup >= sortNode.Cost.Total {
		t.Fatalf("partial sort should be pipelined: startup %f, total %f",
			sortNode.Cost.Startup, sortNode.Cost.Total)
	}

	full := mustOptimizeWith(t, root, DefaultOptions(HeuristicFavorable), withNoPartialSort())
	if full.Plan.IsPartialSort() {
		t.Fatalf("ablation still chose a partial sort:\n%s", full.Plan.Format())
	}
	if full.Plan.Cost.Startup < full.Plan.Children[0].Cost.Total {
		t.Fatalf("full sort must block on its whole input: startup %f, child total %f",
			full.Plan.Cost.Startup, full.Plan.Children[0].Cost.Total)
	}

	// PrefixCost is monotone and steps with the segment budget.
	prev := 0.0
	for k := int64(0); k <= sortNode.Rows+10; k += sortNode.Rows / 7 {
		got := sortNode.PrefixCost(k)
		if got < prev {
			t.Fatalf("PrefixCost not monotone at k=%d: %f < %f", k, got, prev)
		}
		prev = got
	}
	// At tiny k, the pipelined enforcer must be far cheaper than the
	// blocking one.
	if p, fl := sortNode.PrefixCost(1), full.Plan.PrefixCost(1); p >= fl {
		t.Fatalf("first-row cost: partial %f should beat full %f", p, fl)
	}
}

func withNoPartialSort() func(*Options) {
	return func(o *Options) { o.DisablePartialSort = true }
}

// TestLimitPlansUnderRowBudget: a LIMIT K node prices its subtree at the
// first K rows (total = child prefix cost) and LIMIT 0 is a childless,
// zero-cost plan — no degenerate sort below it.
func TestLimitPlansUnderRowBudget(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 40, 8)
	scan := logical.NewScan(mustTable(f.cat, "partsupp"))
	ordered := logical.NewOrderBy(scan, sortord.New("ps_partkey", "ps_availqty"))

	limited := mustOptimize(t, logical.NewLimit(ordered, 5), DefaultOptions(HeuristicFavorable))
	if limited.Plan.Kind != OpLimit || limited.Plan.LimitK != 5 {
		t.Fatalf("expected a Limit 5 root:\n%s", limited.Plan.Format())
	}
	child := limited.Plan.Children[0]
	if limited.Plan.Cost.Total != child.PrefixCost(5) {
		t.Fatalf("Limit total %f != child PrefixCost(5) %f",
			limited.Plan.Cost.Total, child.PrefixCost(5))
	}
	if limited.Plan.Cost.Total >= child.Cost.Total {
		t.Fatalf("Limit 5 must cost less than draining the child: %f vs %f",
			limited.Plan.Cost.Total, child.Cost.Total)
	}
	// The stepped prefix total can undercut the child's interpolated
	// startup at tiny K; the Limit node must clamp to keep the invariant.
	if limited.Plan.Cost.Startup > limited.Plan.Cost.Total {
		t.Fatalf("Limit plan violates Startup ≤ Total: %+v", limited.Plan.Cost)
	}

	zero := mustOptimize(t, logical.NewLimit(ordered, 0), DefaultOptions(HeuristicFavorable))
	if zero.Plan.Kind != OpLimit || len(zero.Plan.Children) != 0 {
		t.Fatalf("LIMIT 0 should be a childless Limit:\n%s", zero.Plan.Format())
	}
	if zero.Plan.Cost.Total != 0 || zero.Plan.Rows != 0 {
		t.Fatalf("LIMIT 0 cost = %+v rows = %d, want zero", zero.Plan.Cost, zero.Plan.Rows)
	}
	if zero.Plan.CountKind(OpSort) != 0 {
		t.Fatalf("LIMIT 0 planned a sort:\n%s", zero.Plan.Format())
	}
}

func mustOptimizeWith(t *testing.T, root logical.Node, opts Options, muts ...func(*Options)) *Result {
	t.Helper()
	for _, m := range muts {
		m(&opts)
	}
	return mustOptimize(t, root, opts)
}

// TestMergeSideBudget pins the key-granularity budget split of merge-join
// inputs. The correlated-key scenario: a near-unique narrow side joins a
// wide side whose key domain is ten times larger, so only a tenth of the
// wide side's keys ever match. The row-ratio split (scaleBudget) budgets
// the wide side by its share of output rows — 500 rows here — but a
// consumer stopping after 100 of the join's 10k output rows advances past
// just 10 join keys, which is 10 narrow rows and 50 wide rows at the
// sides' own key densities.
func TestMergeSideBudget(t *testing.T) {
	key := []string{"k"}
	out := logical.Props{Rows: 10_000, Distinct: map[string]int64{"k": 1_000}}
	narrow := logical.Props{Rows: 1_000, Distinct: map[string]int64{"k": 1_000}}
	wide := logical.Props{Rows: 50_000, Distinct: map[string]int64{"k": 10_000}}

	if got := mergeSideBudget(100, out, key, narrow, key); got != 10 {
		t.Fatalf("narrow side budget = %d, want 10 (10 keys x 1 row/key)", got)
	}
	if got := mergeSideBudget(100, out, key, wide, key); got != 50 {
		t.Fatalf("wide side budget = %d, want 50 (10 keys x 5 rows/key)", got)
	}
	// The row-ratio split would have over-budgeted the wide side 10x.
	if rr := scaleBudget(100, out.Rows, wide.Rows); rr != 500 {
		t.Fatalf("row-ratio baseline moved: %d, want 500", rr)
	}

	// No budget propagates as no budget; a budget at or past the output
	// cardinality degrades to the whole side.
	if got := mergeSideBudget(0, out, key, wide, key); got != 0 {
		t.Fatalf("zero budget = %d, want 0", got)
	}
	if got := mergeSideBudget(10_000, out, key, wide, key); got != wide.Rows {
		t.Fatalf("full-drain budget = %d, want all %d side rows", got, wide.Rows)
	}
	// Unknown output stats degrade to the conservative unique-key
	// assumption, which reproduces the row-ratio value here.
	if got := mergeSideBudget(100, logical.Props{Rows: 10_000}, key, wide, key); got != 500 {
		t.Fatalf("stat-less output budget = %d, want row-ratio 500", got)
	}
}
