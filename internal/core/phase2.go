package core

import (
	"pyro/internal/logical"
	"pyro/internal/ordersel"
	"pyro/internal/sortord"
)

// refine implements the §5.2.2 post-optimization phase. For every
// merge-join node of the chosen plan it identifies the free attributes —
// join attributes whose position in the chosen permutation was arbitrary
// (not anchored by any input favorable order) — then reworks their
// ordering across adjacent joins with the 2-approximate tree algorithm so
// that neighbouring joins share longer prefixes. The plan is re-optimized
// with the reworked permutations forced; the caller keeps whichever plan
// costs less — under a row budget (a LIMIT or an explicit row target) the
// comparison, like every other plan comparison, is by the first budget
// rows' prefix cost rather than full drain.
func (opt *Optimizer) refine(node logical.Node, required sortord.Order, plan *Plan, budget int64) (*Plan, error) {
	joins := collectMergeJoins(plan)
	if len(joins.nodes) < 2 {
		return nil, nil
	}

	// Free attributes per join: fi = attrs(pi − (pi ∧ qi)) where qi is the
	// input favorable order sharing the longest prefix with pi.
	type joinInfo struct {
		node   *logical.Join
		perm   sortord.Order
		shared sortord.Order
		free   sortord.AttrSet
	}
	infos := make([]joinInfo, len(joins.nodes))
	for i, jp := range joins.nodes {
		j := jp.Logical.(*logical.Join)
		pi := jp.LeftKey
		var qi sortord.Order
		best := -1
		candidates := append(append([]sortord.Order{}, opt.fc.AFM(j.Left)...),
			opt.canonAFM(j, opt.fc.AFM(j.Right))...)
		for _, q := range candidates {
			if l := sortord.LCP(pi, q).Len(); l > best {
				best = l
				qi = q
			}
		}
		shared := sortord.LCP(pi, qi)
		free := pi[shared.Len():].Attrs()
		infos[i] = joinInfo{node: j, perm: pi, shared: shared, free: free}
		opt.stats.Phase2FreeAttrs += free.Len()
	}

	// Nothing to rework if no join has free attributes.
	anyFree := false
	for _, inf := range infos {
		if inf.free.Len() > 0 {
			anyFree = true
			break
		}
	}
	if !anyFree {
		return nil, nil
	}

	sets := make([]sortord.AttrSet, len(infos))
	for i, inf := range infos {
		sets[i] = inf.free
	}
	prob := ordersel.Problem{Sets: sets, Edges: joins.edges}
	freeOrders := ordersel.TwoApprox(prob)

	// Force the reworked permutations and re-optimize from scratch.
	saved := opt.forced
	opt.forced = make(map[*logical.Join]sortord.Order, len(infos))
	for i, inf := range infos {
		opt.forced[inf.node] = sortord.Concat(inf.shared, freeOrders[i])
	}
	opt.memo = make(map[logical.Node]map[string]*Plan)
	refined, err := opt.bestPlan(node, required, budget)
	opt.forced = saved
	opt.memo = make(map[logical.Node]map[string]*Plan)
	if err != nil {
		return nil, err
	}
	return refined, nil
}

// mergeJoinGraph is the contracted tree over merge-join plan nodes.
type mergeJoinGraph struct {
	nodes []*Plan
	edges [][2]int
}

// collectMergeJoins walks the plan and links each merge join to its nearest
// merge-join ancestor, producing the tree phase 2 runs the 2-approximation
// on.
func collectMergeJoins(plan *Plan) mergeJoinGraph {
	var g mergeJoinGraph
	index := make(map[*Plan]int)
	var walk func(p *Plan, ancestor int)
	walk = func(p *Plan, ancestor int) {
		cur := ancestor
		if p.Kind == OpMergeJoin {
			if _, ok := p.Logical.(*logical.Join); ok {
				idx := len(g.nodes)
				g.nodes = append(g.nodes, p)
				index[p] = idx
				if ancestor >= 0 {
					g.edges = append(g.edges, [2]int{ancestor, idx})
				}
				cur = idx
			}
		}
		for _, c := range p.Children {
			walk(c, cur)
		}
	}
	walk(plan, -1)
	return g
}
