package core

import (
	"sort"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/iter"
	"pyro/internal/logical"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// fixture bundles a catalog and its disk for optimizer tests.
type fixture struct {
	cat  *catalog.Catalog
	disk *storage.Disk
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	// The disk's page size must match the cost model's (4 KiB): plan
	// Blocks mix actual file pages (scans) with model-derived estimates
	// (intermediate results), so differing units would misprice sorts.
	d := storage.NewDisk(0)
	return &fixture{cat: catalog.New(d), disk: d}
}

// buildQ3World loads a miniature of the paper's Query 3 environment.
func (f *fixture) buildQ3World(t *testing.T, parts, supps int64) {
	t.Helper()
	psSchema := types.NewSchema(
		types.Column{Name: "ps_partkey", Kind: types.KindInt},
		types.Column{Name: "ps_suppkey", Kind: types.KindInt},
		types.Column{Name: "ps_availqty", Kind: types.KindInt},
	)
	// As in the paper, lineitem is clustered on its own primary key
	// (l_orderkey), NOT on the join attributes — the join order must be
	// produced by indices or sorting.
	liSchema := types.NewSchema(
		types.Column{Name: "l_orderkey", Kind: types.KindInt},
		types.Column{Name: "l_partkey", Kind: types.KindInt},
		types.Column{Name: "l_suppkey", Kind: types.KindInt},
		types.Column{Name: "l_quantity", Kind: types.KindInt},
		types.Column{Name: "l_linestatus", Kind: types.KindString, Width: 1},
	)
	var psRows, liRows []types.Tuple
	orderkey := int64(0)
	for p := int64(0); p < parts; p++ {
		for s := int64(0); s < supps; s++ {
			psRows = append(psRows, types.NewTuple(
				types.NewInt(p), types.NewInt(s), types.NewInt((p*7+s)%50+10)))
			// Several lineitems per (part, supp).
			for k := int64(0); k < 3; k++ {
				status := "O"
				if (p+s+k)%3 == 0 {
					status = "F"
				}
				orderkey = (orderkey*2654435761 + 1) % 1000003 // scatter
				liRows = append(liRows, types.NewTuple(
					types.NewInt(orderkey), types.NewInt(p), types.NewInt(s),
					types.NewInt(k*5+1), types.NewString(status)))
			}
		}
	}
	ps, err := f.cat.CreateTable("partsupp", psSchema, sortord.New("ps_partkey", "ps_suppkey"), psRows)
	if err != nil {
		t.Fatal(err)
	}
	li, err := f.cat.CreateTable("lineitem", liSchema, sortord.New("l_orderkey"), liRows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.cat.CreateIndex("ps_sk", ps, sortord.New("ps_suppkey"), []string{"ps_partkey", "ps_availqty"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.cat.CreateIndex("li_sk", li, sortord.New("l_suppkey"), []string{"l_partkey", "l_quantity", "l_linestatus"}); err != nil {
		t.Fatal(err)
	}
}

// q3 assembles the paper's Query 3.
func (f *fixture) q3(t *testing.T) logical.Node {
	t.Helper()
	ps := logical.NewScan(mustTable(f.cat, "partsupp"))
	li := logical.NewScan(mustTable(f.cat, "lineitem"))
	liF := logical.NewSelect(li, expr.Eq(expr.Col("l_linestatus"), expr.StrLit("O")))
	join := logical.NewJoin(ps, liF, expr.AndOf(
		expr.Eq(expr.Col("ps_suppkey"), expr.Col("l_suppkey")),
		expr.Eq(expr.Col("ps_partkey"), expr.Col("l_partkey")),
	), exec.InnerJoin)
	gb := logical.NewGroupBy(join,
		[]string{"ps_availqty", "ps_partkey", "ps_suppkey"},
		[]logical.AggSpec{{Name: "total_qty", Func: exec.AggSum, Arg: expr.Col("l_quantity")}})
	having := logical.NewSelect(gb, expr.Compare(expr.GT, expr.Col("total_qty"), expr.Col("ps_availqty")))
	return logical.NewOrderBy(having, sortord.New("ps_partkey"))
}

func mustOptimize(t *testing.T, root logical.Node, opts Options) *Result {
	t.Helper()
	res, err := Optimize(root, opts)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	return res
}

func execPlan(t *testing.T, f *fixture, p *Plan) []types.Tuple {
	t.Helper()
	op, err := Build(p, BuildConfig{Disk: f.disk, SortMemoryBlocks: 64})
	if err != nil {
		t.Fatalf("Build: %v\n%s", err, p.Format())
	}
	rows, err := iter.Drain(op)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, p.Format())
	}
	return rows
}

// canonicalize sorts rows by their encoding for set comparison.
func canonicalize(rows []types.Tuple) []string {
	out := make([]string, len(rows))
	var buf []byte
	for i, r := range rows {
		buf = r.Encode(buf[:0])
		out[i] = string(buf)
	}
	sort.Strings(out)
	return out
}

func TestOptimizeQ3AllHeuristicsAgreeOnResults(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 12, 4)
	root := f.q3(t)
	var reference []string
	for _, h := range []Heuristic{HeuristicArbitrary, HeuristicFavorableExact, HeuristicPostgres, HeuristicFavorable, HeuristicExhaustive} {
		res := mustOptimize(t, root, DefaultOptions(h))
		rows := execPlan(t, f, res.Plan)
		got := canonicalize(rows)
		if reference == nil {
			reference = got
			if len(reference) == 0 {
				t.Fatal("query returned no rows — fixture broken")
			}
			continue
		}
		if len(got) != len(reference) {
			t.Fatalf("%v returned %d rows, reference %d", h, len(got), len(reference))
		}
		for i := range got {
			if got[i] != reference[i] {
				t.Fatalf("%v results differ from reference at row %d", h, i)
			}
		}
	}
}

func TestOptimizeQ3OutputIsSorted(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 12, 4)
	root := f.q3(t)
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	rows := execPlan(t, f, res.Plan)
	ord := res.Plan.Schema.MustOrdinal("ps_partkey")
	for i := 1; i < len(rows); i++ {
		if rows[i-1][ord].Compare(rows[i][ord]) > 0 {
			t.Fatal("ORDER BY ps_partkey violated")
		}
	}
}

func TestHeuristicCostOrdering(t *testing.T) {
	// Fig 15's shape: cost(PYRO-E) ≤ cost(PYRO-O) ≤ cost(PYRO-P) and all
	// ≤ cost(PYRO). (PYRO-O⁻ sits between PYRO-O and PYRO.)
	f := newFixture(t)
	f.buildQ3World(t, 20, 5)
	root := f.q3(t)
	costs := map[Heuristic]float64{}
	for _, h := range []Heuristic{HeuristicArbitrary, HeuristicFavorableExact, HeuristicPostgres, HeuristicFavorable, HeuristicExhaustive} {
		res := mustOptimize(t, root, DefaultOptions(h))
		costs[h] = res.Plan.Cost.Total
	}
	if costs[HeuristicExhaustive] > costs[HeuristicFavorable]+1e-9 {
		t.Fatalf("PYRO-E (%f) must not exceed PYRO-O (%f)", costs[HeuristicExhaustive], costs[HeuristicFavorable])
	}
	if costs[HeuristicFavorable] > costs[HeuristicPostgres]+1e-9 {
		t.Fatalf("PYRO-O (%f) must not exceed PYRO-P (%f)", costs[HeuristicFavorable], costs[HeuristicPostgres])
	}
	if costs[HeuristicFavorable] > costs[HeuristicArbitrary]+1e-9 {
		t.Fatalf("PYRO-O (%f) must not exceed PYRO (%f)", costs[HeuristicFavorable], costs[HeuristicArbitrary])
	}
	if costs[HeuristicFavorable] > costs[HeuristicFavorableExact]+1e-9 {
		t.Fatalf("PYRO-O (%f) must not exceed PYRO-O- (%f)", costs[HeuristicFavorable], costs[HeuristicFavorableExact])
	}
}

func TestPartialSortEnforcerChosen(t *testing.T) {
	// Among sort-based plans (hash operators disabled, as in the paper's
	// forced merge-join comparison), the favorable-order optimizer should
	// exploit the covering indices' suppkey prefixes with partial sorts
	// rather than full sorts.
	// Large enough that the lineitem sort is external under a 4-block
	// memory budget (the paper's effect needs B(e) > M; with everything
	// in memory a full CPU sort can legitimately win).
	f := newFixture(t)
	f.buildQ3World(t, 200, 10)
	root := f.q3(t)
	opts := DefaultOptions(HeuristicFavorable)
	opts.Model.MemoryBlocks = 4 // make full sorts expensive
	opts.DisableHashJoin = true
	opts.DisableHashAgg = true
	res := mustOptimize(t, root, opts)
	partial, full := 0, 0
	res.Plan.Walk(func(p *Plan) {
		if p.Kind == OpSort {
			if p.IsPartialSort() {
				partial++
			} else {
				full++
			}
		}
	})
	if partial == 0 {
		t.Fatalf("expected a partial sort in the PYRO-O plan:\n%s", res.Plan.Format())
	}
	// The ablation (PYRO-O⁻) must not contain partial sorts.
	resMinus := mustOptimize(t, root, DefaultOptions(HeuristicFavorableExact))
	resMinus.Plan.Walk(func(p *Plan) {
		if p.IsPartialSort() {
			t.Fatalf("PYRO-O- must not use partial sorts:\n%s", resMinus.Plan.Format())
		}
	})
}

func TestForcedPlanShapes(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 12, 4)
	root := f.q3(t)
	// Force a hash-join plan (SYS1's default in Fig 11a).
	optsH := DefaultOptions(HeuristicFavorable)
	optsH.DisableMergeJoin = true
	resH := mustOptimize(t, root, optsH)
	if resH.Plan.CountKind(OpHashJoin) == 0 {
		t.Fatalf("expected hash join:\n%s", resH.Plan.Format())
	}
	// Force a merge-join plan (Fig 11b).
	optsM := DefaultOptions(HeuristicFavorable)
	optsM.DisableHashJoin = true
	resM := mustOptimize(t, root, optsM)
	if resM.Plan.CountKind(OpMergeJoin) == 0 {
		t.Fatalf("expected merge join:\n%s", resM.Plan.Format())
	}
	// Both must produce identical results.
	a := canonicalize(execPlan(t, f, resH.Plan))
	b := canonicalize(execPlan(t, f, resM.Plan))
	if len(a) != len(b) {
		t.Fatalf("forced plans disagree: %d vs %d rows", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forced plans disagree on content")
		}
	}
}

// q4World builds the R1/R2/R3 environment of Experiment B2.
func (f *fixture) q4World(t *testing.T, rows int64) (r1, r2, r3 *catalog.Table) {
	t.Helper()
	mk := func(name, prefix string) *catalog.Table {
		schema := types.NewSchema(
			types.Column{Name: prefix + "c1", Kind: types.KindInt},
			types.Column{Name: prefix + "c2", Kind: types.KindInt},
			types.Column{Name: prefix + "c3", Kind: types.KindInt},
			types.Column{Name: prefix + "c4", Kind: types.KindInt},
			types.Column{Name: prefix + "c5", Kind: types.KindInt},
		)
		var data []types.Tuple
		for i := int64(0); i < rows; i++ {
			data = append(data, types.NewTuple(
				types.NewInt(i%17), types.NewInt(i%5), types.NewInt(i%11),
				types.NewInt(i%7), types.NewInt(i%13),
			))
		}
		tb, err := f.cat.CreateTable(name, schema, sortord.Empty, data)
		if err != nil {
			t.Fatal(err)
		}
		return tb
	}
	return mk("r1", "a_"), mk("r2", "b_"), mk("r3", "c_")
}

// q4 assembles Experiment B2's Query 4: two full outer joins sharing the
// attributes c4 and c5.
func (f *fixture) q4(t *testing.T) logical.Node {
	t.Helper()
	r1 := logical.NewScan(mustTable(f.cat, "r1"))
	r2 := logical.NewScan(mustTable(f.cat, "r2"))
	r3 := logical.NewScan(mustTable(f.cat, "r3"))
	j1 := logical.NewJoin(r1, r2, expr.AndOf(
		expr.Eq(expr.Col("a_c5"), expr.Col("b_c5")),
		expr.Eq(expr.Col("a_c4"), expr.Col("b_c4")),
		expr.Eq(expr.Col("a_c3"), expr.Col("b_c3")),
	), exec.FullOuterJoin)
	j2 := logical.NewJoin(j1, r3, expr.AndOf(
		expr.Eq(expr.Col("c_c1"), expr.Col("a_c1")),
		expr.Eq(expr.Col("c_c4"), expr.Col("a_c4")),
		expr.Eq(expr.Col("c_c5"), expr.Col("a_c5")),
	), exec.FullOuterJoin)
	return j2
}

func TestPhase2SharesPrefixAcrossJoins(t *testing.T) {
	f := newFixture(t)
	f.q4World(t, 300)
	root := f.q4(t)
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	if !res.Stats.Phase2Applied {
		t.Fatal("phase 2 should run on a two-join plan")
	}
	// Collect merge join keys; the two joins share {c4, c5} and phase 2
	// should give their permutations a common 2-attribute prefix.
	var keys []sortord.Order
	res.Plan.Walk(func(p *Plan) {
		if p.Kind == OpMergeJoin {
			keys = append(keys, p.LeftKey)
		}
	})
	if len(keys) != 2 {
		t.Fatalf("expected 2 merge joins, got %d:\n%s", len(keys), res.Plan.Format())
	}
	// Compare on base attribute suffix (strip the table prefix a_/b_/c_).
	strip := func(o sortord.Order) []string {
		out := make([]string, len(o))
		for i, a := range o {
			out[i] = a[len(a)-2:]
		}
		return out
	}
	k0, k1 := strip(keys[0]), strip(keys[1])
	shared := 0
	for i := 0; i < len(k0) && i < len(k1); i++ {
		if k0[i] != k1[i] {
			break
		}
		shared++
	}
	if shared < 2 {
		t.Fatalf("joins should share a 2-attribute prefix after phase 2: %v vs %v\n%s",
			keys[0], keys[1], res.Plan.Format())
	}
}

func TestPhase2NeverWorsensCost(t *testing.T) {
	f := newFixture(t)
	f.q4World(t, 200)
	root := f.q4(t)
	with := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	optsNo := DefaultOptions(HeuristicFavorable)
	optsNo.DisablePhase2 = true
	without := mustOptimize(t, root, optsNo)
	if with.Plan.Cost.Total > without.Plan.Cost.Total+1e-9 {
		t.Fatalf("phase 2 made the plan worse: %f > %f", with.Plan.Cost.Total, without.Plan.Cost.Total)
	}
}

func TestQ4ExecutionAgreesAcrossHeuristics(t *testing.T) {
	f := newFixture(t)
	f.q4World(t, 120)
	root := f.q4(t)
	var reference []string
	for _, h := range []Heuristic{HeuristicArbitrary, HeuristicFavorable} {
		res := mustOptimize(t, root, DefaultOptions(h))
		got := canonicalize(execPlan(t, f, res.Plan))
		if reference == nil {
			reference = got
			continue
		}
		if len(got) != len(reference) {
			t.Fatalf("%v: %d rows vs reference %d", h, len(got), len(reference))
		}
		for i := range got {
			if got[i] != reference[i] {
				t.Fatalf("%v differs at row %d", h, i)
			}
		}
	}
}

func TestFullOuterJoinUsesMergeEvenWithHashEnabled(t *testing.T) {
	f := newFixture(t)
	f.q4World(t, 100)
	root := f.q4(t)
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	if res.Plan.CountKind(OpHashJoin) != 0 {
		t.Fatal("full outer joins must not use hash join")
	}
	if res.Plan.CountKind(OpMergeJoin) != 2 {
		t.Fatalf("expected two merge joins:\n%s", res.Plan.Format())
	}
}

func TestDeterminingSubsetFD(t *testing.T) {
	// The Query 3 FD: {ps_partkey, ps_suppkey} → ps_availqty means the
	// aggregate's interesting orders only involve partkey and suppkey.
	f := newFixture(t)
	f.buildQ3World(t, 12, 4)
	root := f.q3(t)
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	res.Plan.Walk(func(p *Plan) {
		if p.Kind == OpGroupAgg {
			for _, a := range p.OutOrder {
				if a == "ps_availqty" {
					t.Fatalf("FD-determined column in the aggregate's input order: %v", p.OutOrder)
				}
			}
		}
	})
}

func TestOptimizeStatsPopulated(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 8, 3)
	root := f.q3(t)
	res := mustOptimize(t, root, DefaultOptions(HeuristicExhaustive))
	if res.Stats.GoalsExplored == 0 || res.Stats.PlansCosted == 0 || res.Stats.OrdersTried == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
	// Exhaustive must try at least as many orders as favorable.
	resO := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	if res.Stats.OrdersTried < resO.Stats.OrdersTried {
		t.Fatalf("PYRO-E tried %d orders, PYRO-O %d", res.Stats.OrdersTried, resO.Stats.OrdersTried)
	}
}

func TestDistinctAndUnionPlans(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 10, 3)
	ps := mustTable(f.cat, "partsupp")

	// DISTINCT over a projection.
	proj := logical.NewProjectNames(logical.NewScan(ps), []string{"ps_suppkey", "ps_partkey"})
	dist := logical.NewDistinct(proj)
	root := logical.NewOrderBy(dist, sortord.New("ps_suppkey"))
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	rows := execPlan(t, f, res.Plan)
	if len(rows) != 30 {
		t.Fatalf("distinct rows = %d, want 30", len(rows))
	}
	ord := res.Plan.Schema.MustOrdinal("ps_suppkey")
	for i := 1; i < len(rows); i++ {
		if rows[i-1][ord].Compare(rows[i][ord]) > 0 {
			t.Fatal("distinct output not sorted as required")
		}
	}

	// UNION (dedup) of two projections of the same table.
	l := logical.NewProjectNames(logical.NewScan(ps), []string{"ps_partkey", "ps_suppkey"})
	r := logical.NewProjectNames(logical.NewScan(ps), []string{"ps_partkey", "ps_suppkey"})
	u := logical.NewUnion(l, r, true)
	uRes := mustOptimize(t, logical.NewOrderBy(u, sortord.New("ps_partkey")), DefaultOptions(HeuristicFavorable))
	uRows := execPlan(t, f, uRes.Plan)
	if len(uRows) != 30 {
		t.Fatalf("union dedup rows = %d, want 30", len(uRows))
	}
	if uRes.Plan.CountKind(OpMergeUnion) == 0 {
		t.Fatalf("expected a merge union:\n%s", uRes.Plan.Format())
	}

	// UNION ALL.
	ua := logical.NewUnion(l, r, false)
	uaRes := mustOptimize(t, ua, DefaultOptions(HeuristicFavorable))
	uaRows := execPlan(t, f, uaRes.Plan)
	if len(uaRows) != 60 {
		t.Fatalf("union all rows = %d, want 60", len(uaRows))
	}
}

func TestNLJoinForNonEquiPredicate(t *testing.T) {
	f := newFixture(t)
	f.q4World(t, 40)
	r1 := logical.NewScan(mustTable(f.cat, "r1"))
	r2 := logical.NewScan(mustTable(f.cat, "r2"))
	j := logical.NewJoin(r1, r2, expr.Compare(expr.LT, expr.Col("a_c1"), expr.Col("b_c1")), exec.InnerJoin)
	res := mustOptimize(t, j, DefaultOptions(HeuristicFavorable))
	if res.Plan.CountKind(OpNLJoin) == 0 {
		t.Fatalf("non-equijoin needs nested loops:\n%s", res.Plan.Format())
	}
	rows := execPlan(t, f, res.Plan)
	// Verify against a direct count.
	want := 0
	r1Rows, _ := storage.ReadAll(mustTable(f.cat, "r1").File())
	r2Rows, _ := storage.ReadAll(mustTable(f.cat, "r2").File())
	for _, a := range r1Rows {
		for _, b := range r2Rows {
			if a[0].Int() < b[0].Int() {
				want++
			}
		}
	}
	if len(rows) != want {
		t.Fatalf("NL join rows = %d, want %d", len(rows), want)
	}
}

func TestPlanFormatAndSignature(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 8, 3)
	root := f.q3(t)
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	s := res.Plan.Format()
	if s == "" || res.Plan.Signature() == "" {
		t.Fatal("plan rendering empty")
	}
	if res.Plan.LocalCost() < 0 {
		t.Fatalf("local cost negative: %f", res.Plan.LocalCost())
	}
}

func TestMemoizationReusesGoals(t *testing.T) {
	f := newFixture(t)
	f.buildQ3World(t, 8, 3)
	root := f.q3(t)
	// Optimizing the same tree twice in one optimizer is not exposed;
	// instead verify the same logical node with the same requirement is
	// not exploded: goals explored must stay well under plans costed
	// with the exhaustive heuristic on a 2-attribute join (2! orders).
	res := mustOptimize(t, root, DefaultOptions(HeuristicExhaustive))
	if res.Stats.GoalsExplored > 200 {
		t.Fatalf("memoization broken: %d goals for a two-table query", res.Stats.GoalsExplored)
	}
}

func TestRequiredOrderOnGeneratedColumnFallsBack(t *testing.T) {
	// ORDER BY a computed projection column: the requirement cannot be
	// pushed below the Project, so an enforcer must appear above it.
	f := newFixture(t)
	f.buildQ3World(t, 8, 3)
	ps := logical.NewScan(mustTable(f.cat, "partsupp"))
	proj := logical.NewProject(ps, []logical.ProjCol{
		{Name: "x", Expr: expr.Arith{Op: expr.Mul, L: expr.Col("ps_partkey"), R: expr.IntLit(2)}},
		{Name: "ps_suppkey", Expr: expr.Col("ps_suppkey")},
	})
	root := logical.NewOrderBy(proj, sortord.New("x"))
	res := mustOptimize(t, root, DefaultOptions(HeuristicFavorable))
	rows := execPlan(t, f, res.Plan)
	ord := res.Plan.Schema.MustOrdinal("x")
	for i := 1; i < len(rows); i++ {
		if rows[i-1][ord].Compare(rows[i][ord]) > 0 {
			t.Fatal("computed-column order violated")
		}
	}
	if res.Plan.CountKind(OpSort) == 0 {
		t.Fatal("expected an explicit sort above the projection")
	}
}

// mustTable fetches a table the test fixture itself created; a lookup
// failure is a fixture bug, not a condition under test.
func mustTable(c *catalog.Catalog, name string) *catalog.Table {
	tb, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return tb
}
