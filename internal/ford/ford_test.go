package ford

import (
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

// buildQ3Catalog builds a miniature of the paper's Query 3 environment:
// partsupp clustered on (ps_partkey, ps_suppkey) with a covering secondary
// index on ps_suppkey, lineitem clustered on its key with a covering
// secondary index on l_suppkey.
func buildQ3Catalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New(storage.NewDisk(512))
	psSchema := types.NewSchema(
		types.Column{Name: "ps_partkey", Kind: types.KindInt},
		types.Column{Name: "ps_suppkey", Kind: types.KindInt},
		types.Column{Name: "ps_availqty", Kind: types.KindInt},
	)
	liSchema := types.NewSchema(
		types.Column{Name: "l_partkey", Kind: types.KindInt},
		types.Column{Name: "l_suppkey", Kind: types.KindInt},
		types.Column{Name: "l_quantity", Kind: types.KindInt},
		types.Column{Name: "l_linestatus", Kind: types.KindString, Width: 1},
	)
	var psRows, liRows []types.Tuple
	for p := int64(0); p < 20; p++ {
		for s := int64(0); s < 4; s++ {
			psRows = append(psRows, types.NewTuple(types.NewInt(p), types.NewInt(s), types.NewInt(100)))
			liRows = append(liRows, types.NewTuple(types.NewInt(p), types.NewInt(s), types.NewInt(7), types.NewString("O")))
		}
	}
	ps, err := c.CreateTable("partsupp", psSchema, sortord.New("ps_partkey", "ps_suppkey"), psRows)
	if err != nil {
		t.Fatal(err)
	}
	li, err := c.CreateTable("lineitem", liSchema, sortord.New("l_partkey", "l_suppkey"), liRows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("ps_sk", ps, sortord.New("ps_suppkey"), []string{"ps_partkey", "ps_availqty"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateIndex("li_sk", li, sortord.New("l_suppkey"), []string{"l_partkey", "l_quantity", "l_linestatus"}); err != nil {
		t.Fatal(err)
	}
	return c
}

// buildQ3 assembles the paper's Query 3 logical tree.
func buildQ3(t *testing.T, c *catalog.Catalog) (logical.Node, *logical.Join) {
	t.Helper()
	ps := logical.NewScan(mustTable(c, "partsupp"))
	li := logical.NewScan(mustTable(c, "lineitem"))
	liFiltered := logical.NewSelect(li, expr.Eq(expr.Col("l_linestatus"), expr.StrLit("O")))
	join := logical.NewJoin(ps, liFiltered, expr.AndOf(
		expr.Eq(expr.Col("ps_suppkey"), expr.Col("l_suppkey")),
		expr.Eq(expr.Col("ps_partkey"), expr.Col("l_partkey")),
	), exec.InnerJoin)
	gb := logical.NewGroupBy(join,
		[]string{"ps_availqty", "ps_partkey", "ps_suppkey"},
		[]logical.AggSpec{{Name: "total_qty", Func: exec.AggSum, Arg: expr.Col("l_quantity")}})
	having := logical.NewSelect(gb, expr.Compare(expr.GT, expr.Col("total_qty"), expr.Col("ps_availqty")))
	root := logical.NewOrderBy(having, sortord.New("ps_partkey"))
	return root, join
}

func hasOrder(orders []sortord.Order, want sortord.Order) bool {
	for _, o := range orders {
		if o.Equal(want) {
			return true
		}
	}
	return false
}

func TestAFMScanIncludesClusteringAndCoveringIndices(t *testing.T) {
	c := buildQ3Catalog(t)
	root, _ := buildQ3(t, c)
	fc := NewComputer(root)
	var psScan *logical.Scan
	var walk func(n logical.Node)
	walk = func(n logical.Node) {
		if s, ok := n.(*logical.Scan); ok && s.Table.Name == "partsupp" {
			psScan = s
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(root)
	orders := fc.AFM(psScan)
	if !hasOrder(orders, sortord.New("ps_partkey", "ps_suppkey")) {
		t.Fatalf("afm missing clustering order: %v", orders)
	}
	if !hasOrder(orders, sortord.New("ps_suppkey")) {
		t.Fatalf("afm missing covering index order: %v", orders)
	}
}

func TestAFMScanExcludesNonCoveringIndex(t *testing.T) {
	c := catalog.New(storage.NewDisk(512))
	schema := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindInt},
		types.Column{Name: "c", Kind: types.KindInt},
	)
	rows := []types.Tuple{types.NewTuple(types.NewInt(1), types.NewInt(2), types.NewInt(3))}
	tb, _ := c.CreateTable("t", schema, sortord.New("a"), rows)
	// Index on b storing only b: does NOT cover a query touching c.
	c.CreateIndex("t_b", tb, sortord.New("b"), nil)
	scan := logical.NewScan(tb)
	root := logical.NewOrderBy(
		logical.NewSelect(scan, expr.Compare(expr.GT, expr.Col("c"), expr.IntLit(0))),
		sortord.New("a"))
	fc := NewComputer(root)
	orders := fc.AFM(scan)
	if hasOrder(orders, sortord.New("b")) {
		t.Fatalf("non-covering index must not contribute: %v", orders)
	}
	if !hasOrder(orders, sortord.New("a")) {
		t.Fatalf("clustering order missing: %v", orders)
	}
}

func TestAFMSelectPassthrough(t *testing.T) {
	c := buildQ3Catalog(t)
	root, _ := buildQ3(t, c)
	fc := NewComputer(root)
	var sel *logical.Select
	var walk func(n logical.Node)
	walk = func(n logical.Node) {
		if s, ok := n.(*logical.Select); ok {
			if _, isScan := s.Child.(*logical.Scan); isScan {
				sel = s
			}
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(root)
	if sel == nil {
		t.Fatal("no select over scan found")
	}
	got := fc.AFM(sel)
	want := fc.AFM(sel.Child)
	if len(got) != len(want) {
		t.Fatalf("select afm %v != child afm %v", got, want)
	}
}

func TestAFMJoinExtendsPrefixes(t *testing.T) {
	c := buildQ3Catalog(t)
	root, join := buildQ3(t, c)
	fc := NewComputer(root)
	orders := fc.AFM(join)
	// From the ps_suppkey covering index: (ps_suppkey) extends to
	// (ps_suppkey, ps_partkey).
	if !hasOrder(orders, sortord.New("ps_suppkey", "ps_partkey")) {
		t.Fatalf("join afm missing suppkey-led permutation: %v", orders)
	}
	// From the partsupp clustering order: (ps_partkey, ps_suppkey).
	if !hasOrder(orders, sortord.New("ps_partkey", "ps_suppkey")) {
		t.Fatalf("join afm missing clustering permutation: %v", orders)
	}
}

func TestAFMProjectRenames(t *testing.T) {
	c := buildQ3Catalog(t)
	ps := logical.NewScan(mustTable(c, "partsupp"))
	proj := logical.NewProject(ps, []logical.ProjCol{
		{Name: "pk", Expr: expr.Col("ps_partkey")},
		{Name: "sk", Expr: expr.Col("ps_suppkey")},
	})
	root := logical.NewOrderBy(proj, sortord.New("pk"))
	fc := NewComputer(root)
	orders := fc.AFM(proj)
	if !hasOrder(orders, sortord.New("pk", "sk")) {
		t.Fatalf("project should rename clustering order: %v", orders)
	}
}

func TestAFMProjectTruncatesAtDroppedColumn(t *testing.T) {
	c := buildQ3Catalog(t)
	ps := logical.NewScan(mustTable(c, "partsupp"))
	// Project drops ps_partkey: clustering order (ps_partkey, ps_suppkey)
	// contributes nothing (its first attribute is gone).
	proj := logical.NewProjectNames(ps, []string{"ps_suppkey", "ps_availqty"})
	root := logical.NewOrderBy(proj, sortord.New("ps_suppkey"))
	fc := NewComputer(root)
	orders := fc.AFM(proj)
	for _, o := range orders {
		if o[0] == "ps_partkey" {
			t.Fatalf("dropped column leaked into afm: %v", orders)
		}
	}
	// The suppkey covering index order survives.
	if !hasOrder(orders, sortord.New("ps_suppkey")) {
		t.Fatalf("suppkey order should survive projection: %v", orders)
	}
}

func TestAFMGroupByExtension(t *testing.T) {
	c := buildQ3Catalog(t)
	root, _ := buildQ3(t, c)
	fc := NewComputer(root)
	var gb *logical.GroupBy
	var walk func(n logical.Node)
	walk = func(n logical.Node) {
		if g, ok := n.(*logical.GroupBy); ok {
			gb = g
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(root)
	orders := fc.AFM(gb)
	if len(orders) == 0 {
		t.Fatal("group-by afm empty")
	}
	groupSet := sortord.NewAttrSet("ps_availqty", "ps_partkey", "ps_suppkey")
	for _, o := range orders {
		if !o.Attrs().Equal(groupSet) && !o.Attrs().ContainsAll(groupSet) {
			// Orders must be (at least) permutations of the group columns.
			t.Fatalf("group-by afm order %v does not span group columns", o)
		}
	}
}

func TestInterestingOrders(t *testing.T) {
	s := sortord.NewAttrSet("x", "y")
	afms := [][]sortord.Order{
		{sortord.New("x", "z")},      // restricts to (x)
		{sortord.New("y", "x", "q")}, // restricts to (y,x)
	}
	got := InterestingOrders(afms, s, sortord.New("q", "x"))
	// (x) extends to (x,y); (y,x) is already full. Required out (q,x)
	// restricts to ε (q not in S).
	if !hasOrder(got, sortord.New("x", "y")) || !hasOrder(got, sortord.New("y", "x")) {
		t.Fatalf("interesting orders = %v", got)
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 orders, got %v", got)
	}
	// Empty afms: fall back to one arbitrary permutation.
	fallback := InterestingOrders(nil, s, sortord.Empty)
	if len(fallback) != 1 || fallback[0].Len() != 2 {
		t.Fatalf("fallback = %v", fallback)
	}
}

func TestInterestingOrdersRedundantPrefixDropped(t *testing.T) {
	s := sortord.NewAttrSet("x", "y", "z")
	afms := [][]sortord.Order{
		{sortord.New("x")},
		{sortord.New("x", "y")},
	}
	got := InterestingOrders(afms, s, sortord.Empty)
	// (x) ≤ (x,y): only (x,y,...) survives.
	if len(got) != 1 || !got[0][0:2].Equal(sortord.New("x", "y")) {
		t.Fatalf("redundant prefix not dropped: %v", got)
	}
}

func TestRemoveRedundant(t *testing.T) {
	in := []sortord.Order{
		sortord.New("a"),
		sortord.New("a", "b"),
		sortord.New("c"),
	}
	got := RemoveRedundant(in)
	if len(got) != 2 || !hasOrder(got, sortord.New("a", "b")) || !hasOrder(got, sortord.New("c")) {
		t.Fatalf("RemoveRedundant = %v", got)
	}
	// Duplicates: keep exactly one.
	dup := []sortord.Order{sortord.New("a"), sortord.New("a")}
	if got := RemoveRedundant(dup); len(got) != 1 {
		t.Fatalf("duplicate handling = %v", got)
	}
}

func TestAFMUnion(t *testing.T) {
	c := buildQ3Catalog(t)
	l := logical.NewProjectNames(logical.NewScan(mustTable(c, "partsupp")), []string{"ps_partkey", "ps_suppkey"})
	r := logical.NewProjectNames(logical.NewScan(mustTable(c, "partsupp")), []string{"ps_partkey", "ps_suppkey"})
	u := logical.NewUnion(l, r, true)
	root := logical.NewOrderBy(u, sortord.New("ps_partkey"))
	fc := NewComputer(root)
	orders := fc.AFM(u)
	if len(orders) == 0 {
		t.Fatal("union afm empty")
	}
	// All orders span both union columns (distinct-style extension).
	cols := sortord.NewAttrSet("ps_partkey", "ps_suppkey")
	for _, o := range orders {
		if !o.Attrs().Equal(cols) {
			t.Fatalf("union afm order %v should span %v", o, cols)
		}
	}
	if !hasOrder(orders, sortord.New("ps_partkey", "ps_suppkey")) {
		t.Fatalf("clustered order should survive union: %v", orders)
	}
}

func TestNeededAttrsUnknownTable(t *testing.T) {
	c := buildQ3Catalog(t)
	root, _ := buildQ3(t, c)
	fc := NewComputer(root)
	// A table not in the query: needed = all its columns (conservative).
	other := mustTable(c, "lineitem")
	if fc.NeededAttrs(other).Len() == 0 {
		t.Fatal("needed attrs must never be empty for a real table")
	}
}

func TestAFMMemoization(t *testing.T) {
	c := buildQ3Catalog(t)
	root, join := buildQ3(t, c)
	fc := NewComputer(root)
	a := fc.AFM(join)
	b := fc.AFM(join)
	if len(a) != len(b) {
		t.Fatal("memoized result changed")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("memoized orders differ")
		}
	}
}

// mustTable fetches a table the test fixture itself created; a lookup
// failure is a fixture bug, not a condition under test.
func mustTable(c *catalog.Catalog, name string) *catalog.Table {
	tb, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return tb
}
