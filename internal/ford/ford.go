// Package ford computes approximate minimal favorable orders (afm) for
// logical expressions, per §5.1 of the paper. A favorable order of e is a
// sort order obtainable at less than full-sort cost — clustering orders,
// covering-index key orders, and orders propagated through selections,
// projections, joins and grouping. The afm approximates the minimal
// favorable-order set in one bottom-up pass of the query tree (§5.1.2):
//
//	afm(R)        = {o_R} ∪ {o(I) : I ∈ idx(R), I covers the query}
//	afm(σ(e))     = afm(e)
//	afm(Π_L(e))   = {o ∧ L : o ∈ afm(e)}
//	afm(e1 ⋈ e2)  = T ∪ {(o ∧ S) + ⟨S − attrs(o ∧ S)⟩ : o ∈ T ∪ {ε}},
//	                T = afm(e1) ∪ afm(e2), S = join attribute set
//	afm(G_L(e))   = {(o ∧ L) + ⟨L − attrs(o ∧ L)⟩ : o ∈ afm(e) ∪ {ε}}
//
// "Covers the query" is evaluated against the set of attributes the whole
// query needs from that table, computed in a pre-pass.
package ford

import (
	"pyro/internal/catalog"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/sortord"
)

// maxOrdersPerNode caps afm growth; the paper observes the number of
// favorable orders is very small in practice (m ≤ 2 per base relation).
const maxOrdersPerNode = 24

// Computer derives afm sets over one query tree. Create one per query with
// NewComputer (it performs the needed-attribute pre-pass), then call AFM on
// any node of that tree.
type Computer struct {
	needed map[*catalog.Table]sortord.AttrSet
	memo   map[logical.Node][]sortord.Order
}

// NewComputer analyses the query rooted at root.
func NewComputer(root logical.Node) *Computer {
	c := &Computer{
		needed: make(map[*catalog.Table]sortord.AttrSet),
		memo:   make(map[logical.Node][]sortord.Order),
	}
	used := sortord.NewAttrSet()
	collectUsedAttrs(root, used)
	// The root's output columns are needed as well.
	for _, n := range root.Schema().Names() {
		used.Add(n)
	}
	var scan func(n logical.Node)
	scan = func(n logical.Node) {
		if s, ok := n.(*logical.Scan); ok {
			need := s.Table.Schema.AttrSet().Intersect(used)
			c.needed[s.Table] = need
		}
		for _, ch := range n.Children() {
			scan(ch)
		}
	}
	scan(root)
	return c
}

// collectUsedAttrs gathers every attribute referenced by any expression in
// the tree (predicates, projections, aggregates, group and order columns).
func collectUsedAttrs(n logical.Node, into sortord.AttrSet) {
	switch t := n.(type) {
	case *logical.Select:
		t.Pred.CollectColumns(into)
	case *logical.Project:
		for _, c := range t.Cols {
			c.Expr.CollectColumns(into)
		}
	case *logical.Join:
		if t.Pred != nil {
			t.Pred.CollectColumns(into)
		}
	case *logical.GroupBy:
		for _, g := range t.GroupCols {
			into.Add(g)
		}
		for _, a := range t.Aggs {
			if a.Arg != nil {
				a.Arg.CollectColumns(into)
			}
		}
	case *logical.OrderBy:
		for _, a := range t.Order {
			into.Add(a)
		}
	case *logical.Union, *logical.Distinct, *logical.Scan:
	}
	for _, ch := range n.Children() {
		collectUsedAttrs(ch, into)
	}
}

// NeededAttrs returns the attributes the query needs from a table (what a
// covering index must store).
func (c *Computer) NeededAttrs(t *catalog.Table) sortord.AttrSet {
	if s, ok := c.needed[t]; ok {
		return s
	}
	return t.Schema.AttrSet()
}

// AFM returns the approximate minimal favorable orders of node n (which
// must belong to the tree given to NewComputer).
func (c *Computer) AFM(n logical.Node) []sortord.Order {
	if orders, ok := c.memo[n]; ok {
		return orders
	}
	var orders []sortord.Order
	switch t := n.(type) {
	case *logical.Scan:
		orders = c.afmScan(t)
	case *logical.Select:
		orders = c.AFM(t.Child)
	case *logical.Project:
		orders = c.afmProject(t)
	case *logical.Join:
		orders = c.afmJoin(t)
	case *logical.GroupBy:
		orders = extendThrough(c.AFM(t.Child), sortord.NewAttrSet(t.GroupCols...))
	case *logical.Distinct:
		orders = extendThrough(c.AFM(t.Child), t.Child.Schema().AttrSet())
	case *logical.Union:
		orders = extendThrough(
			append(append([]sortord.Order{}, c.AFM(t.Left)...), translateUnion(t, c.AFM(t.Right))...),
			t.Left.Schema().AttrSet())
	case *logical.OrderBy:
		orders = c.AFM(t.Child)
	}
	orders = dedupOrders(orders)
	if len(orders) > maxOrdersPerNode {
		orders = orders[:maxOrdersPerNode]
	}
	c.memo[n] = orders
	return orders
}

func (c *Computer) afmScan(s *logical.Scan) []sortord.Order {
	var orders []sortord.Order
	if !s.Table.ClusterOrder.IsEmpty() {
		orders = append(orders, s.Table.ClusterOrder.Clone())
	}
	need := c.NeededAttrs(s.Table)
	for _, ix := range s.Table.Indices {
		if ix.Covers(need) {
			orders = append(orders, ix.KeyOrder.Clone())
		}
	}
	return orders
}

func (c *Computer) afmProject(p *logical.Project) []sortord.Order {
	// Map child column names to output names for plain column projections.
	rename := make(map[string]string)
	for _, col := range p.Cols {
		if ref, ok := col.Expr.(expr.ColRef); ok {
			if _, taken := rename[ref.Name]; !taken {
				rename[ref.Name] = col.Name
			}
		}
	}
	var out []sortord.Order
	for _, o := range c.AFM(p.Child) {
		var mapped sortord.Order
		for _, a := range o {
			newName, ok := rename[a]
			if !ok {
				break // o ∧ L: stop at the first non-projected attribute
			}
			mapped = append(mapped, newName)
		}
		if len(mapped) > 0 {
			out = append(out, mapped)
		}
	}
	return out
}

func (c *Computer) afmJoin(j *logical.Join) []sortord.Order {
	leftAFM := c.AFM(j.Left)
	rightAFM := c.AFM(j.Right)
	// T: input favorable orders pass through (nested-loops joins propagate
	// the outer's order; merge joins propagate the key order).
	t := make([]sortord.Order, 0, len(leftAFM)+len(rightAFM))
	t = append(t, leftAFM...)
	t = append(t, rightAFM...)

	sLeft := j.JoinAttrSetLeft()
	sRight := j.JoinAttrSetRight()
	out := append([]sortord.Order{}, t...)
	// Extend each T order's join-attribute prefix to a full permutation of
	// S; also the bare ⟨S⟩ from ε.
	candidates := append(append([]sortord.Order{}, t...), sortord.Empty)
	for _, o := range candidates {
		prefix := o.LongestPrefixIn(sLeft)
		if prefix.Len() == 0 {
			prefix = j.CanonicalizeOrder(o.LongestPrefixIn(sRight))
		}
		ext := prefix.ExtendToSet(sLeft)
		if ext.Len() > 0 {
			out = append(out, ext)
		}
	}
	return out
}

// extendThrough applies the group-by/distinct rule: for each input order
// (and ε), keep the prefix within L and extend with the remaining L
// attributes in arbitrary order.
func extendThrough(input []sortord.Order, l sortord.AttrSet) []sortord.Order {
	var out []sortord.Order
	for _, o := range append(append([]sortord.Order{}, input...), sortord.Empty) {
		ext := o.LongestPrefixIn(l).ExtendToSet(l)
		if ext.Len() > 0 {
			out = append(out, ext)
		}
	}
	return out
}

// translateUnion maps right-input orders to the union's output (left)
// column names positionally.
func translateUnion(u *logical.Union, orders []sortord.Order) []sortord.Order {
	rs, ls := u.Right.Schema(), u.Left.Schema()
	var out []sortord.Order
	for _, o := range orders {
		var mapped sortord.Order
		ok := true
		for _, a := range o {
			i, found := rs.Ordinal(a)
			if !found {
				ok = false
				break
			}
			mapped = append(mapped, ls.Col(i).Name)
		}
		if ok && len(mapped) > 0 {
			out = append(out, mapped)
		}
	}
	return out
}

func dedupOrders(orders []sortord.Order) []sortord.Order {
	seen := make(map[string]struct{}, len(orders))
	out := make([]sortord.Order, 0, len(orders))
	for _, o := range orders {
		if o.IsEmpty() {
			continue
		}
		k := o.Key()
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, o)
	}
	return sortord.SortOrders(out)
}

// RemoveRedundant drops any order that is a prefix of another in the set
// (step 2 of the I(e, o) computation in §5.2.1).
func RemoveRedundant(orders []sortord.Order) []sortord.Order {
	var out []sortord.Order
	for i, o := range orders {
		redundant := false
		for k, p := range orders {
			if i == k {
				continue
			}
			if o.PrefixOf(p) && (!p.PrefixOf(o) || i > k) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, o)
		}
	}
	return out
}

// InterestingOrders computes I(e, o) for a merge-style operator whose
// flexible requirement is "some permutation of attrs": collect the inputs'
// favorable orders restricted to attrs plus the required output order's
// restriction, drop redundant prefixes, and extend everything to full
// permutations of attrs (§5.2.1). requiredOut may be ε.
func InterestingOrders(inputAFMs [][]sortord.Order, attrs sortord.AttrSet, requiredOut sortord.Order) []sortord.Order {
	var t []sortord.Order
	for _, afm := range inputAFMs {
		for _, o := range afm {
			if p := o.LongestPrefixIn(attrs); p.Len() > 0 {
				t = append(t, p)
			}
		}
	}
	if p := requiredOut.LongestPrefixIn(attrs); p.Len() > 0 {
		t = append(t, p)
	}
	t = dedupOrders(t)
	t = RemoveRedundant(t)
	out := make([]sortord.Order, 0, len(t)+1)
	for _, o := range t {
		out = append(out, o.ExtendToSet(attrs))
	}
	if len(out) == 0 {
		out = append(out, sortord.APermute(attrs))
	}
	return dedupOrders(out)
}
