package govern

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pyro/internal/storage"
)

// spillingTap returns a tap whose ledger already shows run-page writes —
// the signal the governor reads as "this query is spilling".
func spillingTap(t *testing.T) *storage.Tap {
	t.Helper()
	d := storage.NewDisk(4096)
	tap := storage.NewTap()
	a := d.NewArenaTapped(tap)
	t.Cleanup(a.Release)
	if _, err := a.CreateTemp("run", storage.KindRun).AppendPage([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if tap.Stats().RunPageWrites == 0 {
		t.Fatal("tap shows no run-page writes after writing a run page")
	}
	return tap
}

func TestLoneQueryGetsFullAsk(t *testing.T) {
	g, err := New(Config{TotalBlocks: 1000})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := g.Acquire(1000, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Blocks() != 1000 {
		t.Fatalf("lone query granted %d blocks, want the full 1000", gr.Blocks())
	}
	if gr.Waited() != 0 || gr.Waits() != 0 {
		t.Fatalf("lone query waited (%v, %d waits), want immediate grant", gr.Waited(), gr.Waits())
	}
	gr.Release()
	if s := g.Stats(); s.GrantedBlocks != 0 || s.LiveGrants != 0 {
		t.Fatalf("after release: %+v, want empty pool", s)
	}
}

func TestAskClampedToPool(t *testing.T) {
	g, _ := New(Config{TotalBlocks: 100})
	gr, err := g.Acquire(5000, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Release()
	if gr.Blocks() != 100 {
		t.Fatalf("granted %d, want pool-clamped 100", gr.Blocks())
	}
}

func TestConcurrentGrantsNeverOvercommit(t *testing.T) {
	const total = 64
	g, _ := New(Config{TotalBlocks: total, PollInterval: 50 * time.Microsecond})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				gr, err := g.Acquire(total, nil, nil)
				if err != nil {
					t.Error(err)
					return
				}
				gr.Release()
			}
		}()
	}
	wg.Wait()
	s := g.Stats()
	if s.PeakGrantedBlocks > total {
		t.Fatalf("peak granted %d blocks exceeds the %d-block pool", s.PeakGrantedBlocks, total)
	}
	if s.GrantedBlocks != 0 || s.LiveGrants != 0 {
		t.Fatalf("pool not empty after all releases: %+v", s)
	}
	if s.Grants != 32*50 {
		t.Fatalf("recorded %d grants, want %d", s.Grants, 32*50)
	}
}

func TestReleaseUnblocksWaiter(t *testing.T) {
	g, _ := New(Config{TotalBlocks: 10, MinGrantBlocks: 10})
	first, err := g.Acquire(10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Grant, 1)
	go func() {
		gr, err := g.Acquire(10, nil, nil)
		if err != nil {
			t.Error(err)
		}
		got <- gr
	}()
	select {
	case <-got:
		t.Fatal("second acquire succeeded while the pool was exhausted")
	case <-time.After(20 * time.Millisecond):
	}
	first.Release()
	select {
	case gr := <-got:
		if gr.Blocks() == 0 {
			t.Fatal("woken waiter got an empty grant")
		}
		if gr.Waits() != 1 || gr.Waited() == 0 {
			t.Fatalf("woken waiter reports waits=%d waited=%v, want a recorded wait", gr.Waits(), gr.Waited())
		}
		gr.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("waiter not woken by release")
	}
}

func TestAbortReachesBlockedAcquire(t *testing.T) {
	g, _ := New(Config{TotalBlocks: 10, MinGrantBlocks: 10, PollInterval: 100 * time.Microsecond})
	hold, err := g.Acquire(10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	boom := errors.New("canceled")
	var fired atomic.Bool
	abort := func() error {
		if fired.Load() {
			return boom
		}
		return nil
	}
	done := make(chan error, 1)
	go func() {
		_, err := g.Acquire(10, nil, abort)
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	fired.Store(true)
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("blocked acquire returned %v, want the abort error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not reach the blocked acquire")
	}
	if s := g.Stats(); s.GrantedBlocks != 10 {
		t.Fatalf("aborted waiter disturbed the pool: %+v", s)
	}
}

func TestSpillPressureShrinksHoarder(t *testing.T) {
	g, _ := New(Config{TotalBlocks: 100, MinGrantBlocks: 1, PollInterval: 100 * time.Microsecond})
	// The first query takes the whole pool and is spilling.
	big, err := g.Acquire(100, spillingTap(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if big.Blocks() != 100 {
		t.Fatalf("first grant %d, want 100", big.Blocks())
	}
	// A second query arrives: reclaim must shrink the spilling holder to
	// the fair share instead of blocking behind it.
	small, err := g.Acquire(100, nil, func() error { return errors.New("had to wait: reclaim failed") })
	if err != nil {
		t.Fatal(err)
	}
	defer small.Release()
	if big.Blocks() > 50 {
		t.Fatalf("spilling hoarder still holds %d blocks, want <= fair share 50", big.Blocks())
	}
	if small.Blocks() == 0 {
		t.Fatal("second query got nothing despite reclaim")
	}
	s := g.Stats()
	if s.Shrinks == 0 || s.ReclaimedBlocks == 0 {
		t.Fatalf("no reclaim recorded: %+v", s)
	}
	big.Release()
}

func TestNonSpillingGrantIsNotShrunk(t *testing.T) {
	g, _ := New(Config{TotalBlocks: 100, MinGrantBlocks: 10, PollInterval: 100 * time.Microsecond})
	// In-memory (non-spilling) holder of the whole pool.
	mem, err := g.Acquire(100, storage.NewTap(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// A waiter must NOT be able to steal from it; it waits until release.
	done := make(chan *Grant, 1)
	go func() {
		gr, err := g.Acquire(100, nil, nil)
		if err != nil {
			t.Error(err)
		}
		done <- gr
	}()
	select {
	case <-done:
		t.Fatal("waiter acquired while a non-spilling grant held the pool")
	case <-time.After(20 * time.Millisecond):
	}
	if mem.Blocks() != 100 {
		t.Fatalf("non-spilling grant shrunk to %d blocks", mem.Blocks())
	}
	mem.Release()
	gr := <-done
	gr.Release()
}

func TestPartialGrantAboveMinimum(t *testing.T) {
	g, _ := New(Config{TotalBlocks: 100, MinGrantBlocks: 5})
	hold, err := g.Acquire(90, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	// 10 blocks free, fair share would be 50: the second query takes the
	// partial 10 rather than queueing.
	gr, err := g.Acquire(100, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer gr.Release()
	if gr.Blocks() != 10 {
		t.Fatalf("partial grant %d, want the 10 free blocks", gr.Blocks())
	}
}

func TestReleaseIdempotent(t *testing.T) {
	g, _ := New(Config{TotalBlocks: 10})
	gr, err := g.Acquire(10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	gr.Release()
	gr.Release()
	if s := g.Stats(); s.GrantedBlocks != 0 {
		t.Fatalf("double release corrupted the pool: %+v", s)
	}
	gr2, err := g.Acquire(10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gr2.Blocks() != 10 {
		t.Fatalf("pool lost blocks to double release: got %d", gr2.Blocks())
	}
	gr2.Release()
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{TotalBlocks: 0}); err == nil {
		t.Fatal("New accepted a zero pool")
	}
	if _, err := New(Config{TotalBlocks: 10, MinGrantBlocks: -1}); err == nil {
		t.Fatal("New accepted a negative min grant")
	}
	if _, err := NewGate(0, 0); err == nil {
		t.Fatal("NewGate accepted max 0")
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	const max = 4
	gt, err := NewGate(max, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	var live, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := gt.Enter(nil); err != nil {
				t.Error(err)
				return
			}
			n := live.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			live.Add(-1)
			gt.Leave()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > max {
		t.Fatalf("observed %d concurrent holders, gate max is %d", p, max)
	}
	s := gt.Stats()
	if s.Admitted != 64 {
		t.Fatalf("admitted %d, want 64", s.Admitted)
	}
	if s.PeakLive > max {
		t.Fatalf("gate recorded peak %d above max %d", s.PeakLive, max)
	}
	if s.Waits == 0 {
		t.Fatal("64 callers through a 4-slot gate recorded no queue waits")
	}
	if s.Live != 0 || s.Queued != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
}

func TestGateAbortWhileQueued(t *testing.T) {
	gt, _ := NewGate(1, 100*time.Microsecond)
	if _, err := gt.Enter(nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("canceled")
	done := make(chan error, 1)
	go func() {
		_, err := gt.Enter(func() error { return boom })
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("queued Enter returned %v, want abort error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not reach the queued Enter")
	}
	gt.Leave()
	if s := gt.Stats(); s.Live != 0 {
		t.Fatalf("gate corrupted after aborted wait: %+v", s)
	}
}
