package govern

import (
	"fmt"
	"sync"
	"time"
)

// GateStats is a snapshot of an admission gate's counters.
type GateStats struct {
	// Admitted is how many Enter calls have succeeded.
	Admitted int64
	// Waits is how many of those had to queue for a slot.
	Waits int64
	// Live is the current number of admitted queries; PeakLive its
	// high-water mark (never exceeds Max).
	Live     int
	PeakLive int
	// Queued is the current number of callers waiting for admission.
	Queued int
}

// Gate is a bounded concurrent-query admission gate. At most Max queries
// hold a slot at once; excess Enter calls queue. All methods are safe for
// concurrent use.
type Gate struct {
	max  int
	poll time.Duration

	mu     sync.Mutex
	live   int
	queued int
	gen    chan struct{}
	stats  GateStats
}

// NewGate returns a gate admitting at most max concurrent queries. max
// must be positive (callers model "unlimited" by not using a gate at all).
// poll bounds how long a queued Enter waits between abort polls
// (0 = 200µs).
func NewGate(max int, poll time.Duration) (*Gate, error) {
	if max <= 0 {
		return nil, fmt.Errorf("govern: gate max must be positive, got %d", max)
	}
	if poll <= 0 {
		poll = 200 * time.Microsecond
	}
	return &Gate{max: max, poll: poll, gen: make(chan struct{})}, nil
}

// Max returns the gate's concurrency bound.
func (t *Gate) Max() int { return t.max }

// Stats returns a snapshot of the gate's counters.
func (t *Gate) Stats() GateStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stats
	s.Live = t.live
	s.Queued = t.queued
	return s
}

// Enter blocks until a slot is free, polling abort (nil = wait
// indefinitely) so a context cancellation reaches a queued query. It
// returns how long the caller queued (0 when admitted immediately). Every
// successful Enter must be paired with exactly one Leave.
func (t *Gate) Enter(abort func() error) (time.Duration, error) {
	start := time.Now()
	waited := false
	t.mu.Lock()
	for {
		if t.live < t.max {
			t.live++
			t.stats.Admitted++
			if t.live > t.stats.PeakLive {
				t.stats.PeakLive = t.live
			}
			t.mu.Unlock()
			if waited {
				return time.Since(start), nil
			}
			return 0, nil
		}
		if !waited {
			waited = true
			t.stats.Waits++
		}
		t.queued++
		ch := t.gen
		t.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(t.poll):
		}
		var aerr error
		if abort != nil {
			aerr = abort()
		}
		t.mu.Lock()
		t.queued--
		if aerr != nil {
			t.mu.Unlock()
			return 0, aerr
		}
	}
}

// Leave releases a slot taken by a successful Enter and wakes the queue.
func (t *Gate) Leave() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.live <= 0 {
		panic("govern: Gate.Leave without matching Enter")
	}
	t.live--
	close(t.gen)
	t.gen = make(chan struct{})
}
