// Package govern arbitrates shared execution resources across the
// concurrent queries of one database. Everything below it is per-query:
// each cursor has its own storage tap, its own ExecOptions, its own spill
// arenas. Nothing above it stops a thousand concurrent Top-K cursors from
// each claiming the full sort-memory budget and thrashing the spill path.
// The package provides the two serving-side arbiters:
//
//   - Governor — a global sort-memory pool. Queries acquire a Grant before
//     building their operator tree; the grant's live block count flows into
//     xsort.Config as the sort budget (xsort.Budget) in place of the static
//     per-sort M. A lone query always receives its full ask, so
//     single-cursor execution is byte-identical to the ungoverned engine;
//     concurrent queries share the pool by fair shares. Spill pressure
//     feeds back: a grant whose storage.Tap ledger shows run-page writes is
//     already external-sorting, gains little from hoarded memory, and is
//     shrunk toward its fair share while other queries wait — so one huge
//     spilling sort cannot pin the pool against a queue of small Top-K
//     cursors.
//
//   - Gate — bounded query admission. At most Max queries run at once;
//     excess callers queue, and their queue time is reported so ExecStats
//     can surface it.
//
// Blocked Acquire and Enter calls poll the caller's abort function (the
// same context-derived poll that iter.Guard threads through the sort
// loops), so a context cancellation reaches a query stuck waiting for
// memory or admission exactly as it reaches one stuck inside a sort.
package govern

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pyro/internal/storage"
)

// Config sizes a Governor.
type Config struct {
	// TotalBlocks is the global sort-memory pool in disk blocks. Must be
	// positive.
	TotalBlocks int
	// MinGrantBlocks is the smallest grant worth running a sort with: a
	// waiter is granted as soon as this much is free (even if its fair
	// share is larger), and pressure-shrinking never takes a grant below
	// it. 0 defaults to TotalBlocks/256, at least 1.
	MinGrantBlocks int
	// PollInterval bounds how long a blocked Acquire waits between abort
	// polls and spill-pressure re-checks (0 = 200µs). Releases wake
	// waiters immediately; the poll is the backstop that notices abort and
	// tap-observed spill writes, which have no wakeup of their own.
	PollInterval time.Duration
}

func (c Config) minGrant() int {
	if c.MinGrantBlocks > 0 {
		return c.MinGrantBlocks
	}
	m := c.TotalBlocks / 256
	if m < 1 {
		m = 1
	}
	return m
}

func (c Config) poll() time.Duration {
	if c.PollInterval > 0 {
		return c.PollInterval
	}
	return 200 * time.Microsecond
}

// Stats is a snapshot of the governor's counters.
type Stats struct {
	// Grants is how many Acquire calls have succeeded.
	Grants int64
	// GrantWaits is how many of those had to block for capacity.
	GrantWaits int64
	// Shrinks is how many live grants were shrunk by spill-pressure
	// reclaim; ReclaimedBlocks totals the blocks taken back.
	Shrinks         int64
	ReclaimedBlocks int64
	// GrantedBlocks is the currently outstanding total; PeakGrantedBlocks
	// its high-water mark. The governor's invariant is
	// PeakGrantedBlocks <= TotalBlocks: the pool is never overcommitted.
	GrantedBlocks     int
	PeakGrantedBlocks int
	// LiveGrants is the current number of outstanding grants; PeakLive its
	// high-water mark.
	LiveGrants int
	PeakLive   int
}

// Governor is the global sort-memory arbiter. All methods are safe for
// concurrent use.
type Governor struct {
	cfg Config

	mu      sync.Mutex
	free    int
	grants  []*Grant // live grants in acquisition order
	waiters int
	gen     chan struct{} // closed and replaced whenever capacity appears
	stats   Stats
}

// New returns a governor over a pool of cfg.TotalBlocks sort-memory blocks.
func New(cfg Config) (*Governor, error) {
	if cfg.TotalBlocks <= 0 {
		return nil, fmt.Errorf("govern: TotalBlocks must be positive, got %d", cfg.TotalBlocks)
	}
	if cfg.MinGrantBlocks < 0 {
		return nil, fmt.Errorf("govern: negative MinGrantBlocks %d", cfg.MinGrantBlocks)
	}
	return &Governor{cfg: cfg, free: cfg.TotalBlocks, gen: make(chan struct{})}, nil
}

// Total returns the pool size in blocks.
func (g *Governor) Total() int { return g.cfg.TotalBlocks }

// Stats returns a snapshot of the governor's counters.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.GrantedBlocks = g.cfg.TotalBlocks - g.free
	s.LiveGrants = len(g.grants)
	return s
}

// Grant is one query's share of the pool. Its live block count is read by
// every sort enforcer of the query's plan (it implements xsort.Budget), so
// a pressure shrink reaches the sorts at their next buffering decision.
type Grant struct {
	g      *Governor
	tap    *storage.Tap // the query's I/O tap; run-page writes mean spilling
	blocks atomic.Int64
	// initial and waited are written before the grant is returned and
	// read-only afterwards.
	initial  int
	waited   time.Duration
	waits    int64
	released bool // guarded by g.mu
}

// Blocks returns the grant's current size. Sorts consult it per buffering
// decision, so it shrinks take effect mid-query.
func (gr *Grant) Blocks() int { return int(gr.blocks.Load()) }

// Initial returns the size the grant was first issued at.
func (gr *Grant) Initial() int { return gr.initial }

// Waited returns how long Acquire blocked before this grant was issued
// (0 when capacity was immediate); Waits is 1 when it blocked at all.
func (gr *Grant) Waited() time.Duration { return gr.waited }

// Waits returns the number of blocked waits Acquire performed (0 or 1).
func (gr *Grant) Waits() int64 { return gr.waits }

// Release returns the grant's blocks to the pool and wakes waiters.
// Release is idempotent.
func (gr *Grant) Release() {
	g := gr.g
	g.mu.Lock()
	defer g.mu.Unlock()
	if gr.released {
		return
	}
	gr.released = true
	g.free += int(gr.blocks.Load())
	gr.blocks.Store(0)
	for i, l := range g.grants {
		if l == gr {
			g.grants = append(g.grants[:i], g.grants[i+1:]...)
			break
		}
	}
	g.signalLocked()
}

// spilling reports whether the grant's query has written sort-run pages —
// the tap-ledger signal that its sorts are already external.
func (gr *Grant) spilling() bool {
	return gr.tap != nil && gr.tap.Stats().RunPageWrites > 0
}

// Acquire grants sort memory: up to want blocks, the whole pool when the
// query is alone, a fair share under contention. It blocks while the pool
// is exhausted, polling abort (nil = wait indefinitely) so a context
// cancellation reaches the wait; spill-pressure reclaim runs on every
// attempt, shrinking live spilling grants toward their fair share to free
// capacity for the queue. tap may be nil (the grant is then never
// considered spilling).
func (g *Governor) Acquire(want int, tap *storage.Tap, abort func() error) (*Grant, error) {
	if want <= 0 {
		return nil, fmt.Errorf("govern: non-positive grant ask %d", want)
	}
	if want > g.cfg.TotalBlocks {
		want = g.cfg.TotalBlocks
	}
	start := time.Now()
	waited := false
	g.mu.Lock()
	for {
		n := len(g.grants) + g.waiters + 1
		ask := want
		if n > 1 {
			if fair := g.fairShare(n); ask > fair {
				ask = fair
			}
		}
		if g.free < ask {
			g.reclaimLocked(n)
		}
		give := ask
		if give > g.free {
			// A partial grant keeps small queries moving: anything at
			// least MinGrantBlocks (or the full ask, if smaller) is
			// worth running with rather than queueing for.
			give = g.free
		}
		if min := g.cfg.minGrant(); give >= ask || (give >= min && give > 0) {
			gr := &Grant{g: g, tap: tap, initial: give, waits: 0}
			gr.blocks.Store(int64(give))
			if waited {
				gr.waited = time.Since(start)
				gr.waits = 1
			}
			g.free -= give
			g.grants = append(g.grants, gr)
			g.stats.Grants++
			if granted := g.cfg.TotalBlocks - g.free; granted > g.stats.PeakGrantedBlocks {
				g.stats.PeakGrantedBlocks = granted
			}
			if len(g.grants) > g.stats.PeakLive {
				g.stats.PeakLive = len(g.grants)
			}
			g.mu.Unlock()
			return gr, nil
		}
		if !waited {
			waited = true
			g.stats.GrantWaits++
		}
		g.waiters++
		ch := g.gen
		g.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(g.cfg.poll()):
		}
		var aerr error
		if abort != nil {
			aerr = abort()
		}
		g.mu.Lock()
		g.waiters--
		if aerr != nil {
			g.mu.Unlock()
			return nil, aerr
		}
	}
}

// ExpectedGrant predicts what Acquire(want, ...) would be granted under
// the pool's current contention, without taking anything: the ask capped
// at the fair share among the current claimants plus this one. The
// optimizer feeds the prediction into the cost model's M so plan choice
// anticipates contention-induced spilling — a sort that will only be
// granted a quarter of its ask should be priced as the external sort it
// becomes, not the in-memory sort it would be alone. The prediction
// mirrors Acquire's sizing, not its waiting: an exhausted pool still
// predicts the fair share, because that is what the query eventually runs
// with once reclaim and releases make room.
func (g *Governor) ExpectedGrant(want int) int {
	if want <= 0 {
		return 0
	}
	if want > g.cfg.TotalBlocks {
		want = g.cfg.TotalBlocks
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	n := len(g.grants) + g.waiters + 1
	if n > 1 {
		if fair := g.fairShare(n); want > fair {
			want = fair
		}
	}
	return want
}

// fairShare is the per-query share of the pool among n claimants, floored
// at the minimum useful grant and capped at the pool.
func (g *Governor) fairShare(n int) int {
	if n < 1 {
		n = 1
	}
	fair := g.cfg.TotalBlocks / n
	if min := g.cfg.minGrant(); fair < min {
		fair = min
	}
	if fair > g.cfg.TotalBlocks {
		fair = g.cfg.TotalBlocks
	}
	return fair
}

// reclaimLocked shrinks live spilling grants toward the fair share among n
// claimants. A spilling grant's sorts are already paying external-sort
// I/O — the run-page writes on its tap are the evidence — so the memory
// above its fair share mostly delays the queue, not the spill. Non-spilling
// grants are left alone: their memory is what keeps them from spilling, and
// they return it at release.
func (g *Governor) reclaimLocked(n int) {
	fair := g.fairShare(n)
	freed := false
	for _, gr := range g.grants {
		b := int(gr.blocks.Load())
		if b <= fair || !gr.spilling() {
			continue
		}
		gr.blocks.Store(int64(fair))
		g.free += b - fair
		g.stats.Shrinks++
		g.stats.ReclaimedBlocks += int64(b - fair)
		freed = true
	}
	if freed {
		g.signalLocked()
	}
}

// signalLocked wakes every waiter (they re-evaluate and re-sleep).
func (g *Governor) signalLocked() {
	close(g.gen)
	g.gen = make(chan struct{})
}
