package workload

import (
	"fmt"
	"math/rand"

	"pyro/internal/catalog"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/sortord"
	"pyro/internal/types"
)

// BuildSegmentTable loads one of Experiment A2/A3's tables: rows rows of
// (c1, c2, c3), clustered on c1, with rowsPerC1 rows sharing each c1 value
// (the partial sort segment size). c2 is random, c3 is payload to pad the
// tuple width.
func BuildSegmentTable(cat *catalog.Catalog, name string, rows, rowsPerC1 int64, seed int64) (*catalog.Table, error) {
	if rowsPerC1 <= 0 {
		return nil, fmt.Errorf("workload: rowsPerC1 must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	schema := types.NewSchema(
		types.Column{Name: "c1", Kind: types.KindInt},
		types.Column{Name: "c2", Kind: types.KindInt},
		types.Column{Name: "c3", Kind: types.KindString, Width: 24},
	)
	data := make([]types.Tuple, rows)
	for i := int64(0); i < rows; i++ {
		data[i] = types.NewTuple(
			types.NewInt(i/rowsPerC1),
			types.NewInt(rng.Int63n(1_000_000)),
			types.NewString("xxxxxxxxxxxxxxxxxxxxxxxx"),
		)
	}
	return cat.CreateTable(name, schema, sortord.New("c1"), data)
}

// BuildOuterJoinTables loads Experiment B2's R1, R2, R3: identical 100k-row
// five-column tables (scaled by rows), no indices, column names prefixed
// a_, b_, c_ to keep join schemas collision-free.
func BuildOuterJoinTables(cat *catalog.Catalog, rows int64, seed int64) error {
	for i, prefix := range []string{"a_", "b_", "c_"} {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		schema := types.NewSchema(
			types.Column{Name: prefix + "c1", Kind: types.KindInt},
			types.Column{Name: prefix + "c2", Kind: types.KindInt},
			types.Column{Name: prefix + "c3", Kind: types.KindInt},
			types.Column{Name: prefix + "c4", Kind: types.KindInt},
			types.Column{Name: prefix + "c5", Kind: types.KindInt},
		)
		data := make([]types.Tuple, rows)
		for r := int64(0); r < rows; r++ {
			data[r] = types.NewTuple(
				types.NewInt(rng.Int63n(40)),
				types.NewInt(rng.Int63n(40)),
				types.NewInt(rng.Int63n(25)),
				types.NewInt(rng.Int63n(25)),
				types.NewInt(rng.Int63n(25)),
			)
		}
		name := fmt.Sprintf("r%d", i+1)
		if _, err := cat.CreateTable(name, schema, sortord.Empty, data); err != nil {
			return err
		}
	}
	return nil
}

// Query4 is Experiment B2's two full outer joins with common attributes
// (c4, c5) between the join predicates:
//
//	SELECT * FROM R1 FULL OUTER JOIN R2
//	  ON (R1.c5=R2.c5 AND R1.c4=R2.c4 AND R1.c3=R2.c3)
//	FULL OUTER JOIN R3
//	  ON (R3.c1=R1.c1 AND R3.c4=R1.c4 AND R3.c5=R1.c5)
func Query4(cat *catalog.Catalog) (logical.Node, error) {
	r1, err := cat.Table("r1")
	if err != nil {
		return nil, err
	}
	r2, err := cat.Table("r2")
	if err != nil {
		return nil, err
	}
	r3, err := cat.Table("r3")
	if err != nil {
		return nil, err
	}
	j1 := logical.NewJoin(logical.NewScan(r1), logical.NewScan(r2), expr.AndOf(
		expr.Eq(expr.Col("a_c5"), expr.Col("b_c5")),
		expr.Eq(expr.Col("a_c4"), expr.Col("b_c4")),
		expr.Eq(expr.Col("a_c3"), expr.Col("b_c3")),
	), exec.FullOuterJoin)
	j2 := logical.NewJoin(j1, logical.NewScan(r3), expr.AndOf(
		expr.Eq(expr.Col("c_c1"), expr.Col("a_c1")),
		expr.Eq(expr.Col("c_c4"), expr.Col("a_c4")),
		expr.Eq(expr.Col("c_c5"), expr.Col("a_c5")),
	), exec.FullOuterJoin)
	return j2, nil
}

// BuildTran loads Query 5's TRAN table: trading transactions clustered on
// (UserId, ParentOrderId, BasketId, WaveId, ChildOrderId). Every "New"
// transaction has matching "Executed" rows with the same five key columns.
func BuildTran(cat *catalog.Catalog, orders int64, seed int64) (*catalog.Table, error) {
	rng := rand.New(rand.NewSource(seed))
	schema := types.NewSchema(
		types.Column{Name: "UserId", Kind: types.KindInt},
		types.Column{Name: "BasketId", Kind: types.KindInt},
		types.Column{Name: "ParentOrderId", Kind: types.KindInt},
		types.Column{Name: "WaveId", Kind: types.KindInt},
		types.Column{Name: "ChildOrderId", Kind: types.KindInt},
		types.Column{Name: "TranType", Kind: types.KindString, Width: 8},
		types.Column{Name: "Quantity", Kind: types.KindInt},
		types.Column{Name: "Price", Kind: types.KindInt},
	)
	var data []types.Tuple
	for i := int64(0); i < orders; i++ {
		user := rng.Int63n(20)
		basket := rng.Int63n(50)
		parent := i
		wave := rng.Int63n(4)
		child := rng.Int63n(8)
		qty := rng.Int63n(100) + 1
		price := rng.Int63n(500) + 1
		data = append(data, types.NewTuple(
			types.NewInt(user), types.NewInt(basket), types.NewInt(parent),
			types.NewInt(wave), types.NewInt(child),
			types.NewString("New"), types.NewInt(qty), types.NewInt(price)))
		for e := int64(0); e <= rng.Int63n(3); e++ {
			data = append(data, types.NewTuple(
				types.NewInt(user), types.NewInt(basket), types.NewInt(parent),
				types.NewInt(wave), types.NewInt(child),
				types.NewString("Executed"), types.NewInt(rng.Int63n(qty)+1), types.NewInt(price)))
		}
	}
	return cat.CreateTable("tran", schema,
		sortord.New("UserId", "ParentOrderId", "BasketId", "WaveId", "ChildOrderId"), data)
}

// aliasScan renames a table's columns with a prefix so self-joins have
// collision-free schemas (the logical algebra's equivalent of SQL aliases).
func aliasScan(t *catalog.Table, prefix string) logical.Node {
	cols := make([]logical.ProjCol, t.Schema.Len())
	for i := 0; i < t.Schema.Len(); i++ {
		name := t.Schema.Col(i).Name
		cols[i] = logical.ProjCol{Name: prefix + name, Expr: expr.Col(name)}
	}
	return logical.NewProject(logical.NewScan(t), cols)
}

// Query5 is the paper's "total value executed for a given order" self-join:
// five join attributes, making the choice of permutation consequential.
func Query5(cat *catalog.Catalog) (logical.Node, error) {
	tran, err := cat.Table("tran")
	if err != nil {
		return nil, err
	}
	t1 := logical.NewSelect(aliasScan(tran, "t1_"), expr.Eq(expr.Col("t1_TranType"), expr.StrLit("New")))
	t2 := logical.NewSelect(aliasScan(tran, "t2_"), expr.Eq(expr.Col("t2_TranType"), expr.StrLit("Executed")))
	join := logical.NewJoin(t1, t2, expr.AndOf(
		expr.Eq(expr.Col("t1_UserId"), expr.Col("t2_UserId")),
		expr.Eq(expr.Col("t1_ParentOrderId"), expr.Col("t2_ParentOrderId")),
		expr.Eq(expr.Col("t1_BasketId"), expr.Col("t2_BasketId")),
		expr.Eq(expr.Col("t1_WaveId"), expr.Col("t2_WaveId")),
		expr.Eq(expr.Col("t1_ChildOrderId"), expr.Col("t2_ChildOrderId")),
	), exec.InnerJoin)
	withValue := logical.NewProject(join, []logical.ProjCol{
		{Name: "t1_UserId", Expr: expr.Col("t1_UserId")},
		{Name: "t1_BasketId", Expr: expr.Col("t1_BasketId")},
		{Name: "t1_ParentOrderId", Expr: expr.Col("t1_ParentOrderId")},
		{Name: "t1_WaveId", Expr: expr.Col("t1_WaveId")},
		{Name: "t1_ChildOrderId", Expr: expr.Col("t1_ChildOrderId")},
		{Name: "OrderValue", Expr: expr.Arith{Op: expr.Mul, L: expr.Col("t1_Quantity"), R: expr.Col("t1_Price")}},
		{Name: "ExecValue", Expr: expr.Arith{Op: expr.Mul, L: expr.Col("t2_Quantity"), R: expr.Col("t2_Price")}},
	})
	gb := logical.NewGroupBy(withValue,
		[]string{"t1_UserId", "t1_BasketId", "t1_ParentOrderId", "t1_WaveId", "t1_ChildOrderId", "OrderValue"},
		[]logical.AggSpec{{Name: "ExecutedValue", Func: exec.AggSum, Arg: expr.Col("ExecValue")}})
	return gb, nil
}

// BuildBasketAnalytics loads Query 6's BASKET and ANALYTICS tables, both
// clustered on (ProdType, Symbol, Exchange) — favoring an optimizer that
// aligns the full join permutation with the clustering orders rather than
// just the leading attribute.
func BuildBasketAnalytics(cat *catalog.Catalog, baskets, analytics int64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	mk := func(name, prefix string, rows int64) error {
		schema := types.NewSchema(
			types.Column{Name: prefix + "ProdType", Kind: types.KindInt},
			types.Column{Name: prefix + "Symbol", Kind: types.KindInt},
			types.Column{Name: prefix + "Exchange", Kind: types.KindInt},
			types.Column{Name: prefix + "Value", Kind: types.KindInt},
		)
		data := make([]types.Tuple, rows)
		for i := int64(0); i < rows; i++ {
			data[i] = types.NewTuple(
				types.NewInt(rng.Int63n(8)),
				types.NewInt(rng.Int63n(500)),
				types.NewInt(rng.Int63n(12)),
				types.NewInt(rng.Int63n(10_000)),
			)
		}
		_, err := cat.CreateTable(name, schema,
			sortord.New(prefix+"ProdType", prefix+"Symbol", prefix+"Exchange"), data)
		return err
	}
	if err := mk("basket", "b_", baskets); err != nil {
		return err
	}
	return mk("analytics", "a_", analytics)
}

// Query6 is the basket-analytics join on three attributes:
//
//	SELECT * FROM BASKET B, ANALYTICS A
//	WHERE B.ProdType=A.ProdType AND B.Symbol=A.Symbol AND B.Exchange=A.Exchange
func Query6(cat *catalog.Catalog) (logical.Node, error) {
	b, err := cat.Table("basket")
	if err != nil {
		return nil, err
	}
	a, err := cat.Table("analytics")
	if err != nil {
		return nil, err
	}
	return logical.NewJoin(logical.NewScan(b), logical.NewScan(a), expr.AndOf(
		expr.Eq(expr.Col("b_ProdType"), expr.Col("a_ProdType")),
		expr.Eq(expr.Col("b_Symbol"), expr.Col("a_Symbol")),
		expr.Eq(expr.Col("b_Exchange"), expr.Col("a_Exchange")),
	), exec.InnerJoin), nil
}

// BuildExample1 loads §3's Example 1 environment (Figures 1 and 2):
// catalog1 clustered on year, catalog2 clustered on make, and rating with a
// covering index on make including (year, rating).
func BuildExample1(cat *catalog.Catalog, rows int64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	makes, years, cities, colors := int64(40), int64(25), int64(50), int64(10)
	c1 := types.NewSchema(
		types.Column{Name: "c1_make", Kind: types.KindInt},
		types.Column{Name: "c1_year", Kind: types.KindInt},
		types.Column{Name: "c1_city", Kind: types.KindInt},
		types.Column{Name: "c1_color", Kind: types.KindInt},
		types.Column{Name: "c1_sellreason", Kind: types.KindString, Width: 30},
	)
	c2 := types.NewSchema(
		types.Column{Name: "c2_make", Kind: types.KindInt},
		types.Column{Name: "c2_year", Kind: types.KindInt},
		types.Column{Name: "c2_city", Kind: types.KindInt},
		types.Column{Name: "c2_color", Kind: types.KindInt},
		types.Column{Name: "c2_breakdowns", Kind: types.KindInt},
	)
	rt := types.NewSchema(
		types.Column{Name: "r_make", Kind: types.KindInt},
		types.Column{Name: "r_year", Kind: types.KindInt},
		types.Column{Name: "r_rating", Kind: types.KindInt},
		types.Column{Name: "r_notes", Kind: types.KindString, Width: 20},
	)
	var rows1, rows2 []types.Tuple
	for i := int64(0); i < rows; i++ {
		rows1 = append(rows1, types.NewTuple(
			types.NewInt(rng.Int63n(makes)), types.NewInt(rng.Int63n(years)),
			types.NewInt(rng.Int63n(cities)), types.NewInt(rng.Int63n(colors)),
			types.NewString("reason-text-padding-xxxxxxxxxx")))
		rows2 = append(rows2, types.NewTuple(
			types.NewInt(rng.Int63n(makes)), types.NewInt(rng.Int63n(years)),
			types.NewInt(rng.Int63n(cities)), types.NewInt(rng.Int63n(colors)),
			types.NewInt(rng.Int63n(20))))
	}
	var ratingRows []types.Tuple
	for m := int64(0); m < makes; m++ {
		for y := int64(0); y < years; y++ {
			ratingRows = append(ratingRows, types.NewTuple(
				types.NewInt(m), types.NewInt(y), types.NewInt(rng.Int63n(10)),
				types.NewString("note-padding-xxxxxxx")))
		}
	}
	if _, err := cat.CreateTable("catalog1", c1, sortord.New("c1_year"), rows1); err != nil {
		return err
	}
	if _, err := cat.CreateTable("catalog2", c2, sortord.New("c2_make"), rows2); err != nil {
		return err
	}
	rating, err := cat.CreateTable("rating", rt, sortord.New("r_make", "r_year"), ratingRows)
	if err != nil {
		return err
	}
	_, err = cat.CreateIndex("rt_make", rating, sortord.New("r_make"), []string{"r_year", "r_rating"})
	return err
}

// Example1Query is §3 Example 1: the two catalog tables joined on four
// attributes, the result joined with rating on two, under a long ORDER BY.
func Example1Query(cat *catalog.Catalog) (logical.Node, error) {
	c1, err := cat.Table("catalog1")
	if err != nil {
		return nil, err
	}
	c2, err := cat.Table("catalog2")
	if err != nil {
		return nil, err
	}
	rt, err := cat.Table("rating")
	if err != nil {
		return nil, err
	}
	j1 := logical.NewJoin(logical.NewScan(c1), logical.NewScan(c2), expr.AndOf(
		expr.Eq(expr.Col("c1_city"), expr.Col("c2_city")),
		expr.Eq(expr.Col("c1_make"), expr.Col("c2_make")),
		expr.Eq(expr.Col("c1_year"), expr.Col("c2_year")),
		expr.Eq(expr.Col("c1_color"), expr.Col("c2_color")),
	), exec.InnerJoin)
	j2 := logical.NewJoin(j1, logical.NewScan(rt), expr.AndOf(
		expr.Eq(expr.Col("c1_make"), expr.Col("r_make")),
		expr.Eq(expr.Col("c1_year"), expr.Col("r_year")),
	), exec.InnerJoin)
	proj := logical.NewProjectNames(j2, []string{
		"c1_make", "c1_year", "c1_city", "c1_color", "c1_sellreason",
		"c2_breakdowns", "r_rating",
	})
	return logical.NewOrderBy(proj, sortord.New(
		"c1_make", "c1_year", "c1_color", "c1_city", "c1_sellreason",
		"c2_breakdowns", "r_rating")), nil
}

// BuildScalability loads two relations joined on n attributes for the
// Figure 16 optimization-time experiment.
func BuildScalability(cat *catalog.Catalog, attrs int, rows int64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	mk := func(name, prefix string) error {
		cols := make([]types.Column, attrs)
		for i := range cols {
			cols[i] = types.Column{Name: fmt.Sprintf("%sk%d", prefix, i), Kind: types.KindInt}
		}
		schema := types.NewSchema(cols...)
		data := make([]types.Tuple, rows)
		for r := int64(0); r < rows; r++ {
			tup := make(types.Tuple, attrs)
			for i := range tup {
				tup[i] = types.NewInt(rng.Int63n(10))
			}
			data[r] = tup
		}
		_, err := cat.CreateTable(name, schema, sortord.Empty, data)
		return err
	}
	if err := mk("scale_l", "l"); err != nil {
		return err
	}
	return mk("scale_r", "r")
}

// ScalabilityQuery joins the two scalability relations on all n attributes.
func ScalabilityQuery(cat *catalog.Catalog, attrs int) (logical.Node, error) {
	l, err := cat.Table("scale_l")
	if err != nil {
		return nil, err
	}
	r, err := cat.Table("scale_r")
	if err != nil {
		return nil, err
	}
	conj := make([]expr.Expr, attrs)
	for i := 0; i < attrs; i++ {
		conj[i] = expr.Eq(expr.Col(fmt.Sprintf("lk%d", i)), expr.Col(fmt.Sprintf("rk%d", i)))
	}
	return logical.NewJoin(logical.NewScan(l), logical.NewScan(r), expr.AndOf(conj...), exec.InnerJoin), nil
}
