package workload

import (
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/iter"
	"pyro/internal/logical"
	"pyro/internal/storage"
)

func newCat() *catalog.Catalog {
	return catalog.New(storage.NewDisk(0))
}

func TestBuildTPCHStructure(t *testing.T) {
	cat := newCat()
	cfg := DefaultTPCH()
	cfg.Suppliers, cfg.PartsPerSupplier = 20, 10
	if err := BuildTPCH(cat, cfg); err != nil {
		t.Fatal(err)
	}
	ps := mustTable(cat, "partsupp")
	li := mustTable(cat, "lineitem")
	if ps.Stats.NumRows != 200 {
		t.Fatalf("partsupp rows = %d", ps.Stats.NumRows)
	}
	if li.Stats.NumRows != 200*cfg.LinesPerPair {
		t.Fatalf("lineitem rows = %d", li.Stats.NumRows)
	}
	// The structural properties the experiments rely on:
	if !ps.ClusterOrder.Equal(ps.ClusterOrder) || ps.ClusterOrder.Len() != 2 {
		t.Fatalf("partsupp clustering = %v", ps.ClusterOrder)
	}
	if len(ps.Stats.KeyCols) != 2 {
		t.Fatalf("partsupp clustering must be a verified key: %v", ps.Stats.KeyCols)
	}
	if li.ClusterOrder.Len() != 1 || li.ClusterOrder[0] != "l_orderkey" {
		t.Fatalf("lineitem must cluster on its own key, got %v", li.ClusterOrder)
	}
	if ps.Index("ps_sk") == nil || li.Index("li_sk") == nil {
		t.Fatal("covering indices missing")
	}
	if ps.Stats.Distinct["ps_suppkey"] != 20 {
		t.Fatalf("suppkey distinct = %d", ps.Stats.Distinct["ps_suppkey"])
	}
}

func TestTPCHDeterministic(t *testing.T) {
	build := func() int64 {
		cat := newCat()
		cfg := DefaultTPCH()
		cfg.Suppliers, cfg.PartsPerSupplier = 10, 5
		if err := BuildTPCH(cat, cfg); err != nil {
			t.Fatal(err)
		}
		rows, err := storage.ReadAll(mustTable(cat, "lineitem").File())
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, r := range rows {
			sum = sum*31 + r[3].Int()
		}
		return sum
	}
	if build() != build() {
		t.Fatal("generation must be deterministic")
	}
}

func runsAndReturnsRows(t *testing.T, cat *catalog.Catalog, q logical.Node, minRows int) {
	t.Helper()
	res, err := core.Optimize(q, core.DefaultOptions(core.HeuristicFavorable))
	if err != nil {
		t.Fatal(err)
	}
	op, err := core.Build(res.Plan, core.BuildConfig{Disk: cat.Disk(), SortMemoryBlocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := iter.Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < minRows {
		t.Fatalf("query returned %d rows, want >= %d", len(rows), minRows)
	}
}

func TestAllQueriesRunEndToEnd(t *testing.T) {
	{
		cat := newCat()
		cfg := DefaultTPCH()
		cfg.Suppliers, cfg.PartsPerSupplier = 20, 10
		if err := BuildTPCH(cat, cfg); err != nil {
			t.Fatal(err)
		}
		for _, build := range []func(*catalog.Catalog) (logical.Node, error){Query1, Query2, Query3} {
			q, err := build(cat)
			if err != nil {
				t.Fatal(err)
			}
			runsAndReturnsRows(t, cat, q, 1)
		}
	}
	{
		cat := newCat()
		if err := BuildOuterJoinTables(cat, 500, 5); err != nil {
			t.Fatal(err)
		}
		q, err := Query4(cat)
		if err != nil {
			t.Fatal(err)
		}
		runsAndReturnsRows(t, cat, q, 500)
	}
	{
		cat := newCat()
		if _, err := BuildTran(cat, 300, 9); err != nil {
			t.Fatal(err)
		}
		q, err := Query5(cat)
		if err != nil {
			t.Fatal(err)
		}
		runsAndReturnsRows(t, cat, q, 300)
	}
	{
		cat := newCat()
		if err := BuildBasketAnalytics(cat, 500, 400, 13); err != nil {
			t.Fatal(err)
		}
		q, err := Query6(cat)
		if err != nil {
			t.Fatal(err)
		}
		runsAndReturnsRows(t, cat, q, 1)
	}
	{
		cat := newCat()
		if err := BuildExample1(cat, 1000, 3); err != nil {
			t.Fatal(err)
		}
		q, err := Example1Query(cat)
		if err != nil {
			t.Fatal(err)
		}
		runsAndReturnsRows(t, cat, q, 1)
	}
	{
		cat := newCat()
		if err := BuildScalability(cat, 3, 200, 21); err != nil {
			t.Fatal(err)
		}
		q, err := ScalabilityQuery(cat, 3)
		if err != nil {
			t.Fatal(err)
		}
		runsAndReturnsRows(t, cat, q, 1)
	}
}

func TestSegmentTableStructure(t *testing.T) {
	cat := newCat()
	tb, err := BuildSegmentTable(cat, "s", 1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Stats.NumRows != 1000 || tb.Stats.Distinct["c1"] != 10 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
	rows, err := storage.ReadAll(tb.File())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1][0].Int() > rows[i][0].Int() {
			t.Fatal("segment table not clustered on c1")
		}
	}
	if _, err := BuildSegmentTable(cat, "bad", 10, 0, 1); err == nil {
		t.Fatal("zero rowsPerC1 should error")
	}
}

func TestTranMatchesExecuted(t *testing.T) {
	cat := newCat()
	tb, err := BuildTran(cat, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := storage.ReadAll(tb.File())
	if err != nil {
		t.Fatal(err)
	}
	news, execs := 0, 0
	for _, r := range rows {
		switch r[5].Str() {
		case "New":
			news++
		case "Executed":
			execs++
		}
	}
	if news != 100 || execs == 0 {
		t.Fatalf("news=%d execs=%d", news, execs)
	}
}

func TestMissingTablesErr(t *testing.T) {
	cat := newCat()
	for _, build := range []func(*catalog.Catalog) (logical.Node, error){
		Query1, Query2, Query3, Query4, Query5, Query6, Example1Query,
	} {
		if _, err := build(cat); err == nil {
			t.Fatal("query build on empty catalog should error")
		}
	}
	if _, err := ScalabilityQuery(cat, 2); err == nil {
		t.Fatal("scalability query on empty catalog should error")
	}
}

// mustTable fetches a table the test fixture itself created; a lookup
// failure is a fixture bug, not a condition under test.
func mustTable(c *catalog.Catalog, name string) *catalog.Table {
	tb, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return tb
}
