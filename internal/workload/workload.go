// Package workload generates the datasets and query trees for every
// experiment in the paper's evaluation (§6), scaled to run on a laptop-size
// simulated disk while preserving the structural properties each experiment
// depends on (clustering orders, covering indices, key multiplicities, and
// the ratio of relation size to sort memory). See DESIGN.md for the
// substitution rationale.
//
// All generation is deterministic (fixed seeds) so experiment output is
// reproducible run to run.
package workload

import (
	"math/rand"

	"pyro/internal/catalog"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/sortord"
	"pyro/internal/types"
)

// TPCHConfig scales the TPC-H-like tables.
type TPCHConfig struct {
	Suppliers        int64 // distinct l_suppkey / ps_suppkey values
	PartsPerSupplier int64 // partsupp pairs per supplier
	LinesPerPair     int64 // lineitem rows per (supp, part) pair
	Seed             int64
}

// DefaultTPCH keeps runtimes in seconds while preserving the paper's
// multiplicities (each supplier supplies many parts; each pair has several
// lineitems).
func DefaultTPCH() TPCHConfig {
	return TPCHConfig{Suppliers: 100, PartsPerSupplier: 80, LinesPerPair: 4, Seed: 1}
}

// BuildTPCH loads lineitem and partsupp with the indices Experiments A1, A4
// and B1 need:
//
//   - partsupp: clustered on (ps_partkey, ps_suppkey); covering secondary
//     index ps_sk on ps_suppkey including (ps_partkey, ps_availqty);
//   - lineitem: clustered on l_orderkey (its own key — useless for the
//     join); covering secondary index li_sk on l_suppkey including
//     (l_partkey, l_quantity, l_linestatus).
func BuildTPCH(cat *catalog.Catalog, cfg TPCHConfig) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	psSchema := types.NewSchema(
		types.Column{Name: "ps_partkey", Kind: types.KindInt},
		types.Column{Name: "ps_suppkey", Kind: types.KindInt},
		types.Column{Name: "ps_availqty", Kind: types.KindInt},
	)
	liSchema := types.NewSchema(
		types.Column{Name: "l_orderkey", Kind: types.KindInt},
		types.Column{Name: "l_partkey", Kind: types.KindInt},
		types.Column{Name: "l_suppkey", Kind: types.KindInt},
		types.Column{Name: "l_quantity", Kind: types.KindInt},
		types.Column{Name: "l_linestatus", Kind: types.KindString, Width: 1},
	)
	var psRows, liRows []types.Tuple
	for s := int64(0); s < cfg.Suppliers; s++ {
		for k := int64(0); k < cfg.PartsPerSupplier; k++ {
			part := (s*cfg.PartsPerSupplier + k) % (cfg.Suppliers * cfg.PartsPerSupplier / 2)
			psRows = append(psRows, types.NewTuple(
				types.NewInt(part), types.NewInt(s), types.NewInt(rng.Int63n(90)+10)))
			for l := int64(0); l < cfg.LinesPerPair; l++ {
				status := "O"
				if rng.Intn(3) == 0 {
					status = "F"
				}
				liRows = append(liRows, types.NewTuple(
					types.NewInt(rng.Int63n(1_000_000)), // scattered orderkey
					types.NewInt(part), types.NewInt(s),
					types.NewInt(rng.Int63n(50)+1), types.NewString(status)))
			}
		}
	}
	ps, err := cat.CreateTable("partsupp", psSchema, sortord.New("ps_partkey", "ps_suppkey"), psRows)
	if err != nil {
		return err
	}
	li, err := cat.CreateTable("lineitem", liSchema, sortord.New("l_orderkey"), liRows)
	if err != nil {
		return err
	}
	if _, err := cat.CreateIndex("ps_sk", ps, sortord.New("ps_suppkey"), []string{"ps_partkey", "ps_availqty"}); err != nil {
		return err
	}
	if _, err := cat.CreateIndex("li_sk", li, sortord.New("l_suppkey"), []string{"l_partkey", "l_quantity", "l_linestatus"}); err != nil {
		return err
	}
	return nil
}

// Query1 is Experiment A1's ORDER BY over lineitem:
//
//	SELECT l_suppkey, l_partkey FROM lineitem ORDER BY l_suppkey, l_partkey
func Query1(cat *catalog.Catalog) (logical.Node, error) {
	li, err := cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	proj := logical.NewProjectNames(logical.NewScan(li), []string{"l_suppkey", "l_partkey"})
	return logical.NewOrderBy(proj, sortord.New("l_suppkey", "l_partkey")), nil
}

// Query2 is Experiment A4's per-(supplier, part) lineitem count:
//
//	SELECT ps_suppkey, ps_partkey, ps_availqty, count(l_partkey)
//	FROM partsupp, lineitem
//	WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey
//	GROUP BY ps_suppkey, ps_partkey, ps_availqty
//	ORDER BY ps_suppkey, ps_partkey
func Query2(cat *catalog.Catalog) (logical.Node, error) {
	ps, err := cat.Table("partsupp")
	if err != nil {
		return nil, err
	}
	li, err := cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	join := logical.NewJoin(logical.NewScan(ps), logical.NewScan(li), expr.AndOf(
		expr.Eq(expr.Col("ps_suppkey"), expr.Col("l_suppkey")),
		expr.Eq(expr.Col("ps_partkey"), expr.Col("l_partkey")),
	), exec.InnerJoin)
	gb := logical.NewGroupBy(join,
		[]string{"ps_suppkey", "ps_partkey", "ps_availqty"},
		[]logical.AggSpec{{Name: "line_count", Func: exec.AggCount, Arg: expr.Col("l_partkey")}})
	return logical.NewOrderBy(gb, sortord.New("ps_suppkey", "ps_partkey")), nil
}

// Query3 is Experiment B1's "parts running out of stock":
//
//	SELECT ps_suppkey, ps_partkey, ps_availqty, sum(l_quantity)
//	FROM partsupp, lineitem
//	WHERE ps_suppkey = l_suppkey AND ps_partkey = l_partkey
//	  AND l_linestatus = 'O'
//	GROUP BY ps_availqty, ps_partkey, ps_suppkey
//	HAVING sum(l_quantity) > ps_availqty
//	ORDER BY ps_partkey
func Query3(cat *catalog.Catalog) (logical.Node, error) {
	ps, err := cat.Table("partsupp")
	if err != nil {
		return nil, err
	}
	li, err := cat.Table("lineitem")
	if err != nil {
		return nil, err
	}
	liF := logical.NewSelect(logical.NewScan(li), expr.Eq(expr.Col("l_linestatus"), expr.StrLit("O")))
	join := logical.NewJoin(logical.NewScan(ps), liF, expr.AndOf(
		expr.Eq(expr.Col("ps_suppkey"), expr.Col("l_suppkey")),
		expr.Eq(expr.Col("ps_partkey"), expr.Col("l_partkey")),
	), exec.InnerJoin)
	gb := logical.NewGroupBy(join,
		[]string{"ps_availqty", "ps_partkey", "ps_suppkey"},
		[]logical.AggSpec{{Name: "total_qty", Func: exec.AggSum, Arg: expr.Col("l_quantity")}})
	having := logical.NewSelect(gb, expr.Compare(expr.GT, expr.Col("total_qty"), expr.Col("ps_availqty")))
	return logical.NewOrderBy(having, sortord.New("ps_partkey")), nil
}
