package logical

import (
	"strings"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
)

func testTable(t *testing.T, name string, rows int64) (*catalog.Catalog, *catalog.Table) {
	t.Helper()
	c := catalog.New(storage.NewDisk(0))
	schema := types.NewSchema(
		types.Column{Name: name + "_id", Kind: types.KindInt},
		types.Column{Name: name + "_grp", Kind: types.KindInt},
		types.Column{Name: name + "_val", Kind: types.KindInt},
	)
	data := make([]types.Tuple, rows)
	for i := int64(0); i < rows; i++ {
		data[i] = types.NewTuple(types.NewInt(i), types.NewInt(i%10), types.NewInt(i*3))
	}
	tb, err := c.CreateTable(name, schema, sortord.New(name+"_id"), data)
	if err != nil {
		t.Fatal(err)
	}
	return c, tb
}

func TestScanProps(t *testing.T) {
	_, tb := testTable(t, "t", 100)
	s := NewScan(tb)
	p := s.Props()
	if p.Rows != 100 || p.Distinct["t_grp"] != 10 {
		t.Fatalf("props = %+v", p)
	}
	if len(p.FDs) != 1 || !p.FDs[0].Det.Equal(sortord.NewAttrSet("t_id")) {
		t.Fatalf("scan should carry the key FD: %+v", p.FDs)
	}
	if s.Children() != nil {
		t.Fatal("scan has no children")
	}
}

func TestScanNoKeyNoFD(t *testing.T) {
	c := catalog.New(storage.NewDisk(0))
	schema := types.NewSchema(types.Column{Name: "x", Kind: types.KindInt})
	rows := []types.Tuple{
		types.NewTuple(types.NewInt(1)),
		types.NewTuple(types.NewInt(1)), // duplicate: x is not a key
	}
	tb, err := c.CreateTable("dup", schema, sortord.New("x"), rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(NewScan(tb).Props().FDs) != 0 {
		t.Fatal("non-unique clustering must not yield a key FD")
	}
}

func TestSelectSelectivity(t *testing.T) {
	_, tb := testTable(t, "t", 1000)
	s := NewScan(tb)
	// Equality on t_grp (10 distinct): 1/10 selectivity.
	eq := NewSelect(s, expr.Eq(expr.Col("t_grp"), expr.IntLit(3)))
	if eq.Props().Rows != 100 {
		t.Fatalf("eq rows = %d, want 100", eq.Props().Rows)
	}
	// Reversed orientation: const = col.
	eq2 := NewSelect(s, expr.Eq(expr.IntLit(3), expr.Col("t_grp")))
	if eq2.Props().Rows != 100 {
		t.Fatalf("reversed eq rows = %d", eq2.Props().Rows)
	}
	// Range: 1/3.
	rng := NewSelect(s, expr.Compare(expr.LT, expr.Col("t_val"), expr.IntLit(10)))
	if rng.Props().Rows != 333 {
		t.Fatalf("range rows = %d, want 333", rng.Props().Rows)
	}
	// Conjuncts multiply.
	both := NewSelect(s, expr.AndOf(
		expr.Eq(expr.Col("t_grp"), expr.IntLit(3)),
		expr.Compare(expr.LT, expr.Col("t_val"), expr.IntLit(10)),
	))
	if both.Props().Rows != 33 {
		t.Fatalf("conjunct rows = %d, want 33", both.Props().Rows)
	}
	// FDs survive selection.
	if len(eq.Props().FDs) != 1 {
		t.Fatal("select should keep FDs")
	}
}

func TestProjectPropsAndFDs(t *testing.T) {
	_, tb := testTable(t, "t", 100)
	p := NewProject(NewScan(tb), []ProjCol{
		{Name: "id", Expr: expr.Col("t_id")},
		{Name: "doubled", Expr: expr.Arith{Op: expr.Mul, L: expr.Col("t_val"), R: expr.IntLit(2)}},
		{Name: "v", Expr: expr.Col("t_val")},
	})
	props := p.Props()
	if props.Rows != 100 {
		t.Fatalf("rows = %d", props.Rows)
	}
	if props.Distinct["id"] != 100 {
		t.Fatalf("renamed distinct lost: %v", props.Distinct)
	}
	// Key FD renamed: {id} -> {id, v} (doubled's det is v which is
	// projected, so doubled also appears via the computed-column FD).
	if !Determines(sortord.NewAttrSet("id"), sortord.NewAttrSet("v"), props.FDs) {
		t.Fatalf("renamed key FD lost: %+v", props.FDs)
	}
	if !Determines(sortord.NewAttrSet("v"), sortord.NewAttrSet("doubled"), props.FDs) {
		t.Fatalf("computed-column FD missing: %+v", props.FDs)
	}
	// Transitively: id -> v -> doubled.
	if !Determines(sortord.NewAttrSet("id"), sortord.NewAttrSet("doubled"), props.FDs) {
		t.Fatal("closure not transitive")
	}
}

func TestJoinPropsAndEquiPairs(t *testing.T) {
	_, ta := testTable(t, "a", 100)
	cb := catalog.New(storage.NewDisk(0))
	schemaB := types.NewSchema(
		types.Column{Name: "b_id", Kind: types.KindInt},
		types.Column{Name: "b_grp", Kind: types.KindInt},
	)
	var rowsB []types.Tuple
	for i := int64(0); i < 50; i++ {
		rowsB = append(rowsB, types.NewTuple(types.NewInt(i), types.NewInt(i%10)))
	}
	tbB, err := cb.CreateTable("b", schemaB, sortord.New("b_id"), rowsB)
	if err != nil {
		t.Fatal(err)
	}
	j := NewJoin(NewScan(ta), NewScan(tbB),
		expr.AndOf(
			expr.Eq(expr.Col("a_id"), expr.Col("b_id")),
			expr.Compare(expr.GT, expr.Col("a_val"), expr.IntLit(0)),
		), exec.InnerJoin)
	if len(j.EquiPairs) != 1 || j.EquiPairs[0].Left != "a_id" {
		t.Fatalf("equi pairs = %v", j.EquiPairs)
	}
	if len(j.Residual) != 1 {
		t.Fatalf("residual = %v", j.Residual)
	}
	// |L||R| / max(D) = 100*50/100 = 50.
	if j.Props().Rows != 50 {
		t.Fatalf("join rows = %d, want 50", j.Props().Rows)
	}
	if !j.JoinAttrSetLeft().Equal(sortord.NewAttrSet("a_id")) {
		t.Fatal("left attr set")
	}
	if !j.JoinAttrSetRight().Equal(sortord.NewAttrSet("b_id")) {
		t.Fatal("right attr set")
	}
	if r, ok := j.RightName("a_id"); !ok || r != "b_id" {
		t.Fatal("RightName")
	}
	if l, ok := j.LeftName("b_id"); !ok || l != "a_id" {
		t.Fatal("LeftName")
	}
	if _, ok := j.RightName("zz"); ok {
		t.Fatal("unknown name should not resolve")
	}
	// Equi-pair FD: a_id <-> b_id.
	if !Determines(sortord.NewAttrSet("a_id"), sortord.NewAttrSet("b_id"), j.Props().FDs) {
		t.Fatal("equijoin FD missing")
	}
	// Canonicalization maps right names to left.
	got := j.CanonicalizeOrder(sortord.New("b_id", "a_grp"))
	if !got.Equal(sortord.New("a_id", "a_grp")) {
		t.Fatalf("CanonicalizeOrder = %v", got)
	}
}

func TestOuterJoinCardinalityFloor(t *testing.T) {
	_, ta := testTable(t, "a", 100)
	cb := catalog.New(storage.NewDisk(0))
	schemaB := types.NewSchema(types.Column{Name: "b_id", Kind: types.KindInt})
	tbB, _ := cb.CreateTable("b", schemaB, sortord.New("b_id"),
		[]types.Tuple{types.NewTuple(types.NewInt(1))})
	lo := NewJoin(NewScan(ta), NewScan(tbB), expr.Eq(expr.Col("a_id"), expr.Col("b_id")), exec.LeftOuterJoin)
	if lo.Props().Rows < 100 {
		t.Fatalf("left outer rows = %d, must be >= left size", lo.Props().Rows)
	}
	fo := NewJoin(NewScan(ta), NewScan(tbB), expr.Eq(expr.Col("a_id"), expr.Col("b_id")), exec.FullOuterJoin)
	if fo.Props().Rows < 100 {
		t.Fatalf("full outer rows = %d", fo.Props().Rows)
	}
	// Outer joins must not carry equi-pair FDs (padded rows break them).
	if Determines(sortord.NewAttrSet("a_id"), sortord.NewAttrSet("b_id"), fo.Props().FDs) {
		t.Fatal("outer join must not assert key equality FDs")
	}
}

func TestGroupByProps(t *testing.T) {
	_, tb := testTable(t, "t", 1000)
	g := NewGroupBy(NewScan(tb), []string{"t_grp"}, []AggSpec{
		{Name: "n", Func: exec.AggCount},
		{Name: "total", Func: exec.AggSum, Arg: expr.Col("t_val")},
	})
	if g.Props().Rows != 10 {
		t.Fatalf("groupby rows = %d, want 10", g.Props().Rows)
	}
	names := g.Schema().Names()
	if len(names) != 3 || names[0] != "t_grp" || names[1] != "n" {
		t.Fatalf("schema = %v", names)
	}
	// Group cols determine the aggregates.
	if !Determines(sortord.NewAttrSet("t_grp"), sortord.NewAttrSet("total"), g.Props().FDs) {
		t.Fatal("group-by FD missing")
	}
}

func TestDistinctAndUnionProps(t *testing.T) {
	_, tb := testTable(t, "t", 100)
	proj := NewProjectNames(NewScan(tb), []string{"t_grp"})
	d := NewDistinct(proj)
	if d.Props().Rows != 10 {
		t.Fatalf("distinct rows = %d", d.Props().Rows)
	}
	u := NewUnion(proj, proj, true)
	if u.Props().Rows != 200 {
		t.Fatalf("union rows = %d (upper bound before dedup)", u.Props().Rows)
	}
	if u.Schema() != proj.Schema() {
		t.Fatal("union schema should be the left input's")
	}
}

func TestOrderByAndFormat(t *testing.T) {
	_, tb := testTable(t, "t", 10)
	ob := NewOrderBy(NewSelect(NewScan(tb), expr.Compare(expr.GT, expr.Col("t_val"), expr.IntLit(0))),
		sortord.New("t_id"))
	if ob.Props().Rows == 0 {
		t.Fatal("orderby props should pass through")
	}
	s := Format(ob)
	for _, want := range []string{"OrderBy", "Select", "Scan t"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Format missing %q:\n%s", want, s)
		}
	}
}

func TestPropsBlocks(t *testing.T) {
	p := Props{Rows: 1000, Width: 100}
	if got := p.Blocks(4096); got != 25 {
		t.Fatalf("Blocks = %d, want 25", got)
	}
	if got := (Props{Rows: 0, Width: 10}).Blocks(4096); got != 0 {
		t.Fatalf("empty Blocks = %d", got)
	}
	if got := (Props{Rows: 1, Width: 10000}).Blocks(4096); got != 1 {
		t.Fatalf("wide Blocks = %d", got)
	}
}

func TestClosure(t *testing.T) {
	fds := []FD{
		{Det: sortord.NewAttrSet("a"), Dep: sortord.NewAttrSet("b")},
		{Det: sortord.NewAttrSet("b"), Dep: sortord.NewAttrSet("c")},
		{Det: sortord.NewAttrSet("c", "d"), Dep: sortord.NewAttrSet("e")},
	}
	got := Closure(sortord.NewAttrSet("a"), fds)
	if !got.Equal(sortord.NewAttrSet("a", "b", "c")) {
		t.Fatalf("closure(a) = %v", got)
	}
	got = Closure(sortord.NewAttrSet("a", "d"), fds)
	if !got.Equal(sortord.NewAttrSet("a", "b", "c", "d", "e")) {
		t.Fatalf("closure(a,d) = %v", got)
	}
	if Determines(sortord.NewAttrSet("b"), sortord.NewAttrSet("a"), fds) {
		t.Fatal("b must not determine a")
	}
}
