package logical

import (
	"fmt"
	"strings"
)

// Signature renders a canonical, collision-safe encoding of the logical
// tree, suitable as a cache key: two trees share a signature exactly when
// they are the same query. Unlike Format — a human-oriented rendering
// whose Project and GroupBy lines print only output column names — the
// signature includes every semantically relevant detail: projection
// expressions, aggregate functions and arguments, join types and
// predicates, union duplicate handling and limit counts.
func Signature(n Node) string {
	var b strings.Builder
	writeSignature(&b, n)
	return b.String()
}

func writeSignature(b *strings.Builder, n Node) {
	switch x := n.(type) {
	case *Scan:
		fmt.Fprintf(b, "scan(%s)", x.Table.Name)
		return
	case *Select:
		fmt.Fprintf(b, "select[%s]", x.Pred)
	case *Project:
		b.WriteString("project[")
		for i, c := range x.Cols {
			if i > 0 {
				b.WriteByte(';')
			}
			fmt.Fprintf(b, "%s=%s", c.Name, c.Expr)
		}
		b.WriteByte(']')
	case *Join:
		fmt.Fprintf(b, "join[%s][%s]", x.Type, x.Pred)
	case *GroupBy:
		fmt.Fprintf(b, "group[%s][", strings.Join(x.GroupCols, ";"))
		for i, a := range x.Aggs {
			if i > 0 {
				b.WriteByte(';')
			}
			fmt.Fprintf(b, "%s=%d(", a.Name, a.Func)
			if a.Arg != nil {
				b.WriteString(a.Arg.String())
			}
			b.WriteByte(')')
		}
		b.WriteByte(']')
	case *Distinct:
		b.WriteString("distinct")
	case *Union:
		fmt.Fprintf(b, "union[dedup=%v]", x.Dedup)
	case *Limit:
		fmt.Fprintf(b, "limit[%d]", x.K)
	case *OrderBy:
		fmt.Fprintf(b, "order[%s]", x.Order)
	default:
		// Unknown node kinds must never alias each other or a known kind;
		// %#v includes the concrete type and its exported state.
		fmt.Fprintf(b, "%#v", n)
		return
	}
	b.WriteByte('(')
	for i, c := range n.Children() {
		if i > 0 {
			b.WriteByte(',')
		}
		writeSignature(b, c)
	}
	b.WriteByte(')')
}
