// Package logical defines the logical query algebra the optimizer works on:
// scans, selections, projections, (outer) joins, grouping, duplicate
// elimination, union and order-by. Each node derives an output schema and
// estimated properties (cardinality, width, per-column distinct counts)
// under the uniformity and independence assumptions of the paper's cost
// model (§3.2).
//
// Queries are built programmatically (the paper's workloads are fixed
// query shapes); the join order is taken as given — the paper optimizes
// sort-order choices for a fixed join tree, not join order.
package logical

import (
	"fmt"
	"strings"

	"pyro/internal/catalog"
	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/sortord"
	"pyro/internal/types"
)

// Node is a logical operator.
type Node interface {
	// Schema is the node's output schema.
	Schema() *types.Schema
	// Children returns input nodes (nil for leaves).
	Children() []Node
	// Props returns estimated output properties.
	Props() Props
	// describe returns the node's one-line description for tree rendering.
	describe() string
}

// Props carries derived estimates for a logical node's output.
type Props struct {
	Rows     int64            // estimated cardinality N(e)
	Width    int              // average tuple width in bytes
	Distinct map[string]int64 // per-column distinct estimates
	FDs      []FD             // exact functional dependencies (see fd.go)
}

// Blocks returns B(e) for a given page size.
func (p Props) Blocks(pageSize int) int64 {
	if p.Rows == 0 {
		return 0
	}
	perPage := int64(pageSize) / int64(p.Width)
	if perPage <= 0 {
		perPage = 1
	}
	b := p.Rows / perPage
	if p.Rows%perPage != 0 || b == 0 {
		b++
	}
	return b
}

// DistinctOn estimates D(e, attrs) with the independence assumption.
func (p Props) DistinctOn(attrs []string) int64 {
	st := catalog.Stats{NumRows: p.Rows, Distinct: p.Distinct}
	return st.DistinctOn(attrs)
}

// capDistinct clamps inherited distinct counts at the new row count.
func capDistinct(src map[string]int64, rows int64) map[string]int64 {
	out := make(map[string]int64, len(src))
	for k, v := range src {
		if v > rows {
			v = rows
		}
		out[k] = v
	}
	return out
}

// Scan is a base-table leaf.
type Scan struct {
	Table *catalog.Table
	props Props
}

// NewScan builds a scan leaf.
func NewScan(t *catalog.Table) *Scan {
	var fds []FD
	if len(t.Stats.KeyCols) > 0 {
		fds = append(fds, FD{
			Det: sortord.NewAttrSet(t.Stats.KeyCols...),
			Dep: t.Schema.AttrSet(),
		})
	}
	return &Scan{
		Table: t,
		props: Props{
			Rows:     t.Stats.NumRows,
			Width:    t.Schema.AvgTupleWidth(),
			Distinct: t.Stats.Distinct,
			FDs:      fds,
		},
	}
}

func (s *Scan) Schema() *types.Schema { return s.Table.Schema }
func (s *Scan) Children() []Node      { return nil }
func (s *Scan) Props() Props          { return s.props }
func (s *Scan) describe() string      { return "Scan " + s.Table.Name }

// Select filters its child by a predicate.
type Select struct {
	Child Node
	Pred  expr.Expr
	props Props
}

// NewSelect derives selectivity with textbook heuristics: equality against
// a constant contributes 1/D(col), other comparisons 1/3, conjuncts
// multiply, everything else 1/3.
func NewSelect(child Node, pred expr.Expr) *Select {
	cp := child.Props()
	sel := selectivity(pred, cp)
	rows := int64(float64(cp.Rows) * sel)
	if rows < 1 && cp.Rows > 0 {
		rows = 1
	}
	return &Select{
		Child: child,
		Pred:  pred,
		props: Props{Rows: rows, Width: cp.Width, Distinct: capDistinct(cp.Distinct, rows), FDs: cp.FDs},
	}
}

func selectivity(pred expr.Expr, cp Props) float64 {
	sel := 1.0
	for _, c := range expr.Conjuncts(pred) {
		sel *= conjunctSelectivity(c, cp)
	}
	return sel
}

func conjunctSelectivity(c expr.Expr, cp Props) float64 {
	cmp, ok := c.(expr.Cmp)
	if !ok {
		return 1.0 / 3
	}
	col, colOK := cmp.L.(expr.ColRef)
	_, constOK := cmp.R.(expr.Const)
	if !colOK || !constOK {
		// try reversed orientation
		if rc, rOK := cmp.R.(expr.ColRef); rOK {
			if _, lConst := cmp.L.(expr.Const); lConst {
				col, colOK, constOK = rc, true, true
			}
		}
	}
	if colOK && constOK && cmp.Op == expr.EQ {
		if d := cp.Distinct[col.Name]; d > 0 {
			return 1.0 / float64(d)
		}
		return 0.1
	}
	return 1.0 / 3
}

func (s *Select) Schema() *types.Schema { return s.Child.Schema() }
func (s *Select) Children() []Node      { return []Node{s.Child} }
func (s *Select) Props() Props          { return s.props }
func (s *Select) describe() string      { return "Select " + s.Pred.String() }

// ProjCol mirrors exec.ProjCol at the logical level.
type ProjCol struct {
	Name string
	Expr expr.Expr
}

// Project computes named output expressions.
type Project struct {
	Child  Node
	Cols   []ProjCol
	schema *types.Schema
	props  Props
}

// NewProject derives the projection schema; panics on unresolvable
// expressions (queries are assembled by code, so this is a bug, not input).
func NewProject(child Node, cols []ProjCol) *Project {
	outCols := make([]types.Column, len(cols))
	for i, c := range cols {
		kind := inferKindLogical(c.Expr, child.Schema())
		width := 8
		if ref, ok := c.Expr.(expr.ColRef); ok {
			j := child.Schema().MustOrdinal(ref.Name)
			width = child.Schema().Col(j).DefaultWidth()
		}
		outCols[i] = types.Column{Name: c.Name, Kind: kind, Width: width}
	}
	schema := types.NewSchema(outCols...)
	cp := child.Props()
	dist := make(map[string]int64, len(cols))
	rename := make(map[string]string)
	for _, c := range cols {
		if ref, ok := c.Expr.(expr.ColRef); ok {
			if _, taken := rename[ref.Name]; !taken {
				rename[ref.Name] = c.Name
			}
			if d, found := cp.Distinct[ref.Name]; found {
				dist[c.Name] = d
				continue
			}
		}
		dist[c.Name] = cp.Rows
	}
	fds := renameFDs(cp.FDs, rename)
	// A computed column is determined by its (projected) source columns.
	for _, c := range cols {
		if _, plain := c.Expr.(expr.ColRef); plain {
			continue
		}
		det := sortord.NewAttrSet()
		ok := true
		for src := range expr.Columns(c.Expr) {
			n, found := rename[src]
			if !found {
				ok = false
				break
			}
			det.Add(n)
		}
		if ok && !det.IsEmpty() {
			fds = append(fds, FD{Det: det, Dep: sortord.NewAttrSet(c.Name)})
		}
	}
	return &Project{
		Child: child, Cols: cols, schema: schema,
		props: Props{Rows: cp.Rows, Width: schema.AvgTupleWidth(), Distinct: dist, FDs: fds},
	}
}

// NewProjectNames projects existing columns by name.
func NewProjectNames(child Node, names []string) *Project {
	cols := make([]ProjCol, len(names))
	for i, n := range names {
		cols[i] = ProjCol{Name: n, Expr: expr.Col(n)}
	}
	return NewProject(child, cols)
}

func inferKindLogical(e expr.Expr, s *types.Schema) types.Kind {
	switch n := e.(type) {
	case expr.ColRef:
		return s.Col(s.MustOrdinal(n.Name)).Kind
	case expr.Const:
		return n.Value.Kind()
	case expr.Cmp, expr.And, expr.Or, expr.Not:
		return types.KindBool
	case expr.Arith:
		if inferKindLogical(n.L, s) == types.KindInt && inferKindLogical(n.R, s) == types.KindInt {
			return types.KindInt
		}
		return types.KindFloat
	default:
		return types.KindNull
	}
}

func (p *Project) Schema() *types.Schema { return p.schema }
func (p *Project) Children() []Node      { return []Node{p.Child} }
func (p *Project) Props() Props          { return p.props }
func (p *Project) describe() string {
	names := make([]string, len(p.Cols))
	for i, c := range p.Cols {
		names[i] = c.Name
	}
	return "Project " + strings.Join(names, ", ")
}

// Join combines two inputs under a predicate. Only conjunctive equality
// predicates participate in merge/hash keys; residual conjuncts are applied
// after the join.
type Join struct {
	Left, Right Node
	Pred        expr.Expr
	Type        exec.JoinType
	// EquiPairs are the column=column conjuncts spanning the inputs; the
	// paper's join attribute set S is the pair list (canonical name: the
	// left column).
	EquiPairs []expr.EquiPair
	Residual  []expr.Expr
	schema    *types.Schema
	props     Props
}

// NewJoin derives the equijoin structure and estimates output cardinality
// as |L||R| / Π max(D_L(ai), D_R(ai)).
func NewJoin(left, right Node, pred expr.Expr, jt exec.JoinType) *Join {
	pairs, residual := expr.SplitJoinPredicate(pred, left.Schema(), right.Schema())
	lp, rp := left.Props(), right.Props()
	card := float64(lp.Rows) * float64(rp.Rows)
	for _, pr := range pairs {
		dl, dr := lp.Distinct[pr.Left], rp.Distinct[pr.Right]
		d := dl
		if dr > d {
			d = dr
		}
		if d > 0 {
			card /= float64(d)
		}
	}
	rows := int64(card)
	if jt == exec.FullOuterJoin || jt == exec.LeftOuterJoin {
		// Outer joins emit at least the preserved side(s).
		if rows < lp.Rows {
			rows = lp.Rows
		}
		if jt == exec.FullOuterJoin && rows < rp.Rows {
			rows = rp.Rows
		}
	}
	if rows < 1 && lp.Rows > 0 && rp.Rows > 0 {
		rows = 1
	}
	schema := left.Schema().Concat(right.Schema())
	dist := make(map[string]int64, len(lp.Distinct)+len(rp.Distinct))
	for k, v := range lp.Distinct {
		dist[k] = min64(v, rows)
	}
	for k, v := range rp.Distinct {
		dist[k] = min64(v, rows)
	}
	fds := append(append([]FD{}, lp.FDs...), rp.FDs...)
	if jt == exec.InnerJoin {
		// Equijoin equalities hold on every inner-join output row; outer
		// joins pad one side with NULLs, voiding the equality.
		fds = append(fds, equiPairFDs(pairs)...)
	}
	return &Join{
		Left: left, Right: right, Pred: pred, Type: jt,
		EquiPairs: pairs, Residual: residual, schema: schema,
		props: Props{Rows: rows, Width: lp.Width + rp.Width, Distinct: dist, FDs: fds},
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// JoinAttrSetLeft returns S in left-column names.
func (j *Join) JoinAttrSetLeft() sortord.AttrSet {
	s := sortord.NewAttrSet()
	for _, p := range j.EquiPairs {
		s.Add(p.Left)
	}
	return s
}

// JoinAttrSetRight returns S in right-column names.
func (j *Join) JoinAttrSetRight() sortord.AttrSet {
	s := sortord.NewAttrSet()
	for _, p := range j.EquiPairs {
		s.Add(p.Right)
	}
	return s
}

// RightName maps a left join column to its right-side pair name.
func (j *Join) RightName(left string) (string, bool) {
	for _, p := range j.EquiPairs {
		if p.Left == left {
			return p.Right, true
		}
	}
	return "", false
}

// LeftName maps a right join column to its left-side pair name.
func (j *Join) LeftName(right string) (string, bool) {
	for _, p := range j.EquiPairs {
		if p.Right == right {
			return p.Left, true
		}
	}
	return "", false
}

// CanonicalizeOrder rewrites an order over join columns (either side's
// names) into left-side names; non-join attributes pass through unchanged.
func (j *Join) CanonicalizeOrder(o sortord.Order) sortord.Order {
	out := make(sortord.Order, len(o))
	for i, a := range o {
		if l, ok := j.LeftName(a); ok {
			out[i] = l
		} else {
			out[i] = a
		}
	}
	return out.Dedup()
}

func (j *Join) Schema() *types.Schema { return j.schema }
func (j *Join) Children() []Node      { return []Node{j.Left, j.Right} }
func (j *Join) Props() Props          { return j.props }
func (j *Join) describe() string {
	return fmt.Sprintf("Join[%s] %s", j.Type, j.Pred)
}

// AggSpec mirrors exec.AggSpec at the logical level.
type AggSpec = exec.AggSpec

// GroupBy groups by columns and computes aggregates.
type GroupBy struct {
	Child     Node
	GroupCols []string
	Aggs      []AggSpec
	schema    *types.Schema
	props     Props
}

// NewGroupBy derives the aggregate output schema and D(child, groupCols)
// output cardinality.
func NewGroupBy(child Node, groupCols []string, aggs []AggSpec) *GroupBy {
	cp := child.Props()
	cols := make([]types.Column, 0, len(groupCols)+len(aggs))
	for _, g := range groupCols {
		cols = append(cols, child.Schema().Col(child.Schema().MustOrdinal(g)))
	}
	for _, a := range aggs {
		kind := types.KindFloat
		switch a.Func {
		case exec.AggCount:
			kind = types.KindInt
		case exec.AggSum, exec.AggMin, exec.AggMax:
			if a.Arg != nil {
				kind = inferKindLogical(a.Arg, child.Schema())
			}
		}
		cols = append(cols, types.Column{Name: a.Name, Kind: kind})
	}
	schema := types.NewSchema(cols...)
	rows := cp.DistinctOn(groupCols)
	if rows == 0 && cp.Rows > 0 {
		rows = 1
	}
	dist := make(map[string]int64, len(groupCols))
	for _, g := range groupCols {
		dist[g] = min64(cp.Distinct[g], rows)
	}
	for _, a := range aggs {
		dist[a.Name] = rows
	}
	outAttrs := schema.AttrSet()
	fds := restrictFDs(cp.FDs, outAttrs)
	// The group columns determine every aggregate output.
	fds = append(fds, FD{Det: sortord.NewAttrSet(groupCols...), Dep: outAttrs})
	return &GroupBy{
		Child: child, GroupCols: append([]string(nil), groupCols...), Aggs: aggs,
		schema: schema,
		props:  Props{Rows: rows, Width: schema.AvgTupleWidth(), Distinct: dist, FDs: fds},
	}
}

func (g *GroupBy) Schema() *types.Schema { return g.schema }
func (g *GroupBy) Children() []Node      { return []Node{g.Child} }
func (g *GroupBy) Props() Props          { return g.props }
func (g *GroupBy) describe() string {
	return "GroupBy " + strings.Join(g.GroupCols, ", ")
}

// Distinct eliminates duplicate rows.
type Distinct struct {
	Child Node
	props Props
}

// NewDistinct estimates output cardinality as D over all columns.
func NewDistinct(child Node) *Distinct {
	cp := child.Props()
	rows := cp.DistinctOn(child.Schema().Names())
	return &Distinct{Child: child, props: Props{Rows: rows, Width: cp.Width, Distinct: capDistinct(cp.Distinct, rows), FDs: cp.FDs}}
}

func (d *Distinct) Schema() *types.Schema { return d.Child.Schema() }
func (d *Distinct) Children() []Node      { return []Node{d.Child} }
func (d *Distinct) Props() Props          { return d.props }
func (d *Distinct) describe() string      { return "Distinct" }

// Union combines two union-compatible inputs.
type Union struct {
	Left, Right Node
	Dedup       bool
	props       Props
}

// NewUnion builds a union; Dedup selects UNION vs UNION ALL.
func NewUnion(left, right Node, dedup bool) *Union {
	lp, rp := left.Props(), right.Props()
	rows := lp.Rows + rp.Rows
	dist := make(map[string]int64)
	for i, name := range left.Schema().Names() {
		rightName := right.Schema().Col(i).Name
		dist[name] = min64(lp.Distinct[name]+rp.Distinct[rightName], rows)
	}
	return &Union{
		Left: left, Right: right, Dedup: dedup,
		props: Props{Rows: rows, Width: lp.Width, Distinct: dist},
	}
}

func (u *Union) Schema() *types.Schema { return u.Left.Schema() }
func (u *Union) Children() []Node      { return []Node{u.Left, u.Right} }
func (u *Union) Props() Props          { return u.props }
func (u *Union) describe() string {
	if u.Dedup {
		return "Union"
	}
	return "UnionAll"
}

// Limit caps the result at K rows. Combined with an order requirement this
// is the Top-K pattern of the paper's §7: with a pipelined partial sort
// below it, the first K results arrive without sorting the whole input.
type Limit struct {
	Child Node
	K     int64
	props Props
}

// NewLimit builds a row-count cap.
func NewLimit(child Node, k int64) *Limit {
	cp := child.Props()
	rows := cp.Rows
	if k < rows {
		rows = k
	}
	return &Limit{Child: child, K: k,
		props: Props{Rows: rows, Width: cp.Width, Distinct: capDistinct(cp.Distinct, rows), FDs: cp.FDs}}
}

func (l *Limit) Schema() *types.Schema { return l.Child.Schema() }
func (l *Limit) Children() []Node      { return []Node{l.Child} }
func (l *Limit) Props() Props          { return l.props }
func (l *Limit) describe() string      { return fmt.Sprintf("Limit %d", l.K) }

// OrderBy is the root-level sort requirement.
type OrderBy struct {
	Child Node
	Order sortord.Order
}

// NewOrderBy attaches a required output order.
func NewOrderBy(child Node, o sortord.Order) *OrderBy {
	return &OrderBy{Child: child, Order: o.Clone()}
}

func (o *OrderBy) Schema() *types.Schema { return o.Child.Schema() }
func (o *OrderBy) Children() []Node      { return []Node{o.Child} }
func (o *OrderBy) Props() Props          { return o.Child.Props() }
func (o *OrderBy) describe() string      { return "OrderBy " + o.Order.String() }

// Format renders the logical tree, one node per line.
func Format(n Node) string {
	var b strings.Builder
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.describe())
		b.WriteString("\n")
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return b.String()
}
