package logical

import (
	"pyro/internal/expr"
	"pyro/internal/sortord"
)

// FD is a functional dependency: the determinant attribute set decides the
// dependent attributes. FDs carried in Props are exact facts (verified
// keys, equijoin column equalities, projection renames) — never inferences
// from estimated statistics, which saturate and would fabricate false
// dependencies. The optimizer uses them to shrink grouping column sets
// (the paper's Query 3 remark that {ps_partkey, ps_suppkey} → ps_availqty
// lets a (suppkey, partkey) stream feed the aggregate).
type FD struct {
	Det sortord.AttrSet
	Dep sortord.AttrSet
}

// Closure returns the attribute closure of start under the FDs: the set of
// attributes functionally determined by start.
func Closure(start sortord.AttrSet, fds []FD) sortord.AttrSet {
	out := start.Clone()
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			if out.ContainsAll(fd.Det) && !out.ContainsAll(fd.Dep) {
				out.AddAll(fd.Dep)
				changed = true
			}
		}
	}
	return out
}

// Determines reports whether det functionally determines all of target.
func Determines(det, target sortord.AttrSet, fds []FD) bool {
	return Closure(det, fds).ContainsAll(target)
}

// renameFDs maps FDs through a projection's old→new name mapping. An FD
// survives only if every determinant column is projected; dependents shrink
// to the projected subset.
func renameFDs(fds []FD, rename map[string]string) []FD {
	var out []FD
	for _, fd := range fds {
		det := sortord.NewAttrSet()
		ok := true
		for a := range fd.Det {
			n, found := rename[a]
			if !found {
				ok = false
				break
			}
			det.Add(n)
		}
		if !ok {
			continue
		}
		dep := sortord.NewAttrSet()
		for a := range fd.Dep {
			if n, found := rename[a]; found {
				dep.Add(n)
			}
		}
		if !dep.IsEmpty() {
			out = append(out, FD{Det: det, Dep: dep})
		}
	}
	return out
}

// equiPairFDs derives the mutual dependencies of equijoin columns: after
// l = r holds on every output row, each determines the other.
func equiPairFDs(pairs []expr.EquiPair) []FD {
	var out []FD
	for _, p := range pairs {
		out = append(out,
			FD{Det: sortord.NewAttrSet(p.Left), Dep: sortord.NewAttrSet(p.Right)},
			FD{Det: sortord.NewAttrSet(p.Right), Dep: sortord.NewAttrSet(p.Left)},
		)
	}
	return out
}

// restrictFDs keeps FDs whose determinant survives in the given attribute
// set, shrinking dependents to it.
func restrictFDs(fds []FD, attrs sortord.AttrSet) []FD {
	var out []FD
	for _, fd := range fds {
		if !attrs.ContainsAll(fd.Det) {
			continue
		}
		dep := fd.Dep.Intersect(attrs)
		if !dep.IsEmpty() {
			out = append(out, FD{Det: fd.Det, Dep: dep})
		}
	}
	return out
}
