package harness

import (
	"bytes"
	"strings"
	"testing"
)

// smallScale keeps harness tests fast; experiments must still demonstrate
// their qualitative shape at this size.
var smallScale = Scale{Factor: 0.1}

func runExperiment(t *testing.T, name string) string {
	t.Helper()
	fn, ok := Experiments[name]
	if !ok {
		t.Fatalf("unknown experiment %q", name)
	}
	var buf bytes.Buffer
	if err := fn(&buf, smallScale); err != nil {
		t.Fatalf("experiment %s: %v\noutput so far:\n%s", name, err, buf.String())
	}
	out := buf.String()
	if out == "" {
		t.Fatalf("experiment %s produced no output", name)
	}
	return out
}

func TestRunExample1(t *testing.T) {
	out := runExperiment(t, "example1")
	if !strings.Contains(out, "PYRO-O") {
		t.Fatalf("missing variants:\n%s", out)
	}
}

func TestRunA1(t *testing.T) {
	out := runExperiment(t, "a1")
	if !strings.Contains(out, "partial-sort (MRS)") {
		t.Fatalf("missing MRS row:\n%s", out)
	}
}

func TestRunA2(t *testing.T) {
	out := runExperiment(t, "a2")
	if !strings.Contains(out, "100%") {
		t.Fatalf("missing checkpoints:\n%s", out)
	}
}

func TestRunA3(t *testing.T) {
	out := runExperiment(t, "a3")
	if !strings.Contains(out, "seg_rows") {
		t.Fatalf("missing table:\n%s", out)
	}
}

func TestRunA4(t *testing.T) {
	out := runExperiment(t, "a4")
	if !strings.Contains(out, "MRS (partial sorts)") {
		t.Fatalf("missing variant:\n%s", out)
	}
}

func TestRunB1(t *testing.T) {
	out := runExperiment(t, "b1")
	if !strings.Contains(out, "PYRO-O plan") {
		t.Fatalf("missing plan dump:\n%s", out)
	}
}

func TestRunB2(t *testing.T) {
	out := runExperiment(t, "b2")
	if !strings.Contains(out, "coordinated") {
		t.Fatalf("missing variant:\n%s", out)
	}
}

func TestRunB3(t *testing.T) {
	out := runExperiment(t, "b3")
	for _, q := range []string{"Q3", "Q4", "Q5", "Q6"} {
		if !strings.Contains(out, q) {
			t.Fatalf("missing %s row:\n%s", q, out)
		}
	}
}

func TestRunScalabilitySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability sweep in short mode")
	}
	out := runExperiment(t, "scalability")
	if !strings.Contains(out, "PYRO-E_us") {
		t.Fatalf("missing columns:\n%s", out)
	}
}

func TestRunExtensions(t *testing.T) {
	out := runExperiment(t, "ext")
	if !strings.Contains(out, "Top-K") || !strings.Contains(out, "deferred fetch") {
		t.Fatalf("missing extension sections:\n%s", out)
	}
}

func TestRunRefinement(t *testing.T) {
	out := runExperiment(t, "refine")
	if !strings.Contains(out, "31") {
		t.Fatalf("missing 31-node row:\n%s", out)
	}
}
