package harness

import (
	"fmt"
	"io"
	"time"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/logical"
	"pyro/internal/ordersel"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/workload"
)

// allHeuristics in Fig 15's presentation order.
var allHeuristics = []core.Heuristic{
	core.HeuristicArbitrary,
	core.HeuristicFavorableExact,
	core.HeuristicPostgres,
	core.HeuristicFavorable,
	core.HeuristicExhaustive,
}

// RunB1 reproduces Experiment B1 (Figures 10–13): Query 3 under the four
// plan shapes the paper compares, executed on the same engine.
func RunB1(w io.Writer, scale Scale) error {
	section(w, "Experiment B1 (Figures 10-13): Query 3 plan shapes and execution")
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	cfg := workload.DefaultTPCH()
	cfg.Suppliers = scale.rows(100)
	cfg.PartsPerSupplier = scale.rows(80)
	if err := workload.BuildTPCH(cat, cfg); err != nil {
		return err
	}
	q3, err := workload.Query3(cat)
	if err != nil {
		return err
	}
	const sortBlocks = 32

	variants := []struct {
		name string
		mk   func() core.Options
	}{
		{"postgres-like (full sort MJ + hash agg)", func() core.Options {
			o := core.DefaultOptions(core.HeuristicPostgres)
			o.DisablePartialSort = true
			o.DisableHashJoin = true
			return o
		}},
		{"sys1-default (hash join)", func() core.Options {
			o := core.DefaultOptions(core.HeuristicFavorable)
			o.DisableMergeJoin = true
			return o
		}},
		{"sys1-forced-mj / sys2 (full sort MJ + group agg)", func() core.Options {
			o := core.DefaultOptions(core.HeuristicPostgres)
			o.DisablePartialSort = true
			o.DisableHashJoin = true
			o.DisableHashAgg = true
			return o
		}},
		{"PYRO-O (partial sort MJ)", func() core.Options {
			return core.DefaultOptions(core.HeuristicFavorable)
		}},
	}

	t := &table{header: []string{"plan", "est_cost", "time_ms", "first_row_ms", "total_io", "run_io", "rows"}}
	var firstRows int64 = -1
	plans := make(map[string]*core.Plan)
	for _, v := range variants {
		opts := v.mk()
		opts.Model.MemoryBlocks = sortBlocks
		res, err := core.Optimize(q3, opts)
		if err != nil {
			return err
		}
		plans[v.name] = res.Plan
		rs, err := buildAndMeasure(disk, res.Plan, sortBlocks, scale)
		if err != nil {
			return err
		}
		if firstRows == -1 {
			firstRows = rs.rows
		} else if rs.rows != firstRows {
			return fmt.Errorf("B1: %q returned %d rows, expected %d", v.name, rs.rows, firstRows)
		}
		t.add(v.name, fmt.Sprintf("%.0f", res.Plan.Cost.Total), ms(rs.elapsed), ms(rs.firstOut),
			fmt.Sprint(rs.io.Total()), fmt.Sprint(rs.io.RunTotal()), fmt.Sprint(rs.rows))
	}
	t.write(w)
	fmt.Fprintf(w, "\nPYRO-O plan (compare with Figure 10b):\n%s", plans["PYRO-O (partial sort MJ)"].Format())
	fmt.Fprintf(w, "paper: the PYRO-O plan beat all defaults on Postgres and SYS1 (Figs 12, 13)\n")
	return nil
}

// RunB2 reproduces Experiment B2 (Figure 14): Query 4's two full outer
// joins. Systems that pick orders independently share no prefix; PYRO-O's
// phase 2 aligns them on the common attributes (c4, c5).
func RunB2(w io.Writer, scale Scale) error {
	section(w, "Experiment B2 (Figure 14): common attributes across multiple joins")
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	if err := workload.BuildOuterJoinTables(cat, scale.rows(30_000), 5); err != nil {
		return err
	}
	q4, err := workload.Query4(cat)
	if err != nil {
		return err
	}
	const sortBlocks = 32

	t := &table{header: []string{"plan", "est_cost", "time_ms", "total_io", "run_io", "join_orders"}}
	var rowCounts []int64
	for _, v := range []struct {
		name string
		mk   func() core.Options
	}{
		{"independent (PYRO, no refinement)", func() core.Options {
			return core.DefaultOptions(core.HeuristicArbitrary)
		}},
		{"coordinated (PYRO-O + phase 2)", func() core.Options {
			return core.DefaultOptions(core.HeuristicFavorable)
		}},
	} {
		opts := v.mk()
		opts.Model.MemoryBlocks = sortBlocks
		res, err := core.Optimize(q4, opts)
		if err != nil {
			return err
		}
		var orders []string
		res.Plan.Walk(func(p *core.Plan) {
			if p.Kind == core.OpMergeJoin {
				orders = append(orders, p.LeftKey.String())
			}
		})
		rs, err := buildAndMeasure(disk, res.Plan, sortBlocks, scale)
		if err != nil {
			return err
		}
		rowCounts = append(rowCounts, rs.rows)
		t.add(v.name, fmt.Sprintf("%.0f", res.Plan.Cost.Total), ms(rs.elapsed),
			fmt.Sprint(rs.io.Total()), fmt.Sprint(rs.io.RunTotal()), fmt.Sprint(orders))
	}
	t.write(w)
	if len(rowCounts) == 2 && rowCounts[0] != rowCounts[1] {
		return fmt.Errorf("B2: plans disagree (%d vs %d rows)", rowCounts[0], rowCounts[1])
	}
	fmt.Fprintf(w, "paper: PYRO-O's joins share the (c4, c5) prefix, cutting sorting effort\n")
	return nil
}

// RunB3 reproduces Experiment B3 (Figure 15): estimated plan cost for
// Queries 3-6 under all five heuristics, normalized to PYRO-E = 100.
func RunB3(w io.Writer, scale Scale) error {
	section(w, "Experiment B3 (Figure 15): normalized estimated plan costs")

	type queryCase struct {
		name  string
		build func() (logical.Node, error)
	}
	// Each query gets a fresh catalog to mirror the paper's setups.
	var cases []queryCase

	{ // Q3
		disk := storage.NewDisk(0)
		cat := catalog.New(disk)
		cfg := workload.DefaultTPCH()
		cfg.Suppliers = scale.rows(100)
		cfg.PartsPerSupplier = scale.rows(80)
		if err := workload.BuildTPCH(cat, cfg); err != nil {
			return err
		}
		cases = append(cases, queryCase{"Q3", func() (logical.Node, error) { return workload.Query3(cat) }})
	}
	{ // Q4
		disk := storage.NewDisk(0)
		cat := catalog.New(disk)
		if err := workload.BuildOuterJoinTables(cat, scale.rows(30_000), 5); err != nil {
			return err
		}
		cases = append(cases, queryCase{"Q4", func() (logical.Node, error) { return workload.Query4(cat) }})
	}
	{ // Q5
		disk := storage.NewDisk(0)
		cat := catalog.New(disk)
		if _, err := workload.BuildTran(cat, scale.rows(40_000), 9); err != nil {
			return err
		}
		cases = append(cases, queryCase{"Q5", func() (logical.Node, error) { return workload.Query5(cat) }})
	}
	{ // Q6
		disk := storage.NewDisk(0)
		cat := catalog.New(disk)
		if err := workload.BuildBasketAnalytics(cat, scale.rows(50_000), scale.rows(40_000), 13); err != nil {
			return err
		}
		cases = append(cases, queryCase{"Q6", func() (logical.Node, error) { return workload.Query6(cat) }})
	}

	t := &table{header: []string{"query", "PYRO", "PYRO-O-", "PYRO-P", "PYRO-O", "PYRO-E"}}
	for _, c := range cases {
		q, err := c.build()
		if err != nil {
			return err
		}
		costs := make([]float64, len(allHeuristics))
		for i, h := range allHeuristics {
			opts := core.DefaultOptions(h)
			// Fig 15 isolates sort-order choices among sort-based plans.
			opts.DisableHashJoin = true
			opts.DisableHashAgg = true
			opts.Model.MemoryBlocks = 32
			res, err := core.Optimize(q, opts)
			if err != nil {
				return err
			}
			costs[i] = res.Plan.Cost.Total
		}
		base := costs[len(costs)-1] // PYRO-E = 100
		row := []string{c.name}
		for _, cst := range costs {
			if base > 0 {
				row = append(row, fmt.Sprintf("%.0f", 100*cst/base))
			} else {
				row = append(row, "-")
			}
		}
		t.add(row...)
	}
	t.write(w)
	fmt.Fprintf(w, "paper (log scale): PYRO-O tracks PYRO-E at 100 while PYRO and PYRO-P can be several-fold worse\n")
	return nil
}

// RunScalability reproduces Figure 16: optimization time vs the number of
// join attributes for PYRO-P, PYRO-O and PYRO-E. PYRO-E is capped at 8
// attributes (8! = 40320 permutations; the factorial blow-up is the
// figure's point).
func RunScalability(w io.Writer, scale Scale) error {
	section(w, "Figure 16: optimization time vs number of join attributes")
	const maxAttrs = 12
	const exhaustiveCap = 8
	t := &table{header: []string{"attrs", "PYRO-P_us", "PYRO-O_us", "PYRO-E_us"}}
	for n := 1; n <= maxAttrs; n++ {
		disk := storage.NewDisk(0)
		cat := catalog.New(disk)
		if err := workload.BuildScalability(cat, n, 500, 21); err != nil {
			return err
		}
		q, err := workload.ScalabilityQuery(cat, n)
		if err != nil {
			return err
		}
		timeOf := func(h core.Heuristic) (time.Duration, error) {
			opts := core.DefaultOptions(h)
			opts.DisableHashJoin = true
			start := time.Now()
			if _, err := core.Optimize(q, opts); err != nil {
				return 0, err
			}
			return time.Since(start), nil
		}
		dp, err := timeOf(core.HeuristicPostgres)
		if err != nil {
			return err
		}
		do, err := timeOf(core.HeuristicFavorable)
		if err != nil {
			return err
		}
		eCell := "-"
		if n <= exhaustiveCap {
			de, err := timeOf(core.HeuristicExhaustive)
			if err != nil {
				return err
			}
			eCell = fmt.Sprint(de.Microseconds())
		}
		t.add(fmt.Sprint(n), fmt.Sprint(dp.Microseconds()), fmt.Sprint(do.Microseconds()), eCell)
	}
	t.write(w)
	fmt.Fprintf(w, "paper: PYRO-P and PYRO-O stay flat (few ms); PYRO-E grows factorially\n")
	return nil
}

// RunRefinement reproduces the §6.3 plan-refinement timing: the
// 2-approximate algorithm on join trees up to 31 nodes with 10 attributes
// per node finished in under 6 ms on 2006 hardware.
func RunRefinement(w io.Writer, scale Scale) error {
	section(w, "Section 6.3: phase-2 refinement timing (31-node trees)")
	t := &table{header: []string{"nodes", "attrs_per_node", "benefit", "time_us"}}
	for _, nodes := range []int{7, 15, 31} {
		sets := make([]sortord.AttrSet, nodes)
		for i := range sets {
			s := sortord.NewAttrSet()
			for k := 0; k < 10; k++ {
				s.Add(fmt.Sprintf("x%d", (i*3+k)%20))
			}
			sets[i] = s
		}
		// Complete binary tree edges.
		var edges [][2]int
		for i := 1; i < nodes; i++ {
			edges = append(edges, [2]int{(i - 1) / 2, i})
		}
		prob := ordersel.Problem{Sets: sets, Edges: edges}
		start := time.Now()
		perms := ordersel.TwoApprox(prob)
		elapsed := time.Since(start)
		t.add(fmt.Sprint(nodes), "10", fmt.Sprint(prob.TotalBenefit(perms)), fmt.Sprint(elapsed.Microseconds()))
	}
	t.write(w)
	fmt.Fprintf(w, "paper: < 6 ms even for 31-node trees\n")
	return nil
}
