package harness

import (
	"errors"
	"fmt"
	"io"
	"time"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/exec"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/workload"
)

// RunA1 reproduces Experiment A1 (Figure 7): ORDER BY (l_suppkey,
// l_partkey) over lineitem with a covering index supplying the (l_suppkey)
// prefix. "Default Sort" ignores the prefix (SRS, what Postgres/SYS1/SYS2
// did); "Exploiting Partial Sort" uses MRS. The paper measured 3–4×.
func RunA1(w io.Writer, scale Scale) error {
	section(w, "Experiment A1 (Figure 7): ORDER BY with a partially matching covering index")
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	cfg := workload.DefaultTPCH()
	cfg.Suppliers = scale.rows(100)
	cfg.PartsPerSupplier = scale.rows(80)
	if err := workload.BuildTPCH(cat, cfg); err != nil {
		return err
	}
	li, err := cat.Table("lineitem")
	if err != nil {
		return err
	}
	ix := li.Index("li_sk")
	target := sortord.New("l_suppkey", "l_partkey")
	const sortBlocks = 32

	t := &table{header: []string{"variant", "rows", "time_ms", "first_out_ms", "run_io", "comparisons"}}
	// Default: SRS, input order ignored.
	proj, err := sortedProjection(ix, []string{"l_suppkey", "l_partkey"})
	if err != nil {
		return err
	}
	srs, err := exec.NewSortSRS(proj, target, mkSortConfig(disk, sortBlocks, scale))
	if err != nil {
		return err
	}
	rsS, err := measure(disk, srs)
	if err != nil {
		return err
	}
	t.add("default-sort (SRS)", fmt.Sprint(rsS.rows), ms(rsS.elapsed), ms(rsS.firstOut),
		fmt.Sprint(rsS.io.RunTotal()), fmt.Sprint(srs.SortStats().Comparisons))

	// MRS exploiting the (l_suppkey) prefix from the index.
	proj2, err := sortedProjection(ix, []string{"l_suppkey", "l_partkey"})
	if err != nil {
		return err
	}
	mrs, err := exec.NewSortMRS(proj2, target, sortord.New("l_suppkey"), mkSortConfig(disk, sortBlocks, scale))
	if err != nil {
		return err
	}
	rsM, err := measure(disk, mrs)
	if err != nil {
		return err
	}
	t.add("partial-sort (MRS)", fmt.Sprint(rsM.rows), ms(rsM.elapsed), ms(rsM.firstOut),
		fmt.Sprint(rsM.io.RunTotal()), fmt.Sprint(mrs.SortStats().Comparisons))
	t.write(w)
	if rsS.rows != rsM.rows {
		return fmt.Errorf("A1: row counts diverge (%d vs %d)", rsS.rows, rsM.rows)
	}
	fmt.Fprintf(w, "paper: MRS 3-4x faster; here run_io drops %d -> %d\n",
		rsS.io.RunTotal(), rsM.io.RunTotal())
	return nil
}

// RunA2 reproduces Experiment A2 (Figure 8): tuples produced vs time for a
// 10-column-segment sort. SRS emits nothing until all input is consumed;
// MRS streams.
func RunA2(w io.Writer, scale Scale) error {
	section(w, "Experiment A2 (Figure 8): rate of output, SRS vs MRS")
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	rows := scale.rows(200_000)
	segments := int64(1000) // D(c1), paper used 10,000 on 10M rows
	tb, err := workload.BuildSegmentTable(cat, "r3", rows, rows/segments, 7)
	if err != nil {
		return err
	}
	target := sortord.New("c1", "c2")
	const sortBlocks = 64
	checkpoints := []float64{0.01, 0.25, 0.5, 0.75, 1.0}

	run := func(useMRS bool) (marks []time.Duration, err error) {
		var op exec.Operator
		scan := exec.NewTableScan(tb)
		if useMRS {
			op, err = exec.NewSortMRS(scan, target, sortord.New("c1"), mkSortConfig(disk, sortBlocks, scale))
		} else {
			op, err = exec.NewSortSRS(scan, target, mkSortConfig(disk, sortBlocks, scale))
		}
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if err := op.Open(); err != nil {
			return nil, err
		}
		defer func() { err = errors.Join(err, op.Close()) }()
		marks = make([]time.Duration, len(checkpoints))
		next := 0
		var n int64
		for {
			_, ok, err := op.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			n++
			for next < len(checkpoints) && float64(n) >= checkpoints[next]*float64(rows) {
				marks[next] = time.Since(start)
				next++
			}
		}
		if n != rows {
			return nil, fmt.Errorf("A2: produced %d of %d rows", n, rows)
		}
		return marks, err
	}

	srsMarks, err := run(false)
	if err != nil {
		return err
	}
	mrsMarks, err := run(true)
	if err != nil {
		return err
	}
	t := &table{header: []string{"tuples_produced", "SRS_ms", "MRS_ms"}}
	for i, c := range checkpoints {
		t.add(fmt.Sprintf("%.0f%%", c*100), ms(srsMarks[i]), ms(mrsMarks[i]))
	}
	t.write(w)
	fmt.Fprintf(w, "paper: MRS produces tuples immediately; SRS only after reading all input\n")
	return nil
}

// RunA3 reproduces Experiment A3 (Figure 9): effect of partial sort segment
// size. Tables R0..Rk hold the same rows with 10^i rows per c1 value; when
// a segment outgrows sort memory MRS starts spilling and converges to SRS.
func RunA3(w io.Writer, scale Scale) error {
	section(w, "Experiment A3 (Figure 9): effect of partial sort segment size")
	rows := scale.rows(100_000)
	const sortBlocks = 32 // ~few thousand buffered tuples
	target := sortord.New("c1", "c2")

	t := &table{header: []string{"seg_rows", "SRS_ms", "SRS_run_io", "MRS_ms", "MRS_run_io", "MRS_regime", "MRS_spilled_segs"}}
	for i := int64(1); i <= rows; i *= 10 {
		disk := storage.NewDisk(0)
		cat := catalog.New(disk)
		tb, err := workload.BuildSegmentTable(cat, fmt.Sprintf("seg%d", i), rows, i, 11)
		if err != nil {
			return err
		}
		srs, err := exec.NewSortSRS(exec.NewTableScan(tb), target, mkSortConfig(disk, sortBlocks, scale))
		if err != nil {
			return err
		}
		rsS, err := measure(disk, srs)
		if err != nil {
			return err
		}
		mrs, err := exec.NewSortMRS(exec.NewTableScan(tb), target, sortord.New("c1"), mkSortConfig(disk, sortBlocks, scale))
		if err != nil {
			return err
		}
		rsM, err := measure(disk, mrs)
		if err != nil {
			return err
		}
		if rsS.rows != rows || rsM.rows != rows {
			return fmt.Errorf("A3: row loss at segment %d", i)
		}
		t.add(fmt.Sprint(i), ms(rsS.elapsed), fmt.Sprint(rsS.io.RunTotal()),
			ms(rsM.elapsed), fmt.Sprint(rsM.io.RunTotal()), sortRegime(mrs),
			fmt.Sprint(mrs.SortStats().SpilledSegs))
	}
	t.write(w)
	fmt.Fprintf(w, "paper: MRS run I/O is zero while segments fit in memory, then converges to SRS\n")
	return nil
}

// RunA4 reproduces Experiment A4 (Query 2): the merge-join + aggregate
// query run with full sorts (SRS) vs partial sorts (MRS). The paper
// measured 63s -> 25s on Postgres.
func RunA4(w io.Writer, scale Scale) error {
	section(w, "Experiment A4 (Query 2): count lineitems per (supplier, part)")
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	cfg := workload.DefaultTPCH()
	cfg.Suppliers = scale.rows(100)
	cfg.PartsPerSupplier = scale.rows(60)
	if err := workload.BuildTPCH(cat, cfg); err != nil {
		return err
	}
	q2, err := workload.Query2(cat)
	if err != nil {
		return err
	}
	const sortBlocks = 32

	t := &table{header: []string{"variant", "rows", "time_ms", "first_row_ms", "total_io", "run_io", "est_cost"}}
	var rowsSeen int64 = -1
	for _, v := range []struct {
		name    string
		disable bool
	}{{"SRS (full sorts)", true}, {"MRS (partial sorts)", false}} {
		opts := core.DefaultOptions(core.HeuristicFavorable)
		opts.DisablePartialSort = v.disable
		opts.DisableHashJoin = true // the paper's plan is a merge join both times
		opts.DisableHashAgg = true
		opts.Model.MemoryBlocks = sortBlocks
		res, err := core.Optimize(q2, opts)
		if err != nil {
			return err
		}
		rs, err := buildAndMeasure(disk, res.Plan, sortBlocks, scale)
		if err != nil {
			return err
		}
		if rowsSeen == -1 {
			rowsSeen = rs.rows
		} else if rowsSeen != rs.rows {
			return fmt.Errorf("A4: plans disagree (%d vs %d rows)", rowsSeen, rs.rows)
		}
		t.add(v.name, fmt.Sprint(rs.rows), ms(rs.elapsed), ms(rs.firstOut),
			fmt.Sprint(rs.io.Total()), fmt.Sprint(rs.io.RunTotal()), fmt.Sprintf("%.0f", res.Plan.Cost.Total))
	}
	t.write(w)
	fmt.Fprintf(w, "paper: 63s with SRS vs 25s with MRS (same plan shape)\n")
	return nil
}

// RunExample1 reproduces §3's Example 1 (Figures 1 and 2): the estimated
// cost of the naïve full-sort plan vs the optimal plan that picks sort
// orders aligned with the clustering and covering indices. Paper: 530,345
// vs 290,410 I/Os (1.8x).
func RunExample1(w io.Writer, scale Scale) error {
	section(w, "Example 1 (Figures 1 and 2): naive vs order-aware merge-join plan")
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	if err := workload.BuildExample1(cat, scale.rows(40_000), 3); err != nil {
		return err
	}
	q, err := workload.Example1Query(cat)
	if err != nil {
		return err
	}
	const sortBlocks = 64
	t := &table{header: []string{"plan", "est_cost", "time_ms", "first_row_ms", "total_io", "run_io", "rows"}}
	var counts []int64
	for _, v := range []struct {
		name string
		opts core.Options
	}{
		{"naive (PYRO, arbitrary orders)", core.DefaultOptions(core.HeuristicArbitrary)},
		{"order-aware (PYRO-O)", core.DefaultOptions(core.HeuristicFavorable)},
	} {
		v.opts.DisableHashJoin = true // both figures use sort-merge joins
		v.opts.Model.MemoryBlocks = sortBlocks
		res, err := core.Optimize(q, v.opts)
		if err != nil {
			return err
		}
		rs, err := buildAndMeasure(disk, res.Plan, sortBlocks, scale)
		if err != nil {
			return err
		}
		counts = append(counts, rs.rows)
		t.add(v.name, fmt.Sprintf("%.0f", res.Plan.Cost.Total), ms(rs.elapsed), ms(rs.firstOut),
			fmt.Sprint(rs.io.Total()), fmt.Sprint(rs.io.RunTotal()), fmt.Sprint(rs.rows))
	}
	t.write(w)
	if counts[0] != counts[1] {
		return fmt.Errorf("example1: plans disagree (%d vs %d rows)", counts[0], counts[1])
	}
	fmt.Fprintf(w, "paper: 530,345 vs 290,410 estimated I/Os (~1.8x)\n")
	return nil
}
