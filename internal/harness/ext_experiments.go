package harness

import (
	"fmt"
	"io"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/cost"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/ordersel"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/workload"
)

// RunExtensions measures the two §7 future-work features implemented
// beyond the paper's evaluation: Top-K early termination over a pipelined
// partial sort, and deferred tuple fetch through a non-covering secondary
// index.
func RunExtensions(w io.Writer, scale Scale) error {
	if err := runTopK(w, scale); err != nil {
		return err
	}
	return runDeferredFetch(w, scale)
}

func runTopK(w io.Writer, scale Scale) error {
	k := scale.limit()
	section(w, fmt.Sprintf("Extension (§7): Top-K (limit %d) over a pipelined partial sort", k))
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	rows := scale.rows(200_000)
	tb, err := workload.BuildSegmentTable(cat, "tk", rows, rows/500, 3)
	if err != nil {
		return err
	}
	base := logical.NewOrderBy(logical.NewScan(tb), sortord.New("c1", "c2"))
	q := logical.NewLimit(base, k)
	const sortBlocks = 64

	t := &table{header: []string{"plan", "est_cost", "est_startup", "time_ms", "first_row_ms", "page_reads", "run_io", "rows"}}
	for _, v := range []struct {
		name    string
		disable bool
	}{{"partial sort (MRS, limit closes after first segments)", false}, {"full sort (SRS, must consume everything)", true}} {
		opts := core.DefaultOptions(core.HeuristicFavorable)
		opts.DisablePartialSort = v.disable
		opts.Model.MemoryBlocks = sortBlocks
		res, err := core.Optimize(q, opts)
		if err != nil {
			return err
		}
		rs, err := buildAndMeasure(disk, res.Plan, sortBlocks, scale)
		if err != nil {
			return err
		}
		if rs.rows != k {
			return fmt.Errorf("topk: %d rows, want %d", rs.rows, k)
		}
		t.add(v.name, fmt.Sprintf("%.0f", res.Plan.Cost.Total), fmt.Sprintf("%.0f", res.Plan.Cost.Startup),
			ms(rs.elapsed), ms(rs.firstOut),
			fmt.Sprint(rs.io.PageReads), fmt.Sprint(rs.io.RunTotal()), fmt.Sprint(rs.rows))
	}
	t.write(w)
	fmt.Fprintf(w, "§3.1 benefit 2: \"producing tuples early has immense benefits for Top-K queries\"\n")
	fmt.Fprintf(w, "two-phase model: the Limit node prices the plan at its first-%d-rows prefix (%d of %d segments)\n",
		k, ordersel.SegmentBudget(k, rows, 500), 500)
	return nil
}

func runDeferredFetch(w io.Writer, scale Scale) error {
	section(w, "Extension (§7): deferred fetch through a non-covering index")
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	rows := scale.rows(40_000)
	schema := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "tag", Kind: types.KindInt},
		types.Column{Name: "p1", Kind: types.KindString, Width: 100},
		types.Column{Name: "p2", Kind: types.KindString, Width: 100},
	)
	data := make([]types.Tuple, rows)
	for i := int64(0); i < rows; i++ {
		data[i] = types.NewTuple(
			types.NewInt(i), types.NewInt(i%2000),
			types.NewString("wide-payload-wide-payload-wide-payload-wide"),
			types.NewString("extra-payload-extra-payload-extra-payload-x"))
	}
	tb, err := cat.CreateTable("wide", schema, sortord.New("id"), data)
	if err != nil {
		return err
	}
	if _, err := cat.CreateIndex("wide_tag", tb, sortord.New("tag"), []string{"id"}); err != nil {
		return err
	}
	sel := logical.NewSelect(logical.NewScan(tb), expr.Eq(expr.Col("tag"), expr.IntLit(7)))
	const sortBlocks = 64

	t := &table{header: []string{"plan", "est_cost", "time_ms", "page_reads", "rows", "fetch_used"}}
	for _, v := range []struct {
		name    string
		prepare func() (*core.Plan, error)
	}{
		{"deferred fetch (PYRO-O)", func() (*core.Plan, error) {
			res, err := core.Optimize(sel, core.DefaultOptions(core.HeuristicFavorable))
			if err != nil {
				return nil, err
			}
			return res.Plan, nil
		}},
		{"table scan + filter", func() (*core.Plan, error) {
			// Build the scan+filter plan directly for comparison.
			scan := &core.Plan{
				Kind: core.OpTableScan, Table: tb, Schema: tb.Schema,
				OutOrder: tb.ClusterOrder, Rows: tb.Stats.NumRows,
				Blocks: tb.NumBlocks(),
				Cost:   cost.Streaming(float64(tb.NumBlocks()), tb.Stats.NumRows),
			}
			return &core.Plan{
				Kind: core.OpFilter, Children: []*core.Plan{scan}, Pred: sel.Pred,
				Schema: tb.Schema, OutOrder: scan.OutOrder,
				Rows: sel.Props().Rows, Blocks: scan.Blocks,
				Cost: cost.Cost{Startup: 0, Total: scan.Cost.Total + 0.01, Rows: sel.Props().Rows},
			}, nil
		}},
	} {
		plan, err := v.prepare()
		if err != nil {
			return err
		}
		rs, err := buildAndMeasure(disk, plan, sortBlocks, scale)
		if err != nil {
			return err
		}
		t.add(v.name, fmt.Sprintf("%.0f", plan.Cost.Total), ms(rs.elapsed),
			fmt.Sprint(rs.io.PageReads), fmt.Sprint(rs.rows),
			fmt.Sprint(plan.CountKind(core.OpFetch) > 0))
	}
	t.write(w)
	fmt.Fprintf(w, "§7: \"deferring the fetch ... can be very effective when a highly selective filter discards many rows\"\n")
	return nil
}
