// Package harness reproduces every table and figure of the paper's
// evaluation (§6) on the simulated engine. Each Run* function builds its
// dataset, runs the experiment and prints the same rows/series the paper
// reports: Figure 7 (A1), Figure 8 (A2), Figure 9 (A3), Query 2 (A4),
// Figures 1/2 (Example 1), Figures 10–13 (B1), Figure 14 (B2), Figure 15
// (B3), Figure 16 (optimizer scalability) and the §6.3 plan-refinement
// timing. Absolute numbers differ from the paper (different substrate);
// the shapes — who wins and by roughly what factor — are the reproduction
// target (see EXPERIMENTS.md).
package harness

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/exec"
	"pyro/internal/storage"
	"pyro/internal/xsort"
)

// Scale shrinks or grows every experiment's dataset (1 = defaults tuned
// for seconds-long runs) and carries the sort-execution knobs the CLI
// exposes, so every experiment runs under the same regime.
type Scale struct {
	Factor float64
	// SortParallelism bounds concurrent MRS segment sorts per enforcer
	// (0 = GOMAXPROCS, 1 = the paper's serial algorithm).
	SortParallelism int
	// SpillParallelism bounds concurrent spill jobs per enforcer
	// (0 = inherit SortParallelism, 1 = serial spilling).
	SpillParallelism int
	// RunFormation selects the enforcers' run-formation algorithm
	// (adaptive radix by default; compare pins the paper's comparison
	// sorts). Identical result key order, run structure and I/O in every
	// mode, so the experiment tables stay comparable across settings.
	RunFormation xsort.RunFormation
	// Limit is the Top-K row count for the limit-aware experiments
	// (pyro-bench -limit; 0 = the default of 10). The two-phase cost model
	// plans the Top-K extension experiment under this row budget.
	Limit int64
}

// limit returns the effective Top-K row count.
func (s Scale) limit() int64 {
	if s.Limit > 0 {
		return s.Limit
	}
	return 10
}

// DefaultScale returns Factor 1.
func DefaultScale() Scale { return Scale{Factor: 1} }

func (s Scale) rows(base int64) int64 {
	if s.Factor <= 0 {
		return base
	}
	n := int64(float64(base) * s.Factor)
	if n < 1 {
		n = 1
	}
	return n
}

// table is a minimal fixed-width table printer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
}

func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// runStats captures one measured execution.
type runStats struct {
	rows     int64
	elapsed  time.Duration
	io       storage.IOStats
	firstOut time.Duration // time to first output tuple
}

// measure drains an operator, charging I/O to disk and timing the run.
func measure(disk *storage.Disk, op exec.Operator) (runStats, error) {
	disk.ResetStats()
	start := time.Now()
	if err := op.Open(); err != nil {
		return runStats{}, err
	}
	var rs runStats
	for {
		_, ok, err := op.Next()
		if err != nil {
			return runStats{}, errors.Join(err, op.Close())
		}
		if !ok {
			break
		}
		if rs.rows == 0 {
			rs.firstOut = time.Since(start)
		}
		rs.rows++
	}
	if err := op.Close(); err != nil {
		return runStats{}, err
	}
	rs.elapsed = time.Since(start)
	rs.io = disk.Stats()
	return rs, nil
}

// buildAndMeasure compiles a plan and executes it under scale's sort knobs.
func buildAndMeasure(disk *storage.Disk, plan *core.Plan, sortBlocks int, scale Scale) (runStats, error) {
	op, err := core.Build(plan, core.BuildConfig{
		Disk:                 disk,
		SortMemoryBlocks:     sortBlocks,
		SortParallelism:      scale.SortParallelism,
		SortSpillParallelism: scale.SpillParallelism,
		SortRunFormation:     scale.RunFormation,
	})
	if err != nil {
		return runStats{}, err
	}
	return measure(disk, op)
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// sortRegime labels which execution regime a sort enforcer exercised —
// pipelined in-memory, serial spilling, or worker-pool spilling — so
// experiment tables distinguish measurements that silently serialized on
// the spill path from ones that ran it concurrently.
func sortRegime(s *exec.Sort) string {
	st := s.SortStats()
	switch {
	case !s.Spilled():
		return "in-memory"
	case st.SpillRunsParallel > 0:
		return "spill-par"
	default:
		return "spill-serial"
	}
}

// sortedProjection builds IndexScan -> Project(cols) for the sort
// experiments.
func sortedProjection(ix *catalog.Index, cols []string) (exec.Operator, error) {
	scan := exec.NewIndexScan(ix)
	return exec.NewProjectNames(scan, cols)
}

// mkSortConfig builds an xsort config on the disk under scale's sort knobs.
func mkSortConfig(disk *storage.Disk, blocks int, scale Scale) xsort.Config {
	return xsort.Config{
		Disk:             disk,
		MemoryBlocks:     blocks,
		Parallelism:      scale.SortParallelism,
		SpillParallelism: scale.SpillParallelism,
		RunFormation:     scale.RunFormation,
	}
}

// RunAll executes every experiment in paper order.
func RunAll(w io.Writer, scale Scale) error {
	steps := []struct {
		name string
		fn   func(io.Writer, Scale) error
	}{
		{"example1", RunExample1},
		{"a1", RunA1},
		{"a2", RunA2},
		{"a3", RunA3},
		{"a4", RunA4},
		{"b1", RunB1},
		{"b2", RunB2},
		{"b3", RunB3},
		{"scalability", RunScalability},
		{"refine", RunRefinement},
		{"ext", RunExtensions},
	}
	for _, s := range steps {
		if err := s.fn(w, scale); err != nil {
			return fmt.Errorf("harness: experiment %s: %w", s.name, err)
		}
	}
	return nil
}

// Experiments maps CLI names to runners.
var Experiments = map[string]func(io.Writer, Scale) error{
	"example1":    RunExample1,
	"a1":          RunA1,
	"a2":          RunA2,
	"a3":          RunA3,
	"a4":          RunA4,
	"b1":          RunB1,
	"b2":          RunB2,
	"b3":          RunB3,
	"scalability": RunScalability,
	"refine":      RunRefinement,
	"ext":         RunExtensions,
}
