package pyro

import (
	"fmt"

	"pyro/internal/exec"
	"pyro/internal/expr"
	"pyro/internal/logical"
	"pyro/internal/sortord"
)

// Expr is a scalar expression in the public API.
type Expr = expr.Expr

// Col references a column by name.
func Col(name string) Expr { return expr.Col(name) }

// Int is an integer literal.
func Int(v int64) Expr { return expr.IntLit(v) }

// Float is a float literal.
func Float(v float64) Expr { return expr.FloatLit(v) }

// Str is a string literal.
func Str(v string) Expr { return expr.StrLit(v) }

// Eq builds l = r.
func Eq(l, r Expr) Expr { return expr.Eq(l, r) }

// Ne builds l <> r.
func Ne(l, r Expr) Expr { return expr.Compare(expr.NE, l, r) }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return expr.Compare(expr.LT, l, r) }

// Le builds l <= r.
func Le(l, r Expr) Expr { return expr.Compare(expr.LE, l, r) }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return expr.Compare(expr.GT, l, r) }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return expr.Compare(expr.GE, l, r) }

// And conjoins predicates.
func And(es ...Expr) Expr { return expr.AndOf(es...) }

// Or disjoins predicates.
func Or(es ...Expr) Expr { return expr.OrOf(es...) }

// Not negates a predicate.
func Not(e Expr) Expr { return expr.Not{Child: e} }

// Add, Sub, Mul, Div build arithmetic expressions.
func Add(l, r Expr) Expr { return expr.Arith{Op: expr.Add, L: l, R: r} }
func Sub(l, r Expr) Expr { return expr.Arith{Op: expr.Sub, L: l, R: r} }
func Mul(l, r Expr) Expr { return expr.Arith{Op: expr.Mul, L: l, R: r} }
func Div(l, r Expr) Expr { return expr.Arith{Op: expr.Div, L: l, R: r} }

// Agg describes one aggregate output column.
type Agg struct {
	Name string
	Func AggFunc
	Arg  Expr // nil for COUNT(*)
}

// AggFunc re-exports the aggregate functions.
type AggFunc = exec.AggFunc

// Aggregate functions.
const (
	Count = exec.AggCount
	Sum   = exec.AggSum
	Min   = exec.AggMin
	Max   = exec.AggMax
	Avg   = exec.AggAvg
)

// Proj is one projected output column.
type Proj struct {
	Name string
	Expr Expr
}

// Query is an immutable logical query under construction. Builder methods
// return new queries; the first error sticks and is reported by Optimize.
type Query struct {
	db   *Database
	node logical.Node
	err  error
}

// Scan starts a query from a base table.
func (db *Database) Scan(table string) *Query {
	tb, err := db.cat.Table(table)
	if err != nil {
		return &Query{db: db, err: err}
	}
	return &Query{db: db, node: logical.NewScan(tb)}
}

func (q *Query) fail(err error) *Query {
	return &Query{db: q.db, err: err}
}

// Err returns the first construction error, if any.
func (q *Query) Err() error { return q.err }

// Filter applies a predicate.
func (q *Query) Filter(pred Expr) *Query {
	if q.err != nil {
		return q
	}
	return &Query{db: q.db, node: logical.NewSelect(q.node, pred)}
}

// Project computes output columns.
func (q *Query) Project(cols ...Proj) *Query {
	if q.err != nil {
		return q
	}
	pc := make([]logical.ProjCol, len(cols))
	for i, c := range cols {
		pc[i] = logical.ProjCol{Name: c.Name, Expr: c.Expr}
	}
	return &Query{db: q.db, node: logical.NewProject(q.node, pc)}
}

// Select projects existing columns by name.
func (q *Query) Select(names ...string) *Query {
	if q.err != nil {
		return q
	}
	for _, n := range names {
		if !q.node.Schema().Has(n) {
			return q.fail(fmt.Errorf("pyro: column %q not in %v", n, q.node.Schema().Names()))
		}
	}
	return &Query{db: q.db, node: logical.NewProjectNames(q.node, names)}
}

// As prefixes every column name — the query-builder equivalent of a SQL
// table alias, needed for self-joins.
func (q *Query) As(prefix string) *Query {
	if q.err != nil {
		return q
	}
	schema := q.node.Schema()
	cols := make([]logical.ProjCol, schema.Len())
	for i := 0; i < schema.Len(); i++ {
		n := schema.Col(i).Name
		cols[i] = logical.ProjCol{Name: prefix + n, Expr: expr.Col(n)}
	}
	return &Query{db: q.db, node: logical.NewProject(q.node, cols)}
}

// Join builds an inner join with the given predicate.
func (q *Query) Join(other *Query, on Expr) *Query {
	return q.join(other, on, exec.InnerJoin)
}

// LeftOuterJoin preserves unmatched left rows.
func (q *Query) LeftOuterJoin(other *Query, on Expr) *Query {
	return q.join(other, on, exec.LeftOuterJoin)
}

// FullOuterJoin preserves unmatched rows from both sides. Join-key columns
// of padded rows are coalesced (USING semantics) so merge plans keep their
// sort orders; see the engine documentation.
func (q *Query) FullOuterJoin(other *Query, on Expr) *Query {
	return q.join(other, on, exec.FullOuterJoin)
}

func (q *Query) join(other *Query, on Expr, jt exec.JoinType) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return q.fail(other.err)
	}
	if q.db != other.db {
		return q.fail(fmt.Errorf("pyro: cannot join queries from different databases"))
	}
	return &Query{db: q.db, node: logical.NewJoin(q.node, other.node, on, jt)}
}

// GroupBy aggregates over the given grouping columns.
func (q *Query) GroupBy(cols []string, aggs ...Agg) *Query {
	if q.err != nil {
		return q
	}
	for _, c := range cols {
		if !q.node.Schema().Has(c) {
			return q.fail(fmt.Errorf("pyro: group column %q not in %v", c, q.node.Schema().Names()))
		}
	}
	specs := make([]logical.AggSpec, len(aggs))
	for i, a := range aggs {
		specs[i] = logical.AggSpec{Name: a.Name, Func: a.Func, Arg: a.Arg}
	}
	return &Query{db: q.db, node: logical.NewGroupBy(q.node, cols, specs)}
}

// Distinct eliminates duplicate rows.
func (q *Query) Distinct() *Query {
	if q.err != nil {
		return q
	}
	return &Query{db: q.db, node: logical.NewDistinct(q.node)}
}

// Union combines two queries, eliminating duplicates.
func (q *Query) Union(other *Query) *Query { return q.union(other, true) }

// UnionAll combines two queries, keeping duplicates.
func (q *Query) UnionAll(other *Query) *Query { return q.union(other, false) }

func (q *Query) union(other *Query, dedup bool) *Query {
	if q.err != nil {
		return q
	}
	if other.err != nil {
		return q.fail(other.err)
	}
	ls, rs := q.node.Schema(), other.node.Schema()
	if ls.Len() != rs.Len() {
		return q.fail(fmt.Errorf("pyro: union arity mismatch: %d vs %d", ls.Len(), rs.Len()))
	}
	return &Query{db: q.db, node: logical.NewUnion(q.node, other.node, dedup)}
}

// OrderBy requires the output sorted on the given columns.
func (q *Query) OrderBy(cols ...string) *Query {
	if q.err != nil {
		return q
	}
	for _, c := range cols {
		if !q.node.Schema().Has(c) {
			return q.fail(fmt.Errorf("pyro: order column %q not in %v", c, q.node.Schema().Names()))
		}
	}
	return &Query{db: q.db, node: logical.NewOrderBy(q.node, sortord.New(cols...))}
}

// Limit caps the result at k rows. Placed above OrderBy this is the Top-K
// pattern: with a pipelined partial sort below, the first k results arrive
// without sorting the whole input (§3.1 benefit 2 / §7 of the paper). The
// optimizer plans the subtree under a row budget of k — candidates are
// compared by the cost of their first k rows, so a small k flips blocking
// full-sort/hash plans to pipelined partial-sort ones — and the executor's
// Limit operator closes its input the moment the k-th row is out,
// abandoning unsorted segments and unread spill runs without waiting for
// the consumer.
//
// k must be non-negative. k = 0 has defined semantics: a valid query with
// an empty result, planned at zero cost with no child pipeline at all (no
// degenerate sort is built or opened).
func (q *Query) Limit(k int64) *Query {
	if q.err != nil {
		return q
	}
	if k < 0 {
		return q.fail(fmt.Errorf("pyro: negative limit %d", k))
	}
	return &Query{db: q.db, node: logical.NewLimit(q.node, k)}
}

// LogicalString renders the logical tree (debugging aid).
func (q *Query) LogicalString() string {
	if q.err != nil {
		return "error: " + q.err.Error()
	}
	return logical.Format(q.node)
}
