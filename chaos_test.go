package pyro

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"pyro/internal/storage"
	"pyro/internal/storage/faulttest"
)

// chaosDB builds a compact database whose workloads exercise every fault
// class: a clustered table whose sorts overflow the deliberately small sort
// budget (spill-run reads and writes), plus a join partner. The admission
// gate is enabled so every chaos run also checks that failed queries return
// their slot.
func chaosDB(t testing.TB) *Database {
	t.Helper()
	db := Open(Config{
		SortMemoryBlocks:     8,
		MaxConcurrentQueries: 4,
	})
	const n, segSize = 4000, 1000
	rows := make([][]any, n)
	for i := 0; i < n; i++ {
		rows[i] = []any{int64(i / segSize), int64(i * 7 % 10_000), int64(i)}
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "pad", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}
	small := make([][]any, 500)
	for i := range small {
		small[i] = []any{int64(i), int64((i * 13) % 1000)}
	}
	if err := db.CreateTable("small", []Column{
		{Name: "k", Type: Int64},
		{Name: "w", Type: Int64},
	}, ClusterOn("k"), small); err != nil {
		t.Fatal(err)
	}
	return db
}

// chaosScenario is one arm of the fault-sweep plan matrix.
type chaosScenario struct {
	name  string
	build func(db *Database) *Query
	limit int // rows to read before closing (0 = drain everything)
}

func chaosScenarios() []chaosScenario {
	return []chaosScenario{
		// Full sort on an unclustered column: run formation, spilling and
		// merging all on the critical path.
		{name: "spill-sort", build: func(db *Database) *Query {
			return db.Scan("big").OrderBy("v")
		}},
		// Pipelined partial sort consumed Top-K style: the cursor closes
		// after a prefix, so later segments — and the fault points inside
		// them — are legitimately never reached.
		{name: "topk-early-close", build: func(db *Database) *Query {
			return db.Scan("big").OrderBy("g", "v")
		}, limit: 16},
		// Equality join on non-clustered columns (a hash join under the
		// default heuristic) with a sorted output on top.
		{name: "hash-join", build: func(db *Database) *Query {
			return db.Scan("big").Join(db.Scan("small"), Eq(Col("v"), Col("k"))).OrderBy("pad")
		}},
	}
}

// runChaosQuery executes plan and returns the rows read (rendered, limited
// to limit when nonzero), the query's tap-attributed I/O and its first
// error from any stage — Query, Next or Close.
func runChaosQuery(db *Database, plan *Plan, batch, limit int) ([]string, IOStats, error) {
	cur, err := db.Query(context.Background(), plan, WithExecBatchSize(batch))
	if err != nil {
		return nil, IOStats{}, err
	}
	var rows []string
	for cur.Next() {
		rows = append(rows, fmt.Sprint(cur.Row()))
		if limit > 0 && len(rows) >= limit {
			break
		}
	}
	if cerr := cur.Close(); cerr != nil && cur.Err() == nil {
		return rows, cur.Stats().IO, cerr
	}
	return rows, cur.Stats().IO, cur.Err()
}

// checkServingRestored asserts the invariants every chaos run must restore,
// success or failure: no leaked temp files or arenas, an empty sort-memory
// pool and an empty admission gate.
func checkServingRestored(t *testing.T, db *Database, at string) {
	t.Helper()
	storage.AssertNoLeaks(leakLabel{TB: t, at: at}, db.disk)
	s := db.ServingStats()
	if s.Governor.GrantedBlocks != 0 || s.Governor.LiveGrants != 0 {
		t.Errorf("%s: sort-memory pool not restored: %d blocks across %d grants still out",
			at, s.Governor.GrantedBlocks, s.Governor.LiveGrants)
	}
	if s.Admission.Live != 0 {
		t.Errorf("%s: admission gate not restored: %d slots still held", at, s.Admission.Live)
	}
}

// leakLabel prefixes AssertNoLeaks failures with the fault point that
// produced them, so a sweep failure names its point.
type leakLabel struct {
	storage.TB
	at string
}

func (l leakLabel) Errorf(format string, args ...any) {
	l.TB.Errorf("%s: "+format, append([]any{l.at}, args...)...)
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestChaosFaultSweep is the fault-sweep harness: for every scenario of the
// plan matrix at chunked batch sizes 1, 64 and 1024, it observes the
// workload's page transfers per fault class, enumerates fault points across
// them (every transfer under PYRO_CHAOS_FULL=1, a strided sample otherwise,
// plus a panic-mode point per class), injects each one and asserts the
// robustness contract: the fault surfaces as an error — never a panic or a
// hang — nothing leaks, pool and gate are restored, and an immediate re-run
// is identical to the no-fault baseline.
func TestChaosFaultSweep(t *testing.T) {
	perClass := 3
	if os.Getenv("PYRO_CHAOS_FULL") != "" {
		perClass = 0
	}
	db := chaosDB(t)
	for _, sc := range chaosScenarios() {
		plan, err := db.Optimize(sc.build(db))
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 64, 1024} {
			// An early-closed pipelined query abandons in-flight read-ahead
			// and spill work at whatever point Close catches it, so only a
			// full drain has scheduling-independent I/O totals to pin.
			exactIO := sc.limit == 0
			t.Run(fmt.Sprintf("%s/batch=%d", sc.name, batch), func(t *testing.T) {
				baseRows, baseIO, err := runChaosQuery(db, plan, batch, sc.limit)
				if err != nil {
					t.Fatalf("no-fault baseline failed: %v", err)
				}
				counts, err := faulttest.Observe(db.disk, func() error {
					rows, io, err := runChaosQuery(db, plan, batch, sc.limit)
					if err == nil && (!sameRows(rows, baseRows) || (exactIO && io != baseIO)) {
						return fmt.Errorf("observed run diverged from baseline: %d rows io %+v, want %d rows io %+v",
							len(rows), io, len(baseRows), baseIO)
					}
					return err
				})
				if err != nil {
					t.Fatal(err)
				}
				points := faulttest.Enumerate(counts, perClass)
				for _, c := range storage.FaultClasses {
					if counts[c] > 0 {
						points = append(points, faulttest.Point{Class: c, At: 1 + counts[c]/2, Panic: true})
					}
				}
				if len(points) == 0 {
					t.Fatal("workload hit no fault points at all")
				}
				for _, pt := range points {
					db.disk.SetFaultPlan(pt.Plan())
					rows, _, err := runChaosQuery(db, plan, batch, sc.limit)
					triggered := db.disk.FaultPlan().Triggered()
					db.disk.SetFaultPlan(nil)

					if triggered > 0 {
						if err == nil {
							// An early close may abandon the faulted work
							// (a run written ahead that was never needed);
							// success is then correct — but only with the
							// right rows and nothing leaked.
							if sc.limit == 0 {
								t.Errorf("%v#%d: fault fired but the query reported success", pt, pt.At)
							} else if !sameRows(rows, baseRows) {
								t.Errorf("%v#%d: swallowed fault changed the result", pt, pt.At)
							}
						} else if pt.Panic {
							if !strings.Contains(err.Error(), "panic") {
								t.Errorf("%v#%d: injected panic surfaced without panic context: %v", pt, pt.At, err)
							}
							// Containment preserves the chain: the recovered
							// panic value is the fault error itself.
							if !errors.Is(err, storage.ErrInjectedFault) {
								t.Errorf("%v#%d: contained panic lost the injected-fault cause: %v", pt, pt.At, err)
							}
						} else if !errors.Is(err, storage.ErrInjectedFault) {
							t.Errorf("%v#%d: error lost the injected-fault cause: %v", pt, pt.At, err)
						}
					} else {
						// The workload never reached this transfer (an early
						// close can skip it); the run must be indistinguishable
						// from the baseline.
						if err != nil {
							t.Errorf("%v#%d: unreached fault point still failed: %v", pt, pt.At, err)
						} else if !sameRows(rows, baseRows) {
							t.Errorf("%v#%d: unreached fault point changed the result", pt, pt.At)
						}
					}
					checkServingRestored(t, db, fmt.Sprintf("%v#%d", pt, pt.At))

					// The device is healthy again: the same query must
					// succeed with results and I/O identical to the baseline.
					rerunRows, rerunIO, err := runChaosQuery(db, plan, batch, sc.limit)
					if err != nil {
						t.Fatalf("%v#%d: re-run after fault failed: %v", pt, pt.At, err)
					}
					if !sameRows(rerunRows, baseRows) {
						t.Errorf("%v#%d: re-run rows diverged from baseline", pt, pt.At)
					}
					if exactIO && rerunIO != baseIO {
						t.Errorf("%v#%d: re-run I/O diverged: %+v, want %+v", pt, pt.At, rerunIO, baseIO)
					}
				}
			})
		}
	}
}

// TestChaosTempQuotaENOSPC drives the spilling sort into the temp-space
// quota: the write that would exceed it fails with ErrNoTempSpace, nothing
// leaks, and lifting the quota restores byte-identical execution.
func TestChaosTempQuotaENOSPC(t *testing.T) {
	db := chaosDB(t)
	plan, err := db.Optimize(db.Scan("big").OrderBy("v"))
	if err != nil {
		t.Fatal(err)
	}
	baseRows, baseIO, err := runChaosQuery(db, plan, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	db.disk.SetTempQuotaPages(2)
	_, _, err = runChaosQuery(db, plan, 64, 0)
	if err == nil {
		t.Fatal("spilling sort succeeded under a 2-page temp quota")
	}
	if !errors.Is(err, storage.ErrNoTempSpace) {
		t.Fatalf("quota violation lost its ErrNoTempSpace cause: %v", err)
	}
	checkServingRestored(t, db, "after quota failure")
	db.disk.SetTempQuotaPages(0)
	rows, io, err := runChaosQuery(db, plan, 64, 0)
	if err != nil {
		t.Fatalf("re-run after lifting the quota failed: %v", err)
	}
	if !sameRows(rows, baseRows) || io != baseIO {
		t.Fatalf("re-run after quota diverged from baseline (io %+v, want %+v)", io, baseIO)
	}
}

// TestQueryTimeoutAbortsSort pins Config.QueryTimeout: a sort too slow for
// the configured budget surfaces context.DeadlineExceeded and releases
// everything it held.
func TestQueryTimeoutAbortsSort(t *testing.T) {
	db := chaosDB(t)
	db.cfg.QueryTimeout = time.Microsecond
	plan, err := db.Optimize(db.Scan("big").OrderBy("v"))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = runChaosQuery(db, plan, 64, 0)
	if err == nil {
		t.Fatal("query outran a 1µs timeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout surfaced as %v, want context.DeadlineExceeded", err)
	}
	checkServingRestored(t, db, "after timeout")
	db.cfg.QueryTimeout = 0
	if _, _, err := runChaosQuery(db, plan, 64, 0); err != nil {
		t.Fatalf("re-run without the timeout failed: %v", err)
	}
}

// TestWithDeadlineInPast rejects the query before it takes any resource.
func TestWithDeadlineInPast(t *testing.T) {
	db := chaosDB(t)
	plan, err := db.Optimize(db.Scan("big").OrderBy("v"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = db.Query(context.Background(), plan, WithDeadline(time.Now().Add(-time.Second)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("past deadline surfaced as %v, want context.DeadlineExceeded", err)
	}
	checkServingRestored(t, db, "after past deadline")
}

// TestDeadlineWhileQueuedAtGate covers a query whose whole life is spent
// queued: with one execution slot held by a live cursor, a second query's
// deadline must fire inside the admission wait and give nothing back dirty.
func TestDeadlineWhileQueuedAtGate(t *testing.T) {
	db := Open(Config{SortMemoryBlocks: 8, MaxConcurrentQueries: 1})
	rows := make([][]any, 500)
	for i := range rows {
		rows[i] = []any{int64(i / 100), int64(i * 7 % 997)}
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	holder, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Next() {
		t.Fatalf("holder produced no rows: %v", holder.Err())
	}
	_, err = db.Query(context.Background(), plan, WithDeadline(time.Now().Add(20*time.Millisecond)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued query's deadline surfaced as %v, want context.DeadlineExceeded", err)
	}
	if err := holder.Close(); err != nil {
		t.Fatal(err)
	}
	checkServingRestored(t, db, "after gate-queued deadline")
	if _, _, err := runChaosQuery(db, plan, 64, 0); err != nil {
		t.Fatalf("query after the holder closed failed: %v", err)
	}
}

// TestDeadlineWhileBlockedInGovernor covers the other blocking point: the
// pool is fully granted to a live cursor and the minimum grant equals the
// pool, so a second query can only wait — its deadline must reach it there.
func TestDeadlineWhileBlockedInGovernor(t *testing.T) {
	db := Open(Config{
		SortMemoryBlocks:       8,
		GlobalSortMemoryBlocks: 8,
		MinSortGrantBlocks:     8,
	})
	rows := make([][]any, 2000)
	for i := range rows {
		rows[i] = []any{int64(i / 500), int64(i * 7 % 9973), int64(i)}
	}
	if err := db.CreateTable("big", []Column{
		{Name: "g", Type: Int64},
		{Name: "v", Type: Int64},
		{Name: "pad", Type: Int64},
	}, ClusterOn("g"), rows); err != nil {
		t.Fatal(err)
	}
	plan, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		t.Fatal(err)
	}
	holder, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Next() {
		t.Fatalf("holder produced no rows: %v", holder.Err())
	}
	if holder.Stats().GrantedBlocks == 0 {
		t.Fatal("holder took no grant; the test cannot block the pool")
	}
	_, err = db.Query(context.Background(), plan, WithDeadline(time.Now().Add(20*time.Millisecond)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("grant-blocked query's deadline surfaced as %v, want context.DeadlineExceeded", err)
	}
	if err := holder.Close(); err != nil {
		t.Fatal(err)
	}
	checkServingRestored(t, db, "after governor-blocked deadline")
	if _, _, err := runChaosQuery(db, plan, 64, 0); err != nil {
		t.Fatalf("query after the holder closed failed: %v", err)
	}
}
