# pyro — build/test entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs and CI runs are identical.

GO ?= go
# bench-ab sampling: raise locally (e.g. ABCOUNT=5 ABTIME=2s) for stable
# deltas; CI keeps the cheap smoke defaults.
ABCOUNT ?= 1
ABTIME ?= 1x

.PHONY: build test race bench bench-ab fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke test that the benchmark
# harness itself stays healthy, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# A/B ablations — key mode (encoded vs comparator), run formation
# (compare vs radix vs adaptive), time-to-first-row (pipelined cursor
# vs full sort vs materialising Execute) and Top-K exit path (planned
# Limit vs consumer early-Close) — with a benchstat-style delta table, so
# a regression in any arm is visible at a glance. The bench run lands in
# a temp file first: piping straight into the formatter would let a
# failing benchmark exit 0 through the pipe.
bench-ab:
	@out=$$(mktemp); \
	if ! $(GO) test -run '^$$' -bench 'RunFormation|SortKeys|TimeToFirstRow|TopKPlanned' -benchtime $(ABTIME) -count $(ABCOUNT) . > $$out 2>&1; then \
		cat $$out; rm -f $$out; exit 1; \
	fi; \
	$(GO) run ./cmd/pyro-abdiff < $$out; rc=$$?; rm -f $$out; exit $$rc

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test race bench bench-ab
