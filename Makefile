# pyro — build/test entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs and CI runs are identical.

GO ?= go

.PHONY: build test race bench fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke test that the benchmark
# harness itself stays healthy, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: build vet fmt test race bench
