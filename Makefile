# pyro — build/test entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs and CI runs are identical.

GO ?= go
# bench-ab sampling: raise locally (e.g. ABCOUNT=5 ABTIME=2s) for stable
# deltas; CI keeps the cheap smoke defaults.
ABCOUNT ?= 1
ABTIME ?= 1x
# The A/B benchmark set: every arm that reports the deterministic work
# counters (comparisons, radix passes, page I/O) bench-gate diffs.
ABBENCH = 'RunFormation|SortKeys|TimeToFirstRow|TopKPlanned|Throughput|EntryLayout'
# bench-gate tolerance in percent. The gated counters are deterministic,
# so the slack only absorbs float formatting, not machine variance.
TOLERANCE ?= 2

.PHONY: build test race race-serve chaos bench bench-ab bench-gate bench-baseline fmt vet lint-pyro ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke test that the benchmark
# harness itself stays healthy, not a measurement.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# A/B ablations — key mode (encoded vs comparator), run formation
# (compare vs radix vs adaptive), time-to-first-row (pipelined cursor
# vs full sort vs materialising Execute) and Top-K exit path (planned
# Limit vs consumer early-Close) — with a benchstat-style delta table, so
# a regression in any arm is visible at a glance. The bench run lands in
# a temp file first: piping straight into the formatter would let a
# failing benchmark exit 0 through the pipe.
bench-ab:
	@out=$$(mktemp); \
	if ! $(GO) test -run '^$$' -bench $(ABBENCH) -benchtime $(ABTIME) -count $(ABCOUNT) . > $$out 2>&1; then \
		cat $$out; rm -f $$out; exit 1; \
	fi; \
	$(GO) run ./cmd/pyro-abdiff < $$out; rc=$$?; rm -f $$out; exit $$rc

# Regression gate on the deterministic work counters: run the A/B set once
# and diff every comparisons/radix-passes/io-pages/run-pages counter
# against the checked-in baseline. The counters replicate bit-for-bit on
# any machine (golden tests pin their parallelism invariance), so the gate
# fails on real plan or engine regressions while staying immune to CI
# wall-clock noise.
bench-gate:
	@out=$$(mktemp); \
	if ! $(GO) test -run '^$$' -bench $(ABBENCH) -benchtime 1x . > $$out 2>&1; then \
		cat $$out; rm -f $$out; exit 1; \
	fi; \
	$(GO) run ./cmd/pyro-abdiff -baseline testdata/bench-baseline.txt -tolerance $(TOLERANCE) < $$out; \
	rc=$$?; rm -f $$out; exit $$rc

# Refresh the bench-gate baseline after an intentional counter change
# (new plan shape, algorithm change); commit the updated file with the
# change that moved the counters.
bench-baseline:
	@mkdir -p testdata
	$(GO) test -run '^$$' -bench $(ABBENCH) -benchtime 1x . > testdata/bench-baseline.txt
	@echo "wrote testdata/bench-baseline.txt"

# The serving layer's concurrency under the race detector at a forced
# GOMAXPROCS: governor fairness/starvation, admission, plan cache, the
# concurrent-cursor tests and the chunked executor's pooled-buffer paths.
race-serve:
	GOMAXPROCS=8 $(GO) test -race -count=1 -run 'Govern|Gate|Admission|Concurrent|Starv|PlanCache|Serving|Grant|Override|Chunk' ./...

# Fault-sweep harness at full resolution: every page transfer of every
# plan-matrix arm is failed (and panicked) in turn, under the race
# detector with GOMAXPROCS forced, plus the temp-quota ENOSPC and
# deadline arms. The default `make test` runs the same sweep strided.
chaos:
	PYRO_CHAOS_FULL=1 GOMAXPROCS=8 $(GO) test -race -count=1 -run 'Chaos|QueryTimeout|WithDeadline|Deadline' .

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# pyro's own static-analysis suite (internal/lint, cmd/pyro-lint): arena
# release discipline, abort polling, %w error wrapping, I/O-ledger routing
# and counter determinism, proved over the whole module with zero
# pyro:nolint suppressions allowed. Stdlib-only — needs nothing beyond
# the Go toolchain.
lint-pyro:
	$(GO) run ./cmd/pyro-lint -max-suppressions 0 ./...

ci: build vet fmt lint-pyro test race race-serve chaos bench bench-ab bench-gate
