package pyro

// One benchmark per table/figure of the paper's evaluation (§6), plus
// micro-benchmarks for the core mechanisms (SRS vs MRS, PathOrder, the
// optimizer itself). The harness prints the paper's rows/series; under
// `go test -bench` each figure is regenerated b.N times at a reduced scale
// so the suite stays minutes-long. Run cmd/pyro-bench for full-scale
// reproduction output.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/exec"
	"pyro/internal/harness"
	"pyro/internal/iter"
	"pyro/internal/ordersel"
	"pyro/internal/sortord"
	"pyro/internal/storage"
	"pyro/internal/types"
	"pyro/internal/workload"
	"pyro/internal/xsort"
)

var benchScale = harness.Scale{Factor: 0.25}

func benchExperiment(b *testing.B, name string) {
	fn, ok := harness.Experiments[name]
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Fig2ExampleOne regenerates §3 Example 1 (Figures 1 and 2):
// naive vs order-aware merge-join plan for the catalog-consolidation query.
func BenchmarkFig1Fig2ExampleOne(b *testing.B) { benchExperiment(b, "example1") }

// BenchmarkFigure7ExpA1 regenerates Figure 7: ORDER BY with a covering
// index supplying a partial order — default sort vs MRS.
func BenchmarkFigure7ExpA1(b *testing.B) { benchExperiment(b, "a1") }

// BenchmarkFigure8ExpA2 regenerates Figure 8: tuples-produced-vs-time for
// SRS and MRS.
func BenchmarkFigure8ExpA2(b *testing.B) { benchExperiment(b, "a2") }

// BenchmarkFigure9ExpA3 regenerates Figure 9: the effect of partial sort
// segment size, including the spill crossover.
func BenchmarkFigure9ExpA3(b *testing.B) { benchExperiment(b, "a3") }

// BenchmarkExpA4Query2 regenerates Experiment A4: Query 2 with full vs
// partial sorts (the paper's 63s -> 25s).
func BenchmarkExpA4Query2(b *testing.B) { benchExperiment(b, "a4") }

// BenchmarkFig10Fig11Query3Plans and BenchmarkFig12Fig13Execution
// regenerate Experiment B1: the Query 3 plan shapes and their execution.
func BenchmarkFig10Fig11Query3Plans(b *testing.B) { benchExperiment(b, "b1") }

// BenchmarkFig12Fig13Execution is the execution half of Experiment B1 (the
// same runner measures both; kept as a separate bench to match the paper's
// figure numbering).
func BenchmarkFig12Fig13Execution(b *testing.B) { benchExperiment(b, "b1") }

// BenchmarkFig14Query4Plans regenerates Experiment B2 (Figure 14):
// coordinated vs independent sort orders across two full outer joins.
func BenchmarkFig14Query4Plans(b *testing.B) { benchExperiment(b, "b2") }

// BenchmarkFigure15PlanCosts regenerates Experiment B3 (Figure 15):
// normalized estimated plan costs for Q3-Q6 under all five heuristics.
func BenchmarkFigure15PlanCosts(b *testing.B) { benchExperiment(b, "b3") }

// BenchmarkFigure16Scalability regenerates Figure 16: optimization time vs
// number of join attributes.
func BenchmarkFigure16Scalability(b *testing.B) { benchExperiment(b, "scalability") }

// BenchmarkPhase2Refinement31Nodes regenerates the §6.3 plan-refinement
// timing (31-node trees, 10 attributes per node, paper: < 6 ms).
func BenchmarkPhase2Refinement31Nodes(b *testing.B) { benchExperiment(b, "refine") }

// reportCursorCounters runs the plan once outside the timed loop — pinned
// to the serial sort algorithm so the mid-flight counters of an
// early-closed cursor are exact — and reports the arm's deterministic work
// counters: key comparisons, radix passes, and total/run page I/O. These
// are the numbers `make bench-gate` diffs against testdata/bench-baseline.txt:
// wall-clock is noise on shared CI runners, but the counters replicate
// bit-for-bit on any machine (the golden tests pin their parallelism
// invariance), so a plan-shape or engine regression moves them
// reproducibly and fails the gate.
func reportCursorCounters(b *testing.B, db *Database, plan *Plan, pull int, opts ...ExecOption) {
	b.Helper()
	b.StopTimer()
	defer b.StartTimer()
	opts = append(opts, WithSortParallelism(1), WithSortSpillParallelism(1))
	cur, err := db.Query(context.Background(), plan, opts...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; pull < 0 || i < pull; i++ {
		if !cur.Next() {
			break
		}
	}
	if err := cur.Close(); err != nil {
		b.Fatal(err)
	}
	if err := cur.Err(); err != nil {
		b.Fatal(err)
	}
	st := cur.Stats()
	var comps, radix, skips, pages int64
	for _, s := range st.Sorts {
		comps += s.Comparisons
		radix += s.RadixPasses
		skips += s.MergeBucketSkips
		pages += s.FlatRunPages
	}
	b.ReportMetric(float64(comps), "comparisons/op")
	b.ReportMetric(float64(radix), "radix-passes/op")
	b.ReportMetric(float64(skips), "merge-bucket-skips/op")
	b.ReportMetric(float64(pages), "flat-run-pages/op")
	b.ReportMetric(float64(st.IO.PageReads+st.IO.PageWrites), "io-pages/op")
	b.ReportMetric(float64(st.IO.RunPageReads+st.IO.RunPageWrites), "run-pages/op")
}

// reportSortCounters is the xsort-level twin of reportCursorCounters: the
// benchmark loop hands in the last iteration's enforcer stats and device
// ledger (every iteration does identical work, so the last one is as good
// as any).
func reportSortCounters(b *testing.B, st xsort.SortStats, io storage.IOStats) {
	b.Helper()
	b.ReportMetric(float64(st.Comparisons), "comparisons/op")
	b.ReportMetric(float64(st.RadixPasses), "radix-passes/op")
	b.ReportMetric(float64(st.MergeBucketSkips), "merge-bucket-skips/op")
	b.ReportMetric(float64(st.FlatRunPages), "flat-run-pages/op")
	b.ReportMetric(float64(io.PageReads+io.PageWrites), "io-pages/op")
	b.ReportMetric(float64(io.RunPageReads+io.RunPageWrites), "run-pages/op")
}

// BenchmarkTimeToFirstRow measures first-Next latency at the public
// boundary: each iteration opens a cursor, pulls one row and closes. The
// baseline arm streams a pipelined partial-sort plan (first segment only);
// the full-sort arm must consume the entire input inside Query before the
// first row exists; the materialise arm is the deprecated Execute on the
// same partial plan, paying full-result materialisation the cursor
// avoids. `make bench-ab` feeds these arms through cmd/pyro-abdiff, so
// the first-row deltas land in the same CI table as the key-mode and
// run-formation ablations.
func BenchmarkTimeToFirstRow(b *testing.B) {
	db := segmentedDB(b, 50_000, 500) // the workload TestCursorEarlyCloseAbandonsWork pins
	q := db.Scan("big").OrderBy("g", "v")
	partial, err := db.Optimize(q)
	if err != nil {
		b.Fatal(err)
	}
	full, err := db.Optimize(q, WithoutPartialSort())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	firstRow := func(b *testing.B, plan *Plan) {
		cur, err := db.Query(ctx, plan)
		if err != nil {
			b.Fatal(err)
		}
		if !cur.Next() {
			b.Fatal(cur.Err())
		}
		if err := cur.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("partial-cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			firstRow(b, partial)
		}
		reportCursorCounters(b, db, partial, 1)
	})
	b.Run("full-cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			firstRow(b, full)
		}
		reportCursorCounters(b, db, full, 1)
	})
	b.Run("execute-materialise", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Execute(partial)
			if err != nil {
				b.Fatal(err)
			}
			_ = rows.Data[0]
		}
	})
}

// BenchmarkTopKPlanned A/Bs the two ways a consumer gets Top-K early exit:
// a planned Limit(k) — the optimizer's row budget picks the pipelined plan
// and the exec.Limit operator closes the sort at k — drained to completion,
// versus the unlimited plan with a consumer that pulls k rows and closes
// the cursor by hand (PR 4's only early-exit path). The two arms shed the
// same work (TestPushedDownLimitMatchesEarlyClose pins that), so their
// delta in `make bench-ab` is the overhead of each exit path, and a
// regression in either early-exit mechanism is visible in CI.
func BenchmarkTopKPlanned(b *testing.B) {
	db := segmentedDB(b, 50_000, 500)
	const k = 10
	planned, err := db.Optimize(db.Scan("big").OrderBy("g", "v").Limit(k))
	if err != nil {
		b.Fatal(err)
	}
	unlimited, err := db.Optimize(db.Scan("big").OrderBy("g", "v"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("planned-limit", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur, err := db.Query(ctx, planned)
			if err != nil {
				b.Fatal(err)
			}
			rows := 0
			for cur.Next() {
				rows++
			}
			if err := cur.Err(); err != nil {
				b.Fatal(err)
			}
			if err := cur.Close(); err != nil {
				b.Fatal(err)
			}
			if rows != k {
				b.Fatalf("rows = %d", rows)
			}
		}
		reportCursorCounters(b, db, planned, -1)
	})
	b.Run("early-close", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cur, err := db.Query(ctx, unlimited)
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < k; j++ {
				if !cur.Next() {
					b.Fatal(cur.Err())
				}
			}
			if err := cur.Close(); err != nil {
				b.Fatal(err)
			}
		}
		reportCursorCounters(b, db, unlimited, k)
	})
}

// BenchmarkConcurrentTopK drives the serving layer at its design point:
// many concurrent Top-K cursors sharing one governed database. Each
// iteration fires `queries` Top-K queries (ORDER BY + LIMIT over the
// servingDB tables) from a bounded worker pool through the admission gate
// and the sort-memory governor, records every query's end-to-end latency,
// and reports the tail as p50/p95/p99 metrics. The governor's
// PeakGrantedBlocks is asserted against the global pool, so the benchmark
// doubles as a check that total sort memory stayed bounded however many
// cursors were live.
func BenchmarkConcurrentTopK(b *testing.B) {
	db := servingDB(b, Config{
		SortMemoryBlocks:       16,
		GlobalSortMemoryBlocks: 64,
		MaxConcurrentQueries:   32,
	})
	plan, err := db.Optimize(db.Scan("small").OrderBy("v").Limit(5))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const queries = 1200
	workers := 64
	lat := make([]time.Duration, queries)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := next.Add(1) - 1
					if j >= queries {
						return
					}
					start := time.Now()
					cur, err := db.Query(ctx, plan)
					if err != nil {
						b.Error(err)
						return
					}
					for cur.Next() {
					}
					if err := cur.Err(); err != nil {
						b.Error(err)
						return
					}
					if err := cur.Close(); err != nil {
						b.Error(err)
						return
					}
					lat[j] = time.Since(start)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx]) / float64(time.Millisecond)
	}
	b.ReportMetric(pct(0.50), "p50-ms")
	b.ReportMetric(pct(0.95), "p95-ms")
	b.ReportMetric(pct(0.99), "p99-ms")
	s := db.ServingStats()
	b.ReportMetric(float64(s.Governor.PeakGrantedBlocks), "peak-blocks")
	if s.Governor.PeakGrantedBlocks > 64 {
		b.Fatalf("governor peak %d blocks exceeds the 64-block global pool", s.Governor.PeakGrantedBlocks)
	}
	if s.Admission.PeakLive > 32 {
		b.Fatalf("admission peak %d exceeds the 32-query gate", s.Admission.PeakLive)
	}
}

// chunkArms runs a benchmark once per executor mode: the legacy
// row-at-a-time path (WithExecBatchSize(1)) against the default chunked
// path. Both arms drain identical plans with identical counters (the
// differential tests pin that), so the wall-clock and allocs/op deltas in
// `make bench-ab` are pure per-row overhead removed by batching.
func chunkArms(b *testing.B, run func(b *testing.B, opts ...ExecOption)) {
	for _, arm := range []struct {
		name string
		opts []ExecOption
	}{{"row", []ExecOption{WithExecBatchSize(1)}}, {"chunk", nil}} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			run(b, arm.opts...)
		})
	}
}

// BenchmarkScanFilterThroughput measures the vectorized executor on its
// target pipeline: a full drain of scan→filter, where the chunked path
// moves one page's tuples per operator call — the scan decodes into pooled
// column vectors, the filter marks a selection vector in a tight loop, and
// the cursor serves rows out of a reused buffer. rows/op is the drained row
// count (throughput = rows/op ÷ ns/op); the deterministic work counters
// feed the bench gate and must be identical across arms.
func BenchmarkScanFilterThroughput(b *testing.B) {
	db := segmentedDB(b, 50_000, 500)
	plan, err := db.Optimize(db.Scan("big").Filter(Gt(Col("v"), Int(100))))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	chunkArms(b, func(b *testing.B, opts ...ExecOption) {
		var rows int64
		for i := 0; i < b.N; i++ {
			cur, err := db.Query(ctx, plan, opts...)
			if err != nil {
				b.Fatal(err)
			}
			rows = 0
			for cur.Next() {
				rows++
			}
			if err := cur.Err(); err != nil {
				b.Fatal(err)
			}
			if err := cur.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(rows), "rows/op")
		reportCursorCounters(b, db, plan, -1, opts...)
	})
}

// BenchmarkScanSortLimitThroughput measures batching under a blocking
// enforcer: scan→full-sort→limit, where the chunked arm batches the sort's
// input collection (chunk reads off each page, one batched key encode per
// chunk) while the tuple-level sort algorithm and its counters stay
// untouched.
func BenchmarkScanSortLimitThroughput(b *testing.B) {
	db := segmentedDB(b, 50_000, 500)
	plan, err := db.Optimize(db.Scan("big").OrderBy("v", "pad").Limit(1_000))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	chunkArms(b, func(b *testing.B, opts ...ExecOption) {
		var rows int64
		for i := 0; i < b.N; i++ {
			cur, err := db.Query(ctx, plan, opts...)
			if err != nil {
				b.Fatal(err)
			}
			rows = 0
			for cur.Next() {
				rows++
			}
			if err := cur.Err(); err != nil {
				b.Fatal(err)
			}
			if err := cur.Close(); err != nil {
				b.Fatal(err)
			}
		}
		if rows != 1_000 {
			b.Fatalf("rows = %d, want 1000", rows)
		}
		b.ReportMetric(float64(rows), "rows/op")
		reportCursorCounters(b, db, plan, -1, opts...)
	})
}

// --- Micro-benchmarks for the core mechanisms -----------------------------

func sortBenchRows(n int, segments int64) []types.Tuple {
	rng := rand.New(rand.NewSource(1))
	per := int64(n) / segments
	if per < 1 {
		per = 1
	}
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.NewTuple(
			types.NewInt(int64(i)/per),
			types.NewInt(rng.Int63n(1_000_000)),
			types.NewString("payload-payload"),
		)
	}
	return rows
}

var sortBenchSchema = types.NewSchema(
	types.Column{Name: "c1", Kind: types.KindInt},
	types.Column{Name: "c2", Kind: types.KindInt},
	types.Column{Name: "c3", Kind: types.KindString, Width: 16},
)

// BenchmarkSRSSort measures standard replacement selection on partially
// sorted input (the baseline of §3).
func BenchmarkSRSSort(b *testing.B) {
	rows := sortBenchRows(50_000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := storage.NewDisk(0)
		s, err := xsort.NewSRS(iter.FromSlice(rows), sortBenchSchema,
			sortord.New("c1", "c2"), xsort.Config{Disk: d, MemoryBlocks: 64})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := iter.Drain(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMRSSort measures the paper's modified replacement selection on
// the same input; the speedup over BenchmarkSRSSort is the §3.1 claim.
func BenchmarkMRSSort(b *testing.B) {
	rows := sortBenchRows(50_000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := storage.NewDisk(0)
		m, err := xsort.NewMRS(iter.FromSlice(rows), sortBenchSchema,
			sortord.New("c1", "c2"), sortord.New("c1"), xsort.Config{Disk: d, MemoryBlocks: 64})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := iter.Drain(m); err != nil {
			b.Fatal(err)
		}
	}
}

// keyBenchRows returns rows whose sort key is the realistic hard case for
// the comparator path: a composite (int, string, int) key with shared
// string prefixes, so every field comparison walks type switches and
// common prefixes. c1 carries the MRS segment order.
func keyBenchRows(n int, segments int64) []types.Tuple {
	rng := rand.New(rand.NewSource(2))
	per := int64(n) / segments
	if per < 1 {
		per = 1
	}
	rows := make([]types.Tuple, n)
	for i := range rows {
		rows[i] = types.NewTuple(
			types.NewInt(int64(i)/per),
			types.NewInt(rng.Int63n(1_000)),
			types.NewString(fmt.Sprintf("customer-%03d-%04d", rng.Intn(100), rng.Intn(10_000))),
		)
	}
	return rows
}

// BenchmarkSRSSortKeys isolates the normalized-key engine on the full-sort
// path: identical input and memory budget, encoded byte-string keys vs the
// field-by-field comparator, on a composite (string, int) key. Run
// formation is pinned to the comparison sort so the delta stays a pure
// key-representation measurement (adaptive would radix-sort the encoded
// arm only; the RunFormation benchmarks measure that separately).
func BenchmarkSRSSortKeys(b *testing.B) {
	rows := keyBenchRows(50_000, 100)
	for _, mode := range []struct {
		name string
		keys xsort.KeyMode
	}{{"encoded", xsort.KeyEncoded}, {"comparator", xsort.KeyComparator}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var st xsort.SortStats
			var io storage.IOStats
			for i := 0; i < b.N; i++ {
				d := storage.NewDisk(0)
				s, err := xsort.NewSRS(iter.FromSlice(rows), sortBenchSchema,
					sortord.New("c3", "c2", "c1"),
					xsort.Config{Disk: d, MemoryBlocks: 256, Keys: mode.keys,
						RunFormation: xsort.RunFormCompare})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := iter.Drain(s); err != nil {
					b.Fatal(err)
				}
				st, io = *s.Stats(), d.Stats()
			}
			reportSortCounters(b, st, io)
		})
	}
}

// BenchmarkMRSSortKeys isolates the normalized-key engine on the
// partial-sort path. Parallelism is pinned to 1 so the delta is purely
// encoded vs comparator key comparisons.
func BenchmarkMRSSortKeys(b *testing.B) {
	rows := keyBenchRows(50_000, 100)
	for _, mode := range []struct {
		name string
		keys xsort.KeyMode
	}{{"encoded", xsort.KeyEncoded}, {"comparator", xsort.KeyComparator}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var st xsort.SortStats
			var io storage.IOStats
			for i := 0; i < b.N; i++ {
				d := storage.NewDisk(0)
				m, err := xsort.NewMRS(iter.FromSlice(rows), sortBenchSchema,
					sortord.New("c1", "c3", "c2"), sortord.New("c1"),
					xsort.Config{Disk: d, MemoryBlocks: 256, Keys: mode.keys, Parallelism: 1,
						RunFormation: xsort.RunFormCompare})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := iter.Drain(m); err != nil {
					b.Fatal(err)
				}
				st, io = *m.Stats(), d.Stats()
			}
			reportSortCounters(b, st, io)
		})
	}
}

// runFormationArms runs one sort benchmark once per run-formation mode, so
// `-bench RunFormation` (and make bench-ab) reports compare-vs-radix deltas
// on identical inputs. Output order, run structure and I/O are identical
// across arms (asserted by TestGoldenRadixAgrees / TestRunFormationModesAgree);
// the delta is purely how the sorted order is produced.
func runFormationArms(b *testing.B, run func(b *testing.B, rf xsort.RunFormation)) {
	for _, arm := range []struct {
		name string
		rf   xsort.RunFormation
	}{{"compare", xsort.RunFormCompare}, {"radix", xsort.RunFormRadix}, {"adaptive", xsort.RunFormAdaptive}} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			run(b, arm.rf)
		})
	}
}

// BenchmarkMRSPartialSortRunFormation is the MRS hot path the radix engine
// targets: in-memory partial-sort segments on a composite (string, int)
// suffix key. Parallelism is pinned to 1 so the delta is the segment sort
// alone.
func BenchmarkMRSPartialSortRunFormation(b *testing.B) {
	rows := keyBenchRows(50_000, 100)
	runFormationArms(b, func(b *testing.B, rf xsort.RunFormation) {
		var st xsort.SortStats
		var io storage.IOStats
		for i := 0; i < b.N; i++ {
			d := storage.NewDisk(0)
			m, err := xsort.NewMRS(iter.FromSlice(rows), sortBenchSchema,
				sortord.New("c1", "c3", "c2"), sortord.New("c1"),
				xsort.Config{Disk: d, MemoryBlocks: 2048, Parallelism: 1, RunFormation: rf})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := iter.Drain(m); err != nil {
				b.Fatal(err)
			}
			st, io = *m.Stats(), d.Stats()
		}
		reportSortCounters(b, st, io)
	})
}

// BenchmarkMRSSpilledSortRunFormation measures radix run formation where
// runs actually hit disk: oversized segments whose memory batches are
// sorted and spilled, then merged. Spilling is serial so the arms differ
// only in batch-sort algorithm, not scheduling.
func BenchmarkMRSSpilledSortRunFormation(b *testing.B) {
	rows := keyBenchRows(50_000, 4)
	runFormationArms(b, func(b *testing.B, rf xsort.RunFormation) {
		var st xsort.SortStats
		var io storage.IOStats
		for i := 0; i < b.N; i++ {
			d := storage.NewDisk(0)
			m, err := xsort.NewMRS(iter.FromSlice(rows), sortBenchSchema,
				sortord.New("c1", "c3", "c2"), sortord.New("c1"),
				xsort.Config{Disk: d, MemoryBlocks: 64, Parallelism: 1, SpillParallelism: 1, RunFormation: rf})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := iter.Drain(m); err != nil {
				b.Fatal(err)
			}
			if rf == xsort.RunFormRadix && m.Stats().RadixPasses == 0 {
				b.Fatal("radix arm did no radix work")
			}
			st, io = *m.Stats(), d.Stats()
		}
		reportSortCounters(b, st, io)
	})
}

// BenchmarkSRSSortRunFormation measures the SRS in-memory fast path: the
// whole input fits, so the compare arm builds and drains a replacement-
// selection heap while the radix arm byte-bucket sorts the fill directly.
func BenchmarkSRSSortRunFormation(b *testing.B) {
	rows := keyBenchRows(50_000, 100)
	runFormationArms(b, func(b *testing.B, rf xsort.RunFormation) {
		var st xsort.SortStats
		var io storage.IOStats
		for i := 0; i < b.N; i++ {
			d := storage.NewDisk(0)
			s, err := xsort.NewSRS(iter.FromSlice(rows), sortBenchSchema,
				sortord.New("c3", "c2", "c1"),
				xsort.Config{Disk: d, MemoryBlocks: 4096, RunFormation: rf})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := iter.Drain(s); err != nil {
				b.Fatal(err)
			}
			if s.Stats().RunsGenerated != 0 {
				b.Fatal("workload must stay in memory")
			}
			st, io = *s.Stats(), d.Stats()
		}
		reportSortCounters(b, st, io)
	})
}

// BenchmarkSRSSpilledSortRunFormation: spilled SRS, where radix only seeds
// the initial heap fill (replacement selection itself stays comparison-
// based) — the honest small-delta companion to the in-memory case.
func BenchmarkSRSSpilledSortRunFormation(b *testing.B) {
	rows := keyBenchRows(50_000, 100)
	runFormationArms(b, func(b *testing.B, rf xsort.RunFormation) {
		var st xsort.SortStats
		var io storage.IOStats
		for i := 0; i < b.N; i++ {
			d := storage.NewDisk(0)
			s, err := xsort.NewSRS(iter.FromSlice(rows), sortBenchSchema,
				sortord.New("c3", "c2", "c1"),
				xsort.Config{Disk: d, MemoryBlocks: 256, RunFormation: rf})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := iter.Drain(s); err != nil {
				b.Fatal(err)
			}
			if s.Stats().RunsGenerated == 0 {
				b.Fatal("workload must spill")
			}
			st, io = *s.Stats(), d.Stats()
		}
		reportSortCounters(b, st, io)
	})
}

// BenchmarkMRSSortParallelism measures the bounded worker pool on MRS's
// independent in-memory segment sorts (encoded keys in both arms; p0 is the
// GOMAXPROCS default).
func BenchmarkMRSSortParallelism(b *testing.B) {
	rows := sortBenchRows(200_000, 50) // 4000-tuple segments: enough work per segment to amortize dispatch
	for _, par := range []struct {
		name string
		p    int
	}{{"p1", 1}, {"p2", 2}, {"p4", 4}, {"pmax", 0}} {
		b.Run(par.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := storage.NewDisk(0)
				m, err := xsort.NewMRS(iter.FromSlice(rows), sortBenchSchema,
					sortord.New("c1", "c2"), sortord.New("c1"),
					xsort.Config{Disk: d, MemoryBlocks: 2048, Parallelism: par.p})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := iter.Drain(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSRSHeapReplacementSelection isolates the replacement-selection
// heap: a spill-heavy SRS whose Open-phase cost is dominated by heap
// push/pop traffic (every input tuple passes through the heap once).
// The heap permutes int32 slots over stable entry storage rather than
// swapping 56-byte entries; this benchmark guards that win.
func BenchmarkSRSHeapReplacementSelection(b *testing.B) {
	rows := sortBenchRows(100_000, 1) // single segment: pure heap churn
	rng := rand.New(rand.NewSource(3))
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := storage.NewDisk(0)
		s, err := xsort.NewSRS(iter.FromSlice(rows), sortBenchSchema,
			sortord.New("c2", "c1"), xsort.Config{Disk: d, MemoryBlocks: 256})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := iter.Drain(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpillParallelism measures the concurrent spill subsystem end to
// end on an oversized-segment MRS workload: run formation on worker flush
// jobs into per-segment arenas, overlapped run reduction, final merge.
// s1 is the paper's serial spill path; comparison and I/O counts are
// identical in every arm (asserted by TestGoldenParallelSpillAgrees), so
// the delta is pure scheduling.
func BenchmarkSpillParallelism(b *testing.B) {
	rows := sortBenchRows(200_000, 4) // 4 oversized segments at 64 blocks
	for _, par := range []struct {
		name string
		p    int
	}{{"s1", 1}, {"s2", 2}, {"s4", 4}, {"smax", 0}} {
		b.Run(par.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d := storage.NewDisk(0)
				m, err := xsort.NewMRS(iter.FromSlice(rows), sortBenchSchema,
					sortord.New("c1", "c2"), sortord.New("c1"),
					xsort.Config{Disk: d, MemoryBlocks: 64, SpillParallelism: par.p})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := iter.Drain(m); err != nil {
					b.Fatal(err)
				}
				if par.p == 1 && m.Stats().SpillRunsParallel != 0 {
					b.Fatal("serial arm ran parallel spills")
				}
				if par.p > 1 && m.Stats().SpillRunsSerial != 0 {
					b.Fatal("parallel arm ran serial spills")
				}
			}
		})
	}
}

// BenchmarkMRSSortPerSegmentAblation replaces the shared replacement-
// selection machinery with MRS's per-segment sort on ε known order
// (single-segment degenerate case), isolating the cost of segmentation.
func BenchmarkMRSSortPerSegmentAblation(b *testing.B) {
	rows := sortBenchRows(50_000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := storage.NewDisk(0)
		m, err := xsort.NewMRS(iter.FromSlice(rows), sortBenchSchema,
			sortord.New("c1", "c2"), sortord.Empty, xsort.Config{Disk: d, MemoryBlocks: 64})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := iter.Drain(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathOrderDP measures the Figure 4 dynamic program on a 31-node
// path with 10 attributes per node.
func BenchmarkPathOrderDP(b *testing.B) {
	sets := make([]sortord.AttrSet, 31)
	for i := range sets {
		s := sortord.NewAttrSet()
		for k := 0; k < 10; k++ {
			s.Add(fmt.Sprintf("x%d", (i*3+k)%20))
		}
		sets[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ordersel.PathOrder(sets)
	}
}

// BenchmarkTwoApprox measures the §4.2 2-approximation on a 31-node
// complete binary tree.
func BenchmarkTwoApprox(b *testing.B) {
	sets := make([]sortord.AttrSet, 31)
	var edges [][2]int
	for i := range sets {
		s := sortord.NewAttrSet()
		for k := 0; k < 10; k++ {
			s.Add(fmt.Sprintf("x%d", (i*3+k)%20))
		}
		sets[i] = s
		if i > 0 {
			edges = append(edges, [2]int{(i - 1) / 2, i})
		}
	}
	prob := ordersel.Problem{Sets: sets, Edges: edges}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ordersel.TwoApprox(prob)
	}
}

// BenchmarkOptimizeQ3 measures one full optimization of Query 3 under
// PYRO-O (plan generation + phase 2).
func BenchmarkOptimizeQ3(b *testing.B) {
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	cfg := workload.DefaultTPCH()
	cfg.Suppliers, cfg.PartsPerSupplier = 50, 40
	if err := workload.BuildTPCH(cat, cfg); err != nil {
		b.Fatal(err)
	}
	q3, err := workload.Query3(cat)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Optimize(q3, core.DefaultOptions(core.HeuristicFavorable)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeJoinExec measures raw merge-join throughput.
func BenchmarkMergeJoinExec(b *testing.B) {
	var left, right []types.Tuple
	for i := 0; i < 20_000; i++ {
		left = append(left, types.NewTuple(types.NewInt(int64(i/2)), types.NewInt(int64(i))))
	}
	for i := 0; i < 10_000; i++ {
		right = append(right, types.NewTuple(types.NewInt(int64(i)), types.NewInt(int64(i))))
	}
	ls := types.NewSchema(types.Column{Name: "a", Kind: types.KindInt}, types.Column{Name: "b", Kind: types.KindInt})
	rs := types.NewSchema(types.Column{Name: "c", Kind: types.KindInt}, types.Column{Name: "d", Kind: types.KindInt})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lop, _ := exec.NewValues(ls, left)
		rop, _ := exec.NewValues(rs, right)
		mj, err := exec.NewMergeJoin(lop, rop, sortord.New("a"), sortord.New("c"), exec.InnerJoin)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := iter.Drain(mj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpilledMergeEntryLayout is the fixed-width-entry A/B: the same
// spilled sort under the three spill layouts. flat is the shipping
// configuration (fixed-width entry runs, radix-aware cascade merge);
// flat-heap isolates the cascade by merging identical entry runs with a
// plain comparison heap; tuple is the legacy payload-only format. Output
// order is byte-identical across arms (the golden tests pin it); the gated
// counters show the trade — comparisons/op drops on flat versus both
// ablations, flat-run-pages/op and the page counters carry the entry-file
// I/O the flat layouts pay for it.
func BenchmarkSpilledMergeEntryLayout(b *testing.B) {
	srsRows := keyBenchRows(50_000, 100)
	mrsRows := keyBenchRows(50_000, 4)
	layouts := []struct {
		name string
		lay  xsort.EntryLayout
	}{{"flat", xsort.LayoutFlat}, {"flat-heap", xsort.LayoutFlatHeap}, {"tuple", xsort.LayoutTuple}}

	b.Run("srs", func(b *testing.B) {
		for _, arm := range layouts {
			b.Run(arm.name, func(b *testing.B) {
				b.ReportAllocs()
				var st xsort.SortStats
				var io storage.IOStats
				for i := 0; i < b.N; i++ {
					d := storage.NewDisk(0)
					s, err := xsort.NewSRS(iter.FromSlice(srsRows), sortBenchSchema,
						sortord.New("c3", "c2", "c1"),
						xsort.Config{Disk: d, MemoryBlocks: 256, EntryLayout: arm.lay})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := iter.Drain(s); err != nil {
						b.Fatal(err)
					}
					if s.Stats().RunsGenerated == 0 {
						b.Fatal("workload must spill")
					}
					st, io = *s.Stats(), d.Stats()
				}
				reportSortCounters(b, st, io)
			})
		}
	})

	b.Run("mrs", func(b *testing.B) {
		for _, arm := range layouts {
			b.Run(arm.name, func(b *testing.B) {
				b.ReportAllocs()
				var st xsort.SortStats
				var io storage.IOStats
				for i := 0; i < b.N; i++ {
					d := storage.NewDisk(0)
					m, err := xsort.NewMRS(iter.FromSlice(mrsRows), sortBenchSchema,
						sortord.New("c1", "c3", "c2"), sortord.New("c1"),
						xsort.Config{Disk: d, MemoryBlocks: 64, Parallelism: 1, SpillParallelism: 1, EntryLayout: arm.lay})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := iter.Drain(m); err != nil {
						b.Fatal(err)
					}
					if m.Stats().SpilledSegs == 0 {
						b.Fatal("workload must spill")
					}
					st, io = *m.Stats(), d.Stats()
				}
				reportSortCounters(b, st, io)
			})
		}
	})
}
