package pyro

// Ablation benchmarks for the design choices DESIGN.md calls out: partial
// sort on/off, phase-2 refinement on/off, deferred fetch vs table scan,
// favorable orders vs exhaustive enumeration.

import (
	"fmt"
	"testing"

	"pyro/internal/catalog"
	"pyro/internal/core"
	"pyro/internal/iter"
	"pyro/internal/storage"
	"pyro/internal/workload"
	"pyro/internal/xsort"
)

func q3World(b *testing.B) (*catalog.Catalog, *storage.Disk) {
	b.Helper()
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	cfg := workload.DefaultTPCH()
	cfg.Suppliers, cfg.PartsPerSupplier = 50, 40
	if err := workload.BuildTPCH(cat, cfg); err != nil {
		b.Fatal(err)
	}
	return cat, disk
}

func benchQ3Execution(b *testing.B, mutate func(*core.Options)) {
	benchQ3ExecutionCfg(b, mutate, func(*core.BuildConfig) {})
}

func benchQ3ExecutionCfg(b *testing.B, mutate func(*core.Options), mutateBuild func(*core.BuildConfig)) {
	cat, disk := q3World(b)
	q3, err := workload.Query3(cat)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions(core.HeuristicFavorable)
	opts.DisableHashJoin = true
	opts.DisableHashAgg = true
	opts.Model.MemoryBlocks = 32
	mutate(&opts)
	res, err := core.Optimize(q3, opts)
	if err != nil {
		b.Fatal(err)
	}
	bcfg := core.BuildConfig{Disk: disk, SortMemoryBlocks: 32}
	mutateBuild(&bcfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, err := core.Build(res.Plan, bcfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := iter.Drain(op); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Plan.Cost.Total, "est-cost")
}

// BenchmarkAblationPartialSortOn/Off isolate the §3 partial-sort enforcer.
func BenchmarkAblationPartialSortOn(b *testing.B) {
	benchQ3Execution(b, func(o *core.Options) {})
}

func BenchmarkAblationPartialSortOff(b *testing.B) {
	benchQ3Execution(b, func(o *core.Options) { o.DisablePartialSort = true })
}

// BenchmarkAblationNormalizedKeysOn/Off isolate the normalized-key sort
// engine end to end on the Query 3 merge-join plan: every enforcer in the
// plan switches between encoded byte-string keys and the field comparator.
func BenchmarkAblationNormalizedKeysOn(b *testing.B) {
	benchQ3ExecutionCfg(b, func(*core.Options) {}, func(*core.BuildConfig) {})
}

func BenchmarkAblationNormalizedKeysOff(b *testing.B) {
	benchQ3ExecutionCfg(b, func(*core.Options) {},
		func(c *core.BuildConfig) { c.SortKeys = xsort.KeyComparator })
}

// BenchmarkAblationSortParallelismOff pins MRS segment sorting to one
// goroutine (the serial paper algorithm); the On arm is the GOMAXPROCS
// default of BenchmarkAblationNormalizedKeysOn.
func BenchmarkAblationSortParallelismOff(b *testing.B) {
	benchQ3ExecutionCfg(b, func(*core.Options) {},
		func(c *core.BuildConfig) { c.SortParallelism = 1 })
}

// BenchmarkAblationPhase2On/Off isolate the §5.2.2 refinement on the Query
// 4 outer-join chain.
func benchQ4Execution(b *testing.B, disablePhase2 bool) {
	disk := storage.NewDisk(0)
	cat := catalog.New(disk)
	if err := workload.BuildOuterJoinTables(cat, 8000, 5); err != nil {
		b.Fatal(err)
	}
	q4, err := workload.Query4(cat)
	if err != nil {
		b.Fatal(err)
	}
	opts := core.DefaultOptions(core.HeuristicFavorable)
	opts.DisablePhase2 = disablePhase2
	opts.Model.MemoryBlocks = 32
	res, err := core.Optimize(q4, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, err := core.Build(res.Plan, core.BuildConfig{Disk: disk, SortMemoryBlocks: 32})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := iter.Drain(op); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Plan.Cost.Total, "est-cost")
}

func BenchmarkAblationPhase2On(b *testing.B)  { benchQ4Execution(b, false) }
func BenchmarkAblationPhase2Off(b *testing.B) { benchQ4Execution(b, true) }

// BenchmarkAblationDeferredFetch compares the §7 deferred-fetch plan with
// the plain scan+filter plan on a selective predicate over a wide table.
func BenchmarkAblationDeferredFetch(b *testing.B) {
	for _, withIndex := range []bool{true, false} {
		name := "fetch"
		if !withIndex {
			name = "tablescan"
		}
		b.Run(name, func(b *testing.B) {
			db := Open(Config{SortMemoryBlocks: 64})
			var rows [][]any
			for i := 0; i < 30_000; i++ {
				rows = append(rows, []any{int64(i), int64(i % 2000),
					"wide-payload-wide-payload-wide-payload-wide-payload",
					"extra-extra-extra-extra-extra-extra-extra-extra-pad"})
			}
			if err := db.CreateTable("wide", []Column{
				{Name: "id", Type: Int64},
				{Name: "tag", Type: Int64},
				{Name: "p1", Type: String, Width: 60},
				{Name: "p2", Type: String, Width: 60},
			}, ClusterOn("id"), rows); err != nil {
				b.Fatal(err)
			}
			if withIndex {
				if err := db.CreateIndex("wide_tag", "wide", []string{"tag"}, []string{"id"}); err != nil {
					b.Fatal(err)
				}
			}
			q := db.Scan("wide").Filter(Eq(Col("tag"), Int(7)))
			plan, err := db.Optimize(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Execute(plan); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(plan.EstimatedCost(), "est-cost")
		})
	}
}

// BenchmarkAblationHeuristics reports the optimization time of each
// heuristic on Query 3 (complements Figure 16's two-relation sweep).
func BenchmarkAblationHeuristics(b *testing.B) {
	cat, _ := q3World(b)
	q3, err := workload.Query3(cat)
	if err != nil {
		b.Fatal(err)
	}
	for _, h := range []core.Heuristic{
		core.HeuristicArbitrary, core.HeuristicFavorableExact, core.HeuristicPostgres,
		core.HeuristicFavorable, core.HeuristicExhaustive,
	} {
		b.Run(fmt.Sprint(h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Optimize(q3, core.DefaultOptions(h)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
