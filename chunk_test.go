package pyro

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// chunkBatchSizes are the executor batch sizes the differential tests sweep:
// 1 is the exact legacy row-at-a-time path (the reference), 7 forces many
// partially-filled chunks and odd chunk boundaries, 64 exercises mid-size
// refills, 1024 is the default capacity.
var chunkBatchSizes = []int{1, 7, 64, 1024}

// chunkDiffPlans builds the plan corpus for the batch-vs-row differential
// tests: every operator family of the engine — scans (table and covering
// index), filters, projections, hash and merge joins, sort- and hash-based
// aggregation, distinct, union, order-by (full and partial sort), limit —
// in pipelines deep enough that chunk boundaries land mid-operator.
func chunkDiffPlans(t *testing.T, db *Database) map[string]*Plan {
	t.Helper()
	queries := map[string]*Query{
		"scan": db.Scan("orders"),
		"scan-filter": db.Scan("items").
			Filter(Gt(Col("i_qty"), Int(25))),
		"scan-filter-project": db.Scan("items").
			Filter(Lt(Col("i_line"), Int(2))).
			Project(Proj{Name: "ord", Expr: Col("i_order")},
				Proj{Name: "twice", Expr: Mul(Col("i_qty"), Int(2))}),
		"filter-limit": db.Scan("items").
			Filter(Gt(Col("i_qty"), Int(10))).
			Limit(37),
		"join-filter": db.Scan("orders").
			Join(db.Scan("items"), Eq(Col("o_id"), Col("i_order"))).
			Filter(Eq(Col("o_cust"), Int(3))),
		"join-orderby": db.Scan("orders").
			Join(db.Scan("items"), Eq(Col("o_id"), Col("i_order"))).
			OrderBy("i_qty", "o_id", "i_line"),
		"groupby": db.Scan("items").
			GroupBy([]string{"i_order"},
				Agg{Name: "n", Func: Count},
				Agg{Name: "total", Func: Sum, Arg: Col("i_qty")}).
			OrderBy("i_order"),
		"distinct": db.Scan("orders").
			Project(Proj{Name: "c", Expr: Col("o_cust")}).
			Distinct().
			OrderBy("c"),
		"union-all": db.Scan("orders").
			Filter(Lt(Col("o_cust"), Int(2))).
			UnionAll(db.Scan("orders").Filter(Gt(Col("o_cust"), Int(7)))).
			OrderBy("o_id"),
		"orderby-limit": db.Scan("items").
			OrderBy("i_qty", "i_order", "i_line").
			Limit(50),
	}
	plans := make(map[string]*Plan, len(queries))
	for name, q := range queries {
		p, err := db.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plans[name] = p
	}
	return plans
}

// chunkDiffOpts pins serial sort execution so every counter in SortStats is
// bit-deterministic and the only variable across runs is the batch size.
func chunkDiffOpts(batch int) []ExecOption {
	return []ExecOption{
		WithExecBatchSize(batch),
		WithSortParallelism(1),
		WithSortSpillParallelism(1),
	}
}

// TestChunkMatchesRowAtATime is the tentpole's differential property test:
// for every plan shape and every batch size, the chunked executor must be
// indistinguishable from the row-at-a-time engine — identical rows in
// identical order, identical sort counters, identical per-query I/O.
// Batching may only remove per-row overhead, never change what the engine
// reads or computes.
func TestChunkMatchesRowAtATime(t *testing.T) {
	db := openTestDB(t)
	for name, plan := range chunkDiffPlans(t, db) {
		t.Run(name, func(t *testing.T) {
			type result struct {
				rows  [][]any
				sorts []SortStats
				io    IOStats
			}
			drain := func(batch int) result {
				t.Helper()
				cur, err := db.Query(context.Background(), plan, chunkDiffOpts(batch)...)
				if err != nil {
					t.Fatal(err)
				}
				defer cur.Close()
				var r result
				for cur.Next() {
					r.rows = append(r.rows, cur.Row())
				}
				if err := cur.Err(); err != nil {
					t.Fatal(err)
				}
				st := cur.Stats()
				r.sorts, r.io = st.Sorts, st.IO
				return r
			}

			want := drain(1) // the untouched legacy row path
			for _, batch := range chunkBatchSizes[1:] {
				got := drain(batch)
				if !reflect.DeepEqual(got.rows, want.rows) {
					t.Fatalf("batch %d: rows diverge from row path (%d vs %d rows)",
						batch, len(got.rows), len(want.rows))
				}
				if !reflect.DeepEqual(got.sorts, want.sorts) {
					t.Fatalf("batch %d: sort stats diverge:\n got %+v\nwant %+v",
						batch, got.sorts, want.sorts)
				}
				if got.io != want.io {
					t.Fatalf("batch %d: per-query I/O diverges:\n got %+v\nwant %+v",
						batch, got.io, want.io)
				}
			}
		})
	}
}

// TestChunkMatchesRowAtATimeEarlyClose extends the differential property to
// mid-stream Close: stopping after j rows must freeze identical stats at
// every batch size. This is the "free work only" invariant — a chunk refill
// may only do the work the row path's next Next would have done, plus work
// that is free (rows co-resident on an already-read page), so an early stop
// observes the same pages read and the same sort segments touched.
func TestChunkMatchesRowAtATimeEarlyClose(t *testing.T) {
	db := openTestDB(t)
	plans := chunkDiffPlans(t, db)
	for _, name := range []string{"scan-filter", "join-orderby", "union-all", "orderby-limit"} {
		plan := plans[name]
		t.Run(name, func(t *testing.T) {
			for _, j := range []int{1, 13} {
				type frozen struct {
					rows  [][]any
					sorts []SortStats
					io    IOStats
				}
				take := func(batch int) frozen {
					t.Helper()
					cur, err := db.Query(context.Background(), plan, chunkDiffOpts(batch)...)
					if err != nil {
						t.Fatal(err)
					}
					var f frozen
					for i := 0; i < j; i++ {
						if !cur.Next() {
							t.Fatalf("row %d: %v", i, cur.Err())
						}
						f.rows = append(f.rows, cur.Row())
					}
					if err := cur.Close(); err != nil {
						t.Fatal(err)
					}
					st := cur.Stats()
					f.sorts, f.io = st.Sorts, st.IO
					return f
				}
				want := take(1)
				for _, batch := range chunkBatchSizes[1:] {
					got := take(batch)
					if !reflect.DeepEqual(got.rows, want.rows) {
						t.Fatalf("batch %d, stop %d: served rows diverge", batch, j)
					}
					if !reflect.DeepEqual(got.sorts, want.sorts) {
						t.Fatalf("batch %d, stop %d: frozen sort stats diverge:\n got %+v\nwant %+v",
							batch, j, got.sorts, want.sorts)
					}
					if got.io != want.io {
						t.Fatalf("batch %d, stop %d: frozen I/O diverges:\n got %+v\nwant %+v — batching did non-free work",
							batch, j, got.io, want.io)
					}
				}
			}
		})
	}
}

// TestChunkContextAbort: cancellation mid-stream must surface
// context.Canceled and close cleanly at every batch size, including from
// inside a chunk refill.
func TestChunkContextAbort(t *testing.T) {
	db := segmentedDB(t, 50_000, 500)
	plan, err := db.Optimize(db.Scan("big").Filter(Gt(Col("v"), Int(100))))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range chunkBatchSizes {
		ctx, cancel := context.WithCancel(context.Background())
		cur, err := db.Query(ctx, plan, WithExecBatchSize(batch))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if !cur.Next() {
				t.Fatalf("batch %d row %d: %v", batch, i, cur.Err())
			}
		}
		cancel()
		if cur.Next() {
			t.Fatalf("batch %d: Next after cancellation returned a row", batch)
		}
		if !errors.Is(cur.Err(), context.Canceled) {
			t.Fatalf("batch %d: Err = %v, want context.Canceled", batch, cur.Err())
		}
		if err := cur.Close(); err != nil {
			t.Fatalf("batch %d: Close: %v", batch, err)
		}
	}
}

// TestChunkInvalidBatchSize: a negative batch size is a caller bug and is
// rejected up front.
func TestChunkInvalidBatchSize(t *testing.T) {
	db := openTestDB(t)
	plan, err := db.Optimize(db.Scan("orders"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(context.Background(), plan, WithExecBatchSize(-1)); err == nil {
		t.Fatal("Query accepted a negative exec batch size")
	}
}

// TestChunkTTFRMeasuresFirstRow pins satellite semantics of batching on the
// streaming contract: TimeToFirstRow is stamped when the first row is
// surfaced to the caller, and on a pipelined chunked plan it must sit far
// below the full drain — batching the executor must not turn time-to-first-
// row into time-to-first-chunk-of-the-whole-result.
func TestChunkTTFRMeasuresFirstRow(t *testing.T) {
	db := segmentedDB(t, 50_000, 500)
	// A selective filter over a big scan: chunk-capable top-of-plan, first
	// row after a handful of pages, full drain reads all ~379.
	plan, err := db.Optimize(db.Scan("big").Filter(Gt(Col("pad"), Int(10))))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := db.Query(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Next() {
		t.Fatal(cur.Err())
	}
	afterFirst := cur.Stats()
	if afterFirst.TimeToFirstRow <= 0 {
		t.Fatal("TimeToFirstRow not stamped at the first row")
	}
	for cur.Next() {
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	st := cur.Stats()
	if st.TimeToFirstRow != afterFirst.TimeToFirstRow {
		t.Fatalf("TimeToFirstRow moved after the first row: %v then %v",
			afterFirst.TimeToFirstRow, st.TimeToFirstRow)
	}
	if st.TimeToFirstRow > st.Elapsed/2 {
		t.Fatalf("TTFR %v vs elapsed %v — first row waited on work batching should not front-load",
			st.TimeToFirstRow, st.Elapsed)
	}
	if st.Rows == 0 || st.TimeToFirstRow > time.Second {
		t.Fatalf("implausible run: %d rows, TTFR %v", st.Rows, st.TimeToFirstRow)
	}
}

// TestConcurrentChunkCursors drains the chunked path from several cursors
// on one Database at once (the race-serve CI job gates the chunk pool and
// shared-plan plumbing underneath) — each at a different batch size, all
// required to agree exactly.
func TestConcurrentChunkCursors(t *testing.T) {
	db := segmentedDB(t, 20_000, 2_000)
	plan, err := db.Optimize(db.Scan("big").Filter(Gt(Col("v"), Int(5_000))))
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}

	const perBatch = 2
	workers := len(chunkBatchSizes) * perBatch
	results := make([][][]any, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := chunkBatchSizes[w%len(chunkBatchSizes)]
			cur, err := db.Query(context.Background(), plan, WithExecBatchSize(batch))
			if err != nil {
				errs[w] = err
				return
			}
			defer cur.Close()
			for cur.Next() {
				results[w] = append(results[w], cur.Row())
			}
			errs[w] = cur.Err()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("cursor %d: %v", w, errs[w])
		}
		if !reflect.DeepEqual(results[w], want.Data) {
			t.Fatalf("cursor %d (batch %d) diverged from the reference drain",
				w, chunkBatchSizes[w%len(chunkBatchSizes)])
		}
	}
}
